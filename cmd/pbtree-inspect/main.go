// Command pbtree-inspect creates, saves, loads and summarizes
// serialized pB+-Trees (the Tree.WriteTo / pbtree.LoadTree format).
//
// Usage:
//
//	pbtree-inspect -gen 1000000 -width 8 -jump external -out idx.pbt
//	pbtree-inspect -in idx.pbt
//	pbtree-inspect -in idx.pbt -probe 4242
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pbtree"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pbtree-inspect: ")
	var (
		gen   = flag.Int("gen", 0, "generate a tree with N sequential keys and save it")
		width = flag.Int("width", 8, "node width in cache lines (with -gen)")
		jump  = flag.String("jump", "external", "jump-pointer array: none|external|internal (with -gen)")
		fill  = flag.Float64("fill", 1.0, "bulkload factor")
		out   = flag.String("out", "", "output file (with -gen)")
		in    = flag.String("in", "", "serialized tree to load and summarize")
		probe = flag.Uint("probe", 0, "look up this key after loading")
	)
	flag.Parse()

	switch {
	case *gen > 0:
		if *out == "" {
			log.Fatal("-gen requires -out")
		}
		var kind pbtree.JumpArrayKind
		switch *jump {
		case "none":
			kind = pbtree.JumpNone
		case "external":
			kind = pbtree.JumpExternal
		case "internal":
			kind = pbtree.JumpInternal
		default:
			log.Fatalf("unknown jump-pointer kind %q", *jump)
		}
		t, err := pbtree.New(pbtree.Config{
			Width: *width, Prefetch: *width > 1 || kind != pbtree.JumpNone, JumpArray: kind,
		})
		if err != nil {
			log.Fatal(err)
		}
		pairs := make([]pbtree.Pair, *gen)
		for i := range pairs {
			pairs[i] = pbtree.Pair{Key: pbtree.Key(2 * (i + 1)), TID: pbtree.TID(i + 1)}
		}
		if err := t.Bulkload(pairs, *fill); err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		n, err := t.WriteTo(f)
		if err == nil {
			err = f.Close()
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s: %d pairs, %d bytes\n", *out, t.Len(), n)

	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		t, err := pbtree.LoadTree(f, nil, *fill)
		if err != nil {
			log.Fatal(err)
		}
		if err := t.CheckInvariants(); err != nil {
			log.Fatalf("structural check failed: %v", err)
		}
		cfg := t.Config()
		fmt.Printf("%s: %d pairs, %d levels, width %d, jump-pointer array %s\n",
			t.Name(), t.Len(), t.Height(), cfg.Width, cfg.JumpArray)
		fmt.Printf("leaf capacity %d, max fanout %d, %.1f MB simulated, structural check ok\n",
			t.LeafCapacity(), t.MaxFanout(), float64(t.SpaceUsed())/(1<<20))
		if *probe > 0 {
			mem := t.Mem()
			mem.ResetStats()
			tid, ok := t.Search(pbtree.Key(*probe))
			fmt.Printf("probe %d: tid=%d found=%v\n", *probe, tid, ok)
			fmt.Println(mem.Stats().Pretty())
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}

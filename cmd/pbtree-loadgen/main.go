// Command pbtree-loadgen drives a read/write/scan mix against a
// running pbtree-server and reports throughput and latency
// percentiles as JSON on stdout.
//
// Usage:
//
//	pbtree-loadgen -addr 127.0.0.1:7070 -conns 8 -duration 10s \
//	    -skew zipf -get 70 -mget 15 -scan 5 -put 10
//	pbtree-loadgen -addr 127.0.0.1:7070 -scenario write-burst
//
// -scenario selects a named workload preset (oltp-point, olap-scan,
// olap-stream, write-burst, hot-key-storm, mixed-tenant) and
// overrides the mix/skew/scanrows flags with the preset's values; the
// resolved config is echoed in the report.
//
// -stream N gives N percent of draws to a full streaming scan: the
// worker opens a cursor (SCANOPEN), pulls -stream-rows rows in
// -stream-chunk chunks (SCANNEXT), and lets exhaustion close the
// cursor — holding at most one chunk of scan row tokens at a time
// (PROTOCOL.md §10).
//
// -replicas lists read-replica addresses; connections then
// round-robin across -addr and the replicas (the mix must be
// read-only), measuring a replica set's aggregate read throughput.
//
// -window N keeps N calls outstanding per connection over the
// pipelined v2 protocol (closed loop: total concurrency is
// conns x window); -window 1 is the classic one-round-trip-at-a-time
// loop. The report records the window and per-class reject counts.
//
// When the server runs with lifecycle tracing (-stages), the report's
// server_stages section attributes the run's server-side time to
// pipeline stages (STATS deltas), and -stage-table renders the
// attribution as a table on stderr (stdout stays pure JSON).
//
// The exit status is nonzero if the run completed zero operations or
// saw hard (non-backpressure) errors, so smoke tests can gate on it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"pbtree"
)

// printStageTable renders the server-side stage attribution on w, one
// block per op class, stages sorted by their share of the total.
func printStageTable(w *os.File, rep *pbtree.LoadgenReport) {
	ops := make([]string, 0, len(rep.ServerStages))
	for op := range rep.ServerStages {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		tot := rep.ServerStageTotals[op]
		fmt.Fprintf(w, "%s: server-side mean %.1fus over %d requests\n",
			op, tot.MeanUS, tot.Count)
		stages := rep.ServerStages[op]
		names := make([]string, 0, len(stages))
		for st := range stages {
			names = append(names, st)
		}
		sort.Slice(names, func(i, j int) bool {
			return stages[names[i]].Share > stages[names[j]].Share
		})
		for _, st := range names {
			d := stages[st]
			fmt.Fprintf(w, "  %-10s %6.1f%%  mean %8.1fus  total %9.1fms\n",
				st, 100*d.Share, d.MeanUS, d.TotalMS)
		}
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("pbtree-loadgen: ")
	var (
		addr        = flag.String("addr", "127.0.0.1:7070", "server address")
		replicas    = flag.String("replicas", "", "comma-separated replica addresses: connections round-robin across -addr and these (read-only mix required)")
		conns       = flag.Int("conns", 4, "concurrent connections")
		window      = flag.Int("window", 1, "outstanding calls per connection (pipelined when > 1)")
		duration    = flag.Duration("duration", 2*time.Second, "run length")
		keys        = flag.Int("keys", 1_000_000, "key-space size (match the server's -keys)")
		scen        = flag.String("scenario", "", "named workload preset (overrides the mix/skew flags): oltp-point|olap-scan|olap-stream|write-burst|hot-key-storm|mixed-tenant")
		getPct      = flag.Int("get", 0, "GET percent of the mix")
		mgetPct     = flag.Int("mget", 0, "MGET percent of the mix")
		scanPct     = flag.Int("scan", 0, "SCAN percent of the mix")
		streamPct   = flag.Int("stream", 0, "streaming-scan percent of the mix (SCANOPEN/SCANNEXT cursors)")
		putPct      = flag.Int("put", 0, "PUT percent of the mix")
		delPct      = flag.Int("del", 0, "DEL percent of the mix")
		batch       = flag.Int("batch", 16, "keys per MGET")
		scanRows    = flag.Int("scanrows", 100, "row limit per SCAN")
		streamRows  = flag.Int("stream-rows", 0, "target rows per streaming scan (0 = 10000)")
		streamChunk = flag.Int("stream-chunk", 0, "rows per SCANNEXT chunk (0 = 256)")
		skew        = flag.String("skew", "uniform", "key distribution: uniform|zipf|hotset")
		zipfS       = flag.Float64("zipf-s", 1.1, "Zipf exponent (skew=zipf)")
		hotFrac     = flag.Float64("hot-frac", 0.01, "hot key fraction (skew=hotset)")
		hotProb     = flag.Float64("hot-prob", 0.9, "hot traffic share (skew=hotset)")
		seed        = flag.Int64("seed", 1, "base RNG seed (conn i uses seed+i)")
		timeout     = flag.Duration("timeout", time.Second, "per-request deadline")
		stageTab    = flag.Bool("stage-table", false, "print the server stage-attribution table on stderr")
	)
	flag.Parse()

	var reps []string
	if *replicas != "" {
		reps = strings.Split(*replicas, ",")
	}
	rep, err := pbtree.RunLoadgen(pbtree.LoadgenConfig{
		Addr:        *addr,
		Replicas:    reps,
		Scenario:    *scen,
		Conns:       *conns,
		Window:      *window,
		Duration:    *duration,
		Keys:        *keys,
		GetPct:      *getPct,
		MGetPct:     *mgetPct,
		ScanPct:     *scanPct,
		StreamPct:   *streamPct,
		PutPct:      *putPct,
		DelPct:      *delPct,
		Batch:       *batch,
		ScanLimit:   *scanRows,
		StreamRows:  *streamRows,
		StreamChunk: *streamChunk,
		Skew:        *skew,
		ZipfS:       *zipfS,
		HotFrac:     *hotFrac,
		HotProb:     *hotProb,
		Seed:        *seed,
		Timeout:     *timeout,
	})
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if *stageTab && len(rep.ServerStages) > 0 {
		printStageTable(os.Stderr, rep)
	}
	if rep.Ops == 0 {
		log.Fatal("zero operations completed")
	}
	if rep.Errors > 0 {
		log.Fatalf("%d hard errors", rep.Errors)
	}
}

// Command pbtree-server serves a sharded pB+-Tree store over TCP with
// the length-prefixed wire protocol of internal/serve (GET / MGET /
// SCAN / PUT / DEL / STATS; normative spec in PROTOCOL.md).
// Connections that negotiate protocol v2 at connect are full-duplex
// pipelines: up to -window requests per connection execute
// concurrently and responses return in completion order. Admission is
// per op class (-read-tokens / -write-tokens / -scan-row-tokens), so
// overload rejects expensive scans before cheap point ops.
//
// Usage:
//
//	pbtree-server -addr :7070 -keys 1000000 -shards 8
//	pbtree-server -addr :7070 -data-dir /var/lib/pbtree -fsync always
//	pbtree-server -addr :7070 -backend lsm -data-dir /var/lib/pbtree
//	pbtree-server -addr :7070 -admin :7071 -slow-log 1ms
//
// -backend selects the per-shard storage engine: "pbtree" (default)
// serves reads from immutable full-tree snapshots, "lsm" absorbs
// writes in a memtable and flushes sorted runs (DESIGN.md §11). A
// durable directory remembers its backend and refuses to reopen under
// the other one.
//
// -admin mounts the operational HTTP plane on a second address:
// /metrics (Prometheus text format: per-op and per-stage latency
// histograms, admission and durability counters, per-shard gauges),
// /healthz (503 until every shard has recovered), /statsz (the STATS
// payload as JSON), /debug/vars (expvar) and /debug/pprof. -stages
// keeps the per-stage request-lifecycle histograms on (near-zero
// cost); -slow-log logs any request slower than the given threshold
// with its full stage breakdown, rate-limited to -slow-log-rate lines
// per second; -lifecycle-trace streams every traced request to a
// Chrome trace file (load at ui.perfetto.dev).
//
// The store is preloaded with the standard workload key space (keys
// 8, 16, ..., 8*N with TID = key/8) so a load generator can start
// immediately. With -data-dir the store is durable: every shard keeps
// a write-ahead log + checkpoints there, an existing directory is
// recovered on boot (the -keys preload only seeds a fresh one), and
// acked writes survive kill -9 under -fsync always. SIGINT/SIGTERM
// drain gracefully: in-flight requests finish and the WAL is flushed
// before the process exits.
//
// Logging is structured (log/slog, text format); -log-level selects
// debug, info, warn or error.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pbtree"
	"pbtree/internal/serve"
	"pbtree/internal/workload"
)

// parseLevel maps a -log-level value onto a slog level.
func parseLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
}

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7070", "listen address")
		admin      = flag.String("admin", "", "admin HTTP address for /metrics, /healthz, /statsz, /debug/pprof (empty = disabled)")
		logLevel   = flag.String("log-level", "info", "log verbosity: debug|info|warn|error")
		keys       = flag.Int("keys", 1_000_000, "preload N sequential keys")
		shards     = flag.Int("shards", 0, "shard count (0 = GOMAXPROCS)")
		be         = flag.String("backend", "pbtree", "storage backend per shard: pbtree|lsm")
		flushKey   = flag.Int("lsm-flush-keys", 0, "lsm: memtable keys per flushed run (0 = 4096)")
		maxRuns    = flag.Int("lsm-max-runs", 0, "lsm: runs tolerated before compaction (0 = 8)")
		width      = flag.Int("width", 8, "tree node width in cache lines")
		hwPf       = flag.Bool("hw-prefetch", false, "issue real CPU prefetch instructions on node visits (pbtree backend)")
		branchless = flag.Bool("branchless", false, "branchless data-parallel intra-node search (pbtree backend)")
		gapped     = flag.Bool("gapped", false, "gapped leaf slot arrays with occupancy bitmaps (pbtree backend)")
		window     = flag.Int("window", 0, "max concurrent requests per pipelined (v2) connection (0 = 32)")
		dataPlane  = flag.String("data-plane", "pool", "execution model for pipelined requests: pool|goroutine")
		poolSize   = flag.Int("pool", 0, "worker count of the pool data plane (0 = max(16, 4x GOMAXPROCS))")
		cursorTmo  = flag.Duration("cursor-timeout", 0, "reclaim idle streaming-scan cursors after this long (0 = 30s, <0 = never)")
		readTok    = flag.Int("read-tokens", 0, "admission budget for GET/MGET (0 = 4x shards)")
		writeTok   = flag.Int("write-tokens", 0, "admission budget for PUT/DEL (0 = 2x shards)")
		scanTok    = flag.Int("scan-row-tokens", 0, "admission budget for concurrent SCAN rows (0 = 64k)")
		queue      = flag.Int("queue", 0, "per-shard mutation queue length (0 = 1024)")
		batch      = flag.Bool("batch", true, "merge concurrent GETs into group searches")
		group      = flag.Int("group", 16, "max lookups per merged group search")
		linger     = flag.Duration("linger", 50*time.Microsecond, "how long a group waits for stragglers")
		drain      = flag.Duration("drain", 5*time.Second, "graceful shutdown budget")
		dataDir    = flag.String("data-dir", "", "durable data directory (empty = in-memory only)")
		fsync      = flag.String("fsync", "always", "WAL fsync policy: always|interval|never")
		fsyncInt   = flag.Duration("fsync-interval", 10*time.Millisecond, "sync period for -fsync interval")
		ckptEvry   = flag.Int("checkpoint-every", 4096, "WAL records per shard between checkpoints")
		walKeep    = flag.Int("wal-retain", 0, "superseded WAL segments retained per shard for follower catch-up")
		replicaOf  = flag.String("replica-of", "", "primary serving address to follow (makes this node a read replica; requires -data-dir)")
		epochFlag  = flag.Uint64("epoch", 0, "minimum replication epoch to run at (0 = whatever the MANIFEST records)")
		replSync   = flag.Bool("repl-sync", false, "synchronous replication: acknowledge writes only after a follower ack")
		replPoll   = flag.Duration("repl-poll", 50*time.Millisecond, "follower poll interval once caught up")
		syncTmo    = flag.Duration("repl-sync-timeout", 2*time.Second, "how long a synchronous write waits for a follower ack")
		stages     = flag.Bool("stages", true, "per-stage request-lifecycle histograms")
		slowLog    = flag.Duration("slow-log", 0, "log requests slower than this with their stage breakdown (0 = off)")
		slowRate   = flag.Int("slow-log-rate", 10, "max slow-request log lines per second")
		lcTrace    = flag.String("lifecycle-trace", "", "write a Chrome trace of traced requests to this file")
	)
	flag.Parse()

	level, err := parseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pbtree-server:", err)
		os.Exit(1)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)
	fail := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}
	if *dataPlane != pbtree.DataPlanePool && *dataPlane != pbtree.DataPlaneGoroutine {
		fail("data plane", fmt.Errorf("unknown -data-plane %q (want pool or goroutine)", *dataPlane))
	}

	metrics := pbtree.NewMetrics()
	cfg := pbtree.StoreConfig{
		Shards:   *shards,
		Backend:  *be,
		LSM:      pbtree.LSMConfig{FlushKeys: *flushKey, MaxRuns: *maxRuns},
		QueueLen: *queue,
		Tree: pbtree.Config{
			Width:            *width,
			Prefetch:         *width > 1 || *hwPf,
			HardwarePrefetch: *hwPf,
			BranchlessSearch: *branchless,
			GappedLeaves:     *gapped,
		},
		Metrics: metrics,
		Replica: *replicaOf != "",
		Epoch:   *epochFlag,
	}
	if *dataDir != "" {
		policy, err := serve.ParseFsyncPolicy(*fsync)
		if err != nil {
			fail("fsync policy", err)
		}
		cfg.Durable = &pbtree.DurableConfig{
			Dir:             *dataDir,
			Fsync:           policy,
			FsyncInterval:   *fsyncInt,
			CheckpointEvery: *ckptEvry,
			WALRetain:       *walKeep,
		}
	}
	seed := workload.SortedPairs(*keys)
	if *replicaOf != "" {
		seed = nil // a replica's contents come from the primary, not a preload
	}
	st, err := pbtree.OpenStore(cfg, seed)
	if err != nil {
		fail("open store", err)
	}
	if err := st.WaitReady(); err != nil {
		fail("recovery", err)
	}
	for _, rs := range st.Recovery() {
		if rs.Bootstrapped {
			logger.Info("shard bootstrapped", "shard", rs.Shard, "pairs", rs.Pairs, "dir", *dataDir)
			continue
		}
		logger.Info("shard recovered", "shard", rs.Shard, "pairs", rs.Pairs,
			"checkpoint_lsn", rs.CheckpointLSN, "replayed", rs.Replayed,
			"torn_bytes", rs.TornBytes, "took", rs.Duration.Round(time.Millisecond).String())
	}
	metrics.PublishExpvar("pbtree")

	// The replication node serves FETCH on a primary (and installs the
	// sync gate with -repl-sync); with -replica-of it pulls the
	// primary's WAL per shard. Durable-only: epochs live in the
	// MANIFEST and shipping reads WAL segment files.
	var replNode *pbtree.ReplNode
	if *dataDir != "" {
		replNode, err = pbtree.NewReplNode(pbtree.ReplConfig{
			Store:       st,
			Primary:     *replicaOf,
			Sync:        *replSync,
			SyncTimeout: *syncTmo,
			Poll:        *replPoll,
			Metrics:     metrics,
			Logf: func(format string, args ...any) {
				logger.Info(fmt.Sprintf(format, args...))
			},
		})
		if err != nil {
			fail("replication", err)
		}
		if err := replNode.Start(); err != nil {
			fail("replication", err)
		}
		if *replicaOf != "" {
			logger.Info("following primary", "primary", *replicaOf, "epoch", st.Epoch())
		}
	} else if *replicaOf != "" || *replSync {
		fail("replication", fmt.Errorf("-replica-of and -repl-sync need -data-dir (epochs and WAL shipping are durable-only)"))
	}

	lc := pbtree.LifecycleConfig{
		Enabled:       *stages || *slowLog > 0 || *lcTrace != "",
		SlowThreshold: *slowLog,
		SlowPerSec:    *slowRate,
		Log:           logger,
	}
	var traceFile *os.File
	if *lcTrace != "" {
		traceFile, err = os.Create(*lcTrace)
		if err != nil {
			fail("lifecycle trace", err)
		}
		lc.Trace = traceFile
	}
	scfg := pbtree.ServerConfig{
		Addr:          *addr,
		Window:        *window,
		DataPlane:     *dataPlane,
		PoolSize:      *poolSize,
		CursorTimeout: *cursorTmo,
		Admission: pbtree.AdmissionConfig{
			ReadTokens:    *readTok,
			WriteTokens:   *writeTok,
			ScanRowTokens: *scanTok,
		},
		Batch:     *batch,
		Batcher:   serve.BatcherConfig{MaxGroup: *group, Linger: *linger},
		Metrics:   metrics,
		Lifecycle: lc,
	}
	if replNode != nil {
		scfg.Repl = replNode
	}
	srv := pbtree.NewServer(st, scfg)
	if err := srv.Start(); err != nil {
		fail("listen", err)
	}

	var adminSrv *http.Server
	if *admin != "" {
		ln, err := net.Listen("tcp", *admin)
		if err != nil {
			fail("admin listen", err)
		}
		var extra []func(io.Writer) error
		mux := func() *http.ServeMux {
			if replNode == nil {
				return pbtree.NewAdminMux(srv, st)
			}
			extra = append(extra, replNode.WriteMetrics)
			m := pbtree.NewAdminMux(srv, st, extra...)
			replNode.Mount(m) // /replz and POST /promote
			return m
		}()
		adminSrv = &http.Server{Handler: mux}
		go func() {
			if err := adminSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
				logger.Error("admin server", "err", err)
			}
		}()
		logger.Info("admin plane up", "addr", ln.Addr().String())
	}

	logger.Info("serving",
		"keys", st.Len(), "addr", srv.Addr().String(), "shards", st.Shards(),
		"backend", *be, "width", *width, "batch", *batch, "stages", lc.Enabled)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	logger.Info("draining", "signal", s.String(), "budget", drain.String())
	if adminSrv != nil {
		adminSrv.Close()
	}
	err = srv.Shutdown(*drain)
	if replNode != nil {
		replNode.Close()
	}
	st.Close()
	if traceFile != nil {
		traceFile.Close()
	}
	if err != nil {
		fail("shutdown", err)
	}
	logger.Info("drained cleanly")
}

// Command pbtree-server serves a sharded pB+-Tree store over TCP with
// the length-prefixed wire protocol of internal/serve (GET / MGET /
// SCAN / PUT / DEL / STATS).
//
// Usage:
//
//	pbtree-server -addr :7070 -keys 1000000 -shards 8
//
// The store is preloaded with the standard workload key space (keys
// 8, 16, ..., 8*N with TID = key/8) so a load generator can start
// immediately. SIGINT/SIGTERM drain gracefully: in-flight requests
// finish before the process exits.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pbtree"
	"pbtree/internal/serve"
	"pbtree/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pbtree-server: ")
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "listen address")
		keys     = flag.Int("keys", 1_000_000, "preload N sequential keys")
		shards   = flag.Int("shards", 0, "shard count (0 = GOMAXPROCS)")
		width    = flag.Int("width", 8, "tree node width in cache lines")
		inflight = flag.Int("inflight", 0, "max in-flight requests (0 = 4x shards)")
		queue    = flag.Int("queue", 0, "per-shard mutation queue length (0 = 1024)")
		batch    = flag.Bool("batch", true, "merge concurrent GETs into group searches")
		group    = flag.Int("group", 16, "max lookups per merged group search")
		linger   = flag.Duration("linger", 50*time.Microsecond, "how long a group waits for stragglers")
		drain    = flag.Duration("drain", 5*time.Second, "graceful shutdown budget")
	)
	flag.Parse()

	st, err := pbtree.OpenStore(pbtree.StoreConfig{
		Shards:   *shards,
		QueueLen: *queue,
		Tree:     pbtree.Config{Width: *width, Prefetch: *width > 1},
	}, workload.SortedPairs(*keys))
	if err != nil {
		log.Fatal(err)
	}
	metrics := pbtree.NewMetrics()
	metrics.PublishExpvar("pbtree")
	srv := pbtree.NewServer(st, pbtree.ServerConfig{
		Addr:        *addr,
		MaxInflight: *inflight,
		Batch:       *batch,
		Batcher:     serve.BatcherConfig{MaxGroup: *group, Linger: *linger},
		Metrics:     metrics,
	})
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	log.Printf("serving %d keys on %s (%d shards, width %d, batch=%v)",
		st.Len(), srv.Addr(), st.Shards(), *width, *batch)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	log.Printf("%s: draining (budget %v)", s, *drain)
	if err := srv.Shutdown(*drain); err != nil {
		st.Close()
		log.Fatal(err)
	}
	st.Close()
	log.Print("drained cleanly")
}

// Command pbtree-server serves a sharded pB+-Tree store over TCP with
// the length-prefixed wire protocol of internal/serve (GET / MGET /
// SCAN / PUT / DEL / STATS; normative spec in PROTOCOL.md).
// Connections that negotiate protocol v2 at connect are full-duplex
// pipelines: up to -window requests per connection execute
// concurrently and responses return in completion order. Admission is
// per op class (-read-tokens / -write-tokens / -scan-row-tokens), so
// overload rejects expensive scans before cheap point ops.
//
// Usage:
//
//	pbtree-server -addr :7070 -keys 1000000 -shards 8
//	pbtree-server -addr :7070 -data-dir /var/lib/pbtree -fsync always
//	pbtree-server -addr :7070 -backend lsm -data-dir /var/lib/pbtree
//
// -backend selects the per-shard storage engine: "pbtree" (default)
// serves reads from immutable full-tree snapshots, "lsm" absorbs
// writes in a memtable and flushes sorted runs (DESIGN.md §11). A
// durable directory remembers its backend and refuses to reopen under
// the other one.
//
// The store is preloaded with the standard workload key space (keys
// 8, 16, ..., 8*N with TID = key/8) so a load generator can start
// immediately. With -data-dir the store is durable: every shard keeps
// a write-ahead log + checkpoints there, an existing directory is
// recovered on boot (the -keys preload only seeds a fresh one), and
// acked writes survive kill -9 under -fsync always. SIGINT/SIGTERM
// drain gracefully: in-flight requests finish and the WAL is flushed
// before the process exits.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pbtree"
	"pbtree/internal/serve"
	"pbtree/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pbtree-server: ")
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "listen address")
		keys     = flag.Int("keys", 1_000_000, "preload N sequential keys")
		shards   = flag.Int("shards", 0, "shard count (0 = GOMAXPROCS)")
		be       = flag.String("backend", "pbtree", "storage backend per shard: pbtree|lsm")
		flushKey = flag.Int("lsm-flush-keys", 0, "lsm: memtable keys per flushed run (0 = 4096)")
		maxRuns  = flag.Int("lsm-max-runs", 0, "lsm: runs tolerated before compaction (0 = 8)")
		width    = flag.Int("width", 8, "tree node width in cache lines")
		window   = flag.Int("window", 0, "max concurrent requests per pipelined (v2) connection (0 = 32)")
		readTok  = flag.Int("read-tokens", 0, "admission budget for GET/MGET (0 = 4x shards)")
		writeTok = flag.Int("write-tokens", 0, "admission budget for PUT/DEL (0 = 2x shards)")
		scanTok  = flag.Int("scan-row-tokens", 0, "admission budget for concurrent SCAN rows (0 = 64k)")
		queue    = flag.Int("queue", 0, "per-shard mutation queue length (0 = 1024)")
		batch    = flag.Bool("batch", true, "merge concurrent GETs into group searches")
		group    = flag.Int("group", 16, "max lookups per merged group search")
		linger   = flag.Duration("linger", 50*time.Microsecond, "how long a group waits for stragglers")
		drain    = flag.Duration("drain", 5*time.Second, "graceful shutdown budget")
		dataDir  = flag.String("data-dir", "", "durable data directory (empty = in-memory only)")
		fsync    = flag.String("fsync", "always", "WAL fsync policy: always|interval|never")
		fsyncInt = flag.Duration("fsync-interval", 10*time.Millisecond, "sync period for -fsync interval")
		ckptEvry = flag.Int("checkpoint-every", 4096, "WAL records per shard between checkpoints")
	)
	flag.Parse()

	metrics := pbtree.NewMetrics()
	cfg := pbtree.StoreConfig{
		Shards:   *shards,
		Backend:  *be,
		LSM:      pbtree.LSMConfig{FlushKeys: *flushKey, MaxRuns: *maxRuns},
		QueueLen: *queue,
		Tree:     pbtree.Config{Width: *width, Prefetch: *width > 1},
		Metrics:  metrics,
	}
	if *dataDir != "" {
		policy, err := serve.ParseFsyncPolicy(*fsync)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Durable = &pbtree.DurableConfig{
			Dir:             *dataDir,
			Fsync:           policy,
			FsyncInterval:   *fsyncInt,
			CheckpointEvery: *ckptEvry,
		}
	}
	st, err := pbtree.OpenStore(cfg, workload.SortedPairs(*keys))
	if err != nil {
		log.Fatal(err)
	}
	if err := st.WaitReady(); err != nil {
		log.Fatal(err)
	}
	for _, rs := range st.Recovery() {
		if rs.Bootstrapped {
			log.Printf("shard %d: bootstrapped %d pairs into %s", rs.Shard, rs.Pairs, *dataDir)
			continue
		}
		log.Printf("shard %d: recovered %d pairs (checkpoint lsn %d, replayed %d records, %d torn bytes) in %v",
			rs.Shard, rs.Pairs, rs.CheckpointLSN, rs.Replayed, rs.TornBytes, rs.Duration.Round(time.Millisecond))
	}
	metrics.PublishExpvar("pbtree")
	srv := pbtree.NewServer(st, pbtree.ServerConfig{
		Addr:   *addr,
		Window: *window,
		Admission: pbtree.AdmissionConfig{
			ReadTokens:    *readTok,
			WriteTokens:   *writeTok,
			ScanRowTokens: *scanTok,
		},
		Batch:   *batch,
		Batcher: serve.BatcherConfig{MaxGroup: *group, Linger: *linger},
		Metrics: metrics,
	})
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	log.Printf("serving %d keys on %s (%d shards, backend %s, width %d, batch=%v)",
		st.Len(), srv.Addr(), st.Shards(), *be, *width, *batch)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	log.Printf("%s: draining (budget %v)", s, *drain)
	if err := srv.Shutdown(*drain); err != nil {
		st.Close()
		log.Fatal(err)
	}
	st.Close()
	log.Print("drained cleanly")
}

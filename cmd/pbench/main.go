// Command pbench regenerates the tables and figures of "Improving
// Index Performance through Prefetching" (Chen, Gibbons, Mowry;
// SIGMOD 2001) on the simulated memory hierarchy.
//
// Usage:
//
//	pbench -list
//	pbench -fig fig7 -scale 0.1
//	pbench -fig fig10,fig11 -scale 1
//	pbench -fig all
//
// -scale 1 reproduces paper-sized workloads (10M-key trees, 100K
// operations); the default 0.1 runs the same shapes in seconds. All
// reported times are simulated cycles, deterministic for a given seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pbtree/internal/exp"
)

func main() {
	var (
		figs  = flag.String("fig", "all", "comma-separated experiment ids, or 'all'")
		scale = flag.Float64("scale", 0.1, "workload scale factor (1 = paper size)")
		seed  = flag.Int64("seed", 1, "workload random seed")
		list  = flag.Bool("list", false, "list available experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.Experiments() {
			fmt.Printf("%-6s %s\n", e.ID, e.Brief)
		}
		return
	}

	opts := exp.Options{Scale: *scale, Seed: *seed}
	var ids []string
	if *figs == "all" {
		for _, e := range exp.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*figs, ",")
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		tables, err := exp.Run(id, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
		fmt.Fprintf(os.Stderr, "[%s: %.1fs wall]\n", id, time.Since(start).Seconds())
	}
}

// Command pbench regenerates the tables and figures of "Improving
// Index Performance through Prefetching" (Chen, Gibbons, Mowry;
// SIGMOD 2001) on the simulated memory hierarchy.
//
// Usage:
//
//	pbench -list
//	pbench -fig fig7 -scale 0.1
//	pbench -fig fig10,fig11 -scale 1
//	pbench -fig all -json > results.json
//	pbench -fig attr -trace trace.jsonl
//
// -scale 1 reproduces paper-sized workloads (10M-key trees, 100K
// operations); the default 0.1 runs the same shapes in seconds. All
// reported times are simulated cycles, deterministic for a given seed.
//
// -json replaces the text tables on stdout with one machine-readable
// JSON document (exp.RunSet). -trace dumps every memory event of every
// experiment as a Chrome trace (load it at chrome://tracing or
// ui.perfetto.dev). -cpuprofile/-memprofile write pprof profiles of
// the simulator itself.
//
// A failing experiment no longer aborts the run: pbench reports it,
// continues with the remaining ids, prints a summary, and exits
// nonzero at the end.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"pbtree/internal/exp"
	"pbtree/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		figs       = flag.String("fig", "all", "comma-separated experiment ids, or 'all'")
		scale      = flag.Float64("scale", 0.1, "workload scale factor (1 = paper size)")
		seed       = flag.Int64("seed", 1, "workload random seed")
		list       = flag.Bool("list", false, "list available experiments and exit")
		jsonOut    = flag.Bool("json", false, "emit results as JSON on stdout instead of text tables")
		native     = flag.Bool("native", false, "also run the wall-clock native benchmark (hardware prefetch x branchless search)")
		tracePath  = flag.String("trace", "", "write a Chrome trace of all memory events to this file")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.Experiments() {
			fmt.Printf("%-11s %s\n", e.ID, e.Brief)
		}
		return 0
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	opts := exp.Options{Scale: *scale, Seed: *seed}

	var tw *obs.TraceWriter
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		tw = obs.NewTraceWriter(f)
		opts.Probe = tw
		opts.Trace = tw
	}

	var ids []string
	switch *figs {
	case "all":
		for _, e := range exp.Experiments() {
			ids = append(ids, e.ID)
		}
	case "none", "": // e.g. pbench -fig none -native
	default:
		for _, id := range strings.Split(*figs, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	rs := exp.RunSet{Scale: *scale, Seed: *seed}
	var completed, failed []string
	for _, id := range ids {
		start := time.Now()
		tables, err := runOne(id, opts)
		res := exp.Result{ID: id, WallSeconds: time.Since(start).Seconds(), Tables: tables}
		if err != nil {
			res.Err = err.Error()
			failed = append(failed, id)
			fmt.Fprintf(os.Stderr, "pbench: %s failed: %v (continuing)\n", id, err)
		} else {
			completed = append(completed, id)
			if !*jsonOut {
				for _, t := range tables {
					t.Fprint(os.Stdout)
				}
			}
			fmt.Fprintf(os.Stderr, "[%s: %.1fs wall]\n", id, res.WallSeconds)
		}
		rs.Results = append(rs.Results, res)
	}

	if *native {
		start := time.Now()
		rep, err := exp.RunNative(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pbench: native benchmark failed: %v\n", err)
			failed = append(failed, "native")
		} else {
			rs.Native = &rep
			if !*jsonOut {
				tb := rep.Table()
				tb.Fprint(os.Stdout)
			}
			fmt.Fprintf(os.Stderr, "[native: %.1fs wall]\n", time.Since(start).Seconds())
		}
	}

	if *jsonOut {
		if err := rs.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if tw != nil {
		if err := tw.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "pbench: writing trace: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "[trace: %d events -> %s]\n", tw.Events(), *tracePath)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		runtime.GC()
		err = pprof.WriteHeapProfile(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}

	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "pbench: %d/%d experiments completed (%s); failed: %s\n",
			len(completed), len(ids), strings.Join(completed, ","), strings.Join(failed, ","))
		return 1
	}
	return 0
}

// runOne runs a single experiment, converting a panic (how experiments
// report internal inconsistencies) into an error so one bad id cannot
// take down the rest of the run.
func runOne(id string, opts exp.Options) (tables []exp.Table, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return exp.Run(id, opts)
}

package pbtree_test

import (
	"testing"

	"pbtree"
)

// TestFacadeEndToEnd exercises the public API surface: hierarchy,
// shared address space, heap, tree, CSB+ baseline and the query
// operators.
func TestFacadeEndToEnd(t *testing.T) {
	mem := pbtree.NewHierarchy(pbtree.DefaultMemConfig())
	space := pbtree.NewAddressSpace(mem.Config().LineSize)
	tab := pbtree.MustNewHeap(mem, space, 64)

	const n = 10000
	pairs := make([]pbtree.Pair, n)
	for i := range pairs {
		k := pbtree.Key(8 * (i + 1))
		pairs[i] = pbtree.Pair{Key: k, TID: tab.Append(k)}
	}

	idx := pbtree.MustNew(pbtree.Config{
		Width: 8, Prefetch: true, JumpArray: pbtree.JumpInternal,
		Mem: mem, Space: space,
	})
	if err := idx.Bulkload(pairs, 0.9); err != nil {
		t.Fatal(err)
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if idx.Name() != "p8iB+" {
		t.Fatalf("name = %q", idx.Name())
	}

	if tid, ok := idx.Search(8 * 500); !ok || tid != 500 {
		t.Fatalf("Search = %d, %v", tid, ok)
	}
	if got := pbtree.SelectTIDs(idx, 8, pbtree.MaxKey, pbtree.QueryOptions{}, nil); got != n {
		t.Fatalf("SelectTIDs = %d", got)
	}
	if got := pbtree.SelectTuples(idx, tab, 8*10, 8*29, pbtree.QueryOptions{}, nil); got != 20 {
		t.Fatalf("SelectTuples = %d", got)
	}
	outer := []pbtree.Key{8, 16, 17}
	if got := pbtree.IndexJoin(outer, idx, nil); got != 2 {
		t.Fatalf("IndexJoin = %d", got)
	}
	if got := pbtree.IndexJoinTuples(outer, idx, tab, 8, nil); got != 2 {
		t.Fatalf("IndexJoinTuples = %d", got)
	}

	csb := pbtree.MustNewCSB(pbtree.CSBConfig{Width: 8, Prefetch: true})
	if err := csb.Bulkload(pairs, 1.0); err != nil {
		t.Fatal(err)
	}
	if tid, ok := csb.Search(8 * 42); !ok || tid != 42 {
		t.Fatalf("CSB Search = %d, %v", tid, ok)
	}

	if st := mem.Stats(); st.Total() == 0 {
		t.Fatal("no cycles charged through the facade")
	}
}

// TestFacadeDiskMode sanity-checks the disk-resident configuration
// through the public API.
func TestFacadeDiskMode(t *testing.T) {
	cfg := pbtree.DiskMemConfig()
	if cfg.LineSize != 4096 {
		t.Fatalf("disk page size = %d", cfg.LineSize)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	idx := pbtree.MustNew(pbtree.Config{
		Width: 4, Prefetch: true, JumpArray: pbtree.JumpExternal,
		Mem: pbtree.NewHierarchy(cfg),
	})
	pairs := make([]pbtree.Pair, 100000)
	for i := range pairs {
		pairs[i] = pbtree.Pair{Key: pbtree.Key(8 * (i + 1)), TID: pbtree.TID(i + 1)}
	}
	if err := idx.Bulkload(pairs, 1.0); err != nil {
		t.Fatal(err)
	}
	// A page holds 512 pointers: 100K keys fit in 2 levels at w=4.
	if idx.Height() > 2 {
		t.Fatalf("disk tree height = %d", idx.Height())
	}
	if _, ok := idx.Search(8 * 7777); !ok {
		t.Fatal("lost key on disk")
	}
	if got := idx.Scan(8, 50000); got != 50000 {
		t.Fatalf("disk scan = %d", got)
	}
}

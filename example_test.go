package pbtree_test

import (
	"bytes"
	"fmt"

	"pbtree"
)

// Example builds the paper's p8eB+-Tree and exercises each operation.
func Example() {
	t := pbtree.MustNew(pbtree.Config{
		Width:     8,
		Prefetch:  true,
		JumpArray: pbtree.JumpExternal,
	})
	pairs := make([]pbtree.Pair, 100000)
	for i := range pairs {
		pairs[i] = pbtree.Pair{Key: pbtree.Key(2 * (i + 1)), TID: pbtree.TID(i + 1)}
	}
	if err := t.Bulkload(pairs, 1.0); err != nil {
		panic(err)
	}

	tid, ok := t.Search(200)
	fmt.Println("search:", tid, ok)

	t.Insert(201, 999)
	t.Delete(200)
	_, ok = t.Search(200)
	fmt.Println("after delete:", ok)

	fmt.Println("pairs scanned:", t.Scan(100, 1000))
	fmt.Println("levels:", t.Height())
	// Output:
	// search: 100 true
	// after delete: false
	// pairs scanned: 1000
	// levels: 3
}

// ExampleTree_NewScan shows the segmented range-scan protocol: the
// scanner pauses when the return buffer fills and resumes on the next
// call, prefetching leaves through the jump-pointer array throughout.
func ExampleTree_NewScan() {
	t := pbtree.MustNew(pbtree.Config{
		Width: 8, Prefetch: true, JumpArray: pbtree.JumpInternal,
	})
	for k := pbtree.Key(1); k <= 100; k++ {
		t.Insert(k, pbtree.TID(k))
	}
	sc := t.NewScan(10, 30)
	buf := make([]pbtree.TID, 8)
	total := 0
	calls := 0
	for {
		n := sc.Next(buf)
		if n == 0 {
			break
		}
		total += n
		calls++
	}
	fmt.Printf("%d pairs in %d calls\n", total, calls)
	// Output:
	// 21 pairs in 3 calls
}

// ExampleLoadTree demonstrates tree persistence: serialize, rebuild.
func ExampleLoadTree() {
	src := pbtree.MustNew(pbtree.Config{Width: 8, Prefetch: true})
	for k := pbtree.Key(1); k <= 1000; k++ {
		src.Insert(k, pbtree.TID(k*7))
	}
	var buf bytes.Buffer
	if _, err := src.WriteTo(&buf); err != nil {
		panic(err)
	}
	dst, err := pbtree.LoadTree(&buf, nil, 1.0)
	if err != nil {
		panic(err)
	}
	tid, _ := dst.Search(42)
	fmt.Println(dst.Len(), tid, dst.Name())
	// Output:
	// 1000 294 p8B+
}

// ExampleHierarchy shows the cycle accounting the experiments are
// built on: a cold miss costs the full latency, a prefetched line
// arrives while other work proceeds.
func ExampleHierarchy() {
	h := pbtree.NewHierarchy(pbtree.DefaultMemConfig())
	h.Access(0) // cold miss: 150 cycles
	fmt.Println("after cold miss:", h.Now())
	h.Prefetch(4096)
	h.Compute(200) // the fill completes under this work
	h.Access(4096) // free
	fmt.Println("after hidden miss:", h.Now())
	// Output:
	// after cold miss: 150
	// after hidden miss: 351
}

// Package pbtree is the public API of this repository: a faithful
// reproduction of Prefetching B+-Trees from "Improving Index
// Performance through Prefetching" (Shimin Chen, Phillip B. Gibbons,
// Todd C. Mowry; SIGMOD 2001).
//
// The package re-exports three layers:
//
//   - A simulated memory hierarchy (Hierarchy) modelling two cache
//     levels, a pipelined main memory and software prefetch, with the
//     paper's Compaq ES40-derived parameters as defaults. Go has no
//     prefetch intrinsic, so the paper's cache behaviour is reproduced
//     on this substrate; all reported times are simulated cycles.
//   - The pB+-Tree family (Tree): B+-Trees with nodes Width cache
//     lines wide, whole-node prefetching, and optional external or
//     internal jump-pointer arrays for range-scan prefetching. Trees
//     support bulkload, search, insertion, lazy deletion and
//     (segmented) range scans, and are fully functional indexes.
//   - The CSB+-Tree baseline (CSBTree) with bulkload and search.
//   - An observability layer: memory-event probes and operation
//     tracers (Collector, TraceWriter) that explain simulated runs
//     without perturbing them, and serving metrics (Metrics) for the
//     native model.
//   - A serving layer (Store, Server): pB+-Trees hash-partitioned
//     across single-writer shards with lock-free snapshot reads,
//     batched group lookups (Tree.SearchBatch), and a TCP front end
//     with a load generator (cmd/pbtree-server, cmd/pbtree-loadgen).
//
// Quick start:
//
//	t := pbtree.MustNew(pbtree.Config{
//		Width:     8,
//		Prefetch:  true,
//		JumpArray: pbtree.JumpExternal,
//	})
//	t.Bulkload(pairs, 1.0)
//	tid, ok := t.Search(42)
//	n := t.Scan(100, 1000) // scan 1000 tupleIDs from key 100
//
// The experiment harness that regenerates every table and figure of
// the paper lives in cmd/pbench.
package pbtree

import (
	"io"
	"net/http"

	"pbtree/internal/core"
	"pbtree/internal/csbtree"
	"pbtree/internal/csstree"
	"pbtree/internal/heap"
	"pbtree/internal/lsm"
	"pbtree/internal/memsys"
	"pbtree/internal/obs"
	"pbtree/internal/query"
	"pbtree/internal/repl"
	"pbtree/internal/serve"
	"pbtree/internal/ttree"
)

// Core index types.
type (
	// Key is a 4-byte index key.
	Key = core.Key
	// TID is a 4-byte tuple identifier.
	TID = core.TID
	// Pair is a <key, tupleID> pair.
	Pair = core.Pair
	// Tree is a (prefetching) B+-Tree over a simulated hierarchy.
	Tree = core.Tree
	// Scanner is a resumable segmented range scan over a Tree.
	Scanner = core.Scanner
	// Config selects the tree variant (width, prefetching, jump-pointer
	// arrays, cost model, memory hierarchy).
	Config = core.Config
	// CostModel gives instruction costs in cycles.
	CostModel = core.CostModel
	// UpdateStats counts structural events (splits, redistributions...).
	UpdateStats = core.UpdateStats
	// JumpArrayKind selects the range-scan prefetch structure.
	JumpArrayKind = core.JumpArrayKind
)

// Baseline index types: the structures the paper compares against or
// situates itself among.
type (
	// CSBTree is a Cache-Sensitive B+-Tree (bulkload, search, and —
	// as an extension beyond the paper — insertion/lazy deletion).
	CSBTree = csbtree.Tree
	// CSBConfig configures a CSBTree.
	CSBConfig = csbtree.Config
	// CSSTree is a read-only Cache-Sensitive Search Tree.
	CSSTree = csstree.Tree
	// CSSConfig configures a CSSTree.
	CSSConfig = csstree.Config
	// TTree is a Lehman-Carey T-Tree (the pre-cache-era main-memory
	// index, kept as a historical baseline).
	TTree = ttree.Tree
	// TTreeConfig configures a TTree.
	TTreeConfig = ttree.Config
)

// Memory model types. Every index charges its work to a Model: the
// simulated Hierarchy reproduces the paper's numbers cycle for cycle,
// while the Native model is a near-no-op that runs the same index code
// at real wall-clock speed and is safe for concurrent use.
type (
	// Model is the memory-system interface indexes charge to.
	Model = memsys.Model
	// Hierarchy is the cycle-accurate simulated two-level cache
	// hierarchy (single-threaded; owns the simulated clock).
	Hierarchy = memsys.Hierarchy
	// Native is the zero-cost native model: charges are no-ops (or
	// atomic counters), and all methods are concurrency-safe.
	Native = memsys.Native
	// NativeStats are the optional event counters of a counted Native.
	NativeStats = memsys.NativeStats
	// MemConfig describes a memory system (line size, caches, latencies).
	MemConfig = memsys.Config
	// MemStats is a snapshot of busy/stall cycles and miss counters.
	MemStats = memsys.Stats
	// AddressSpace allocates simulated addresses; share one between an
	// index and a heap table to co-locate them in the same cache.
	AddressSpace = memsys.AddressSpace
)

// Observability types. A Probe observes the hierarchy's memory-event
// stream and a Tracer the tree's operation context; both are strictly
// observation-only — simulated cycle counts are byte-identical with
// and without them attached. Metrics is the native-model counterpart:
// wall-clock serving metrics.
type (
	// Probe receives one MemEvent per memory-hierarchy event.
	Probe = memsys.Probe
	// Probes fans one event stream out to several probes.
	Probes = memsys.Probes
	// MemEvent is a single memory-hierarchy event (hit, miss,
	// prefetch, stall interval).
	MemEvent = memsys.Event
	// MemEventKind discriminates MemEvents.
	MemEventKind = memsys.EventKind
	// Tracer receives the operation context (op kind, tree level,
	// node kind) a tree announces as it works.
	Tracer = core.Tracer
	// Tracers fans the context stream out to several tracers.
	Tracers = core.Tracers
	// OpKind is an index operation (search, insert, delete, scan).
	OpKind = core.OpKind
	// NodeKind is the kind of node being visited.
	NodeKind = core.NodeKind
	// Collector aggregates events into per-op, per-level, per-kind
	// miss and stall tables. Attach as both Probe and Tracer.
	Collector = obs.Collector
	// AttrRow is one attributed row of a Collector report.
	AttrRow = obs.Row
	// TraceWriter dumps the event stream as a Chrome trace. Attach as
	// both Probe and Tracer.
	TraceWriter = obs.TraceWriter
	// Metrics holds lock-free per-operation latency histograms and
	// throughput counters for native-model serving, with expvar and
	// Prometheus exposition.
	Metrics = obs.Metrics
	// HistogramSnapshot is a point-in-time latency histogram copy.
	HistogramSnapshot = obs.HistogramSnapshot
)

// Memory event kinds.
const (
	EvL1Hit         = memsys.EvL1Hit
	EvL2Hit         = memsys.EvL2Hit
	EvMemMiss       = memsys.EvMemMiss
	EvPrefetchHit   = memsys.EvPrefetchHit
	EvPrefetchIssue = memsys.EvPrefetchIssue
)

// Index operation kinds.
const (
	OpSearch = core.OpSearch
	OpInsert = core.OpInsert
	OpDelete = core.OpDelete
	OpScan   = core.OpScan
)

// NewCollector creates an empty attribution collector.
func NewCollector() *Collector { return obs.NewCollector() }

// NewTraceWriter starts a Chrome trace on w; Close it to finish.
func NewTraceWriter(w io.Writer) *TraceWriter { return obs.NewTraceWriter(w) }

// NewMetrics creates an empty native serving-metrics registry.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// Storage and query layer types (the section 5 extensions).
type (
	// HeapTable is a simulated heap file of fixed-size tuples.
	HeapTable = heap.Table
	// QueryOptions controls the adaptive range-selection operators.
	QueryOptions = query.Options
	// Ablation disables individual design choices for ablation runs.
	Ablation = core.Ablation
)

// Jump-pointer array kinds.
const (
	// JumpNone disables across-leaf scan prefetching.
	JumpNone = core.JumpNone
	// JumpExternal maintains a chunked external jump-pointer array.
	JumpExternal = core.JumpExternal
	// JumpInternal links the bottom non-leaf nodes instead.
	JumpInternal = core.JumpInternal
)

// MaxKey is the largest possible key, usable as an open scan bound.
const MaxKey = core.MaxKey

// New creates a pB+-Tree with the given configuration. The zero
// Config is the plain one-line-node B+-Tree on a default hierarchy.
func New(cfg Config) (*Tree, error) { return core.New(cfg) }

// MustNew is New but panics on error.
func MustNew(cfg Config) *Tree { return core.MustNew(cfg) }

// NewCSB creates a CSB+-Tree baseline.
func NewCSB(cfg CSBConfig) (*CSBTree, error) { return csbtree.New(cfg) }

// MustNewCSB is NewCSB but panics on error.
func MustNewCSB(cfg CSBConfig) *CSBTree { return csbtree.MustNew(cfg) }

// NewCSS creates a read-only CSS-Tree baseline.
func NewCSS(cfg CSSConfig) (*CSSTree, error) { return csstree.New(cfg) }

// MustNewCSS is NewCSS but panics on error.
func MustNewCSS(cfg CSSConfig) *CSSTree { return csstree.MustNew(cfg) }

// NewTTree creates a T-Tree baseline.
func NewTTree(cfg TTreeConfig) (*TTree, error) { return ttree.New(cfg) }

// MustNewTTree is NewTTree but panics on error.
func MustNewTTree(cfg TTreeConfig) *TTree { return ttree.MustNew(cfg) }

// DefaultMemConfig returns the paper's Compaq ES40-based machine
// parameters (64 B lines, 64 KB 2-way L1, 2 MB direct-mapped L2,
// T1 = 150 cycles, Tnext = 10 cycles, B = 15).
func DefaultMemConfig() MemConfig { return memsys.DefaultConfig() }

// NewHierarchy creates a simulated memory hierarchy.
func NewHierarchy(cfg MemConfig) *Hierarchy { return memsys.New(cfg) }

// DefaultHierarchy creates a hierarchy with DefaultMemConfig.
func DefaultHierarchy() *Hierarchy { return memsys.Default() }

// NewNative creates a zero-cost native memory model: the same index
// code runs at real hardware speed, with every simulated charge a
// no-op. Safe for concurrent use; pair it with a frozen (post-
// bulkload) tree to serve concurrent readers.
func NewNative(cfg MemConfig) *Native { return memsys.NewNative(cfg) }

// DefaultNative creates a native model with DefaultMemConfig (the
// node layouts match the simulated defaults).
func DefaultNative() *Native { return memsys.DefaultNative() }

// NewNativeCounted creates a native model that additionally keeps
// atomic event counters (accesses, prefetches, compute cycles).
func NewNativeCounted(cfg MemConfig) *Native { return memsys.NewNativeCounted(cfg) }

// NewNativeHW creates a native model in hardware prefetch mode: index
// prefetches issue real CPU prefetch instructions (see
// HaveHardwarePrefetch). Config.HardwarePrefetch enables the same mode
// through tree construction.
func NewNativeHW(cfg MemConfig) *Native { return memsys.NewNativeHW(cfg) }

// HaveHardwarePrefetch reports whether this build issues real CPU
// prefetch instructions (PREFETCHT0 on amd64, PRFM PLDL1KEEP on
// arm64; other ports and -tags purego builds compile them to no-ops).
const HaveHardwarePrefetch = memsys.HaveHardwarePrefetch

// DefaultCostModel returns the calibrated instruction cost model.
func DefaultCostModel() CostModel { return core.DefaultCostModel() }

// LoadTree reconstructs a tree serialized with Tree.WriteTo,
// bulkloading it at the given fill factor onto mem — a *Hierarchy for
// simulation or a *Native for real execution (nil selects a fresh
// default hierarchy).
func LoadTree(r io.Reader, mem Model, fill float64) (*Tree, error) {
	return core.Load(r, mem, fill)
}

// DiskMemConfig returns a disk-resident machine model: 4 KB pages, a
// 16 MB buffer pool, a 256 MB page cache, 5M-cycle disk latency with
// command queuing (B = 33). Section 5 of the paper: the same
// prefetching techniques hide disk latency with pages in place of
// cache lines.
func DiskMemConfig() MemConfig { return memsys.DiskConfig() }

// NewAddressSpace creates a simulated address allocator with the
// given alignment (use the hierarchy's line size).
func NewAddressSpace(lineSize int) *AddressSpace {
	return memsys.NewAddressSpace(lineSize)
}

// NewHeap creates a heap file of tupleSize-byte tuples charged to the
// given memory model and address space.
func NewHeap(mem Model, space *AddressSpace, tupleSize int) (*HeapTable, error) {
	return heap.New(mem, space, tupleSize)
}

// MustNewHeap is NewHeap but panics on error.
func MustNewHeap(mem Model, space *AddressSpace, tupleSize int) *HeapTable {
	return heap.MustNew(mem, space, tupleSize)
}

// SelectTIDs runs an adaptive range selection over [start, end],
// calling emit per filled return buffer (section 4.3: plain scans for
// short estimated ranges, prefetching scans otherwise).
func SelectTIDs(t *Tree, start, end Key, opt QueryOptions, emit func([]TID)) int {
	return query.SelectTIDs(t, start, end, opt, emit)
}

// SelectTuples is SelectTIDs followed by prefetched tuple fetches from
// the heap table (section 5).
func SelectTuples(t *Tree, tab *HeapTable, start, end Key, opt QueryOptions, emit func(Key)) int {
	return query.SelectTuples(t, tab, start, end, opt, emit)
}

// IndexJoin probes the inner index once per outer key and reports the
// match count.
func IndexJoin(outer []Key, inner *Tree, emit func(Key, TID)) int {
	return query.IndexJoin(outer, inner, emit)
}

// IndexJoinTuples is IndexJoin with batched, prefetched tuple fetches.
func IndexJoinTuples(outer []Key, inner *Tree, tab *HeapTable, batch int, emit func(Key)) int {
	return query.IndexJoinTuples(outer, inner, tab, batch, emit)
}

// Serving layer (internal/serve): a sharded, snapshot-isolated store
// over pB+-Trees with batched group lookups, a TCP front end and a
// load generator.
type (
	// Store is a sharded key→tupleID store: lock-free snapshot reads,
	// one writer goroutine per shard.
	Store = serve.Store

	// StoreConfig configures a Store.
	StoreConfig = serve.StoreConfig

	// StoreStats is a point-in-time view of a Store's shards.
	StoreStats = serve.StoreStats

	// Lookup is one point-lookup result of a batched read.
	Lookup = serve.Lookup

	// Server is the TCP front end of a Store.
	Server = serve.Server

	// ServerConfig configures a Server.
	ServerConfig = serve.ServerConfig

	// ServerStats is the JSON payload of a STATS request.
	ServerStats = serve.ServerStats

	// BatcherConfig tunes the server's cross-request lookup batching.
	BatcherConfig = serve.BatcherConfig

	// AdmissionConfig sets the server's per-op-class admission token
	// budgets (GET/MGET and PUT/DEL hold one token each, SCANs hold
	// one per requested row), so overload rejects expensive work first.
	AdmissionConfig = serve.AdmissionConfig

	// BudgetStats is the STATS view of one admission class.
	BudgetStats = serve.BudgetStats

	// ServeClient is a wire-protocol client; connections negotiated to
	// protocol v2 pipeline concurrent calls over one socket
	// (PROTOCOL.md).
	ServeClient = serve.Client

	// ServeCall is one in-flight asynchronous client call
	// (ServeClient.Go).
	ServeCall = serve.Call

	// ServeRequest is one wire-protocol request; build these for the
	// asynchronous ServeClient.Go API (the synchronous helpers Get,
	// MGet, Scan, Put, Del build them internally).
	ServeRequest = serve.Request

	// ServeResponse is one wire-protocol response.
	ServeResponse = serve.Response

	// ServeOp identifies a wire-protocol operation (PROTOCOL.md §2.1).
	ServeOp = serve.Op

	// ServeStatus is a wire-protocol response status (PROTOCOL.md
	// §2.2).
	ServeStatus = serve.Status

	// LoadgenConfig describes a load-generation run.
	LoadgenConfig = serve.LoadgenConfig

	// LoadgenReport is the JSON result of a load-generation run.
	LoadgenReport = serve.LoadgenReport

	// LifecycleConfig enables request-lifecycle tracing on a Server:
	// per-stage latency histograms, a sampled slow-request log and an
	// optional Chrome trace (DESIGN.md §12).
	LifecycleConfig = serve.LifecycleConfig

	// StageStats summarizes one lifecycle-stage histogram inside
	// ServerStats.
	StageStats = serve.StageStats

	// StageDelta is one stage's before/after attribution delta in a
	// LoadgenReport.
	StageDelta = serve.StageDelta

	// Stage identifies one serving-pipeline stage of the
	// request-lifecycle clock.
	Stage = obs.Stage

	// DurableConfig enables per-shard WAL + checkpoint persistence for
	// a Store (DESIGN.md §9).
	DurableConfig = serve.DurableConfig

	// FsyncPolicy selects when the WAL is fsynced.
	FsyncPolicy = serve.FsyncPolicy

	// RecoveryStats describes one shard's recovery-on-open.
	RecoveryStats = serve.RecoveryStats

	// ServeFS is the filesystem surface of the durability layer; the
	// default is the OS, and serve.NewMemFS gives a deterministic
	// fault-injecting one for tests.
	ServeFS = serve.FS

	// LSMConfig tunes the LSM storage backend (StoreConfig.LSM).
	LSMConfig = lsm.Config
)

// Replication layer (internal/repl): WAL shipping over protocol v2,
// read replicas with bounded staleness, and epoch-fenced failover
// (DESIGN.md §13).
type (
	// ReplNode is one replication participant: it answers the
	// REPLICATE op class for its store (ServerConfig.Repl) and, on a
	// follower, pulls the primary's WAL.
	ReplNode = repl.Node

	// ReplConfig configures a ReplNode.
	ReplConfig = repl.Config

	// ReplStatus is the /replz JSON document of a ReplNode.
	ReplStatus = repl.Status

	// ReplicaSet is a client over one primary and its read replicas:
	// reads fan out across healthy replicas under a bounded-staleness
	// contract, writes go to the primary.
	ReplicaSet = repl.ReplicaSet

	// ReplicaSetConfig configures DialReplicaSet.
	ReplicaSetConfig = repl.ReplicaSetConfig
)

// NewReplNode builds a replication node over a store; call Start to
// activate it (see ReplConfig).
func NewReplNode(cfg ReplConfig) (*ReplNode, error) { return repl.New(cfg) }

// DialReplicaSet connects a read-replica client: reads round-robin
// across replicas whose probed lag stays within
// ReplicaSetConfig.MaxLagRecords, writes go to the primary.
func DialReplicaSet(cfg ReplicaSetConfig) (*ReplicaSet, error) { return repl.DialReplicaSet(cfg) }

// Storage backend names (StoreConfig.Backend). The backend is part of
// a durable store's on-disk identity (DESIGN.md §11).
const (
	// BackendPBTree is the default engine: full-tree snapshot
	// ping-pong with prefetched pB+-Tree reads.
	BackendPBTree = serve.BackendPBTree

	// BackendLSM is the write-optimized engine: memtable + sorted
	// runs with bloom filters and size-tiered compaction.
	BackendLSM = serve.BackendLSM
)

// ScenarioNames lists the loadgen's named workload presets
// (LoadgenConfig.Scenario).
func ScenarioNames() []string { return serve.ScenarioNames() }

// NewAdminMux builds the admin-plane HTTP handler for a running
// server: /metrics (Prometheus), /healthz, /statsz, /debug/vars and
// /debug/pprof (DESIGN.md §12). Mount it on its own listener, away
// from the data path. extra writers are appended to the /metrics
// exposition (e.g. ReplNode.WriteMetrics).
func NewAdminMux(srv *Server, st *Store, extra ...func(io.Writer) error) *http.ServeMux {
	return serve.NewAdminMux(srv, st, extra...)
}

// Stages lists the request-lifecycle pipeline stages in order.
func Stages() []Stage { return obs.Stages() }

// Wire-protocol operations (PROTOCOL.md §2.1). Prefixed Serve to
// stay clear of the tracer's index-operation kinds (OpSearch, OpScan,
// ...) above.
const (
	// ServeOpGet looks up one key.
	ServeOpGet = serve.OpGet

	// ServeOpMGet looks up a batch of keys as one group search.
	ServeOpMGet = serve.OpMGet

	// ServeOpScan returns pairs in a key range, capped by a row limit.
	ServeOpScan = serve.OpScan

	// ServeOpPut upserts a batch of pairs atomically per shard.
	ServeOpPut = serve.OpPut

	// ServeOpDel deletes a batch of keys.
	ServeOpDel = serve.OpDel

	// ServeOpStats returns the server's JSON stats payload.
	ServeOpStats = serve.OpStats

	// ServeOpHello negotiates the protocol version; must be the first
	// request on a connection (PROTOCOL.md §3).
	ServeOpHello = serve.OpHello

	// ServeOpReplicate carries the replication sub-commands: STATUS,
	// FETCH, SNAPFETCH and FENCE (PROTOCOL.md §9).
	ServeOpReplicate = serve.OpReplicate

	// ServeOpScanOpen registers a streaming-scan cursor over a key
	// range (PROTOCOL.md §10).
	ServeOpScanOpen = serve.OpScanOpen

	// ServeOpScanNext pulls the next bounded chunk of rows from a
	// streaming-scan cursor, admitting only that chunk's row tokens.
	ServeOpScanNext = serve.OpScanNext

	// ServeOpScanClose releases a streaming-scan cursor and the
	// snapshots it pins.
	ServeOpScanClose = serve.OpScanClose
)

// Server data-plane models (ServerConfig.DataPlane, DESIGN.md §15).
const (
	// DataPlanePool executes pipelined requests on a shared bounded
	// worker pool — the default plane.
	DataPlanePool = serve.DataPlanePool

	// DataPlaneGoroutine spawns one goroutine per in-flight request —
	// the legacy plane, kept for head-to-head benchmarks.
	DataPlaneGoroutine = serve.DataPlaneGoroutine
)

// Wire-protocol response statuses (PROTOCOL.md §2.2).
const (
	// StatusOK carries the operation's result payload.
	StatusOK = serve.StatusOK

	// StatusNotFound reports a GET miss.
	StatusNotFound = serve.StatusNotFound

	// StatusRetry reports admission rejection; back off by the
	// response's retry-after hint.
	StatusRetry = serve.StatusRetry

	// StatusErr carries an error message.
	StatusErr = serve.StatusErr

	// StatusDeadline reports that the request's deadline expired
	// before execution.
	StatusDeadline = serve.StatusDeadline

	// StatusFenced rejects a replication request from the wrong epoch;
	// the payload carries the highest epoch the responder has seen.
	StatusFenced = serve.StatusFenced
)

// WAL fsync policies.
const (
	// FsyncAlways syncs before every acknowledgement.
	FsyncAlways = serve.FsyncAlways

	// FsyncEvery syncs at most once per configured interval.
	FsyncEvery = serve.FsyncEvery

	// FsyncNever leaves syncing to the OS and segment rotation.
	FsyncNever = serve.FsyncNever
)

// Serving-layer errors.
var (
	// ErrOverloaded reports a full shard mutation queue: back off and
	// retry.
	ErrOverloaded = serve.ErrOverloaded

	// ErrClosed reports a write to a closed store.
	ErrClosed = serve.ErrClosed
)

// OpenStore builds a sharded store from sorted pairs and starts its
// shard writers.
func OpenStore(cfg StoreConfig, pairs []Pair) (*Store, error) {
	return serve.Open(cfg, pairs)
}

// NewServer wraps a store in a TCP front end; call Start to listen.
func NewServer(st *Store, cfg ServerConfig) *Server {
	return serve.NewServer(st, cfg)
}

// DialServer connects a wire-protocol client to a serving address,
// negotiating the pipelined protocol v2 when the server supports it.
func DialServer(addr string) (*ServeClient, error) {
	return serve.Dial(addr)
}

// DialServerV1 connects without negotiating, speaking protocol v1
// (one request per round trip) — the compatibility escape hatch.
func DialServerV1(addr string) (*ServeClient, error) {
	return serve.DialV1(addr)
}

// RunLoadgen drives a configured read/write/scan mix against a
// running server and reports throughput and latency percentiles.
func RunLoadgen(cfg LoadgenConfig) (*LoadgenReport, error) {
	return serve.RunLoadgen(cfg)
}

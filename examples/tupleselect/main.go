// Tuple-returning range selection (section 5 of the paper): a query
// wants the rows themselves, not tupleIDs, so after the index scan
// every qualifying tuple must be fetched from the heap file. The
// prefetching approach extends naturally — prefetch each batch of
// tuples as soon as their tupleIDs are known — and the adaptive
// scanner picks plain scans for short estimated ranges (section 4.3).
package main

import (
	"fmt"

	"pbtree"
)

const (
	rows      = 1_000_000
	tupleSize = 128 // two cache lines per row
)

func main() {
	// Index and heap share one hierarchy and one address space, so
	// they compete for the same simulated caches, as on real hardware.
	mem := pbtree.DefaultHierarchy()
	space := pbtree.NewAddressSpace(mem.Config().LineSize)
	tab := pbtree.MustNewHeap(mem, space, tupleSize)

	pairs := make([]pbtree.Pair, rows)
	for i := range pairs {
		k := pbtree.Key(8 * (i + 1))
		pairs[i] = pbtree.Pair{Key: k, TID: tab.Append(k)}
	}
	idx := pbtree.MustNew(pbtree.Config{
		Width: 8, Prefetch: true, JumpArray: pbtree.JumpExternal,
		Mem: mem, Space: space,
	})
	if err := idx.Bulkload(pairs, 1.0); err != nil {
		panic(err)
	}
	fmt.Printf("%s over a %d-row heap (%d B tuples)\n\n", idx.Name(), tab.Len(), tupleSize)

	run := func(label string, lo, hi pbtree.Key, tuples bool) {
		mem.FlushCaches()
		mem.ResetStats()
		start := mem.Now()
		var n int
		if tuples {
			n = pbtree.SelectTuples(idx, tab, lo, hi, pbtree.QueryOptions{}, nil)
		} else {
			n = pbtree.SelectTIDs(idx, lo, hi, pbtree.QueryOptions{}, nil)
		}
		st := mem.Stats()
		fmt.Printf("%-34s %8d rows %12d cycles  (%4.1f%% stalled)\n",
			label, n, mem.Now()-start, 100*float64(st.Stall)/float64(st.Total()))
	}

	// Short range: the optimizer's estimate routes it to the plain
	// scanner (no prefetch startup cost).
	run("short range, tupleIDs (adaptive)", 8*1000, 8*1019, false)
	// Long ranges: prefetching scans, with and without tuple fetch.
	run("100K range, tupleIDs", 8*1000, 8*100_999, false)
	run("100K range, full tuples", 8*1000, 8*100_999, true)

	// Contrast: fetch the same tuples one miss at a time.
	mem.FlushCaches()
	start := mem.Now()
	pbtree.SelectTIDs(idx, 8*1000, 8*100_999, pbtree.QueryOptions{}, func(b []pbtree.TID) {
		for _, tid := range b {
			tab.Read(tid)
		}
	})
	fmt.Printf("%-34s %8d rows %12d cycles\n", "100K range, serial tuple fetch", 100_000, mem.Now()-start)

	fmt.Println("\nsection 5: returning tuples costs only the additional step of")
	fmt.Println("prefetching each tuple once its tupleID is identified.")
}

// Quickstart: build a Prefetching B+-Tree, load it, and run the basic
// operations — search, insertion, deletion and a segmented range scan
// — printing the simulated cycle cost of each step.
package main

import (
	"fmt"

	"pbtree"
)

func main() {
	// A p8eB+-Tree: nodes 8 cache lines wide, whole-node prefetching,
	// and an external jump-pointer array for range-scan prefetching.
	t := pbtree.MustNew(pbtree.Config{
		Width:     8,
		Prefetch:  true,
		JumpArray: pbtree.JumpExternal,
	})

	// Bulkload one million <key, tupleID> pairs at a 90% fill factor.
	const n = 1_000_000
	pairs := make([]pbtree.Pair, n)
	for i := range pairs {
		pairs[i] = pbtree.Pair{Key: pbtree.Key(2 * (i + 1)), TID: pbtree.TID(i + 1)}
	}
	if err := t.Bulkload(pairs, 0.9); err != nil {
		panic(err)
	}
	fmt.Printf("%s: %d keys, %d levels, %.1f MB simulated\n",
		t.Name(), t.Len(), t.Height(), float64(t.SpaceUsed())/(1<<20))

	mem := t.Mem()
	mem.ResetStats()

	// Point lookups.
	start := mem.Now()
	for k := pbtree.Key(2); k <= 2000; k += 2 {
		if _, ok := t.Search(k); !ok {
			panic("key lost")
		}
	}
	fmt.Printf("1000 searches:        %8d simulated cycles\n", mem.Now()-start)

	// Insertions of new keys (odd keys fall between the loaded ones).
	start = mem.Now()
	for k := pbtree.Key(1); k <= 2000; k += 2 {
		t.Insert(k, pbtree.TID(k))
	}
	fmt.Printf("1000 insertions:      %8d simulated cycles\n", mem.Now()-start)

	// A segmented range scan: the scanner pauses whenever the return
	// buffer fills and resumes on the next call, prefetching the leaf
	// that is k nodes ahead through the jump-pointer array.
	start = mem.Now()
	sc := t.NewScan(1000, pbtree.MaxKey)
	buf := make([]pbtree.TID, 4096)
	total := 0
	for {
		got := sc.Next(buf)
		if got == 0 {
			break
		}
		total += got
		if total >= 100_000 {
			break
		}
	}
	fmt.Printf("scan of %d pairs: %8d simulated cycles\n", total, mem.Now()-start)

	// Deletions (lazy: structural changes only when a node empties).
	start = mem.Now()
	for k := pbtree.Key(1); k <= 2000; k += 2 {
		if !t.Delete(k) {
			panic("delete lost a key")
		}
	}
	fmt.Printf("1000 deletions:       %8d simulated cycles\n", mem.Now()-start)

	st := mem.Stats()
	fmt.Printf("\ncycle breakdown: busy=%d stall=%d (%.0f%% of time on dcache stalls)\n",
		st.Busy, st.Stall, 100*float64(st.Stall)/float64(st.Total()))
	us := t.UpdateStats()
	fmt.Printf("structural events: %d leaf splits, %d jump-pointer inserts, %d hint repairs\n",
		us.LeafSplits, us.JumpPointerInserts, us.HintRepairs)
}

// Tuning: picking the node width w and the prefetching distance k for
// a given memory system, as section 2.2 and equation (3) describe.
//
// The optimal width grows with the machine's normalized memory
// bandwidth B = T1/Tnext: the more misses the memory system can
// overlap, the wider (and flatter) the tree should be. The prefetch
// distance is a property of the scan code, not the structure, so a
// deployed index adapts to a new machine by changing one constant.
package main

import (
	"fmt"
	"math/rand"

	"pbtree"
)

const nKeys = 1_000_000

func pairs() []pbtree.Pair {
	ps := make([]pbtree.Pair, nKeys)
	for i := range ps {
		ps[i] = pbtree.Pair{Key: pbtree.Key(8 * (i + 1)), TID: pbtree.TID(i + 1)}
	}
	return ps
}

// coldSearchCycles measures cold-cache searches for 2000 random keys.
func coldSearchCycles(t *pbtree.Tree, seed int64) uint64 {
	r := rand.New(rand.NewSource(seed))
	mem := t.Mem()
	mem.ResetStats()
	start := mem.Now()
	for i := 0; i < 2000; i++ {
		mem.FlushCaches()
		t.Search(pbtree.Key(8 * (r.Intn(nKeys) + 1)))
	}
	return mem.Now() - start
}

func main() {
	ps := pairs()

	fmt.Println("1. node width vs memory bandwidth (cold search, M cycles)")
	fmt.Printf("%6s", "B")
	widths := []int{1, 2, 4, 8, 16}
	for _, w := range widths {
		fmt.Printf(" %8s", fmt.Sprintf("w=%d", w))
	}
	fmt.Println("   best")
	for _, b := range []int{5, 15, 30} {
		mcfg := pbtree.DefaultMemConfig().WithBandwidth(b)
		fmt.Printf("%6d", b)
		best, bestW := ^uint64(0), 0
		for _, w := range widths {
			t := pbtree.MustNew(pbtree.Config{
				Width:    w,
				Prefetch: w > 1,
				Mem:      pbtree.NewHierarchy(mcfg),
			})
			if err := t.Bulkload(ps, 1.0); err != nil {
				panic(err)
			}
			c := coldSearchCycles(t, int64(b))
			fmt.Printf(" %8.2f", float64(c)/1e6)
			if c < best {
				best, bestW = c, w
			}
		}
		fmt.Printf("   w=%d\n", bestW)
	}

	fmt.Println("\n2. prefetching distance k for scans (1M-pair scan, M cycles)")
	fmt.Println("   equation (3): k = ceil(B/w); B=15, w=8 gives k=2, plus slack -> 3")
	for _, k := range []int{1, 2, 3, 4, 8, 16} {
		t := pbtree.MustNew(pbtree.Config{
			Width:        8,
			Prefetch:     true,
			JumpArray:    pbtree.JumpExternal,
			PrefetchDist: k,
		})
		if err := t.Bulkload(ps, 1.0); err != nil {
			panic(err)
		}
		mem := t.Mem()
		mem.FlushCaches()
		mem.ResetStats()
		start := mem.Now()
		if got := t.Scan(8, nKeys/2); got != nKeys/2 {
			panic("short scan")
		}
		fmt.Printf("   k=%-3d %8.2f\n", k, float64(mem.Now()-start)/1e6)
	}

	fmt.Println("\n3. default configuration chosen for this machine model:")
	t := pbtree.MustNew(pbtree.Config{Width: 8, Prefetch: true, JumpArray: pbtree.JumpExternal})
	cfg := t.Config()
	fmt.Printf("   %s: w=%d, k=%d, chunk=%d lines (B=%.0f)\n",
		t.Name(), cfg.Width, cfg.PrefetchDist, cfg.ChunkLines,
		t.Mem().Config().Bandwidth())
}

// Range selection on a non-clustered index: the workload that
// motivates jump-pointer arrays. A reporting query selects all orders
// in a date range through a secondary index, so every qualifying
// <key, tupleID> pair is read off the leaf chain.
//
// The example compares the plain B+-Tree, the p8B+-Tree (wide
// prefetched nodes only) and the p8eB+-Tree (wide nodes + external
// jump-pointer array) on range selections of increasing size, printing
// the speedup ladder the paper reports in Figure 10.
package main

import (
	"fmt"
	"math/rand"

	"pbtree"
)

const nOrders = 2_000_000

func buildIndex(cfg pbtree.Config) *pbtree.Tree {
	t := pbtree.MustNew(cfg)
	pairs := make([]pbtree.Pair, nOrders)
	for i := range pairs {
		// Key: order date as day offset * spacing; TID: row id.
		pairs[i] = pbtree.Pair{Key: pbtree.Key(4 * (i + 1)), TID: pbtree.TID(i + 1)}
	}
	if err := t.Bulkload(pairs, 1.0); err != nil {
		panic(err)
	}
	t.Mem().ResetStats()
	return t
}

// selectRange runs one range selection of want pairs from a cold
// cache (range queries rarely find the leaves cached) and returns the
// simulated cycles.
func selectRange(t *pbtree.Tree, start pbtree.Key, want int) uint64 {
	t.Mem().FlushCaches()
	before := t.Mem().Now()
	// The return buffer caps each call; the last one is sized to the
	// remainder so exactly `want` rows are fetched.
	buf := make([]pbtree.TID, 4096)
	sc := t.NewScan(start, pbtree.MaxKey)
	got := 0
	for got < want {
		seg := buf
		if rem := want - got; rem < len(buf) {
			seg = buf[:rem]
		}
		n := sc.Next(seg)
		if n == 0 {
			break
		}
		got += n
	}
	if got < want {
		panic("range ran off the index")
	}
	return t.Mem().Now() - before
}

func main() {
	configs := []pbtree.Config{
		{Width: 1},
		{Width: 8, Prefetch: true},
		{Width: 8, Prefetch: true, JumpArray: pbtree.JumpExternal},
	}
	trees := make([]*pbtree.Tree, len(configs))
	for i, cfg := range configs {
		trees[i] = buildIndex(cfg)
	}

	fmt.Printf("range selection on a %d-row non-clustered index (simulated cycles, avg of 20 queries)\n\n", nOrders)
	fmt.Printf("%10s %14s %14s %14s %10s %10s\n",
		"rows", trees[0].Name(), trees[1].Name(), trees[2].Name(), "p8 spd", "p8e spd")

	r := rand.New(rand.NewSource(42))
	for _, rows := range []int{100, 1_000, 10_000, 100_000, 1_000_000} {
		const queries = 20
		var totals [3]uint64
		for q := 0; q < queries; q++ {
			start := pbtree.Key(4 * (r.Intn(nOrders-rows) + 1))
			for i, t := range trees {
				totals[i] += selectRange(t, start, rows)
			}
		}
		for i := range totals {
			totals[i] /= queries
		}
		fmt.Printf("%10d %14d %14d %14d %9.1fx %9.1fx\n",
			rows, totals[0], totals[1], totals[2],
			float64(totals[0])/float64(totals[1]),
			float64(totals[0])/float64(totals[2]))
	}
	fmt.Println("\npaper, figure 10(a): p8 alone gives ~3.5x on long scans; the jump-pointer")
	fmt.Println("array roughly doubles that (6.5-8.7x overall); short scans gain little.")
}

// Nested-loop index join: the search-heavy workload that motivates
// wide prefetched nodes. For every tuple of an outer relation, the
// join probes an index on the inner relation — millions of random
// point lookups with a warm cache, exactly the "Search" bar of
// Figure 1.
//
// The example joins against B+-Tree, CSB+-Tree, p8B+-Tree and
// p8CSB+-Tree inner indexes and reports simulated cycles per probe.
package main

import (
	"fmt"
	"math/rand"

	"pbtree"
)

const (
	innerRows = 3_000_000
	probes    = 200_000
)

// prober is the shared surface of Tree and CSBTree.
type prober interface {
	Name() string
	Search(pbtree.Key) (pbtree.TID, bool)
	Mem() pbtree.Model
	Height() int
}

func innerPairs() []pbtree.Pair {
	pairs := make([]pbtree.Pair, innerRows)
	for i := range pairs {
		pairs[i] = pbtree.Pair{Key: pbtree.Key(8 * (i + 1)), TID: pbtree.TID(i + 1)}
	}
	return pairs
}

func main() {
	pairs := innerPairs()
	indexes := []prober{}

	for _, cfg := range []pbtree.Config{
		{Width: 1},
		{Width: 8, Prefetch: true},
	} {
		t := pbtree.MustNew(cfg)
		if err := t.Bulkload(pairs, 1.0); err != nil {
			panic(err)
		}
		indexes = append(indexes, t)
	}
	for _, cfg := range []pbtree.CSBConfig{
		{Width: 1},
		{Width: 8, Prefetch: true},
	} {
		t := pbtree.MustNewCSB(cfg)
		if err := t.Bulkload(pairs, 1.0); err != nil {
			panic(err)
		}
		indexes = append(indexes, t)
	}

	// The outer relation: a stream of join keys, all of which match
	// (a foreign-key join).
	r := rand.New(rand.NewSource(7))
	outer := make([]pbtree.Key, probes)
	for i := range outer {
		outer[i] = pbtree.Key(8 * (r.Intn(innerRows) + 1))
	}

	fmt.Printf("nested-loop index join: %d probes into a %d-row inner index\n\n", probes, innerRows)
	fmt.Printf("%-12s %7s %16s %12s %9s\n", "inner index", "levels", "cycles (total)", "cycles/probe", "speedup")

	var base uint64
	for _, ix := range indexes {
		mem := ix.Mem()
		// Warm up: the join reuses the index continuously.
		for _, k := range outer[:probes/10] {
			ix.Search(k)
		}
		mem.ResetStats()
		start := mem.Now()
		matched := 0
		for _, k := range outer {
			if _, ok := ix.Search(k); ok {
				matched++
			}
		}
		total := mem.Now() - start
		if matched != probes {
			panic("join lost matches")
		}
		if base == 0 {
			base = total
		}
		fmt.Printf("%-12s %7d %16d %12.1f %8.2fx\n",
			ix.Name(), ix.Height(), total, float64(total)/probes, float64(base)/float64(total))
	}
	fmt.Println("\npaper, figure 7(a): CSB+ ~1.15x, p8B+ 1.27-1.47x over the B+-Tree;")
	fmt.Println("prefetching combines with the CSB+ layout (p8CSB+ fastest).")
}

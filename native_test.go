package pbtree_test

// Native-mode tests: the same index code that reproduces the paper's
// simulated numbers also runs at real wall-clock speed on the
// zero-cost Native memory model, and a frozen (post-bulkload) tree
// serves concurrent readers. Run with -race to verify the concurrency
// claims; BenchmarkNativeConcurrentSearch reports real ns/op.

import (
	"runtime"
	"sync"
	"testing"

	"pbtree"
)

// buildNativeTree bulkloads n sequential even keys (2, 4, ..., 2n)
// onto a fresh native model, with a heap table sharing its address
// space. The returned tree is frozen: tests only read it.
func buildNativeTree(t testing.TB, cfg pbtree.Config, n int) (*pbtree.Tree, *pbtree.HeapTable) {
	t.Helper()
	mem := pbtree.DefaultNative()
	space := pbtree.NewAddressSpace(mem.Config().LineSize)
	tab := pbtree.MustNewHeap(mem, space, 64)
	cfg.Mem = mem
	cfg.Space = space
	tree := pbtree.MustNew(cfg)
	pairs := make([]pbtree.Pair, n)
	for i := range pairs {
		k := pbtree.Key(2 * (i + 1))
		pairs[i] = pbtree.Pair{Key: k, TID: tab.Append(k)}
	}
	if err := tree.Bulkload(pairs, 1.0); err != nil {
		t.Fatal(err)
	}
	return tree, tab
}

// nativeConfigs covers every read-path variant: plain, prefetched
// wide nodes, and both jump-pointer arrays.
var nativeConfigs = []struct {
	name string
	cfg  pbtree.Config
}{
	{"B+", pbtree.Config{Width: 1}},
	{"p8B+", pbtree.Config{Width: 8, Prefetch: true}},
	{"p8eB+", pbtree.Config{Width: 8, Prefetch: true, JumpArray: pbtree.JumpExternal}},
	{"p8iB+", pbtree.Config{Width: 8, Prefetch: true, JumpArray: pbtree.JumpInternal}},
}

// TestNativeMatchesSimulated checks that a native-model tree returns
// exactly the same results as its simulated twin.
func TestNativeMatchesSimulated(t *testing.T) {
	const n = 5000
	for _, tc := range nativeConfigs {
		t.Run(tc.name, func(t *testing.T) {
			native, _ := buildNativeTree(t, tc.cfg, n)
			sim := pbtree.MustNew(tc.cfg)
			pairs := make([]pbtree.Pair, n)
			for i := range pairs {
				pairs[i] = pbtree.Pair{Key: pbtree.Key(2 * (i + 1)), TID: pbtree.TID(i + 1)}
			}
			if err := sim.Bulkload(pairs, 1.0); err != nil {
				t.Fatal(err)
			}
			for k := pbtree.Key(0); k <= 2*n+2; k++ {
				ntid, nok := native.Search(k)
				stid, sok := sim.Search(k)
				if nok != sok || ntid != stid {
					t.Fatalf("Search(%d): native (%d, %v) != simulated (%d, %v)", k, ntid, nok, stid, sok)
				}
			}
			if got, want := native.Scan(2, 1000), sim.Scan(2, 1000); got != want {
				t.Fatalf("Scan: native %d != simulated %d", got, want)
			}
		})
	}
}

// TestNativeConcurrentReads bulkloads once and hammers the frozen tree
// with parallel Search, Scan, SelectTIDs and IndexJoin goroutines,
// asserting every result matches a serial baseline. Run with -race.
func TestNativeConcurrentReads(t *testing.T) {
	const n = 20000
	for _, tc := range nativeConfigs {
		t.Run(tc.name, func(t *testing.T) {
			tree, tab := buildNativeTree(t, tc.cfg, n)

			// Serial baselines.
			outer := make([]pbtree.Key, 2000)
			for i := range outer {
				outer[i] = pbtree.Key(2*i + 1 + 2*(i%2)) // mix of hits and misses
			}
			wantJoin := pbtree.IndexJoin(outer, tree, nil)
			wantSel := pbtree.SelectTIDs(tree, 1001, 9001, pbtree.QueryOptions{}, nil)
			wantShort := pbtree.SelectTIDs(tree, 501, 551, pbtree.QueryOptions{}, nil)
			wantTuples := pbtree.SelectTuples(tree, tab, 1001, 9001, pbtree.QueryOptions{}, nil)
			buf := make([]pbtree.TID, 500)
			wantScan := tree.NewScan(777, pbtree.MaxKey).Next(buf)

			workers := 4 * runtime.GOMAXPROCS(0)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					// Point lookups: every key present, every odd key absent.
					for i := 0; i < 300; i++ {
						k := pbtree.Key(2 * ((w*131+i*17)%n + 1))
						tid, ok := tree.Search(k)
						if !ok || tid != pbtree.TID(k/2) {
							t.Errorf("worker %d: Search(%d) = (%d, %v), want (%d, true)", w, k, tid, ok, k/2)
							return
						}
						if _, ok := tree.Search(k - 1); ok {
							t.Errorf("worker %d: Search(%d) found a missing key", w, k-1)
							return
						}
					}
					// Range scans.
					lbuf := make([]pbtree.TID, 500)
					if got := tree.NewScan(777, pbtree.MaxKey).Next(lbuf); got != wantScan {
						t.Errorf("worker %d: Scan = %d, want %d", w, got, wantScan)
						return
					}
					// Adaptive selections (long exercises the prefetching
					// scanner, short the estimate + plain scanner).
					if got := pbtree.SelectTIDs(tree, 1001, 9001, pbtree.QueryOptions{}, nil); got != wantSel {
						t.Errorf("worker %d: SelectTIDs = %d, want %d", w, got, wantSel)
						return
					}
					if got := pbtree.SelectTIDs(tree, 501, 551, pbtree.QueryOptions{}, nil); got != wantShort {
						t.Errorf("worker %d: short SelectTIDs = %d, want %d", w, got, wantShort)
						return
					}
					if got := pbtree.SelectTuples(tree, tab, 1001, 9001, pbtree.QueryOptions{}, nil); got != wantTuples {
						t.Errorf("worker %d: SelectTuples = %d, want %d", w, got, wantTuples)
						return
					}
					// Index join probes.
					if got := pbtree.IndexJoin(outer, tree, nil); got != wantJoin {
						t.Errorf("worker %d: IndexJoin = %d, want %d", w, got, wantJoin)
						return
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

// TestNativeHotPathIsSimulatorFree proves native-mode reads never
// reach the simulator: an uncounted Native model records nothing, and
// no *Hierarchy exists to accumulate stall cycles.
func TestNativeHotPathIsSimulatorFree(t *testing.T) {
	tree, _ := buildNativeTree(t, pbtree.Config{Width: 8, Prefetch: true, JumpArray: pbtree.JumpExternal}, 10000)
	native, ok := tree.Mem().(*pbtree.Native)
	if !ok {
		t.Fatalf("tree.Mem() = %T, want *pbtree.Native", tree.Mem())
	}
	for i := 0; i < 1000; i++ {
		tree.Search(pbtree.Key(2 * (i + 1)))
	}
	tree.Scan(2, 5000)
	if got := native.Stats(); got != (pbtree.MemStats{}) {
		t.Fatalf("native stats after reads = %+v, want zero (no simulator accounting)", got)
	}
	if got := native.Now(); got != 0 {
		t.Fatalf("native clock advanced to %d; the hot path must not touch a simulated clock", got)
	}
}

// BenchmarkNativeConcurrentSearch measures real (wall-clock) search
// throughput on the native model across GOMAXPROCS goroutines:
//
//	go test -bench NativeConcurrentSearch -cpu 1,2,4,8 .
func BenchmarkNativeConcurrentSearch(b *testing.B) {
	const n = 1 << 20
	for _, tc := range nativeConfigs {
		b.Run(tc.name, func(b *testing.B) {
			tree, _ := buildNativeTree(b, tc.cfg, n)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					k := pbtree.Key(2 * ((i*2654435761)%n + 1))
					if _, ok := tree.Search(k); !ok {
						b.Fatalf("lost key %d", k)
					}
					i++
				}
			})
		})
	}
}

// TestNativeMetricsConcurrent serves concurrent reads with the serving
// metrics attached and checks the counters add up. Run with -race: the
// histograms must be safe under full read concurrency.
func TestNativeMetricsConcurrent(t *testing.T) {
	const n = 20000
	tree, _ := buildNativeTree(t, pbtree.Config{Width: 8, Prefetch: true, JumpArray: pbtree.JumpExternal}, n)
	m := pbtree.NewMetrics()

	workers := 4 * runtime.GOMAXPROCS(0)
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]pbtree.TID, 100)
			for i := 0; i < perWorker; i++ {
				k := pbtree.Key(2 * ((w*131+i*17)%n + 1))
				stop := m.Time(pbtree.OpSearch)
				_, ok := tree.Search(k)
				stop()
				if !ok {
					t.Errorf("worker %d: lost key %d", w, k)
					return
				}
			}
			stop := m.Time(pbtree.OpScan)
			tree.NewScan(2, pbtree.MaxKey).Next(buf)
			stop()
		}(w)
	}
	wg.Wait()

	if got, want := m.Snapshot(pbtree.OpSearch).Count, uint64(workers*perWorker); got != want {
		t.Errorf("search count = %d, want %d", got, want)
	}
	if got, want := m.Snapshot(pbtree.OpScan).Count, uint64(workers); got != want {
		t.Errorf("scan count = %d, want %d", got, want)
	}
	if m.Snapshot(pbtree.OpSearch).Quantile(0.5) == 0 {
		t.Error("search p50 is zero; clocks did not advance")
	}
}

// BenchmarkNativeSearchMetered bounds the cost of leaving the serving
// metrics on: bare vs metrics-wrapped native searches under the same
// concurrency. The delta is the full per-op instrumentation price (two
// clock reads plus three atomic adds).
func BenchmarkNativeSearchMetered(b *testing.B) {
	const n = 1 << 20
	tree, _ := buildNativeTree(b, pbtree.Config{Width: 8, Prefetch: true}, n)
	search := func(i int) {
		k := pbtree.Key(2 * ((i*2654435761)%n + 1))
		if _, ok := tree.Search(k); !ok {
			b.Fatalf("lost key %d", k)
		}
	}
	b.Run("bare", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				search(i)
				i++
			}
		})
	})
	b.Run("metered", func(b *testing.B) {
		m := pbtree.NewMetrics()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				stop := m.Time(pbtree.OpSearch)
				search(i)
				stop()
				i++
			}
		})
	})
}

// BenchmarkNativeConcurrentScan measures wall-clock segmented-scan
// throughput (500 tupleIDs per scan) under concurrency.
func BenchmarkNativeConcurrentScan(b *testing.B) {
	const n = 1 << 20
	tree, _ := buildNativeTree(b, pbtree.Config{Width: 8, Prefetch: true, JumpArray: pbtree.JumpInternal}, n)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		buf := make([]pbtree.TID, 500)
		i := 0
		for pb.Next() {
			start := pbtree.Key(2 * ((i*2654435761)%(n-1000) + 1))
			if got := tree.NewScan(start, pbtree.MaxKey).Next(buf); got == 0 {
				b.Fatal("empty scan")
			}
			i++
		}
	})
}

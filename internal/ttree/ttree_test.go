package ttree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pbtree/internal/core"
	"pbtree/internal/memsys"
)

func TestInsertSearch(t *testing.T) {
	for _, w := range []int{1, 2, 4} {
		tr := MustNew(Config{Width: w})
		r := rand.New(rand.NewSource(1))
		const n = 5000
		keys := make([]core.Key, n)
		for i := range keys {
			keys[i] = core.Key(8 * (i + 1))
		}
		r.Shuffle(n, func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
		for _, k := range keys {
			if !tr.Insert(k, core.TID(k)) {
				t.Fatalf("w=%d: Insert(%d) duplicate", w, k)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		if tr.Len() != n {
			t.Fatalf("w=%d: Len=%d", w, tr.Len())
		}
		for _, k := range keys {
			tid, ok := tr.Search(k)
			if !ok || tid != core.TID(k) {
				t.Fatalf("w=%d: Search(%d)=%d,%v", w, k, tid, ok)
			}
		}
		for _, k := range []core.Key{0, 3, 11, 8*n + 8} {
			if _, ok := tr.Search(k); ok {
				t.Fatalf("w=%d: phantom %d", w, k)
			}
		}
	}
}

func TestInsertDuplicateUpdates(t *testing.T) {
	tr := MustNew(Config{})
	tr.Insert(5, 1)
	if tr.Insert(5, 9) {
		t.Fatal("duplicate reported new")
	}
	if tid, _ := tr.Search(5); tid != 9 {
		t.Fatalf("tid=%d", tid)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len=%d", tr.Len())
	}
}

func TestDeleteAll(t *testing.T) {
	tr := MustNew(Config{Width: 1})
	r := rand.New(rand.NewSource(2))
	const n = 3000
	keys := make([]core.Key, n)
	for i := range keys {
		keys[i] = core.Key(i + 1)
	}
	r.Shuffle(n, func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	for _, k := range keys {
		tr.Insert(k, core.TID(k))
	}
	r.Shuffle(n, func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	for i, k := range keys {
		if !tr.Delete(k) {
			t.Fatalf("Delete(%d) failed", k)
		}
		if tr.Delete(k) {
			t.Fatalf("Delete(%d) twice", k)
		}
		if i%331 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d deletes: %v", i+1, err)
			}
		}
	}
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Fatalf("Len=%d Height=%d", tr.Len(), tr.Height())
	}
}

func TestMixedAgainstModel(t *testing.T) {
	tr := MustNew(Config{Width: 2})
	model := map[core.Key]core.TID{}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 30000; i++ {
		k := core.Key(r.Intn(5000) + 1)
		switch r.Intn(4) {
		case 0, 1:
			tid := core.TID(r.Uint32())
			_, existed := model[k]
			if tr.Insert(k, tid) == existed {
				t.Fatalf("op %d: Insert mismatch", i)
			}
			model[k] = tid
		case 2:
			_, existed := model[k]
			if tr.Delete(k) != existed {
				t.Fatalf("op %d: Delete(%d) mismatch", i, k)
			}
			delete(model, k)
		case 3:
			tid, ok := tr.Search(k)
			wtid, wok := model[k]
			if ok != wok || (ok && tid != wtid) {
				t.Fatalf("op %d: Search mismatch", i)
			}
		}
		if i%5000 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
			if tr.Len() != len(model) {
				t.Fatalf("op %d: Len=%d model=%d", i, tr.Len(), len(model))
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInsertDelete(t *testing.T) {
	f := func(raw []uint16) bool {
		tr := MustNew(Config{Width: 1})
		model := map[core.Key]bool{}
		for _, v := range raw {
			k := core.Key(v%1024) + 1
			tr.Insert(k, 1)
			model[k] = true
		}
		if tr.Len() != len(model) || tr.CheckInvariants() != nil {
			return false
		}
		for k := range model {
			if !tr.Delete(k) {
				return false
			}
		}
		return tr.Len() == 0 && tr.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHeightBalanced(t *testing.T) {
	tr := MustNew(Config{Width: 1})
	// Ascending insertion is the AVL worst case without rotations.
	const n = 20000
	for i := 1; i <= n; i++ {
		tr.Insert(core.Key(i), core.TID(i))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// ~n/capacity nodes; AVL height <= 1.44 log2(nodes) + 2.
	nodes := n/tr.Capacity() + 1
	maxH := 2
	for v := 1; v < nodes; v *= 2 {
		maxH++
	}
	if tr.Height() > maxH*3/2+2 {
		t.Fatalf("height %d too large for %d nodes", tr.Height(), nodes)
	}
}

func TestConfigErrors(t *testing.T) {
	if _, err := New(Config{Width: -1}); err == nil {
		t.Error("negative width accepted")
	}
	if _, err := New(Config{MinFill: 1000}); err == nil {
		t.Error("oversized min fill accepted")
	}
	if MustNew(Config{Width: 2}).Name() != "T2-tree" {
		t.Error("name mismatch")
	}
	if MustNew(Config{}).Name() != "T-tree" {
		t.Error("name mismatch")
	}
}

// TestBPlusBeatsTTree reproduces the section 5 claim: on a modern
// memory hierarchy the B+-Tree outperforms the T-Tree on searches,
// because the T-Tree pays roughly one miss per binary level.
func TestBPlusBeatsTTree(t *testing.T) {
	const n = 200000
	keys := make([]core.Key, n)
	for i := range keys {
		keys[i] = core.Key(8 * (i + 1))
	}
	r := rand.New(rand.NewSource(4))
	r.Shuffle(n, func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })

	tt := MustNew(Config{Width: 1})
	for _, k := range keys {
		tt.Insert(k, 1)
	}
	bp := core.MustNew(core.Config{Width: 1, Mem: memsys.Default()})
	pairs := make([]core.Pair, n)
	for i := range pairs {
		pairs[i] = core.Pair{Key: core.Key(8 * (i + 1)), TID: 1}
	}
	if err := bp.Bulkload(pairs, 1.0); err != nil {
		t.Fatal(err)
	}

	probe := func(search func(core.Key) (core.TID, bool), mem memsys.Model) uint64 {
		r := rand.New(rand.NewSource(5))
		start := mem.Now()
		for i := 0; i < 2000; i++ {
			mem.FlushCaches()
			if _, ok := search(core.Key(8 * (r.Intn(n) + 1))); !ok {
				t.Fatal("lost key")
			}
		}
		return mem.Now() - start
	}
	ttTime := probe(tt.Search, tt.Mem())
	bpTime := probe(bp.Search, bp.Mem())
	if bpTime >= ttTime {
		t.Errorf("B+ search (%d) should beat T-tree (%d) on modern memory", bpTime, ttTime)
	}
}

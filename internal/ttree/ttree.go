// Package ttree implements T-Trees (Lehman and Carey, VLDB 1986), the
// index structure that preceded cache-conscious B+-Trees for main
// memory databases. Section 5 of the paper recounts that the T-Tree
// was "the index structure of choice for main memory databases for
// over a decade" until modern cache-miss latencies made B+-Trees win;
// implementing it over the simulated hierarchy lets that claim be
// measured (see the extindexes experiment).
//
// A T-Tree is a balanced (AVL) binary tree whose nodes each hold many
// sorted <key, tupleID> pairs. A search walks the binary tree
// comparing against node bounds — one likely cache miss per binary
// level — which is exactly why deep T-Trees lose to shallow wide
// B+-Trees once misses cost hundreds of cycles.
package ttree

import (
	"fmt"

	"pbtree/internal/core"
	"pbtree/internal/memsys"
)

// Config describes a T-Tree.
type Config struct {
	// Width is the node size in cache lines. One 64-byte line holds 6
	// pairs beside the header; Lehman and Carey used larger nodes, so
	// widths above 1 are common.
	Width int

	// MinFill is the minimum number of pairs in an internal node
	// (nodes with two children) before deletion borrows from a leaf.
	// Zero selects capacity-2.
	MinFill int

	// Mem is the memory model (simulated or native); nil selects
	// memsys.Default().
	Mem memsys.Model

	// Cost is the instruction cost model; zero selects the default.
	Cost core.CostModel
}

// node is a T-Tree node: an AVL-tree node holding a sorted run of
// pairs. Layout (simulated): left(4) right(4) height(4) keynum(4),
// then keys, then tupleIDs.
type node struct {
	addr        uint64
	left, right *node
	height      int
	nkeys       int
	keys        []core.Key
	tids        []core.TID
}

// Tree is a T-Tree over a simulated memory hierarchy. It is not safe
// for concurrent use.
type Tree struct {
	cfg   Config
	mem   memsys.Model
	space *memsys.AddressSpace
	cost  core.CostModel

	nodeSize int
	capacity int // pairs per node
	minFill  int
	keyOff   int
	tidOff   int

	root  *node
	count int
}

// New creates an empty T-Tree.
func New(cfg Config) (*Tree, error) {
	if cfg.Width == 0 {
		cfg.Width = 1
	}
	if cfg.Width < 0 {
		return nil, fmt.Errorf("ttree: width %d must be positive", cfg.Width)
	}
	if memsys.IsNil(cfg.Mem) {
		cfg.Mem = memsys.Default()
	}
	if cfg.Cost == (core.CostModel{}) {
		cfg.Cost = core.DefaultCostModel()
	}
	line := cfg.Mem.Config().LineSize
	size := cfg.Width * line
	capacity := (size - 16) / 8 // header is 4 fields; pairs are 8 bytes
	if capacity < 2 {
		return nil, fmt.Errorf("ttree: node width %d too small", cfg.Width)
	}
	if cfg.MinFill == 0 {
		cfg.MinFill = capacity - 2
	}
	if cfg.MinFill < 1 || cfg.MinFill > capacity {
		return nil, fmt.Errorf("ttree: min fill %d outside [1, %d]", cfg.MinFill, capacity)
	}
	return &Tree{
		cfg:      cfg,
		mem:      cfg.Mem,
		space:    memsys.NewAddressSpace(line),
		cost:     cfg.Cost,
		nodeSize: size,
		capacity: capacity,
		minFill:  cfg.MinFill,
		keyOff:   16,
		tidOff:   16 + 4*capacity,
	}, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Tree {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Name returns "T-tree" or "T<w>-tree".
func (t *Tree) Name() string {
	if t.cfg.Width == 1 {
		return "T-tree"
	}
	return fmt.Sprintf("T%d-tree", t.cfg.Width)
}

// Mem returns the memory model the tree charges to.
func (t *Tree) Mem() memsys.Model { return t.mem }

// Len reports the number of pairs.
func (t *Tree) Len() int { return t.count }

// Height reports the binary-tree height (0 for an empty tree).
func (t *Tree) Height() int {
	if t.root == nil {
		return 0
	}
	return t.root.height
}

// Capacity reports pairs per node.
func (t *Tree) Capacity() int { return t.capacity }

// SpaceUsed reports the simulated bytes allocated for nodes.
func (t *Tree) SpaceUsed() uint64 { return t.space.Used() }

func (t *Tree) newNode() *node {
	return &node{
		addr:   t.space.Alloc(t.nodeSize),
		height: 1,
		keys:   make([]core.Key, t.capacity),
		tids:   make([]core.TID, t.capacity),
	}
}

// visit charges arriving at a node: the header line is read and the
// per-node overhead paid.
func (t *Tree) visit(n *node) {
	t.mem.Access(n.addr)
	t.mem.Compute(t.cost.Visit)
}

// boundCheck charges reading the node's min and max keys.
func (t *Tree) boundCheck(n *node) {
	t.mem.Access(n.addr + uint64(t.keyOff))
	if n.nkeys > 0 {
		t.mem.Access(n.addr + uint64(t.keyOff+4*(n.nkeys-1)))
	}
	t.mem.Compute(2 * t.cost.Compare)
}

// searchNode binary-searches within a node.
func (t *Tree) searchNode(n *node, key core.Key) (int, bool) {
	lo, hi := 0, n.nkeys
	for lo < hi {
		mid := (lo + hi) / 2
		t.mem.Access(n.addr + uint64(t.keyOff+4*mid))
		t.mem.Compute(t.cost.Compare)
		switch k := n.keys[mid]; {
		case k == key:
			return mid, true
		case k < key:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return lo, false
}

// Search looks up key.
func (t *Tree) Search(key core.Key) (core.TID, bool) {
	t.mem.Compute(t.cost.Op)
	n := t.root
	for n != nil {
		t.visit(n)
		t.boundCheck(n)
		switch {
		case n.nkeys > 0 && key < n.keys[0]:
			n = n.left
		case n.nkeys > 0 && key > n.keys[n.nkeys-1]:
			n = n.right
		default:
			i, found := t.searchNode(n, key)
			if !found {
				return 0, false
			}
			t.mem.Access(n.addr + uint64(t.tidOff+4*i))
			return n.tids[i], true
		}
	}
	return 0, false
}

// Insert adds (or overwrites) a pair, reporting whether it was new.
func (t *Tree) Insert(key core.Key, tid core.TID) bool {
	t.mem.Compute(t.cost.Op)
	var isNew bool
	t.root, isNew = t.insert(t.root, key, tid)
	if isNew {
		t.count++
	}
	return isNew
}

// insert adds the pair below n, returning the (possibly rotated) new
// subtree root.
func (t *Tree) insert(n *node, key core.Key, tid core.TID) (*node, bool) {
	if n == nil {
		nn := t.newNode()
		nn.keys[0] = key
		nn.tids[0] = tid
		nn.nkeys = 1
		t.mem.AccessRange(nn.addr, 16+4) // header + first pair touch
		t.mem.Access(nn.addr + uint64(t.tidOff))
		t.mem.Compute(t.cost.Move * 2)
		return nn, true
	}
	t.visit(n)
	t.boundCheck(n)
	var isNew bool
	switch {
	case key < n.keys[0]:
		if n.left == nil && n.nkeys < t.capacity {
			// Extend the bounding run downward instead of allocating.
			t.insertAt(n, 0, key, tid)
			return n, true
		}
		n.left, isNew = t.insert(n.left, key, tid)
	case key > n.keys[n.nkeys-1]:
		if n.right == nil && n.nkeys < t.capacity {
			t.insertAt(n, n.nkeys, key, tid)
			return n, true
		}
		n.right, isNew = t.insert(n.right, key, tid)
	default:
		i, found := t.searchNode(n, key)
		if found {
			n.tids[i] = tid
			t.mem.Access(n.addr + uint64(t.tidOff+4*i))
			t.mem.Compute(t.cost.Copy)
			return n, false
		}
		if n.nkeys < t.capacity {
			t.insertAt(n, i, key, tid)
			return n, true
		}
		// Bounding node is full: insert here and push the minimum
		// down into the left subtree (the classic T-Tree overflow).
		minK, minT := n.keys[0], n.tids[0]
		copy(n.keys[0:i-1], n.keys[1:i])
		copy(n.tids[0:i-1], n.tids[1:i])
		n.keys[i-1] = key
		n.tids[i-1] = tid
		t.mem.AccessRange(n.addr+uint64(t.keyOff), 4*i)
		t.mem.AccessRange(n.addr+uint64(t.tidOff), 4*i)
		t.mem.Compute(t.cost.Move * uint64(2*i))
		n.left, isNew = t.insert(n.left, minK, minT)
	}
	return t.rebalance(n), isNew
}

// insertAt places the pair at position i of a non-full node.
func (t *Tree) insertAt(n *node, i int, key core.Key, tid core.TID) {
	moved := n.nkeys - i
	copy(n.keys[i+1:n.nkeys+1], n.keys[i:n.nkeys])
	copy(n.tids[i+1:n.nkeys+1], n.tids[i:n.nkeys])
	n.keys[i] = key
	n.tids[i] = tid
	n.nkeys++
	t.mem.AccessRange(n.addr+uint64(t.keyOff+4*i), (moved+1)*4)
	t.mem.AccessRange(n.addr+uint64(t.tidOff+4*i), (moved+1)*4)
	t.mem.Access(n.addr)
	t.mem.Compute(t.cost.Move * uint64(2*moved+2))
}

// Delete removes key, reporting whether it was present. Underflowing
// internal nodes borrow the greatest lower bound from their left
// subtree; empty nodes are unlinked, with AVL rebalancing throughout.
func (t *Tree) Delete(key core.Key) bool {
	t.mem.Compute(t.cost.Op)
	var deleted bool
	t.root, deleted = t.delete(t.root, key)
	if deleted {
		t.count--
	}
	return deleted
}

func (t *Tree) delete(n *node, key core.Key) (*node, bool) {
	if n == nil {
		return nil, false
	}
	t.visit(n)
	t.boundCheck(n)
	var deleted bool
	switch {
	case n.nkeys > 0 && key < n.keys[0]:
		n.left, deleted = t.delete(n.left, key)
	case n.nkeys > 0 && key > n.keys[n.nkeys-1]:
		n.right, deleted = t.delete(n.right, key)
	default:
		i, found := t.searchNode(n, key)
		if !found {
			return n, false
		}
		t.removeAt(n, i)
		deleted = true
		// Refill an underflowing internal node from the greatest
		// lower bound in its left subtree.
		if n.left != nil && n.right != nil && n.nkeys < t.minFill {
			glbK, glbT := t.takeMax(&n.left)
			t.insertAt(n, 0, glbK, glbT)
		}
		if n.nkeys == 0 {
			// Remove the empty node, promoting a subtree.
			switch {
			case n.left == nil:
				return n.right, true
			case n.right == nil:
				return n.left, true
			default:
				// Replace with the greatest lower bound.
				glbK, glbT := t.takeMax(&n.left)
				t.insertAt(n, 0, glbK, glbT)
			}
		}
	}
	return t.rebalance(n), deleted
}

// removeAt deletes entry i of a node.
func (t *Tree) removeAt(n *node, i int) {
	moved := n.nkeys - i - 1
	copy(n.keys[i:n.nkeys-1], n.keys[i+1:n.nkeys])
	copy(n.tids[i:n.nkeys-1], n.tids[i+1:n.nkeys])
	n.nkeys--
	if moved > 0 {
		t.mem.AccessRange(n.addr+uint64(t.keyOff+4*i), moved*4)
		t.mem.AccessRange(n.addr+uint64(t.tidOff+4*i), moved*4)
	}
	t.mem.Access(n.addr)
	t.mem.Compute(t.cost.Move * uint64(2*moved))
}

// takeMax removes and returns the maximum pair of the subtree rooted
// at *np, rebalancing on the way back up. The subtree is non-empty.
func (t *Tree) takeMax(np **node) (core.Key, core.TID) {
	n := *np
	t.visit(n)
	if n.right != nil {
		k, tid := t.takeMax(&n.right)
		*np = t.rebalance(n)
		return k, tid
	}
	k, tid := n.keys[n.nkeys-1], n.tids[n.nkeys-1]
	t.mem.Access(n.addr + uint64(t.keyOff+4*(n.nkeys-1)))
	t.mem.Access(n.addr + uint64(t.tidOff+4*(n.nkeys-1)))
	n.nkeys--
	t.mem.Access(n.addr)
	if n.nkeys == 0 {
		*np = n.left // may be nil
		if n.left != nil {
			*np = t.rebalance(n.left)
		}
	} else {
		*np = t.rebalance(n)
	}
	return k, tid
}

// --- AVL machinery ------------------------------------------------

func height(n *node) int {
	if n == nil {
		return 0
	}
	return n.height
}

func (t *Tree) fix(n *node) {
	h := height(n.left)
	if r := height(n.right); r > h {
		h = r
	}
	n.height = h + 1
}

func balance(n *node) int { return height(n.left) - height(n.right) }

// rebalance restores the AVL property at n, charging the pointer
// writes of any rotation.
func (t *Tree) rebalance(n *node) *node {
	t.fix(n)
	b := balance(n)
	switch {
	case b > 1:
		if balance(n.left) < 0 {
			n.left = t.rotateLeft(n.left)
		}
		return t.rotateRight(n)
	case b < -1:
		if balance(n.right) > 0 {
			n.right = t.rotateRight(n.right)
		}
		return t.rotateLeft(n)
	}
	return n
}

func (t *Tree) rotateRight(n *node) *node {
	l := n.left
	n.left = l.right
	l.right = n
	t.fix(n)
	t.fix(l)
	t.mem.Access(n.addr)
	t.mem.Access(l.addr)
	t.mem.Compute(t.cost.Move * 4)
	return l
}

func (t *Tree) rotateLeft(n *node) *node {
	r := n.right
	n.right = r.left
	r.left = n
	t.fix(n)
	t.fix(r)
	t.mem.Access(n.addr)
	t.mem.Access(r.addr)
	t.mem.Compute(t.cost.Move * 4)
	return r
}

// CheckInvariants verifies AVL balance, key ordering across the whole
// tree, and the pair count. It charges nothing.
func (t *Tree) CheckInvariants() error {
	count := 0
	var last *core.Key
	var walk func(n *node) (int, error)
	walk = func(n *node) (int, error) {
		if n == nil {
			return 0, nil
		}
		lh, err := walk(n.left)
		if err != nil {
			return 0, err
		}
		if n.nkeys < 1 {
			return 0, fmt.Errorf("empty node in tree")
		}
		for i := 0; i < n.nkeys; i++ {
			if last != nil && *last >= n.keys[i] {
				return 0, fmt.Errorf("keys out of order: %d then %d", *last, n.keys[i])
			}
			k := n.keys[i]
			last = &k
			count++
		}
		rh, err := walk(n.right)
		if err != nil {
			return 0, err
		}
		h := lh
		if rh > h {
			h = rh
		}
		h++
		if n.height != h {
			return 0, fmt.Errorf("stale height %d, want %d", n.height, h)
		}
		if lh-rh > 1 || rh-lh > 1 {
			return 0, fmt.Errorf("AVL imbalance %d", lh-rh)
		}
		return h, nil
	}
	if _, err := walk(t.root); err != nil {
		return err
	}
	if count != t.count {
		return fmt.Errorf("count %d, tree reports %d", count, t.count)
	}
	return nil
}

package storage

// Filesystem abstraction for the durability layers. All disk I/O of
// the WAL, checkpoint and LSM-run machinery goes through FS, so crash
// consistency is testable in-process: the production implementation is
// a thin wrapper over package os, and MemFS (memfs.go) is a
// deterministic fault-injecting implementation that can replay the
// exact byte stream a power cut would leave behind.

import (
	"io"
	"os"
	"path/filepath"
)

// File is one open file of an FS. Writers append (the durability layer
// never seeks); readers stream from the start.
type File interface {
	io.Reader
	io.Writer
	io.Closer

	// Sync forces written data to stable storage. A write is only
	// crash-durable once Sync returns.
	Sync() error
}

// FS is the filesystem surface the durability layer needs. Paths use
// forward slashes and are interpreted relative to the store's data
// directory root. Rename is atomic (the checkpoint publication
// primitive); directory-entry durability after Create/Rename/Remove is
// the implementation's responsibility.
type FS interface {
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(dir string) error

	// Create opens a new file for writing, truncating any existing one.
	Create(name string) (File, error)

	// Open opens an existing file for reading.
	Open(name string) (File, error)

	// ReadDir lists the entry names of a directory, sorted.
	ReadDir(dir string) ([]string, error)

	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error

	// Remove deletes a file.
	Remove(name string) error

	// Truncate cuts a file to the given size (recovery uses it to drop
	// a torn WAL tail).
	Truncate(name string, size int64) error
}

// OSFS is the production FS over package os. After Create, Rename and
// Remove it syncs the parent directory, so directory entries are as
// durable as the data they point to.
type OSFS struct {
	// Root, when set, is prepended to every path.
	Root string
}

func (fs OSFS) path(name string) string {
	if fs.Root == "" {
		return name
	}
	return filepath.Join(fs.Root, name)
}

// syncDir best-effort syncs the parent directory of a path, making the
// directory entry itself durable. Errors are returned so callers can
// treat metadata loss like data loss.
func (fs OSFS) syncDir(name string) error {
	d, err := os.Open(filepath.Dir(fs.path(name)))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// MkdirAll implements FS.
func (fs OSFS) MkdirAll(dir string) error {
	return os.MkdirAll(fs.path(dir), 0o755)
}

// Create implements FS.
func (fs OSFS) Create(name string) (File, error) {
	f, err := os.Create(fs.path(name))
	if err != nil {
		return nil, err
	}
	if err := fs.syncDir(name); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// Open implements FS.
func (fs OSFS) Open(name string) (File, error) {
	return os.Open(fs.path(name))
}

// ReadDir implements FS.
func (fs OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(fs.path(dir))
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names, nil
}

// Rename implements FS.
func (fs OSFS) Rename(oldname, newname string) error {
	if err := os.Rename(fs.path(oldname), fs.path(newname)); err != nil {
		return err
	}
	return fs.syncDir(newname)
}

// Remove implements FS.
func (fs OSFS) Remove(name string) error {
	if err := os.Remove(fs.path(name)); err != nil {
		return err
	}
	return fs.syncDir(name)
}

// Truncate implements FS.
func (fs OSFS) Truncate(name string, size int64) error {
	return os.Truncate(fs.path(name), size)
}

// Package storage holds the filesystem abstraction shared by every
// durable storage engine: the FS/File interfaces all disk I/O goes
// through, the production OSFS implementation (tmp+fsync+rename
// discipline, directory-entry syncs), and the deterministic journaling
// MemFS used to replay the exact byte stream a power cut would leave
// behind.
//
// It sits below both internal/serve (WAL, manifest, store plumbing)
// and the per-shard storage engines (internal/backend, internal/lsm),
// so engines can persist their artifacts without importing the serving
// layer. internal/serve re-exports these types under their original
// names (serve.FS, serve.MemFS, ...), so existing callers are
// unaffected.
package storage

package storage

import (
	"errors"
	"fmt"
	"io"
	"path"
	"sort"
	"strings"
	"sync"
)

// ErrInjected is the failure returned by a MemFS whose write budget is
// exhausted: the simulated disk has died and every subsequent
// operation fails.
var ErrInjected = errors.New("storage: injected filesystem failure")

// memOp is one entry of the MemFS journal: an append of data to a
// file, or a metadata operation (create/rename/remove/truncate/mkdir).
// The journal is the ordered stream of everything the durability layer
// asked the disk to do, and is what makes power cuts replayable: a
// crash is "the prefix of this stream that reached the platter".
type memOp struct {
	kind byte   // 'w' write, 'c' create, 'n' rename, 'r' remove, 't' truncate, 'd' mkdir, 's' sync
	name string // target path ('n': destination; src carried in data)
	data []byte // 'w': appended bytes; 'n': source path
	size int64  // 't': new size
}

// cost is the op's width in crash-point units: writes are byte-
// granular (a power cut can land inside one), metadata ops are atomic.
func (op memOp) cost() int64 {
	if op.kind == 'w' {
		return int64(len(op.data))
	}
	return 1
}

// memFile is one file's replayed state.
type memFile struct {
	data   []byte
	synced int // length guaranteed to survive a power cut
}

// MemFS is a deterministic in-memory FS for crash and fault testing.
// It journals every operation, so a test can re-materialize the exact
// filesystem a crash at any point would leave behind (CrashAt), and it
// can inject write failures after a byte budget (SetWriteBudget).
// All methods are safe for concurrent use.
type MemFS struct {
	mu     sync.Mutex
	dirs   map[string]bool
	files  map[string]*memFile
	jour   []memOp
	points int64 // total crash-point units journaled so far

	budget   int64 // remaining write bytes before injected failure; <0 = unlimited
	shortOne bool  // deliver the budget's worth of a failing write before erroring
	failed   bool
}

// NewMemFS returns an empty filesystem with no fault injection.
func NewMemFS() *MemFS {
	return &MemFS{dirs: map[string]bool{".": true}, files: map[string]*memFile{}, budget: -1}
}

// SetWriteBudget arms fault injection: after n more written bytes any
// write fails with ErrInjected, as does every later operation. With
// short set, the failing write first delivers its remaining budget (a
// short write), modeling a torn sector. n < 0 disarms.
func (fs *MemFS) SetWriteBudget(n int64, short bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.budget, fs.shortOne, fs.failed = n, short, false
}

// CrashPoints reports how many distinct crash points the journal holds
// so far: one per byte of every write, one per metadata operation. A
// crash at point p means "the first p units reached disk".
func (fs *MemFS) CrashPoints() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.points
}

// CrashAt replays the first p crash-point units of the journal into a
// fresh MemFS — the filesystem a power cut at that instant leaves
// behind. With loseUnsynced set, every file is additionally truncated
// to its last-synced length, modeling a disk whose volatile cache died
// with the machine; without it the model is an ordered write-through
// disk. The returned FS has its own empty journal.
func (fs *MemFS) CrashAt(p int64, loseUnsynced bool) *MemFS {
	fs.mu.Lock()
	jour := fs.jour
	fs.mu.Unlock()

	out := NewMemFS()
	for _, op := range jour {
		c := op.cost()
		if op.kind == 'w' {
			n := int64(len(op.data))
			if p < n {
				n = p
			}
			if n > 0 {
				f := out.file(op.name)
				f.data = append(f.data, op.data[:n]...)
			}
			if p < c {
				break // power cut mid-write
			}
		} else {
			if p < c {
				break
			}
			out.applyMeta(op)
		}
		p -= c
	}
	if loseUnsynced {
		for _, f := range out.files {
			if f.synced < len(f.data) {
				f.data = f.data[:f.synced]
			}
		}
	}
	return out
}

// file returns (creating if needed) the replay target; callers hold no
// lock — CrashAt output is private until returned.
func (fs *MemFS) file(name string) *memFile {
	f, ok := fs.files[name]
	if !ok {
		f = &memFile{}
		fs.files[name] = f
	}
	return f
}

// applyMeta replays one metadata journal entry.
func (fs *MemFS) applyMeta(op memOp) {
	switch op.kind {
	case 'c':
		fs.files[op.name] = &memFile{}
	case 'n':
		if f, ok := fs.files[string(op.data)]; ok {
			fs.files[op.name] = f
			delete(fs.files, string(op.data))
		}
	case 'r':
		delete(fs.files, op.name)
	case 't':
		if f, ok := fs.files[op.name]; ok && int64(len(f.data)) > op.size {
			f.data = f.data[:op.size]
			if f.synced > int(op.size) {
				f.synced = int(op.size)
			}
		}
	case 'd':
		fs.mkdirLocked(op.name)
	case 's':
		if f, ok := fs.files[op.name]; ok {
			f.synced = len(f.data)
		}
	}
}

// record journals an op and applies it.
func (fs *MemFS) record(op memOp) {
	fs.jour = append(fs.jour, op)
	fs.points += op.cost()
	if op.kind != 'w' {
		fs.applyMeta(op)
	}
}

func (fs *MemFS) mkdirLocked(dir string) {
	for d := path.Clean(dir); d != "." && d != "/"; d = path.Dir(d) {
		fs.dirs[d] = true
	}
}

// MkdirAll implements FS.
func (fs *MemFS) MkdirAll(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.failed {
		return ErrInjected
	}
	fs.record(memOp{kind: 'd', name: path.Clean(dir)})
	return nil
}

// Create implements FS.
func (fs *MemFS) Create(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.failed {
		return nil, ErrInjected
	}
	name = path.Clean(name)
	fs.record(memOp{kind: 'c', name: name})
	return &memHandle{fs: fs, name: name, write: true}, nil
}

// Open implements FS.
func (fs *MemFS) Open(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.failed {
		return nil, ErrInjected
	}
	name = path.Clean(name)
	if _, ok := fs.files[name]; !ok {
		return nil, fmt.Errorf("storage: memfs: open %s: file does not exist", name)
	}
	return &memHandle{fs: fs, name: name}, nil
}

// ReadDir implements FS.
func (fs *MemFS) ReadDir(dir string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.failed {
		return nil, ErrInjected
	}
	dir = path.Clean(dir)
	if !fs.dirs[dir] {
		return nil, fmt.Errorf("storage: memfs: readdir %s: directory does not exist", dir)
	}
	seen := map[string]bool{}
	collect := func(p string) {
		if path.Dir(p) == dir {
			seen[path.Base(p)] = true
		} else if dir == "." && !strings.Contains(p, "/") {
			seen[p] = true
		}
	}
	for name := range fs.files {
		collect(name)
	}
	for d := range fs.dirs {
		if d != "." {
			collect(d)
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Rename implements FS.
func (fs *MemFS) Rename(oldname, newname string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.failed {
		return ErrInjected
	}
	oldname, newname = path.Clean(oldname), path.Clean(newname)
	if _, ok := fs.files[oldname]; !ok {
		return fmt.Errorf("storage: memfs: rename %s: file does not exist", oldname)
	}
	fs.record(memOp{kind: 'n', name: newname, data: []byte(oldname)})
	return nil
}

// Remove implements FS.
func (fs *MemFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.failed {
		return ErrInjected
	}
	name = path.Clean(name)
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("storage: memfs: remove %s: file does not exist", name)
	}
	fs.record(memOp{kind: 'r', name: name})
	return nil
}

// Truncate implements FS.
func (fs *MemFS) Truncate(name string, size int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.failed {
		return ErrInjected
	}
	name = path.Clean(name)
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("storage: memfs: truncate %s: file does not exist", name)
	}
	fs.record(memOp{kind: 't', name: name, size: size})
	return nil
}

// ReadFile returns a copy of a file's current contents (test helper).
func (fs *MemFS) ReadFile(name string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path.Clean(name)]
	if !ok {
		return nil, fmt.Errorf("storage: memfs: read %s: file does not exist", name)
	}
	return append([]byte(nil), f.data...), nil
}

// memHandle is one open MemFS file.
type memHandle struct {
	fs    *MemFS
	name  string
	write bool
	pos   int
}

// Read implements io.Reader over the file's live contents.
func (h *memHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f, ok := h.fs.files[h.name]
	if !ok {
		return 0, fmt.Errorf("storage: memfs: read %s: file removed", h.name)
	}
	if h.pos >= len(f.data) {
		return 0, io.EOF
	}
	n := copy(p, f.data[h.pos:])
	h.pos += n
	return n, nil
}

// Write appends, honoring the injected write budget.
func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if !h.write {
		return 0, fmt.Errorf("storage: memfs: %s opened read-only", h.name)
	}
	if h.fs.failed {
		return 0, ErrInjected
	}
	f, ok := h.fs.files[h.name]
	if !ok {
		return 0, fmt.Errorf("storage: memfs: write %s: file removed", h.name)
	}
	n := len(p)
	if h.fs.budget >= 0 && int64(n) > h.fs.budget {
		h.fs.failed = true
		if !h.fs.shortOne {
			return 0, ErrInjected
		}
		n = int(h.fs.budget)
	}
	if n > 0 {
		chunk := append([]byte(nil), p[:n]...)
		h.fs.record(memOp{kind: 'w', name: h.name, data: chunk})
		f.data = append(f.data, chunk...)
	}
	if h.fs.budget >= 0 {
		h.fs.budget -= int64(n)
	}
	if n < len(p) {
		return n, ErrInjected
	}
	return n, nil
}

// Sync implements File.
func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.failed {
		return ErrInjected
	}
	if _, ok := h.fs.files[h.name]; !ok {
		return fmt.Errorf("storage: memfs: sync %s: file removed", h.name)
	}
	h.fs.record(memOp{kind: 's', name: h.name})
	return nil
}

// Close implements File.
func (h *memHandle) Close() error { return nil }

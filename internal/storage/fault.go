package storage

// FaultPlan: a deterministic network-fault schedule for the
// replication harness. MemFS makes the disk deterministic (CrashAt,
// write budgets); FaultPlan does the same for the link between two
// MemFS-backed stores, so partition and lag tests replay identically
// — the Nth operation drops or delays no matter which goroutine
// issues it.

import (
	"errors"
	"sync/atomic"
	"time"
)

// ErrDropped is the error a faulted transport returns for an
// operation the plan dropped — the deterministic stand-in for a reset
// connection.
var ErrDropped = errors.New("storage: operation dropped by fault plan")

// FaultPlan schedules drops and delays over a shared atomic step
// counter. The zero value injects nothing. Configure the schedule
// before use; the Partition switch may be flipped at any time.
type FaultPlan struct {
	// DropEvery drops every Nth operation (0 = never): steps N-1,
	// 2N-1, ... counted from 0.
	DropEvery int

	// DelayEvery delays every Nth operation by Delay (0 = never).
	DelayEvery int

	// Delay is the injected latency for DelayEvery hits.
	Delay time.Duration

	partitioned atomic.Bool
	step        atomic.Int64
}

// SetPartitioned opens (true) or heals (false) a full partition:
// while open, every operation drops regardless of the schedule.
func (p *FaultPlan) SetPartitioned(v bool) { p.partitioned.Store(v) }

// Partitioned reports whether the full partition is open.
func (p *FaultPlan) Partitioned() bool { return p.partitioned.Load() }

// Steps reports how many operations the plan has judged.
func (p *FaultPlan) Steps() int64 { return p.step.Load() }

// Next judges one operation: whether to drop it and how long to delay
// it first. Callers sleep the returned delay, then fail with
// ErrDropped when drop is set.
func (p *FaultPlan) Next() (drop bool, delay time.Duration) {
	n := p.step.Add(1) - 1
	if p.DelayEvery > 0 && n%int64(p.DelayEvery) == int64(p.DelayEvery)-1 {
		delay = p.Delay
	}
	if p.partitioned.Load() {
		return true, delay
	}
	if p.DropEvery > 0 && n%int64(p.DropEvery) == int64(p.DropEvery)-1 {
		return true, delay
	}
	return false, delay
}

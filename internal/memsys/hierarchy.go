package memsys

// inflightLine records an outstanding fill started by a prefetch.
type inflightLine struct {
	line  uint64
	ready uint64 // cycle at which the line arrives in L1
}

// Hierarchy is a simulated two-level cache hierarchy in front of a
// pipelined main memory. It is not safe for concurrent use; each
// simulation owns one Hierarchy.
type Hierarchy struct {
	cfg      Config
	lineMask uint64

	now     uint64 // simulated cycle clock
	memFree uint64 // completion cycle of the most recent memory transfer

	l1, l2   *cache
	inflight []inflightLine // outstanding prefetch fills, small (<= MissHandlers)

	stats Stats
	probe Probe // optional observer, nil when detached (see probe.go)
}

// New creates a Hierarchy with the given configuration. It panics if
// the configuration is invalid, since that is always a programming
// error in this codebase.
func New(cfg Config) *Hierarchy {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Hierarchy{
		cfg:      cfg,
		lineMask: ^uint64(cfg.LineSize - 1),
		l1:       newCache(cfg.L1Size, cfg.LineSize, cfg.L1Assoc),
		l2:       newCache(cfg.L2Size, cfg.LineSize, cfg.L2Assoc),
	}
}

// Default creates a Hierarchy with DefaultConfig.
func Default() *Hierarchy { return New(DefaultConfig()) }

// Config returns the configuration the hierarchy was built with.
func (h *Hierarchy) Config() Config { return h.cfg }

// Now reports the current simulated cycle.
func (h *Hierarchy) Now() uint64 { return h.now }

// Stats returns a snapshot of the accumulated counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// Compute advances the clock by c busy cycles of instruction work.
func (h *Hierarchy) Compute(c uint64) {
	h.now += c
	h.stats.Busy += c
}

// collect installs any in-flight prefetched lines that have arrived by
// the current cycle into the caches.
func (h *Hierarchy) collect() {
	if len(h.inflight) == 0 {
		return
	}
	kept := h.inflight[:0]
	for _, f := range h.inflight {
		if f.ready <= h.now {
			h.l1.insert(f.line)
			h.l2.insert(f.line)
		} else {
			kept = append(kept, f)
		}
	}
	h.inflight = kept
}

// findInflight returns the index of line in the in-flight list, or -1.
func (h *Hierarchy) findInflight(line uint64) int {
	for i, f := range h.inflight {
		if f.line == line {
			return i
		}
	}
	return -1
}

// Access performs a demand load or store of the line containing addr,
// advancing the clock by however long the processor stalls. Writes are
// modeled identically to reads (write-allocate, no write buffer).
func (h *Hierarchy) Access(addr uint64) {
	line := addr & h.lineMask
	if i := h.findInflight(line); i >= 0 {
		// Prefetch hit: wait for the arrival of the fill (which may
		// already have happened).
		f := h.inflight[i]
		h.inflight = append(h.inflight[:i], h.inflight[i+1:]...)
		var stall uint64
		if f.ready > h.now {
			stall = f.ready - h.now
			h.stats.Stall += stall
			h.now = f.ready
		}
		h.l1.insert(line)
		h.l2.insert(line)
		h.stats.PFHits++
		h.emit(EvPrefetchHit, line, stall)
		return
	}
	h.collect()
	if h.l1.lookup(line) {
		h.stats.L1Hits++
		h.emit(EvL1Hit, line, 0)
		return
	}
	if h.l2.lookup(line) {
		h.stats.L2Hits++
		h.stats.Stall += h.cfg.L2Latency
		h.now += h.cfg.L2Latency
		h.l1.insert(line)
		h.emit(EvL2Hit, line, h.cfg.L2Latency)
		return
	}
	// Full miss to memory: the transfer starts now but completes no
	// sooner than Tnext after the previous memory transfer.
	complete := h.now + h.cfg.MemLatency
	if c := h.memFree + h.cfg.MemNext; c > complete {
		complete = c
	}
	h.memFree = complete
	h.stats.MemMisses++
	stall := complete - h.now
	h.stats.Stall += stall
	h.now = complete
	h.l1.insert(line)
	h.l2.insert(line)
	h.emit(EvMemMiss, line, stall)
}

// Prefetch issues a non-binding software prefetch for the line
// containing addr. It charges the prefetch instruction's issue cost
// but does not wait for the data; a later Access to the same line
// waits only for the remaining fill time. If all miss handlers are
// busy the processor stalls until one frees up, as on real hardware.
func (h *Hierarchy) Prefetch(addr uint64) {
	line := addr & h.lineMask
	h.collect()
	h.stats.Prefetch++
	h.stats.Busy += h.cfg.PrefetchIssue
	h.now += h.cfg.PrefetchIssue
	if h.findInflight(line) >= 0 || h.l1.lookup(line) {
		h.emit(EvPrefetchIssue, line, 0)
		return // already present or on the way
	}
	var stall uint64
	if len(h.inflight) >= h.cfg.MissHandlers {
		// Stall until the earliest outstanding fill retires.
		earliest := h.inflight[0].ready
		for _, f := range h.inflight[1:] {
			if f.ready < earliest {
				earliest = f.ready
			}
		}
		if earliest > h.now {
			stall = earliest - h.now
			h.stats.Stall += stall
			h.now = earliest
		}
		h.collect()
	}
	var ready uint64
	if h.l2.lookup(line) {
		ready = h.now + h.cfg.L2Latency
	} else {
		ready = h.now + h.cfg.MemLatency
		if c := h.memFree + h.cfg.MemNext; c > ready {
			ready = c
		}
		h.memFree = ready
		h.stats.PFMem++
	}
	h.inflight = append(h.inflight, inflightLine{line: line, ready: ready})
	h.emit(EvPrefetchIssue, line, stall)
}

// AccessRange issues demand accesses for every line overlapped by
// [addr, addr+size). A range whose end would wrap past the top of the
// address space is clamped to the last representable line.
func (h *Hierarchy) AccessRange(addr uint64, size int) {
	if size <= 0 {
		return
	}
	first, last := rangeBounds(addr, size, h.lineMask)
	for line := first; ; line += uint64(h.cfg.LineSize) {
		h.Access(line)
		if line == last {
			break
		}
	}
}

// PrefetchRange issues prefetches for every line overlapped by
// [addr, addr+size). A range whose end would wrap past the top of the
// address space is clamped to the last representable line.
func (h *Hierarchy) PrefetchRange(addr uint64, size int) {
	if size <= 0 {
		return
	}
	first, last := rangeBounds(addr, size, h.lineMask)
	for line := first; ; line += uint64(h.cfg.LineSize) {
		h.Prefetch(line)
		if line == last {
			break
		}
	}
}

// rangeBounds returns the first and last line of [addr, addr+size),
// clamping a wrapping end to the last representable line so the range
// loops terminate deterministically. size must be positive.
func rangeBounds(addr uint64, size int, lineMask uint64) (first, last uint64) {
	first = addr & lineMask
	end := addr + uint64(size) - 1
	if end < addr {
		end = ^uint64(0) // range wraps: clamp
	}
	return first, end & lineMask
}

// FlushCaches empties both cache levels and abandons in-flight
// prefetches. It models the cold-cache experiments, where the caches
// are cleared between operations. The clock is not changed.
func (h *Hierarchy) FlushCaches() {
	h.l1.flush()
	h.l2.flush()
	h.inflight = h.inflight[:0]
}

// ResetStats zeroes the counters without touching cache contents or
// the clock.
func (h *Hierarchy) ResetStats() { h.stats = Stats{} }

// Contains reports which cache level (1, 2) holds the line containing
// addr, or 0 if it is uncached. In-flight prefetches that have arrived
// are collected first. It peeks without promoting, so test-time
// inspection does not perturb the LRU state (and hence the simulated
// results) of the run under test.
func (h *Hierarchy) Contains(addr uint64) int {
	line := addr & h.lineMask
	h.collect()
	if h.l1.peek(line) {
		return 1
	}
	if h.l2.peek(line) {
		return 2
	}
	return 0
}

package memsys

import (
	"testing"
	"testing/quick"
)

// testConfig returns the paper's machine model with zero prefetch
// issue cost, which makes the Figure 2/3 arithmetic exact.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.PrefetchIssue = 0
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.LineSize = 48 },
		func(c *Config) { c.LineSize = 0 },
		func(c *Config) { c.L1Size = 1000 },
		func(c *Config) { c.L2Size = 0 },
		func(c *Config) { c.L1Assoc = 0 },
		func(c *Config) { c.MemLatency = 0 },
		func(c *Config) { c.MemNext = 0 },
		func(c *Config) { c.MemNext = 200 },
		func(c *Config) { c.MissHandlers = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected validation error, got nil", i)
		}
	}
}

func TestConfigBandwidth(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.Bandwidth(); got != 15 {
		t.Fatalf("default bandwidth = %v, want 15", got)
	}
	for _, b := range []int{5, 10, 15, 30} {
		c := cfg.WithBandwidth(b)
		if got := int(c.Bandwidth()); got != b {
			t.Errorf("WithBandwidth(%d) gives B=%d", b, got)
		}
	}
	if c := cfg.WithBandwidth(1000); c.MemNext != 1 {
		t.Errorf("extreme bandwidth should clamp Tnext to 1, got %d", c.MemNext)
	}
}

func TestCacheLRU(t *testing.T) {
	// 4 lines, 2-way: 2 sets. Lines map to sets by (addr/64)%2.
	c := newCache(256, 64, 2)
	a0, a2, a4 := uint64(0), uint64(128), uint64(256) // all set 0
	c.insert(a0)
	c.insert(a2)
	if !c.lookup(a0) || !c.lookup(a2) {
		t.Fatal("inserted lines missing")
	}
	// a0 was just promoted to MRU by lookup ordering: lookups above
	// left a2 MRU. Insert a4: evicts LRU (a0).
	c.lookup(a0) // make a0 MRU, a2 LRU
	c.insert(a4) // evicts a2
	if c.lookup(a2) {
		t.Error("LRU line a2 should have been evicted")
	}
	if !c.lookup(a0) || !c.lookup(a4) {
		t.Error("MRU lines should survive eviction")
	}
}

func TestCacheInsertExistingPromotes(t *testing.T) {
	c := newCache(256, 64, 2)
	c.insert(0)
	c.insert(128)
	c.insert(0)   // re-insert: promote, no duplicate
	c.insert(256) // evicts 128
	if c.lookup(128) {
		t.Error("128 should be evicted")
	}
	if got := c.lines(); got != 2 {
		t.Errorf("lines() = %d, want 2", got)
	}
}

func TestCacheFlush(t *testing.T) {
	c := newCache(256, 64, 2)
	c.insert(0)
	c.insert(64)
	c.flush()
	if c.lookup(0) || c.lookup(64) {
		t.Error("flush should empty the cache")
	}
	if c.lines() != 0 {
		t.Error("lines() should be 0 after flush")
	}
}

func TestDemandMissLatency(t *testing.T) {
	h := New(testConfig())
	h.Access(0)
	if h.Now() != 150 {
		t.Fatalf("cold miss took %d cycles, want 150", h.Now())
	}
	h.Access(32) // same line
	if h.Now() != 150 {
		t.Fatalf("L1 hit should be free, clock at %d", h.Now())
	}
	st := h.Stats()
	if st.L1Hits != 1 || st.MemMisses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestL2HitLatency(t *testing.T) {
	cfg := testConfig()
	h := New(cfg)
	h.Access(0) // install in L1+L2
	// Evict line 0 from L1 by touching enough conflicting lines.
	// L1: 64 KB 2-way, 512 sets: lines 0, 512*64, 1024*64 map to set 0.
	setStride := uint64(cfg.L1Size / cfg.L1Assoc)
	h.Access(setStride)
	h.Access(2 * setStride)
	before := h.Now()
	h.Access(0)
	if got := h.Now() - before; got != cfg.L2Latency {
		t.Fatalf("L2 hit took %d cycles, want %d", got, cfg.L2Latency)
	}
}

// TestFigure2a reproduces Figure 2(a): four serial misses (one per
// level of a one-line-node tree) cost 4 x 150 = 600 cycles.
func TestFigure2a(t *testing.T) {
	h := New(testConfig())
	for i := uint64(0); i < 4; i++ {
		h.Access(i * 4096)
	}
	if h.Now() != 600 {
		t.Fatalf("four serial misses took %d cycles, want 600", h.Now())
	}
}

// TestFigure2b reproduces Figure 2(b): three levels of two-line nodes
// without prefetching cost six serial misses = 900 cycles.
func TestFigure2b(t *testing.T) {
	h := New(testConfig())
	for node := uint64(0); node < 3; node++ {
		base := node * 4096
		h.Access(base)
		h.Access(base + 64)
	}
	if h.Now() != 900 {
		t.Fatalf("six serial misses took %d cycles, want 900", h.Now())
	}
}

// TestFigure2c reproduces Figure 2(c): three levels of two-line nodes
// with the second line prefetched in parallel cost 3 x 160 = 480.
func TestFigure2c(t *testing.T) {
	h := New(testConfig())
	for node := uint64(0); node < 3; node++ {
		base := node * 4096
		h.Prefetch(base)
		h.Prefetch(base + 64)
		h.Access(base)
		h.Access(base + 64)
	}
	if h.Now() != 480 {
		t.Fatalf("prefetched two-line nodes took %d cycles, want 480", h.Now())
	}
}

// TestFigure3c reproduces the steady-state of Figure 3(c): with
// prefetches issued far enough ahead, each additional leaf line costs
// only Tnext cycles.
func TestFigure3c(t *testing.T) {
	h := New(testConfig())
	const n = 12
	for i := uint64(0); i < n; i++ {
		h.Prefetch(i * 4096)
	}
	for i := uint64(0); i < n; i++ {
		h.Access(i * 4096)
	}
	want := uint64(150 + (n-1)*10)
	if h.Now() != want {
		t.Fatalf("pipelined scan took %d cycles, want %d", h.Now(), want)
	}
}

func TestPrefetchPartialHit(t *testing.T) {
	h := New(testConfig())
	h.Prefetch(0) // ready at 150
	h.Compute(60) // overlap some work
	h.Access(0)   // waits the remaining 90
	if h.Now() != 150 {
		t.Fatalf("clock at %d, want 150", h.Now())
	}
	st := h.Stats()
	if st.Busy != 60 || st.Stall != 90 || st.PFHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPrefetchFullyHidden(t *testing.T) {
	h := New(testConfig())
	h.Prefetch(0)
	h.Compute(200) // more than the miss latency
	before := h.Now()
	h.Access(0)
	if h.Now() != before {
		t.Fatal("fully hidden prefetch should cost zero stall")
	}
	if st := h.Stats(); st.Stall != 0 || st.PFHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPrefetchDuplicateIsCheap(t *testing.T) {
	h := New(testConfig())
	h.Prefetch(0)
	h.Prefetch(0) // duplicate: no second memory transfer
	h.Access(0)
	if st := h.Stats(); st.PFMem != 1 {
		t.Fatalf("duplicate prefetch issued %d memory transfers, want 1", st.PFMem)
	}
	if h.Now() != 150 {
		t.Fatalf("clock at %d, want 150", h.Now())
	}
}

func TestPrefetchOfCachedLine(t *testing.T) {
	h := New(testConfig())
	h.Access(0)
	before := h.Stats().PFMem
	h.Prefetch(0)
	h.Access(0)
	if h.Stats().PFMem != before {
		t.Error("prefetch of an L1-resident line must not touch memory")
	}
	if h.Now() != 150 {
		t.Fatalf("clock at %d, want 150", h.Now())
	}
}

func TestPrefetchFromL2(t *testing.T) {
	cfg := testConfig()
	h := New(cfg)
	h.Access(0)
	// Evict from L1 (see TestL2HitLatency).
	setStride := uint64(cfg.L1Size / cfg.L1Assoc)
	h.Access(setStride)
	h.Access(2 * setStride)
	h.Prefetch(0)
	h.Compute(cfg.L2Latency) // enough to hide the L2 fill
	before := h.Now()
	h.Access(0)
	if h.Now() != before {
		t.Fatal("L2 prefetch should be hidden by L2Latency cycles of work")
	}
}

func TestMissHandlerLimit(t *testing.T) {
	cfg := testConfig()
	cfg.MissHandlers = 4
	h := New(cfg)
	for i := uint64(0); i < 5; i++ {
		h.Prefetch(i * 4096)
	}
	// The fifth prefetch must wait for the first fill (ready at 150).
	if h.Now() != 150 {
		t.Fatalf("clock at %d after overflowing miss handlers, want 150", h.Now())
	}
	if st := h.Stats(); st.Stall != 150 {
		t.Fatalf("stall = %d, want 150", st.Stall)
	}
}

func TestBandwidthPipelining(t *testing.T) {
	h := New(testConfig())
	const n = 15
	for i := uint64(0); i < n; i++ {
		h.Prefetch(i * 4096)
	}
	h.Access((n - 1) * 4096)
	// Last of n pipelined transfers completes at T1 + (n-1)*Tnext.
	want := uint64(150 + (n-1)*10)
	if h.Now() != want {
		t.Fatalf("clock at %d, want %d", h.Now(), want)
	}
}

func TestFlushCaches(t *testing.T) {
	h := New(testConfig())
	h.Access(0)
	h.FlushCaches()
	if h.Contains(0) != 0 {
		t.Fatal("line survived flush")
	}
	before := h.Now()
	h.Access(0)
	if h.Now()-before != 150 {
		t.Fatal("access after flush should be a full miss")
	}
}

func TestFlushAbandonsInflight(t *testing.T) {
	h := New(testConfig())
	h.Prefetch(0)
	h.FlushCaches()
	before := h.Now()
	h.Access(0)
	// The transfer slot was consumed, so the demand miss pipelines
	// behind it, but the data itself was dropped.
	if h.Now() == before {
		t.Fatal("flushed prefetch should not satisfy a demand access")
	}
	if st := h.Stats(); st.PFHits != 0 {
		t.Fatalf("stats = %+v, want no prefetch hits", st)
	}
}

func TestResetStats(t *testing.T) {
	h := New(testConfig())
	h.Access(0)
	h.ResetStats()
	if st := h.Stats(); st != (Stats{}) {
		t.Fatalf("stats not zeroed: %+v", st)
	}
	if h.Contains(0) != 1 {
		t.Fatal("ResetStats must not flush caches")
	}
}

func TestStatsSubAndTotal(t *testing.T) {
	h := New(testConfig())
	h.Access(0)
	snap := h.Stats()
	h.Compute(10)
	h.Access(4096)
	d := h.Stats().Sub(snap)
	if d.Busy != 10 || d.MemMisses != 1 {
		t.Fatalf("interval stats = %+v", d)
	}
	if d.Total() != d.Busy+d.Stall {
		t.Fatal("Total mismatch")
	}
}

func TestAccessRangeSpansLines(t *testing.T) {
	h := New(testConfig())
	h.AccessRange(60, 8) // straddles lines 0 and 64
	if st := h.Stats(); st.MemMisses != 2 {
		t.Fatalf("misses = %d, want 2", st.MemMisses)
	}
	h.AccessRange(0, 0) // no-op
	h.PrefetchRange(0, 0)
	if st := h.Stats(); st.Prefetch != 0 {
		t.Fatal("zero-size prefetch range should issue nothing")
	}
}

func TestPrefetchRangeCoversLines(t *testing.T) {
	h := New(testConfig())
	h.PrefetchRange(0, 512) // 8 lines
	if st := h.Stats(); st.Prefetch != 8 || st.PFMem != 8 {
		t.Fatalf("stats = %+v, want 8 prefetches", st)
	}
}

func TestAddressSpaceAlignment(t *testing.T) {
	a := NewAddressSpace(64)
	p1 := a.Alloc(1)
	p2 := a.Alloc(64)
	p3 := a.Alloc(65)
	p4 := a.Alloc(1)
	if p1%64 != 0 || p2%64 != 0 || p3%64 != 0 || p4%64 != 0 {
		t.Fatal("allocations must be line aligned")
	}
	if p2-p1 != 64 || p3-p2 != 64 || p4-p3 != 128 {
		t.Fatalf("unexpected layout: %d %d %d %d", p1, p2, p3, p4)
	}
	if a.Used() != 64+64+128+64 {
		t.Fatalf("Used() = %d", a.Used())
	}
	if p1 == 0 {
		t.Fatal("zero address must never be allocated")
	}
}

func TestAddressSpacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Alloc(0) should panic")
		}
	}()
	NewAddressSpace(64).Alloc(0)
}

// TestAccessIdempotentProperty checks, for arbitrary addresses, that a
// line is cached immediately after it is accessed and that a second
// access is free.
func TestAccessIdempotentProperty(t *testing.T) {
	h := New(testConfig())
	f := func(addr uint64) bool {
		addr %= 1 << 30
		h.Access(addr)
		if h.Contains(addr) != 1 {
			return false
		}
		before := h.Now()
		h.Access(addr)
		return h.Now() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestClockMonotonicProperty checks the simulated clock never moves
// backwards under random interleavings of operations.
func TestClockMonotonicProperty(t *testing.T) {
	h := New(testConfig())
	f := func(ops []uint16) bool {
		prev := h.Now()
		for _, op := range ops {
			addr := uint64(op) * 64
			switch op % 3 {
			case 0:
				h.Access(addr)
			case 1:
				h.Prefetch(addr)
			case 2:
				h.Compute(uint64(op % 7))
			}
			if h.Now() < prev {
				return false
			}
			prev = h.Now()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestContainsDoesNotDisturbLRU(t *testing.T) {
	// A tiny L1: 64 B lines, 256 B 2-way => 2 sets of 2 ways. Lines 0,
	// 128 and 256 all map to set 0.
	cfg := testConfig()
	cfg.L1Size = 256
	cfg.L1Assoc = 2
	cfg.L2Size = 1024
	cfg.L2Assoc = 1
	h := New(cfg)

	h.Access(0)   // set 0: [0]
	h.Access(128) // set 0: [128, 0] (0 is LRU)
	if got := h.Contains(0); got != 1 {
		t.Fatalf("Contains(0) = %d, want 1", got)
	}
	// If Contains had promoted line 0 to MRU, this access would evict
	// line 128 instead of line 0 and perturb the simulated run.
	h.Access(256)
	if got := h.Contains(128); got != 1 {
		t.Errorf("Contains(128) = %d, want 1 (line 128 must survive: inspection must not promote)", got)
	}
	if got := h.Contains(0); got != 2 {
		t.Errorf("Contains(0) = %d, want 2 (line 0 was LRU and must be the one evicted)", got)
	}
}

func TestAccessRangeWraparoundTerminates(t *testing.T) {
	// Regression: a range whose end overflows uint64 used to loop
	// forever. It must clamp at the last representable line.
	h := New(testConfig())
	h.AccessRange(^uint64(0)-10, 1000)
	if got := h.Stats().MemMisses; got != 1 {
		t.Fatalf("wrapping AccessRange caused %d misses, want 1 (the last line)", got)
	}
}

func TestPrefetchRangeWraparoundTerminates(t *testing.T) {
	h := New(testConfig())
	h.PrefetchRange(^uint64(0)-10, 1000)
	if got := h.Stats().Prefetch; got != 1 {
		t.Fatalf("wrapping PrefetchRange issued %d prefetches, want 1 (the last line)", got)
	}
}

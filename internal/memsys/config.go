// Package memsys simulates the memory hierarchy of a modern machine at
// the level of detail needed to study cache-conscious index structures:
// two levels of set-associative cache, a pipelined memory system that
// can overlap multiple outstanding misses, and software prefetch
// instructions.
//
// The default configuration models the Compaq ES40-based machine used
// in "Improving Index Performance through Prefetching" (Chen, Gibbons,
// Mowry; SIGMOD 2001): 64-byte cache lines, a 64 KB 2-way L1, a 2 MB
// direct-mapped L2, a 150-cycle full miss latency (T1), and one memory
// transfer completing every 10 cycles (Tnext), giving a normalized
// memory bandwidth of B = T1/Tnext = 15.
//
// Time is tracked on a simulated cycle clock. Clients charge
// computation with Compute, read or write simulated memory with Access,
// and issue non-blocking prefetches with Prefetch. The hierarchy
// records how many cycles were spent busy versus stalled on data cache
// misses, which is the paper's figure of merit ("exposed miss
// latency").
package memsys

import "fmt"

// Config describes a simulated memory hierarchy.
type Config struct {
	// LineSize is the cache line size in bytes. It must be a power of
	// two. Both cache levels use the same line size.
	LineSize int

	// L1Size and L1Assoc describe the first-level data cache
	// (capacity in bytes, associativity in ways).
	L1Size  int
	L1Assoc int // ways of associativity in L1

	// L2Size and L2Assoc describe the unified second-level cache.
	// L2Assoc == 1 models a direct-mapped cache.
	L2Size  int
	L2Assoc int // ways of associativity in L2

	// L2Latency is the cost in cycles of an L1 miss that hits in L2.
	L2Latency uint64

	// MemLatency is T1, the full latency in cycles of a miss serviced
	// by main memory.
	MemLatency uint64

	// MemNext is Tnext, the additional cycles until the next pipelined
	// memory transfer completes. MemLatency/MemNext is the normalized
	// memory bandwidth B: the number of misses that can be in flight
	// simultaneously.
	MemNext uint64

	// MissHandlers bounds the number of outstanding misses (demand or
	// prefetch) the processor supports. Issuing a prefetch while all
	// handlers are busy stalls the processor until one frees up.
	MissHandlers int

	// PrefetchIssue is the busy cost in cycles of executing one
	// prefetch instruction.
	PrefetchIssue uint64
}

// DefaultConfig returns the Compaq ES40-based parameters from Table 2
// of the paper.
func DefaultConfig() Config {
	return Config{
		LineSize:      64,
		L1Size:        64 << 10,
		L1Assoc:       2,
		L2Size:        2 << 20,
		L2Assoc:       1,
		L2Latency:     15,
		MemLatency:    150,
		MemNext:       10,
		MissHandlers:  32,
		PrefetchIssue: 1,
	}
}

// DiskConfig returns a configuration that models a disk-resident
// database instead of a main-memory one (section 5 of the paper: the
// same prefetching techniques apply with pages in place of cache
// lines and disk latency in place of memory latency):
//
//   - a "line" is a 4 KB page;
//   - the first level is a 16 MB buffer pool, the second a 256 MB
//     main-memory page cache;
//   - a page miss to disk costs 5M cycles (5 ms at 1 GHz), but with
//     command queuing the disk completes another sequential page
//     transfer every 150K cycles, so B = T1/Tnext = 33.
func DiskConfig() Config {
	return Config{
		LineSize:      4096,
		L1Size:        16 << 20,
		L1Assoc:       8,
		L2Size:        256 << 20,
		L2Assoc:       4,
		L2Latency:     1000,
		MemLatency:    5_000_000,
		MemNext:       150_000,
		MissHandlers:  32,
		PrefetchIssue: 50, // issuing an async read costs some work
	}
}

// WithBandwidth returns a copy of c with Tnext adjusted so the
// normalized bandwidth MemLatency/MemNext equals b. It is used by the
// sensitivity experiments that sweep B while holding T1 fixed.
func (c Config) WithBandwidth(b int) Config {
	if b <= 0 {
		panic("memsys: bandwidth must be positive")
	}
	c.MemNext = c.MemLatency / uint64(b)
	if c.MemNext == 0 {
		c.MemNext = 1
	}
	return c
}

// Bandwidth reports the normalized memory bandwidth B = T1/Tnext.
func (c Config) Bandwidth() float64 {
	return float64(c.MemLatency) / float64(c.MemNext)
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0:
		return fmt.Errorf("memsys: line size %d is not a positive power of two", c.LineSize)
	case c.L1Assoc <= 0 || c.L2Assoc <= 0:
		return fmt.Errorf("memsys: associativity must be positive")
	case c.L1Size <= 0 || c.L1Size%(c.LineSize*c.L1Assoc) != 0:
		return fmt.Errorf("memsys: L1 size %d not divisible by line size x assoc", c.L1Size)
	case c.L2Size <= 0 || c.L2Size%(c.LineSize*c.L2Assoc) != 0:
		return fmt.Errorf("memsys: L2 size %d not divisible by line size x assoc", c.L2Size)
	case c.MemLatency == 0 || c.MemNext == 0:
		return fmt.Errorf("memsys: memory latencies must be positive")
	case c.MemNext > c.MemLatency:
		return fmt.Errorf("memsys: Tnext (%d) must not exceed T1 (%d)", c.MemNext, c.MemLatency)
	case c.MissHandlers <= 0:
		return fmt.Errorf("memsys: need at least one miss handler")
	}
	return nil
}

package memsys

import "sync/atomic"

// Model is the memory-system interface index structures charge their
// work to. Two implementations exist:
//
//   - Hierarchy, the cycle-accurate simulator behind every number in
//     EXPERIMENTS.md. It is single-threaded by design: each simulation
//     owns one Hierarchy.
//   - Native, a near-no-op model that lets the same index code run at
//     real wall-clock speed. All of its methods are safe for concurrent
//     use, which is what makes concurrent reads on a frozen index
//     possible.
//
// Index code holds a Model, never a concrete *Hierarchy, so switching
// an index between paper reproduction and native serving is a
// one-argument change.
type Model interface {
	// Compute charges c busy cycles of instruction work.
	Compute(c uint64)
	// Access performs a demand load or store of the line containing
	// addr.
	Access(addr uint64)
	// Prefetch issues a non-binding software prefetch for the line
	// containing addr.
	Prefetch(addr uint64)
	// AccessRange issues demand accesses for every line overlapped by
	// [addr, addr+size).
	AccessRange(addr uint64, size int)
	// PrefetchRange issues prefetches for every line overlapped by
	// [addr, addr+size).
	PrefetchRange(addr uint64, size int)

	// Config returns the memory-system configuration (indexes read the
	// line size to derive node layouts).
	Config() Config
	// Now reports the current simulated cycle. The native model has no
	// clock and always reports 0.
	Now() uint64
	// Stats returns a snapshot of the accumulated counters.
	Stats() Stats
	// ResetStats zeroes the counters.
	ResetStats()
	// FlushCaches empties any modeled cache state (a no-op for the
	// native model).
	FlushCaches()
}

// Compile-time interface checks.
var (
	_ Model = (*Hierarchy)(nil)
	_ Model = (*Native)(nil)
)

// IsNil reports whether m is nil or a typed nil implementation, so
// constructors that default a nil Model also catch the nil *Hierarchy
// a caller might pass through the interface.
func IsNil(m Model) bool {
	switch v := m.(type) {
	case nil:
		return true
	case *Hierarchy:
		return v == nil
	case *Native:
		return v == nil
	}
	return false
}

// NativeStats are the optional event counters of a counted Native
// model.
type NativeStats struct {
	Accesses      uint64 // demand line accesses
	Prefetches    uint64 // prefetch instructions
	ComputeCycles uint64 // charged instruction work
}

// Native is the zero-cost memory model: every charge is a no-op (or,
// when counting is enabled, an atomic counter increment), so index
// operations run at real hardware speed. Unlike Hierarchy, a Native
// model is safe for concurrent use from any number of goroutines.
//
// The configuration still matters: indexes derive their node layouts
// from the line size, so a tree built on a Native model with the
// default configuration has the same shape as its simulated twin.
type Native struct {
	cfg      Config
	lineMask uint64
	counted  bool

	// hw makes Prefetch/PrefetchRange issue real prefetch
	// instructions for the given (then real) addresses. See
	// EnableHardwarePrefetch.
	hw bool

	accesses   atomic.Uint64
	prefetches atomic.Uint64
	compute    atomic.Uint64
}

// NewNative creates a zero-cost native model with the given
// configuration. Like New, it panics on an invalid configuration.
func NewNative(cfg Config) *Native {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Native{cfg: cfg, lineMask: ^uint64(cfg.LineSize - 1)}
}

// DefaultNative creates a zero-cost native model with DefaultConfig.
func DefaultNative() *Native { return NewNative(DefaultConfig()) }

// NewNativeCounted creates a native model that additionally maintains
// atomic event counters (see NativeStats). Counting costs one atomic
// add per charge; leave it off on hot serving paths.
func NewNativeCounted(cfg Config) *Native {
	n := NewNative(cfg)
	n.counted = true
	return n
}

// Counted reports whether the model maintains event counters.
func (n *Native) Counted() bool { return n.counted }

// Config returns the configuration the model was built with.
func (n *Native) Config() Config { return n.cfg }

// Now reports 0: the native model has no simulated clock. Measure
// native-mode performance with wall-clock time (testing.B).
func (n *Native) Now() uint64 { return 0 }

// Compute charges c busy cycles (counted models only).
func (n *Native) Compute(c uint64) {
	if n.counted {
		n.compute.Add(c)
	}
}

// Access records a demand access (counted models only).
func (n *Native) Access(addr uint64) {
	if n.counted {
		n.accesses.Add(1)
	}
}

// Prefetch issues a real prefetch instruction for addr in hardware
// mode, and records it on counted models. Outside hardware mode it is
// a no-op (or a bare counter increment).
func (n *Native) Prefetch(addr uint64) {
	if n.hw {
		prefetchT0(uintptr(addr))
	}
	if n.counted {
		n.prefetches.Add(1)
	}
}

// AccessRange records one access per overlapped line (counted models
// only).
func (n *Native) AccessRange(addr uint64, size int) {
	if n.counted && size > 0 {
		n.accesses.Add(rangeLines(addr, size, n.lineMask, n.cfg.LineSize))
	}
}

// PrefetchRange issues one real prefetch instruction per overlapped
// hardware (64-byte) line in hardware mode, and records one prefetch
// per configured line on counted models.
func (n *Native) PrefetchRange(addr uint64, size int) {
	if size <= 0 {
		return
	}
	if n.hw {
		HardwarePrefetchRange(uintptr(addr), size)
	}
	if n.counted {
		n.prefetches.Add(rangeLines(addr, size, n.lineMask, n.cfg.LineSize))
	}
}

// FlushCaches is a no-op: the native model holds no cache state.
func (n *Native) FlushCaches() {}

// Stats maps the native counters onto the shared Stats shape: charged
// work appears as Busy and prefetch counts as Prefetch; the simulator's
// hit/miss breakdown has no native equivalent and stays zero.
func (n *Native) Stats() Stats {
	return Stats{Busy: n.compute.Load(), Prefetch: n.prefetches.Load()}
}

// NativeStats returns the full native counter set.
func (n *Native) NativeStats() NativeStats {
	return NativeStats{
		Accesses:      n.accesses.Load(),
		Prefetches:    n.prefetches.Load(),
		ComputeCycles: n.compute.Load(),
	}
}

// ResetStats zeroes the counters.
func (n *Native) ResetStats() {
	n.accesses.Store(0)
	n.prefetches.Store(0)
	n.compute.Store(0)
}

// rangeLines counts the cache lines overlapped by [addr, addr+size),
// clamping a range whose end would wrap past the top of the address
// space to the last representable line. size must be positive.
func rangeLines(addr uint64, size int, lineMask uint64, lineSize int) uint64 {
	first := addr & lineMask
	end := addr + uint64(size) - 1
	if end < addr {
		end = ^uint64(0) // range wraps: clamp to the last line
	}
	last := end & lineMask
	return (last-first)/uint64(lineSize) + 1
}

package memsys

// Hardware prefetch: tiny go:noescape assembly stubs (PREFETCHT0 on
// amd64, PRFM PLDL1KEEP on arm64; see prefetch_*.s) that turn the
// paper's software prefetches into real instructions on the native
// model. The simulated Hierarchy never calls them — its Prefetch
// models a prefetch; the Native model's Prefetch, once hardware mode
// is enabled, *is* one.
//
// A prefetch instruction is a non-binding hint to the memory system:
// it never faults, so the stubs are safe on any address, mapped or
// not. That property is load-bearing here — a caller that passes a
// simulated address by mistake wastes an instruction but cannot
// crash.

// hwLineSize is the stride of the hardware prefetch stubs. Both
// supported targets (amd64, arm64 server cores) use 64-byte cache
// lines; the stubs stride 64 bytes regardless of the simulated
// Config.LineSize, because they act on the real machine.
const hwLineSize = 64

// HardwarePrefetch issues one prefetch instruction for the real cache
// line containing addr (a no-op on builds without a stub). addr is a
// real virtual address, e.g. uintptr(unsafe.Pointer(&x)).
func HardwarePrefetch(addr uintptr) { prefetchT0(addr) }

// HardwarePrefetchRange issues one prefetch instruction per real
// 64-byte cache line overlapped by [addr, addr+size) (a no-op on
// builds without a stub, or when size <= 0).
func HardwarePrefetchRange(addr uintptr, size int) {
	if size <= 0 {
		return
	}
	first := addr &^ (hwLineSize - 1)
	last := (addr + uintptr(size) - 1) &^ (hwLineSize - 1)
	prefetchLines(first, int((last-first)/hwLineSize)+1)
}

// EnableHardwarePrefetch switches the native model into hardware
// mode: Prefetch and PrefetchRange issue real prefetch instructions
// for the addresses they are given (which must then be real virtual
// addresses, not simulated ones). Counting, when enabled, is
// unaffected — a counted hardware model both issues and counts.
//
// Hardware mode is a no-op on builds without a stub (see
// HaveHardwarePrefetch); enabling it is still allowed so callers can
// configure unconditionally and read HaveHardwarePrefetch for
// reporting.
func (n *Native) EnableHardwarePrefetch() { n.hw = true }

// HardwarePrefetchEnabled reports whether the model is in hardware
// prefetch mode.
func (n *Native) HardwarePrefetchEnabled() bool { return n.hw }

// NewNativeHW creates a zero-cost native model with hardware prefetch
// mode enabled.
func NewNativeHW(cfg Config) *Native {
	n := NewNative(cfg)
	n.EnableHardwarePrefetch()
	return n
}

package memsys

import (
	"reflect"
	"strings"
	"testing"
)

// TestStatsSubCoversAllFields checks Sub over every field of Stats by
// reflection: a counter added to the struct but forgotten in Sub comes
// back as zero instead of the expected difference and fails here, and
// a non-uint64 field panics the SetUint below. Either way, extending
// Stats without extending Sub cannot pass the tests silently.
func TestStatsSubCoversAllFields(t *testing.T) {
	var s, d Stats
	sv := reflect.ValueOf(&s).Elem()
	dv := reflect.ValueOf(&d).Elem()
	if sv.NumField() == 0 {
		t.Fatal("Stats has no fields")
	}
	for i := 0; i < sv.NumField(); i++ {
		if got := sv.Field(i).Kind(); got != reflect.Uint64 {
			t.Fatalf("Stats.%s is %v, want uint64 (Sub subtracts counters field by field)",
				sv.Type().Field(i).Name, got)
		}
		sv.Field(i).SetUint(uint64(1000 + 13*i))
		dv.Field(i).SetUint(uint64(1 + i))
	}
	got := reflect.ValueOf(s.Sub(d))
	for i := 0; i < got.NumField(); i++ {
		want := uint64(1000+13*i) - uint64(1+i)
		if g := got.Field(i).Uint(); g != want {
			t.Errorf("Sub dropped field %s: got %d, want %d (is it missing from Sub?)",
				got.Type().Field(i).Name, g, want)
		}
	}
}

func TestStatsPretty(t *testing.T) {
	s := Stats{Busy: 25, Stall: 75, L1Hits: 6, L2Hits: 2, MemMisses: 1, PFHits: 1, Prefetch: 4, PFMem: 3}
	p := s.Pretty()
	for _, want := range []string{
		"cycles     100",
		"busy 25.0%", "stall 75.0%",
		"accesses   10",
		"l1 60.0%", "l2 20.0%", "mem 10.0%", "pf-hit 10.0%",
		"prefetches 4 issued (75.0% to memory)",
	} {
		if !strings.Contains(p, want) {
			t.Errorf("Pretty() missing %q:\n%s", want, p)
		}
	}
	// Zero stats must not divide by zero.
	if p := (Stats{}).Pretty(); !strings.Contains(p, "-") {
		t.Errorf("zero-stats Pretty() = %q, want '-' placeholders", p)
	}
}

package memsys

// This file defines the observability hook of the simulated hierarchy:
// an optional Probe that receives one structured Event per memory-
// system event. The hook is pure observation — a probe cannot change
// the simulated clock, the cache contents or the counters, so cycle
// outputs are identical with and without a probe attached (verified by
// TestProbeDoesNotPerturb). When no probe is attached the only cost is
// one nil check per event site.

// EventKind identifies a structured memory-hierarchy event.
type EventKind uint8

const (
	// EvL1Hit is a demand access that hit in L1 (no stall).
	EvL1Hit EventKind = iota
	// EvL2Hit is a demand access that missed L1 and hit L2.
	EvL2Hit
	// EvMemMiss is a demand access that missed both caches and was
	// serviced by main memory.
	EvMemMiss
	// EvPrefetchHit is a demand access satisfied by an in-flight or
	// completed prefetch; Stall is the remaining fill time (often 0).
	EvPrefetchHit
	// EvPrefetchIssue is an issued prefetch instruction; Stall is the
	// wait for a free miss handler (usually 0).
	EvPrefetchIssue
)

// String names the event kind the way traces render it.
func (k EventKind) String() string {
	switch k {
	case EvL1Hit:
		return "l1-hit"
	case EvL2Hit:
		return "l2-hit"
	case EvMemMiss:
		return "mem-miss"
	case EvPrefetchHit:
		return "pf-hit"
	case EvPrefetchIssue:
		return "pf-issue"
	default:
		return "unknown"
	}
}

// Event is one structured memory-system event. Summing the Stall of
// every event over a run reproduces Stats.Stall exactly; counting
// events per kind reproduces the hit/miss counters.
type Event struct {
	Kind  EventKind // what happened (hit level, miss, prefetch)
	Addr  uint64    // line-aligned address of the access or prefetch
	Cycle uint64    // simulated cycle at which the event completed
	Stall uint64    // processor stall cycles charged by this event
}

// Probe receives the structured events of a Hierarchy. Implementations
// must not call back into the Hierarchy they observe.
type Probe interface {
	MemEvent(Event)
}

// Probes fans events out to several probes; nil entries are skipped,
// so callers can stack an optional probe on top of their own.
type Probes []Probe

// MemEvent delivers e to every non-nil probe in order.
func (ps Probes) MemEvent(e Event) {
	for _, p := range ps {
		if p != nil {
			p.MemEvent(e)
		}
	}
}

// SetProbe attaches p to the hierarchy (nil detaches). The probe sees
// every demand access and prefetch from then on. Attaching a probe
// never changes simulated results: the hook fires after all clock and
// counter updates and has no way to mutate them.
func (h *Hierarchy) SetProbe(p Probe) { h.probe = p }

// emit reports an event to the attached probe, if any.
func (h *Hierarchy) emit(kind EventKind, line, stall uint64) {
	if h.probe != nil {
		h.probe.MemEvent(Event{Kind: kind, Addr: line, Cycle: h.now, Stall: stall})
	}
}

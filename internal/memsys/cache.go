package memsys

// cache is a set-associative cache with true-LRU replacement. It
// tracks only line addresses (tags); data lives in ordinary Go values
// owned by the index structures.
type cache struct {
	sets  [][]uint64 // each set is ordered MRU-first
	assoc int
	// setOf maps a line address to its set index.
	nsets     uint64
	lineShift uint
}

func newCache(sizeBytes, lineSize, assoc int) *cache {
	nlines := sizeBytes / lineSize
	nsets := nlines / assoc
	shift := uint(0)
	for 1<<shift < lineSize {
		shift++
	}
	sets := make([][]uint64, nsets)
	for i := range sets {
		sets[i] = make([]uint64, 0, assoc)
	}
	return &cache{sets: sets, assoc: assoc, nsets: uint64(nsets), lineShift: shift}
}

func (c *cache) setOf(line uint64) []uint64 {
	return c.sets[(line>>c.lineShift)%c.nsets]
}

// lookup reports whether line is present, promoting it to MRU if so.
func (c *cache) lookup(line uint64) bool {
	set := c.setOf(line)
	for i, l := range set {
		if l == line {
			if i != 0 {
				copy(set[1:i+1], set[:i])
				set[0] = line
			}
			return true
		}
	}
	return false
}

// peek reports whether line is present without promoting it, leaving
// the LRU order untouched (used by inspection such as Contains).
func (c *cache) peek(line uint64) bool {
	for _, l := range c.setOf(line) {
		if l == line {
			return true
		}
	}
	return false
}

// insert places line at MRU position, evicting the LRU line if the set
// is full. Inserting an already-present line just promotes it.
func (c *cache) insert(line uint64) {
	idx := (line >> c.lineShift) % c.nsets
	set := c.sets[idx]
	for i, l := range set {
		if l == line {
			if i != 0 {
				copy(set[1:i+1], set[:i])
				set[0] = line
			}
			return
		}
	}
	if len(set) < c.assoc {
		set = append(set, 0)
	}
	copy(set[1:], set)
	set[0] = line
	c.sets[idx] = set
}

// flush empties the cache.
func (c *cache) flush() {
	for i := range c.sets {
		c.sets[i] = c.sets[i][:0]
	}
}

// lines reports the number of resident lines (used by tests).
func (c *cache) lines() int {
	n := 0
	for _, s := range c.sets {
		n += len(s)
	}
	return n
}

//go:build arm64 && !purego

package memsys

// HaveHardwarePrefetch reports whether this build issues real CPU
// prefetch instructions (PREFETCHT0 on amd64, PRFM PLDL1KEEP on
// arm64). Builds for other architectures, and builds with the purego
// tag, compile the stubs down to no-ops and report false.
const HaveHardwarePrefetch = true

// prefetchT0 issues one PRFM PLDL1KEEP for the cache line containing
// addr. The instruction is a non-binding hint: it never faults, so
// addr may be any value, including an unmapped or stale address.
//
//go:noescape
func prefetchT0(addr uintptr)

// prefetchLines issues one PRFM PLDL1KEEP per hardware cache line for
// n consecutive 64-byte lines starting at addr. n must be >= 1.
//
//go:noescape
func prefetchLines(addr uintptr, n int)

//go:build amd64 && !purego

#include "textflag.h"

// func prefetchT0(addr uintptr)
TEXT ·prefetchT0(SB), NOSPLIT, $0-8
	MOVQ addr+0(FP), AX
	PREFETCHT0 (AX)
	RET

// func prefetchLines(addr uintptr, n int)
TEXT ·prefetchLines(SB), NOSPLIT, $0-16
	MOVQ addr+0(FP), AX
	MOVQ n+8(FP), CX
loop:
	PREFETCHT0 (AX)
	ADDQ $64, AX
	DECQ CX
	JNZ  loop
	RET

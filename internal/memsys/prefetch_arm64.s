//go:build arm64 && !purego

#include "textflag.h"

// func prefetchT0(addr uintptr)
TEXT ·prefetchT0(SB), NOSPLIT, $0-8
	MOVD addr+0(FP), R0
	PRFM (R0), PLDL1KEEP
	RET

// func prefetchLines(addr uintptr, n int)
TEXT ·prefetchLines(SB), NOSPLIT, $0-16
	MOVD addr+0(FP), R0
	MOVD n+8(FP), R1
loop:
	PRFM (R0), PLDL1KEEP
	ADD  $64, R0
	SUB  $1, R1
	CBNZ R1, loop
	RET

package memsys

import "testing"

// countingProbe tallies events by kind and sums their stall cycles.
type countingProbe struct {
	kinds [5]uint64
	stall uint64
}

func (c *countingProbe) MemEvent(e Event) {
	c.kinds[e.Kind]++
	c.stall += e.Stall
}

// probeWorkload drives a mixed demand/prefetch pattern that exercises
// every event kind: L1/L2 hits, memory misses, prefetch issues with
// handler-full stalls, and prefetch hits both early and late.
func probeWorkload(h *Hierarchy) {
	for i := uint64(0); i < 64; i++ {
		h.Access(i * 4096) // cold misses
	}
	for i := uint64(0); i < 64; i++ {
		h.Access(i * 4096) // L1 hits
	}
	for i := uint64(0); i < 2*uint64(h.Config().MissHandlers); i++ {
		h.Prefetch(1<<30 + i*4096) // exhaust the miss handlers
	}
	for i := uint64(0); i < 16; i++ {
		h.Prefetch(1<<20 + i*64)
		h.Access(1<<20 + i*64) // immediate prefetch hits (full wait)
	}
	for i := uint64(0); i < 16; i++ {
		h.Prefetch(1<<21 + i*64)
	}
	h.Compute(10_000)
	for i := uint64(0); i < 16; i++ {
		h.Access(1<<21 + i*64) // arrived prefetch hits
	}
}

// TestProbeEventsMatchStats checks the documented invariants: event
// counts per kind reproduce the hit/miss counters, and the summed
// event stalls reproduce Stats.Stall exactly.
func TestProbeEventsMatchStats(t *testing.T) {
	h := Default()
	p := &countingProbe{}
	h.SetProbe(p)
	probeWorkload(h)
	s := h.Stats()

	checks := []struct {
		kind EventKind
		want uint64
	}{
		{EvL1Hit, s.L1Hits},
		{EvL2Hit, s.L2Hits},
		{EvMemMiss, s.MemMisses},
		{EvPrefetchHit, s.PFHits},
		{EvPrefetchIssue, s.Prefetch},
	}
	for _, c := range checks {
		if got := p.kinds[c.kind]; got != c.want {
			t.Errorf("%s events: got %d, want %d", c.kind, got, c.want)
		}
	}
	if p.stall != s.Stall {
		t.Errorf("summed event stalls %d != Stats.Stall %d", p.stall, s.Stall)
	}
	if p.stall == 0 || p.kinds[EvPrefetchHit] == 0 {
		t.Fatal("workload did not exercise stalls and prefetch hits")
	}
}

// TestProbeDoesNotPerturb runs the same workload with and without a
// probe attached and requires identical clocks and counters.
func TestProbeDoesNotPerturb(t *testing.T) {
	plain := Default()
	probeWorkload(plain)

	probed := Default()
	probed.SetProbe(&countingProbe{})
	probeWorkload(probed)

	if plain.Now() != probed.Now() {
		t.Errorf("clock perturbed: %d without probe, %d with", plain.Now(), probed.Now())
	}
	if plain.Stats() != probed.Stats() {
		t.Errorf("stats perturbed:\nwithout %v\nwith    %v", plain.Stats(), probed.Stats())
	}
}

// TestProbesFanOut checks the multi-probe combinator, including nil
// entries.
func TestProbesFanOut(t *testing.T) {
	a, b := &countingProbe{}, &countingProbe{}
	h := Default()
	h.SetProbe(Probes{a, nil, b})
	probeWorkload(h)
	if a.kinds != b.kinds || a.stall != b.stall {
		t.Errorf("fan-out diverged: %v/%d vs %v/%d", a.kinds, a.stall, b.kinds, b.stall)
	}
	if a.kinds[EvMemMiss] == 0 {
		t.Fatal("no events observed")
	}
}

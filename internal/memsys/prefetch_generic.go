//go:build purego || (!amd64 && !arm64)

package memsys

// HaveHardwarePrefetch reports whether this build issues real CPU
// prefetch instructions (PREFETCHT0 on amd64, PRFM PLDL1KEEP on
// arm64). Builds for other architectures, and builds with the purego
// tag, compile the stubs down to no-ops and report false.
const HaveHardwarePrefetch = false

// prefetchT0 is a no-op on architectures without a prefetch stub.
func prefetchT0(addr uintptr) {}

// prefetchLines is a no-op on architectures without a prefetch stub.
func prefetchLines(addr uintptr, n int) {}

package memsys

import "sync/atomic"

// AddressSpace is a bump allocator for simulated addresses. Index
// structures allocate their nodes through it so that cache behaviour
// is driven by realistic, line-aligned addresses while the node data
// itself lives in ordinary Go values.
//
// Addresses are never reused: the paper's workloads never reclaim
// node storage during a measured run, and monotonically increasing
// addresses keep conflict-miss behaviour deterministic.
//
// Alloc is a single atomic add, so concurrent native-mode readers may
// allocate scratch regions (e.g. scan return buffers) safely; the
// addresses handed out stay deterministic under single-threaded
// simulated runs.
type AddressSpace struct {
	next     atomic.Uint64
	lineSize uint64
}

// NewAddressSpace returns an allocator that hands out addresses
// aligned to lineSize. The zero address is never returned.
func NewAddressSpace(lineSize int) *AddressSpace {
	if lineSize <= 0 || lineSize&(lineSize-1) != 0 {
		panic("memsys: line size must be a positive power of two")
	}
	a := &AddressSpace{lineSize: uint64(lineSize)}
	a.next.Store(uint64(lineSize))
	return a
}

// Alloc reserves size bytes and returns the starting address, aligned
// to the line size. The reservation is rounded up to whole lines so
// distinct allocations never share a cache line.
func (a *AddressSpace) Alloc(size int) uint64 {
	if size <= 0 {
		panic("memsys: allocation size must be positive")
	}
	n := (uint64(size) + a.lineSize - 1) &^ (a.lineSize - 1)
	return a.next.Add(n) - n
}

// Used reports the total bytes allocated so far, including alignment
// padding. It is the basis of the space-overhead comparisons.
func (a *AddressSpace) Used() uint64 { return a.next.Load() - a.lineSize }

package memsys

import (
	"testing"
	"unsafe"
)

// TestHardwarePrefetchExecutes drives the asm stubs over real memory,
// unmapped-looking addresses and zero: a prefetch is a non-binding
// hint, so every call must simply return. This is the whole behavioral
// contract of the stubs — effects on timing are measured by the native
// benchmarks, not asserted here.
func TestHardwarePrefetchExecutes(t *testing.T) {
	buf := make([]byte, 4096)
	HardwarePrefetch(uintptr(unsafe.Pointer(&buf[0])))
	HardwarePrefetchRange(uintptr(unsafe.Pointer(&buf[0])), len(buf))
	HardwarePrefetchRange(uintptr(unsafe.Pointer(&buf[17])), 100) // unaligned
	HardwarePrefetch(0)
	HardwarePrefetch(^uintptr(0) - 4096)
	HardwarePrefetchRange(uintptr(unsafe.Pointer(&buf[0])), 0)  // empty
	HardwarePrefetchRange(uintptr(unsafe.Pointer(&buf[0])), -1) // negative
}

// TestNativeHardwareMode checks the hardware-mode plumbing: the flag,
// the constructor, and that a counted hardware model still counts the
// same number of events as a counted software model.
func TestNativeHardwareMode(t *testing.T) {
	n := NewNativeCounted(DefaultConfig())
	if n.HardwarePrefetchEnabled() {
		t.Fatal("hardware mode on by default")
	}
	n.EnableHardwarePrefetch()
	if !n.HardwarePrefetchEnabled() {
		t.Fatal("EnableHardwarePrefetch did not stick")
	}
	if !NewNativeHW(DefaultConfig()).HardwarePrefetchEnabled() {
		t.Fatal("NewNativeHW not in hardware mode")
	}

	// Same charge sequence on a hardware and a software counted model
	// must produce identical counters: hardware mode changes what a
	// prefetch does, never what is counted.
	sw := NewNativeCounted(DefaultConfig())
	buf := make([]byte, 1024)
	base := uint64(uintptr(unsafe.Pointer(&buf[0])))
	for _, m := range []*Native{n, sw} {
		m.Prefetch(base)
		m.PrefetchRange(base, len(buf))
		m.PrefetchRange(base, 0)
		m.Access(base)
		m.Compute(7)
	}
	if hwS, swS := n.NativeStats(), sw.NativeStats(); hwS != swS {
		t.Fatalf("counter divergence: hw %+v, sw %+v", hwS, swS)
	}
}

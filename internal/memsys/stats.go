package memsys

import (
	"fmt"
	"strings"
)

// Stats accumulates the cycle and event counters of a Hierarchy.
//
// Every field must be a uint64 counter: Sub subtracts field by field,
// and TestStatsSubCoversAllFields walks the struct by reflection so
// that adding a counter without updating Sub fails the build's tests.
type Stats struct {
	Busy      uint64 // cycles spent computing (Compute + prefetch issue)
	Stall     uint64 // cycles stalled waiting for data cache misses
	L1Hits    uint64 // demand accesses that hit in L1
	L2Hits    uint64 // demand accesses that missed L1 and hit L2
	MemMisses uint64 // demand misses serviced by main memory
	PFHits    uint64 // demand accesses satisfied by an in-flight or completed prefetch
	Prefetch  uint64 // prefetch instructions issued
	PFMem     uint64 // prefetches that went to main memory
}

// Total reports the total simulated cycles covered by the stats.
func (s Stats) Total() uint64 { return s.Busy + s.Stall }

// Accesses reports the total demand accesses covered by the stats.
func (s Stats) Accesses() uint64 { return s.L1Hits + s.L2Hits + s.MemMisses + s.PFHits }

// Sub returns the difference s - t, counter by counter. It is used to
// measure an interval: snapshot stats, run the operation, subtract.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		Busy:      s.Busy - t.Busy,
		Stall:     s.Stall - t.Stall,
		L1Hits:    s.L1Hits - t.L1Hits,
		L2Hits:    s.L2Hits - t.L2Hits,
		MemMisses: s.MemMisses - t.MemMisses,
		PFHits:    s.PFHits - t.PFHits,
		Prefetch:  s.Prefetch - t.Prefetch,
		PFMem:     s.PFMem - t.PFMem,
	}
}

// String renders the counters on one line for logs and test failures.
func (s Stats) String() string {
	return fmt.Sprintf("cycles=%d busy=%d stall=%d l1=%d l2=%d mem=%d pfhit=%d pf=%d",
		s.Total(), s.Busy, s.Stall, s.L1Hits, s.L2Hits, s.MemMisses, s.PFHits, s.Prefetch)
}

// pct formats part/whole as a percentage, "-" when whole is zero.
func pct(part, whole uint64) string {
	if whole == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(whole))
}

// Pretty renders the stats as a small human-readable report: the
// busy/stall split of the execution time, the hit ratio of every cache
// level, and how the prefetches fared. The paper's figures are exactly
// this breakdown; cmd/pbtree-inspect prints it per lookup.
func (s Stats) Pretty() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles     %d (busy %s, dcache stall %s)\n",
		s.Total(), pct(s.Busy, s.Total()), pct(s.Stall, s.Total()))
	fmt.Fprintf(&b, "accesses   %d (l1 %s, l2 %s, mem %s, pf-hit %s)\n",
		s.Accesses(), pct(s.L1Hits, s.Accesses()), pct(s.L2Hits, s.Accesses()),
		pct(s.MemMisses, s.Accesses()), pct(s.PFHits, s.Accesses()))
	fmt.Fprintf(&b, "prefetches %d issued (%s to memory)",
		s.Prefetch, pct(s.PFMem, s.Prefetch))
	return b.String()
}

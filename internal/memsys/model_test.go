package memsys

import (
	"runtime"
	"sync"
	"testing"
)

func TestNativeIsZeroCostNoOp(t *testing.T) {
	n := NewNative(DefaultConfig())
	n.Access(0)
	n.Prefetch(64)
	n.AccessRange(0, 1024)
	n.PrefetchRange(0, 1024)
	n.Compute(100)
	n.FlushCaches()
	if got := n.Now(); got != 0 {
		t.Fatalf("native Now() = %d, want 0 (no clock)", got)
	}
	if got := n.Stats(); got != (Stats{}) {
		t.Fatalf("uncounted native Stats() = %+v, want zero", got)
	}
	if got := n.NativeStats(); got != (NativeStats{}) {
		t.Fatalf("uncounted native NativeStats() = %+v, want zero", got)
	}
	if n.Counted() {
		t.Fatal("NewNative should not count")
	}
}

func TestNativeCountedCounters(t *testing.T) {
	n := NewNativeCounted(DefaultConfig())
	if !n.Counted() {
		t.Fatal("NewNativeCounted should count")
	}
	n.Access(0)
	n.Access(63)          // same 64 B line, still one access event
	n.AccessRange(0, 129) // 3 lines
	n.Prefetch(64)
	n.PrefetchRange(64, 64) // 1 line
	n.Compute(42)
	got := n.NativeStats()
	want := NativeStats{Accesses: 5, Prefetches: 2, ComputeCycles: 42}
	if got != want {
		t.Fatalf("NativeStats() = %+v, want %+v", got, want)
	}
	st := n.Stats()
	if st.Busy != 42 || st.Prefetch != 2 {
		t.Fatalf("Stats() = %+v, want Busy=42 Prefetch=2", st)
	}
	n.ResetStats()
	if n.NativeStats() != (NativeStats{}) {
		t.Fatalf("NativeStats() after reset = %+v, want zero", n.NativeStats())
	}
}

func TestNativeRangeWraparound(t *testing.T) {
	n := NewNativeCounted(DefaultConfig())
	// A range whose end would wrap past the top of the address space
	// must terminate and clamp at the last representable line.
	top := ^uint64(0) - 10
	n.AccessRange(top, 1000)
	got := n.NativeStats().Accesses
	if got != 1 {
		t.Fatalf("wrapping AccessRange counted %d lines, want 1 (the last line)", got)
	}
}

// TestNativeConcurrentCharges exercises a counted native model from
// many goroutines; run with -race to verify the concurrency claim.
func TestNativeConcurrentCharges(t *testing.T) {
	n := NewNativeCounted(DefaultConfig())
	workers := runtime.GOMAXPROCS(0)
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				n.Access(base + uint64(i*64))
				n.Prefetch(base + uint64(i*64))
				n.Compute(1)
				n.AccessRange(base, 128)
			}
		}(uint64(w) << 32)
	}
	wg.Wait()
	got := n.NativeStats()
	want := NativeStats{
		Accesses:      uint64(workers * perWorker * 3), // 1 + 2-line range
		Prefetches:    uint64(workers * perWorker),
		ComputeCycles: uint64(workers * perWorker),
	}
	if got != want {
		t.Fatalf("concurrent NativeStats() = %+v, want %+v", got, want)
	}
}

func TestNativeInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewNative with invalid config did not panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.LineSize = 48
	NewNative(cfg)
}

func TestIsNil(t *testing.T) {
	var h *Hierarchy
	var n *Native
	cases := []struct {
		m    Model
		want bool
	}{
		{nil, true},
		{h, true},
		{n, true},
		{Default(), false},
		{DefaultNative(), false},
	}
	for i, c := range cases {
		if got := IsNil(c.m); got != c.want {
			t.Errorf("case %d: IsNil = %v, want %v", i, got, c.want)
		}
	}
}

// TestAddressSpaceConcurrentAlloc verifies the bump allocator hands
// out disjoint regions under concurrency (run with -race).
func TestAddressSpaceConcurrentAlloc(t *testing.T) {
	a := NewAddressSpace(64)
	workers := runtime.GOMAXPROCS(0)
	const perWorker = 500
	addrs := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				addrs[w] = append(addrs[w], a.Alloc(100))
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[uint64]bool)
	for _, ws := range addrs {
		for _, addr := range ws {
			if addr%64 != 0 {
				t.Fatalf("address %d not line-aligned", addr)
			}
			if seen[addr] {
				t.Fatalf("address %d handed out twice", addr)
			}
			seen[addr] = true
		}
	}
	if want := uint64(workers * perWorker * 128); a.Used() != want {
		t.Fatalf("Used() = %d, want %d", a.Used(), want)
	}
}

// Package dup adds duplicate-key support on top of a pB+-Tree, the
// way section 5 of the paper sketches: each distinct key maps to a
// separate tupleID list, and range scans prefetch in stages — first
// the list headers discovered by the index scan, then the tupleID
// arrays, then (via package heap) the tuples themselves.
package dup

import (
	"fmt"

	"pbtree/internal/core"
	"pbtree/internal/memsys"
)

// listHeaderBytes is the simulated size of a list header (count, cap).
const listHeaderBytes = 8

// tidList is one key's tupleID list, stored at a simulated address:
// a header line followed by the packed tupleIDs. Growth doubles the
// allocation (old space is abandoned; the simulator never frees).
type tidList struct {
	addr uint64
	cap  int
	tids []core.TID
}

// Index is a duplicate-key index: a pB+-Tree whose "tupleIDs" are
// list handles. It is not safe for concurrent use.
type Index struct {
	tree  *core.Tree
	mem   memsys.Model
	space *memsys.AddressSpace
	cost  core.CostModel
	lists []*tidList // handle N is lists[N-1]
	count int        // total <key, tid> entries
}

// New creates a duplicate-key index over a tree built from cfg. The
// tree must be empty; the index owns it from here on. A shared address
// space keeps lists and nodes in one simulated cache.
func New(cfg core.Config) (*Index, error) {
	if memsys.IsNil(cfg.Mem) {
		cfg.Mem = memsys.Default()
	}
	if cfg.Space == nil {
		cfg.Space = memsys.NewAddressSpace(cfg.Mem.Config().LineSize)
	}
	t, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	if t.Len() != 0 {
		return nil, fmt.Errorf("dup: tree must start empty")
	}
	return &Index{
		tree:  t,
		mem:   cfg.Mem,
		space: cfg.Space,
		cost:  core.DefaultCostModel(),
	}, nil
}

// MustNew is New but panics on error.
func MustNew(cfg core.Config) *Index {
	ix, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return ix
}

// Tree exposes the underlying pB+-Tree (for stats and invariants).
func (ix *Index) Tree() *core.Tree { return ix.tree }

// Mem returns the memory model the index charges to.
func (ix *Index) Mem() memsys.Model { return ix.mem }

// Len reports the total number of <key, tupleID> entries.
func (ix *Index) Len() int { return ix.count }

// Keys reports the number of distinct keys.
func (ix *Index) Keys() int { return ix.tree.Len() }

// newList allocates a list with capacity for one tid.
func (ix *Index) newList() (core.TID, *tidList) {
	l := &tidList{cap: 1}
	l.addr = ix.space.Alloc(listHeaderBytes + 4*l.cap)
	ix.lists = append(ix.lists, l)
	return core.TID(len(ix.lists)), l
}

// grow doubles the list's simulated allocation and charges copying the
// existing tids across.
func (ix *Index) grow(l *tidList) {
	l.cap *= 2
	l.addr = ix.space.Alloc(listHeaderBytes + 4*l.cap)
	ix.mem.AccessRange(l.addr, listHeaderBytes+4*len(l.tids))
	ix.mem.Compute(ix.cost.Move * uint64(len(l.tids)))
}

// Insert adds a <key, tid> entry; duplicate keys accumulate in the
// key's list.
func (ix *Index) Insert(key core.Key, tid core.TID) {
	ix.count++
	if handle, ok := ix.tree.Search(key); ok {
		l := ix.lists[handle-1]
		ix.mem.Access(l.addr) // header
		if len(l.tids) == l.cap {
			ix.grow(l)
		}
		l.tids = append(l.tids, tid)
		ix.mem.Access(l.addr + uint64(listHeaderBytes+4*(len(l.tids)-1)))
		ix.mem.Access(l.addr)
		ix.mem.Compute(ix.cost.Move)
		return
	}
	handle, l := ix.newList()
	l.tids = append(l.tids, tid)
	ix.mem.AccessRange(l.addr, listHeaderBytes+4)
	ix.mem.Compute(ix.cost.Move)
	ix.tree.Insert(key, handle)
}

// Delete removes one occurrence of <key, tid>, reporting whether it
// was present. Deleting the last occurrence of a key removes the key.
func (ix *Index) Delete(key core.Key, tid core.TID) bool {
	handle, ok := ix.tree.Search(key)
	if !ok {
		return false
	}
	l := ix.lists[handle-1]
	ix.mem.AccessRange(l.addr, listHeaderBytes+4*len(l.tids))
	for i, v := range l.tids {
		if v == tid {
			copy(l.tids[i:], l.tids[i+1:])
			l.tids = l.tids[:len(l.tids)-1]
			ix.mem.Compute(ix.cost.Move * uint64(len(l.tids)-i))
			ix.mem.Access(l.addr)
			ix.count--
			if len(l.tids) == 0 {
				ix.tree.Delete(key)
			}
			return true
		}
	}
	return false
}

// Search returns the tupleIDs of key (nil if absent). The list fetch
// is prefetched as a whole.
func (ix *Index) Search(key core.Key) []core.TID {
	handle, ok := ix.tree.Search(key)
	if !ok {
		return nil
	}
	l := ix.lists[handle-1]
	ix.mem.PrefetchRange(l.addr, listHeaderBytes+4*len(l.tids))
	ix.mem.AccessRange(l.addr, listHeaderBytes+4*len(l.tids))
	ix.mem.Compute(ix.cost.Copy * uint64(len(l.tids)))
	out := make([]core.TID, len(l.tids))
	copy(out, l.tids)
	return out
}

// ScanRange emits every tupleID with key in [start, end], in key
// order, and returns the count. With prefetch enabled it runs the
// staged pipeline of section 5: the index scan yields a batch of list
// handles, all list headers+bodies of the batch are prefetched
// together, then the lists are read.
func (ix *Index) ScanRange(start, end core.Key, prefetch bool, emit func(core.TID)) int {
	var sc *core.Scanner
	if prefetch {
		sc = ix.tree.NewScan(start, end)
	} else {
		sc = ix.tree.NewScanNoPrefetch(start, end)
	}
	buf := make([]core.TID, 256)
	total := 0
	for {
		n := sc.Next(buf)
		if n == 0 {
			return total
		}
		if prefetch {
			for _, h := range buf[:n] {
				l := ix.lists[h-1]
				ix.mem.PrefetchRange(l.addr, listHeaderBytes+4*len(l.tids))
			}
		}
		for _, h := range buf[:n] {
			l := ix.lists[h-1]
			ix.mem.AccessRange(l.addr, listHeaderBytes+4*len(l.tids))
			ix.mem.Compute(ix.cost.Copy * uint64(len(l.tids)))
			for _, tid := range l.tids {
				if emit != nil {
					emit(tid)
				}
				total++
			}
		}
	}
}

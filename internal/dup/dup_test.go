package dup

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"pbtree/internal/core"
)

func p8e() core.Config {
	return core.Config{Width: 8, Prefetch: true, JumpArray: core.JumpExternal}
}

func TestInsertSearchDuplicates(t *testing.T) {
	ix := MustNew(p8e())
	for rep := 0; rep < 5; rep++ {
		for k := 1; k <= 1000; k++ {
			ix.Insert(core.Key(k), core.TID(k*10+rep))
		}
	}
	if ix.Len() != 5000 || ix.Keys() != 1000 {
		t.Fatalf("Len=%d Keys=%d", ix.Len(), ix.Keys())
	}
	tids := ix.Search(42)
	if len(tids) != 5 {
		t.Fatalf("Search(42) returned %d tids", len(tids))
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	for rep := 0; rep < 5; rep++ {
		if tids[rep] != core.TID(420+rep) {
			t.Fatalf("tids = %v", tids)
		}
	}
	if ix.Search(2000) != nil {
		t.Fatal("phantom key")
	}
	if err := ix.Tree().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteOccurrences(t *testing.T) {
	ix := MustNew(p8e())
	ix.Insert(7, 1)
	ix.Insert(7, 2)
	ix.Insert(7, 3)
	if !ix.Delete(7, 2) {
		t.Fatal("delete failed")
	}
	if ix.Delete(7, 2) {
		t.Fatal("double delete succeeded")
	}
	if got := ix.Search(7); len(got) != 2 {
		t.Fatalf("remaining %v", got)
	}
	ix.Delete(7, 1)
	ix.Delete(7, 3)
	if ix.Search(7) != nil {
		t.Fatal("key should be gone with its last tid")
	}
	if ix.Keys() != 0 || ix.Len() != 0 {
		t.Fatalf("Keys=%d Len=%d", ix.Keys(), ix.Len())
	}
	if ix.Delete(8, 1) {
		t.Fatal("deleting absent key succeeded")
	}
}

func TestScanRangeOrderAndCount(t *testing.T) {
	ix := MustNew(p8e())
	r := rand.New(rand.NewSource(1))
	model := map[core.Key][]core.TID{}
	for i := 0; i < 20000; i++ {
		k := core.Key(r.Intn(2000) + 1)
		tid := core.TID(i + 1)
		ix.Insert(k, tid)
		model[k] = append(model[k], tid)
	}
	lo, hi := core.Key(500), core.Key(1500)
	want := 0
	for k, tids := range model {
		if k >= lo && k <= hi {
			want += len(tids)
		}
	}
	for _, prefetch := range []bool{true, false} {
		got := 0
		var lastKeyMax core.TID
		_ = lastKeyMax
		n := ix.ScanRange(lo, hi, prefetch, func(core.TID) { got++ })
		if n != want || got != want {
			t.Fatalf("prefetch=%v: scanned %d, want %d", prefetch, n, want)
		}
	}
}

// TestScanPrefetchPays: the staged prefetch pipeline beats the plain
// scan on long ranges with duplicates.
func TestScanPrefetchPays(t *testing.T) {
	ix := MustNew(p8e())
	for k := 1; k <= 30000; k++ {
		for d := 0; d < 3; d++ {
			ix.Insert(core.Key(k), core.TID(k*4+d))
		}
	}
	mem := ix.Mem()
	mem.FlushCaches()
	before := mem.Now()
	ix.ScanRange(1, 30000, true, nil)
	withPF := mem.Now() - before

	mem.FlushCaches()
	before = mem.Now()
	ix.ScanRange(1, 30000, false, nil)
	without := mem.Now() - before
	if withPF >= without {
		t.Errorf("staged prefetch scan (%d) not faster than plain (%d)", withPF, without)
	}
}

func TestListGrowthDoubling(t *testing.T) {
	ix := MustNew(p8e())
	for i := 0; i < 1000; i++ {
		ix.Insert(5, core.TID(i+1))
	}
	l := ix.lists[0]
	if len(l.tids) != 1000 {
		t.Fatalf("list len %d", len(l.tids))
	}
	if l.cap < 1000 || l.cap > 2048 {
		t.Fatalf("cap %d after doubling growth", l.cap)
	}
}

func TestQuickAgainstModel(t *testing.T) {
	f := func(raw []uint16) bool {
		ix := MustNew(core.Config{Width: 2, Prefetch: true, JumpArray: core.JumpInternal})
		model := map[core.Key]map[core.TID]bool{}
		count := 0
		for i, v := range raw {
			k := core.Key(v%200) + 1
			tid := core.TID(i + 1)
			ix.Insert(k, tid)
			if model[k] == nil {
				model[k] = map[core.TID]bool{}
			}
			model[k][tid] = true
			count++
		}
		if ix.Len() != count || ix.Keys() != len(model) {
			return false
		}
		for k, tids := range model {
			got := ix.Search(k)
			if len(got) != len(tids) {
				return false
			}
			for _, tid := range got {
				if !tids[tid] {
					return false
				}
			}
		}
		return ix.Tree().CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestNewRejectsNonEmpty(t *testing.T) {
	if _, err := New(core.Config{Width: -1}); err == nil {
		t.Error("bad config accepted")
	}
}

package backend

// PBTree is the read-optimized engine extracted from the original
// store: the paper's prefetch-optimized pB+-Tree behind the classic
// double-buffer publication scheme. Publishing a batch is O(batch),
// not O(shard): the batch is applied to a writer-owned spare tree, the
// spare is atomically published, and the previous tree is recycled
// into the next spare once its readers drain. Durability is a full
// tree snapshot per checkpoint (ckpt-<lsn16x>.pbt, tmp+fsync+rename).

import (
	"fmt"
	"path"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"

	"pbtree/internal/core"
	"pbtree/internal/memsys"
	"pbtree/internal/storage"
)

// CheckpointName is the file name of the pB+-Tree checkpoint covering
// LSNs 1..lsn.
func CheckpointName(lsn uint64) string { return fmt.Sprintf("ckpt-%016x.pbt", lsn) }

// ParseSeq extracts the 16-hex-digit sequence number from a file name
// of the form <prefix><seq><suffix>, reporting whether the name
// matches. Shared by the engines' artifact naming and the store's WAL
// segment naming.
func ParseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	var v uint64
	if _, err := fmt.Sscanf(mid, "%016x", &v); err != nil || len(mid) != 16 {
		return 0, false
	}
	return v, true
}

// drainSpins bounds how many scheduler yields ApplyBatch spends
// waiting for the previous snapshot's readers before giving the tree
// up to them. Point reads drain in a handful of yields; anything still
// pinned after this many is a long-lived reader (a streaming-scan
// cursor) that may hold the snapshot for seconds.
const drainSpins = 4096

// pbSnapshot is one immutable published version. Readers acquire it
// with a refcount so the writer knows when the previous tree can be
// recycled.
type pbSnapshot struct {
	tree    *core.Tree
	version uint64
	count   int
	refs    atomic.Int64
}

func (s *pbSnapshot) Get(k core.Key) (core.TID, bool) { return s.tree.Search(k) }

func (s *pbSnapshot) GetBatch(keys []core.Key, tids []core.TID, found []bool) {
	s.tree.SearchBatch(keys, tids, found)
}

func (s *pbSnapshot) Scan(start, end core.Key, limit int) []core.Pair {
	if limit <= 0 {
		return nil
	}
	bufLen := limit
	if bufLen > 1024 {
		bufLen = 1024
	}
	buf := make([]core.Pair, bufLen)
	sc := s.tree.NewScan(start, end)
	var run []core.Pair
	for len(run) < limit {
		n := sc.NextPairs(buf)
		if n == 0 {
			break
		}
		if need := limit - len(run); n > need {
			n = need
		}
		run = append(run, buf[:n]...)
	}
	return run
}

func (s *pbSnapshot) AppendPairs(dst []core.Pair) []core.Pair { return s.tree.AppendPairs(dst) }

func (s *pbSnapshot) Version() uint64 { return s.version }

func (s *pbSnapshot) Count() int { return s.count }

func (s *pbSnapshot) Release() { s.refs.Add(-1) }

// PBTree implements Backend on a pair of pB+-Trees (published +
// spare). The zero value is not usable; construct with NewPBTree.
type PBTree struct {
	tree core.Config
	fill float64
	fs   storage.FS // nil = non-durable
	dir  string

	snap  atomic.Pointer[pbSnapshot]
	spare *core.Tree // writer-owned; equals the published contents

	// Recovery-phase state, discarded at Seal.
	rec  *core.Tree  // scratch replay tree (checkpoint + WAL tail)
	boot []core.Pair // Bootstrap's seed pairs
}

// NewPBTree builds a pB+-Tree engine. tree and fill must already be
// validated (the store's config defaulting does this); fs is nil for a
// non-durable engine, otherwise dir is the shard directory the engine
// keeps its checkpoints in.
func NewPBTree(tree core.Config, fill float64, fs storage.FS, dir string) *PBTree {
	return &PBTree{tree: tree, fill: fill, fs: fs, dir: dir}
}

// newTree bulkloads one tree with the engine's configuration.
func (b *PBTree) newTree(pairs []core.Pair) (*core.Tree, error) {
	t, err := core.New(b.tree)
	if err != nil {
		return nil, err
	}
	if err := t.Bulkload(pairs, b.fill); err != nil {
		return nil, err
	}
	return t, nil
}

// listCkpts returns the checkpoint LSNs of the shard directory, newest
// first, removing leftover .tmp files.
func (b *PBTree) listCkpts() ([]uint64, error) {
	names, err := b.fs.ReadDir(b.dir)
	if err != nil {
		return nil, err
	}
	RemoveTemp(b.fs, b.dir, names)
	var ckpts []uint64
	for _, n := range names {
		if lsn, ok := ParseSeq(n, "ckpt-", ".pbt"); ok {
			ckpts = append(ckpts, lsn)
		}
	}
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] > ckpts[j] })
	return ckpts, nil
}

// Recover implements Backend: the newest checkpoint that actually
// loads wins; older ones are the fallback if its bytes were damaged at
// rest.
func (b *PBTree) Recover() (uint64, bool, error) {
	if b.fs == nil {
		return 0, false, nil
	}
	ckpts, err := b.listCkpts()
	if err != nil {
		return 0, false, err
	}
	for _, lsn := range ckpts {
		f, err := b.fs.Open(path.Join(b.dir, CheckpointName(lsn)))
		if err != nil {
			continue
		}
		t, lerr := core.Load(f, memsys.DefaultNative(), b.fill)
		f.Close()
		if lerr == nil {
			b.rec = t
			return lsn, true, nil
		}
	}
	return 0, len(ckpts) > 0, nil
}

// Bootstrap implements Backend.
func (b *PBTree) Bootstrap(seed []core.Pair) error {
	b.boot = seed
	return nil
}

// Replay implements Backend, applying one WAL record onto the
// recovery scratch tree.
func (b *PBTree) Replay(w Write) error {
	if b.rec == nil {
		// Scratch container for replay without a checkpoint; only its
		// contents survive (Seal re-bulkloads with the engine's own
		// tree configuration).
		t, err := core.New(core.Config{Width: 8, Prefetch: true, Mem: memsys.DefaultNative()})
		if err != nil {
			return err
		}
		if err := t.Bulkload(nil, b.fill); err != nil {
			return err
		}
		b.rec = t
	}
	applyWrite(b.rec, w)
	return nil
}

// Seal implements Backend: bulkload the published and spare trees from
// whatever recovery or Bootstrap produced, and publish the first
// snapshot.
func (b *PBTree) Seal(version uint64) error {
	pairs := b.boot
	if b.rec != nil {
		pairs = b.rec.AppendPairs(make([]core.Pair, 0, b.rec.Len()))
	}
	b.rec, b.boot = nil, nil
	pub, err := b.newTree(pairs)
	if err != nil {
		return err
	}
	spare, err := b.newTree(pairs)
	if err != nil {
		return err
	}
	b.spare = spare
	snap := &pbSnapshot{tree: pub, version: version, count: pub.Len()}
	b.snap.Store(snap)
	return nil
}

// ApplyBatch implements Backend: apply to the spare, publish it, ack,
// then recycle the previous tree into the next spare once its readers
// drain. A Compact write rebuilds both trees at the configured fill
// factor; a failed rebuild degrades to serving the uncompacted
// contents and is reported through ack.
func (b *PBTree) ApplyBatch(ws []Write, version, _ uint64, ack func(error)) error {
	compact := false
	for _, w := range ws {
		applyWrite(b.spare, w)
		compact = compact || w.Compact
	}
	var cloneErr error
	if compact {
		if nt, err := b.spare.CloneFrozen(b.fill); err == nil {
			b.spare = nt
		} else {
			cloneErr = err // serve the uncompacted spare; report via ack
		}
	}
	old := b.snap.Load()
	next := &pbSnapshot{tree: b.spare, version: version, count: b.spare.Len()}
	b.snap.Store(next)
	// Acks fire as soon as the write is visible to new readers.
	ack(cloneErr)
	// Recycle the previous tree once its readers drain, replaying the
	// batch so it catches up to the published contents. The drain spin
	// is bounded: a long-lived reader (a streaming-scan cursor pinning
	// the snapshot for seconds) must not wedge the write path, so after
	// drainSpins yields the applier abandons the old tree to its readers
	// — the GC reclaims it when the last Release lands — and clones the
	// published tree into a fresh spare instead.
	drained := true
	for spin := 0; old.refs.Load() != 0; spin++ {
		if spin >= drainSpins {
			drained = false
			break
		}
		runtime.Gosched()
	}
	if !drained || compact {
		if nt, err := b.spare.CloneFrozen(b.fill); err == nil {
			b.spare = nt
			return nil
		}
		// Clone failed: fall back to replaying onto the old tree, which
		// means waiting out its readers after all — contents stay
		// correct even if the occupancy rebuild failed.
		for old.refs.Load() != 0 {
			runtime.Gosched()
		}
	}
	recycled := old.tree
	for _, w := range ws {
		applyWrite(recycled, w)
	}
	b.spare = recycled
	return nil
}

// Snapshot implements Backend. The increment-then-revalidate dance
// closes the race with the writer's drain check: a reader that loses
// the race releases and retries on the newer snapshot.
func (b *PBTree) Snapshot() Snapshot {
	for {
		s := b.snap.Load()
		s.refs.Add(1)
		if b.snap.Load() == s {
			return s
		}
		s.refs.Add(-1)
	}
}

// Checkpoint implements Backend: serialize the published tree as the
// checkpoint for lsn via the tmp+rename protocol (a readable
// ckpt-*.pbt is always complete), then prune the checkpoints it
// supersedes.
func (b *PBTree) Checkpoint(lsn uint64) error {
	if b.fs == nil {
		return nil
	}
	tree := b.snap.Load().tree // immutable to this goroutine until the next batch
	final := path.Join(b.dir, CheckpointName(lsn))
	tmp := final + ".tmp"
	f, err := b.fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := tree.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := b.fs.Rename(tmp, final); err != nil {
		return err
	}
	// Best-effort prune: leftover checkpoints are harmless (recovery
	// skips them) and reclaimed next time.
	if ckpts, err := b.listCkpts(); err == nil {
		for _, old := range ckpts {
			if old < lsn {
				_ = b.fs.Remove(path.Join(b.dir, CheckpointName(old)))
			}
		}
	}
	return nil
}

// Stats implements Backend.
func (b *PBTree) Stats() Stats {
	s := b.snap.Load()
	return Stats{
		Backend: "pbtree",
		Version: s.version,
		Count:   s.count,
		Height:  s.tree.Height(),
	}
}

// Close implements Backend. The trees are garbage-collected; nothing
// to flush (the store owns the WAL).
func (b *PBTree) Close() error { return nil }

// Package backend defines the per-shard storage-engine interface of
// the serving layer, plus the engine extracted from the original
// store: the prefetch-optimized pB+-Tree with snapshot ping-pong
// publication (PBTree). A write-optimized log-structured engine lives
// in internal/lsm and implements the same interface.
//
// Division of labor with internal/serve: the store owns hash
// partitioning, the per-shard mutation queue and single writer
// goroutine, the write-ahead log (group commit, segment rotation,
// replay, pruning) and the MANIFEST; a Backend owns the in-memory
// index, its read snapshots, and its durable artifacts (checkpoints
// for PBTree, sorted runs for LSM). Every writer-side method below is
// called only from the owning shard's writer goroutine, so engines
// never need their own write locks; Snapshot and the snapshots it
// returns must be safe for any number of concurrent readers.
//
// Lifecycle, driven by the store:
//
//	durable:     Recover → [Bootstrap] → Replay* → Seal → {ApplyBatch | Checkpoint}* → Close
//	non-durable: Bootstrap → Seal → ApplyBatch* → Close
package backend

import (
	"pbtree/internal/core"
	"pbtree/internal/storage"
)

// Write is one atomic mutation: the puts and deletes of one client
// batch that landed on this shard. A backend applies a Write's effects
// indivisibly — readers observe none or all of them.
type Write struct {
	// Puts are the pairs to insert or overwrite.
	Puts []core.Pair

	// Dels are the keys to delete (no-ops when absent).
	Dels []core.Key

	// Compact asks the engine to restore its read-side layout (pbtree:
	// rebuild at the configured fill factor; lsm: fold the sorted runs
	// together). The effects of Puts/Dels still apply first.
	Compact bool
}

// Snapshot is one pinned, immutable read view of a backend. All
// methods are safe for concurrent use by any number of readers; the
// view observes no writes applied after it was acquired. Release it
// when done so the engine can recycle resources — every Snapshot must
// be released exactly once.
type Snapshot interface {
	// Get looks up one key.
	Get(k core.Key) (core.TID, bool)

	// GetBatch looks up keys[i] into tids[i]/found[i]. All three
	// slices must have equal length.
	GetBatch(keys []core.Key, tids []core.TID, found []bool)

	// Scan returns up to limit pairs with keys in [start, end], in key
	// order.
	Scan(start, end core.Key, limit int) []core.Pair

	// AppendPairs appends every pair of the view to dst in key order
	// and returns the extended slice.
	AppendPairs(dst []core.Pair) []core.Pair

	// Version is the publication version of this view. Versions are
	// assigned by the store and increase by one per published batch,
	// surviving restarts (recovery seals at last LSN + 1).
	Version() uint64

	// Count reports the number of live keys, exactly, on both engines
	// (LSM resolves every put/delete against its runs to keep the
	// running count true across flush and compaction).
	Count() int

	// Release unpins the view.
	Release()
}

// Stats is a backend's point-in-time self-description, surfaced
// through the store's ShardStats.
type Stats struct {
	// Backend names the engine ("pbtree" or "lsm").
	Backend string

	// Version is the currently published snapshot version.
	Version uint64

	// Count is the exact number of live keys (see Snapshot.Count).
	Count int

	// Height is the published tree height (pbtree only).
	Height int

	// Runs is the number of immutable sorted runs (lsm only).
	Runs int

	// MemKeys is the number of memtable entries, tombstones included
	// (lsm only).
	MemKeys int
}

// Backend is one shard's storage engine. See the package comment for
// the calling contract; in short, everything except Snapshot (and the
// snapshots it returns) is writer-goroutine-only.
type Backend interface {
	// Recover loads the engine's durable artifacts from its shard
	// directory and reports the highest LSN they cover, and whether
	// any prior state existed (when false, the store calls Bootstrap
	// with its seed pairs). Non-durable engines report (0, false, nil).
	// The store replays the WAL tail beyond the returned LSN through
	// Replay before Seal.
	Recover() (lastLSN uint64, hadState bool, err error)

	// Bootstrap seeds an empty engine from sorted, duplicate-free
	// pairs (the Bulkload contract). Called at most once, before Seal.
	Bootstrap(seed []core.Pair) error

	// Replay applies one recovered WAL record. Cheaper than
	// ApplyBatch: nothing is published until Seal.
	Replay(w Write) error

	// Seal builds and publishes the first snapshot at the given
	// version, ending the recovery phase. Reads may begin afterwards.
	Seal(version uint64) error

	// ApplyBatch applies the writes in order as one publication: it
	// applies every write, publishes a snapshot with the given
	// version, and calls ack exactly once as soon as the batch is
	// visible to new readers (its argument reports a per-batch
	// serving-quality degradation, e.g. a failed compaction rebuild —
	// the batch's effects are still applied). lsn is the highest WAL
	// LSN covered by the batch (the publication version when the store
	// is not durable); engines use it to tag durable artifacts. The
	// returned error reports post-publication housekeeping failures
	// (flush/compaction I/O); the store records it without failing the
	// batch, mirroring checkpoint failures.
	ApplyBatch(ws []Write, version, lsn uint64, ack func(error)) error

	// Snapshot pins and returns the current read view.
	Snapshot() Snapshot

	// Checkpoint makes everything up to and including lsn durable in
	// the engine's own artifact format and prunes artifacts it
	// supersedes, so the store can rotate and prune the WAL. After a
	// successful Checkpoint(lsn), Recover on the same directory must
	// report at least lsn. No-op for non-durable engines.
	Checkpoint(lsn uint64) error

	// Stats reports the engine's current self-description.
	Stats() Stats

	// Close releases engine resources. The store calls it after the
	// writer goroutine drains; reads on already-acquired snapshots
	// must remain valid.
	Close() error
}

// applyWrite applies one Write to a mutable tree — shared by the tree
// backed engines' apply and replay paths.
func applyWrite(t *core.Tree, w Write) {
	for _, p := range w.Puts {
		t.Insert(p.Key, p.TID)
	}
	for _, k := range w.Dels {
		t.Delete(k)
	}
}

// RemoveTemp deletes leftover *.tmp files from a shard directory — an
// interrupted checkpoint or run flush. Engines call it on Recover;
// stray temporaries are harmless but reclaim space.
func RemoveTemp(fs storage.FS, dir string, names []string) {
	for _, n := range names {
		if len(n) > 4 && n[len(n)-4:] == ".tmp" {
			_ = fs.Remove(dir + "/" + n)
		}
	}
}

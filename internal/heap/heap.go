// Package heap simulates a heap file of fixed-size tuples, the
// storage that index tupleIDs point into. It exists for the section 5
// extension of the paper: a range selection that returns tuples (not
// just tupleIDs) hides the tuple fetches too, by prefetching each
// tuple as soon as its tupleID has been identified.
//
// Like the index nodes, tuple bytes live at simulated addresses, so
// tuple fetches exercise the same simulated cache hierarchy. Tuples
// are fixed-size records appended to segments; TID t (1-based) lives
// at a fixed computable address.
package heap

import (
	"fmt"

	"pbtree/internal/core"
	"pbtree/internal/memsys"
)

// segmentTuples is the number of tuples per allocated segment.
const segmentTuples = 1024

// Table is a simulated heap file. It is not safe for concurrent use.
type Table struct {
	mem       memsys.Model
	space     *memsys.AddressSpace
	cost      core.CostModel
	tupleSize int

	segs []uint64   // segment base addresses
	keys []core.Key // tuple contents (the key field), for verification
}

// New creates an empty heap file with tupleSize-byte tuples, allocated
// from the given address space (pass the space shared with the index
// so both live in the same simulated cache). tupleSize must be a
// positive multiple of 4.
func New(mem memsys.Model, space *memsys.AddressSpace, tupleSize int) (*Table, error) {
	if memsys.IsNil(mem) {
		return nil, fmt.Errorf("heap: nil memory model")
	}
	if space == nil {
		return nil, fmt.Errorf("heap: nil address space")
	}
	if tupleSize <= 0 || tupleSize%4 != 0 {
		return nil, fmt.Errorf("heap: tuple size %d must be a positive multiple of 4", tupleSize)
	}
	return &Table{
		mem:       mem,
		space:     space,
		cost:      core.DefaultCostModel(),
		tupleSize: tupleSize,
	}, nil
}

// MustNew is New but panics on error.
func MustNew(mem memsys.Model, space *memsys.AddressSpace, tupleSize int) *Table {
	t, err := New(mem, space, tupleSize)
	if err != nil {
		panic(err)
	}
	return t
}

// Len reports the number of tuples in the file.
func (t *Table) Len() int { return len(t.keys) }

// TupleSize reports the tuple size in bytes.
func (t *Table) TupleSize() int { return t.tupleSize }

// Append adds a tuple whose key field is key and returns its TID
// (1-based). The write is charged to the hierarchy.
func (t *Table) Append(key core.Key) core.TID {
	idx := len(t.keys)
	if idx%segmentTuples == 0 {
		t.segs = append(t.segs, t.space.Alloc(segmentTuples*t.tupleSize))
	}
	t.keys = append(t.keys, key)
	tid := core.TID(idx + 1)
	t.mem.AccessRange(t.addr(tid), t.tupleSize)
	t.mem.Compute(t.cost.Move * uint64(t.tupleSize/4))
	return tid
}

// addr returns the simulated address of tuple tid. It panics on an
// invalid tid, which is always a caller bug.
func (t *Table) addr(tid core.TID) uint64 {
	idx := int(tid) - 1
	if idx < 0 || idx >= len(t.keys) {
		panic(fmt.Sprintf("heap: tid %d out of range [1, %d]", tid, len(t.keys)))
	}
	return t.segs[idx/segmentTuples] + uint64((idx%segmentTuples)*t.tupleSize)
}

// Prefetch issues prefetches for all lines of tuple tid.
func (t *Table) Prefetch(tid core.TID) {
	t.mem.PrefetchRange(t.addr(tid), t.tupleSize)
}

// Read fetches tuple tid, charging the accesses and the per-field copy
// into the query's output, and returns its key field.
func (t *Table) Read(tid core.TID) core.Key {
	t.mem.AccessRange(t.addr(tid), t.tupleSize)
	t.mem.Compute(t.cost.Move * uint64(t.tupleSize/4))
	return t.keys[int(tid)-1]
}

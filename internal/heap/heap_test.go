package heap

import (
	"testing"

	"pbtree/internal/core"
	"pbtree/internal/memsys"
)

func newTable(t *testing.T, tupleSize int) *Table {
	t.Helper()
	mem := memsys.Default()
	return MustNew(mem, memsys.NewAddressSpace(mem.Config().LineSize), tupleSize)
}

func TestAppendRead(t *testing.T) {
	tab := newTable(t, 64)
	var tids []core.TID
	for i := 0; i < 5000; i++ {
		tids = append(tids, tab.Append(core.Key(i*3+1)))
	}
	if tab.Len() != 5000 {
		t.Fatalf("Len = %d", tab.Len())
	}
	for i, tid := range tids {
		if got := tab.Read(tid); got != core.Key(i*3+1) {
			t.Fatalf("tuple %d: key %d", i, got)
		}
	}
}

func TestTIDsAreStable(t *testing.T) {
	tab := newTable(t, 100)
	a := tab.Append(1)
	b := tab.Append(2)
	if a != 1 || b != 2 {
		t.Fatalf("tids %d, %d; want 1, 2", a, b)
	}
	if tab.addr(a) == tab.addr(b) {
		t.Fatal("tuples alias")
	}
}

func TestSegmentBoundaries(t *testing.T) {
	tab := newTable(t, 32)
	for i := 0; i < segmentTuples*3+7; i++ {
		tab.Append(core.Key(i))
	}
	// Every tuple address is distinct and non-overlapping.
	seen := map[uint64]bool{}
	for tid := core.TID(1); int(tid) <= tab.Len(); tid++ {
		a := tab.addr(tid)
		if seen[a] {
			t.Fatal("duplicate tuple address")
		}
		seen[a] = true
	}
	if len(tab.segs) != 4 {
		t.Fatalf("segments = %d, want 4", len(tab.segs))
	}
}

func TestPrefetchHidesReadLatency(t *testing.T) {
	mem := memsys.Default()
	tab := MustNew(mem, memsys.NewAddressSpace(64), 64)
	for i := 0; i < 1000; i++ {
		tab.Append(core.Key(i))
	}
	// Cold read of 64 scattered tuples, no prefetch.
	mem.FlushCaches()
	before := mem.Now()
	for tid := core.TID(1); tid <= 64; tid++ {
		tab.Read(tid * 13 % 1000)
	}
	serial := mem.Now() - before
	// Same reads with batch prefetching.
	mem.FlushCaches()
	before = mem.Now()
	for tid := core.TID(1); tid <= 64; tid++ {
		tab.Prefetch(tid * 13 % 1000)
	}
	for tid := core.TID(1); tid <= 64; tid++ {
		tab.Read(tid * 13 % 1000)
	}
	pipelined := mem.Now() - before
	if pipelined >= serial {
		t.Errorf("prefetched reads (%d) not faster than serial (%d)", pipelined, serial)
	}
}

func TestBadInputs(t *testing.T) {
	mem := memsys.Default()
	if _, err := New(nil, memsys.NewAddressSpace(64), 64); err == nil {
		t.Error("nil hierarchy accepted")
	}
	if _, err := New(mem, nil, 64); err == nil {
		t.Error("nil space accepted")
	}
	if _, err := New(mem, memsys.NewAddressSpace(64), 30); err == nil {
		t.Error("unaligned tuple size accepted")
	}
	if _, err := New(mem, memsys.NewAddressSpace(64), 0); err == nil {
		t.Error("zero tuple size accepted")
	}
	tab := newTable(t, 64)
	tab.Append(1)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range tid should panic")
		}
	}()
	tab.Read(5)
}

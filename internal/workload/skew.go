package workload

import (
	"fmt"
	"math/rand"

	"pbtree/internal/core"
)

// Skewed request streams for the serving layer. The paper's
// experiments draw keys uniformly; production read traffic is usually
// heavily skewed, which changes what the caches (real or simulated)
// see. Two standard skew models are provided, both deterministic for a
// fixed seed and both emitting keys that exist in a SortedPairs(n)
// tree:
//
//   - Zipfian: key popularity follows a Zipf(s, v) law over a fixed
//     random permutation of the key space, the YCSB-style model.
//   - Hot set: a fraction hotProb of requests goes to the hotFrac
//     hottest keys, the simplest two-tier skew.
//
// KeyStream is the common shape; NewUniformKeys adapts the existing
// uniform draw to it so load generators can switch models with a flag.

// KeyStream produces an endless stream of index keys.
type KeyStream interface {
	// Next returns the next key of the stream.
	Next() core.Key
}

// uniformKeys draws uniformly from the n existing keys.
type uniformKeys struct {
	r *rand.Rand
	n int
}

// NewUniformKeys returns a stream of uniformly random existing keys of
// a SortedPairs(n) tree.
func NewUniformKeys(r *rand.Rand, n int) KeyStream {
	return &uniformKeys{r: r, n: n}
}

func (u *uniformKeys) Next() core.Key { return ExistingKey(u.r, u.n) }

// zipfKeys draws ranks from a Zipf law and maps rank to key through a
// fixed permutation, so the hot keys are scattered across the key
// space (and hence across serving shards) instead of clustering at the
// low end.
type zipfKeys struct {
	z    *rand.Zipf
	perm []int32
}

// NewZipfKeys returns a Zipfian stream over the n existing keys of a
// SortedPairs(n) tree: rank i is requested with probability
// proportional to 1/(v+i)^s. s must be > 1 and v >= 1 (the contract of
// rand.Zipf); s around 1.01-1.3 covers realistic web skew. The stream
// is fully determined by r's seed.
func NewZipfKeys(r *rand.Rand, n int, s, v float64) (KeyStream, error) {
	if s <= 1 || v < 1 {
		return nil, fmt.Errorf("workload: zipf needs s > 1 and v >= 1, got s=%v v=%v", s, v)
	}
	if n < 1 {
		return nil, fmt.Errorf("workload: zipf needs at least one key")
	}
	z := rand.NewZipf(r, s, v, uint64(n-1))
	perm := make([]int32, n)
	for i, p := range r.Perm(n) {
		perm[i] = int32(p)
	}
	return &zipfKeys{z: z, perm: perm}, nil
}

func (z *zipfKeys) Next() core.Key {
	rank := z.z.Uint64()
	return core.Key(keySpacing * (int(z.perm[rank]) + 1))
}

// hotSetKeys sends hotProb of the traffic to the first hot keys of a
// fixed permutation and the rest to the cold remainder.
type hotSetKeys struct {
	r    *rand.Rand
	perm []int32
	hot  int
	p    float64
}

// NewHotSetKeys returns a hot-set stream over the n existing keys of a
// SortedPairs(n) tree: a hotFrac fraction of the keys (at least one)
// receives hotProb of the requests, uniformly within each tier. The
// hot keys are a random subset, so they spread across serving shards.
func NewHotSetKeys(r *rand.Rand, n int, hotFrac, hotProb float64) (KeyStream, error) {
	if hotFrac <= 0 || hotFrac > 1 || hotProb < 0 || hotProb > 1 {
		return nil, fmt.Errorf("workload: hot set needs hotFrac in (0,1] and hotProb in [0,1], got %v/%v", hotFrac, hotProb)
	}
	if n < 1 {
		return nil, fmt.Errorf("workload: hot set needs at least one key")
	}
	hot := int(hotFrac * float64(n))
	if hot < 1 {
		hot = 1
	}
	perm := make([]int32, n)
	for i, p := range r.Perm(n) {
		perm[i] = int32(p)
	}
	return &hotSetKeys{r: r, perm: perm, hot: hot, p: hotProb}, nil
}

func (h *hotSetKeys) Next() core.Key {
	var i int
	if h.r.Float64() < h.p {
		i = h.r.Intn(h.hot)
	} else if h.hot < len(h.perm) {
		i = h.hot + h.r.Intn(len(h.perm)-h.hot)
	} else {
		i = h.r.Intn(h.hot)
	}
	return core.Key(keySpacing * (int(h.perm[i]) + 1))
}

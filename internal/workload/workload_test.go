package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pbtree/internal/core"
)

func TestSortedPairs(t *testing.T) {
	ps := SortedPairs(100)
	if len(ps) != 100 {
		t.Fatalf("len = %d", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		if ps[i].Key <= ps[i-1].Key {
			t.Fatal("not strictly increasing")
		}
	}
	if ps[0].Key != keySpacing {
		t.Fatalf("first key = %d", ps[0].Key)
	}
}

func TestExistingAndNewKeysDisjoint(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	const n = 500
	present := map[core.Key]bool{}
	for _, p := range SortedPairs(n) {
		present[p.Key] = true
	}
	for i := 0; i < 2000; i++ {
		if k := ExistingKey(r, n); !present[k] {
			t.Fatalf("ExistingKey returned absent key %d", k)
		}
		if k := NewKey(r, n); present[k] {
			t.Fatalf("NewKey returned present key %d", k)
		}
	}
}

func TestInsertKeysDistinct(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	keys := InsertKeys(r, 1000, 500)
	seen := map[core.Key]bool{}
	for _, k := range keys {
		if seen[k] {
			t.Fatal("duplicate insert key")
		}
		seen[k] = true
	}
	if len(keys) != 500 {
		t.Fatalf("len = %d", len(keys))
	}
}

func TestDeleteKeysDistinctAndPresent(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	keys := DeleteKeys(r, 100, 60)
	seen := map[core.Key]bool{}
	for _, k := range keys {
		if seen[k] {
			t.Fatal("duplicate delete key")
		}
		seen[k] = true
		if k%keySpacing != 0 || k == 0 || int(k) > 100*keySpacing {
			t.Fatalf("delete key %d out of range", k)
		}
	}
	if got := DeleteKeys(r, 10, 50); len(got) != 10 {
		t.Fatalf("over-asking should clamp: %d", len(got))
	}
}

func TestMatureKeys(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	const total = 4000
	bulk, inserts := MatureKeys(r, total)
	if len(bulk) != total/10 || len(inserts) != total-total/10 {
		t.Fatalf("sizes %d/%d", len(bulk), len(inserts))
	}
	seen := map[core.Key]bool{}
	for i := 1; i < len(bulk); i++ {
		if bulk[i].Key <= bulk[i-1].Key {
			t.Fatal("bulk not sorted")
		}
	}
	for _, p := range bulk {
		seen[p.Key] = true
	}
	for _, k := range inserts {
		if seen[k] {
			t.Fatal("insert key collides with bulk or repeats")
		}
		seen[k] = true
	}
	if len(seen) != total {
		t.Fatalf("total distinct = %d", len(seen))
	}
}

func TestScanStartsWithinRange(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, k := range ScanStarts(r, 1000, 900, 200) {
		if int(k) > (1000-900)*keySpacing {
			t.Fatalf("start %d too close to the end", k)
		}
	}
	// Degenerate: want >= n still yields valid keys.
	for _, k := range ScanStarts(r, 10, 100, 10) {
		if k == 0 || int(k) > 10*keySpacing {
			t.Fatalf("bad start %d", k)
		}
	}
}

func TestScaled(t *testing.T) {
	if Scaled(1000, 0.1, 1) != 100 {
		t.Fatal("scale 0.1")
	}
	if Scaled(1000, 0.0001, 50) != 50 {
		t.Fatal("min clamp")
	}
	if Scaled(1000, 1, 1) != 1000 {
		t.Fatal("scale 1")
	}
}

// TestQuickMatureDeterministic: the same seed yields the same streams.
func TestQuickMatureDeterministic(t *testing.T) {
	f := func(seed int64, rawTotal uint16) bool {
		total := int(rawTotal%5000) + 100
		b1, i1 := MatureKeys(rand.New(rand.NewSource(seed)), total)
		b2, i2 := MatureKeys(rand.New(rand.NewSource(seed)), total)
		if len(b1) != len(b2) || len(i1) != len(i2) {
			return false
		}
		for i := range b1 {
			if b1[i] != b2[i] {
				return false
			}
		}
		for i := range i1 {
			if i1[i] != i2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

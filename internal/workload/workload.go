// Package workload generates the deterministic key sets and operation
// streams used by the paper's experiments: bulkloads of N random keys,
// random search/insert/delete streams, range-scan start keys, and the
// "mature tree" recipe of section 4.5.
//
// Keys are multiples of keySpacing so that experiments can probe and
// insert between existing keys. All generation is driven by explicit
// rand sources, so every experiment is reproducible.
package workload

import (
	"math/rand"
	"sort"

	"pbtree/internal/core"
)

// keySpacing is the gap between generated keys; inserted "new" keys
// fall strictly inside the gaps.
const keySpacing = 8

// SortedPairs returns n pairs with keys keySpacing, 2*keySpacing, ...
// in ascending order, ready for bulkloading. TupleIDs are the ordinal
// positions.
func SortedPairs(n int) []core.Pair {
	ps := make([]core.Pair, n)
	for i := range ps {
		ps[i] = core.Pair{Key: core.Key(keySpacing * (i + 1)), TID: core.TID(i + 1)}
	}
	return ps
}

// ExistingKey returns a uniformly random key present in a tree built
// from SortedPairs(n).
func ExistingKey(r *rand.Rand, n int) core.Key {
	return core.Key(keySpacing * (r.Intn(n) + 1))
}

// NewKey returns a uniformly random key absent from SortedPairs(n):
// it falls strictly between two existing keys (or below the first).
func NewKey(r *rand.Rand, n int) core.Key {
	base := keySpacing * r.Intn(n+1)
	return core.Key(base + 1 + r.Intn(keySpacing-1))
}

// SearchKeys returns cnt random existing keys for a SortedPairs(n)
// tree.
func SearchKeys(r *rand.Rand, n, cnt int) []core.Key {
	keys := make([]core.Key, cnt)
	for i := range keys {
		keys[i] = ExistingKey(r, n)
	}
	return keys
}

// InsertKeys returns cnt distinct random keys absent from a
// SortedPairs(n) tree.
func InsertKeys(r *rand.Rand, n, cnt int) []core.Key {
	seen := make(map[core.Key]bool, cnt)
	keys := make([]core.Key, 0, cnt)
	for len(keys) < cnt {
		k := NewKey(r, n)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

// DeleteKeys returns cnt distinct random existing keys of a
// SortedPairs(n) tree.
func DeleteKeys(r *rand.Rand, n, cnt int) []core.Key {
	if cnt > n {
		cnt = n
	}
	perm := r.Perm(n)[:cnt]
	keys := make([]core.Key, cnt)
	for i, p := range perm {
		keys[i] = core.Key(keySpacing * (p + 1))
	}
	return keys
}

// MatureKeys implements the mature-tree recipe of section 4.5 (after
// Rao and Ross): of total distinct keys, the first 10% (sorted) by
// position in a random permutation are bulkloaded and the remaining
// 90% are inserted afterwards in random order.
//
// It returns the sorted bulkload pairs and the insertion key stream.
func MatureKeys(r *rand.Rand, total int) (bulk []core.Pair, inserts []core.Key) {
	perm := r.Perm(total)
	nBulk := total / 10
	bulk = make([]core.Pair, nBulk)
	for i, p := range perm[:nBulk] {
		k := core.Key(keySpacing * (p + 1))
		bulk[i] = core.Pair{Key: k, TID: core.TID(p + 1)}
	}
	sort.Slice(bulk, func(i, j int) bool { return bulk[i].Key < bulk[j].Key })
	inserts = make([]core.Key, 0, total-nBulk)
	for _, p := range perm[nBulk:] {
		inserts = append(inserts, core.Key(keySpacing*(p+1)))
	}
	return bulk, inserts
}

// ScanStarts returns cnt random scan starting keys such that a scan of
// length want pairs starting there does not run off the end of a
// SortedPairs(n) tree (the paper's experiments average over 100 random
// starting keys).
func ScanStarts(r *rand.Rand, n, want, cnt int) []core.Key {
	maxStart := n - want
	if maxStart < 1 {
		maxStart = 1
	}
	keys := make([]core.Key, cnt)
	for i := range keys {
		keys[i] = core.Key(keySpacing * (r.Intn(maxStart) + 1))
	}
	return keys
}

// Scaled scales a paper-sized count by the experiment scale factor,
// clamping below at min.
func Scaled(n int, scale float64, min int) int {
	v := int(float64(n) * scale)
	if v < min {
		v = min
	}
	return v
}

package workload

import (
	"math/rand"
	"testing"

	"pbtree/internal/core"
)

// drawn pulls cnt keys from a stream.
func drawn(s KeyStream, cnt int) []core.Key {
	out := make([]core.Key, cnt)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

// TestSkewDeterminism: the same seed must reproduce the same stream,
// key for key, for every generator — the reproducibility contract all
// workload generation in this repo follows.
func TestSkewDeterminism(t *testing.T) {
	const n, cnt = 10_000, 5_000
	mk := map[string]func(seed int64) KeyStream{
		"uniform": func(seed int64) KeyStream {
			return NewUniformKeys(rand.New(rand.NewSource(seed)), n)
		},
		"zipf": func(seed int64) KeyStream {
			z, err := NewZipfKeys(rand.New(rand.NewSource(seed)), n, 1.1, 1)
			if err != nil {
				t.Fatal(err)
			}
			return z
		},
		"hotset": func(seed int64) KeyStream {
			h, err := NewHotSetKeys(rand.New(rand.NewSource(seed)), n, 0.01, 0.9)
			if err != nil {
				t.Fatal(err)
			}
			return h
		},
	}
	for name, f := range mk {
		a := drawn(f(42), cnt)
		b := drawn(f(42), cnt)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: same seed diverged at draw %d: %d vs %d", name, i, a[i], b[i])
			}
		}
		c := drawn(f(43), cnt)
		same := 0
		for i := range a {
			if a[i] == c[i] {
				same++
			}
		}
		if same == cnt {
			t.Fatalf("%s: different seeds produced identical streams", name)
		}
	}
}

// TestSkewKeysExist: every generated key must be present in a
// SortedPairs(n) tree (a multiple of the key spacing within range).
func TestSkewKeysExist(t *testing.T) {
	const n = 1000
	r := rand.New(rand.NewSource(1))
	z, _ := NewZipfKeys(rand.New(rand.NewSource(2)), n, 1.2, 1)
	h, _ := NewHotSetKeys(rand.New(rand.NewSource(3)), n, 0.05, 0.8)
	for _, s := range []KeyStream{NewUniformKeys(r, n), z, h} {
		for i := 0; i < 10_000; i++ {
			k := s.Next()
			if k == 0 || uint32(k)%keySpacing != 0 || int(k) > keySpacing*n {
				t.Fatalf("generated key %d outside SortedPairs(%d)", k, n)
			}
		}
	}
}

// TestSkewIsSkewed: the skewed generators must actually concentrate
// traffic — their most popular key should receive far more than the
// uniform share of requests.
func TestSkewIsSkewed(t *testing.T) {
	const n, cnt = 10_000, 200_000
	top := func(s KeyStream) int {
		freq := map[core.Key]int{}
		for i := 0; i < cnt; i++ {
			freq[s.Next()]++
		}
		best := 0
		for _, c := range freq {
			if c > best {
				best = c
			}
		}
		return best
	}
	uniformShare := cnt / n // ~20 requests per key
	z, _ := NewZipfKeys(rand.New(rand.NewSource(7)), n, 1.1, 1)
	if best := top(z); best < 20*uniformShare {
		t.Fatalf("zipf top key got %d requests, want >= %d", best, 20*uniformShare)
	}
	h, _ := NewHotSetKeys(rand.New(rand.NewSource(7)), n, 0.001, 0.9)
	if best := top(h); best < 20*uniformShare {
		t.Fatalf("hot-set top key got %d requests, want >= %d", best, 20*uniformShare)
	}
	// Invalid parameters are rejected.
	if _, err := NewZipfKeys(rand.New(rand.NewSource(1)), n, 0.9, 1); err == nil {
		t.Fatal("zipf accepted s <= 1")
	}
	if _, err := NewHotSetKeys(rand.New(rand.NewSource(1)), n, 0, 0.5); err == nil {
		t.Fatal("hot set accepted hotFrac 0")
	}
}

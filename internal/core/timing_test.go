package core

import (
	"math/rand"
	"testing"

	"pbtree/internal/memsys"
)

// measure runs fn and returns the simulated cycles it consumed.
func measure(tr *Tree, fn func()) uint64 {
	before := tr.Mem().Now()
	fn()
	return tr.Mem().Now() - before
}

// buildMeasured creates a tree on a fresh hierarchy, bulkloads it and
// resets the stats so subsequent measurements are clean.
func buildMeasured(t *testing.T, cfg Config, n int, fill float64) *Tree {
	t.Helper()
	cfg.Mem = memsys.Default()
	tr := MustNew(cfg)
	if err := tr.Bulkload(sortedPairs(n), fill); err != nil {
		t.Fatal(err)
	}
	tr.Mem().ResetStats()
	return tr
}

// randomSearches performs searches for cnt random existing keys and
// returns the simulated cycles, optionally clearing the cache between
// searches (the cold-cache protocol).
func randomSearches(tr *Tree, n, cnt int, cold bool, seed int64) uint64 {
	r := rand.New(rand.NewSource(seed))
	start := tr.Mem().Now()
	for i := 0; i < cnt; i++ {
		if cold {
			tr.Mem().FlushCaches()
		}
		tr.Search(Key(8 * (r.Intn(n) + 1)))
	}
	return tr.Mem().Now() - start
}

// TestWiderNodesSpeedUpSearch pins the paper's core search claim: with
// prefetching, the p8 tree beats the B+ tree, and without prefetching
// wide nodes lose (equation 1 / Figure 2(b)).
func TestWiderNodesSpeedUpSearch(t *testing.T) {
	const n = 200000
	base := buildMeasured(t, Config{Width: 1}, n, 1.0)
	p8 := buildMeasured(t, Config{Width: 8, Prefetch: true}, n, 1.0)
	wideNoPF := buildMeasured(t, Config{Width: 8}, n, 1.0)

	tb := randomSearches(base, n, 2000, true, 1)
	tp := randomSearches(p8, n, 2000, true, 1)
	tw := randomSearches(wideNoPF, n, 2000, true, 1)

	if tp >= tb {
		t.Errorf("p8B+ cold search (%d) not faster than B+ (%d)", tp, tb)
	}
	speedup := float64(tb) / float64(tp)
	if speedup < 1.2 || speedup > 2.2 {
		t.Errorf("p8B+ speedup %.2f outside the paper's plausible band", speedup)
	}
	if tw <= tb {
		t.Errorf("wide nodes WITHOUT prefetch (%d) should lose to B+ (%d)", tw, tb)
	}
}

func TestWarmBeatsCold(t *testing.T) {
	const n = 400000
	tr := buildMeasured(t, Config{Width: 8, Prefetch: true}, n, 1.0)
	warm := randomSearches(tr, n, 1000, false, 2)
	tr.Mem().FlushCaches()
	cold := randomSearches(tr, n, 1000, true, 2)
	if warm >= cold {
		t.Errorf("warm searches (%d) not cheaper than cold (%d)", warm, cold)
	}
}

// TestScanSpeedupLadder pins the range-scan result: p8 beats B+, and
// the jump-pointer variants beat p8 by roughly another factor of two
// (Figure 10).
func TestScanSpeedupLadder(t *testing.T) {
	const n = 200000
	const scanLen = 50000
	times := map[string]uint64{}
	for _, cfg := range []Config{
		{Width: 1},
		{Width: 8, Prefetch: true},
		{Width: 8, Prefetch: true, JumpArray: JumpExternal},
		{Width: 8, Prefetch: true, JumpArray: JumpInternal},
	} {
		tr := buildMeasured(t, cfg, n, 1.0)
		tr.Mem().FlushCaches()
		times[tr.Name()] = measure(tr, func() {
			if got := tr.Scan(8, scanLen); got != scanLen {
				t.Fatalf("%s: scanned %d", tr.Name(), got)
			}
		})
	}
	if times["p8B+"] >= times["B+"] {
		t.Errorf("p8 scan (%d) not faster than B+ (%d)", times["p8B+"], times["B+"])
	}
	if times["p8eB+"] >= times["p8B+"] || times["p8iB+"] >= times["p8B+"] {
		t.Errorf("jump-pointer scans must beat p8: %v", times)
	}
	overall := float64(times["B+"]) / float64(times["p8eB+"])
	if overall < 4 || overall > 13 {
		t.Errorf("p8e overall scan speedup %.1f outside plausible band (paper: 6.5-8.7)", overall)
	}
	// The two jump-pointer implementations should be close (paper:
	// "nearly identical").
	ratio := float64(times["p8eB+"]) / float64(times["p8iB+"])
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("external/internal scan ratio %.2f not comparable", ratio)
	}
}

// TestShortScanStartupCost reproduces the small-range caveat: for very
// short scans the jump-pointer startup overhead shows (Figure 10(a)).
func TestShortScanStartupCost(t *testing.T) {
	const n = 400000
	b := buildMeasured(t, Config{Width: 1}, n, 1.0)
	pe := buildMeasured(t, Config{Width: 8, Prefetch: true, JumpArray: JumpExternal}, n, 1.0)
	b.Mem().FlushCaches()
	pe.Mem().FlushCaches()
	tb := measure(b, func() { b.Scan(8, 10) })
	te := measure(pe, func() { pe.Scan(8, 10) })
	// The paper found p8e *slower* than B+ at 10 tupleIDs; at minimum
	// the speedup must be far below the long-scan speedup.
	if float64(tb)/float64(te) > 2.5 {
		t.Errorf("10-tuple scan speedup %.2f implausibly high (B+=%d, p8e=%d)",
			float64(tb)/float64(te), tb, te)
	}
}

// TestUpdatesFasterWithWideNodes pins the paper's update claim: both
// insertion and deletion on p8 variants beat the B+ tree. It uses the
// cold-cache protocol of Figure 12(b)/(d), which isolates the
// per-operation cost from L2 residency effects.
func TestUpdatesFasterWithWideNodes(t *testing.T) {
	const n = 400000
	const ops = 2000
	insertTime := func(cfg Config, seed int64) uint64 {
		tr := buildMeasured(t, cfg, n, 1.0)
		r := rand.New(rand.NewSource(seed))
		return measure(tr, func() {
			for i := 0; i < ops; i++ {
				tr.Mem().FlushCaches()
				tr.Insert(Key(8*(r.Intn(n)+1)+1+r.Intn(7)), 1)
			}
		})
	}
	deleteTime := func(cfg Config, seed int64) uint64 {
		tr := buildMeasured(t, cfg, n, 1.0)
		r := rand.New(rand.NewSource(seed))
		return measure(tr, func() {
			for i := 0; i < ops; i++ {
				tr.Mem().FlushCaches()
				tr.Delete(Key(8 * (r.Intn(n) + 1)))
			}
		})
	}
	bIns := insertTime(Config{Width: 1}, 3)
	pIns := insertTime(Config{Width: 8, Prefetch: true}, 3)
	peIns := insertTime(Config{Width: 8, Prefetch: true, JumpArray: JumpExternal}, 3)
	if pIns >= bIns {
		t.Errorf("p8 insert (%d) not faster than B+ (%d)", pIns, bIns)
	}
	if float64(peIns) > 1.25*float64(pIns) {
		t.Errorf("p8e insert overhead too high: p8e=%d p8=%d", peIns, pIns)
	}
	bDel := deleteTime(Config{Width: 1}, 4)
	pDel := deleteTime(Config{Width: 8, Prefetch: true}, 4)
	if pDel >= bDel {
		t.Errorf("p8 delete (%d) not faster than B+ (%d)", pDel, bDel)
	}
}

// TestFewerSplitsWithWideNodes pins the Figure 13 mechanism: on
// 100%-full trees, wide nodes split far less often.
func TestFewerSplitsWithWideNodes(t *testing.T) {
	const n = 50000
	const ops = 5000
	splitFrac := func(cfg Config) float64 {
		tr := buildMeasured(t, cfg, n, 1.0)
		tr.ResetUpdateStats()
		r := rand.New(rand.NewSource(8))
		for i := 0; i < ops; i++ {
			tr.Insert(Key(8*(r.Intn(n)+1)+1+r.Intn(7)), 1)
		}
		st := tr.UpdateStats()
		return float64(st.InsertsWithSplit) / float64(st.Inserts)
	}
	fb := splitFrac(Config{Width: 1})
	fp := splitFrac(Config{Width: 8, Prefetch: true})
	if fp >= fb {
		t.Errorf("p8 split fraction %.3f not below B+ %.3f", fp, fb)
	}
}

// TestSpaceOverheadShrinksWithWidth pins the section 2.2 space claim:
// non-leaf space overhead decreases near-linearly with fanout.
func TestSpaceOverheadShrinksWithWidth(t *testing.T) {
	const n = 400000
	space := func(w int, pf bool) float64 {
		cfg := Config{Width: w, Prefetch: pf, Mem: memsys.Default()}
		tr := MustNew(cfg)
		if err := tr.Bulkload(sortedPairs(n), 1.0); err != nil {
			t.Fatal(err)
		}
		return float64(tr.SpaceUsed()) / float64(n)
	}
	b := space(1, false)
	p8 := space(8, true)
	if p8 >= b {
		t.Errorf("bytes/pair: p8 %.2f should be below B+ %.2f", p8, b)
	}
}

// TestSearchCycleBreakdown sanity-checks the Figure 1 shape: most B+
// search time is stall, and p8 removes a large share of it.
func TestSearchCycleBreakdown(t *testing.T) {
	const n = 500000
	b := buildMeasured(t, Config{Width: 1}, n, 1.0)
	randomSearches(b, n, 3000, false, 5)
	sb := b.Mem().Stats()
	if frac := float64(sb.Stall) / float64(sb.Total()); frac < 0.45 || frac > 0.9 {
		t.Errorf("B+ warm search stall fraction %.2f outside [0.45, 0.9] (paper: ~0.65)", frac)
	}
	p := buildMeasured(t, Config{Width: 8, Prefetch: true}, n, 1.0)
	randomSearches(p, n, 3000, false, 5)
	sp := p.Mem().Stats()
	if sp.Stall >= sb.Stall {
		t.Errorf("p8 stall cycles (%d) not below B+ (%d)", sp.Stall, sb.Stall)
	}
}

// TestScanStallMostlyHidden pins the Figure 17(b) claim: jump-pointer
// prefetching hides the vast majority of scan stall time.
func TestScanStallMostlyHidden(t *testing.T) {
	const n = 200000
	b := buildMeasured(t, Config{Width: 1}, n, 1.0)
	b.Mem().FlushCaches()
	b.Scan(8, 100000)
	sb := b.Mem().Stats()

	pe := buildMeasured(t, Config{Width: 8, Prefetch: true, JumpArray: JumpExternal}, n, 1.0)
	pe.Mem().FlushCaches()
	pe.Scan(8, 100000)
	se := pe.Mem().Stats()

	if float64(se.Stall) > 0.15*float64(sb.Stall) {
		t.Errorf("p8e scan exposes %d stall cycles vs B+ %d: less than 85%% hidden",
			se.Stall, sb.Stall)
	}
	if frac := float64(sb.Stall) / float64(sb.Total()); frac < 0.6 {
		t.Errorf("B+ scan stall fraction %.2f too low (paper: ~0.84)", frac)
	}
}

package core

// Insert adds a <key, tid> pair to the index. If the key is already
// present its tupleID is overwritten and Insert reports false;
// otherwise it reports true.
//
// As in section 2.1 of the paper, the search phase leaves the
// root-to-leaf path in the cache, and newly allocated nodes are
// prefetched in their entirety before keys are redistributed into
// them.
func (t *Tree) Insert(key Key, tid TID) bool {
	if t.trc != nil {
		t.trc.BeginOp(OpInsert)
		defer t.trc.EndOp(OpInsert)
	}
	t.mem.Compute(t.cost.Op)
	leaf, ub, found := t.findLeaf(key)
	if found {
		i := ub - 1
		t.mem.Access(t.leafLay.ptrAddr(leaf.addr, i))
		t.mem.Compute(t.cost.Copy)
		leaf.tids[i] = tid
		return false
	}
	t.stats.Inserts++
	t.count++
	splitsBefore := t.stats.LeafSplits + t.stats.NonLeafSplits
	nlSplitsBefore := t.stats.NonLeafSplits

	switch {
	case t.full(leaf):
		t.splitLeaf(leaf, ub, key, tid)
	case leaf.occ != nil:
		t.gappedLeafInsertAt(leaf, ub, key, tid)
	default:
		t.leafInsertAt(leaf, ub, key, tid)
	}

	if t.stats.LeafSplits+t.stats.NonLeafSplits > splitsBefore {
		t.stats.InsertsWithSplit++
	}
	if t.stats.NonLeafSplits > nlSplitsBefore {
		t.stats.InsertsWithNLSplit++
	}
	return true
}

// leafInsertAt inserts the pair at position pos of a non-full leaf.
func (t *Tree) leafInsertAt(n *node, pos int, key Key, tid TID) {
	moved := n.nkeys - pos
	copy(n.keys[pos+1:n.nkeys+1], n.keys[pos:n.nkeys])
	copy(n.tids[pos+1:n.nkeys+1], n.tids[pos:n.nkeys])
	n.keys[pos] = key
	n.tids[pos] = tid
	n.nkeys++
	t.mem.AccessRange(t.leafLay.keyAddr(n.addr, pos), (moved+1)*fieldSize)
	t.mem.AccessRange(t.leafLay.ptrAddr(n.addr, pos), (moved+1)*fieldSize)
	t.mem.Access(n.addr)
	t.mem.Compute(t.cost.Move * uint64(2*moved+2))
}

// splitLeaf splits a full leaf around the insertion of (key, tid) at
// position pos and pushes the separator up the recorded path.
func (t *Tree) splitLeaf(n *node, pos int, key Key, tid TID) {
	t.stats.LeafSplits++
	right := t.newLeaf()
	t.pfNode(right)
	if t.cfg.JumpArray == JumpExternal {
		// Prefetch the jump-pointer chunk lines the hint points at, so
		// the fetch overlaps the key redistribution below.
		t.pfHint(n.hint)
	}

	// A full gapped leaf has no gaps left, so its slot array is
	// packed and pos is an ordinary entry rank either way.
	total := n.nkeys + 1
	half := total / 2 // pairs staying in n

	// Assemble the combined order in scratch space, then lay the two
	// halves back out (re-gapping them in gapped mode).
	sk, st := t.scratchLeaf(total)
	copy(sk, n.keys[:pos])
	copy(st, n.tids[:pos])
	sk[pos] = key
	st[pos] = tid
	copy(sk[pos+1:], n.keys[pos:n.nkeys])
	copy(st[pos+1:], n.tids[pos:n.nkeys])

	t.layOutLeaf(n, sk[:half], st[:half])
	t.layOutLeaf(right, sk[half:], st[half:])

	right.next = n.next
	n.next = right
	t.mem.Access(t.leafLay.nextAddr(n.addr))
	t.mem.Access(t.leafLay.nextAddr(right.addr))

	// Charge the data movement: the whole right half is written, and
	// the left half shifted from pos onward (if the new pair landed
	// there).
	t.chargeLeafWriteCost(right, 0, right.nkeys)
	if pos < half {
		t.chargeLeafWriteCost(n, pos, half)
	}
	t.mem.Access(n.addr)

	if t.cfg.JumpArray == JumpExternal {
		t.jpInsertAfter(n, right)
	}
	t.insertIntoParent(right.keys[0], right)
}

// chargeLeafWriteCost charges writing entries [from, to) of a leaf.
func (t *Tree) chargeLeafWriteCost(n *node, from, to int) {
	if to <= from {
		return
	}
	t.mem.AccessRange(t.leafLay.keyAddr(n.addr, from), (to-from)*fieldSize)
	t.mem.AccessRange(t.leafLay.ptrAddr(n.addr, from), (to-from)*fieldSize)
	t.mem.Compute(t.cost.Move * uint64(2*(to-from)))
}

// insertIntoParent inserts (sep, right) above the node that just
// split, walking the descent path upward and splitting further as
// needed.
func (t *Tree) insertIntoParent(sep Key, right *node) {
	for level := len(t.path) - 1; ; level-- {
		if level < 0 {
			t.growRoot(sep, right)
			return
		}
		p := t.path[level]
		t.traceNode(level, kindOf(p.n))
		if !t.full(p.n) {
			t.nonLeafInsertAt(p.n, p.idx, sep, right)
			return
		}
		sep, right = t.splitNonLeaf(p.n, p.idx, sep, right)
	}
}

// growRoot replaces the root with a new node over {old root, right}.
func (t *Tree) growRoot(sep Key, right *node) {
	old := t.root
	newRoot := t.newNonLeaf(old.leaf)
	t.traceNode(0, kindOf(newRoot))
	t.pfNode(newRoot)
	newRoot.keys[0] = sep
	newRoot.children[0] = old
	newRoot.children[1] = right
	newRoot.nkeys = 1
	t.chargeNonLeafWrite(newRoot, 0, 1)
	t.root = newRoot
	t.height++
	if newRoot.bottom && t.cfg.JumpArray == JumpInternal {
		t.firstBottom = newRoot
	}
}

// nonLeafInsertAt inserts separator sep at key position idx and child
// right at position idx+1 of a non-full non-leaf node.
func (t *Tree) nonLeafInsertAt(n *node, idx int, sep Key, right *node) {
	moved := n.nkeys - idx
	copy(n.keys[idx+1:n.nkeys+1], n.keys[idx:n.nkeys])
	copy(n.children[idx+2:n.nkeys+2], n.children[idx+1:n.nkeys+1])
	n.keys[idx] = sep
	n.children[idx+1] = right
	n.nkeys++
	lay := t.lay(n)
	t.mem.AccessRange(lay.keyAddr(n.addr, idx), (moved+1)*fieldSize)
	t.mem.AccessRange(lay.ptrAddr(n.addr, idx+1), (moved+1)*fieldSize)
	t.mem.Access(n.addr)
	t.mem.Compute(t.cost.Move * uint64(2*moved+2))
}

// splitNonLeaf splits a full non-leaf node around the insertion of
// (sep, right) at key position idx. It returns the promoted separator
// and the new right sibling.
func (t *Tree) splitNonLeaf(n *node, idx int, sep Key, right *node) (Key, *node) {
	t.stats.NonLeafSplits++
	lay := t.lay(n)
	nn := t.newNonLeaf(n.bottom)
	t.pfNode(nn)

	total := n.nkeys + 1 // keys including the new separator
	sk, sc := t.scratchNonLeaf(total)
	copy(sk, n.keys[:idx])
	sk[idx] = sep
	copy(sk[idx+1:], n.keys[idx:n.nkeys])
	copy(sc, n.children[:idx+1])
	sc[idx+1] = right
	copy(sc[idx+2:], n.children[idx+1:n.nkeys+1])

	mid := total / 2
	promoted := sk[mid]

	copy(n.keys, sk[:mid])
	copy(n.children, sc[:mid+1])
	for i := mid + 1; i < len(n.children); i++ {
		n.children[i] = nil // drop stale child pointers
	}
	n.nkeys = mid

	copy(nn.keys, sk[mid+1:])
	copy(nn.children, sc[mid+1:total+1])
	nn.nkeys = total - mid - 1

	if n.bottom && t.cfg.JumpArray == JumpInternal {
		nn.next = n.next
		n.next = nn
		t.mem.Access(t.bottomLay.nextAddr(n.addr))
		t.mem.Access(t.bottomLay.nextAddr(nn.addr))
	}

	t.chargeNonLeafWrite(nn, 0, nn.nkeys)
	if idx < mid {
		t.mem.AccessRange(lay.keyAddr(n.addr, idx), (mid-idx)*fieldSize)
		t.mem.AccessRange(lay.ptrAddr(n.addr, idx+1), (mid-idx)*fieldSize)
		t.mem.Compute(t.cost.Move * uint64(2*(mid-idx)))
	}
	t.mem.Access(n.addr)
	return promoted, nn
}

// scratchLeaf returns scratch key/tid slices of length n.
func (t *Tree) scratchLeaf(n int) ([]Key, []TID) {
	if cap(t.skeys) < n {
		t.skeys = make([]Key, n)
		t.stids = make([]TID, n)
	}
	return t.skeys[:n], t.stids[:n]
}

// scratchNonLeaf returns scratch key/child slices for n keys and n+1
// children.
func (t *Tree) scratchNonLeaf(n int) ([]Key, []*node) {
	if cap(t.skeys) < n {
		t.skeys = make([]Key, n)
		t.stids = make([]TID, n)
	}
	if cap(t.schildren) < n+1 {
		t.schildren = make([]*node, n+1)
	}
	return t.skeys[:n], t.schildren[:n+1]
}

package core

import (
	"math/rand"
	"sync"
	"testing"

	"pbtree/internal/memsys"
)

// buildBatchTree bulkloads n spaced keys (key = 8*(i+1), tid = i+1)
// onto the given model.
func buildBatchTree(t *testing.T, cfg Config, n int) *Tree {
	t.Helper()
	tr := MustNew(cfg)
	pairs := make([]Pair, n)
	for i := range pairs {
		pairs[i] = Pair{Key: Key(8 * (i + 1)), TID: TID(i + 1)}
	}
	if err := tr.Bulkload(pairs, 0.8); err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestSearchBatchMatchesSearch checks that a group search returns
// exactly what the same keys return one at a time, present and absent
// keys alike, on both memory models.
func TestSearchBatchMatchesSearch(t *testing.T) {
	for _, cfg := range []Config{
		{Width: 1, Mem: memsys.Default()},
		{Width: 8, Prefetch: true, Mem: memsys.Default()},
		{Width: 8, Prefetch: true, Mem: memsys.DefaultNative()},
		{Width: 8, Prefetch: true, JumpArray: JumpInternal, Mem: memsys.Default()},
	} {
		tr := buildBatchTree(t, cfg, 10_000)
		r := rand.New(rand.NewSource(7))
		keys := make([]Key, 64)
		for i := range keys {
			if i%3 == 0 {
				keys[i] = Key(8*r.Intn(10_000) + 1 + r.Intn(7)) // absent
			} else {
				keys[i] = Key(8 * (r.Intn(10_000) + 1)) // present
			}
		}
		tids := make([]TID, len(keys))
		found := make([]bool, len(keys))
		tr.SearchBatch(keys, tids, found)
		for i, k := range keys {
			wantTID, wantOK := tr.Search(k)
			if found[i] != wantOK || (wantOK && tids[i] != wantTID) {
				t.Fatalf("%s: batch key %d: got (%d,%v), want (%d,%v)",
					tr.Name(), k, tids[i], found[i], wantTID, wantOK)
			}
		}
	}
}

// TestSearchBatchEmptyAndBounds covers the degenerate inputs.
func TestSearchBatchEmptyAndBounds(t *testing.T) {
	tr := buildBatchTree(t, Config{Width: 8, Prefetch: true, Mem: memsys.DefaultNative()}, 100)
	tr.SearchBatch(nil, nil, nil) // no-op
	defer func() {
		if recover() == nil {
			t.Fatal("short result slices did not panic")
		}
	}()
	tr.SearchBatch(make([]Key, 4), make([]TID, 2), make([]bool, 4))
}

// TestSearchBatchOverlapsStalls is the acceptance check for the group
// search: on the simulated hierarchy, M searches advanced in lockstep
// must expose fewer stall cycles than the same M searches run
// back-to-back, because the group's node fetches pipeline in memory.
func TestSearchBatchOverlapsStalls(t *testing.T) {
	const n, batches, m = 200_000, 40, 16
	seqStall, grpStall := batchStalls(t, n, batches, m)
	if grpStall >= seqStall {
		t.Fatalf("group search did not reduce exposed stalls: sequential %d, group %d", seqStall, grpStall)
	}
	// The effect should be substantial, not marginal: the paper-model
	// memory system overlaps misses at B = T1/Tnext = 15.
	if float64(grpStall) > 0.8*float64(seqStall) {
		t.Fatalf("group search stall reduction too small: sequential %d, group %d", seqStall, grpStall)
	}
}

// batchStalls runs the same warmed workload sequentially and grouped
// on two identical simulated trees and returns the exposed stall
// cycles of each mode.
func batchStalls(t *testing.T, n, batches, m int) (seqStall, grpStall uint64) {
	t.Helper()
	mkKeys := func() [][]Key {
		r := rand.New(rand.NewSource(11))
		groups := make([][]Key, batches)
		for i := range groups {
			g := make([]Key, m)
			for j := range g {
				g[j] = Key(8 * (r.Intn(n) + 1))
			}
			groups[i] = g
		}
		return groups
	}
	run := func(group bool) uint64 {
		cfg := Config{Width: 8, Prefetch: true, Mem: memsys.Default()}
		tr := buildBatchTree(t, cfg, n)
		groups := mkKeys()
		// Warm the caches identically in both modes.
		for _, g := range groups {
			for _, k := range g {
				tr.Search(k)
			}
		}
		before := tr.Mem().Stats()
		tids := make([]TID, m)
		found := make([]bool, m)
		for _, g := range groups {
			if group {
				tr.SearchBatch(g, tids, found)
			} else {
				for _, k := range g {
					if _, ok := tr.Search(k); !ok {
						t.Fatalf("lost key %d", k)
					}
				}
			}
		}
		return tr.Mem().Stats().Sub(before).Stall
	}
	return run(false), run(true)
}

// TestSearchBatchConcurrent hammers one frozen tree with concurrent
// group searches on the native model; the race detector checks that
// the batch path shares no mutable state.
func TestSearchBatchConcurrent(t *testing.T) {
	tr := buildBatchTree(t, Config{Width: 8, Prefetch: true, Mem: memsys.DefaultNative()}, 50_000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			keys := make([]Key, 32)
			tids := make([]TID, 32)
			found := make([]bool, 32)
			for iter := 0; iter < 200; iter++ {
				for i := range keys {
					keys[i] = Key(8 * (r.Intn(50_000) + 1))
				}
				tr.SearchBatch(keys, tids, found)
				for i := range keys {
					if !found[i] || tids[i] != TID(keys[i]/8) {
						panic("batch lost a key under concurrency")
					}
				}
			}
		}(int64(g))
	}
	wg.Wait()
}

package core

// MaxKey is the largest possible key, usable as an open scan bound.
const MaxKey = Key(^Key(0))

// Scanner is a resumable range scan. It is created positioned on the
// first qualifying pair; each Next call copies pairs into the caller's
// return buffer until the buffer fills, the end key is passed, or the
// index is exhausted — the segmented-scan protocol of section 3.
//
// Depending on the tree's configuration the scanner prefetches within
// the current leaf only (p^w), or uses the external or internal
// jump-pointer array to prefetch the leaf PrefetchDist nodes ahead
// (sections 3.3-3.5).
type Scanner struct {
	t    *Tree
	leaf *node
	idx  int
	end  Key
	done bool

	// External jump-pointer array cursor: the position of the most
	// recently prefetched leaf.
	ck    *chunk
	ckIdx int

	// Internal jump-pointer array cursor.
	bn    *node
	bnIdx int

	cursorDone bool

	// noPrefetch disables all scan prefetching for this scanner (the
	// short-range fallback of section 4.3).
	noPrefetch bool

	// Simulated return buffer region, reused across Next calls.
	bufAddr  uint64
	bufBytes int
	// bufPF is the prefetch write offset within the current Next
	// call's buffer ("assume the leaf is full and prefetch the return
	// buffer area accordingly").
	bufPF int
	// Real base address and size of the caller's buffer for the
	// current Next/NextPairs call (hardware-prefetch mode only;
	// simulated offsets map one-to-one onto it).
	bufReal      uintptr
	bufRealBytes int
}

// NewScan searches for the starting key and returns a scanner over
// [start, end]. The search cost is charged like any index search.
func (t *Tree) NewScan(start, end Key) *Scanner {
	return t.newScan(start, end, false)
}

// NewScanNoPrefetch returns a scanner that performs no scan
// prefetching at all. Section 4.3 observes that for ranges below
// roughly 100 tupleIDs the prefetch startup cost is not repaid; a
// query optimizer (see EstimateRange) can pick this scanner for short
// ranges.
func (t *Tree) NewScanNoPrefetch(start, end Key) *Scanner {
	return t.newScan(start, end, true)
}

func (t *Tree) newScan(start, end Key, noPrefetch bool) *Scanner {
	if t.trc != nil {
		t.trc.BeginOp(OpScan)
		defer t.trc.EndOp(OpScan)
	}
	t.mem.Compute(t.cost.Op)
	s := &Scanner{t: t, end: end, noPrefetch: noPrefetch}
	// Record the bottom-level descent step in the scanner itself (not
	// t.path) so concurrent native-mode scans never write shared tree
	// state; it seeds the internal jump-pointer cursor below.
	var rec func(n *node, idx int)
	if t.cfg.JumpArray == JumpInternal {
		rec = func(n *node, idx int) { s.bn, s.bnIdx = n, idx }
	}
	leaf := t.walk(start, rec)
	ub, found := t.searchKeys(leaf, start)
	idx := ub
	if found {
		idx = ub - 1
	}
	s.leaf, s.idx = leaf, idx

	// The starting position may be one past the last key of this leaf.
	if idx >= slotExtent(leaf) {
		s.advanceLeafNoPrefetch()
	}
	if s.leaf == nil {
		s.done = true
		return s
	}
	if noPrefetch {
		return s
	}

	switch t.cfg.JumpArray {
	case JumpExternal:
		s.startupExternal()
	case JumpInternal:
		s.startupInternal()
	}
	return s
}

// advanceLeafNoPrefetch steps to the next leaf without the prefetch
// cursor (used only for the initial positioning edge case).
func (s *Scanner) advanceLeafNoPrefetch() {
	s.t.mem.Access(s.t.leafLay.nextAddr(s.leaf.addr))
	s.leaf = s.leaf.next
	s.idx = 0
}

// startupExternal performs the startup phase of section 3.3: locate
// the starting leaf in the jump-pointer array, prefetch the current
// and next chunks, and range-prefetch the first k leaves.
func (s *Scanner) startupExternal() {
	t := s.t
	s.ck, s.ckIdx = t.jpLocate(s.leaf)
	t.traceNode(LevelNone, KindChunk)
	t.pfChunk(s.ck)
	if s.ck.next != nil {
		t.pfChunk(s.ck.next)
	}
	// The current leaf is already cached from the search; prefetch the
	// k-1 following leaves, leaving the cursor on the last one.
	for i := 1; i < t.cfg.PrefetchDist; i++ {
		s.prefetchNextExternal()
	}
}

// prefetchNextExternal advances the external cursor one occupied slot
// and range-prefetches that leaf.
func (s *Scanner) prefetchNextExternal() {
	if s.cursorDone {
		return
	}
	t := s.t
	t.traceNode(LevelNone, KindChunk)
	i := s.ckIdx + 1
	ck := s.ck
	for {
		if i >= len(ck.slots) {
			if ck.next == nil {
				s.cursorDone = true
				return
			}
			ck = ck.next
			i = 0
			// Entering a new chunk: prefetch the chunk after it so it
			// is resident before we reach it (section 3.3).
			if ck.next != nil {
				t.pfChunk(ck.next)
			}
			continue
		}
		t.mem.Access(ck.slotAddr(i))
		if ck.slots[i] != nil {
			break
		}
		i++
	}
	s.ck, s.ckIdx = ck, i
	s.rangePrefetchLeaf(ck.slots[i])
}

// startupInternal initializes the internal jump-pointer array cursor
// from the recorded descent and prefetches the first k leaves. The
// starting position within the bottom non-leaf node was determined by
// the search (newScan recorded it in s.bn/s.bnIdx), so no lookup is
// needed (section 3.5).
func (s *Scanner) startupInternal() {
	t := s.t
	if s.bn == nil {
		return // the root is a leaf: nothing to prefetch across
	}
	t.traceNode(t.height-2, KindBottom)
	if s.bn.next != nil {
		t.pfNode(s.bn.next)
	}
	for i := 1; i < t.cfg.PrefetchDist; i++ {
		s.prefetchNextInternal()
	}
}

// prefetchNextInternal advances the internal cursor one child and
// range-prefetches that leaf.
func (s *Scanner) prefetchNextInternal() {
	if s.cursorDone || s.bn == nil {
		return
	}
	t := s.t
	t.traceNode(t.height-2, KindBottom)
	i := s.bnIdx + 1
	bn := s.bn
	if i > bn.nkeys {
		if bn.next == nil {
			s.cursorDone = true
			return
		}
		bn = bn.next
		i = 0
		if bn.next != nil {
			t.pfNode(bn.next)
		}
	}
	s.bn, s.bnIdx = bn, i
	t.mem.Access(t.bottomLay.ptrAddr(bn.addr, i))
	s.rangePrefetchLeaf(bn.children[i])
}

// rangePrefetchLeaf prefetches all lines of a leaf plus the return
// buffer area it will be copied into.
func (s *Scanner) rangePrefetchLeaf(leaf *node) {
	t := s.t
	t.traceNode(t.height-1, KindLeaf)
	t.pfNode(leaf)
	if s.bufBytes > 0 && !t.cfg.Ablation.NoBufferPrefetch {
		n := t.leafLay.maxKeys * fieldSize
		if s.bufPF+n > s.bufBytes {
			n = s.bufBytes - s.bufPF
		}
		if n > 0 {
			t.traceNode(LevelNone, KindBuffer)
			s.pfBuf(s.bufPF, n)
			s.bufPF += n
		}
	}
}

// Next copies qualifying tupleIDs into buf and returns how many were
// copied. A return of 0 means the scan is complete. A full buffer
// pauses the scan; the next call resumes where it left off.
func (s *Scanner) Next(buf []TID) int {
	if s.done || len(buf) == 0 {
		return 0
	}
	t := s.t
	if t.trc != nil {
		t.trc.BeginOp(OpScan)
		defer t.trc.EndOp(OpScan)
	}

	// (Re)use the simulated return buffer region.
	if s.bufBytes < len(buf)*fieldSize {
		s.bufBytes = len(buf) * fieldSize
		s.bufAddr = t.space.Alloc(s.bufBytes)
	}
	if t.hw {
		s.bufReal, s.bufRealBytes = bufBase(buf), len(buf)*fieldSize
	}
	// Prime the buffer prefetch k leaves ahead of the writer, mirroring
	// the startup range prefetch of the leaves themselves ("we will
	// assume that the leaf is full and prefetch the return buffer area
	// accordingly"). Without a jump-pointer array the buffer is still
	// prefetched, but only one leaf ahead.
	s.bufPF = 0
	if t.cfg.Prefetch && !s.noPrefetch && !t.cfg.Ablation.NoBufferPrefetch {
		leaves := 1
		if t.cfg.JumpArray != JumpNone {
			leaves = t.cfg.PrefetchDist
		}
		ahead := leaves * t.leafLay.maxKeys * fieldSize
		if ahead > len(buf)*fieldSize {
			ahead = len(buf) * fieldSize
		}
		t.traceNode(LevelNone, KindBuffer)
		s.pfBuf(0, ahead)
		s.bufPF = ahead
	}

	// The copy loop interleaves leaf reads and return-buffer writes;
	// all of it is attributed to the leaf level.
	t.traceNode(t.height-1, KindLeaf)
	written := 0
	for {
		leaf := s.leaf
		lay := t.leafLay
		for s.idx < slotExtent(leaf) {
			if !slotOccupied(leaf, s.idx) {
				s.idx++ // skip gap slots (gapped leaves)
				continue
			}
			// The boundary check touches the key line; its comparison
			// is part of the per-tuple Copy cost (the paper's copy
			// loop is count-driven, not a per-key binary search).
			t.mem.Access(lay.keyAddr(leaf.addr, s.idx))
			if leaf.keys[s.idx] > s.end {
				s.done = true
				return written
			}
			if written == len(buf) {
				return written
			}
			t.mem.Access(lay.ptrAddr(leaf.addr, s.idx))
			t.mem.Access(s.bufAddr + uint64(written*fieldSize))
			t.mem.Compute(t.cost.Copy)
			buf[written] = leaf.tids[s.idx]
			written++
			s.idx++
		}
		// Advance to the next leaf, keeping the prefetch cursor k
		// nodes ahead.
		t.mem.Access(lay.nextAddr(leaf.addr))
		if !s.noPrefetch {
			switch t.cfg.JumpArray {
			case JumpExternal:
				s.prefetchNextExternal()
			case JumpInternal:
				s.prefetchNextInternal()
			}
		}
		s.leaf = leaf.next
		s.idx = 0
		if s.leaf == nil {
			s.done = true
			return written
		}
		s.visitLeafForScan(s.leaf, written)
	}
}

// visitLeafForScan models arriving at a leaf mid-scan: with
// prefetching but no jump-pointer array, all of the leaf's lines plus
// its return-buffer area are prefetched here (they could not be
// prefetched earlier); with a jump-pointer array they were prefetched
// k nodes ago and this is free beyond the keynum read.
func (s *Scanner) visitLeafForScan(n *node, written int) {
	t := s.t
	t.traceNode(t.height-1, KindLeaf)
	if t.cfg.Prefetch && !s.noPrefetch && t.cfg.JumpArray == JumpNone {
		t.pfNode(n)
		if s.bufBytes > 0 && !t.cfg.Ablation.NoBufferPrefetch {
			sz := t.leafLay.maxKeys * fieldSize
			off := written * fieldSize
			if off+sz > s.bufBytes {
				sz = s.bufBytes - off
			}
			if sz > 0 {
				t.traceNode(LevelNone, KindBuffer)
				s.pfBuf(off, sz)
				t.traceNode(t.height-1, KindLeaf)
			}
		}
	}
	t.mem.Access(n.addr)
	t.mem.Compute(t.cost.Visit)
}

// NextPairs is Next, but copies <key, tupleID> pairs instead of bare
// tupleIDs — the serving layer merges per-shard scans by key and needs
// both halves. The memory charges mirror Next's: key read, tupleID
// read, one return-buffer write per pair (a Pair is one buffer slot;
// the simulated buffer region sizes itself in pairs accordingly).
func (s *Scanner) NextPairs(buf []Pair) int {
	if s.done || len(buf) == 0 {
		return 0
	}
	t := s.t
	if t.trc != nil {
		t.trc.BeginOp(OpScan)
		defer t.trc.EndOp(OpScan)
	}

	if s.bufBytes < len(buf)*2*fieldSize {
		s.bufBytes = len(buf) * 2 * fieldSize
		s.bufAddr = t.space.Alloc(s.bufBytes)
	}
	if t.hw {
		s.bufReal, s.bufRealBytes = pairBufBase(buf), len(buf)*2*fieldSize
	}
	s.bufPF = 0
	if t.cfg.Prefetch && !s.noPrefetch && !t.cfg.Ablation.NoBufferPrefetch {
		leaves := 1
		if t.cfg.JumpArray != JumpNone {
			leaves = t.cfg.PrefetchDist
		}
		ahead := leaves * t.leafLay.maxKeys * fieldSize
		if ahead > s.bufBytes {
			ahead = s.bufBytes
		}
		t.traceNode(LevelNone, KindBuffer)
		s.pfBuf(0, ahead)
		s.bufPF = ahead
	}

	t.traceNode(t.height-1, KindLeaf)
	written := 0
	for {
		leaf := s.leaf
		lay := t.leafLay
		for s.idx < slotExtent(leaf) {
			if !slotOccupied(leaf, s.idx) {
				s.idx++ // skip gap slots (gapped leaves)
				continue
			}
			t.mem.Access(lay.keyAddr(leaf.addr, s.idx))
			if leaf.keys[s.idx] > s.end {
				s.done = true
				return written
			}
			if written == len(buf) {
				return written
			}
			t.mem.Access(lay.ptrAddr(leaf.addr, s.idx))
			t.mem.Access(s.bufAddr + uint64(written*2*fieldSize))
			t.mem.Compute(t.cost.Copy)
			buf[written] = Pair{Key: leaf.keys[s.idx], TID: leaf.tids[s.idx]}
			written++
			s.idx++
		}
		t.mem.Access(lay.nextAddr(leaf.addr))
		if !s.noPrefetch {
			switch t.cfg.JumpArray {
			case JumpExternal:
				s.prefetchNextExternal()
			case JumpInternal:
				s.prefetchNextInternal()
			}
		}
		s.leaf = leaf.next
		s.idx = 0
		if s.leaf == nil {
			s.done = true
			return written
		}
		s.visitLeafForScan(s.leaf, written)
	}
}

// Scan is a convenience wrapper: it scans from start until either
// count pairs have been returned or end is passed, using a single
// return buffer of size count, and reports the number of pairs
// returned. It models the paper's "range scan request for m tupleIDs".
func (t *Tree) Scan(start Key, count int) int {
	s := t.NewScan(start, MaxKey)
	buf := make([]TID, count)
	return s.Next(buf)
}

package core

// Snapshot hooks: the serving layer (internal/serve) publishes frozen
// copies of a tree while a writer keeps mutating its own working copy.
// AppendPairs, like WriteTo, charges nothing to the memory model — it
// is maintenance plumbing, not a modeled index operation; CloneFrozen
// charges its bulkload as usual (a no-op on the native model the
// serving layer uses).

// AppendPairs appends every <key, tupleID> pair of the tree to dst in
// key order and returns the extended slice. Pass a slice with spare
// capacity (e.g. make([]Pair, 0, t.Len())) to avoid reallocation.
func (t *Tree) AppendPairs(dst []Pair) []Pair {
	for n := t.leftmostLeaf(); n != nil; n = n.next {
		dst = appendLeafPairs(dst, n)
	}
	return dst
}

// CloneFrozen bulkloads a fresh tree with the same configuration and
// the current contents at the given fill factor. The clone charges to
// the same memory model but allocates from its own address space
// (unless the original configuration pinned a shared one), so the
// original can keep mutating while readers use the frozen clone — the
// copy-on-write publication step of a serving snapshot.
func (t *Tree) CloneFrozen(fill float64) (*Tree, error) {
	nt, err := New(t.cfg)
	if err != nil {
		return nil, err
	}
	pairs := t.AppendPairs(make([]Pair, 0, t.count))
	if err := nt.Bulkload(pairs, fill); err != nil {
		return nil, err
	}
	return nt, nil
}

package core

import (
	"fmt"
	"math/bits"
)

// Gapped leaf slots (Config.GappedLeaves): instead of packing a
// leaf's entries into slots [0, nkeys), entries sit in a sparse slot
// array with an occupancy bitmap, the way BS-tree lays out its gapped
// data-parallel nodes. A split interleaves one gap between every two
// entries, so the insert that follows lands in a gap and writes one
// slot instead of shifting half the leaf; only when the neighborhood
// of the insertion point has filled up does an insert shift entries —
// and then only as far as the nearest gap, not to the end of the
// node.
//
// Invariants of a gapped leaf (checked by CheckInvariants and fuzzed
// by FuzzGappedLeaf):
//
//   - nkeys is the number of occupied slots; nslots is one past the
//     last occupied slot (0 when empty); nslots <= cap.
//   - Occupied keys are strictly increasing in slot order.
//   - Every gap slot below nslots holds a copy of the key of its
//     nearest occupied right neighbor ("dup-of-right"), so
//     keys[0:nslots] is non-decreasing and any sorted-array lower
//     bound — the binary search or the branchless 8-wide pass —
//     works on the raw slot array without consulting the bitmap.
//   - Slots at and above nslots are unconstrained garbage.
//
// Dup-of-right has a second payoff: keys[0] always equals the
// smallest live key even when slot 0 is a gap, so separator
// maintenance (subtreeMin, split/redistribute) reads keys[0]
// unchanged. Non-leaf nodes are never gapped.

// slotExtent returns the iteration extent of a leaf's slot array:
// nslots for a gapped leaf, nkeys for a packed one.
func slotExtent(n *node) int {
	if n.occ != nil {
		return n.nslots
	}
	return n.nkeys
}

// lastKey returns the largest live key of a non-empty node: the last
// occupied slot's key for a gapped leaf, keys[nkeys-1] otherwise.
func lastKey(n *node) Key {
	if n.occ != nil {
		return n.keys[n.nslots-1]
	}
	return n.keys[n.nkeys-1]
}

// slotOccupied reports whether slot i (< slotExtent) holds a live
// entry.
func slotOccupied(n *node, i int) bool {
	if n.occ == nil {
		return true
	}
	return n.occ[i>>6]&(1<<(i&63)) != 0
}

// setOcc marks slot i occupied.
func setOcc(n *node, i int) { n.occ[i>>6] |= 1 << (i & 63) }

// clearOcc marks slot i a gap.
func clearOcc(n *node, i int) { n.occ[i>>6] &^= 1 << (i & 63) }

// nextOcc returns the first occupied slot >= i, or limit if none.
func nextOcc(n *node, i, limit int) int {
	for ; i < limit; i++ {
		w := n.occ[i>>6] >> (i & 63)
		if w == 0 {
			i |= 63 // skip to the last slot of this word
			continue
		}
		return i + bits.TrailingZeros64(w)
	}
	return limit
}

// prevOcc returns the last occupied slot <= i, or -1 if none.
func prevOcc(n *node, i int) int {
	for ; i >= 0; i-- {
		w := n.occ[i>>6] << (63 - (i & 63))
		if w == 0 {
			i &^= 63 // skip to the first slot of this word
			continue
		}
		return i - bits.LeadingZeros64(w)
	}
	return -1
}

// nextGap returns the first gap slot in [i, limit), or limit if none.
// Slots at and above nslots count as gaps (their bits are clear).
func nextGap(n *node, i, limit int) int {
	for ; i < limit; i++ {
		w := ^n.occ[i>>6] >> (i & 63)
		if w == 0 {
			i |= 63
			continue
		}
		if g := i + bits.TrailingZeros64(w); g < limit {
			return g
		}
		return limit
	}
	return limit
}

// prevGap returns the last gap slot <= i, or -1 if none.
func prevGap(n *node, i int) int {
	for ; i >= 0; i-- {
		w := ^n.occ[i>>6] << (63 - (i & 63))
		if w == 0 {
			i &^= 63
			continue
		}
		return i - bits.LeadingZeros64(w)
	}
	return -1
}

// searchKeysGapped finds key in a gapped leaf. The return contract
// matches searchKeys: on a hit, ub-1 is the (occupied) slot of the
// key; on a miss, ub is the slot a subsequent insert should target
// (the lower bound over the slot array).
func (t *Tree) searchKeysGapped(n *node, key Key) (ub int, found bool) {
	s := t.lowerBoundSlots(n, key, n.nslots)
	j := nextOcc(n, s, n.nslots)
	if j < n.nslots {
		t.mem.Access(t.leafLay.keyAddr(n.addr, j))
		t.mem.Compute(t.cost.Compare)
		if n.keys[j] == key {
			return j + 1, true
		}
	}
	return s, false
}

// lowerBoundSlots returns the first slot in [0, limit) whose key is
// >= key (limit if none), charging the probes to the memory model.
// The slot array is sorted (dup-of-right), so both search modes work.
func (t *Tree) lowerBoundSlots(n *node, key Key, limit int) int {
	if t.cfg.BranchlessSearch {
		return t.lowerBoundBranchless(n, key, limit)
	}
	lay := t.lay(n)
	lo, hi := 0, limit
	for lo < hi {
		mid := (lo + hi) / 2
		t.mem.Access(lay.keyAddr(n.addr, mid))
		t.mem.Compute(t.cost.Compare)
		if n.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// gappedLeafInsertAt inserts (key, tid) into a non-full gapped leaf.
// pos is the miss position reported by searchKeysGapped: the lower
// bound over the slot array. If that slot is free the insert writes
// it directly; otherwise entries shift one slot toward the nearest
// gap (left or right, whichever is closer).
func (t *Tree) gappedLeafInsertAt(n *node, pos int, key Key, tid TID) {
	lay := t.leafLay
	cap := lay.maxKeys
	switch {
	case pos >= n.nslots && n.nslots < cap:
		// Append past the last occupied slot.
		pos = n.nslots
		n.nslots++
	case pos < n.nslots && !slotOccupied(n, pos):
		// The lower-bound slot is a gap: absorb in place. Gaps
		// between pos and the next occupied slot keep duplicating a
		// key > key, so sortedness holds; and slot pos-1 cannot be a
		// gap (its dup would be >= key, contradicting the lower
		// bound), so no gap to the left needs its dup rewritten.
	default:
		// pos is occupied (or the array is slot-full on the right).
		// Shift toward the nearest gap. A gap exists: nkeys < cap.
		gr := cap
		if pos < cap {
			gr = nextGap(n, pos, cap)
		}
		gl := prevGap(n, pos-1)
		if gl >= 0 && (gr == cap || pos-gl <= gr-pos) {
			// Shift [gl+1, pos) one slot left; insert at pos-1.
			copy(n.keys[gl:pos-1], n.keys[gl+1:pos])
			copy(n.tids[gl:pos-1], n.tids[gl+1:pos])
			setOcc(n, gl)
			pos--
			moved := pos - gl
			t.mem.AccessRange(lay.keyAddr(n.addr, gl), (moved+1)*fieldSize)
			t.mem.AccessRange(lay.ptrAddr(n.addr, gl), (moved+1)*fieldSize)
			t.mem.Access(n.addr)
			t.mem.Compute(t.cost.Move * uint64(2*moved+2))
			n.keys[pos] = key
			n.tids[pos] = tid
			n.nkeys++
			return
		}
		// Shift [pos, gr) one slot right; insert at pos.
		copy(n.keys[pos+1:gr+1], n.keys[pos:gr])
		copy(n.tids[pos+1:gr+1], n.tids[pos:gr])
		setOcc(n, gr)
		if gr >= n.nslots {
			n.nslots = gr + 1
		}
		moved := gr - pos
		t.mem.AccessRange(lay.keyAddr(n.addr, pos), (moved+1)*fieldSize)
		t.mem.AccessRange(lay.ptrAddr(n.addr, pos), (moved+1)*fieldSize)
		t.mem.Access(n.addr)
		t.mem.Compute(t.cost.Move * uint64(2*moved+2))
		n.keys[pos] = key
		n.tids[pos] = tid
		n.nkeys++
		return
	}
	n.keys[pos] = key
	n.tids[pos] = tid
	setOcc(n, pos)
	n.nkeys++
	t.mem.AccessRange(lay.keyAddr(n.addr, pos), fieldSize)
	t.mem.AccessRange(lay.ptrAddr(n.addr, pos), fieldSize)
	t.mem.Access(n.addr)
	t.mem.Compute(t.cost.Move * 2)
}

// gappedLeafRemoveAt removes the entry at (occupied) slot i of a
// gapped leaf, repairing the dup-of-right run that now ends at i (or
// shrinking nslots when i was the last occupied slot).
func (t *Tree) gappedLeafRemoveAt(n *node, i int) {
	lay := t.leafLay
	clearOcc(n, i)
	n.nkeys--
	if i == n.nslots-1 {
		// Removed the last occupied slot: everything from the
		// previous occupied slot on becomes out-of-extent garbage.
		n.nslots = prevOcc(n, i-1) + 1
		t.mem.Access(n.addr)
		t.mem.Compute(t.cost.Move)
		return
	}
	// Repair the gap run ending at i: each gap duplicates the key of
	// its nearest occupied right neighbor.
	dup := n.keys[nextOcc(n, i+1, n.nslots)]
	w := 0
	for g := i; g >= 0 && !slotOccupied(n, g); g-- {
		n.keys[g] = dup
		w++
	}
	t.mem.AccessRange(lay.keyAddr(n.addr, i-w+1), w*fieldSize)
	t.mem.Access(n.addr)
	t.mem.Compute(t.cost.Move * uint64(w))
}

// extractLeaf copies a leaf's live entries, in key order, into the
// tree's shared scratch slices (so it is only for the single-writer
// structural paths). The slices have length n.nkeys.
func (t *Tree) extractLeaf(n *node) ([]Key, []TID) {
	sk, st := t.scratchLeaf(n.nkeys)
	if n.occ == nil {
		copy(sk, n.keys[:n.nkeys])
		copy(st, n.tids[:n.nkeys])
		return sk, st
	}
	w := 0
	for i := nextOcc(n, 0, n.nslots); i < n.nslots; i = nextOcc(n, i+1, n.nslots) {
		sk[w] = n.keys[i]
		st[w] = n.tids[i]
		w++
	}
	return sk, st
}

// appendLeafPairs appends the live entries of a leaf (packed or
// gapped) to dst in key order.
func appendLeafPairs(dst []Pair, n *node) []Pair {
	if n.occ == nil {
		for i := 0; i < n.nkeys; i++ {
			dst = append(dst, Pair{Key: n.keys[i], TID: n.tids[i]})
		}
		return dst
	}
	for i := nextOcc(n, 0, n.nslots); i < n.nslots; i = nextOcc(n, i+1, n.nslots) {
		dst = append(dst, Pair{Key: n.keys[i], TID: n.tids[i]})
	}
	return dst
}

// layOutLeaf writes m entries from the scratch slices into the leaf.
// A packed leaf gets slots [0, m). A gapped leaf gets one gap
// interleaved after every entry when the slot array has room
// (entries at slots 0, 2, 4, ...), the split layout that lets the
// next inserts absorb without shifting; otherwise it degrades
// gracefully toward packed.
func (t *Tree) layOutLeaf(n *node, sk []Key, st []TID) {
	m := len(sk)
	n.nkeys = m
	if n.occ == nil {
		copy(n.keys, sk)
		copy(n.tids, st)
		return
	}
	clear(n.occ)
	if m == 0 {
		n.nslots = 0
		return
	}
	stride := 1
	if 2*m-1 <= t.leafLay.maxKeys {
		stride = 2
	}
	slot := 0
	for i, k := range sk {
		n.keys[slot] = k
		n.tids[slot] = st[i]
		setOcc(n, slot)
		if stride == 2 && i+1 < m {
			// The interleaved gap duplicates its right neighbor.
			n.keys[slot+1] = sk[i+1]
		}
		slot += stride
	}
	n.nslots = slot - stride + 1
}

// checkGappedLeaf validates the gapped-leaf invariants of n.
func (t *Tree) checkGappedLeaf(n *node) error {
	if n.nslots > t.leafLay.maxKeys || n.nslots < 0 {
		return fmt.Errorf("gapped leaf nslots %d outside [0, %d]", n.nslots, t.leafLay.maxKeys)
	}
	occ := 0
	last := -1
	var prev Key
	for i := 0; i < n.nslots; i++ {
		if i > 0 && n.keys[i] < prev {
			return fmt.Errorf("gapped leaf slot array unsorted at slot %d", i)
		}
		prev = n.keys[i]
		if slotOccupied(n, i) {
			if occ > 0 && n.keys[i] <= n.keys[last] {
				return fmt.Errorf("gapped leaf occupied keys not strictly increasing at slot %d", i)
			}
			occ++
			last = i
		}
	}
	if occ != n.nkeys {
		return fmt.Errorf("gapped leaf bitmap count %d, nkeys %d", occ, n.nkeys)
	}
	if n.nkeys > 0 && last != n.nslots-1 {
		return fmt.Errorf("gapped leaf last occupied slot %d, nslots %d", last, n.nslots)
	}
	if n.nkeys == 0 && n.nslots != 0 {
		return fmt.Errorf("empty gapped leaf with nslots %d", n.nslots)
	}
	// Dup-of-right: walk right-to-left carrying the nearest occupied
	// key.
	for i, dup := n.nslots-1, Key(0); i >= 0; i-- {
		if slotOccupied(n, i) {
			dup = n.keys[i]
		} else if n.keys[i] != dup {
			return fmt.Errorf("gapped leaf gap slot %d holds %d, want dup-of-right %d", i, n.keys[i], dup)
		}
	}
	// Bits at or above nslots must be clear (nextOcc/prevOcc rely on
	// it only below nslots, but stale bits would corrupt later
	// inserts that extend nslots).
	for i := n.nslots; i < len(n.occ)*64; i++ {
		if i < t.leafLay.maxKeys && n.occ[i>>6]&(1<<(i&63)) != 0 {
			return fmt.Errorf("gapped leaf stale occupancy bit at slot %d >= nslots %d", i, n.nslots)
		}
	}
	return nil
}

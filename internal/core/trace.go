package core

// This file defines the operation-context side of the observability
// layer: an optional Tracer that learns which index operation is in
// progress and which node (tree level, node kind) the tree is working
// on. Together with a memsys.Probe on the hierarchy, a collector can
// attribute every cache miss and stall cycle to an operation, a tree
// level and a node kind (internal/obs does exactly that).
//
// Tracing is observation only: tracer notifications charge nothing to
// the memory model, so simulated cycle counts are identical with and
// without a tracer installed. With no tracer the per-call cost is one
// nil check.

// OpKind identifies the index operation in progress.
type OpKind uint8

const (
	// OpNone is the idle context (bulkload, invariant checks, ...).
	OpNone OpKind = iota
	// OpSearch is a point lookup.
	OpSearch
	// OpInsert is an insertion.
	OpInsert
	// OpDelete is a deletion.
	OpDelete
	// OpScan is a range scan (NewScan or Next).
	OpScan
)

// NumOps is the number of OpKind values, for dense per-op tables.
const NumOps = 5

// String names the operation the way attribution tables render it.
func (o OpKind) String() string {
	switch o {
	case OpSearch:
		return "search"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpScan:
		return "scan"
	default:
		return "none"
	}
}

// NodeKind classifies what a memory reference is working on.
type NodeKind uint8

const (
	// KindOther is traffic outside any classified structure.
	KindOther NodeKind = iota
	// KindNonLeaf is an upper non-leaf node.
	KindNonLeaf
	// KindBottom is a bottom non-leaf node (parent of leaves).
	KindBottom
	// KindLeaf is a leaf node (scan copy traffic to the return buffer
	// is attributed to the leaf being copied out).
	KindLeaf
	// KindChunk is an external jump-pointer array chunk.
	KindChunk
	// KindBuffer is a scan return buffer.
	KindBuffer
)

// String names the node kind the way attribution tables render it.
func (k NodeKind) String() string {
	switch k {
	case KindNonLeaf:
		return "nonleaf"
	case KindBottom:
		return "bottom"
	case KindLeaf:
		return "leaf"
	case KindChunk:
		return "chunk"
	case KindBuffer:
		return "buffer"
	default:
		return "other"
	}
}

// LevelNone tags traffic that belongs to no tree level (jump-pointer
// chunks, return buffers).
const LevelNone = -1

// Tracer receives operation-context notifications from a Tree. The
// context is "sticky": traffic between two Node calls belongs to the
// most recently announced node, so structural-update traffic (splits,
// redistributions) is attributed to the level that triggered it.
// Implementations must not touch the tree or its memory model.
type Tracer interface {
	// BeginOp announces the start of an index operation.
	BeginOp(op OpKind)
	// EndOp announces the end of the operation started last.
	EndOp(op OpKind)
	// Node announces that subsequent memory traffic works on a node at
	// the given tree level (0 = root, LevelNone = outside the tree) of
	// the given kind.
	Node(level int, kind NodeKind)
}

// Tracers fans notifications out to several tracers; nil entries are
// skipped, so callers can stack an optional tracer on top of their own.
type Tracers []Tracer

// BeginOp fans the operation start out to every non-nil tracer.
func (ts Tracers) BeginOp(op OpKind) {
	for _, t := range ts {
		if t != nil {
			t.BeginOp(op)
		}
	}
}

// EndOp fans the operation end out to every non-nil tracer.
func (ts Tracers) EndOp(op OpKind) {
	for _, t := range ts {
		if t != nil {
			t.EndOp(op)
		}
	}
}

// Node fans the node announcement out to every non-nil tracer.
func (ts Tracers) Node(level int, kind NodeKind) {
	for _, t := range ts {
		if t != nil {
			t.Node(level, kind)
		}
	}
}

// kindOf classifies a node for attribution.
func kindOf(n *node) NodeKind {
	switch {
	case n.leaf:
		return KindLeaf
	case n.bottom:
		return KindBottom
	default:
		return KindNonLeaf
	}
}

// beginOp/endOp/traceNode are the nil-guarded notification helpers the
// operation code calls.
func (t *Tree) beginOp(op OpKind) {
	if t.trc != nil {
		t.trc.BeginOp(op)
	}
}

func (t *Tree) endOp(op OpKind) {
	if t.trc != nil {
		t.trc.EndOp(op)
	}
}

func (t *Tree) traceNode(level int, kind NodeKind) {
	if t.trc != nil {
		t.trc.Node(level, kind)
	}
}

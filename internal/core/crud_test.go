package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// sortedPairs returns n pairs with keys 8, 16, 24, ... so tests can
// probe between-key values.
func sortedPairs(n int) []Pair {
	ps := make([]Pair, n)
	for i := range ps {
		ps[i] = Pair{Key: Key(8 * (i + 1)), TID: TID(i + 1)}
	}
	return ps
}

// shuffledKeys returns the keys of ps in random order.
func shuffledKeys(r *rand.Rand, ps []Pair) []Key {
	keys := make([]Key, len(ps))
	for i, p := range ps {
		keys[i] = p.Key
	}
	r.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	return keys
}

func TestBulkloadAndSearch(t *testing.T) {
	for _, cfg := range testVariants() {
		t.Run(cfg.name(), func(t *testing.T) {
			tr := newTestTree(t, cfg)
			pairs := sortedPairs(5000)
			if err := tr.Bulkload(pairs, 1.0); err != nil {
				t.Fatal(err)
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if tr.Len() != len(pairs) {
				t.Fatalf("Len = %d, want %d", tr.Len(), len(pairs))
			}
			for _, p := range pairs {
				tid, ok := tr.Search(p.Key)
				if !ok || tid != p.TID {
					t.Fatalf("Search(%d) = %d,%v, want %d", p.Key, tid, ok, p.TID)
				}
			}
			// Absent keys: below, between, above.
			for _, k := range []Key{0, 7, 12, 8*5000 + 1, MaxKey} {
				if _, ok := tr.Search(k); ok {
					t.Fatalf("Search(%d) found a phantom key", k)
				}
			}
		})
	}
}

func TestBulkloadFillFactors(t *testing.T) {
	for _, fill := range []float64{0.6, 0.7, 0.8, 0.9, 1.0} {
		for _, cfg := range []Config{{Width: 1}, {Width: 8, Prefetch: true, JumpArray: JumpExternal}} {
			tr := newTestTree(t, cfg)
			pairs := sortedPairs(3000)
			if err := tr.Bulkload(pairs, fill); err != nil {
				t.Fatal(err)
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("%s fill %v: %v", tr.Name(), fill, err)
			}
			want := fillCount(tr.LeafCapacity(), fill)
			// All leaves except the last hold exactly the fill count.
			n := tr.leftmostLeaf()
			for ; n.next != nil; n = n.next {
				if n.nkeys != want {
					t.Fatalf("%s fill %v: leaf has %d keys, want %d", tr.Name(), fill, n.nkeys, want)
				}
			}
			for _, p := range pairs {
				if _, ok := tr.Search(p.Key); !ok {
					t.Fatalf("%s fill %v: key %d lost", tr.Name(), fill, p.Key)
				}
			}
		}
	}
}

func TestBulkloadRejectsBadInput(t *testing.T) {
	tr := newTestTree(t, Config{Width: 1})
	if err := tr.Bulkload(sortedPairs(10), 0); err == nil {
		t.Error("fill 0 accepted")
	}
	if err := tr.Bulkload(sortedPairs(10), 1.5); err == nil {
		t.Error("fill > 1 accepted")
	}
	dup := []Pair{{Key: 5}, {Key: 5}}
	if err := tr.Bulkload(dup, 1); err == nil {
		t.Error("duplicate keys accepted")
	}
	unsorted := []Pair{{Key: 9}, {Key: 5}}
	if err := tr.Bulkload(unsorted, 1); err == nil {
		t.Error("unsorted keys accepted")
	}
}

func TestBulkloadEmpty(t *testing.T) {
	for _, cfg := range testVariants() {
		tr := newTestTree(t, cfg)
		if err := tr.Bulkload(nil, 1.0); err != nil {
			t.Fatal(err)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		if tr.Len() != 0 || tr.Height() != 1 {
			t.Fatalf("%s: empty tree Len=%d Height=%d", tr.Name(), tr.Len(), tr.Height())
		}
		if _, ok := tr.Search(1); ok {
			t.Fatalf("%s: found key in empty tree", tr.Name())
		}
	}
}

func TestInsertFromEmpty(t *testing.T) {
	for _, cfg := range testVariants() {
		t.Run(cfg.name(), func(t *testing.T) {
			tr := newTestTree(t, cfg)
			r := rand.New(rand.NewSource(42))
			pairs := sortedPairs(3000)
			for _, k := range shuffledKeys(r, pairs) {
				if !tr.Insert(k, TID(k)) {
					t.Fatalf("Insert(%d) reported duplicate", k)
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if tr.Len() != len(pairs) {
				t.Fatalf("Len = %d, want %d", tr.Len(), len(pairs))
			}
			for _, p := range pairs {
				tid, ok := tr.Search(p.Key)
				if !ok || tid != TID(p.Key) {
					t.Fatalf("Search(%d) = %d,%v", p.Key, tid, ok)
				}
			}
		})
	}
}

func TestInsertDuplicateUpdates(t *testing.T) {
	tr := newTestTree(t, Config{Width: 8, Prefetch: true})
	if !tr.Insert(10, 1) {
		t.Fatal("first insert should report new")
	}
	if tr.Insert(10, 2) {
		t.Fatal("second insert should report existing")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	tid, _ := tr.Search(10)
	if tid != 2 {
		t.Fatalf("tid = %d, want 2 (updated)", tid)
	}
}

func TestInsertIntoBulkloaded(t *testing.T) {
	for _, cfg := range testVariants() {
		t.Run(cfg.name(), func(t *testing.T) {
			tr := newTestTree(t, cfg)
			pairs := sortedPairs(2000)
			if err := tr.Bulkload(pairs, 1.0); err != nil {
				t.Fatal(err)
			}
			// Insert keys that land between existing ones, forcing
			// splits of 100%-full nodes.
			r := rand.New(rand.NewSource(7))
			var extra []Key
			for i := 0; i < 1000; i++ {
				extra = append(extra, Key(8*(r.Intn(2000)+1)+1+r.Intn(7)))
			}
			for _, k := range extra {
				tr.Insert(k, TID(k))
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			for _, p := range pairs {
				if _, ok := tr.Search(p.Key); !ok {
					t.Fatalf("bulkloaded key %d lost", p.Key)
				}
			}
			for _, k := range extra {
				if _, ok := tr.Search(k); !ok {
					t.Fatalf("inserted key %d lost", k)
				}
			}
		})
	}
}

func TestDeleteBasic(t *testing.T) {
	for _, cfg := range testVariants() {
		t.Run(cfg.name(), func(t *testing.T) {
			tr := newTestTree(t, cfg)
			pairs := sortedPairs(2000)
			if err := tr.Bulkload(pairs, 0.8); err != nil {
				t.Fatal(err)
			}
			r := rand.New(rand.NewSource(99))
			keys := shuffledKeys(r, pairs)
			for i, k := range keys {
				if !tr.Delete(k) {
					t.Fatalf("Delete(%d) not found", k)
				}
				if tr.Delete(k) {
					t.Fatalf("Delete(%d) twice succeeded", k)
				}
				if i%257 == 0 {
					if err := tr.CheckInvariants(); err != nil {
						t.Fatalf("after %d deletes: %v", i+1, err)
					}
				}
			}
			if tr.Len() != 0 {
				t.Fatalf("Len = %d after deleting everything", tr.Len())
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if _, ok := tr.Search(pairs[0].Key); ok {
				t.Fatal("found key in emptied tree")
			}
		})
	}
}

func TestDeleteAbsent(t *testing.T) {
	tr := newTestTree(t, Config{Width: 1})
	if tr.Delete(42) {
		t.Fatal("deleting from empty tree succeeded")
	}
	tr.Insert(10, 1)
	if tr.Delete(11) {
		t.Fatal("deleting absent key succeeded")
	}
	if tr.Len() != 1 {
		t.Fatal("absent delete changed Len")
	}
}

// TestMixedOperationsAgainstModel drives every variant with a random
// mix of inserts, deletes and searches and compares against a map.
func TestMixedOperationsAgainstModel(t *testing.T) {
	for _, cfg := range testVariants() {
		t.Run(cfg.name(), func(t *testing.T) {
			tr := newTestTree(t, cfg)
			model := map[Key]TID{}
			r := rand.New(rand.NewSource(1234))
			const keyRange = 5000
			for i := 0; i < 20000; i++ {
				k := Key(r.Intn(keyRange) + 1)
				switch r.Intn(4) {
				case 0, 1: // insert
					tid := TID(r.Uint32())
					_, existed := model[k]
					if tr.Insert(k, tid) == existed {
						t.Fatalf("op %d: Insert(%d) new/existing mismatch", i, k)
					}
					model[k] = tid
				case 2: // delete
					_, existed := model[k]
					if tr.Delete(k) != existed {
						t.Fatalf("op %d: Delete(%d) mismatch", i, k)
					}
					delete(model, k)
				case 3: // search
					tid, ok := tr.Search(k)
					wtid, wok := model[k]
					if ok != wok || (ok && tid != wtid) {
						t.Fatalf("op %d: Search(%d) = %d,%v want %d,%v", i, k, tid, ok, wtid, wok)
					}
				}
				if i%2500 == 0 {
					if err := tr.CheckInvariants(); err != nil {
						t.Fatalf("op %d: %v", i, err)
					}
					if tr.Len() != len(model) {
						t.Fatalf("op %d: Len=%d model=%d", i, tr.Len(), len(model))
					}
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestInsertDeleteChurn empties and refills the tree repeatedly,
// exercising root collapse and regrowth.
func TestInsertDeleteChurn(t *testing.T) {
	for _, cfg := range []Config{
		{Width: 1},
		{Width: 8, Prefetch: true, JumpArray: JumpExternal},
		{Width: 8, Prefetch: true, JumpArray: JumpInternal},
	} {
		tr := newTestTree(t, cfg)
		r := rand.New(rand.NewSource(5))
		for round := 0; round < 5; round++ {
			n := 200 + r.Intn(800)
			keys := make([]Key, n)
			for i := range keys {
				keys[i] = Key(i*8 + 8)
			}
			r.Shuffle(n, func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
			for _, k := range keys {
				tr.Insert(k, TID(k))
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("%s round %d after inserts: %v", tr.Name(), round, err)
			}
			r.Shuffle(n, func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
			for _, k := range keys {
				if !tr.Delete(k) {
					t.Fatalf("%s round %d: Delete(%d) failed", tr.Name(), round, k)
				}
			}
			if tr.Len() != 0 {
				t.Fatalf("%s round %d: Len=%d", tr.Name(), round, tr.Len())
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("%s round %d after deletes: %v", tr.Name(), round, err)
			}
		}
	}
}

// TestQuickInsertSearchDelete is a property test: for arbitrary key
// multisets, inserting then deleting restores emptiness and searches
// agree with membership.
func TestQuickInsertSearchDelete(t *testing.T) {
	cfgs := []Config{
		{Width: 1},
		{Width: 8, Prefetch: true, JumpArray: JumpExternal},
		{Width: 4, Prefetch: true, JumpArray: JumpInternal},
	}
	for _, cfg := range cfgs {
		cfg := cfg
		f := func(raw []uint16) bool {
			tr := newTestTree(t, cfg)
			model := map[Key]TID{}
			for _, v := range raw {
				k := Key(v%2048) + 1
				tr.Insert(k, TID(v))
				model[k] = TID(v)
			}
			if tr.Len() != len(model) {
				return false
			}
			for k, want := range model {
				got, ok := tr.Search(k)
				if !ok || got != want {
					return false
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				return false
			}
			for k := range model {
				if !tr.Delete(k) {
					return false
				}
			}
			return tr.Len() == 0 && tr.CheckInvariants() == nil
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
			t.Errorf("%s: %v", cfg.name(), err)
		}
	}
}

// TestQuickBulkloadEqualsInserts: bulkloading a random key set yields
// the same contents as inserting it.
func TestQuickBulkloadEqualsInserts(t *testing.T) {
	f := func(raw []uint16, fillRaw uint8) bool {
		fill := 0.5 + float64(fillRaw%51)/100.0 // 0.5 .. 1.0
		set := map[Key]bool{}
		for _, v := range raw {
			set[Key(v)+1] = true
		}
		keys := make([]Key, 0, len(set))
		for k := range set {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		pairs := make([]Pair, len(keys))
		for i, k := range keys {
			pairs[i] = Pair{Key: k, TID: TID(k)}
		}

		bl := newTestTree(t, Config{Width: 8, Prefetch: true, JumpArray: JumpExternal})
		if err := bl.Bulkload(pairs, fill); err != nil {
			return false
		}
		ins := newTestTree(t, Config{Width: 8, Prefetch: true, JumpArray: JumpExternal})
		for _, p := range pairs {
			ins.Insert(p.Key, p.TID)
		}
		if bl.Len() != ins.Len() {
			return false
		}
		for _, p := range pairs {
			a, aok := bl.Search(p.Key)
			b, bok := ins.Search(p.Key)
			if !aok || !bok || a != b {
				return false
			}
		}
		return bl.CheckInvariants() == nil && ins.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateStatsCounters(t *testing.T) {
	tr := newTestTree(t, Config{Width: 1})
	pairs := sortedPairs(1000)
	if err := tr.Bulkload(pairs, 1.0); err != nil {
		t.Fatal(err)
	}
	tr.ResetUpdateStats()
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		tr.Insert(Key(8*(r.Intn(1000)+1)+1+r.Intn(7)), 1)
	}
	st := tr.UpdateStats()
	if st.Inserts == 0 || st.LeafSplits == 0 {
		t.Fatalf("expected splits on a 100%%-full tree: %+v", st)
	}
	if st.InsertsWithSplit > st.Inserts {
		t.Fatalf("more splitting inserts than inserts: %+v", st)
	}
	if st.InsertsWithNLSplit > st.InsertsWithSplit {
		t.Fatalf("non-leaf split inserts exceed splitting inserts: %+v", st)
	}
}

func TestHeightGrowsAndShrinks(t *testing.T) {
	tr := newTestTree(t, Config{Width: 1})
	if tr.Height() != 1 {
		t.Fatal("empty tree height should be 1")
	}
	for i := 1; i <= 100; i++ {
		tr.Insert(Key(i), TID(i))
	}
	h := tr.Height()
	if h < 3 {
		t.Fatalf("height = %d after 100 inserts into 7-key leaves", h)
	}
	for i := 1; i <= 100; i++ {
		tr.Delete(Key(i))
	}
	if tr.Height() != 1 {
		t.Fatalf("height = %d after deleting everything, want 1", tr.Height())
	}
}

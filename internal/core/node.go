package core

// node is a B+-Tree node. The Go struct holds the data; addr is the
// node's simulated address, which determines its cache behaviour. A
// node is exactly one of: a leaf (leaf == true), a bottom non-leaf
// (parent of leaves), or an upper non-leaf.
type node struct {
	addr   uint64
	leaf   bool
	bottom bool // non-leaf whose children are leaves
	nkeys  int

	keys []Key

	// Non-leaf only. children[i] covers keys k with
	// keys[i-1] <= k < keys[i] (children has nkeys+1 valid entries).
	children []*node

	// Leaf only. tids[i] belongs to keys[i].
	tids []TID

	// next links leaves in key order; for bottom non-leaf nodes it is
	// the internal jump-pointer array link (JumpInternal only).
	next *node

	// hint is the leaf's back-pointer into the external jump-pointer
	// array (JumpExternal only). The chunk is always correct; the slot
	// index is a hint that may be stale.
	hint hintPos

	// Gapped-leaf state (Config.GappedLeaves, leaves only; see
	// gapped.go). occ is the slot occupancy bitmap — nil means the
	// node is packed (entries in slots [0, nkeys)). For a gapped
	// leaf, nkeys counts occupied slots, nslots is one past the last
	// occupied slot, and gap slots below nslots duplicate the key of
	// their nearest occupied right neighbor so the slot array stays
	// sorted.
	occ    []uint64
	nslots int
}

// hintPos locates (approximately) a leaf's jump pointer.
type hintPos struct {
	chunk *chunk
	slot  int
}

// lay returns the node's layout.
func (t *Tree) lay(n *node) layout {
	switch {
	case n.leaf:
		return t.leafLay
	case n.bottom:
		return t.bottomLay
	default:
		return t.nlLay
	}
}

// newLeaf allocates a leaf node with a fresh simulated address (and,
// in gapped mode, an occupancy bitmap).
func (t *Tree) newLeaf() *node {
	n := &node{
		addr: t.space.Alloc(t.leafLay.size),
		leaf: true,
		keys: make([]Key, t.leafLay.maxKeys),
		tids: make([]TID, t.leafLay.maxKeys),
	}
	if t.cfg.GappedLeaves {
		n.occ = make([]uint64, (t.leafLay.maxKeys+63)/64)
	}
	return n
}

// newNonLeaf allocates a non-leaf node. bottom marks parents of
// leaves, which have a reduced layout when an internal jump-pointer
// array is in use.
func (t *Tree) newNonLeaf(bottom bool) *node {
	l := t.nlLay
	if bottom {
		l = t.bottomLay
	}
	return &node{
		addr:     t.space.Alloc(l.size),
		bottom:   bottom,
		keys:     make([]Key, l.maxKeys),
		children: make([]*node, l.maxKeys+1),
	}
}

// full reports whether the node has no room for another key.
func (t *Tree) full(n *node) bool { return n.nkeys == t.lay(n).maxKeys }

package core

// Group search: the serving-layer generalization of the paper's
// whole-node prefetch. A single search prefetches all lines of the
// node it is about to visit, overlapping the (Width-1) trailing line
// transfers; a *group* of M independent searches can go further and
// overlap the full miss latencies of M nodes by advancing all M
// searches level-by-level in lockstep. At each level the group first
// issues the prefetches for every member's current node back-to-back
// (the fills pipeline in the memory system, one completing every
// Tnext cycles), and only then performs the binary searches, each of
// which finds its node already resident or in flight. M sequential
// searches expose roughly M full miss latencies per level; the group
// exposes roughly one miss latency plus (M*Width-1) pipelined
// transfers.
//
// The simulated `mget` experiment (internal/exp) measures exactly this
// effect; internal/serve uses SearchBatch on the native model to serve
// batched MGET lookups off one tree snapshot.

// SearchBatch looks up keys[i] for every i, advancing all searches
// through the tree level-by-level as one software-pipelined group. It
// stores the results in tids[i] and found[i], which must both be at
// least len(keys) long (it panics otherwise, like a slice copy with
// mismatched bounds would).
//
// A batch charges the same instruction work as len(keys) sequential
// Search calls — only the exposure of the memory latency differs.
//
// Like Search, SearchBatch is read-only: on a frozen tree with a
// concurrency-safe memory model (*memsys.Native) and no tracer, any
// number of goroutines may call it concurrently.
func (t *Tree) SearchBatch(keys []Key, tids []TID, found []bool) {
	if len(tids) < len(keys) || len(found) < len(keys) {
		panic("core: SearchBatch result slices shorter than keys")
	}
	if len(keys) == 0 {
		return
	}
	if t.trc != nil {
		t.trc.BeginOp(OpSearch)
		defer t.trc.EndOp(OpSearch)
	}
	// The group cursor: nodes[i] is the node search i visits next.
	// All cursors sit at the same level throughout, since every leaf
	// of a B+-Tree is at the same depth.
	nodes := make([]*node, len(keys))
	for i := range nodes {
		nodes[i] = t.root
		t.mem.Compute(t.cost.Op)
	}
	for level := 0; ; level++ {
		// Prefetch phase: issue every member's node prefetch before
		// touching any of them, so the fills overlap. Duplicate nodes
		// (every member starts at the root) cost only the prefetch
		// issue cycles: the memory system coalesces in-flight lines.
		if t.cfg.Prefetch {
			for _, n := range nodes {
				t.traceNode(level, kindOf(n))
				t.pfNode(n)
			}
		}
		if nodes[0].leaf {
			break
		}
		// Search phase: binary-search each node and step its cursor
		// down to the chosen child.
		for i, n := range nodes {
			t.traceNode(level, kindOf(n))
			t.mem.Access(n.addr) // keynum
			t.mem.Compute(t.cost.Visit)
			idx, _ := t.searchKeys(n, keys[i])
			t.mem.Access(t.lay(n).ptrAddr(n.addr, idx))
			nodes[i] = n.children[idx]
		}
	}
	// Leaf phase.
	for i, n := range nodes {
		t.traceNode(t.height-1, KindLeaf)
		t.mem.Access(n.addr)
		t.mem.Compute(t.cost.Visit)
		ub, ok := t.searchKeys(n, keys[i])
		found[i] = ok
		if !ok {
			tids[i] = 0
			continue
		}
		t.mem.Access(t.leafLay.ptrAddr(n.addr, ub-1))
		tids[i] = n.tids[ub-1]
	}
}

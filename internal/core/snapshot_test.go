package core

import (
	"testing"

	"pbtree/internal/memsys"
)

// TestAppendPairsAndCloneFrozen checks that the snapshot hooks produce
// a faithful, independent frozen copy.
func TestAppendPairsAndCloneFrozen(t *testing.T) {
	tr := MustNew(Config{Width: 8, Prefetch: true, Mem: memsys.DefaultNative()})
	pairs := make([]Pair, 5000)
	for i := range pairs {
		pairs[i] = Pair{Key: Key(8 * (i + 1)), TID: TID(i + 1)}
	}
	if err := tr.Bulkload(pairs, 0.7); err != nil {
		t.Fatal(err)
	}
	tr.Insert(13, 99)
	tr.Delete(8)

	got := tr.AppendPairs(nil)
	if len(got) != tr.Len() {
		t.Fatalf("AppendPairs returned %d pairs, tree has %d", len(got), tr.Len())
	}
	for i := 1; i < len(got); i++ {
		if got[i].Key <= got[i-1].Key {
			t.Fatalf("AppendPairs out of order at %d: %d after %d", i, got[i].Key, got[i-1].Key)
		}
	}

	clone, err := tr.CloneFrozen(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if clone.Len() != tr.Len() {
		t.Fatalf("clone has %d pairs, original %d", clone.Len(), tr.Len())
	}
	if err := clone.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The clone is independent: mutating the original must not leak.
	tr.Insert(15, 1)
	if _, ok := clone.Search(15); ok {
		t.Fatal("mutation of the original leaked into the frozen clone")
	}
	if tid, ok := clone.Search(13); !ok || tid != 99 {
		t.Fatalf("clone lost inserted pair: got (%d,%v)", tid, ok)
	}
	if _, ok := clone.Search(8); ok {
		t.Fatal("clone resurrected a deleted key")
	}
}

package core

import (
	"fmt"
	"math"
)

// Bulkload replaces the tree's contents with the given pairs, which
// must be sorted by key and contain no duplicates. fill is the
// bulkload factor in (0, 1]: every node (and external jump-pointer
// array chunk) is filled to round(fill * capacity) entries, except the
// rightmost node of each level and the root.
func (t *Tree) Bulkload(pairs []Pair, fill float64) error {
	if fill <= 0 || fill > 1 {
		return fmt.Errorf("core: bulkload factor %v outside (0, 1]", fill)
	}
	for i := 1; i < len(pairs); i++ {
		if pairs[i].Key <= pairs[i-1].Key {
			return fmt.Errorf("core: bulkload input not sorted/unique at %d", i)
		}
	}

	// Reset all structure. Simulated addresses are not recycled.
	t.jpHead = nil
	t.firstBottom = nil
	t.stats = UpdateStats{}
	t.count = len(pairs)

	if len(pairs) == 0 {
		t.root = t.newLeaf()
		t.height = 1
		if t.cfg.JumpArray == JumpExternal {
			t.jpBulkload([]*node{t.root}, fill)
		}
		return nil
	}

	leaves := t.buildLeaves(pairs, fill)
	if t.cfg.JumpArray == JumpExternal {
		t.jpBulkload(leaves, fill)
	}

	// Build non-leaf levels bottom-up until a single node remains.
	level := leaves
	mins := make([]Key, len(leaves))
	for i, n := range leaves {
		mins[i] = n.keys[0]
	}
	t.height = 1
	bottom := true
	for len(level) > 1 {
		level, mins = t.buildNonLeafLevel(level, mins, fill, bottom)
		if bottom && t.cfg.JumpArray == JumpInternal {
			t.firstBottom = level[0]
			for i := 0; i+1 < len(level); i++ {
				level[i].next = level[i+1]
				t.mem.Access(t.bottomLay.nextAddr(level[i].addr))
			}
		}
		bottom = false
		t.height++
	}
	t.root = level[0]
	return nil
}

// fillCount converts a bulkload factor into an entry count for a node
// of the given capacity, rounding to nearest as in the paper.
func fillCount(capacity int, fill float64) int {
	n := int(math.Round(fill * float64(capacity)))
	if n < 1 {
		n = 1
	}
	if n > capacity {
		n = capacity
	}
	return n
}

// buildLeaves lays the pairs into a linked list of leaves, charging
// the writes to the simulated hierarchy.
func (t *Tree) buildLeaves(pairs []Pair, fill float64) []*node {
	per := fillCount(t.leafLay.maxKeys, fill)
	nLeaves := (len(pairs) + per - 1) / per
	leaves := make([]*node, 0, nLeaves)
	for start := 0; start < len(pairs); start += per {
		end := start + per
		if end > len(pairs) {
			end = len(pairs)
		}
		n := t.newLeaf()
		sk, st := t.scratchLeaf(end - start)
		for i, p := range pairs[start:end] {
			sk[i] = p.Key
			st[i] = p.TID
		}
		t.layOutLeaf(n, sk, st)
		t.chargeLeafWrite(n, 0, n.nkeys)
		if len(leaves) > 0 {
			prev := leaves[len(leaves)-1]
			prev.next = n
			t.mem.Access(t.leafLay.nextAddr(prev.addr))
		}
		leaves = append(leaves, n)
	}
	return leaves
}

// buildNonLeafLevel groups children into non-leaf nodes at the given
// fill and returns the new level with its per-node minimum keys.
func (t *Tree) buildNonLeafLevel(children []*node, mins []Key, fill float64, bottom bool) ([]*node, []Key) {
	lay := t.nlLay
	if bottom {
		lay = t.bottomLay
	}
	per := fillCount(lay.maxKeys, fill) + 1 // children per node
	counts := groupCounts(len(children), per, lay.maxKeys+1)
	level := make([]*node, 0, len(counts))
	newMins := make([]Key, 0, len(counts))
	start := 0
	for _, cnt := range counts {
		end := start + cnt
		n := t.newNonLeaf(bottom)
		for i := start; i < end; i++ {
			n.children[i-start] = children[i]
			if i > start {
				n.keys[i-start-1] = mins[i]
			}
		}
		n.nkeys = end - start - 1
		t.chargeNonLeafWrite(n, 0, n.nkeys)
		level = append(level, n)
		newMins = append(newMins, mins[start])
		start = end
	}
	return level, newMins
}

// groupCounts splits n children into groups of per (capped by cap),
// adjusting the tail so no group ends up with a single child, which
// would make a zero-key non-leaf node.
func groupCounts(n, per, cap int) []int {
	counts := make([]int, 0, (n+per-1)/per)
	for n > 0 {
		c := per
		if c > n {
			c = n
		}
		counts = append(counts, c)
		n -= c
	}
	last := len(counts) - 1
	if last >= 1 && counts[last] == 1 {
		if counts[last-1] < cap {
			// Fold the orphan into its (non-full) neighbour.
			counts[last-1]++
			counts = counts[:last]
		} else {
			// Neighbour is full: rebalance the final two groups.
			total := counts[last-1] + 1
			counts[last-1] = total - total/2
			counts[last] = total / 2
		}
	}
	return counts
}

// chargeLeafWrite charges the simulated accesses and copy cycles for
// writing entries [from, to) of a leaf (keys, tids and keynum).
func (t *Tree) chargeLeafWrite(n *node, from, to int) {
	if to > from {
		t.mem.AccessRange(t.leafLay.keyAddr(n.addr, from), (to-from)*fieldSize)
		t.mem.AccessRange(t.leafLay.ptrAddr(n.addr, from), (to-from)*fieldSize)
		t.mem.Compute(t.cost.Move * uint64(2*(to-from)))
	}
	t.mem.Access(n.addr) // keynum
}

// chargeNonLeafWrite charges writing keys [from, to) and children
// [from, to+1) of a non-leaf node.
func (t *Tree) chargeNonLeafWrite(n *node, from, to int) {
	lay := t.lay(n)
	if to > from {
		t.mem.AccessRange(lay.keyAddr(n.addr, from), (to-from)*fieldSize)
		t.mem.Compute(t.cost.Move * uint64(2*(to-from)+1))
	}
	t.mem.AccessRange(lay.ptrAddr(n.addr, from), (to-from+1)*fieldSize)
	t.mem.Access(n.addr)
}

// Package core implements Prefetching B+-Trees (pB+-Trees) from
// "Improving Index Performance through Prefetching" (Chen, Gibbons,
// Mowry; SIGMOD 2001), together with the plain B+-Tree they are
// measured against.
//
// A Tree is a main-memory B+-Tree whose nodes are Width cache lines
// wide. With Prefetch enabled, every line of a node is prefetched
// before the node is searched, so a wide node costs roughly one miss
// latency plus (Width-1) pipelined transfers instead of Width full
// misses. Range scans can additionally be accelerated with a
// jump-pointer array (external or internal), which lets the scan
// prefetch the leaf that is PrefetchDist nodes ahead, defeating the
// pointer-chasing problem.
//
// All memory behaviour is simulated: the tree charges its key
// comparisons, copies and memory references to a memsys.Hierarchy, and
// the experiment harness reads execution time off the simulated cycle
// clock. The data itself lives in ordinary Go values, so the trees are
// also fully functional indexes.
package core

import (
	"fmt"

	"pbtree/internal/memsys"
)

// Key is an index key. Keys, pointers and tupleIDs are all four bytes,
// matching the paper's experimental setup (so a 64-byte line holds
// m = 8 child pointers).
type Key uint32

// TID is a tuple identifier stored in leaf nodes.
type TID uint32

// fieldSize is the size in bytes of every node field (keynum, key,
// child pointer, tupleID, next pointer, hint).
const fieldSize = 4

// Pair is a <key, tupleID> pair, the unit of bulkloading and scanning.
type Pair struct {
	Key Key // index key
	TID TID // tuple identifier the key maps to
}

// JumpArrayKind selects the range-scan prefetching structure attached
// to the tree.
type JumpArrayKind int

const (
	// JumpNone builds no jump-pointer array: scans can prefetch within
	// the current leaf but not across leaves (the p^w B+-Tree).
	JumpNone JumpArrayKind = iota
	// JumpExternal maintains an external chunked jump-pointer array
	// with hint back-pointers in the leaves (the p^w_e B+-Tree, 3.2).
	JumpExternal
	// JumpInternal links the bottom non-leaf nodes and reuses their
	// child pointers as the jump-pointer array (the p^w_i B+-Tree, 3.5).
	JumpInternal
)

// String names the jump-array kind the way variant names render it.
func (k JumpArrayKind) String() string {
	switch k {
	case JumpNone:
		return "none"
	case JumpExternal:
		return "external"
	case JumpInternal:
		return "internal"
	default:
		return fmt.Sprintf("JumpArrayKind(%d)", int(k))
	}
}

// CostModel gives the instruction cost, in cycles, of the index
// operations that are not memory references. The defaults are
// calibrated so that the busy/stall breakdown of the baseline B+-Tree
// matches Figure 1 of the paper to first order (see EXPERIMENTS.md).
type CostModel struct {
	Compare uint64 // one key comparison in a binary search
	Copy    uint64 // per-tuple work in a scan loop (copy + bookkeeping)
	Move    uint64 // one 4-byte field in a bulk move (splits, shifts)
	Visit   uint64 // fixed overhead per node visited
	Op      uint64 // fixed overhead per index operation
}

// DefaultCostModel returns the calibrated cost model. Copy is the
// per-tuple cost of the scan inner loop (a dependent load, a store and
// loop control); Move is the throughput cost of one word inside a bulk
// memmove, which modern cores stream at about a word per cycle.
func DefaultCostModel() CostModel {
	return CostModel{Compare: 4, Copy: 4, Move: 1, Visit: 10, Op: 20}
}

// Config describes a tree variant.
type Config struct {
	// Width is the node width w in cache lines. Width 1 with Prefetch
	// false is the plain B+-Tree baseline.
	Width int

	// Prefetch enables prefetching all lines of a node before
	// searching it, and within-leaf prefetching during scans.
	Prefetch bool

	// HardwarePrefetch makes every node prefetch issue real CPU
	// prefetch instructions (PREFETCHT0 / PRFM PLDL1KEEP) against the
	// node's actual backing arrays, instead of charging simulated
	// addresses. It requires Prefetch and a *memsys.Native model: the
	// simulated Hierarchy models its own prefetches and must never
	// see real addresses. On builds without a prefetch stub (see
	// memsys.HaveHardwarePrefetch) the instructions compile to
	// no-ops; the configuration is still accepted.
	HardwarePrefetch bool

	// BranchlessSearch replaces the probe-per-key binary intra-node
	// search with a data-parallel linear pass: an unrolled 8-wide
	// compare-and-accumulate over the node's key array (BS-tree
	// style). Every comparison is branch-free, so the search runs at
	// full issue width with no mispredictions, and it touches the key
	// array strictly left-to-right — the access pattern hardware
	// prefetchers and HardwarePrefetch both like.
	BranchlessSearch bool

	// GappedLeaves stores leaf entries in a gapped slot array with an
	// occupancy bitmap: splits interleave empty slots between
	// entries, and inserts absorb into the nearest gap instead of
	// shifting half the leaf. Gap slots duplicate the key of their
	// nearest occupied right neighbor, keeping the slot array sorted
	// so both the binary and the branchless search work unchanged.
	// Non-leaf nodes stay packed.
	GappedLeaves bool

	// JumpArray selects the across-leaf scan prefetching structure.
	// It requires Prefetch.
	JumpArray JumpArrayKind

	// PrefetchDist is k, the number of leaf nodes to prefetch ahead
	// during a range scan. Zero selects ceil(B/w)+1, equation (3) of
	// the paper plus one node of slack.
	PrefetchDist int

	// ChunkLines is c, the size in cache lines of an external
	// jump-pointer array chunk. Zero selects 8, the paper's choice.
	ChunkLines int

	// Mem is the memory model the tree charges its work to: a
	// *memsys.Hierarchy for cycle-accurate simulation, or a
	// *memsys.Native to run at real wall-clock speed. Nil selects a
	// fresh memsys.Default() simulated hierarchy.
	Mem memsys.Model

	// Space is the simulated address space nodes are allocated from.
	// Nil allocates a private space; pass a shared one to co-locate
	// the index with other structures (e.g. a heap file) in the same
	// cache.
	Space *memsys.AddressSpace

	// Cost is the instruction cost model. The zero value selects
	// DefaultCostModel.
	Cost CostModel

	// Trace receives operation-context notifications (operation kind,
	// node level and kind) for observability; pair it with a
	// memsys.Probe on the hierarchy to attribute misses and stalls to
	// tree levels. Nil disables tracing; tracing charges nothing to the
	// memory model either way.
	Trace Tracer

	// Ablation switches off individual design choices for the
	// ablation benchmarks; the zero value is the paper's design.
	Ablation Ablation
}

// Ablation disables individual pB+-Tree design choices so their
// contribution can be measured. Production use leaves it zero.
type Ablation struct {
	// PackChunks packs jump pointers to the front of each chunk
	// instead of interleaving empty slots evenly (section 3.2 argues
	// interleaving keeps insertions cheap).
	PackChunks bool

	// NoBufferPrefetch disables prefetching the return buffer during
	// range scans (footnote 5 includes the buffer in "range
	// prefetching a leaf node").
	NoBufferPrefetch bool

	// ExactHints eagerly rewrites the hint of every jump pointer
	// moved by an insertion, charging the extra leaf writes that the
	// hints-are-hints design avoids.
	ExactHints bool
}

// withDefaults resolves zero values and validates the configuration.
func (c Config) withDefaults() (Config, error) {
	if c.Width == 0 {
		c.Width = 1
	}
	if c.Width < 0 {
		return c, fmt.Errorf("core: width %d must be positive", c.Width)
	}
	if memsys.IsNil(c.Mem) {
		c.Mem = memsys.Default()
	}
	if c.Cost == (CostModel{}) {
		c.Cost = DefaultCostModel()
	}
	if c.JumpArray != JumpNone && !c.Prefetch {
		return c, fmt.Errorf("core: jump-pointer arrays require Prefetch")
	}
	if c.HardwarePrefetch {
		if !c.Prefetch {
			return c, fmt.Errorf("core: HardwarePrefetch requires Prefetch")
		}
		if _, ok := c.Mem.(*memsys.Native); !ok {
			return c, fmt.Errorf("core: HardwarePrefetch requires a *memsys.Native model (the simulated hierarchy must never see real addresses)")
		}
	}
	mc := c.Mem.Config()
	if c.PrefetchDist == 0 {
		b := int(mc.Bandwidth())
		c.PrefetchDist = (b+c.Width-1)/c.Width + 1
	}
	if c.PrefetchDist < 1 {
		return c, fmt.Errorf("core: prefetch distance %d must be positive", c.PrefetchDist)
	}
	if c.ChunkLines == 0 {
		c.ChunkLines = 8
	}
	if c.ChunkLines < 1 {
		return c, fmt.Errorf("core: chunk size %d must be positive", c.ChunkLines)
	}
	if mc.LineSize < 4*fieldSize {
		return c, fmt.Errorf("core: line size %d too small for a node", mc.LineSize)
	}
	return c, nil
}

// name returns the paper's name for this tree variant, e.g. "B+",
// "p8B+", "p8eB+".
func (c Config) name() string {
	if !c.Prefetch && c.Width == 1 {
		return "B+"
	}
	suffix := ""
	switch c.JumpArray {
	case JumpExternal:
		suffix = "e"
	case JumpInternal:
		suffix = "i"
	}
	return fmt.Sprintf("p%d%sB+", c.Width, suffix)
}

package core

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSerializeRoundTrip(t *testing.T) {
	for _, cfg := range []Config{
		{Width: 1},
		{Width: 8, Prefetch: true, JumpArray: JumpExternal, ChunkLines: 4},
		{Width: 4, Prefetch: true, JumpArray: JumpInternal, PrefetchDist: 5},
	} {
		src := newTestTree(t, cfg)
		pairs := sortedPairs(12345)
		if err := src.Bulkload(pairs, 0.85); err != nil {
			t.Fatal(err)
		}
		// Mutate after bulkload so the stream reflects live state.
		src.Insert(3, 99)
		src.Delete(pairs[100].Key)

		var buf bytes.Buffer
		n, err := src.WriteTo(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(buf.Len()) {
			t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
		}

		dst, err := Load(&buf, nil, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		if err := dst.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if dst.Len() != src.Len() {
			t.Fatalf("Len %d, want %d", dst.Len(), src.Len())
		}
		c := dst.Config()
		if c.Width != src.cfg.Width || c.JumpArray != src.cfg.JumpArray ||
			c.Prefetch != src.cfg.Prefetch || c.ChunkLines != src.cfg.ChunkLines ||
			c.PrefetchDist != src.cfg.PrefetchDist {
			t.Fatalf("config not preserved: %+v", c)
		}
		if tid, ok := dst.Search(3); !ok || tid != 99 {
			t.Fatal("post-bulkload insert lost")
		}
		if _, ok := dst.Search(pairs[100].Key); ok {
			t.Fatal("deleted key resurrected")
		}
		for _, p := range pairs[:500] {
			if p.Key == pairs[100].Key {
				continue
			}
			if _, ok := dst.Search(p.Key); !ok {
				t.Fatalf("key %d lost in round trip", p.Key)
			}
		}
	}
}

func TestSerializeEmptyTree(t *testing.T) {
	src := newTestTree(t, Config{Width: 8, Prefetch: true})
	var buf bytes.Buffer
	if _, err := src.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	dst, err := Load(&buf, nil, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 0 {
		t.Fatalf("Len = %d", dst.Len())
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(bytes.NewReader(nil), nil, 1.0); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := Load(bytes.NewReader([]byte("XXXX0000000000000000000000")), nil, 1.0); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated pair section.
	src := newTestTree(t, Config{Width: 1})
	src.Insert(1, 1)
	src.Insert(2, 2)
	var buf bytes.Buffer
	if _, err := src.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, err := Load(bytes.NewReader(trunc), nil, 1.0); err == nil {
		t.Error("truncated stream accepted")
	}
	// Corrupt jump-array kind.
	full := buf.Bytes()
	full[6] = 9 // JumpArray byte in the header
	if _, err := Load(bytes.NewReader(full), nil, 1.0); err == nil {
		t.Error("corrupt jump-array kind accepted")
	}
}

// TestQuickSerializeRoundTrip: arbitrary contents survive the round
// trip.
func TestQuickSerializeRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		src := newTestTree(t, Config{Width: 8, Prefetch: true, JumpArray: JumpExternal})
		model := map[Key]TID{}
		for _, v := range raw {
			k := Key(v) + 1
			src.Insert(k, TID(v))
			model[k] = TID(v)
		}
		var buf bytes.Buffer
		if _, err := src.WriteTo(&buf); err != nil {
			return false
		}
		dst, err := Load(&buf, nil, 0.9)
		if err != nil {
			return false
		}
		if dst.Len() != len(model) {
			return false
		}
		for k, want := range model {
			got, ok := dst.Search(k)
			if !ok || got != want {
				return false
			}
		}
		return dst.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

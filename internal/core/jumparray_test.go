package core

import (
	"math/rand"
	"testing"
)

func extTree(t *testing.T, chunkLines int) *Tree {
	t.Helper()
	return newTestTree(t, Config{
		Width: 8, Prefetch: true, JumpArray: JumpExternal, ChunkLines: chunkLines,
	})
}

func TestJPBulkloadEvenDistribution(t *testing.T) {
	tr := extTree(t, 8)
	pairs := sortedPairs(62 * 40) // 40 full leaves
	if err := tr.Bulkload(pairs, 0.5); err != nil {
		t.Fatal(err)
	}
	// At fill 0.5 every chunk is half full and the occupied slots are
	// spread out: no two adjacent occupied slots.
	for ck := tr.jpHead; ck != nil; ck = ck.next {
		prevOccupied := false
		for _, s := range ck.slots {
			if s != nil && prevOccupied {
				t.Fatal("occupied slots not interleaved with empties at fill 0.5")
			}
			prevOccupied = s != nil
		}
	}
}

func TestJPHintsExactAfterBulkload(t *testing.T) {
	tr := extTree(t, 8)
	if err := tr.Bulkload(sortedPairs(62*20), 1.0); err != nil {
		t.Fatal(err)
	}
	for n := tr.leftmostLeaf(); n != nil; n = n.next {
		if n.hint.chunk.slots[n.hint.slot] != n {
			t.Fatal("hint not exact immediately after bulkload")
		}
	}
}

// TestJPHintsAreHints verifies stale hints are tolerated and repaired:
// after many splits shift slots around, every leaf is still locatable,
// and jpLocate fixes the slot index it finds.
func TestJPHintsAreHints(t *testing.T) {
	tr := extTree(t, 8)
	if err := tr.Bulkload(sortedPairs(62*20), 1.0); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(21))
	for i := 0; i < 3000; i++ {
		tr.Insert(Key(r.Intn(62*20*8)+1), 1)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for n := tr.leftmostLeaf(); n != nil; n = n.next {
		ck, slot := tr.jpLocate(n)
		if ck.slots[slot] != n {
			t.Fatal("jpLocate returned wrong slot")
		}
		if n.hint.slot != slot || n.hint.chunk != ck {
			t.Fatal("jpLocate did not repair the hint")
		}
	}
}

func TestJPChunkSplit(t *testing.T) {
	// Tiny chunks (1 line = 14 slots) force chunk splits quickly.
	tr := newTestTree(t, Config{
		Width: 2, Prefetch: true, JumpArray: JumpExternal, ChunkLines: 1,
	})
	if err := tr.Bulkload(sortedPairs(14*15*5), 1.0); err != nil {
		t.Fatal(err)
	}
	tr.ResetUpdateStats()
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 4000; i++ {
		tr.Insert(Key(r.Intn(14*15*5*8)+1), 1)
	}
	st := tr.UpdateStats()
	if st.ChunkSplits == 0 {
		t.Fatal("expected chunk splits with 1-line chunks")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestJPChunkRemoval(t *testing.T) {
	tr := newTestTree(t, Config{
		Width: 2, Prefetch: true, JumpArray: JumpExternal, ChunkLines: 1,
	})
	pairs := sortedPairs(14 * 15 * 3)
	if err := tr.Bulkload(pairs, 1.0); err != nil {
		t.Fatal(err)
	}
	tr.ResetUpdateStats()
	r := rand.New(rand.NewSource(10))
	keys := shuffledKeys(r, pairs)
	for _, k := range keys {
		tr.Delete(k)
	}
	st := tr.UpdateStats()
	if st.JumpPointerRemovals == 0 || st.ChunkRemoves == 0 {
		t.Fatalf("expected jump pointer and chunk removals: %+v", st)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// A single chunk must survive for the remaining (empty) root leaf.
	if tr.jpHead == nil {
		t.Fatal("jump-pointer array head lost")
	}
}

// TestJPDeletionLeavesHoles verifies deletion nulls slots rather than
// compacting (nothing moves during deletions, section 3.2).
func TestJPDeletionLeavesHoles(t *testing.T) {
	tr := extTree(t, 8)
	pairs := sortedPairs(62 * 10)
	if err := tr.Bulkload(pairs, 1.0); err != nil {
		t.Fatal(err)
	}
	// Record slot positions of the leaves that will survive.
	type pos struct {
		ck   *chunk
		slot int
	}
	positions := map[*node]pos{}
	for n := tr.leftmostLeaf(); n != nil; n = n.next {
		positions[n] = pos{n.hint.chunk, n.hint.slot}
	}
	// Delete all keys of every second leaf.
	var victims []Key
	i := 0
	for n := tr.leftmostLeaf(); n != nil; n = n.next {
		if i%2 == 1 {
			victims = append(victims, n.keys[:n.nkeys]...)
		}
		i++
	}
	for _, k := range victims {
		tr.Delete(k)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Surviving leaves' jump pointers must not have moved.
	for n := tr.leftmostLeaf(); n != nil; n = n.next {
		p, ok := positions[n]
		if !ok {
			continue
		}
		if p.ck.slots[p.slot] != n {
			t.Fatal("deletion moved a surviving jump pointer")
		}
	}
}

func TestInternalJPAChainMaintained(t *testing.T) {
	tr := newTestTree(t, Config{Width: 2, Prefetch: true, JumpArray: JumpInternal})
	r := rand.New(rand.NewSource(31))
	model := map[Key]bool{}
	for i := 0; i < 8000; i++ {
		k := Key(r.Intn(10000) + 1)
		if r.Intn(3) != 0 {
			tr.Insert(k, TID(k))
			model[k] = true
		} else {
			tr.Delete(k)
			delete(model, k)
		}
		if i%1000 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(model) {
		t.Fatalf("Len=%d model=%d", tr.Len(), len(model))
	}
}

// TestHintRepairsCounted: shifting jump pointers leftward makes the
// shifted leaves' hints stale; later lookups must repair them.
func TestHintRepairsCounted(t *testing.T) {
	tr := newTestTree(t, Config{
		Width: 2, Prefetch: true, JumpArray: JumpExternal, ChunkLines: 2,
	})
	if err := tr.Bulkload(sortedPairs(14*100), 1.0); err != nil {
		t.Fatal(err)
	}
	tr.ResetUpdateStats()
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 3000; i++ {
		tr.Insert(Key(r.Intn(14*100*8)+1), 1)
	}
	// Scans locate starting leaves via hints; run a few.
	for i := 0; i < 50; i++ {
		tr.Scan(Key(r.Intn(14*100*8)+1), 100)
	}
	if tr.UpdateStats().HintRepairs == 0 {
		t.Fatal("expected some stale hints to be repaired")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

package core

// This file implements the external jump-pointer array of section 3.2:
// a chunked linked list of leaf-node addresses used to prefetch
// arbitrarily far ahead during range scans. Each leaf carries a hint
// back-pointer: the chunk is always correct, the slot index may be
// stale and is repaired for free whenever the precise position is
// looked up.

// chunkHeaderFields is the number of 4-byte fields (next, prev) at the
// front of a chunk.
const chunkHeaderFields = 2

// chunk is one piece of the external jump-pointer array. slots[i] is
// nil for an empty slot; occupied slots appear in leaf key order.
type chunk struct {
	addr       uint64
	next, prev *chunk
	slots      []*node
	n          int // occupied slots
}

// slotAddr returns the simulated address of slots[i].
func (c *chunk) slotAddr(i int) uint64 {
	return c.addr + uint64((chunkHeaderFields+i)*fieldSize)
}

// chunkBytes is the allocation size of a chunk.
func (t *Tree) chunkBytes() int {
	return (t.jpCap + chunkHeaderFields) * fieldSize
}

// newChunk allocates an empty chunk.
func (t *Tree) newChunk() *chunk {
	return &chunk{
		addr:  t.space.Alloc(t.chunkBytes()),
		slots: make([]*node, t.jpCap),
	}
}

// jpBulkload builds the jump-pointer array over the given leaves,
// filling each chunk to the bulkload factor with the empty slots
// evenly interleaved.
func (t *Tree) jpBulkload(leaves []*node, fill float64) {
	occ := fillCount(t.jpCap, fill)
	var tail *chunk
	for start := 0; start < len(leaves); start += occ {
		end := start + occ
		if end > len(leaves) {
			end = len(leaves)
		}
		ck := t.newChunk()
		t.mem.AccessRange(ck.addr, t.chunkBytes())
		for j := start; j < end; j++ {
			// Spread the occupied slots across the chunk so every
			// insertion finds a nearby empty slot.
			slot := t.jpSlotFor(j-start, occ)
			ck.slots[slot] = leaves[j]
			leaves[j].hint = hintPos{chunk: ck, slot: slot}
			t.mem.Access(t.leafLay.hintAddr(leaves[j].addr))
		}
		ck.n = end - start
		if tail == nil {
			t.jpHead = ck
		} else {
			tail.next = ck
			ck.prev = tail
			t.mem.Access(tail.addr)
			t.mem.Access(ck.addr)
		}
		tail = ck
	}
	if t.jpHead == nil { // no leaves at all: keep one empty chunk
		t.jpHead = t.newChunk()
	}
}

// jpLocate follows leaf's hint to its precise slot, searching outward
// within the chunk when the hint is stale, and repairs the hint (for
// free: the leaf is cached after the search that preceded this call).
func (t *Tree) jpLocate(leaf *node) (*chunk, int) {
	h := leaf.hint
	ck := h.chunk
	t.mem.Access(t.leafLay.hintAddr(leaf.addr))
	t.traceNode(LevelNone, KindChunk)
	t.mem.Access(ck.addr)
	t.mem.Access(ck.slotAddr(h.slot))
	if ck.slots[h.slot] == leaf {
		return ck, h.slot
	}
	t.stats.HintRepairs++
	for d := 1; d < len(ck.slots); d++ {
		if i := h.slot + d; i < len(ck.slots) {
			t.mem.Access(ck.slotAddr(i))
			if ck.slots[i] == leaf {
				leaf.hint.slot = i
				return ck, i
			}
		}
		if i := h.slot - d; i >= 0 {
			t.mem.Access(ck.slotAddr(i))
			if ck.slots[i] == leaf {
				leaf.hint.slot = i
				return ck, i
			}
		}
	}
	panic("core: leaf missing from its hinted jump-pointer chunk")
}

// jpInsertAfter inserts newLeaf's jump pointer immediately after
// left's, shifting pointers toward the nearest empty slot, or
// splitting the chunk when it is full (section 3.4, Insertion).
func (t *Tree) jpInsertAfter(left, newLeaf *node) {
	ck, p := t.jpLocate(left)
	t.stats.JumpPointerInserts++

	// Find the nearest empty slot, searching outward from p.
	empty := -1
	for d := 1; d < len(ck.slots); d++ {
		if i := p + d; i < len(ck.slots) {
			t.mem.Access(ck.slotAddr(i))
			if ck.slots[i] == nil {
				empty = i
				break
			}
		}
		if i := p - d; i >= 0 {
			t.mem.Access(ck.slotAddr(i))
			if ck.slots[i] == nil {
				empty = i
				break
			}
		}
	}

	switch {
	case empty > p:
		// Shift (p, empty) one slot right; newLeaf lands at p+1.
		moved := empty - p - 1
		copy(ck.slots[p+2:empty+1], ck.slots[p+1:empty])
		ck.slots[p+1] = newLeaf
		newLeaf.hint = hintPos{chunk: ck, slot: p + 1}
		ck.n++
		t.mem.AccessRange(ck.slotAddr(p+1), (moved+1)*fieldSize)
		t.mem.Access(t.leafLay.hintAddr(newLeaf.addr))
		t.mem.Compute(t.cost.Move * uint64(moved+1))
		if t.cfg.Ablation.ExactHints {
			t.jpRehint(ck, p+2, empty+1)
		}
	case empty >= 0:
		// Shift (empty, p] one slot left; newLeaf lands at p. The
		// hints of the moved leaves are NOT updated — they are hints.
		moved := p - empty
		copy(ck.slots[empty:p], ck.slots[empty+1:p+1])
		ck.slots[p] = newLeaf
		newLeaf.hint = hintPos{chunk: ck, slot: p}
		left.hint.slot = p - 1 // left is cached: free update
		ck.n++
		t.mem.AccessRange(ck.slotAddr(empty), (moved+1)*fieldSize)
		t.mem.Access(t.leafLay.hintAddr(newLeaf.addr))
		t.mem.Compute(t.cost.Move * uint64(moved+1))
		if t.cfg.Ablation.ExactHints {
			t.jpRehint(ck, empty, p)
		}
	default:
		t.jpSplitChunk(ck, p, newLeaf)
	}
}

// jpSplitChunk splits a full chunk around the insertion of newLeaf
// after slot p, redistributing the pointers evenly (with evenly
// interleaved empty slots) across the two chunks and updating the
// hints of every moved leaf.
func (t *Tree) jpSplitChunk(ck *chunk, p int, newLeaf *node) {
	t.stats.ChunkSplits++
	nc := t.newChunk()
	t.pfChunk(nc)

	// Combined pointer order: slots[0..p], newLeaf, slots[p+1..].
	combined := make([]*node, 0, ck.n+1)
	combined = append(combined, ck.slots[:p+1]...)
	combined = append(combined, newLeaf)
	combined = append(combined, ck.slots[p+1:]...)

	half := (len(combined) + 1) / 2
	for i := range ck.slots {
		ck.slots[i] = nil
	}
	t.jpFill(ck, combined[:half])
	t.jpFill(nc, combined[half:])

	nc.next = ck.next
	nc.prev = ck
	if ck.next != nil {
		ck.next.prev = nc
		t.mem.Access(ck.next.addr)
	}
	ck.next = nc
	t.mem.Access(ck.addr)
	t.mem.Access(nc.addr)
}

// jpFill lays pointers into a chunk with empty slots evenly
// interleaved and updates (and charges) each leaf's hint. The hint
// lines are prefetched first so the writes overlap instead of paying
// one full miss per leaf.
func (t *Tree) jpFill(ck *chunk, leaves []*node) {
	ck.n = len(leaves)
	for _, leaf := range leaves {
		t.pfLeafHint(leaf)
	}
	for j, leaf := range leaves {
		slot := t.jpSlotFor(j, len(leaves))
		ck.slots[slot] = leaf
		leaf.hint = hintPos{chunk: ck, slot: slot}
		t.mem.Access(t.leafLay.hintAddr(leaf.addr))
	}
	t.mem.AccessRange(ck.addr, t.chunkBytes())
	t.mem.Compute(t.cost.Move * uint64(len(leaves)))
}

// jpSlotFor places occupied entry j of occ within a chunk: evenly
// interleaved with empties by default, packed left under the
// PackChunks ablation.
func (t *Tree) jpSlotFor(j, occ int) int {
	if t.cfg.Ablation.PackChunks {
		return j
	}
	return j * t.jpCap / occ
}

// jpRehint eagerly repairs the hints of the jump pointers in chunk
// slots [lo, hi), charging one leaf write each — the cost the
// hints-are-hints design avoids (ExactHints ablation only).
func (t *Tree) jpRehint(ck *chunk, lo, hi int) {
	for i := lo; i < hi; i++ {
		if leaf := ck.slots[i]; leaf != nil {
			leaf.hint = hintPos{chunk: ck, slot: i}
			t.mem.Access(t.leafLay.hintAddr(leaf.addr))
		}
	}
}

// jpRemove deletes leaf's jump pointer: the slot is nulled, or the
// chunk removed from the list when this was its last pointer
// (section 3.4, Deletion).
func (t *Tree) jpRemove(leaf *node) {
	ck, p := t.jpLocate(leaf)
	t.stats.JumpPointerRemovals++
	if ck.n >= 2 {
		ck.slots[p] = nil
		ck.n--
		t.mem.Access(ck.slotAddr(p))
		return
	}
	t.stats.ChunkRemoves++
	if ck.prev != nil {
		ck.prev.next = ck.next
		t.mem.Access(ck.prev.addr)
	} else {
		t.jpHead = ck.next
	}
	if ck.next != nil {
		ck.next.prev = ck.prev
		t.mem.Access(ck.next.addr)
	}
}

package core

import (
	"pbtree/internal/memsys"
)

// UpdateStats counts the structural events of insertions and
// deletions, used by the Figure 13 analysis.
type UpdateStats struct {
	Inserts             uint64 // total insertions
	InsertsWithSplit    uint64 // insertions that split at least one node
	InsertsWithNLSplit  uint64 // insertions that split a non-leaf node too
	LeafSplits          uint64 // leaf nodes split
	NonLeafSplits       uint64 // non-leaf nodes split (including root growth)
	Deletes             uint64 // total deletions of present keys
	NodeDeletes         uint64 // nodes emptied and removed
	Redistributions     uint64 // emptied nodes refilled from a sibling
	ChunkSplits         uint64 // external jump-pointer array chunk splits
	ChunkRemoves        uint64 // external jump-pointer array chunks emptied and removed
	HintRepairs         uint64 // hints found stale and repaired
	JumpPointerInserts  uint64 // leaf pointers added to the jump-pointer array
	JumpPointerRemovals uint64 // leaf pointers removed from the jump-pointer array
}

// Tree is a B+-Tree variant over a memsys.Model. Mutating operations
// (Insert, Delete, Bulkload) are never safe for concurrent use. A
// frozen tree — one that is no longer being mutated, e.g. just
// bulkloaded — supports any number of concurrent readers (Search,
// NewScan/Next, EstimateRange) when its model is a *memsys.Native;
// on a *memsys.Hierarchy even reads must stay single-threaded, since
// every operation mutates the simulated cache state.
type Tree struct {
	cfg   Config
	mem   memsys.Model
	space *memsys.AddressSpace
	cost  CostModel
	trc   Tracer // optional op-context tracer, nil when disabled

	// hw mirrors cfg.HardwarePrefetch: prefetch charges carry real
	// backing-array addresses and the native model issues real
	// prefetch instructions for them (hwprefetch.go).
	hw bool

	leafLay, nlLay, bottomLay layout

	root   *node
	height int // levels, counting the leaf level; 1 for a lone leaf
	count  int // number of <key,tid> pairs

	// External jump-pointer array (JumpExternal only).
	jpHead *chunk
	jpCap  int // pointer slots per chunk

	// firstBottom is the head of the internal jump-pointer array
	// (JumpInternal only): the leftmost bottom non-leaf node.
	firstBottom *node

	stats UpdateStats

	// path is a scratch buffer for the root-to-leaf descent; the
	// s-prefixed slices are scratch space for node splits.
	path      []pathEntry
	skeys     []Key
	stids     []TID
	schildren []*node
}

// pathEntry records one step of a root-to-leaf descent: node n was
// left through children[idx].
type pathEntry struct {
	n   *node
	idx int
}

// New creates an empty tree. See Config for the knobs; the zero Config
// is the plain one-line-node B+-Tree on a default hierarchy.
func New(cfg Config) (*Tree, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	mc := cfg.Mem.Config()
	space := cfg.Space
	if space == nil {
		space = memsys.NewAddressSpace(mc.LineSize)
	}
	t := &Tree{
		cfg:   cfg,
		mem:   cfg.Mem,
		space: space,
		cost:  cfg.Cost,
		trc:   cfg.Trace,
		hw:    cfg.HardwarePrefetch,
	}
	if cfg.HardwarePrefetch {
		// Validated by withDefaults: the model is a *memsys.Native.
		cfg.Mem.(*memsys.Native).EnableHardwarePrefetch()
	}
	t.leafLay, t.nlLay, t.bottomLay = layoutsFor(cfg, mc.LineSize)
	if cfg.JumpArray == JumpExternal {
		// A chunk is ChunkLines lines: two header pointers (next,
		// prev) followed by leaf-pointer slots.
		t.jpCap = (cfg.ChunkLines*mc.LineSize)/fieldSize - 2
	}
	t.root = t.newLeaf()
	t.height = 1
	if cfg.JumpArray == JumpExternal {
		t.jpBulkload([]*node{t.root}, 1)
	}
	return t, nil
}

// MustNew is New but panics on error, for tests and examples where the
// configuration is static.
func MustNew(cfg Config) *Tree {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Name returns the paper's name for this tree variant ("B+", "p8B+",
// "p8eB+", "p8iB+", ...).
func (t *Tree) Name() string { return t.cfg.name() }

// Config returns the resolved configuration.
func (t *Tree) Config() Config { return t.cfg }

// Mem returns the memory model the tree charges to.
func (t *Tree) Mem() memsys.Model { return t.mem }

// Height reports the number of levels in the tree, counting the leaf
// level (Table 3 of the paper).
func (t *Tree) Height() int { return t.height }

// Len reports the number of <key, tupleID> pairs in the index.
func (t *Tree) Len() int { return t.count }

// UpdateStats returns the accumulated structural counters.
func (t *Tree) UpdateStats() UpdateStats { return t.stats }

// ResetUpdateStats zeroes the structural counters.
func (t *Tree) ResetUpdateStats() { t.stats = UpdateStats{} }

// SpaceUsed reports the simulated bytes allocated for nodes and
// jump-pointer array chunks.
func (t *Tree) SpaceUsed() uint64 { return t.space.Used() }

// LeafCapacity reports the maximum number of pairs per leaf node.
func (t *Tree) LeafCapacity() int { return t.leafLay.maxKeys }

// MaxFanout reports the maximum number of children of a non-leaf node.
func (t *Tree) MaxFanout() int { return t.nlLay.maxKeys + 1 }

package core

// Persistence: a Tree serializes to a compact binary stream (its
// configuration plus the sorted pairs) and is rebuilt by bulkloading
// on load, the way production systems persist and rebuild main-memory
// indexes. Simulated cache state is not part of the stream.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"pbtree/internal/memsys"
)

// serializeMagic identifies the stream format; bump the trailing digit
// on incompatible changes.
var serializeMagic = [4]byte{'P', 'B', 'T', '1'}

// header is the fixed-size stream prologue.
type header struct {
	Magic        [4]byte
	Width        uint16
	JumpArray    uint8
	Prefetch     uint8
	PrefetchDist uint32
	ChunkLines   uint32
	Count        uint64
}

// WriteTo serializes the tree's configuration and contents. It
// implements io.WriterTo.
func (t *Tree) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countingWriter{w: bw}
	h := header{
		Magic:        serializeMagic,
		Width:        uint16(t.cfg.Width),
		JumpArray:    uint8(t.cfg.JumpArray),
		PrefetchDist: uint32(t.cfg.PrefetchDist),
		ChunkLines:   uint32(t.cfg.ChunkLines),
		Count:        uint64(t.count),
	}
	if t.cfg.Prefetch {
		h.Prefetch = 1
	}
	if err := binary.Write(cw, binary.LittleEndian, h); err != nil {
		return cw.n, err
	}
	// Stream the pairs in key order off the leaf chain.
	buf := make([]uint32, 0, 2*512)
	for n := t.leftmostLeaf(); n != nil; n = n.next {
		for i := 0; i < slotExtent(n); i++ {
			if !slotOccupied(n, i) {
				continue
			}
			buf = append(buf, uint32(n.keys[i]), uint32(n.tids[i]))
			if len(buf) == cap(buf) {
				if err := binary.Write(cw, binary.LittleEndian, buf); err != nil {
					return cw.n, err
				}
				buf = buf[:0]
			}
		}
	}
	if len(buf) > 0 {
		if err := binary.Write(cw, binary.LittleEndian, buf); err != nil {
			return cw.n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// Stream-format sanity bounds. The writer never exceeds them; a reader
// that does is handing us a corrupt or hostile stream, and rejecting it
// up front keeps Load's allocations proportional to the actual data
// (never to an attacker-chosen header field).
const (
	maxLoadWidth        = 1 << 12
	maxLoadPrefetchDist = 1 << 20
	maxLoadChunkLines   = 1 << 20
	loadChunkPairs      = 1 << 16 // pairs read per chunk while streaming
)

// Load reconstructs a tree from a stream produced by WriteTo,
// bulkloading it at the given fill factor onto the supplied memory
// model (nil selects a fresh default simulated hierarchy). Corrupt
// streams are rejected with an error, never a panic or an unbounded
// allocation.
func Load(r io.Reader, mem memsys.Model, fill float64) (*Tree, error) {
	br := bufio.NewReader(r)
	var h header
	if err := binary.Read(br, binary.LittleEndian, &h); err != nil {
		return nil, fmt.Errorf("core: reading header: %w", err)
	}
	if h.Magic != serializeMagic {
		return nil, fmt.Errorf("core: bad magic %q", h.Magic[:])
	}
	if h.JumpArray > uint8(JumpInternal) {
		return nil, fmt.Errorf("core: unknown jump-array kind %d", h.JumpArray)
	}
	if h.Prefetch > 1 {
		return nil, fmt.Errorf("core: bad prefetch flag %d", h.Prefetch)
	}
	if h.Width > maxLoadWidth {
		return nil, fmt.Errorf("core: width %d exceeds format bound %d", h.Width, maxLoadWidth)
	}
	if h.PrefetchDist > maxLoadPrefetchDist {
		return nil, fmt.Errorf("core: prefetch distance %d exceeds format bound %d", h.PrefetchDist, maxLoadPrefetchDist)
	}
	if h.ChunkLines > maxLoadChunkLines {
		return nil, fmt.Errorf("core: chunk size %d exceeds format bound %d", h.ChunkLines, maxLoadChunkLines)
	}
	cfg := Config{
		Width:        int(h.Width),
		Prefetch:     h.Prefetch == 1,
		JumpArray:    JumpArrayKind(h.JumpArray),
		PrefetchDist: int(h.PrefetchDist),
		ChunkLines:   int(h.ChunkLines),
		Mem:          mem,
	}
	t, err := New(cfg)
	if err != nil {
		return nil, err
	}
	// Stream the pairs in bounded chunks: memory stays proportional to
	// what the reader actually delivers, so a huge Count in a truncated
	// stream fails with an error instead of exhausting memory.
	pairs := make([]Pair, 0, min(h.Count, loadChunkPairs))
	raw := make([]uint32, 0, 2*loadChunkPairs)
	for remaining := h.Count; remaining > 0; {
		n := uint64(loadChunkPairs)
		if remaining < n {
			n = remaining
		}
		raw = raw[:2*n]
		if err := binary.Read(br, binary.LittleEndian, raw); err != nil {
			return nil, fmt.Errorf("core: reading %d pairs: %w", h.Count, err)
		}
		for i := uint64(0); i < n; i++ {
			pairs = append(pairs, Pair{Key: Key(raw[2*i]), TID: TID(raw[2*i+1])})
		}
		remaining -= n
	}
	if err := t.Bulkload(pairs, fill); err != nil {
		return nil, err
	}
	return t, nil
}

// countingWriter tracks bytes written for the io.WriterTo contract.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

package core

import "fmt"

// CheckInvariants verifies the structural invariants of the tree and
// its jump-pointer array. It walks plain Go memory and charges nothing
// to the simulated hierarchy, so tests can call it freely.
func (t *Tree) CheckInvariants() error {
	if t.root == nil {
		return fmt.Errorf("nil root")
	}
	var leaves []*node
	count := 0
	if err := t.checkNode(t.root, 1, nil, nil, &leaves, &count); err != nil {
		return err
	}
	if count != t.count {
		return fmt.Errorf("count %d, tree reports %d", count, t.count)
	}

	// The leaf chain must visit exactly the in-order leaves.
	i := 0
	for n := t.leftmostLeaf(); n != nil; n = n.next {
		if i >= len(leaves) || leaves[i] != n {
			return fmt.Errorf("leaf chain diverges from tree order at leaf %d", i)
		}
		i++
	}
	if i != len(leaves) {
		return fmt.Errorf("leaf chain has %d leaves, tree has %d", i, len(leaves))
	}
	for j := 1; j < len(leaves); j++ {
		if leaves[j-1].nkeys > 0 && leaves[j].nkeys > 0 &&
			lastKey(leaves[j-1]) >= leaves[j].keys[0] {
			return fmt.Errorf("leaf %d not key-ordered before leaf %d", j-1, j)
		}
	}

	if t.cfg.JumpArray == JumpInternal {
		if err := t.checkInternalJPA(); err != nil {
			return err
		}
	}
	if t.cfg.JumpArray == JumpExternal {
		if err := t.checkExternalJPA(leaves); err != nil {
			return err
		}
	}
	return nil
}

// checkNode recursively validates the subtree under n at the given
// depth, with optional lower (inclusive) and upper (exclusive) key
// bounds, appending leaves in order and accumulating the pair count.
func (t *Tree) checkNode(n *node, depth int, lo, hi *Key, leaves *[]*node, count *int) error {
	lay := t.lay(n)
	if n != t.root && n.nkeys < 1 {
		return fmt.Errorf("non-root node with %d keys at depth %d", n.nkeys, depth)
	}
	if n.nkeys > lay.maxKeys {
		return fmt.Errorf("node with %d keys exceeds capacity %d", n.nkeys, lay.maxKeys)
	}
	if n.leaf && n.occ != nil {
		if err := t.checkGappedLeaf(n); err != nil {
			return fmt.Errorf("depth %d: %w", depth, err)
		}
	} else {
		for i := 1; i < n.nkeys; i++ {
			if n.keys[i-1] >= n.keys[i] {
				return fmt.Errorf("unsorted keys at depth %d", depth)
			}
		}
	}
	if n.nkeys > 0 {
		// keys[0] is the smallest live key in every layout (a gapped
		// leaf's gap slots duplicate their right neighbor).
		if lo != nil && n.keys[0] < *lo {
			return fmt.Errorf("key below lower bound at depth %d", depth)
		}
		if hi != nil && lastKey(n) >= *hi {
			return fmt.Errorf("key above upper bound at depth %d", depth)
		}
	}

	if n.leaf {
		if depth != t.height {
			return fmt.Errorf("leaf at depth %d, height is %d", depth, t.height)
		}
		if n.bottom {
			return fmt.Errorf("leaf marked bottom")
		}
		*leaves = append(*leaves, n)
		*count += n.nkeys
		return nil
	}

	childrenAreLeaves := n.children[0].leaf
	if n.bottom != childrenAreLeaves {
		return fmt.Errorf("bottom flag %v but children leaf=%v", n.bottom, childrenAreLeaves)
	}
	for i := 0; i <= n.nkeys; i++ {
		c := n.children[i]
		if c == nil {
			return fmt.Errorf("nil child %d of %d at depth %d", i, n.nkeys, depth)
		}
		if c.leaf != childrenAreLeaves {
			return fmt.Errorf("mixed child kinds at depth %d", depth)
		}
		clo, chi := lo, hi
		if i > 0 {
			clo = &n.keys[i-1]
		}
		if i < n.nkeys {
			chi = &n.keys[i]
		}
		if err := t.checkNode(c, depth+1, clo, chi, leaves, count); err != nil {
			return err
		}
		// Separators are bounds, not necessarily present keys: lazy
		// deletion may remove the key a separator was copied from. The
		// lo/hi checks above enforce everything that search requires.
	}
	for i := n.nkeys + 1; i < len(n.children); i++ {
		if n.children[i] != nil {
			return fmt.Errorf("stale child pointer at slot %d", i)
		}
	}
	return nil
}

// leftmostLeaf returns the first leaf in key order.
func (t *Tree) leftmostLeaf() *node {
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	return n
}

// checkInternalJPA validates the bottom non-leaf chain.
func (t *Tree) checkInternalJPA() error {
	var bottoms []*node
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			return
		}
		if n.bottom {
			bottoms = append(bottoms, n)
			return
		}
		for i := 0; i <= n.nkeys; i++ {
			walk(n.children[i])
		}
	}
	walk(t.root)

	if len(bottoms) == 0 {
		if t.firstBottom != nil {
			return fmt.Errorf("firstBottom set but no bottom nodes exist")
		}
		return nil
	}
	if t.firstBottom != bottoms[0] {
		return fmt.Errorf("firstBottom does not point at the leftmost bottom node")
	}
	i := 0
	for n := t.firstBottom; n != nil; n = n.next {
		if i >= len(bottoms) || bottoms[i] != n {
			return fmt.Errorf("bottom chain diverges at node %d", i)
		}
		i++
	}
	if i != len(bottoms) {
		return fmt.Errorf("bottom chain has %d nodes, tree has %d", i, len(bottoms))
	}
	return nil
}

// checkExternalJPA validates the chunked jump-pointer array against
// the in-order leaves.
func (t *Tree) checkExternalJPA(leaves []*node) error {
	if t.jpHead == nil {
		return fmt.Errorf("no jump-pointer array head")
	}
	i := 0
	var prev *chunk
	for ck := t.jpHead; ck != nil; ck = ck.next {
		if ck.prev != prev {
			return fmt.Errorf("chunk prev link broken")
		}
		occupied := 0
		for slot, leaf := range ck.slots {
			if leaf == nil {
				continue
			}
			occupied++
			if i >= len(leaves) || leaves[i] != leaf {
				return fmt.Errorf("jump pointer %d out of order", i)
			}
			if leaf.hint.chunk != ck {
				return fmt.Errorf("leaf %d hint points at the wrong chunk", i)
			}
			_ = slot
			i++
		}
		if occupied != ck.n {
			return fmt.Errorf("chunk count %d, actual %d", ck.n, occupied)
		}
		if occupied == 0 && !(t.jpHead == ck && ck.next == nil) {
			return fmt.Errorf("empty chunk in a multi-chunk array")
		}
		prev = ck
	}
	if i != len(leaves) {
		return fmt.Errorf("jump-pointer array has %d pointers, tree has %d leaves", i, len(leaves))
	}
	return nil
}

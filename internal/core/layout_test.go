package core

import (
	"testing"

	"pbtree/internal/memsys"
)

// TestLayoutCountsMatchPaper pins the node capacities of section 4.1.2.
func TestLayoutCountsMatchPaper(t *testing.T) {
	cases := []struct {
		cfg                Config
		leafKeys, nlKeys   int
		bottomKeys         int
		leafSize, hintWant int // hintWant: -1 means no hint
	}{
		{Config{Width: 1}, 7, 7, 7, 64, -1},
		{Config{Width: 2, Prefetch: true}, 15, 15, 15, 128, -1},
		{Config{Width: 8, Prefetch: true}, 63, 63, 63, 512, -1},
		{Config{Width: 8, Prefetch: true, JumpArray: JumpExternal}, 62, 63, 63, 512, 4},
		{Config{Width: 8, Prefetch: true, JumpArray: JumpInternal}, 63, 63, 62, 512, -1},
		{Config{Width: 16, Prefetch: true}, 127, 127, 127, 1024, -1},
	}
	for _, c := range cases {
		cfg, err := c.cfg.withDefaults()
		if err != nil {
			t.Fatalf("%v: %v", c.cfg, err)
		}
		leaf, nl, bottom := layoutsFor(cfg, 64)
		if leaf.maxKeys != c.leafKeys {
			t.Errorf("%s: leaf keys = %d, want %d", cfg.name(), leaf.maxKeys, c.leafKeys)
		}
		if nl.maxKeys != c.nlKeys {
			t.Errorf("%s: non-leaf keys = %d, want %d", cfg.name(), nl.maxKeys, c.nlKeys)
		}
		if bottom.maxKeys != c.bottomKeys {
			t.Errorf("%s: bottom keys = %d, want %d", cfg.name(), bottom.maxKeys, c.bottomKeys)
		}
		if leaf.size != c.leafSize {
			t.Errorf("%s: leaf size = %d, want %d", cfg.name(), leaf.size, c.leafSize)
		}
		if leaf.hintOff != c.hintWant {
			t.Errorf("%s: hint offset = %d, want %d", cfg.name(), leaf.hintOff, c.hintWant)
		}
		// Keys must precede pointers (the layout optimization), and
		// every field must fit in the node.
		if leaf.keyOff >= leaf.ptrOff || nl.keyOff >= nl.ptrOff {
			t.Errorf("%s: keys must precede pointers", cfg.name())
		}
		if leaf.nextOff != leaf.size-fieldSize {
			t.Errorf("%s: leaf next pointer not at end of node", cfg.name())
		}
		lastTID := leaf.ptrOff + leaf.maxKeys*fieldSize
		if lastTID > leaf.nextOff {
			t.Errorf("%s: tupleIDs overlap the next pointer", cfg.name())
		}
		lastChild := nl.ptrOff + (nl.maxKeys+1)*fieldSize
		if lastChild > nl.size {
			t.Errorf("%s: child pointers overflow the node", cfg.name())
		}
		if bottom.nextOff >= 0 {
			lastChild := bottom.ptrOff + (bottom.maxKeys+1)*fieldSize
			if lastChild > bottom.nextOff {
				t.Errorf("%s: bottom child pointers overlap next", cfg.name())
			}
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg, err := Config{Width: 8, Prefetch: true, JumpArray: JumpExternal}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	// B = 15, w = 8: k = ceil(15/8) + 1 = 3 (the paper's choice).
	if cfg.PrefetchDist != 3 {
		t.Errorf("default prefetch distance = %d, want 3", cfg.PrefetchDist)
	}
	if cfg.ChunkLines != 8 {
		t.Errorf("default chunk lines = %d, want 8", cfg.ChunkLines)
	}
	if cfg.Cost != DefaultCostModel() {
		t.Errorf("cost model not defaulted")
	}
	if cfg.Mem == nil {
		t.Errorf("hierarchy not defaulted")
	}
}

func TestConfigErrors(t *testing.T) {
	if _, err := New(Config{Width: -1}); err == nil {
		t.Error("negative width accepted")
	}
	if _, err := New(Config{Width: 8, JumpArray: JumpExternal}); err == nil {
		t.Error("jump array without prefetch accepted")
	}
	if _, err := New(Config{Width: 1, Prefetch: true, PrefetchDist: -1}); err == nil {
		t.Error("negative prefetch distance accepted")
	}
	if _, err := New(Config{Width: 8, Prefetch: true, JumpArray: JumpExternal, ChunkLines: -2}); err == nil {
		t.Error("negative chunk size accepted")
	}
}

func TestVariantNames(t *testing.T) {
	cases := map[string]Config{
		"B+":    {Width: 1},
		"p8B+":  {Width: 8, Prefetch: true},
		"p8eB+": {Width: 8, Prefetch: true, JumpArray: JumpExternal},
		"p8iB+": {Width: 8, Prefetch: true, JumpArray: JumpInternal},
		"p2B+":  {Width: 2, Prefetch: true},
	}
	for want, cfg := range cases {
		if got := MustNew(cfg).Name(); got != want {
			t.Errorf("name = %q, want %q", got, want)
		}
	}
}

// TestChunkCapacityMatchesPaper pins the 126 leaf-pointer fields of an
// 8-line chunk (section 4.1.2).
func TestChunkCapacityMatchesPaper(t *testing.T) {
	tr := MustNew(Config{Width: 8, Prefetch: true, JumpArray: JumpExternal})
	if tr.jpCap != 126 {
		t.Fatalf("chunk capacity = %d, want 126", tr.jpCap)
	}
	if tr.chunkBytes() != 512 {
		t.Fatalf("chunk bytes = %d, want 512", tr.chunkBytes())
	}
}

func TestJumpArrayKindString(t *testing.T) {
	if JumpNone.String() != "none" || JumpExternal.String() != "external" ||
		JumpInternal.String() != "internal" {
		t.Error("JumpArrayKind.String mismatch")
	}
	if JumpArrayKind(9).String() == "" {
		t.Error("unknown kind should still print")
	}
}

// newTestTree builds a tree with a private hierarchy so tests do not
// interfere with each other.
func newTestTree(tb testing.TB, cfg Config) *Tree {
	tb.Helper()
	if cfg.Mem == nil {
		cfg.Mem = memsys.Default()
	}
	tr, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return tr
}

// testVariants are the tree configurations exercised by the
// correctness tests.
func testVariants() []Config {
	return []Config{
		{Width: 1},                 // plain B+
		{Width: 1, Prefetch: true}, // degenerate p1
		{Width: 2, Prefetch: true},
		{Width: 4, Prefetch: true},
		{Width: 8, Prefetch: true},
		{Width: 16, Prefetch: true},
		{Width: 8, Prefetch: true, JumpArray: JumpExternal},
		{Width: 8, Prefetch: true, JumpArray: JumpInternal},
		{Width: 2, Prefetch: true, JumpArray: JumpExternal, ChunkLines: 1},
		{Width: 2, Prefetch: true, JumpArray: JumpInternal},
		{Width: 8}, // wide without prefetch (the Figure 2(b) ablation)
		// Intra-node search and leaf-layout variants (PR 9).
		{Width: 8, Prefetch: true, BranchlessSearch: true},
		{Width: 8, Prefetch: true, GappedLeaves: true},
		{Width: 8, Prefetch: true, BranchlessSearch: true, GappedLeaves: true},
		{Width: 1, BranchlessSearch: true, GappedLeaves: true},
		{Width: 8, Prefetch: true, JumpArray: JumpExternal, BranchlessSearch: true, GappedLeaves: true},
		{Width: 8, Prefetch: true, JumpArray: JumpInternal, GappedLeaves: true},
	}
}

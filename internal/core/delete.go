package core

// Delete removes key from the index, reporting whether it was present.
//
// Deletion is lazy, following Rao and Ross as adopted in section 2.1:
// if the leaf holds more than one key, the key is simply removed. Only
// when the last key of a node is deleted do we redistribute keys from
// a sibling (prefetching the sibling first) or remove the node.
func (t *Tree) Delete(key Key) bool {
	if t.trc != nil {
		t.trc.BeginOp(OpDelete)
		defer t.trc.EndOp(OpDelete)
	}
	t.mem.Compute(t.cost.Op)
	leaf, ub, found := t.findLeaf(key)
	if !found {
		return false
	}
	t.stats.Deletes++
	t.count--
	i := ub - 1
	if leaf.nkeys > 1 {
		if leaf.occ != nil {
			t.gappedLeafRemoveAt(leaf, i)
		} else {
			t.leafRemoveAt(leaf, i)
		}
		return true
	}
	leaf.nkeys = 0
	if leaf.occ != nil {
		clear(leaf.occ)
		leaf.nslots = 0
	}
	t.mem.Access(leaf.addr)
	t.fixEmpty(leaf, len(t.path)-1)
	return true
}

// leafRemoveAt removes entry i from a leaf with at least two keys.
func (t *Tree) leafRemoveAt(n *node, i int) {
	moved := n.nkeys - i - 1
	copy(n.keys[i:n.nkeys-1], n.keys[i+1:n.nkeys])
	copy(n.tids[i:n.nkeys-1], n.tids[i+1:n.nkeys])
	n.nkeys--
	if moved > 0 {
		t.mem.AccessRange(t.leafLay.keyAddr(n.addr, i), moved*fieldSize)
		t.mem.AccessRange(t.leafLay.ptrAddr(n.addr, i), moved*fieldSize)
	}
	t.mem.Access(n.addr)
	t.mem.Compute(t.cost.Move * uint64(2*moved))
}

// fixEmpty restores the invariant that every non-root node holds at
// least one key, after node n (at descent-path depth level) was
// emptied. It either refills n from a sibling or removes a node,
// cascading upward when the parent empties in turn.
func (t *Tree) fixEmpty(n *node, level int) {
	for {
		if level < 0 {
			t.collapseRoot()
			return
		}
		p := t.path[level]
		parent, ci := p.n, p.idx
		t.traceNode(level, kindOf(parent))

		var rs, ls *node
		if ci+1 <= parent.nkeys {
			rs = parent.children[ci+1]
		}
		if ci-1 >= 0 {
			ls = parent.children[ci-1]
		}

		switch {
		case rs != nil && rs.nkeys >= 2:
			t.redistributeFromRight(parent, ci, n, rs)
			return
		case ls != nil && ls.nkeys >= 2:
			t.redistributeFromLeft(parent, ci, n, ls)
			return
		case rs != nil:
			// Merge the single-key right sibling into n and remove it.
			t.mergeRightInto(n, rs, parent.keys[ci])
			t.removeChildAt(parent, ci+1)
		case ls != nil:
			// The single-key left sibling absorbs n. An empty leaf has
			// nothing to move, but an empty non-leaf still owns one
			// child that must survive.
			if n.leaf {
				t.unlinkNode(ls, n)
			} else {
				t.mergeIntoLeft(ls, n, parent.keys[ci-1])
			}
			t.removeChildAt(parent, ci)
		default:
			// A non-root node always has a sibling: its parent holds
			// at least one key, because parents that empty are fixed
			// immediately by this very cascade.
			panic("core: empty node with no siblings")
		}
		t.stats.NodeDeletes++
		if parent.nkeys > 0 {
			return
		}
		n, level = parent, level-1
	}
}

// collapseRoot shrinks an empty non-leaf root to its single child.
func (t *Tree) collapseRoot() {
	for !t.root.leaf && t.root.nkeys == 0 {
		wasBottom := t.root.bottom
		t.root = t.root.children[0]
		t.height--
		t.mem.Access(t.lay(t.root).ptrAddr(t.root.addr, 0))
		if wasBottom && t.cfg.JumpArray == JumpInternal {
			t.firstBottom = nil
		}
	}
}

// redistributeFromRight refills empty node n with the first half of
// its right sibling's entries. parent.keys[ci] separates n and rs.
func (t *Tree) redistributeFromRight(parent *node, ci int, n, rs *node) {
	t.stats.Redistributions++
	t.pfNode(rs) // prefetch the sibling (2.1)
	if n.leaf {
		// Extract rs's live entries and lay both leaves back out
		// (identical to the direct copies for packed leaves; gapped
		// leaves are re-gapped).
		q := (rs.nkeys + 1) / 2
		sk, st := t.extractLeaf(rs)
		t.layOutLeaf(n, sk[:q], st[:q])
		t.layOutLeaf(rs, sk[q:], st[q:])
		parent.keys[ci] = rs.keys[0]
		t.chargeLeafWriteCost(n, 0, q)
		t.chargeLeafWriteCost(rs, 0, rs.nkeys)
	} else {
		// n has one child and no keys; pull q children across,
		// rotating separators through the parent.
		q := (rs.nkeys + 1) / 2
		n.keys[0] = parent.keys[ci]
		copy(n.keys[1:q], rs.keys[:q-1])
		copy(n.children[1:q+1], rs.children[:q])
		n.nkeys = q
		parent.keys[ci] = rs.keys[q-1]
		copy(rs.keys, rs.keys[q:rs.nkeys])
		copy(rs.children, rs.children[q:rs.nkeys+1])
		for i := rs.nkeys - q + 1; i <= rs.nkeys; i++ {
			rs.children[i] = nil
		}
		rs.nkeys -= q
		t.chargeNonLeafWrite(n, 0, n.nkeys)
		t.chargeNonLeafWrite(rs, 0, rs.nkeys)
	}
	t.mem.Access(t.lay(parent).keyAddr(parent.addr, ci))
	t.mem.Compute(t.cost.Move)
}

// redistributeFromLeft refills empty node n with the last half of its
// left sibling's entries. parent.keys[ci-1] separates ls and n.
func (t *Tree) redistributeFromLeft(parent *node, ci int, n, ls *node) {
	t.stats.Redistributions++
	t.pfNode(ls)
	if n.leaf {
		q := (ls.nkeys + 1) / 2
		start := ls.nkeys - q
		sk, st := t.extractLeaf(ls)
		t.layOutLeaf(n, sk[start:], st[start:])
		t.layOutLeaf(ls, sk[:start], st[:start])
		parent.keys[ci-1] = n.keys[0]
		t.chargeLeafWriteCost(n, 0, q)
	} else {
		q := (ls.nkeys + 1) / 2
		start := ls.nkeys - q // first moved child index is start+1
		// n's single existing child becomes its last; the moved
		// children go in front, with separators rotated through the
		// parent.
		n.children[q] = n.children[0]
		copy(n.children[:q], ls.children[start+1:ls.nkeys+1])
		n.keys[q-1] = parent.keys[ci-1]
		copy(n.keys[:q-1], ls.keys[start+1:ls.nkeys])
		n.nkeys = q
		parent.keys[ci-1] = ls.keys[start]
		for i := start + 1; i <= ls.nkeys; i++ {
			ls.children[i] = nil
		}
		ls.nkeys = start
		t.chargeNonLeafWrite(n, 0, n.nkeys)
	}
	t.mem.Access(ls.addr)
	t.mem.Access(t.lay(parent).keyAddr(parent.addr, ci-1))
	t.mem.Compute(t.cost.Move)
}

// mergeRightInto moves the single entry of rs into the empty node n
// and splices rs out of the sibling chains. sep is the parent
// separator between n and rs, which the caller removes along with rs.
func (t *Tree) mergeRightInto(n, rs *node, sep Key) {
	t.pfNode(rs)
	if n.leaf {
		// rs holds a single live entry; extract-and-relayout finds it
		// even when its slot array starts with gaps.
		sk, st := t.extractLeaf(rs)
		t.layOutLeaf(n, sk, st)
		n.next = rs.next
		t.chargeLeafWriteCost(n, 0, 1)
		t.mem.Access(t.leafLay.nextAddr(n.addr))
		if t.cfg.JumpArray == JumpExternal {
			t.jpRemove(rs)
		}
	} else {
		// n contributes its single child; rs contributes its keys and
		// children, with the old parent separator pulled down between
		// them.
		n.keys[0] = sep
		copy(n.keys[1:rs.nkeys+1], rs.keys[:rs.nkeys])
		copy(n.children[1:rs.nkeys+2], rs.children[:rs.nkeys+1])
		n.nkeys = rs.nkeys + 1
		if n.bottom && t.cfg.JumpArray == JumpInternal {
			n.next = rs.next
			t.mem.Access(t.bottomLay.nextAddr(n.addr))
		}
		t.chargeNonLeafWrite(n, 0, n.nkeys)
	}
}

// unlinkNode splices empty leaf n out of the leaf chain; ls is its
// immediate left sibling under the same parent.
func (t *Tree) unlinkNode(ls, n *node) {
	ls.next = n.next
	t.mem.Access(t.leafLay.nextAddr(ls.addr))
	if t.cfg.JumpArray == JumpExternal {
		t.jpRemove(n)
	}
}

// mergeIntoLeft moves the single child of the empty non-leaf n into
// its single-key left sibling ls, pulling the parent separator down.
// The caller removes n from the parent.
func (t *Tree) mergeIntoLeft(ls, n *node, sep Key) {
	t.pfNode(ls)
	ls.keys[ls.nkeys] = sep
	ls.children[ls.nkeys+1] = n.children[0]
	ls.nkeys++
	lay := t.lay(ls)
	t.mem.Access(lay.keyAddr(ls.addr, ls.nkeys-1))
	t.mem.Access(lay.ptrAddr(ls.addr, ls.nkeys))
	t.mem.Access(ls.addr)
	t.mem.Compute(t.cost.Move * 2)
	if ls.bottom && t.cfg.JumpArray == JumpInternal {
		ls.next = n.next
		t.mem.Access(t.bottomLay.nextAddr(ls.addr))
	}
}

// removeChildAt removes children[j] and its separator from a non-leaf
// node.
func (t *Tree) removeChildAt(parent *node, j int) {
	lay := t.lay(parent)
	ki := j - 1
	if ki < 0 {
		ki = 0
	}
	movedKeys := parent.nkeys - ki - 1
	copy(parent.keys[ki:parent.nkeys-1], parent.keys[ki+1:parent.nkeys])
	copy(parent.children[j:parent.nkeys], parent.children[j+1:parent.nkeys+1])
	parent.children[parent.nkeys] = nil
	parent.nkeys--
	if movedKeys > 0 {
		t.mem.AccessRange(lay.keyAddr(parent.addr, ki), movedKeys*fieldSize)
		t.mem.AccessRange(lay.ptrAddr(parent.addr, j), (movedKeys+1)*fieldSize)
		t.mem.Compute(t.cost.Move * uint64(2*movedKeys+1))
	}
	t.mem.Access(parent.addr)
}

// subtreeMin returns the smallest key stored under n.
func (t *Tree) subtreeMin(n *node) Key {
	for !n.leaf {
		n = n.children[0]
	}
	return n.keys[0]
}

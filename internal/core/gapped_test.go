package core

import (
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"

	"pbtree/internal/memsys"
)

// TestLowerBoundBranchlessMatchesSort cross-checks the unrolled
// branchless lower bound against sort.Search on hand-built nodes of
// every occupancy from empty through the widest node layout,
// including duplicate-heavy key sets and the 0 / MaxKey sentinels.
func TestLowerBoundBranchlessMatchesSort(t *testing.T) {
	tr := MustNew(Config{Width: 16, Prefetch: true, BranchlessSearch: true, Mem: memsys.DefaultNative()})
	maxW := tr.LeafCapacity()
	r := rand.New(rand.NewSource(41))

	for width := 0; width <= maxW; width++ {
		for trial := 0; trial < 25; trial++ {
			keys := make([]Key, maxW)
			for i := 0; i < width; i++ {
				switch r.Intn(10) {
				case 0:
					keys[i] = 0
				case 1:
					keys[i] = MaxKey
				case 2, 3, 4: // force runs of duplicates
					keys[i] = Key(r.Intn(4) * 1000)
				default:
					keys[i] = Key(r.Uint32())
				}
			}
			sort.Slice(keys[:width], func(i, j int) bool { return keys[i] < keys[j] })
			n := &node{leaf: true, nkeys: width, keys: keys}

			probes := []Key{0, 1, MaxKey, MaxKey - 1, Key(r.Uint32())}
			for i := 0; i < width; i++ {
				probes = append(probes, keys[i], keys[i]-1, keys[i]+1)
			}
			for _, p := range probes {
				got := tr.lowerBoundBranchless(n, p, width)
				want := sort.Search(width, func(i int) bool { return keys[i] >= p })
				if got != want {
					t.Fatalf("width %d: lowerBoundBranchless(%d) = %d, want %d (keys %v)",
						width, p, got, want, keys[:width])
				}
			}
		}
	}
}

// searchOracle verifies one searchKeys result against the leaf's live
// entries: a hit must return the matching occupied position, a miss a
// valid lower bound over the (slot or entry) array.
func searchOracle(t *testing.T, tr *Tree, n *node, key Key) {
	t.Helper()
	ub, found := tr.searchKeys(n, key)
	live := appendLeafPairs(nil, n)
	inLeaf := false
	for _, p := range live {
		if p.Key == key {
			inLeaf = true
			break
		}
	}
	if found != inLeaf {
		t.Fatalf("searchKeys(%d) found=%v, leaf holds it: %v", key, found, inLeaf)
	}
	ext := slotExtent(n)
	if found {
		i := ub - 1
		if i < 0 || i >= ext || n.keys[i] != key || !slotOccupied(n, i) {
			t.Fatalf("searchKeys(%d) hit at %d: not an occupied matching slot", key, i)
		}
		return
	}
	if ub < 0 || ub > ext {
		t.Fatalf("searchKeys(%d) miss ub=%d outside [0, %d]", key, ub, ext)
	}
	if ub > 0 && n.keys[ub-1] >= key {
		t.Fatalf("searchKeys(%d) miss ub=%d but keys[ub-1]=%d >= key", key, ub, n.keys[ub-1])
	}
	if ub < ext && n.keys[ub] < key {
		t.Fatalf("searchKeys(%d) miss ub=%d but keys[ub]=%d < key", key, ub, n.keys[ub])
	}
}

// TestSearchKeysPropertyAllLayouts drives randomized insert/delete
// churn through every combination of node width, search mode, and
// leaf layout, then probes searchKeys on every leaf — present keys,
// their neighbors, the sentinels, the empty tree, and (in gapped
// mode) leaves whose slot arrays start with gap runs.
func TestSearchKeysPropertyAllLayouts(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, width := range []int{1, 2, 4, 8, 16} {
		for _, branchless := range []bool{false, true} {
			for _, gapped := range []bool{false, true} {
				cfg := Config{
					Width: width, Prefetch: true,
					BranchlessSearch: branchless, GappedLeaves: gapped,
					Mem: memsys.DefaultNative(),
				}
				tr := MustNew(cfg)

				// Empty tree: the root leaf has no entries (in gapped
				// mode, the all-gaps case).
				for _, p := range []Key{0, 7, MaxKey} {
					searchOracle(t, tr, tr.root, p)
				}

				live := map[Key]bool{}
				for op := 0; op < 3000; op++ {
					k := Key(r.Intn(600)) * 3 // dense space: collisions and deletes
					if r.Intn(3) == 0 {
						tr.Delete(k)
						delete(live, k)
					} else {
						tr.Insert(k, TID(k+1))
						live[k] = true
					}
				}
				if err := tr.CheckInvariants(); err != nil {
					t.Fatalf("w=%d branchless=%v gapped=%v: %v", width, branchless, gapped, err)
				}
				for n := tr.leftmostLeaf(); n != nil; n = n.next {
					probes := []Key{0, MaxKey}
					for _, p := range appendLeafPairs(nil, n) {
						probes = append(probes, p.Key, p.Key-1, p.Key+1)
					}
					for _, p := range probes {
						searchOracle(t, tr, n, p)
					}
				}
			}
		}
	}
}

// FuzzGappedLeaf drives fuzzer-chosen insert/delete/search sequences
// against a gapped-leaf tree and a map oracle, checking the gapped
// invariants (occupied-key sortedness, bitmap/count agreement,
// dup-of-right gap fill) as the ops run and full content equality at
// the end.
func FuzzGappedLeaf(f *testing.F) {
	mk := func(ops ...byte) []byte { return ops }
	f.Add(mk(), uint8(8), true)
	f.Add(mk(0, 10, 0, 0, 20, 0, 0, 15, 0, 1, 10, 0, 2, 15, 0), uint8(8), false)
	f.Add(mk(0, 255, 255, 0, 0, 0, 1, 255, 255, 2, 0, 0), uint8(1), true)
	seq := make([]byte, 0, 300)
	for i := byte(1); i <= 50; i++ {
		seq = append(seq, 0, i, 0) // fifty ascending inserts
	}
	for i := byte(1); i <= 50; i += 2 {
		seq = append(seq, 1, i, 0) // delete every other
	}
	f.Add(seq, uint8(2), true)

	f.Fuzz(func(t *testing.T, ops []byte, width uint8, branchless bool) {
		if width == 0 || width > 16 {
			return
		}
		if len(ops) > 3*4096 {
			ops = ops[:3*4096] // bound invariant-check cost
		}
		cfg := Config{
			Width: int(width), Prefetch: true,
			GappedLeaves: true, BranchlessSearch: branchless,
			Mem: memsys.DefaultNative(),
		}
		tr, err := New(cfg)
		if err != nil {
			return
		}
		oracle := map[Key]TID{}
		for i := 0; i+3 <= len(ops); i += 3 {
			raw := binary.LittleEndian.Uint16(ops[i+1 : i+3])
			key := Key(raw)
			if raw == 0xFFFF {
				key = MaxKey // exercise the sentinel
			}
			switch ops[i] % 3 {
			case 0:
				_, had := oracle[key]
				if added := tr.Insert(key, TID(raw)+1); added == had {
					t.Fatalf("op %d: Insert(%d) added=%v, oracle had=%v", i, key, added, had)
				}
				oracle[key] = TID(raw) + 1
			case 1:
				_, had := oracle[key]
				if removed := tr.Delete(key); removed != had {
					t.Fatalf("op %d: Delete(%d) = %v, oracle had=%v", i, key, removed, had)
				}
				delete(oracle, key)
			case 2:
				want, had := oracle[key]
				got, ok := tr.Search(key)
				if ok != had || (had && got != want) {
					t.Fatalf("op %d: Search(%d) = %d,%v, want %d,%v", i, key, got, ok, want, had)
				}
			}
			if i%(16*3) == 0 {
				if err := tr.CheckInvariants(); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		got := tr.AppendPairs(nil)
		if len(got) != len(oracle) {
			t.Fatalf("tree has %d pairs, oracle %d", len(got), len(oracle))
		}
		var prev Key
		for i, p := range got {
			if i > 0 && p.Key <= prev {
				t.Fatalf("AppendPairs out of order at %d", i)
			}
			prev = p.Key
			if want := oracle[p.Key]; want != p.TID {
				t.Fatalf("key %d: tid %d, oracle %d", p.Key, p.TID, want)
			}
		}
	})
}

package core

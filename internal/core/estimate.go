package core

// EstimateRange estimates the number of pairs with keys in
// [start, end]. It implements the section 4.3 suggestion of
// "simultaneously searching for both the starting and ending leaves of
// the range and then seeing how far apart they are": both boundary
// descents are charged like ordinary searches, and the distance is
// derived from the fractional positions of the two root-to-leaf paths.
//
// For uniformly filled trees the estimate is accurate to within a
// small factor, which is all the short-range-scan heuristic needs (use
// plain scans below ~100 tupleIDs, prefetching scans above).
func (t *Tree) EstimateRange(start, end Key) int {
	if end < start || t.count == 0 {
		return 0
	}
	f1 := t.fracPos(start)
	f2 := t.fracPos(end)
	est := int((f2-f1)*float64(t.count)) + 1
	if est > t.count {
		est = t.count
	}
	return est
}

// fracPos descends to key's leaf and folds the child indices of the
// path into a position in [0, 1): 0 is before the first key, 1 after
// the last. The descent is recorded in a local buffer (not t.path) so
// estimation stays safe for concurrent native-mode readers.
func (t *Tree) fracPos(key Key) float64 {
	t.mem.Compute(t.cost.Op)
	var stack [24]pathEntry // deeper than any realistic tree
	path := stack[:0]
	leaf := t.walk(key, func(n *node, idx int) {
		path = append(path, pathEntry{n: n, idx: idx})
	})
	ub, _ := t.searchKeys(leaf, key)
	frac := 0.0
	if ext := slotExtent(leaf); ext > 0 {
		// ub and the extent are both slot positions in a gapped leaf,
		// entry positions in a packed one.
		frac = float64(ub) / float64(ext)
	}
	for i := len(path) - 1; i >= 0; i-- {
		p := path[i]
		frac = (float64(p.idx) + frac) / float64(p.n.nkeys+1)
	}
	return frac
}

package core

import (
	"bytes"
	"encoding/binary"
	"testing"

	"pbtree/internal/memsys"
)

// validStream serializes a small tree, producing a well-formed seed
// input for the fuzzers.
func validStream(tb testing.TB, n int, cfg Config) []byte {
	tb.Helper()
	cfg.Mem = memsys.DefaultNative()
	tr := MustNew(cfg)
	pairs := make([]Pair, n)
	for i := range pairs {
		pairs[i] = Pair{Key: Key(8 * (i + 1)), TID: TID(i + 1)}
	}
	if err := tr.Bulkload(pairs, 1.0); err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzLoad feeds arbitrary bytes to the deserializer: it must either
// return a structurally sound tree or an error — never panic and never
// allocate proportionally to a hostile header field.
func FuzzLoad(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("PBT1"))
	f.Add(validStream(f, 50, Config{Width: 1}))
	f.Add(validStream(f, 200, Config{Width: 8, Prefetch: true}))
	f.Add(validStream(f, 100, Config{Width: 8, Prefetch: true, JumpArray: JumpExternal}))
	// A truncated stream: valid header claiming more pairs than follow.
	trunc := validStream(f, 50, Config{Width: 1})
	f.Add(trunc[:len(trunc)-13])
	// A header with an absurd pair count and no data behind it.
	huge := append([]byte{}, trunc[:24]...)
	binary.LittleEndian.PutUint64(huge[16:], 1<<40)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Load(bytes.NewReader(data), memsys.DefaultNative(), 1.0)
		if err != nil {
			return
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("loaded tree violates invariants: %v", err)
		}
	})
}

// FuzzSerializeRoundTrip builds a tree from fuzzer-chosen pairs and
// checks that WriteTo → Load reproduces it exactly.
func FuzzSerializeRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint8(1), false)
	f.Add([]byte{0, 0, 0, 1, 1, 1, 1, 0}, uint8(8), true)
	f.Add([]byte("the quick brown fox jumps over the lazy dog"), uint8(4), true)

	f.Fuzz(func(t *testing.T, raw []byte, width uint8, prefetch bool) {
		if width == 0 || width > 16 {
			return
		}
		// Interpret raw as little-endian <key,tid> pairs; dedup and sort
		// by construction (strictly increasing keys derived from the
		// bytes) so Bulkload accepts them.
		var pairs []Pair
		last := uint32(0)
		for i := 0; i+8 <= len(raw); i += 8 {
			k := binary.LittleEndian.Uint32(raw[i:])
			tid := binary.LittleEndian.Uint32(raw[i+4:])
			key := last + 1 + k%1024 // strictly increasing
			if key < last {
				break // wrapped
			}
			pairs = append(pairs, Pair{Key: Key(key), TID: TID(tid)})
			last = key
		}
		cfg := Config{Width: int(width), Prefetch: prefetch, Mem: memsys.DefaultNative()}
		tr, err := New(cfg)
		if err != nil {
			return
		}
		if err := tr.Bulkload(pairs, 1.0); err != nil {
			t.Fatalf("bulkload rejected constructed pairs: %v", err)
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Load(bytes.NewReader(buf.Bytes()), memsys.DefaultNative(), 1.0)
		if err != nil {
			t.Fatalf("round trip failed to load: %v", err)
		}
		gotPairs := got.AppendPairs(nil)
		if len(gotPairs) != len(pairs) {
			t.Fatalf("round trip: %d pairs, want %d", len(gotPairs), len(pairs))
		}
		for i := range pairs {
			if gotPairs[i] != pairs[i] {
				t.Fatalf("round trip pair %d: got %+v, want %+v", i, gotPairs[i], pairs[i])
			}
		}
		if got.Config().Width != int(width) || got.Config().Prefetch != prefetch {
			t.Fatalf("round trip lost configuration: %+v", got.Config())
		}
	})
}

package core

// layout describes the physical layout of one node role (leaf,
// non-leaf, or bottom non-leaf) for a given node width. The simulated
// byte offsets drive which cache lines each field access touches; the
// counts reproduce the node capacities of section 4.1.2 of the paper:
//
//	w=1 non-leaf: keynum + 7 keys + 8 childptrs            (64 B)
//	w=1 leaf:     keynum + 7 keys + 7 tupleIDs + next      (64 B)
//	w=8 non-leaf: keynum + 63 keys + 64 childptrs          (512 B)
//	w=8 leaf:     keynum + 63 keys + 63 tupleIDs + next    (512 B)
//	p8e leaf:     one key/tupleID fewer, plus a hint field
//	p8i bottom non-leaf: one key/childptr fewer, plus next
//
// Keys are stored before pointers/tupleIDs (the paper's layout
// optimization), so a binary search touches only key lines until the
// final pointer read.
type layout struct {
	size    int // node size in bytes (width * line size)
	maxKeys int // capacity in keys
	keyOff  int // byte offset of keys[0]
	ptrOff  int // byte offset of childptr[0] (non-leaf) or tid[0] (leaf)
	nextOff int // byte offset of the next pointer, or -1
	hintOff int // byte offset of the hint field, or -1
}

// layouts computes the three node layouts for a resolved Config.
// lineSize is the cache line size of the memory hierarchy.
func layoutsFor(cfg Config, lineSize int) (leaf, nonLeaf, bottom layout) {
	size := cfg.Width * lineSize
	fields := size / fieldSize
	wm := fields / 2 // pointers per full-width non-leaf node (w*m)

	// Non-leaf: keynum + (wm-1) keys + wm childptrs == fields.
	nonLeaf = layout{
		size:    size,
		maxKeys: wm - 1,
		keyOff:  fieldSize,
		ptrOff:  fieldSize * wm,
		nextOff: -1,
		hintOff: -1,
	}

	// Bottom non-leaf: identical unless an internal jump-pointer array
	// is in use, in which case one key/childptr pair is given up for a
	// next-sibling pointer (stored in the node's last field).
	bottom = nonLeaf
	if cfg.JumpArray == JumpInternal {
		bottom.maxKeys = wm - 2
		bottom.ptrOff = fieldSize * (wm - 1)
		bottom.nextOff = size - fieldSize
	}

	// Leaf: keynum [+ hint] + K keys + K tids + next.
	leafKeys := wm - 1
	keyOff := fieldSize
	hintOff := -1
	if cfg.JumpArray == JumpExternal {
		leafKeys = wm - 2
		hintOff = fieldSize
		keyOff = 2 * fieldSize
	}
	leaf = layout{
		size:    size,
		maxKeys: leafKeys,
		keyOff:  keyOff,
		ptrOff:  keyOff + fieldSize*leafKeys,
		nextOff: size - fieldSize,
		hintOff: hintOff,
	}
	return leaf, nonLeaf, bottom
}

// keyAddr returns the simulated address of keys[i] in a node placed at
// base.
func (l layout) keyAddr(base uint64, i int) uint64 {
	return base + uint64(l.keyOff+i*fieldSize)
}

// ptrAddr returns the simulated address of childptr[i] / tid[i].
func (l layout) ptrAddr(base uint64, i int) uint64 {
	return base + uint64(l.ptrOff+i*fieldSize)
}

// nextAddr returns the simulated address of the next pointer.
func (l layout) nextAddr(base uint64) uint64 {
	return base + uint64(l.nextOff)
}

// hintAddr returns the simulated address of the hint field.
func (l layout) hintAddr(base uint64) uint64 {
	return base + uint64(l.hintOff)
}

package core

// visit models arriving at a node: if prefetching is enabled, all
// lines of the node are prefetched (section 2.1), then the keynum
// field is read. The per-node visit overhead is charged here.
func (t *Tree) visit(n *node) {
	if t.cfg.Prefetch {
		t.mem.PrefetchRange(n.addr, t.lay(n).size)
	}
	t.mem.Access(n.addr) // keynum
	t.mem.Compute(t.cost.Visit)
}

// searchKeys performs a binary search for key over n's keys, touching
// the line of every probed key and charging one comparison per probe.
// It returns the number of keys <= key (the upper bound), and whether
// an exact match exists.
func (t *Tree) searchKeys(n *node, key Key) (ub int, found bool) {
	lay := t.lay(n)
	lo, hi := 0, n.nkeys // invariant: keys[:lo] <= key < keys[hi:]
	for lo < hi {
		mid := (lo + hi) / 2
		t.mem.Access(lay.keyAddr(n.addr, mid))
		t.mem.Compute(t.cost.Compare)
		switch k := n.keys[mid]; {
		case k == key:
			return mid + 1, true
		case k < key:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return lo, false
}

// descend walks from the root to the leaf that owns key, recording the
// path (node and chosen child index per non-leaf level) in t.path.
// It returns the leaf.
func (t *Tree) descend(key Key) *node {
	t.path = t.path[:0]
	n := t.root
	for !n.leaf {
		t.visit(n)
		idx, _ := t.searchKeys(n, key)
		t.mem.Access(t.lay(n).ptrAddr(n.addr, idx))
		t.path = append(t.path, pathEntry{n: n, idx: idx})
		n = n.children[idx]
	}
	t.visit(n)
	return n
}

// Search looks up key and returns its tupleID.
func (t *Tree) Search(key Key) (TID, bool) {
	t.mem.Compute(t.cost.Op)
	n := t.descend(key)
	ub, found := t.searchKeys(n, key)
	if !found {
		return 0, false
	}
	i := ub - 1
	t.mem.Access(t.leafLay.ptrAddr(n.addr, i))
	return n.tids[i], true
}

// findLeaf returns the leaf that owns key together with the position
// of key within it (insertion position if absent). It is the shared
// first phase of Insert, Delete and NewScan.
func (t *Tree) findLeaf(key Key) (n *node, ub int, found bool) {
	n = t.descend(key)
	ub, found = t.searchKeys(n, key)
	return n, ub, found
}

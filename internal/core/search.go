package core

// visit models arriving at a node: if prefetching is enabled, all
// lines of the node are prefetched (section 2.1), then the keynum
// field is read. The per-node visit overhead is charged here.
func (t *Tree) visit(n *node) {
	if t.cfg.Prefetch {
		t.mem.PrefetchRange(n.addr, t.lay(n).size)
	}
	t.mem.Access(n.addr) // keynum
	t.mem.Compute(t.cost.Visit)
}

// searchKeys performs a binary search for key over n's keys, touching
// the line of every probed key and charging one comparison per probe.
// It returns the number of keys <= key (the upper bound), and whether
// an exact match exists.
func (t *Tree) searchKeys(n *node, key Key) (ub int, found bool) {
	lay := t.lay(n)
	lo, hi := 0, n.nkeys // invariant: keys[:lo] <= key < keys[hi:]
	for lo < hi {
		mid := (lo + hi) / 2
		t.mem.Access(lay.keyAddr(n.addr, mid))
		t.mem.Compute(t.cost.Compare)
		switch k := n.keys[mid]; {
		case k == key:
			return mid + 1, true
		case k < key:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return lo, false
}

// walk descends from the root to the leaf that owns key, calling rec
// (if non-nil) with each non-leaf node left and the child index taken.
// It is the shared descent of every operation; read-only operations
// pass a rec that records into caller-owned state (or nil), keeping
// them free of writes to shared tree scratch so a frozen tree supports
// concurrent readers on a native memory model.
func (t *Tree) walk(key Key, rec func(n *node, idx int)) *node {
	n := t.root
	for level := 0; !n.leaf; level++ {
		t.traceNode(level, kindOf(n))
		t.visit(n)
		idx, _ := t.searchKeys(n, key)
		t.mem.Access(t.lay(n).ptrAddr(n.addr, idx))
		if rec != nil {
			rec(n, idx)
		}
		n = n.children[idx]
	}
	t.traceNode(t.height-1, KindLeaf)
	t.visit(n)
	return n
}

// descend walks from the root to the leaf that owns key, recording the
// path (node and chosen child index per non-leaf level) in t.path.
// It returns the leaf. Mutating operations only: the shared path
// scratch makes it unsafe for concurrent readers.
func (t *Tree) descend(key Key) *node {
	t.path = t.path[:0]
	return t.walk(key, func(n *node, idx int) {
		t.path = append(t.path, pathEntry{n: n, idx: idx})
	})
}

// Search looks up key and returns its tupleID.
func (t *Tree) Search(key Key) (TID, bool) {
	if t.trc != nil {
		t.trc.BeginOp(OpSearch)
		defer t.trc.EndOp(OpSearch)
	}
	t.mem.Compute(t.cost.Op)
	n := t.walk(key, nil)
	ub, found := t.searchKeys(n, key)
	if !found {
		return 0, false
	}
	i := ub - 1
	t.mem.Access(t.leafLay.ptrAddr(n.addr, i))
	return n.tids[i], true
}

// findLeaf returns the leaf that owns key together with the position
// of key within it (insertion position if absent). It is the shared
// first phase of Insert and Delete; it records the descent in t.path
// for the structural updates that may follow.
func (t *Tree) findLeaf(key Key) (n *node, ub int, found bool) {
	n = t.descend(key)
	ub, found = t.searchKeys(n, key)
	return n, ub, found
}

package core

// visit models arriving at a node: if prefetching is enabled, all
// lines of the node are prefetched (section 2.1), then the keynum
// field is read. The per-node visit overhead is charged here.
func (t *Tree) visit(n *node) {
	if t.cfg.Prefetch {
		t.pfNode(n)
	}
	t.mem.Access(n.addr) // keynum
	t.mem.Compute(t.cost.Visit)
}

// searchKeys finds key within n. It returns the number of entries
// <= key (the upper bound), and whether an exact match exists: on a
// hit, ub-1 is the position of the match. For a gapped leaf the
// positions are slot indices; the same contract holds because gap
// slots duplicate their right neighbor. The search itself is either
// the classic probe-per-key binary search or, with BranchlessSearch,
// an unrolled data-parallel pass over the key array.
func (t *Tree) searchKeys(n *node, key Key) (ub int, found bool) {
	if n.occ != nil {
		return t.searchKeysGapped(n, key)
	}
	if t.cfg.BranchlessSearch {
		lb := t.lowerBoundBranchless(n, key, n.nkeys)
		if lb < n.nkeys && n.keys[lb] == key {
			return lb + 1, true
		}
		return lb, false
	}
	lay := t.lay(n)
	lo, hi := 0, n.nkeys // invariant: keys[:lo] <= key < keys[hi:]
	for lo < hi {
		mid := (lo + hi) / 2
		t.mem.Access(lay.keyAddr(n.addr, mid))
		t.mem.Compute(t.cost.Compare)
		switch k := n.keys[mid]; {
		case k == key:
			return mid + 1, true
		case k < key:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return lo, false
}

// lowerBoundBranchless returns the first position in [0, limit)
// whose key is >= key (limit if none) without a single
// data-dependent branch: the count of keys < key is accumulated with
// unrolled 8-wide compare-and-add blocks, each comparison a
// subtract-and-shift. The pass reads the key array strictly
// left-to-right, so it costs one ranged access plus one compare
// charge per block rather than a probe per key.
func (t *Tree) lowerBoundBranchless(n *node, key Key, limit int) int {
	if limit <= 0 {
		return 0
	}
	t.mem.AccessRange(t.lay(n).keyAddr(n.addr, 0), limit*fieldSize)
	k := uint64(key)
	lb, i := 0, 0
	for ; i+8 <= limit; i += 8 {
		s := n.keys[i : i+8 : i+8]
		lb += int((uint64(s[0])-k)>>63) +
			int((uint64(s[1])-k)>>63) +
			int((uint64(s[2])-k)>>63) +
			int((uint64(s[3])-k)>>63) +
			int((uint64(s[4])-k)>>63) +
			int((uint64(s[5])-k)>>63) +
			int((uint64(s[6])-k)>>63) +
			int((uint64(s[7])-k)>>63)
		t.mem.Compute(t.cost.Compare)
	}
	for ; i < limit; i++ {
		lb += int((uint64(n.keys[i]) - k) >> 63)
	}
	if i > 0 && i&7 != 0 {
		t.mem.Compute(t.cost.Compare) // the partial tail block
	}
	return lb
}

// walk descends from the root to the leaf that owns key, calling rec
// (if non-nil) with each non-leaf node left and the child index taken.
// It is the shared descent of every operation; read-only operations
// pass a rec that records into caller-owned state (or nil), keeping
// them free of writes to shared tree scratch so a frozen tree supports
// concurrent readers on a native memory model.
func (t *Tree) walk(key Key, rec func(n *node, idx int)) *node {
	n := t.root
	for level := 0; !n.leaf; level++ {
		t.traceNode(level, kindOf(n))
		t.visit(n)
		idx, _ := t.searchKeys(n, key)
		t.mem.Access(t.lay(n).ptrAddr(n.addr, idx))
		if rec != nil {
			rec(n, idx)
		}
		n = n.children[idx]
	}
	t.traceNode(t.height-1, KindLeaf)
	t.visit(n)
	return n
}

// descend walks from the root to the leaf that owns key, recording the
// path (node and chosen child index per non-leaf level) in t.path.
// It returns the leaf. Mutating operations only: the shared path
// scratch makes it unsafe for concurrent readers.
func (t *Tree) descend(key Key) *node {
	t.path = t.path[:0]
	return t.walk(key, func(n *node, idx int) {
		t.path = append(t.path, pathEntry{n: n, idx: idx})
	})
}

// Search looks up key and returns its tupleID.
func (t *Tree) Search(key Key) (TID, bool) {
	if t.trc != nil {
		t.trc.BeginOp(OpSearch)
		defer t.trc.EndOp(OpSearch)
	}
	t.mem.Compute(t.cost.Op)
	n := t.walk(key, nil)
	ub, found := t.searchKeys(n, key)
	if !found {
		return 0, false
	}
	i := ub - 1
	t.mem.Access(t.leafLay.ptrAddr(n.addr, i))
	return n.tids[i], true
}

// findLeaf returns the leaf that owns key together with the position
// of key within it (insertion position if absent). It is the shared
// first phase of Insert and Delete; it records the descent in t.path
// for the structural updates that may follow.
func (t *Tree) findLeaf(key Key) (n *node, ub int, found bool) {
	n = t.descend(key)
	ub, found = t.searchKeys(n, key)
	return n, ub, found
}

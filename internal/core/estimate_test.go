package core

import (
	"math/rand"
	"testing"

	"pbtree/internal/memsys"
)

func memsysSpace() *memsys.AddressSpace { return memsys.NewAddressSpace(64) }

func TestEstimateRangeAccuracy(t *testing.T) {
	for _, fill := range []float64{0.7, 1.0} {
		tr := newTestTree(t, Config{Width: 8, Prefetch: true, JumpArray: JumpExternal})
		pairs := sortedPairs(50000)
		if err := tr.Bulkload(pairs, fill); err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(11))
		for trial := 0; trial < 200; trial++ {
			i := r.Intn(len(pairs) - 1)
			j := i + r.Intn(len(pairs)-i)
			actual := j - i + 1
			est := tr.EstimateRange(pairs[i].Key, pairs[j].Key)
			// The heuristic only needs order-of-magnitude accuracy;
			// demand a factor of three on ranges above 50 pairs.
			if actual >= 50 {
				if est < actual/3 || est > actual*3 {
					t.Fatalf("fill %v: range %d estimated as %d", fill, actual, est)
				}
			}
		}
	}
}

func TestEstimateRangeEdges(t *testing.T) {
	tr := newTestTree(t, Config{Width: 1})
	if tr.EstimateRange(1, 100) != 0 {
		t.Fatal("empty tree should estimate 0")
	}
	tr.Insert(10, 1)
	if got := tr.EstimateRange(20, 10); got != 0 {
		t.Fatalf("inverted range estimated %d", got)
	}
	if got := tr.EstimateRange(1, 100); got < 1 || got > 1 {
		t.Fatalf("whole-tree estimate %d, want 1", got)
	}
}

func TestEstimateRangeMonotonic(t *testing.T) {
	tr := newTestTree(t, Config{Width: 4, Prefetch: true})
	pairs := sortedPairs(10000)
	if err := tr.Bulkload(pairs, 1.0); err != nil {
		t.Fatal(err)
	}
	prev := 0
	for _, j := range []int{10, 100, 1000, 9999} {
		est := tr.EstimateRange(pairs[0].Key, pairs[j].Key)
		if est < prev {
			t.Fatalf("estimate not monotone at %d: %d < %d", j, est, prev)
		}
		prev = est
	}
}

func TestNoPrefetchScanCorrectAndCheaper(t *testing.T) {
	tr := newTestTree(t, Config{Width: 8, Prefetch: true, JumpArray: JumpExternal})
	pairs := sortedPairs(50000)
	if err := tr.Bulkload(pairs, 1.0); err != nil {
		t.Fatal(err)
	}
	// Correctness: same results as the prefetching scanner.
	a := collectScan(tr.NewScan(pairs[10].Key, pairs[500].Key), 64)
	b := collectScan(tr.NewScanNoPrefetch(pairs[10].Key, pairs[500].Key), 64)
	if len(a) != len(b) {
		t.Fatalf("prefetch %d vs plain %d results", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result %d differs", i)
		}
	}
	// Cost: for a 10-tupleID range the plain scanner must be cheaper
	// (the section 4.3 startup-cost observation).
	mem := tr.Mem()
	measure := func(plain bool) uint64 {
		mem.FlushCaches()
		before := mem.Now()
		var s *Scanner
		if plain {
			s = tr.NewScanNoPrefetch(pairs[100].Key, MaxKey)
		} else {
			s = tr.NewScan(pairs[100].Key, MaxKey)
		}
		buf := make([]TID, 10)
		s.Next(buf)
		return mem.Now() - before
	}
	withPF := measure(false)
	plain := measure(true)
	if plain >= withPF {
		t.Errorf("plain short scan (%d) not cheaper than prefetching (%d)", plain, withPF)
	}
}

func TestAblationKnobs(t *testing.T) {
	// PackChunks: bulkload packs pointers to the front of each chunk.
	packed := newTestTree(t, Config{Width: 8, Prefetch: true, JumpArray: JumpExternal,
		Ablation: Ablation{PackChunks: true}})
	if err := packed.Bulkload(sortedPairs(62*40), 0.5); err != nil {
		t.Fatal(err)
	}
	ck := packed.jpHead
	if ck.slots[0] == nil || ck.slots[1] == nil {
		t.Error("PackChunks should fill slots contiguously")
	}
	if err := packed.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The packed layout must still be functionally correct under
	// churn.
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 3000; i++ {
		packed.Insert(Key(r.Intn(62*40*8)+1), 1)
	}
	if err := packed.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// ExactHints: hints stay exact through churn.
	exact := newTestTree(t, Config{Width: 8, Prefetch: true, JumpArray: JumpExternal,
		Ablation: Ablation{ExactHints: true}})
	if err := exact.Bulkload(sortedPairs(62*40), 1.0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		exact.Insert(Key(r.Intn(62*40*8)+1), 1)
	}
	if err := exact.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	stale := 0
	for n := exact.leftmostLeaf(); n != nil; n = n.next {
		if n.hint.chunk.slots[n.hint.slot] != n {
			stale++
		}
	}
	if stale != 0 {
		t.Errorf("ExactHints left %d stale hints", stale)
	}

	// NoBufferPrefetch: correct, but slower on long scans.
	noBuf := newTestTree(t, Config{Width: 8, Prefetch: true, JumpArray: JumpExternal,
		Ablation: Ablation{NoBufferPrefetch: true}})
	full := newTestTree(t, Config{Width: 8, Prefetch: true, JumpArray: JumpExternal})
	pairs := sortedPairs(100000)
	if err := noBuf.Bulkload(pairs, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := full.Bulkload(pairs, 1.0); err != nil {
		t.Fatal(err)
	}
	noBuf.Mem().FlushCaches()
	full.Mem().FlushCaches()
	nb := noBuf.Mem().Now()
	if got := noBuf.Scan(8, 50000); got != 50000 {
		t.Fatal("short scan")
	}
	nb = noBuf.Mem().Now() - nb
	fb := full.Mem().Now()
	full.Scan(8, 50000)
	fb = full.Mem().Now() - fb
	if nb <= fb {
		t.Errorf("scan without buffer prefetch (%d) should be slower than with (%d)", nb, fb)
	}
}

func TestSharedAddressSpace(t *testing.T) {
	mem := newTestTree(t, Config{Width: 1}).Mem() // reuse a default hierarchy
	space := memsysSpace()
	a := MustNew(Config{Width: 1, Mem: mem, Space: space})
	b := MustNew(Config{Width: 1, Mem: mem, Space: space})
	a.Insert(1, 1)
	b.Insert(2, 2)
	// Different trees in a shared space must not alias addresses.
	if a.root.addr == b.root.addr {
		t.Fatal("shared space handed out overlapping node addresses")
	}
}

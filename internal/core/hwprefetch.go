package core

import "unsafe"

// Hardware-prefetch plumbing: with Config.HardwarePrefetch, the
// tree's prefetch charges carry the *real* virtual addresses of a
// node's backing arrays instead of its simulated address, and the
// native model (in hardware mode, see memsys.EnableHardwarePrefetch)
// turns each one into an actual PREFETCHT0 / PRFM instruction.
//
// A node's real memory is not one contiguous block: the Go struct
// holds separate keys and tids/children slices. The paper's
// keys-before-pointers layout insight carries over directly — a
// search touches only the key array until the final child/tupleID
// read — so a node visit prefetches the key array and the pointer
// array, each as one range.
//
// The simulated Access charges are untouched: on the native model
// they are no-ops (or counters), and the counted model therefore
// reports the same event counts whether hardware mode is on or off.

// keysBase returns the real address of n.keys[0] (0 for an empty
// slice, which the prefetch path never produces: every node's key
// slice is allocated at capacity).
func keysBase(n *node) uint64 {
	if len(n.keys) == 0 {
		return 0
	}
	return uint64(uintptr(unsafe.Pointer(&n.keys[0])))
}

// hwPrefetchNode issues real prefetches for the node's backing
// arrays: the full key array, plus the tupleID array (leaf) or child
// pointer array (non-leaf).
func (t *Tree) hwPrefetchNode(n *node) {
	if len(n.keys) > 0 {
		t.mem.PrefetchRange(keysBase(n), len(n.keys)*int(unsafe.Sizeof(Key(0))))
	}
	if n.leaf {
		if len(n.tids) > 0 {
			t.mem.PrefetchRange(uint64(uintptr(unsafe.Pointer(&n.tids[0]))), len(n.tids)*int(unsafe.Sizeof(TID(0))))
		}
	} else if len(n.children) > 0 {
		t.mem.PrefetchRange(uint64(uintptr(unsafe.Pointer(&n.children[0]))), len(n.children)*int(unsafe.Sizeof((*node)(nil))))
	}
}

// pfNode prefetches all lines of a node: the real backing arrays in
// hardware mode, the simulated node region otherwise. It is the
// mode dispatch behind every whole-node prefetch in the tree.
func (t *Tree) pfNode(n *node) {
	if t.hw {
		t.hwPrefetchNode(n)
		return
	}
	t.mem.PrefetchRange(n.addr, t.lay(n).size)
}

// pfHint prefetches the jump-pointer chunk lines a leaf's hint
// points at: the chunk header and the hinted slot, or in hardware
// mode the real slot entry (the Go chunk has no separate header
// line).
func (t *Tree) pfHint(h hintPos) {
	if t.hw {
		if h.slot >= 0 && h.slot < len(h.chunk.slots) {
			t.mem.Prefetch(uint64(uintptr(unsafe.Pointer(&h.chunk.slots[h.slot]))))
		}
		return
	}
	t.mem.Prefetch(h.chunk.addr)
	t.mem.Prefetch(h.chunk.slotAddr(h.slot))
}

// pfLeafHint prefetches the line holding a leaf's hint field.
func (t *Tree) pfLeafHint(leaf *node) {
	if t.hw {
		t.mem.Prefetch(uint64(uintptr(unsafe.Pointer(&leaf.hint))))
		return
	}
	t.mem.Prefetch(t.leafLay.hintAddr(leaf.addr))
}

// bufBase returns the real base address of a TID return buffer.
func bufBase(buf []TID) uintptr {
	if len(buf) == 0 {
		return 0
	}
	return uintptr(unsafe.Pointer(&buf[0]))
}

// pairBufBase returns the real base address of a Pair return buffer.
func pairBufBase(buf []Pair) uintptr {
	if len(buf) == 0 {
		return 0
	}
	return uintptr(unsafe.Pointer(&buf[0]))
}

// pfBuf prefetches sz bytes at offset off of the scanner's return
// buffer: the caller's real buffer in hardware mode (clamped to its
// length), the simulated region otherwise. Simulated offsets map
// one-to-one onto the real buffer — both are packed 4-byte TIDs or
// 8-byte Pairs.
func (s *Scanner) pfBuf(off, sz int) {
	t := s.t
	if t.hw {
		if s.bufReal == 0 {
			return
		}
		if off+sz > s.bufRealBytes {
			sz = s.bufRealBytes - off
		}
		if sz > 0 {
			t.mem.PrefetchRange(uint64(s.bufReal)+uint64(off), sz)
		}
		return
	}
	t.mem.PrefetchRange(s.bufAddr+uint64(off), sz)
}

// pfChunk prefetches all lines of an external jump-pointer array
// chunk (its real slot array in hardware mode).
func (t *Tree) pfChunk(ck *chunk) {
	if t.hw {
		if len(ck.slots) > 0 {
			t.mem.PrefetchRange(uint64(uintptr(unsafe.Pointer(&ck.slots[0]))), len(ck.slots)*int(unsafe.Sizeof((*node)(nil))))
		}
		return
	}
	t.mem.PrefetchRange(ck.addr, t.chunkBytes())
}

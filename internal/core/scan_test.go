package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// collectScan drains a scanner with the given buffer size.
func collectScan(s *Scanner, bufSize int) []TID {
	var out []TID
	buf := make([]TID, bufSize)
	for {
		n := s.Next(buf)
		if n == 0 {
			return out
		}
		out = append(out, buf[:n]...)
	}
}

func TestScanFullRange(t *testing.T) {
	for _, cfg := range testVariants() {
		t.Run(cfg.name(), func(t *testing.T) {
			tr := newTestTree(t, cfg)
			pairs := sortedPairs(3000)
			if err := tr.Bulkload(pairs, 1.0); err != nil {
				t.Fatal(err)
			}
			got := collectScan(tr.NewScan(0, MaxKey), 256)
			if len(got) != len(pairs) {
				t.Fatalf("scan returned %d pairs, want %d", len(got), len(pairs))
			}
			for i, tid := range got {
				if tid != pairs[i].TID {
					t.Fatalf("pair %d: tid %d, want %d", i, tid, pairs[i].TID)
				}
			}
		})
	}
}

func TestScanSubRange(t *testing.T) {
	for _, cfg := range testVariants() {
		tr := newTestTree(t, cfg)
		pairs := sortedPairs(2000)
		if err := tr.Bulkload(pairs, 0.8); err != nil {
			t.Fatal(err)
		}
		// Start and end on existing keys.
		got := collectScan(tr.NewScan(pairs[100].Key, pairs[199].Key), 64)
		if len(got) != 100 {
			t.Fatalf("%s: sub-range returned %d, want 100", tr.Name(), len(got))
		}
		if got[0] != pairs[100].TID || got[99] != pairs[199].TID {
			t.Fatalf("%s: wrong boundary tids", tr.Name())
		}
		// Start and end between keys.
		got = collectScan(tr.NewScan(pairs[100].Key+1, pairs[199].Key+1), 64)
		if len(got) != 99 {
			t.Fatalf("%s: between-keys range returned %d, want 99", tr.Name(), len(got))
		}
		if got[0] != pairs[101].TID {
			t.Fatalf("%s: wrong first tid for between-keys start", tr.Name())
		}
	}
}

func TestScanCountLimited(t *testing.T) {
	tr := newTestTree(t, Config{Width: 8, Prefetch: true, JumpArray: JumpExternal})
	pairs := sortedPairs(5000)
	if err := tr.Bulkload(pairs, 1.0); err != nil {
		t.Fatal(err)
	}
	if n := tr.Scan(pairs[10].Key, 1000); n != 1000 {
		t.Fatalf("Scan returned %d, want 1000", n)
	}
	// Near the end of the index the scan runs out of pairs.
	if n := tr.Scan(pairs[4990].Key, 1000); n != 10 {
		t.Fatalf("Scan at tail returned %d, want 10", n)
	}
}

func TestScanSegmented(t *testing.T) {
	for _, cfg := range []Config{
		{Width: 1},
		{Width: 8, Prefetch: true},
		{Width: 8, Prefetch: true, JumpArray: JumpExternal},
		{Width: 8, Prefetch: true, JumpArray: JumpInternal},
	} {
		tr := newTestTree(t, cfg)
		pairs := sortedPairs(4000)
		if err := tr.Bulkload(pairs, 0.9); err != nil {
			t.Fatal(err)
		}
		s := tr.NewScan(0, MaxKey)
		buf := make([]TID, 137) // deliberately not a multiple of the leaf size
		var got []TID
		calls := 0
		for {
			n := s.Next(buf)
			if n == 0 {
				break
			}
			calls++
			// Every call except the last must fill the buffer.
			got = append(got, buf[:n]...)
		}
		if len(got) != 4000 {
			t.Fatalf("%s: segmented scan got %d pairs", tr.Name(), len(got))
		}
		if calls != (4000+136)/137 {
			t.Fatalf("%s: %d calls", tr.Name(), calls)
		}
		for i, tid := range got {
			if tid != pairs[i].TID {
				t.Fatalf("%s: pair %d wrong", tr.Name(), i)
			}
		}
		// The scan stays exhausted.
		if s.Next(buf) != 0 {
			t.Fatalf("%s: exhausted scanner returned data", tr.Name())
		}
	}
}

func TestScanEmptyAndEdges(t *testing.T) {
	for _, cfg := range testVariants() {
		tr := newTestTree(t, cfg)
		// Empty tree.
		if got := collectScan(tr.NewScan(0, MaxKey), 8); len(got) != 0 {
			t.Fatalf("%s: scan of empty tree returned %d", tr.Name(), len(got))
		}
		tr.Insert(100, 1)
		// Start beyond every key.
		if got := collectScan(tr.NewScan(101, MaxKey), 8); len(got) != 0 {
			t.Fatalf("%s: scan past the end returned %d", tr.Name(), len(got))
		}
		// End before start yields nothing.
		if got := collectScan(tr.NewScan(100, 99), 8); len(got) != 0 {
			t.Fatalf("%s: inverted range returned %d", tr.Name(), len(got))
		}
		// Exact single-key range.
		if got := collectScan(tr.NewScan(100, 100), 8); len(got) != 1 || got[0] != 1 {
			t.Fatalf("%s: single-key range returned %v", tr.Name(), got)
		}
		// Zero-length buffer is a no-op.
		if tr.NewScan(0, MaxKey).Next(nil) != 0 {
			t.Fatalf("%s: nil buffer returned data", tr.Name())
		}
	}
}

// TestScanAfterUpdates interleaves updates with scans, so the
// jump-pointer structures are exercised in their updated state.
func TestScanAfterUpdates(t *testing.T) {
	for _, cfg := range []Config{
		{Width: 8, Prefetch: true, JumpArray: JumpExternal},
		{Width: 8, Prefetch: true, JumpArray: JumpInternal},
		{Width: 2, Prefetch: true, JumpArray: JumpExternal, ChunkLines: 1},
	} {
		tr := newTestTree(t, cfg)
		model := map[Key]TID{}
		r := rand.New(rand.NewSource(77))
		pairs := sortedPairs(1500)
		if err := tr.Bulkload(pairs, 1.0); err != nil {
			t.Fatal(err)
		}
		for _, p := range pairs {
			model[p.Key] = p.TID
		}
		for round := 0; round < 10; round++ {
			for i := 0; i < 300; i++ {
				k := Key(r.Intn(16000) + 1)
				if r.Intn(2) == 0 {
					tr.Insert(k, TID(k))
					model[k] = TID(k)
				} else {
					tr.Delete(k)
					delete(model, k)
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("%s round %d: %v", tr.Name(), round, err)
			}
			got := collectScan(tr.NewScan(0, MaxKey), 97)
			if len(got) != len(model) {
				t.Fatalf("%s round %d: scan %d pairs, model %d", tr.Name(), round, len(got), len(model))
			}
		}
	}
}

// TestQuickScanMatchesModel: scans over random trees and random ranges
// agree with a sorted-model computation.
func TestQuickScanMatchesModel(t *testing.T) {
	cfg := Config{Width: 8, Prefetch: true, JumpArray: JumpExternal}
	f := func(raw []uint16, lo, hi uint16) bool {
		tr := newTestTree(t, cfg)
		model := map[Key]TID{}
		for _, v := range raw {
			k := Key(v%4096) + 1
			tr.Insert(k, TID(k))
			model[k] = TID(k)
		}
		start, end := Key(lo%5000), Key(hi%5000)
		want := 0
		for k := range model {
			if k >= start && k <= end {
				want++
			}
		}
		got := collectScan(tr.NewScan(start, end), 50)
		return len(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestScanPrefetchDistances checks correctness is independent of k and
// chunk size (the Figure 16(c,d) parameter space).
func TestScanPrefetchDistances(t *testing.T) {
	for _, k := range []int{1, 2, 3, 4, 8, 16, 32} {
		for _, c := range []int{1, 2, 8, 32} {
			cfg := Config{Width: 8, Prefetch: true, JumpArray: JumpExternal,
				PrefetchDist: k, ChunkLines: c}
			tr := newTestTree(t, cfg)
			pairs := sortedPairs(2000)
			if err := tr.Bulkload(pairs, 1.0); err != nil {
				t.Fatal(err)
			}
			got := collectScan(tr.NewScan(0, MaxKey), 333)
			if len(got) != len(pairs) {
				t.Fatalf("k=%d c=%d: got %d pairs", k, c, len(got))
			}
		}
		cfg := Config{Width: 8, Prefetch: true, JumpArray: JumpInternal, PrefetchDist: k}
		tr := newTestTree(t, cfg)
		pairs := sortedPairs(2000)
		if err := tr.Bulkload(pairs, 1.0); err != nil {
			t.Fatal(err)
		}
		if got := collectScan(tr.NewScan(0, MaxKey), 333); len(got) != len(pairs) {
			t.Fatalf("internal k=%d: got %d pairs", k, len(got))
		}
	}
}

// TestNextPairsMatchesNext checks that the pair-returning scan yields
// exactly the keys and tupleIDs the tid-returning scan yields.
func TestNextPairsMatchesNext(t *testing.T) {
	for _, cfg := range testVariants() {
		tr := newTestTree(t, cfg)
		pairs := sortedPairs(2500)
		if err := tr.Bulkload(pairs, 0.8); err != nil {
			t.Fatal(err)
		}
		start, end := pairs[37].Key, pairs[2100].Key
		wantTIDs := collectScan(tr.NewScan(start, end), 64)

		var got []Pair
		s := tr.NewScan(start, end)
		buf := make([]Pair, 64)
		for {
			n := s.NextPairs(buf)
			if n == 0 {
				break
			}
			got = append(got, buf[:n]...)
		}
		if len(got) != len(wantTIDs) {
			t.Fatalf("%s: NextPairs returned %d, Next returned %d", tr.Name(), len(got), len(wantTIDs))
		}
		for i, p := range got {
			if p.TID != wantTIDs[i] {
				t.Fatalf("%s: pair %d: tid %d, want %d", tr.Name(), i, p.TID, wantTIDs[i])
			}
			if i > 0 && p.Key <= got[i-1].Key {
				t.Fatalf("%s: pair keys not strictly increasing at %d", tr.Name(), i)
			}
		}
	}
}

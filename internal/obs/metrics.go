package obs

import (
	"expvar"
	"fmt"
	"io"
	"math/bits"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pbtree/internal/core"
)

// numBuckets covers latencies from 1 ns to ~34 s in powers of two;
// slower observations land in the last bucket.
const numBuckets = 36

// Histogram is a lock-free latency histogram with power-of-two
// nanosecond buckets. Observe is safe for any number of concurrent
// goroutines and costs three atomic adds — cheap enough to leave on in
// a serving hot path (see BenchmarkMetricsObserve).
type Histogram struct {
	count   atomic.Uint64
	sumNS   atomic.Uint64
	buckets [numBuckets]atomic.Uint64
}

// bucketOf returns the bucket index of a latency: bucket b holds
// observations in [2^(b-1), 2^b) ns.
func bucketOf(ns uint64) int {
	b := bits.Len64(ns)
	if b >= numBuckets {
		b = numBuckets - 1
	}
	return b
}

// bucketUpperNS is the exclusive upper bound of bucket b in
// nanoseconds.
func bucketUpperNS(b int) uint64 { return uint64(1) << b }

// Observe records one latency.
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.buckets[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sumNS.Add(ns)
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Count   uint64
	SumNS   uint64
	Buckets [numBuckets]uint64
}

// Snapshot copies the counters. Buckets filled concurrently with the
// copy may be split across Count and Buckets by at most the in-flight
// observations — fine for monitoring.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.SumNS = h.sumNS.Load()
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Mean reports the mean observed latency.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNS / s.Count)
}

// Quantile reports the q-quantile (0 <= q <= 1) as the upper bound of
// the bucket that contains it — a conservative estimate within 2x.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen uint64
	for b, n := range s.Buckets {
		seen += n
		if seen > rank {
			return time.Duration(bucketUpperNS(b))
		}
	}
	return time.Duration(bucketUpperNS(numBuckets - 1))
}

// metricOps are the operations Metrics tracks, in exposition order.
var metricOps = []core.OpKind{core.OpSearch, core.OpInsert, core.OpDelete, core.OpScan}

// Metrics is the native-path serving metrics registry: one latency
// histogram (which doubles as a throughput counter) per index
// operation, plus the durability counters of the WAL + checkpoint
// layer. All methods are safe for concurrent use and nil-receiver
// safe, so instrumented code paths need no guards. It complements the
// simulator-side Collector: the simulator explains cycles, Metrics
// watches real wall-clock serving.
type Metrics struct {
	hists       [core.NumOps]Histogram
	stages      [core.NumOps][NumStages]Histogram
	stageTotals [core.NumOps]Histogram
	dur         durabilityCounters
	adm         admissionCounters
	repl        replicationCounters
	srv         serveCounters
	publishOnce sync.Once
}

// serveCounters tracks the serving data plane: worker-pool occupancy
// and streaming-scan cursor lifetime (DESIGN.md §15).
type serveCounters struct {
	poolBusy       atomic.Int64  // workers executing a request right now
	poolQueue      atomic.Int64  // tasks submitted but not yet picked up
	poolTasks      atomic.Uint64 // tasks executed since start
	cursorsOpen    atomic.Int64  // streaming-scan cursors currently open
	cursorsOpened  atomic.Uint64 // cursors ever opened
	cursorTimeouts atomic.Uint64 // cursors reclaimed by the idle reaper
}

// ServeSnapshot is a point-in-time copy of the serving data-plane
// counters.
type ServeSnapshot struct {
	PoolBusy       int64  `json:"pool_busy"`       // workers executing right now
	PoolQueue      int64  `json:"pool_queue"`      // tasks waiting for a worker
	PoolTasks      uint64 `json:"pool_tasks"`      // tasks executed since start
	CursorsOpen    int64  `json:"cursors_open"`    // streaming-scan cursors open
	CursorsOpened  uint64 `json:"cursors_opened"`  // cursors ever opened
	CursorTimeouts uint64 `json:"cursor_timeouts"` // cursors reclaimed idle
}

// PoolEnqueue records one task entering the worker-pool queue.
func (m *Metrics) PoolEnqueue() {
	if m == nil {
		return
	}
	m.srv.poolQueue.Add(1)
}

// PoolStart records one task leaving the queue and starting to
// execute.
func (m *Metrics) PoolStart() {
	if m == nil {
		return
	}
	m.srv.poolQueue.Add(-1)
	m.srv.poolBusy.Add(1)
	m.srv.poolTasks.Add(1)
}

// PoolDone records one task finishing execution.
func (m *Metrics) PoolDone() {
	if m == nil {
		return
	}
	m.srv.poolBusy.Add(-1)
}

// CursorOpened records one streaming-scan cursor opening.
func (m *Metrics) CursorOpened() {
	if m == nil {
		return
	}
	m.srv.cursorsOpen.Add(1)
	m.srv.cursorsOpened.Add(1)
}

// CursorClosed records one streaming-scan cursor closing (client
// close, exhaustion, connection teardown, or reaper timeout).
func (m *Metrics) CursorClosed() {
	if m == nil {
		return
	}
	m.srv.cursorsOpen.Add(-1)
}

// CursorTimedOut records one cursor reclaimed by the idle reaper (the
// reaper also calls CursorClosed for it).
func (m *Metrics) CursorTimedOut() {
	if m == nil {
		return
	}
	m.srv.cursorTimeouts.Add(1)
}

// Serve snapshots the serving data-plane counters.
func (m *Metrics) Serve() ServeSnapshot {
	if m == nil {
		return ServeSnapshot{}
	}
	return ServeSnapshot{
		PoolBusy:       m.srv.poolBusy.Load(),
		PoolQueue:      m.srv.poolQueue.Load(),
		PoolTasks:      m.srv.poolTasks.Load(),
		CursorsOpen:    m.srv.cursorsOpen.Load(),
		CursorsOpened:  m.srv.cursorsOpened.Load(),
		CursorTimeouts: m.srv.cursorTimeouts.Load(),
	}
}

// AdmissionClass indexes the serving layer's per-op-class admission
// budgets (DESIGN.md §10): cheap point ops and mutations each hold one
// token while executing, scans hold one token per requested row, so
// overload rejects expensive work first.
type AdmissionClass int

// The admission classes, in exposition order.
const (
	AdmRead  AdmissionClass = iota // GET / MGET point lookups
	AdmWrite                       // PUT / DEL mutations
	AdmScan                        // SCAN, metered in rows

	// NumAdmissionClasses is the number of admission classes.
	NumAdmissionClasses
)

// String names an admission class for metric labels.
func (c AdmissionClass) String() string {
	switch c {
	case AdmRead:
		return "read"
	case AdmWrite:
		return "write"
	case AdmScan:
		return "scan"
	}
	return "unknown"
}

// admissionClasses lists the classes in exposition order.
var admissionClasses = []AdmissionClass{AdmRead, AdmWrite, AdmScan}

// admissionCounters tracks token budget occupancy per class.
type admissionCounters struct {
	capacity [NumAdmissionClasses]atomic.Int64
	inUse    [NumAdmissionClasses]atomic.Int64
	rejects  [NumAdmissionClasses]atomic.Uint64
}

// AdmissionSnapshot is a point-in-time copy of one admission class.
type AdmissionSnapshot struct {
	Capacity int64  `json:"capacity"` // configured token budget
	InUse    int64  `json:"in_use"`   // tokens currently held
	Rejects  uint64 `json:"rejects"`  // requests turned away with retry
}

// AdmissionCapacity records the configured token budget of a class.
func (m *Metrics) AdmissionCapacity(c AdmissionClass, capacity int64) {
	if m == nil {
		return
	}
	m.adm.capacity[c].Store(capacity)
}

// AdmissionAcquire records n tokens entering use in a class.
func (m *Metrics) AdmissionAcquire(c AdmissionClass, n int64) {
	if m == nil {
		return
	}
	m.adm.inUse[c].Add(n)
}

// AdmissionRelease records n tokens leaving use in a class.
func (m *Metrics) AdmissionRelease(c AdmissionClass, n int64) {
	if m == nil {
		return
	}
	m.adm.inUse[c].Add(-n)
}

// AdmissionReject records one rejected request in a class.
func (m *Metrics) AdmissionReject(c AdmissionClass) {
	if m == nil {
		return
	}
	m.adm.rejects[c].Add(1)
}

// Admission snapshots one admission class.
func (m *Metrics) Admission(c AdmissionClass) AdmissionSnapshot {
	if m == nil {
		return AdmissionSnapshot{}
	}
	return AdmissionSnapshot{
		Capacity: m.adm.capacity[c].Load(),
		InUse:    m.adm.inUse[c].Load(),
		Rejects:  m.adm.rejects[c].Load(),
	}
}

// durabilityCounters tracks the WAL + checkpoint layer (DESIGN.md §9).
type durabilityCounters struct {
	walAppends    atomic.Uint64
	walBytes      atomic.Uint64
	fsyncs        atomic.Uint64
	checkpoints   atomic.Uint64
	checkpointErr atomic.Uint64
	replayed      atomic.Uint64
	recoveries    atomic.Uint64
	recoveryNS    atomic.Uint64
}

// DurabilitySnapshot is a point-in-time copy of the durability
// counters.
type DurabilitySnapshot struct {
	WALAppends      uint64 `json:"wal_appends"` // group commits written
	WALBytes        uint64 `json:"wal_bytes"`
	Fsyncs          uint64 `json:"fsyncs"`
	Checkpoints     uint64 `json:"checkpoints"`
	CheckpointErrs  uint64 `json:"checkpoint_errors"`
	ReplayedRecords uint64 `json:"replayed_records"` // WAL records replayed at recovery
	Recoveries      uint64 `json:"recoveries"`       // shard recoveries completed
	RecoveryMS      uint64 `json:"recovery_ms"`      // total wall time recovering
}

// WALAppend records one WAL group commit of n bytes.
func (m *Metrics) WALAppend(n int) {
	if m == nil {
		return
	}
	m.dur.walAppends.Add(1)
	m.dur.walBytes.Add(uint64(n))
}

// Fsync records one WAL or checkpoint fsync.
func (m *Metrics) Fsync() {
	if m == nil {
		return
	}
	m.dur.fsyncs.Add(1)
}

// Checkpoint records one checkpoint attempt.
func (m *Metrics) Checkpoint(err error) {
	if m == nil {
		return
	}
	if err != nil {
		m.dur.checkpointErr.Add(1)
		return
	}
	m.dur.checkpoints.Add(1)
}

// Recovery records one completed shard recovery.
func (m *Metrics) Recovery(d time.Duration, replayed uint64) {
	if m == nil {
		return
	}
	m.dur.recoveries.Add(1)
	m.dur.recoveryNS.Add(uint64(d))
	m.dur.replayed.Add(replayed)
}

// Durability snapshots the durability counters.
func (m *Metrics) Durability() DurabilitySnapshot {
	if m == nil {
		return DurabilitySnapshot{}
	}
	return DurabilitySnapshot{
		WALAppends:      m.dur.walAppends.Load(),
		WALBytes:        m.dur.walBytes.Load(),
		Fsyncs:          m.dur.fsyncs.Load(),
		Checkpoints:     m.dur.checkpoints.Load(),
		CheckpointErrs:  m.dur.checkpointErr.Load(),
		ReplayedRecords: m.dur.replayed.Load(),
		Recoveries:      m.dur.recoveries.Load(),
		RecoveryMS:      m.dur.recoveryNS.Load() / 1e6,
	}
}

// replicationCounters tracks the log-shipping subsystem (DESIGN.md
// §13): what a primary ships, what a follower applies, and how often
// fencing fires.
type replicationCounters struct {
	shippedRecords     atomic.Uint64
	shippedBytes       atomic.Uint64
	appliedRecords     atomic.Uint64
	snapshotsShipped   atomic.Uint64
	snapshotsInstalled atomic.Uint64
	fencedRejects      atomic.Uint64
}

// ReplicationSnapshot is a point-in-time copy of the replication
// counters.
type ReplicationSnapshot struct {
	ShippedRecords     uint64 `json:"shipped_records"`     // WAL records served to followers
	ShippedBytes       uint64 `json:"shipped_bytes"`       // WAL bytes served to followers
	AppliedRecords     uint64 `json:"applied_records"`     // shipped records durably applied locally
	SnapshotsShipped   uint64 `json:"snapshots_shipped"`   // checkpoint streams fully served
	SnapshotsInstalled uint64 `json:"snapshots_installed"` // checkpoint streams installed locally
	FencedRejects      uint64 `json:"fenced_rejects"`      // requests/appends rejected by epoch check
}

// ReplShip records WAL records served to a follower.
func (m *Metrics) ReplShip(records uint64, bytes int) {
	if m == nil {
		return
	}
	m.repl.shippedRecords.Add(records)
	m.repl.shippedBytes.Add(uint64(bytes))
}

// ReplApply records shipped WAL records durably applied on a follower.
func (m *Metrics) ReplApply(records uint64) {
	if m == nil {
		return
	}
	m.repl.appliedRecords.Add(records)
}

// ReplSnapshotShipped records one checkpoint stream fully served to a
// follower.
func (m *Metrics) ReplSnapshotShipped() {
	if m == nil {
		return
	}
	m.repl.snapshotsShipped.Add(1)
}

// ReplSnapshotInstalled records one checkpoint stream installed on a
// follower.
func (m *Metrics) ReplSnapshotInstalled() {
	if m == nil {
		return
	}
	m.repl.snapshotsInstalled.Add(1)
}

// ReplFencedReject records one replication request or local append
// rejected by the epoch fencing check.
func (m *Metrics) ReplFencedReject() {
	if m == nil {
		return
	}
	m.repl.fencedRejects.Add(1)
}

// Replication snapshots the replication counters.
func (m *Metrics) Replication() ReplicationSnapshot {
	if m == nil {
		return ReplicationSnapshot{}
	}
	return ReplicationSnapshot{
		ShippedRecords:     m.repl.shippedRecords.Load(),
		ShippedBytes:       m.repl.shippedBytes.Load(),
		AppliedRecords:     m.repl.appliedRecords.Load(),
		SnapshotsShipped:   m.repl.snapshotsShipped.Load(),
		SnapshotsInstalled: m.repl.snapshotsInstalled.Load(),
		FencedRejects:      m.repl.fencedRejects.Load(),
	}
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics { return &Metrics{} }

// Observe records one operation latency.
func (m *Metrics) Observe(op core.OpKind, d time.Duration) {
	m.hists[op].Observe(d)
}

// Time starts timing an operation; the returned func records the
// latency when called:
//
//	defer metrics.Time(pbtree.OpSearch)()
func (m *Metrics) Time(op core.OpKind) func() {
	start := time.Now()
	return func() { m.Observe(op, time.Since(start)) }
}

// Snapshot returns the histogram of one operation.
func (m *Metrics) Snapshot(op core.OpKind) HistogramSnapshot {
	return m.hists[op].Snapshot()
}

// writeHistogram writes one histogram series (bucket ladder + sum +
// count) under the given label set. The ladder is compact: only
// buckets that received observations are printed (cumulative counts
// stay monotone, and the +Inf bucket always closes the ladder).
func writeHistogram(w io.Writer, name, labels string, s HistogramSnapshot) error {
	var cum uint64
	for b := 0; b < numBuckets; b++ {
		cum += s.Buckets[b]
		if s.Buckets[b] == 0 {
			continue
		}
		le := strconv.FormatFloat(float64(bucketUpperNS(b))/1e9, 'g', -1, 64)
		if _, err := fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", name, labels, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, labels, s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, float64(s.SumNS)/1e9); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, s.Count)
	return err
}

// WritePrometheus writes the registry in the Prometheus text
// exposition format (version 0.0.4).
func (m *Metrics) WritePrometheus(w io.Writer) error {
	var snaps [core.NumOps]HistogramSnapshot
	for _, op := range metricOps {
		snaps[op] = m.hists[op].Snapshot()
	}

	if _, err := fmt.Fprint(w,
		"# HELP pbtree_op_latency_seconds Index operation latency.\n"+
			"# TYPE pbtree_op_latency_seconds histogram\n"); err != nil {
		return err
	}
	for _, op := range metricOps {
		if err := writeHistogram(w, "pbtree_op_latency_seconds",
			fmt.Sprintf("op=%q", op), snaps[op]); err != nil {
			return err
		}
	}

	// Request-lifecycle stage attribution (stage.go). Only (op, stage)
	// pairs that received observations are printed — a GET never emits
	// WAL-stage samples — but the HELP/TYPE headers always are, so
	// scrapers can discover the families on an idle server.
	if _, err := fmt.Fprint(w,
		"# HELP pbtree_stage_latency_seconds Per-request latency attributed to one serving pipeline stage.\n"+
			"# TYPE pbtree_stage_latency_seconds histogram\n"); err != nil {
		return err
	}
	for _, op := range stageOps {
		for st := Stage(0); st < NumStages; st++ {
			s := m.stages[op][st].Snapshot()
			if s.Count == 0 {
				continue
			}
			if err := writeHistogram(w, "pbtree_stage_latency_seconds",
				fmt.Sprintf("op=%q,stage=%q", op, st), s); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprint(w,
		"# HELP pbtree_request_latency_seconds End-to-end server-side request latency (frame decoded through response written).\n"+
			"# TYPE pbtree_request_latency_seconds histogram\n"); err != nil {
		return err
	}
	for _, op := range stageOps {
		s := m.stageTotals[op].Snapshot()
		if s.Count == 0 {
			continue
		}
		if err := writeHistogram(w, "pbtree_request_latency_seconds",
			fmt.Sprintf("op=%q", op), s); err != nil {
			return err
		}
	}

	if _, err := fmt.Fprint(w,
		"# HELP pbtree_ops_total Index operations served.\n"+
			"# TYPE pbtree_ops_total counter\n"); err != nil {
		return err
	}
	for _, op := range metricOps {
		if _, err := fmt.Fprintf(w, "pbtree_ops_total{op=%q} %d\n", op, snaps[op].Count); err != nil {
			return err
		}
	}

	for _, g := range []struct {
		name, help, typ string
		v               func(AdmissionClass) any
	}{
		{"pbtree_admission_capacity", "Configured admission token budget.", "gauge",
			func(c AdmissionClass) any { return m.Admission(c).Capacity }},
		{"pbtree_admission_tokens_in_use", "Admission tokens currently held.", "gauge",
			func(c AdmissionClass) any { return m.Admission(c).InUse }},
		{"pbtree_admission_rejects_total", "Requests rejected by the admission budget.", "counter",
			func(c AdmissionClass) any { return m.Admission(c).Rejects }},
	} {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", g.name, g.help, g.name, g.typ); err != nil {
			return err
		}
		for _, c := range admissionClasses {
			if _, err := fmt.Fprintf(w, "%s{class=%q} %d\n", g.name, c, g.v(c)); err != nil {
				return err
			}
		}
	}

	d := m.Durability()
	for _, c := range []struct {
		name, help string
		v          uint64
	}{
		{"pbtree_wal_appends_total", "WAL group commits written.", d.WALAppends},
		{"pbtree_wal_bytes_total", "WAL bytes written.", d.WALBytes},
		{"pbtree_fsyncs_total", "WAL and checkpoint fsyncs.", d.Fsyncs},
		{"pbtree_checkpoints_total", "Checkpoints completed.", d.Checkpoints},
		{"pbtree_checkpoint_errors_total", "Checkpoint attempts that failed.", d.CheckpointErrs},
		{"pbtree_wal_replayed_records_total", "WAL records replayed during recovery.", d.ReplayedRecords},
		{"pbtree_recoveries_total", "Shard recoveries completed.", d.Recoveries},
		{"pbtree_recovery_ms_total", "Total wall-clock milliseconds spent recovering.", d.RecoveryMS},
	} {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			c.name, c.help, c.name, c.name, c.v); err != nil {
			return err
		}
	}

	sv := m.Serve()
	for _, c := range []struct {
		name, help, typ string
		v               int64
	}{
		{"pbtree_pool_workers_busy", "Worker-pool workers executing a request.", "gauge", sv.PoolBusy},
		{"pbtree_pool_queue_depth", "Worker-pool tasks waiting for a worker.", "gauge", sv.PoolQueue},
		{"pbtree_pool_tasks_total", "Worker-pool tasks executed.", "counter", int64(sv.PoolTasks)},
		{"pbtree_scan_cursors_open", "Streaming-scan cursors currently open.", "gauge", sv.CursorsOpen},
		{"pbtree_scan_cursors_opened_total", "Streaming-scan cursors ever opened.", "counter", int64(sv.CursorsOpened)},
		{"pbtree_scan_cursor_timeouts_total", "Streaming-scan cursors reclaimed idle.", "counter", int64(sv.CursorTimeouts)},
	} {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n",
			c.name, c.help, c.name, c.typ, c.name, c.v); err != nil {
			return err
		}
	}

	r := m.Replication()
	for _, c := range []struct {
		name, help string
		v          uint64
	}{
		{"pbtree_repl_shipped_records_total", "WAL records served to replication followers.", r.ShippedRecords},
		{"pbtree_repl_shipped_bytes_total", "WAL bytes served to replication followers.", r.ShippedBytes},
		{"pbtree_repl_applied_records_total", "Shipped WAL records durably applied locally.", r.AppliedRecords},
		{"pbtree_repl_snapshots_shipped_total", "Checkpoint streams fully served to followers.", r.SnapshotsShipped},
		{"pbtree_repl_snapshots_installed_total", "Checkpoint streams installed locally.", r.SnapshotsInstalled},
		{"pbtree_repl_fenced_rejects_total", "Replication requests and appends rejected by the epoch fence.", r.FencedRejects},
	} {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			c.name, c.help, c.name, c.name, c.v); err != nil {
			return err
		}
	}
	return nil
}

// Handler returns an HTTP handler serving the Prometheus text format,
// mountable next to net/http/pprof on a debug mux.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = m.WritePrometheus(w)
	})
}

// expvarSnapshot is the JSON shape published by PublishExpvar.
type expvarSnapshot struct {
	Count  uint64 `json:"count"`
	MeanNS uint64 `json:"mean_ns"`
	P50NS  uint64 `json:"p50_ns"`
	P99NS  uint64 `json:"p99_ns"`
	SumNS  uint64 `json:"sum_ns"`
}

// expvarOf summarizes one histogram snapshot for the expvar payload.
func expvarOf(s HistogramSnapshot) expvarSnapshot {
	return expvarSnapshot{
		Count:  s.Count,
		MeanNS: uint64(s.Mean()),
		P50NS:  uint64(s.Quantile(0.5)),
		P99NS:  uint64(s.Quantile(0.99)),
		SumNS:  s.SumNS,
	}
}

// PublishExpvar registers the registry under the given expvar name
// (e.g. "pbtree"), exposing per-op count/mean/p50/p99 via the standard
// /debug/vars endpoint. Safe to call more than once on the same
// Metrics; the name must be unique per process, as usual for expvar.
func (m *Metrics) PublishExpvar(name string) {
	m.publishOnce.Do(func() {
		expvar.Publish(name, expvar.Func(func() any {
			out := map[string]any{}
			for _, op := range metricOps {
				out[op.String()] = expvarOf(m.Snapshot(op))
			}
			adm := map[string]AdmissionSnapshot{}
			for _, c := range admissionClasses {
				adm[c.String()] = m.Admission(c)
			}
			out["admission"] = adm
			out["durability"] = m.Durability()
			out["replication"] = m.Replication()
			out["serve"] = m.Serve()
			stages := map[string]map[string]expvarSnapshot{}
			for _, op := range stageOps {
				perOp := map[string]expvarSnapshot{}
				for st := Stage(0); st < NumStages; st++ {
					s := m.stages[op][st].Snapshot()
					if s.Count == 0 {
						continue
					}
					perOp[st.String()] = expvarOf(s)
				}
				if t := m.stageTotals[op].Snapshot(); t.Count > 0 {
					perOp["total"] = expvarOf(t)
				}
				if len(perOp) > 0 {
					stages[op.String()] = perOp
				}
			}
			out["stages"] = stages
			return out
		}))
	})
}

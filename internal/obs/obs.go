// Package obs is the observability layer of the repository. It turns
// the raw event streams of the other layers into explanations:
//
//   - Collector joins the memsys.Probe event stream of a simulated
//     Hierarchy with the core.Tracer operation-context stream of a
//     Tree, and aggregates misses and stall cycles into per-operation,
//     per-tree-level, per-node-kind tables — the per-level analogue of
//     the paper's execution-time breakdown figures.
//   - TraceWriter dumps the same joined stream as a Chrome-trace
//     JSON file (load it at chrome://tracing or ui.perfetto.dev).
//   - Metrics is the native-path serving side: lock-free per-operation
//     latency histograms and throughput counters with expvar and
//     Prometheus text exposition.
//
// Everything here is observation only: probes and tracers charge
// nothing to the memory model, so simulated cycle counts are
// byte-identical with and without them attached.
package obs

import (
	"fmt"
	"sort"

	"pbtree/internal/core"
	"pbtree/internal/memsys"
)

// Cell is the counter set of one (operation, level, kind) attribution
// bucket.
type Cell struct {
	L1Hits      uint64
	L2Hits      uint64
	MemMisses   uint64
	PFHits      uint64
	PFIssues    uint64
	StallCycles uint64
}

// add merges a memory event into the cell.
func (c *Cell) add(e memsys.Event) {
	switch e.Kind {
	case memsys.EvL1Hit:
		c.L1Hits++
	case memsys.EvL2Hit:
		c.L2Hits++
	case memsys.EvMemMiss:
		c.MemMisses++
	case memsys.EvPrefetchHit:
		c.PFHits++
	case memsys.EvPrefetchIssue:
		c.PFIssues++
	}
	c.StallCycles += e.Stall
}

// Row is one attributed line of a Collector report.
type Row struct {
	Op    core.OpKind
	Level int // 0 = root, core.LevelNone = outside the tree
	Kind  core.NodeKind
	Cell
}

// key identifies an attribution bucket.
type key struct {
	op    core.OpKind
	level int
	kind  core.NodeKind
}

// Collector attributes memory-hierarchy events to the operation and
// node context announced by a core.Tracer. Attach the same Collector
// as both the hierarchy's probe (SetProbe) and the tree's tracer
// (Config.Trace); it is single-threaded, like the Hierarchy it
// observes.
type Collector struct {
	cur    key
	cells  map[key]*Cell
	events uint64
}

// NewCollector returns an empty collector, ready to attach.
func NewCollector() *Collector {
	return &Collector{
		cur:   key{op: core.OpNone, level: core.LevelNone, kind: core.KindOther},
		cells: map[key]*Cell{},
	}
}

// MemEvent implements memsys.Probe: the event is charged to the
// current (operation, level, kind) context.
func (c *Collector) MemEvent(e memsys.Event) {
	c.events++
	cell := c.cells[c.cur]
	if cell == nil {
		cell = &Cell{}
		c.cells[c.cur] = cell
	}
	cell.add(e)
}

// BeginOp implements core.Tracer.
func (c *Collector) BeginOp(op core.OpKind) {
	c.cur = key{op: op, level: core.LevelNone, kind: core.KindOther}
}

// EndOp implements core.Tracer.
func (c *Collector) EndOp(core.OpKind) {
	c.cur = key{op: core.OpNone, level: core.LevelNone, kind: core.KindOther}
}

// Node implements core.Tracer.
func (c *Collector) Node(level int, kind core.NodeKind) {
	c.cur.level, c.cur.kind = level, kind
}

// Events reports how many memory events the collector has seen.
func (c *Collector) Events() uint64 { return c.events }

// Reset clears all buckets (for example after a bulkload, whose
// traffic is rarely interesting) without detaching the collector.
func (c *Collector) Reset() {
	c.cells = map[key]*Cell{}
	c.events = 0
}

// TotalStall reports the summed stall cycles across all buckets. On a
// run observed end to end it equals Stats.Stall of the hierarchy.
func (c *Collector) TotalStall() uint64 {
	var total uint64
	for _, cell := range c.cells {
		total += cell.StallCycles
	}
	return total
}

// Rows returns the attribution table, sorted by operation, then level
// (tree levels first, LevelNone last), then kind.
func (c *Collector) Rows() []Row {
	rows := make([]Row, 0, len(c.cells))
	for k, cell := range c.cells {
		rows = append(rows, Row{Op: k.op, Level: k.level, Kind: k.kind, Cell: *cell})
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		al, bl := a.Level, b.Level
		if al == core.LevelNone {
			al = 1 << 30 // outside-the-tree rows sort last
		}
		if bl == core.LevelNone {
			bl = 1 << 30
		}
		if al != bl {
			return al < bl
		}
		return a.Kind < b.Kind
	})
	return rows
}

// LevelLabel formats an attribution level for display.
func LevelLabel(level int) string {
	if level == core.LevelNone {
		return "-"
	}
	return fmt.Sprintf("%d", level)
}

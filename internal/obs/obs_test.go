package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"pbtree/internal/core"
	"pbtree/internal/memsys"
)

// buildObserved bulkloads a p8eB+-Tree on a simulated hierarchy with
// the given probe/tracer attached and runs a mixed workload: searches,
// a scan, inserts and deletes.
func buildObserved(t *testing.T, probe memsys.Probe, trace core.Tracer, reset func()) *core.Tree {
	t.Helper()
	h := memsys.Default()
	h.SetProbe(probe)
	tr := core.MustNew(core.Config{
		Width: 8, Prefetch: true, JumpArray: core.JumpExternal,
		Mem: h, Trace: trace,
	})
	const n = 20_000
	pairs := make([]core.Pair, n)
	for i := range pairs {
		pairs[i] = core.Pair{Key: core.Key(2 * (i + 1)), TID: core.TID(i + 1)}
	}
	if err := tr.Bulkload(pairs, 0.8); err != nil {
		t.Fatal(err)
	}
	h.ResetStats()
	if reset != nil {
		reset()
	}

	for k := core.Key(2); k < 2_000; k += 2 {
		if _, ok := tr.Search(k); !ok {
			t.Fatalf("lost key %d", k)
		}
	}
	if got := tr.Scan(2, 5_000); got != 5_000 {
		t.Fatalf("scan returned %d", got)
	}
	for k := core.Key(1); k < 1_000; k += 2 {
		tr.Insert(k, core.TID(k))
	}
	for k := core.Key(1); k < 1_000; k += 2 {
		if !tr.Delete(k) {
			t.Fatalf("lost inserted key %d", k)
		}
	}
	return tr
}

// TestCollectorAttribution checks the end-to-end attribution: every
// stall cycle of the hierarchy lands in exactly one bucket, all four
// operations appear, tree levels cover root..leaf, and chunk traffic
// is attributed outside the tree.
func TestCollectorAttribution(t *testing.T) {
	col := NewCollector()
	tr := buildObserved(t, col, col, col.Reset)
	stats := tr.Mem().Stats()

	if col.Events() == 0 {
		t.Fatal("collector saw no events")
	}
	if got, want := col.TotalStall(), stats.Stall; got != want {
		t.Errorf("attributed stall %d != hierarchy stall %d", got, want)
	}

	var misses, l1, l2, pfh, pfi uint64
	ops := map[core.OpKind]bool{}
	kinds := map[core.NodeKind]bool{}
	levels := map[int]bool{}
	for _, r := range col.Rows() {
		misses += r.MemMisses
		l1 += r.L1Hits
		l2 += r.L2Hits
		pfh += r.PFHits
		pfi += r.PFIssues
		ops[r.Op] = true
		kinds[r.Kind] = true
		levels[r.Level] = true
	}
	if misses != stats.MemMisses || l1 != stats.L1Hits || l2 != stats.L2Hits ||
		pfh != stats.PFHits || pfi != stats.Prefetch {
		t.Errorf("counter totals diverge from hierarchy stats:\nrows  l1=%d l2=%d mem=%d pfh=%d pfi=%d\nstats %v",
			l1, l2, misses, pfh, pfi, stats)
	}
	for _, op := range []core.OpKind{core.OpSearch, core.OpInsert, core.OpDelete, core.OpScan} {
		if !ops[op] {
			t.Errorf("no rows attributed to %s", op)
		}
	}
	for _, k := range []core.NodeKind{core.KindNonLeaf, core.KindLeaf, core.KindChunk, core.KindBuffer} {
		if !kinds[k] {
			t.Errorf("no rows attributed to node kind %s", k)
		}
	}
	for lvl := 0; lvl < tr.Height(); lvl++ {
		if !levels[lvl] {
			t.Errorf("no rows attributed to tree level %d (height %d)", lvl, tr.Height())
		}
	}
	if !levels[core.LevelNone] {
		t.Error("no rows attributed outside the tree (chunks/buffers)")
	}
}

// TestCollectorRowOrder checks the report ordering contract.
func TestCollectorRowOrder(t *testing.T) {
	col := NewCollector()
	buildObserved(t, col, col, col.Reset)
	rows := col.Rows()
	for i := 1; i < len(rows); i++ {
		a, b := rows[i-1], rows[i]
		if a.Op > b.Op {
			t.Fatalf("rows unsorted by op at %d: %v after %v", i, b.Op, a.Op)
		}
		if a.Op == b.Op && a.Level != core.LevelNone && b.Level != core.LevelNone && a.Level > b.Level {
			t.Fatalf("rows unsorted by level at %d", i)
		}
		if a.Op == b.Op && a.Level == core.LevelNone && b.Level != core.LevelNone {
			t.Fatalf("LevelNone row sorted before tree level at %d", i)
		}
	}
}

// TestTraceWriterProducesValidChromeTrace loads the dump back as JSON
// and checks the event stream shape.
func TestTraceWriterProducesValidChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	buildObserved(t, tw, tw, nil)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("empty trace")
	}
	phases := map[string]int{}
	names := map[string]int{}
	for _, e := range events {
		ph, _ := e["ph"].(string)
		phases[ph]++
		name, _ := e["name"].(string)
		names[name]++
		if ph == "" || name == "" {
			t.Fatalf("malformed event %v", e)
		}
	}
	if phases["B"] == 0 || phases["E"] == 0 {
		t.Errorf("no operation B/E slices: %v", phases)
	}
	if phases["B"] != phases["E"] {
		t.Errorf("unbalanced B/E slices: %v", phases)
	}
	if phases["X"] == 0 {
		t.Errorf("no stall slices: %v", phases)
	}
	if names["mem-miss"] == 0 || names["search"] == 0 {
		t.Errorf("missing expected event names: %v", names)
	}
	if names["l1-hit"] != 0 {
		t.Errorf("zero-stall L1 hits should be suppressed by default, got %d", names["l1-hit"])
	}
}

package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"pbtree/internal/core"
	"pbtree/internal/memsys"
)

// TraceWriter dumps the joined probe + tracer stream in the Chrome
// trace-event JSON array format, loadable at chrome://tracing or
// ui.perfetto.dev. Timestamps are simulated cycles (the viewer labels
// them microseconds; read "1 µs" as "1 cycle").
//
// Memory events with a stall appear as complete ("X") slices spanning
// the stall interval, annotated with the address and the attribution
// context; operations appear as begin/end ("B"/"E") slices. Zero-stall
// L1 hits are suppressed by default — they dominate event counts while
// carrying no time — set IncludeHits(true) to keep them as instant
// events.
//
// Attach a TraceWriter as both the hierarchy's probe and the tree's
// tracer, then Close it to terminate the JSON array.
type TraceWriter struct {
	w    *bufio.Writer
	n    int  // events written
	hits bool // include zero-stall L1 hits
	err  error

	lastCycle uint64 // clock of the most recent memory event
	op        core.OpKind
	level     int
	kind      core.NodeKind
}

// NewTraceWriter starts a trace on w. The caller keeps ownership of w
// and closes it (if applicable) after Close.
func NewTraceWriter(w io.Writer) *TraceWriter {
	tw := &TraceWriter{w: bufio.NewWriter(w), level: core.LevelNone}
	_, tw.err = tw.w.WriteString("[")
	return tw
}

// IncludeHits controls whether zero-stall L1 hits are emitted
// (default false).
func (tw *TraceWriter) IncludeHits(on bool) { tw.hits = on }

// traceEvent is one Chrome trace-event object.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  *uint64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

func (tw *TraceWriter) write(ev traceEvent) {
	if tw.err != nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		tw.err = err
		return
	}
	if tw.n > 0 {
		if _, tw.err = tw.w.WriteString(",\n"); tw.err != nil {
			return
		}
	}
	if _, tw.err = tw.w.Write(b); tw.err != nil {
		return
	}
	tw.n++
}

// MemEvent implements memsys.Probe.
func (tw *TraceWriter) MemEvent(e memsys.Event) {
	tw.lastCycle = e.Cycle
	if e.Stall == 0 && e.Kind == memsys.EvL1Hit && !tw.hits {
		return
	}
	ev := traceEvent{
		Name: e.Kind.String(),
		Ph:   "i", // instant
		Ts:   e.Cycle,
		Pid:  1,
		Tid:  1,
		Args: map[string]any{
			"addr":  fmt.Sprintf("%#x", e.Addr),
			"op":    tw.op.String(),
			"level": LevelLabel(tw.level),
			"kind":  tw.kind.String(),
		},
	}
	if e.Stall > 0 {
		stall := e.Stall
		ev.Ph = "X" // complete slice spanning the stall
		ev.Ts = e.Cycle - e.Stall
		ev.Dur = &stall
	}
	tw.write(ev)
}

// BeginOp implements core.Tracer.
func (tw *TraceWriter) BeginOp(op core.OpKind) {
	tw.op, tw.level, tw.kind = op, core.LevelNone, core.KindOther
	tw.write(traceEvent{Name: op.String(), Ph: "B", Ts: tw.lastCycle, Pid: 1, Tid: 1})
}

// EndOp implements core.Tracer.
func (tw *TraceWriter) EndOp(op core.OpKind) {
	tw.op, tw.level, tw.kind = core.OpNone, core.LevelNone, core.KindOther
	tw.write(traceEvent{Name: op.String(), Ph: "E", Ts: tw.lastCycle, Pid: 1, Tid: 1})
}

// Node implements core.Tracer.
func (tw *TraceWriter) Node(level int, kind core.NodeKind) {
	tw.level, tw.kind = level, kind
}

// Slice writes one complete ("X") slice with an explicit timeline
// position — the request-lifecycle exporter's hook: the serving layer
// renders each request's stage breakdown as back-to-back slices on
// its connection's timeline (ts/dur in microseconds; pid groups
// processes, tid selects the timeline row). Unlike the probe/tracer
// methods it does not consult the simulated clock. Not safe for
// concurrent use; callers serialize (the serving layer holds its
// slow-path lock).
func (tw *TraceWriter) Slice(name string, pid, tid int, tsUS, durUS uint64, args map[string]any) {
	dur := durUS
	tw.write(traceEvent{
		Name: name,
		Ph:   "X",
		Ts:   tsUS,
		Dur:  &dur,
		Pid:  pid,
		Tid:  tid,
		Args: args,
	})
}

// Events reports how many trace events have been written.
func (tw *TraceWriter) Events() int { return tw.n }

// Close terminates the JSON array and flushes. The trace is not
// loadable before Close.
func (tw *TraceWriter) Close() error {
	if tw.err == nil {
		_, tw.err = tw.w.WriteString("]\n")
	}
	if err := tw.w.Flush(); tw.err == nil {
		tw.err = err
	}
	return tw.err
}

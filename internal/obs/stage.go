package obs

// Request-lifecycle stage attribution for the serving pipeline.
//
// The paper's core method is attribution: decompose each operation
// into named components to find where the time actually goes. The
// simulator side does that in cycles (Collector, the per-level stall
// tables); this file does it one layer up, in wall-clock nanoseconds,
// for the serving pipeline: every request carries a Span that is
// stamped at fixed pipeline stages (decode, admission, batcher wait,
// shard-queue wait, WAL append, WAL fsync, backend apply, ...), and
// the per-stage deltas feed per-stage × per-op-class Histograms in
// Metrics. The instrumentation is allocation-free past the pooled
// Span itself: a stage stamp is one monotonic clock read plus one
// atomic add.

import (
	"sync/atomic"
	"time"

	"pbtree/internal/core"
)

// Stage identifies one fixed point of the serving pipeline that a
// request passes through. The stages are ordered as a request
// experiences them; per-stage latency histograms are keyed by
// (operation class, stage).
type Stage int

// The pipeline stages, in request order (DESIGN.md §12).
const (
	// StageRead is the connection-frame read. It includes the time
	// spent waiting for the client to send anything at all, so it is
	// recorded for queue-depth diagnosis but excluded from the
	// request's server-side total and the attribution table.
	StageRead Stage = iota

	// StageDecode is wire-frame decoding.
	StageDecode

	// StageAdmission is the admission-control gate (token acquisition;
	// with the lock-free budgets this measures CAS contention).
	StageAdmission

	// StageBatchWait is the cross-request GET batcher: rendezvous with
	// the shard gatherer, the linger window, and the group search
	// itself, up to the reply.
	StageBatchWait

	// StageQueueWait is the time a mutation sat in its shard's
	// mutation queue before the shard writer picked it up.
	StageQueueWait

	// StageWALAppend is the WAL group-commit write (buffer build +
	// file write), excluding the fsync.
	StageWALAppend

	// StageWALFsync is the WAL fsync of the request's group commit.
	StageWALFsync

	// StageApply is the storage engine applying the mutation batch and
	// publishing the snapshot that makes it visible, plus the
	// acknowledgement propagating back to the requesting goroutine
	// (the requester attributes the unstamped residual of the blocking
	// store call here — see Span.StoreStagesNS).
	StageApply

	// StageExec is read-path execution outside the batcher: direct
	// snapshot lookups, MGET group searches, scans and merges.
	StageExec

	// StageRespQueue is the wait in the response-writer queue of a
	// pipelined (protocol v2) connection: from request completion to
	// the writer goroutine picking the response up.
	StageRespQueue

	// StageWrite is response encoding plus the connection write (and
	// the flush, when this response triggered one).
	StageWrite

	// StageOther is the unattributed remainder: the request's
	// server-side total minus every named stage. Computed at span
	// finalization, clamped at zero (cross-shard stage times are
	// summed, so a multi-shard write's named stages can legitimately
	// exceed its wall-clock total). A large StageOther means the
	// instrumentation is missing a stage.
	StageOther

	// NumStages is the number of lifecycle stages, for dense tables.
	NumStages
)

// stageNames are the metric label values, in Stage order.
var stageNames = [NumStages]string{
	"read", "decode", "admission", "batch_wait", "queue_wait",
	"wal_append", "wal_fsync", "apply", "exec", "resp_queue",
	"write", "other",
}

// String returns the stage's metric label ("decode", "wal_fsync", ...).
func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// Stages lists every lifecycle stage in pipeline order.
func Stages() []Stage {
	out := make([]Stage, NumStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// spanBase anchors Nanotime: time.Since reads only the monotonic
// clock, so deltas are immune to wall-clock steps.
var spanBase = time.Now()

// Nanotime returns monotonic nanoseconds since process start — the
// span clock. It is a single monotonic clock read with no allocation.
func Nanotime() int64 { return int64(time.Since(spanBase)) }

// Span is the lifecycle record of one request: a start timestamp and
// one accumulated nanosecond delta per stage. The request-owning
// goroutine advances the clock with Mark/Touch; pipeline actors on
// other goroutines (the shard writer stamping queue/WAL/apply time)
// add deltas with Add, which is atomic — a multi-shard write is
// stamped by several shard writers concurrently. Spans are pooled by
// the serving layer; zero-value Spans are ready after Begin.
type Span struct {
	// Op is the request's operation class (OpSearch, OpInsert,
	// OpDelete, OpScan). OpNone marks a span that should be discarded
	// unobserved (control-plane ops, rejected requests).
	Op core.OpKind

	// Conn is the serving connection's sequence number, used as the
	// trace timeline ID.
	Conn uint64

	// Req is the wire request ID (0 on protocol v1).
	Req uint32

	start  int64
	last   int64
	stages [NumStages]int64
}

// Begin starts the span clock at now (a Nanotime value). The
// server-side total is measured from here, so callers Begin after the
// request frame is read.
func (s *Span) Begin(now int64) {
	s.Op = core.OpNone
	s.Conn, s.Req = 0, 0
	s.start, s.last = now, now
	for i := range s.stages {
		s.stages[i] = 0
	}
}

// Mark attributes the time since the previous mark (or Begin) to st
// and advances the clock. Single-goroutine use only — the owning
// goroutine's sequential stage boundaries.
func (s *Span) Mark(st Stage) {
	now := Nanotime()
	atomic.AddInt64(&s.stages[st], now-s.last)
	s.last = now
}

// Touch advances the clock without attributing the elapsed time to
// any stage — used after a blocking call whose components were
// already stamped by another goroutine via Add (the shard writer),
// so Mark on the next boundary does not double-count them.
func (s *Span) Touch() { s.last = Nanotime() }

// Add atomically attributes ns nanoseconds to st without touching the
// clock. Safe from any goroutine.
func (s *Span) Add(st Stage, ns int64) {
	if ns > 0 {
		atomic.AddInt64(&s.stages[st], ns)
	}
}

// StageNS reads the accumulated nanoseconds of one stage.
func (s *Span) StageNS(st Stage) int64 {
	return atomic.LoadInt64(&s.stages[st])
}

// StoreStagesNS sums the writer-stamped store stages (queue wait, WAL
// append, WAL fsync, apply). The serving layer samples it around a
// blocking store call: the call's elapsed time minus the growth of
// this sum is the coordination residual (ack wakeup latency), which
// it folds into StageApply so write attribution stays complete.
func (s *Span) StoreStagesNS() int64 {
	return atomic.LoadInt64(&s.stages[StageQueueWait]) +
		atomic.LoadInt64(&s.stages[StageWALAppend]) +
		atomic.LoadInt64(&s.stages[StageWALFsync]) +
		atomic.LoadInt64(&s.stages[StageApply])
}

// StartNS reports the span's Begin timestamp (a Nanotime value).
func (s *Span) StartNS() int64 { return s.start }

// Finalize closes the span: the server-side total is the clock's
// current position minus Begin, and the unattributed remainder
// (total minus every named stage except StageRead) is recorded as
// StageOther. It returns the total. Call after the last Mark.
func (s *Span) Finalize() int64 {
	total := s.last - s.start
	var named int64
	for st := StageDecode; st < StageOther; st++ {
		named += atomic.LoadInt64(&s.stages[st])
	}
	if other := total - named; other > 0 {
		atomic.AddInt64(&s.stages[StageOther], other)
	}
	return total
}

// stageOps are the operation classes with lifecycle histograms, in
// exposition order (identical to metricOps).
var stageOps = metricOps

// ObserveSpan feeds a finalized span into the per-stage histograms
// and the op's end-to-end server-side total histogram. Stages with no
// accumulated time are skipped, so a GET never touches the WAL
// histograms. total is Finalize's return value.
func (m *Metrics) ObserveSpan(sp *Span, total int64) {
	if m == nil || sp.Op == core.OpNone {
		return
	}
	for st := Stage(0); st < NumStages; st++ {
		if ns := sp.StageNS(st); ns > 0 {
			m.stages[sp.Op][st].Observe(time.Duration(ns))
		}
	}
	m.stageTotals[sp.Op].Observe(time.Duration(total))
}

// ObserveStage records one stage latency directly (tests and offline
// tools; the serving path uses ObserveSpan).
func (m *Metrics) ObserveStage(op core.OpKind, st Stage, d time.Duration) {
	if m == nil {
		return
	}
	m.stages[op][st].Observe(d)
}

// StageSnapshot copies one (op, stage) histogram.
func (m *Metrics) StageSnapshot(op core.OpKind, st Stage) HistogramSnapshot {
	if m == nil {
		return HistogramSnapshot{}
	}
	return m.stages[op][st].Snapshot()
}

// StageTotalSnapshot copies one op's end-to-end server-side latency
// histogram (request frame decoded through response written).
func (m *Metrics) StageTotalSnapshot(op core.OpKind) HistogramSnapshot {
	if m == nil {
		return HistogramSnapshot{}
	}
	return m.stageTotals[op].Snapshot()
}

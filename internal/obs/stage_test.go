package obs

import (
	"bufio"
	"strconv"
	"strings"
	"testing"
	"time"

	"pbtree/internal/core"
)

func TestQuantileEdgeCases(t *testing.T) {
	var empty HistogramSnapshot
	for _, q := range []float64{0, 0.5, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}

	// A single observation: every quantile lands in its bucket.
	var h Histogram
	h.Observe(100 * time.Nanosecond) // bucket upper bound 128ns
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 128*time.Nanosecond {
			t.Errorf("single-sample Quantile(%v) = %v, want 128ns", q, got)
		}
	}

	// q=0 is the first occupied bucket, q=1 the last, even with a
	// rank exactly at Count (clamped to Count-1).
	var h2 Histogram
	h2.Observe(1 * time.Nanosecond)
	h2.Observe(time.Second)
	s2 := h2.Snapshot()
	if got := s2.Quantile(0); got != 2*time.Nanosecond {
		t.Errorf("Quantile(0) = %v, want the 2ns bucket bound", got)
	}
	if got := s2.Quantile(1); got < time.Second {
		t.Errorf("Quantile(1) = %v, want >= 1s", got)
	}

	// Observations beyond the last bucket bound clamp to the overflow
	// bucket; the quantile answers its (finite) upper bound rather
	// than losing the sample.
	var h3 Histogram
	h3.Observe(time.Duration(1) << 62)
	s3 := h3.Snapshot()
	if s3.Count != 1 {
		t.Fatalf("overflow sample not counted: %+v", s3)
	}
	if got := s3.Quantile(0.5); got != time.Duration(bucketUpperNS(numBuckets-1)) {
		t.Errorf("overflow Quantile(0.5) = %v, want last bucket bound", got)
	}
}

func TestSpanLifecycle(t *testing.T) {
	var sp Span
	sp.Begin(Nanotime())
	if sp.Op != core.OpNone {
		t.Fatalf("Begin did not reset Op: %v", sp.Op)
	}
	sp.Op = core.OpSearch
	sp.Mark(StageDecode)
	sp.Add(StageQueueWait, 1000)
	sp.Add(StageQueueWait, 500)
	sp.Add(StageApply, -5) // non-positive adds are dropped
	sp.Touch()
	sp.Mark(StageWrite)
	total := sp.Finalize()

	if got := sp.StageNS(StageQueueWait); got != 1500 {
		t.Errorf("queue_wait = %d, want 1500 (atomic adds accumulate)", got)
	}
	if sp.StageNS(StageApply) != 0 {
		t.Errorf("apply = %d, want 0 (negative add dropped)", sp.StageNS(StageApply))
	}
	if total < sp.StageNS(StageDecode)+sp.StageNS(StageWrite) {
		t.Errorf("total %d below the marked stages", total)
	}
	// Other absorbs the Touch gap, never below zero even though the
	// cross-goroutine adds (1500ns) are not covered by the clock.
	if sp.StageNS(StageOther) < 0 {
		t.Errorf("other = %d, want >= 0", sp.StageNS(StageOther))
	}

	// Begin must fully reset for pooled reuse.
	sp.Begin(Nanotime())
	for st := Stage(0); st < NumStages; st++ {
		if sp.StageNS(st) != 0 {
			t.Errorf("stage %v survived Begin", st)
		}
	}
}

func TestSpanOtherClamp(t *testing.T) {
	// A multi-shard write's summed stage times can exceed the wall
	// total; Other must clamp at zero instead of going negative.
	var sp Span
	sp.Begin(Nanotime())
	sp.Op = core.OpInsert
	sp.Add(StageWALFsync, int64(time.Hour)) // far beyond wall time
	sp.Mark(StageWrite)
	sp.Finalize()
	if got := sp.StageNS(StageOther); got != 0 {
		t.Errorf("other = %d, want 0 (clamped)", got)
	}
}

func TestObserveSpanSkipsOpNone(t *testing.T) {
	m := NewMetrics()
	var sp Span
	sp.Begin(Nanotime())
	sp.Mark(StageDecode)
	m.ObserveSpan(&sp, sp.Finalize()) // Op is OpNone: must not observe
	for _, op := range stageOps {
		if s := m.StageTotalSnapshot(op); s.Count != 0 {
			t.Fatalf("OpNone span observed under %v", op)
		}
	}

	sp.Begin(Nanotime())
	sp.Op = core.OpSearch
	sp.Mark(StageDecode)
	sp.Mark(StageExec)
	m.ObserveSpan(&sp, sp.Finalize())
	if s := m.StageTotalSnapshot(core.OpSearch); s.Count != 1 {
		t.Fatalf("span not observed: %+v", s)
	}
	if s := m.StageSnapshot(core.OpSearch, StageExec); s.Count != 1 {
		t.Fatalf("exec stage not observed: %+v", s)
	}
	// Stages the span never touched stay empty (sparse exposition).
	if s := m.StageSnapshot(core.OpSearch, StageWALFsync); s.Count != 0 {
		t.Fatalf("untouched stage observed: %+v", s)
	}
}

func TestStageNames(t *testing.T) {
	seen := map[string]bool{}
	for _, st := range Stages() {
		name := st.String()
		if name == "" || name == "unknown" {
			t.Errorf("stage %d has no label", st)
		}
		if seen[name] {
			t.Errorf("duplicate stage label %q", name)
		}
		seen[name] = true
	}
	if Stage(-1).String() != "unknown" || Stage(NumStages).String() != "unknown" {
		t.Error("out-of-range stages must read unknown")
	}
}

// TestStagePrometheusConformance checks the per-stage families against
// the text-format rules: HELP and TYPE precede samples, every bucket
// ladder is sorted by le with cumulative counts, and +Inf closes each
// ladder at the sample count.
func TestStagePrometheusConformance(t *testing.T) {
	m := NewMetrics()
	m.ObserveStage(core.OpInsert, StageWALFsync, 300*time.Microsecond)
	m.ObserveStage(core.OpInsert, StageWALFsync, 2*time.Millisecond)
	m.ObserveStage(core.OpSearch, StageExec, 5*time.Microsecond)
	var sp Span
	sp.Begin(Nanotime())
	sp.Op = core.OpSearch
	sp.Mark(StageDecode)
	m.ObserveSpan(&sp, sp.Finalize())

	var b strings.Builder
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	body := b.String()

	for _, family := range []string{"pbtree_stage_latency_seconds", "pbtree_request_latency_seconds"} {
		if !strings.Contains(body, "# HELP "+family+" ") {
			t.Errorf("missing HELP for %s", family)
		}
		if !strings.Contains(body, "# TYPE "+family+" histogram") {
			t.Errorf("missing TYPE for %s", family)
		}
		if help := strings.Index(body, "# HELP "+family); help > strings.Index(body, family+"_bucket") && strings.Contains(body, family+"_bucket") {
			t.Errorf("%s samples precede HELP", family)
		}
	}
	if !strings.Contains(body, `pbtree_stage_latency_seconds_count{op="insert",stage="wal_fsync"} 2`) {
		t.Errorf("missing wal_fsync count in:\n%s", body)
	}

	// Ladder discipline for one series: le values strictly increasing,
	// counts nondecreasing, +Inf last and equal to _count.
	prefix := `pbtree_stage_latency_seconds_bucket{op="insert",stage="wal_fsync",le="`
	var prevLE float64
	var prevN uint64
	var sawInf bool
	var last uint64
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		if sawInf {
			t.Fatalf("sample after +Inf: %q", line)
		}
		rest := line[len(prefix):]
		le := rest[:strings.IndexByte(rest, '"')]
		n, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("unparsable %q: %v", line, err)
		}
		if le == "+Inf" {
			sawInf = true
		} else {
			f, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Fatalf("unparsable le %q: %v", le, err)
			}
			if f <= prevLE && prevN > 0 {
				t.Errorf("le not increasing at %q", line)
			}
			prevLE = f
		}
		if n < prevN {
			t.Errorf("cumulative count decreased at %q", line)
		}
		prevN, last = n, n
	}
	if !sawInf {
		t.Fatal("ladder does not end with +Inf")
	}
	if last != 2 {
		t.Errorf("+Inf bucket = %d, want 2", last)
	}
}

package obs

import (
	"bufio"
	"encoding/json"
	"expvar"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"pbtree/internal/core"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	durs := []time.Duration{1, 2, 3, 100, 1024, time.Millisecond, time.Second}
	var sum time.Duration
	for _, d := range durs {
		h.Observe(d)
		sum += d
	}
	s := h.Snapshot()
	if s.Count != uint64(len(durs)) {
		t.Errorf("count = %d, want %d", s.Count, len(durs))
	}
	if s.SumNS != uint64(sum) {
		t.Errorf("sum = %d, want %d", s.SumNS, sum)
	}
	var inBuckets uint64
	for _, n := range s.Buckets {
		inBuckets += n
	}
	if inBuckets != s.Count {
		t.Errorf("bucket total %d != count %d", inBuckets, s.Count)
	}
	if got := s.Mean(); got != time.Duration(uint64(sum)/uint64(len(durs))) {
		t.Errorf("mean = %v", got)
	}
}

func TestHistogramBucketBounds(t *testing.T) {
	cases := []struct {
		ns     uint64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1023, 10}, {1024, 11},
		{1 << 40, numBuckets - 1}, // overflow clamps to the last bucket
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.bucket)
		}
	}
	for b := 1; b < numBuckets-1; b++ {
		// Bucket b holds [2^(b-1), 2^b): both edges must map into it.
		if bucketOf(bucketUpperNS(b)-1) != b || bucketOf(bucketUpperNS(b-1)) != b {
			t.Errorf("bucket %d bounds are wrong", b)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Errorf("empty histogram p50 = %v, want 0", got)
	}
	// 90 fast observations, 10 slow: p50 must be fast, p99 slow. The
	// estimate is a power-of-two upper bound, so compare against that.
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Nanosecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.5); p50 > 256*time.Nanosecond {
		t.Errorf("p50 = %v, want <= 128ns bucket bound", p50)
	}
	if p99 := s.Quantile(0.99); p99 < time.Millisecond {
		t.Errorf("p99 = %v, want >= 1ms", p99)
	}
}

func TestMetricsPrometheusExposition(t *testing.T) {
	m := NewMetrics()
	m.Observe(core.OpSearch, 100*time.Nanosecond)
	m.Observe(core.OpSearch, 200*time.Nanosecond)
	m.Observe(core.OpInsert, time.Microsecond)
	done := m.Time(core.OpScan)
	done()

	srv := httptest.NewRecorder()
	m.Handler().ServeHTTP(srv, httptest.NewRequest("GET", "/metrics", nil))
	if ct := srv.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	body := srv.Body.String()

	for _, want := range []string{
		"# TYPE pbtree_op_latency_seconds histogram",
		"# TYPE pbtree_ops_total counter",
		`pbtree_op_latency_seconds_count{op="search"} 2`,
		`pbtree_op_latency_seconds_bucket{op="search",le="+Inf"} 2`,
		`pbtree_ops_total{op="insert"} 1`,
		`pbtree_ops_total{op="delete"} 0`,
		`pbtree_ops_total{op="scan"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q in:\n%s", want, body)
		}
	}

	// Cumulative bucket counts must be monotonically nondecreasing per
	// op, ending at the +Inf count.
	var prev uint64
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, `pbtree_op_latency_seconds_bucket{op="search"`) {
			continue
		}
		n, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("unparsable line %q: %v", line, err)
		}
		if n < prev {
			t.Errorf("bucket ladder not monotone at %q", line)
		}
		prev = n
	}
	if prev != 2 {
		t.Errorf("ladder does not end at count: %d", prev)
	}
}

func TestMetricsExpvar(t *testing.T) {
	m := NewMetrics()
	m.Observe(core.OpSearch, 500*time.Nanosecond)
	m.PublishExpvar("pbtree_test")
	m.PublishExpvar("pbtree_test") // second call must be a no-op, not a panic

	v := expvar.Get("pbtree_test")
	if v == nil {
		t.Fatal("expvar not published")
	}
	var out map[string]struct {
		Count  uint64 `json:"count"`
		MeanNS uint64 `json:"mean_ns"`
		P99NS  uint64 `json:"p99_ns"`
	}
	if err := json.Unmarshal([]byte(v.String()), &out); err != nil {
		t.Fatalf("expvar value is not JSON: %v", err)
	}
	if out["search"].Count != 1 || out["search"].MeanNS != 500 {
		t.Errorf("expvar search snapshot = %+v", out["search"])
	}
	if _, ok := out["scan"]; !ok {
		t.Error("expvar missing scan op")
	}
}

// BenchmarkMetricsObserve bounds the native-path overhead of leaving
// metrics on: one Observe is a handful of atomic adds.
func BenchmarkMetricsObserve(b *testing.B) {
	m := NewMetrics()
	for i := 0; i < b.N; i++ {
		m.Observe(core.OpSearch, time.Duration(i))
	}
}

// BenchmarkMetricsTime additionally includes the two clock reads of the
// Time helper — the full cost of `defer m.Time(op)()` around an op.
func BenchmarkMetricsTime(b *testing.B) {
	m := NewMetrics()
	for i := 0; i < b.N; i++ {
		m.Time(core.OpSearch)()
	}
}

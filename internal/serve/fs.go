package serve

// The filesystem abstraction moved to internal/storage so the storage
// engines (internal/backend, internal/lsm) can persist their artifacts
// without importing the serving layer. These aliases keep the types
// available under their historical serve names — DurableConfig.FS,
// tests, and the facade all keep working unchanged.

import "pbtree/internal/storage"

// File is one open file of an FS. See storage.File.
type File = storage.File

// FS is the filesystem surface the durability layer needs. See
// storage.FS.
type FS = storage.FS

// OSFS is the production FS over package os. See storage.OSFS.
type OSFS = storage.OSFS

// MemFS is the deterministic fault-injecting in-memory FS used by the
// crash tests. See storage.MemFS.
type MemFS = storage.MemFS

// ErrInjected is the failure MemFS injects when its write budget is
// exhausted. See storage.ErrInjected.
var ErrInjected = storage.ErrInjected

// NewMemFS builds an empty MemFS. See storage.NewMemFS.
func NewMemFS() *MemFS { return storage.NewMemFS() }

package serve

import (
	"sort"
	"testing"

	"pbtree/internal/core"
)

// shardKeys returns n distinct keys owned by the given shard, probing
// the key space in order (keys are multiples of 8, the workload
// convention).
func shardKeys(st *Store, shard, n int, skip map[core.Key]bool) []core.Key {
	keys := make([]core.Key, 0, n)
	for k := core.Key(8); len(keys) < n; k += 8 {
		if st.ShardOf(k) == shard && !skip[k] {
			keys = append(keys, k)
			skip[k] = true
		}
	}
	return keys
}

// crashScript drives a deterministic mutation history against a
// 2-shard durable store on a MemFS and records, per shard, the exact
// expected contents after every acknowledged mutation plus the crash
// point at which each ack fired.
type crashScript struct {
	hist [][][]core.Pair // hist[s][j] = sorted contents after j acked mutations
	acks [][]int64       // acks[s][j] = journal crash point when ack j+1 fired
}

// run executes the scripted workload: per shard an interleaved stream
// of multi-key atomic batches, overwrites of a hot key, deletes and
// re-inserts, so torn or reordered replay cannot go unnoticed.
func runCrashScript(t *testing.T, st *Store, fs *MemFS, ops int) *crashScript {
	t.Helper()
	const shards = 2
	skip := map[core.Key]bool{}
	fresh := [shards][]core.Key{}
	hot := [shards]core.Key{}
	for s := 0; s < shards; s++ {
		ks := shardKeys(st, s, ops*2+1, skip)
		hot[s], fresh[s] = ks[0], ks[1:]
	}
	model := [shards]map[core.Key]core.TID{{}, {}}
	sc := &crashScript{
		hist: make([][][]core.Pair, shards),
		acks: make([][]int64, shards),
	}
	snapshotModel := func(s int) []core.Pair {
		ps := make([]core.Pair, 0, len(model[s]))
		for k, tid := range model[s] {
			ps = append(ps, core.Pair{Key: k, TID: tid})
		}
		sort.Slice(ps, func(i, j int) bool { return ps[i].Key < ps[j].Key })
		return ps
	}
	for s := 0; s < shards; s++ {
		sc.hist[s] = append(sc.hist[s], snapshotModel(s)) // state 0: empty
	}
	var dead [shards][]core.Key
	for i := 0; i < ops; i++ {
		s := i % shards
		switch (i / shards) % 4 {
		case 0: // atomic multi-key batch (single shard → one WAL record)
			batch := []core.Pair{}
			for j := 0; j < 3; j++ {
				k := fresh[s][0]
				fresh[s] = fresh[s][1:]
				batch = append(batch, core.Pair{Key: k, TID: core.TID(100 + i)})
				model[s][k] = core.TID(100 + i)
			}
			if err := st.PutBatch(batch); err != nil {
				t.Fatal(err)
			}
		case 1: // overwrite the shard's hot key
			if err := st.Put(hot[s], core.TID(i)); err != nil {
				t.Fatal(err)
			}
			model[s][hot[s]] = core.TID(i)
		case 2: // delete a previously inserted key (smallest non-hot,
			// so the script is deterministic)
			var k core.Key
			for k2 := range model[s] {
				if k2 != hot[s] && (k == 0 || k2 < k) {
					k = k2
				}
			}
			if k == 0 {
				k = hot[s]
			}
			if err := st.Delete(k); err != nil {
				t.Fatal(err)
			}
			delete(model[s], k)
			dead[s] = append(dead[s], k)
		default: // re-insert a deleted key (put/del interleave coverage)
			k := fresh[s][0]
			if len(dead[s]) > 0 {
				k = dead[s][0]
				dead[s] = dead[s][1:]
			} else {
				fresh[s] = fresh[s][1:]
			}
			if err := st.Put(k, core.TID(1000+i)); err != nil {
				t.Fatal(err)
			}
			model[s][k] = core.TID(1000 + i)
		}
		sc.hist[s] = append(sc.hist[s], snapshotModel(s))
		sc.acks[s] = append(sc.acks[s], fs.CrashPoints())
	}
	return sc
}

// shardContents splits a store dump by owning shard.
func shardContents(st *Store) [][]core.Pair {
	out := make([][]core.Pair, st.Shards())
	for _, p := range st.Dump() {
		s := st.ShardOf(p.Key)
		out[s] = append(out[s], p)
	}
	return out
}

// crashPoints selects which journal prefixes to test: every point when
// the journal is small, otherwise a stride plus every ack boundary and
// its predecessor (the points where durability is decided).
func crashPoints(end int64, sc *crashScript) []int64 {
	seen := map[int64]bool{}
	var pts []int64
	add := func(p int64) {
		if p >= 0 && p <= end && !seen[p] {
			seen[p] = true
			pts = append(pts, p)
		}
	}
	stride := int64(1)
	if end > 6000 {
		stride = end/6000 + 1
	}
	for p := int64(0); p <= end; p += stride {
		add(p)
	}
	add(end)
	for _, acks := range sc.acks {
		for _, a := range acks {
			add(a - 1)
			add(a)
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i] < pts[j] })
	return pts
}

// TestCrashRecoveryEveryPrefix is the power-cut property test: a
// durable store runs a scripted workload on a journaling MemFS, and
// then for (almost) every byte-granular prefix of what reached the
// disk, a fresh store is opened on the crashed filesystem and must
// recover a prefix-consistent state — exactly the contents after some
// number j of acknowledged mutations (so batches are atomic and replay
// order is the commit order), with j covering every mutation acked
// before the cut (no acked write lost under FsyncAlways, even when the
// disk's volatile cache dies too), and the shard's published version
// equal to j+1 (versions stay monotonic across the crash).
func TestCrashRecoveryEveryPrefix(t *testing.T) {
	fs := NewMemFS()
	cfg := StoreConfig{
		Shards:  2,
		Durable: &DurableConfig{FS: fs, Fsync: FsyncAlways, CheckpointEvery: 8},
	}
	st, err := Open(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WaitReady(); err != nil {
		t.Fatal(err)
	}
	sc := runCrashScript(t, st, fs, 36)
	st.Close()
	end := fs.CrashPoints()

	pts := crashPoints(end, sc)
	t.Logf("journal holds %d crash points, testing %d", end, len(pts))
	for _, p := range pts {
		crashed := fs.CrashAt(p, true) // volatile disk cache lost too
		st2, err := Open(StoreConfig{
			Shards:  2,
			Durable: &DurableConfig{FS: crashed, Fsync: FsyncAlways, CheckpointEvery: 8},
		}, nil)
		if err != nil {
			t.Fatalf("crash point %d: reopen: %v", p, err)
		}
		if err := st2.WaitReady(); err != nil {
			t.Fatalf("crash point %d: recovery: %v", p, err)
		}
		got := shardContents(st2)
		stats := st2.Stats()
		for s := 0; s < 2; s++ {
			j := matchState(sc.hist[s], got[s])
			if j < 0 {
				t.Fatalf("crash point %d shard %d: contents %v match no acked prefix", p, s, got[s])
			}
			acked := ackedBefore(sc.acks[s], p)
			if j < acked {
				t.Fatalf("crash point %d shard %d: recovered state %d but %d mutations were acked before the cut", p, s, j, acked)
			}
			if v := stats.Shards[s].Version; v != uint64(j)+1 {
				t.Fatalf("crash point %d shard %d: version %d after recovering state %d (want %d)", p, s, v, j, j+1)
			}
		}
		st2.Close()
	}
}

// TestCrashRecoveryFsyncNever checks the weaker policy's contract: a
// crash may lose acked writes, but recovery still lands on some acked
// prefix — never a torn batch, never reordered effects.
func TestCrashRecoveryFsyncNever(t *testing.T) {
	fs := NewMemFS()
	cfg := StoreConfig{
		Shards:  2,
		Durable: &DurableConfig{FS: fs, Fsync: FsyncNever, CheckpointEvery: 8},
	}
	st, err := Open(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WaitReady(); err != nil {
		t.Fatal(err)
	}
	sc := runCrashScript(t, st, fs, 24)
	st.Close()
	end := fs.CrashPoints()

	for _, p := range crashPoints(end, sc) {
		crashed := fs.CrashAt(p, true)
		st2, err := Open(StoreConfig{
			Shards:  2,
			Durable: &DurableConfig{FS: crashed, Fsync: FsyncNever, CheckpointEvery: 8},
		}, nil)
		if err != nil {
			t.Fatalf("crash point %d: reopen: %v", p, err)
		}
		if err := st2.WaitReady(); err != nil {
			t.Fatalf("crash point %d: recovery: %v", p, err)
		}
		got := shardContents(st2)
		stats := st2.Stats()
		for s := 0; s < 2; s++ {
			j := matchState(sc.hist[s], got[s])
			if j < 0 {
				t.Fatalf("crash point %d shard %d: contents %v match no acked prefix", p, s, got[s])
			}
			if v := stats.Shards[s].Version; v != uint64(j)+1 {
				t.Fatalf("crash point %d shard %d: version %d after recovering state %d", p, s, v, j)
			}
		}
		st2.Close()
	}
}

// matchState returns the history index whose contents equal got, or -1.
// Mutation histories here never repeat a state (every op changes the
// contents or a TID), so the match is unique.
func matchState(hist [][]core.Pair, got []core.Pair) int {
	for j := len(hist) - 1; j >= 0; j-- {
		if pairsEqual(hist[j], got) {
			return j
		}
	}
	return -1
}

// ackedBefore counts the mutations whose ack fired at or before crash
// point p.
func ackedBefore(acks []int64, p int64) int {
	n := 0
	for _, a := range acks {
		if a <= p {
			n++
		}
	}
	return n
}

package serve

// Snapshot-consistency integration test, meant to run under -race (and
// run by `make check`): concurrent readers must never observe a torn
// write — a shard where only part of an atomic batch is visible — and
// shard versions must move monotonically.

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pbtree/internal/core"
)

func TestStoreSnapshotConsistency(t *testing.T) {
	const (
		n       = 20_000
		readers = 4
		rounds  = 50
	)
	st := openTest(t, n, 4)

	// The writer repeatedly rewrites a probe group — keys chosen to
	// land in one shard — setting every TID to the round number in one
	// atomic PutBatch. Readers MGet the group and assert all values
	// are equal: seeing a mix of rounds would be a torn batch.
	shard0 := -1
	var probe []core.Key
	for k := core.Key(8); len(probe) < 4; k += 8 {
		s := st.ShardOf(k)
		if shard0 == -1 {
			shard0 = s
		}
		if s == shard0 {
			probe = append(probe, k)
		}
	}

	// Level the group before readers start: the preloaded TIDs differ
	// per key, which would read as "torn" below.
	pairs0 := make([]core.Pair, len(probe))
	for i, k := range probe {
		pairs0[i] = core.Pair{Key: k, TID: 0}
	}
	if err := st.PutBatch(pairs0); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var torn atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			out := make([]Lookup, len(probe))
			var lastVer uint64
			for iter := 0; !stop.Load(); iter++ {
				st.MGet(probe, out)
				for i := 1; i < len(out); i++ {
					if !out[i].Found || out[i].TID != out[0].TID {
						torn.Add(1)
					}
				}
				// Versions never go backwards (checked on a sample of
				// iterations; Stats materializes every shard).
				if iter%16 == 0 {
					v := st.Stats().Shards[shard0].Version
					if v < lastVer {
						t.Errorf("shard version went backwards: %d -> %d", lastVer, v)
						return
					}
					lastVer = v
				}
				// Keep scans in the mix: they walk full snapshots.
				if r == 0 && iter%8 == 0 {
					st.Scan(8, 8*64, 32)
				}
			}
		}(r)
	}

	pairs := make([]core.Pair, len(probe))
	for round := 1; round <= rounds; round++ {
		for i, k := range probe {
			pairs[i] = core.Pair{Key: k, TID: core.TID(round)}
		}
		// Under load the queue may briefly fill; overload is backpressure,
		// not failure.
		for {
			err := st.PutBatch(pairs)
			if err == nil {
				break
			}
			if err != ErrOverloaded {
				t.Errorf("PutBatch: %v", err)
				break
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	if c := torn.Load(); c != 0 {
		t.Fatalf("observed %d torn batch reads", c)
	}
	// Final state: every probe key holds the last round.
	for _, k := range probe {
		if tid, ok := st.Get(k); !ok || tid != core.TID(rounds) {
			t.Fatalf("probe key %d = (%d, %v), want (%d, true)", k, tid, ok, rounds)
		}
	}
}

// TestStoreConcurrentChurn hammers every operation class at once; the
// assertions are the race detector plus basic sanity of results.
func TestStoreConcurrentChurn(t *testing.T) {
	const n = 10_000
	st := openTest(t, n, 4)
	var stop atomic.Bool
	var wg sync.WaitGroup

	// Readers: Get + MGet of stable preloaded keys (never mutated
	// below, so results are exactly predictable even mid-churn).
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			keys := make([]core.Key, 16)
			out := make([]Lookup, 16)
			x := uint64(seed)
			for !stop.Load() {
				for i := range keys {
					x = x*6364136223846793005 + 1442695040888963407
					keys[i] = core.Key(8 * (1 + x%(n/2))) // lower half: never churned
				}
				st.MGet(keys, out)
				for i, l := range out {
					if !l.Found || uint32(l.TID) != uint32(keys[i])/8 {
						t.Errorf("MGet(%d) = %+v", keys[i], l)
						return
					}
				}
			}
		}(int64(r + 1))
	}
	// Writers: churn the upper half with inserts and deletes.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			x := seed
			for !stop.Load() {
				x = x*6364136223846793005 + 1442695040888963407
				k := core.Key(8 * (n/2 + 1 + x%(n/2)))
				var err error
				if x%3 == 0 {
					err = st.Delete(k)
				} else {
					err = st.Put(k, core.TID(k/8))
				}
				if err != nil && err != ErrOverloaded {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(uint64(w + 99))
	}
	// Scanner walks ranges spanning both halves.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			got := st.Scan(8*(n/2-50), 8*(n/2+50), 200)
			for i := 1; i < len(got); i++ {
				if got[i-1].Key >= got[i].Key {
					t.Errorf("scan out of order: %d >= %d", got[i-1].Key, got[i].Key)
					return
				}
			}
		}
	}()

	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		st.Stats()
		time.Sleep(time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
}

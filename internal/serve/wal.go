package serve

// Per-shard write-ahead log. Each record is one atomically-applied
// mutation (the puts and deletes of one client batch that landed on
// this shard), framed as
//
//	u32 payload length | u32 CRC32C(payload) | payload
//	payload: u64 LSN | u32 nputs | u32 ndels
//	         | nputs × (u32 key, u32 tid) | ndels × u32 key
//
// all little-endian. LSNs are contiguous per shard starting at 1. A
// record is valid only if its frame is complete, its CRC matches, its
// counts are internally consistent, and its LSN continues the
// sequence; recovery stops at the first violation and truncates the
// tail, so a torn record can never surface as data and nothing past a
// corrupt record is ever replayed.
//
// The writer group-commits: all records of one drained mutation batch
// are written with a single Write (and, depending on the fsync policy,
// a single Sync) before any of the batch's acks fire.

import (
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"pbtree/internal/core"
	"pbtree/internal/obs"
)

// FsyncPolicy selects when the WAL is fsynced.
type FsyncPolicy uint8

const (
	// FsyncAlways syncs before every acknowledgement: an acked write
	// survives any crash.
	FsyncAlways FsyncPolicy = iota

	// FsyncEvery syncs at most once per interval (group-commit
	// batches in between are only buffered in the OS): a crash can
	// lose up to one interval of acked writes, never tear a record.
	FsyncEvery

	// FsyncNever leaves syncing to the OS (and segment rotation):
	// fastest, weakest.
	FsyncNever
)

// String implements fmt.Stringer (the -fsync flag values).
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncEvery:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", uint8(p))
}

// ParseFsyncPolicy parses a -fsync flag value.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncEvery, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("serve: unknown fsync policy %q (want always, interval or never)", s)
}

// crcTable is the Castagnoli polynomial (CRC32C), the checksum used by
// most storage systems for its hardware support.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// walHeaderSize is the frame prologue: length + CRC.
const walHeaderSize = 8

// maxWALPayload bounds one record's payload. The writer never exceeds
// it; a reader seeing a larger length is looking at corruption and
// must not allocate for it.
const maxWALPayload = 1 << 26

// errWALTorn reports an incomplete or corrupt record: replay stops
// here and the tail is truncated.
var errWALTorn = errors.New("serve: torn or corrupt WAL record")

// walRecord is one decoded mutation record.
type walRecord struct {
	lsn  uint64
	puts []core.Pair
	dels []core.Key
}

// putU32 and putU64 append little-endian integers.
func putU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func putU64(dst []byte, v uint64) []byte {
	return putU32(putU32(dst, uint32(v)), uint32(v>>32))
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func getU64(b []byte) uint64 {
	return uint64(getU32(b)) | uint64(getU32(b[4:]))<<32
}

// appendWALRecord appends one framed record to dst.
func appendWALRecord(dst []byte, lsn uint64, puts []core.Pair, dels []core.Key) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // frame, patched below
	dst = putU64(dst, lsn)
	dst = putU32(dst, uint32(len(puts)))
	dst = putU32(dst, uint32(len(dels)))
	for _, p := range puts {
		dst = putU32(dst, uint32(p.Key))
		dst = putU32(dst, uint32(p.TID))
	}
	for _, k := range dels {
		dst = putU32(dst, uint32(k))
	}
	payload := dst[start+walHeaderSize:]
	binaryPatchU32(dst[start:], uint32(len(payload)))
	binaryPatchU32(dst[start+4:], crc32.Checksum(payload, crcTable))
	return dst
}

// binaryPatchU32 writes a little-endian u32 in place.
func binaryPatchU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

// decodeWALRecord decodes the first record of b. It returns the record
// and the number of bytes consumed, or errWALTorn (possibly wrapped)
// if the frame is incomplete, oversized, fails its CRC, or is
// internally inconsistent. It never panics and never returns data from
// a record that does not fully verify.
func decodeWALRecord(b []byte) (walRecord, int, error) {
	if len(b) < walHeaderSize {
		return walRecord{}, 0, fmt.Errorf("%w: %d-byte tail", errWALTorn, len(b))
	}
	length := getU32(b)
	if length > maxWALPayload {
		return walRecord{}, 0, fmt.Errorf("%w: length %d exceeds bound %d", errWALTorn, length, maxWALPayload)
	}
	if uint64(len(b)-walHeaderSize) < uint64(length) {
		return walRecord{}, 0, fmt.Errorf("%w: payload %d, have %d", errWALTorn, length, len(b)-walHeaderSize)
	}
	payload := b[walHeaderSize : walHeaderSize+int(length)]
	if crc32.Checksum(payload, crcTable) != getU32(b[4:]) {
		return walRecord{}, 0, fmt.Errorf("%w: CRC mismatch", errWALTorn)
	}
	if len(payload) < 16 {
		return walRecord{}, 0, fmt.Errorf("%w: payload %d below fixed fields", errWALTorn, len(payload))
	}
	rec := walRecord{lsn: getU64(payload)}
	nputs := getU32(payload[8:])
	ndels := getU32(payload[12:])
	want := uint64(16) + 8*uint64(nputs) + 4*uint64(ndels)
	if uint64(len(payload)) != want {
		return walRecord{}, 0, fmt.Errorf("%w: counts %d/%d need %d payload bytes, have %d", errWALTorn, nputs, ndels, want, len(payload))
	}
	body := payload[16:]
	if nputs > 0 {
		rec.puts = make([]core.Pair, nputs)
		for i := range rec.puts {
			rec.puts[i] = core.Pair{Key: core.Key(getU32(body[8*i:])), TID: core.TID(getU32(body[8*i+4:]))}
		}
		body = body[8*nputs:]
	}
	if ndels > 0 {
		rec.dels = make([]core.Key, ndels)
		for i := range rec.dels {
			rec.dels[i] = core.Key(getU32(body[4*i:]))
		}
	}
	return rec, walHeaderSize + int(length), nil
}

// walWriter is one shard's open WAL segment. It is owned by the
// shard's writer goroutine; no method is concurrency-safe.
type walWriter struct {
	fs       FS
	name     string
	f        File
	buf      []byte // group-commit staging
	policy   FsyncPolicy
	interval time.Duration
	lastSync time.Time
	records  uint64 // records appended to this segment
	syncNS   int64  // fsync time since takeSyncNS (lifecycle attribution)
	metrics  *obs.Metrics
}

// newWALWriter creates (truncating) a fresh segment.
func newWALWriter(fsys FS, name string, policy FsyncPolicy, interval time.Duration, m *obs.Metrics) (*walWriter, error) {
	f, err := fsys.Create(name)
	if err != nil {
		return nil, err
	}
	return &walWriter{fs: fsys, name: name, f: f, policy: policy, interval: interval, metrics: m}, nil
}

// add stages one record for the current group commit.
func (w *walWriter) add(lsn uint64, puts []core.Pair, dels []core.Key) {
	w.buf = appendWALRecord(w.buf, lsn, puts, dels)
	w.records++
}

// addRaw stages records that are already WAL-framed — the replication
// apply path, where a follower persists the primary's record bytes
// verbatim so both WAL timelines are byte-identical for the same LSN
// range. The caller has validated the framing and counted the
// records.
func (w *walWriter) addRaw(frames []byte, records uint64) {
	w.buf = append(w.buf, frames...)
	w.records += records
}

// commit writes the staged records with one Write and applies the
// fsync policy. After an error the staged records are discarded and
// nothing may be acknowledged.
func (w *walWriter) commit() error {
	if len(w.buf) == 0 {
		return nil
	}
	n := len(w.buf)
	_, err := w.f.Write(w.buf)
	w.buf = w.buf[:0]
	if err != nil {
		return err
	}
	w.metrics.WALAppend(n)
	switch w.policy {
	case FsyncAlways:
		return w.sync()
	case FsyncEvery:
		if now := time.Now(); now.Sub(w.lastSync) >= w.interval {
			w.lastSync = now
			return w.sync()
		}
	}
	return nil
}

// sync forces the segment to stable storage, accumulating the fsync
// wall time for lifecycle attribution.
func (w *walWriter) sync() error {
	start := obs.Nanotime()
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.syncNS += obs.Nanotime() - start
	w.metrics.Fsync()
	return nil
}

// takeSyncNS returns and resets the fsync time accumulated since the
// last call — the StageWALFsync share of the commit that just ran
// (zero when the policy skipped the sync).
func (w *walWriter) takeSyncNS() int64 {
	ns := w.syncNS
	w.syncNS = 0
	return ns
}

// close syncs and closes the segment (graceful-drain flush).
func (w *walWriter) close() error {
	err := w.commit()
	if serr := w.sync(); err == nil {
		err = serr
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pbtree/internal/core"
	"pbtree/internal/obs"
	"pbtree/internal/workload"
)

// LoadgenConfig describes one load-generation run.
type LoadgenConfig struct {
	// Addr is the server address.
	Addr string `json:"addr"`

	// Replicas are additional server addresses: connections
	// round-robin across Addr and Replicas, measuring a replica set's
	// aggregate read throughput (DESIGN.md §13). Requires a read-only
	// mix — writes belong on the primary, and a replica would reject
	// them.
	Replicas []string `json:"replicas,omitempty"`

	// Conns is the number of concurrent connections. Zero selects 4.
	Conns int `json:"conns"`

	// Scenario selects a named workload preset (see ScenarioNames).
	// Non-empty overrides the op mix, skew and scan-limit fields below
	// with the scenario's values; the report echoes the resolved
	// config. Empty keeps the explicit fields.
	Scenario string `json:"scenario,omitempty"`

	// Window is how many calls each connection keeps outstanding
	// (closed-loop, via the pipelined client): total concurrency is
	// Conns x Window, and the report records both so connection count
	// is never conflated with concurrency. Zero selects 1 — the
	// classic one-round-trip-at-a-time loop.
	Window int `json:"window"`

	// Duration is how long to drive load. Zero selects 2s. It is
	// echoed in the JSON report (as nanoseconds) so a run is fully
	// reproducible from its report alone.
	Duration time.Duration `json:"duration_ns"`

	// GetPct, MGetPct, ScanPct, StreamPct, PutPct, DelPct set the
	// operation mix in percent; they must sum to at most 100 and the
	// remainder goes to GET. All zero selects 80/10/5/0/5/0.
	GetPct    int `json:"get_pct"`    // GET share (also absorbs the remainder)
	MGetPct   int `json:"mget_pct"`   // MGET share
	ScanPct   int `json:"scan_pct"`   // SCAN share
	StreamPct int `json:"stream_pct"` // streaming-scan share (one full SCANOPEN→SCANNEXT*→close per draw)
	PutPct    int `json:"put_pct"`    // PUT share
	DelPct    int `json:"del_pct"`    // DEL share

	// Batch is the MGET batch size. Zero selects 16.
	Batch int `json:"batch"`

	// ScanLimit is the SCAN row limit. Zero selects 100.
	ScanLimit int `json:"scan_limit"`

	// StreamRows is how many rows one streaming scan targets. Zero
	// selects 10_000.
	StreamRows int `json:"stream_rows"`

	// StreamChunk is the SCANNEXT chunk size of a streaming scan. Zero
	// selects 256.
	StreamChunk int `json:"stream_chunk"`

	// Keys is the preloaded key-space size n (keys of SortedPairs(n)).
	// Zero selects 100_000.
	Keys int `json:"keys"`

	// Skew selects the key distribution: "uniform", "zipf" or
	// "hotset". Empty selects uniform.
	Skew string `json:"skew"`

	// ZipfS is the Zipf exponent (>1) when Skew is "zipf". Zero
	// selects 1.1.
	ZipfS float64 `json:"zipf_s"`

	// HotFrac/HotProb parameterize "hotset". Zero selects 0.01/0.9.
	HotFrac float64 `json:"hot_frac"` // fraction of keys that are hot
	HotProb float64 `json:"hot_prob"` // probability an op targets a hot key

	// Seed makes runs reproducible per connection (conn i uses
	// Seed+i). Zero selects 1.
	Seed int64 `json:"seed"`

	// Timeout is the per-request deadline. Zero selects 1s. Echoed in
	// the report like Duration.
	Timeout time.Duration `json:"timeout_ns"`
}

// scenario is one named workload preset. Zero-valued fields fall
// through to the regular defaulting, so presets only pin what defines
// them.
type scenario struct {
	get, mget, scan, stream, put, del int
	skew                              string
	scanLimit                         int
	streamRows, streamChunk           int
	hotFrac, hotProb                  float64
}

// scenarios are the named workloads of the benchmark matrix. Each is
// a caricature of one serving regime, chosen to separate the backends:
// point reads on a skewed working set, scan-heavy analytics, a pure
// ingest burst, a single-row firestorm, and a mixed tenant.
var scenarios = map[string]scenario{
	// OLTP point lookups: read-mostly, Zipf-skewed single-key traffic.
	"oltp-point": {get: 90, mget: 5, put: 5, skew: "zipf"},
	// Analytics: long scans dominate, uniform starts, deep row limits.
	"olap-scan": {get: 10, mget: 20, scan: 70, skew: "uniform", scanLimit: 500},
	// Ingest: nothing but writes — the LSM's home turf.
	"write-burst": {put: 100, skew: "uniform"},
	// A tiny hot set takes nearly all traffic, reads racing overwrites.
	"hot-key-storm": {get: 95, put: 5, skew: "hotset", hotFrac: 0.001, hotProb: 0.99},
	// A realistic multi-tenant blend with every op class represented.
	"mixed-tenant": {get: 50, mget: 15, scan: 10, put: 20, del: 5, skew: "zipf"},
	// Analytics over streaming cursors: big ranges pulled chunk by
	// chunk (SCANOPEN/SCANNEXT), point reads riding alongside — the
	// workload the per-chunk admission contract exists for.
	"olap-stream": {get: 20, mget: 10, stream: 70, skew: "uniform", streamRows: 10_000, streamChunk: 256},
}

// ScenarioNames lists the named workload presets, sorted.
func ScenarioNames() []string {
	names := make([]string, 0, len(scenarios))
	for n := range scenarios {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// withDefaults resolves the zero values.
func (c LoadgenConfig) withDefaults() (LoadgenConfig, error) {
	if c.Scenario != "" {
		s, ok := scenarios[c.Scenario]
		if !ok {
			return c, fmt.Errorf("serve: unknown scenario %q (want one of %v)", c.Scenario, ScenarioNames())
		}
		c.GetPct, c.MGetPct, c.ScanPct, c.StreamPct, c.PutPct, c.DelPct = s.get, s.mget, s.scan, s.stream, s.put, s.del
		c.Skew = s.skew
		if s.scanLimit != 0 {
			c.ScanLimit = s.scanLimit
		}
		if s.streamRows != 0 {
			c.StreamRows = s.streamRows
		}
		if s.streamChunk != 0 {
			c.StreamChunk = s.streamChunk
		}
		if s.hotFrac != 0 {
			c.HotFrac = s.hotFrac
		}
		if s.hotProb != 0 {
			c.HotProb = s.hotProb
		}
	}
	if c.Conns == 0 {
		c.Conns = 4
	}
	if c.Window == 0 {
		c.Window = 1
	}
	if c.Window < 0 {
		return c, fmt.Errorf("serve: window %d invalid", c.Window)
	}
	if c.Duration == 0 {
		c.Duration = 2 * time.Second
	}
	if c.GetPct == 0 && c.MGetPct == 0 && c.ScanPct == 0 && c.StreamPct == 0 && c.PutPct == 0 && c.DelPct == 0 {
		c.GetPct, c.MGetPct, c.ScanPct, c.PutPct = 80, 10, 5, 5
	}
	sum := c.GetPct + c.MGetPct + c.ScanPct + c.StreamPct + c.PutPct + c.DelPct
	if sum > 100 || c.GetPct < 0 || c.MGetPct < 0 || c.ScanPct < 0 || c.StreamPct < 0 || c.PutPct < 0 || c.DelPct < 0 {
		return c, fmt.Errorf("serve: op mix %d/%d/%d/%d/%d/%d invalid", c.GetPct, c.MGetPct, c.ScanPct, c.StreamPct, c.PutPct, c.DelPct)
	}
	c.GetPct += 100 - sum
	if c.Batch == 0 {
		c.Batch = 16
	}
	if c.ScanLimit == 0 {
		c.ScanLimit = 100
	}
	if c.StreamRows == 0 {
		c.StreamRows = 10_000
	}
	if c.StreamChunk == 0 {
		c.StreamChunk = 256
	}
	if c.StreamChunk > MaxScanChunk {
		return c, fmt.Errorf("serve: stream chunk %d exceeds %d", c.StreamChunk, MaxScanChunk)
	}
	if c.Keys == 0 {
		c.Keys = 100_000
	}
	if c.Skew == "" {
		c.Skew = "uniform"
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.1
	}
	if c.HotFrac == 0 {
		c.HotFrac = 0.01
	}
	if c.HotProb == 0 {
		c.HotProb = 0.9
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Timeout == 0 {
		c.Timeout = time.Second
	}
	if len(c.Replicas) > 0 && (c.PutPct > 0 || c.DelPct > 0) {
		return c, fmt.Errorf("serve: a replica-set run must be read-only (mix has put %d%%, del %d%%)", c.PutPct, c.DelPct)
	}
	return c, nil
}

// keyStream builds the configured key distribution for one connection.
func (c LoadgenConfig) keyStream(seed int64) (workload.KeyStream, error) {
	r := rand.New(rand.NewSource(seed))
	switch c.Skew {
	case "uniform":
		return workload.NewUniformKeys(r, c.Keys), nil
	case "zipf":
		return workload.NewZipfKeys(r, c.Keys, c.ZipfS, 1)
	case "hotset":
		return workload.NewHotSetKeys(r, c.Keys, c.HotFrac, c.HotProb)
	default:
		return nil, fmt.Errorf("serve: unknown skew %q (want uniform, zipf or hotset)", c.Skew)
	}
}

// OpReport summarizes one operation class of a run.
type OpReport struct {
	Count  uint64  `json:"count"`   // completed calls
	MeanUS float64 `json:"mean_us"` // mean latency, microseconds
	P50US  float64 `json:"p50_us"`  // median latency, microseconds
	P90US  float64 `json:"p90_us"`  // 90th-percentile latency, microseconds
	P99US  float64 `json:"p99_us"`  // 99th-percentile latency, microseconds
	P999US float64 `json:"p999_us"` // 99.9th-percentile latency, microseconds
}

// LoadgenReport is the JSON result of a run.
type LoadgenReport struct {
	Config      LoadgenConfig `json:"config"`      // the defaulted config the run used
	DurationMS  int64         `json:"duration_ms"` // measured run length
	Concurrency int           `json:"concurrency"` // Conns x Window outstanding calls
	Ops         uint64        `json:"ops"`         // completed operations
	Rows        uint64        `json:"rows"`        // keys looked up / rows scanned / pairs written
	Throughput  float64       `json:"ops_per_sec"` // Ops over the measured duration
	Rejected    uint64        `json:"rejected"`    // StatusRetry rejections (all classes)
	// RejectedByClass splits Rejected by admission class ("read",
	// "write", "scan"), so a report shows which budget saturated.
	RejectedByClass map[string]uint64   `json:"rejected_by_class"`
	Deadline        uint64              `json:"deadline_expired"` // calls that hit their deadline
	Errors          uint64              `json:"errors"`           // hard (non-backpressure) failures
	NotFound        uint64              `json:"not_found"`        // GETs answered StatusNotFound
	PerOp           map[string]OpReport `json:"per_op"`           // latency breakdown per op name

	// ServerStages attributes the run's server-side time to pipeline
	// stages: STATS is snapshotted before and after the run and the
	// per-(op, stage) deltas are reported (DESIGN.md §12). Keyed by op
	// name then stage name. Both tables are always present and
	// non-nil (empty when the server runs without lifecycle tracing),
	// preserving the byte-for-byte report reproducibility guarantee.
	ServerStages map[string]map[string]StageDelta `json:"server_stages"`

	// ServerStageTotals carries each op's server-side end-to-end delta
	// over the run — the denominator of every stage's Share.
	ServerStageTotals map[string]StageDelta `json:"server_stage_totals"`
}

// StageDelta is the before/after difference of one lifecycle
// histogram over a loadgen run.
type StageDelta struct {
	Count   uint64  `json:"count"`    // samples in the window
	MeanUS  float64 `json:"mean_us"`  // mean latency over the window
	TotalMS float64 `json:"total_ms"` // summed time over the window
	// Share is this stage's fraction of the op's server-side total
	// time (0 for the "read" stage, which includes client think time
	// and is excluded from the server-side total).
	Share float64 `json:"share"`
}

// stageDeltas subtracts two STATS snapshots into the report's
// attribution tables. Percentile fields cannot be differenced, so the
// deltas carry counts, sums and derived means only.
func stageDeltas(before, after ServerStats) (map[string]map[string]StageDelta, map[string]StageDelta) {
	stages := make(map[string]map[string]StageDelta)
	totals := make(map[string]StageDelta)
	deltaOf := func(b, a StageStats) (StageDelta, bool) {
		if a.Count <= b.Count {
			return StageDelta{}, false
		}
		n := a.Count - b.Count
		sum := a.SumNS - b.SumNS
		return StageDelta{
			Count:   n,
			MeanUS:  float64(sum) / float64(n) / 1e3,
			TotalMS: float64(sum) / 1e6,
		}, true
	}
	for op, at := range after.StageTotals {
		if d, ok := deltaOf(before.StageTotals[op], at); ok {
			totals[op] = d
		}
	}
	for op, table := range after.Stages {
		for st, at := range table {
			d, ok := deltaOf(before.Stages[op][st], at)
			if !ok {
				continue
			}
			if tot := totals[op]; tot.TotalMS > 0 && st != "read" {
				d.Share = d.TotalMS / tot.TotalMS
			}
			if stages[op] == nil {
				stages[op] = make(map[string]StageDelta)
			}
			stages[op][st] = d
		}
	}
	return stages, totals
}

// fetchServerStats pulls and decodes one STATS snapshot; failures
// degrade to a zero snapshot (the attribution tables stay empty).
func fetchServerStats(cl *Client) (ServerStats, bool) {
	blob, err := cl.Stats()
	if err != nil {
		return ServerStats{}, false
	}
	var ss ServerStats
	if err := json.Unmarshal(blob, &ss); err != nil {
		return ServerStats{}, false
	}
	return ss, true
}

// RunLoadgen drives the configured mix against a running server and
// reports throughput and latency percentiles. It fails only on setup
// errors (bad config, cannot connect); per-request rejections and
// deadline misses are counted in the report.
func RunLoadgen(cfg LoadgenConfig) (*LoadgenReport, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	addrs := append([]string{cfg.Addr}, cfg.Replicas...)
	clients := make([]*Client, cfg.Conns)
	for i := range clients {
		addr := addrs[i%len(addrs)]
		cl, err := Dial(addr)
		if err != nil {
			for _, c := range clients[:i] {
				c.Close()
			}
			return nil, fmt.Errorf("serve: dialing %s: %w", addr, err)
		}
		cl.Timeout = cfg.Timeout
		clients[i] = cl
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	var (
		metrics    = obs.NewMetrics() // wall-clock latency per op class
		ops        atomic.Uint64
		rows       atomic.Uint64
		rejected   atomic.Uint64
		rejByClass [obs.NumAdmissionClasses]atomic.Uint64
		expired    atomic.Uint64
		errs       atomic.Uint64
		notFound   atomic.Uint64
	)
	// Build every worker's key stream before starting the clock: a
	// skewed stream carries an O(keys) permutation, and Conns×Window of
	// them would otherwise eat into the measured window (at high window
	// counts, most of it).
	streams := make([]workload.KeyStream, cfg.Conns*cfg.Window)
	for w := range streams {
		s, err := cfg.keyStream(cfg.Seed + int64(w))
		if err != nil {
			return nil, err
		}
		streams[w] = s
	}

	statsBefore, statsOK := fetchServerStats(clients[0])

	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	// Window workers share each connection: the pipelined client keeps
	// their calls outstanding concurrently, so per-connection
	// concurrency is the window size, not 1.
	for i, cl := range clients {
		for j := 0; j < cfg.Window; j++ {
			stream := streams[i*cfg.Window+j]
			wg.Add(1)
			go func(cl *Client, stream workload.KeyStream, r *rand.Rand) {
				defer wg.Done()
				keys := make([]core.Key, cfg.Batch)
				for time.Now().Before(deadline) {
					dice := r.Intn(100)
					var (
						op    core.OpKind
						class = obs.AdmRead
						n     uint64
						err   error
						found = true
					)
					start := time.Now()
					switch {
					case dice < cfg.GetPct:
						op, n = core.OpSearch, 1
						_, found, err = cl.Get(stream.Next())
					case dice < cfg.GetPct+cfg.MGetPct:
						op, n = core.OpSearch, uint64(cfg.Batch)
						for j := range keys {
							keys[j] = stream.Next()
						}
						_, err = cl.MGet(keys)
					case dice < cfg.GetPct+cfg.MGetPct+cfg.ScanPct:
						op, class = core.OpScan, obs.AdmScan
						startKey := stream.Next()
						var pairs []core.Pair
						pairs, err = cl.Scan(startKey, startKey+core.Key(8*cfg.ScanLimit), cfg.ScanLimit)
						n = uint64(len(pairs))
					case dice < cfg.GetPct+cfg.MGetPct+cfg.ScanPct+cfg.StreamPct:
						// One full streaming scan per draw: the latency sample
						// covers open → every chunk → close, rows counts what
						// the chunks actually returned (keys are 8 apart, so
						// the range sizes the target row count).
						op, class = core.OpScan, obs.AdmScan
						startKey := stream.Next()
						err = cl.StreamScan(startKey, startKey+core.Key(8*cfg.StreamRows), cfg.StreamChunk, func(rows []core.Pair) bool {
							n += uint64(len(rows))
							return true
						})
					case dice < cfg.GetPct+cfg.MGetPct+cfg.ScanPct+cfg.StreamPct+cfg.PutPct:
						op, class, n = core.OpInsert, obs.AdmWrite, 1
						k := stream.Next()
						err = cl.Put(core.Pair{Key: k, TID: core.TID(k)})
					default:
						op, class, n = core.OpDelete, obs.AdmWrite, 1
						// Delete then restore, so the key space stays stable
						// across long runs.
						k := stream.Next()
						if err = cl.Del(k); err == nil {
							err = cl.Put(core.Pair{Key: k, TID: core.TID(k)})
						}
					}
					lat := time.Since(start)
					switch {
					case err == nil:
						metrics.Observe(op, lat)
						ops.Add(1)
						rows.Add(n)
						if !found {
							notFound.Add(1)
						}
					case errors.As(err, new(*RetryError)):
						rejected.Add(1)
						rejByClass[class].Add(1)
						time.Sleep(cfg.Timeout / 100)
					case errors.As(err, new(*DeadlineError)):
						expired.Add(1)
					default:
						errs.Add(1)
						return // connection-level failure: stop this worker
					}
				}
			}(cl, stream, rand.New(rand.NewSource(cfg.Seed^int64(0x9e3779b9*uint32(i*cfg.Window+j+1)))))
		}
	}
	wg.Wait()

	rep := &LoadgenReport{
		Config:            cfg,
		DurationMS:        cfg.Duration.Milliseconds(),
		Concurrency:       cfg.Conns * cfg.Window,
		Ops:               ops.Load(),
		Rows:              rows.Load(),
		Rejected:          rejected.Load(),
		RejectedByClass:   map[string]uint64{},
		Deadline:          expired.Load(),
		Errors:            errs.Load(),
		NotFound:          notFound.Load(),
		PerOp:             map[string]OpReport{},
		ServerStages:      map[string]map[string]StageDelta{},
		ServerStageTotals: map[string]StageDelta{},
	}
	if statsOK {
		if statsAfter, ok := fetchServerStats(clients[0]); ok {
			rep.ServerStages, rep.ServerStageTotals = stageDeltas(statsBefore, statsAfter)
		}
	}
	for c := obs.AdmissionClass(0); c < obs.NumAdmissionClasses; c++ {
		rep.RejectedByClass[c.String()] = rejByClass[c].Load()
	}
	rep.Throughput = float64(rep.Ops) / cfg.Duration.Seconds()
	for _, op := range []core.OpKind{core.OpSearch, core.OpScan, core.OpInsert, core.OpDelete} {
		s := metrics.Snapshot(op)
		if s.Count == 0 {
			continue
		}
		rep.PerOp[op.String()] = OpReport{
			Count:  s.Count,
			MeanUS: float64(s.Mean()) / 1e3,
			P50US:  float64(s.Quantile(0.5)) / 1e3,
			P90US:  float64(s.Quantile(0.90)) / 1e3,
			P99US:  float64(s.Quantile(0.99)) / 1e3,
			P999US: float64(s.Quantile(0.999)) / 1e3,
		}
	}
	return rep, nil
}

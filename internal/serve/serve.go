// Package serve is the serving layer of the repository: it turns the
// frozen-tree read safety of internal/core and the zero-cost native
// memory model of internal/memsys into a component that can sustain
// heavy concurrent traffic.
//
// The architecture (DESIGN.md §8):
//
//   - Store hash-partitions keys across N independent pB+-Trees. Each
//     shard has exactly one writer goroutine; reads never take a lock.
//     Writers apply mutations to a private spare tree and publish it
//     with an atomic.Pointer swap, so every read runs against an
//     immutable snapshot (copy-on-write publication, single-writer /
//     many-reader).
//   - Batcher collects concurrent point lookups into per-shard groups
//     and executes them with core.Tree.SearchBatch, the group-
//     pipelined search whose node fetches overlap in memory — the
//     serving-layer generalization of the paper's whole-node prefetch
//     (measured in the simulated `mget` experiment of internal/exp).
//   - Server is a minimal TCP front end speaking a length-prefixed
//     binary protocol (GET / MGET / SCAN / PUT / DEL / STATS) with
//     per-request deadlines, a bounded in-flight budget that rejects
//     excess load with a retry-after hint, and graceful drain.
//   - Loadgen drives configurable read/write/scan mixes with uniform,
//     Zipfian or hot-set key skew (internal/workload) and reports
//     throughput and latency percentiles.
package serve

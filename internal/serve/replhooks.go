package serve

// Replication hooks on the Store — the storage-side half of the
// log-shipping subsystem in internal/repl (which owns the protocol
// loops; DESIGN.md §13).
//
// Roles. A Store opened with StoreConfig.Replica is a follower: client
// writes are rejected with ErrNotPrimary and the shards mutate only
// through ReplicaApply (shipped WAL frames, persisted verbatim so the
// follower's WAL timeline is byte-identical to the primary's) and
// ReplicaInstall (a shipped checkpoint, for followers too far behind
// the primary's retained WAL). Promote turns a follower into a
// primary under a new, higher epoch.
//
// Fencing. The epoch is a monotone token persisted in the MANIFEST
// before it takes effect. A store that observes a higher rival epoch
// (Fence) refuses every subsequent WAL append — the check sits in
// applyBatch, in front of the group commit, so a deposed primary
// cannot acknowledge a write after its successor was promoted.
//
// Cursors. A shard's replication cursor is its durably committed LSN
// (shard.applied), maintained lock-free so STATUS probes and lag
// gauges never touch the writer. WALTail serves the primary's side of
// a cursor resume straight from its WAL segment files; when the
// cursor has been pruned past, it reports WALRetiredError and the
// caller falls back to checkpoint shipping (SnapshotShard).

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"path"

	"pbtree/internal/backend"
	"pbtree/internal/core"
	"pbtree/internal/obs"
)

// ErrNotPrimary is returned for client writes on a replica store:
// writes belong on the primary.
var ErrNotPrimary = errors.New("serve: store is a replica (writes go to the primary)")

// ErrNotReplica is returned for replication applies on a store that is
// not (or no longer) a follower.
var ErrNotReplica = errors.New("serve: store is not a replica")

// ErrFenced is returned for writes on a store that has observed a
// higher replication epoch: a successor primary exists, and extending
// this WAL timeline would split the brain.
var ErrFenced = errors.New("serve: store is fenced by a higher replication epoch")

// StaleEpochError rejects a replication message whose epoch does not
// match the store's: lower means a deposed sender, higher means the
// receiver must adopt the new epoch (or, on a primary, fence itself)
// before any data moves.
type StaleEpochError struct {
	Have uint64 // the store's epoch
	Got  uint64 // the message's epoch
}

// Error implements error.
func (e StaleEpochError) Error() string {
	return fmt.Sprintf("serve: replication epoch %d does not match store epoch %d", e.Got, e.Have)
}

// CursorGapError rejects replicated frames that do not start exactly
// after the shard's last LSN: the follower must resume from Want.
type CursorGapError struct {
	Want uint64 // the first LSN the shard can accept
}

// Error implements error.
func (e CursorGapError) Error() string {
	return fmt.Sprintf("serve: replicated frames must start at LSN %d", e.Want)
}

// WALRetiredError reports that a follower's cursor points below the
// primary's retained WAL: the log from there is gone, and the
// follower must fall back to checkpoint shipping.
type WALRetiredError struct {
	Floor uint64 // the lowest LSN still servable from the WAL
}

// Error implements error.
func (e WALRetiredError) Error() string {
	return fmt.Sprintf("serve: WAL retired below LSN %d; resync from a checkpoint", e.Floor)
}

// replApply is the special mutation carrying shipped WAL frames to a
// follower shard (ReplicaApply).
type replApply struct {
	epoch  uint64 // sender's epoch; must match the store's exactly
	from   uint64 // LSN of the first record in frames
	frames []byte // raw WAL-framed records, contiguous from `from`
}

// replInstall is the special mutation installing a shipped checkpoint
// on a follower shard (ReplicaInstall).
type replInstall struct {
	epoch   uint64 // sender's epoch; must match the store's exactly
	snapLSN uint64 // the LSN the checkpoint covers
	data    []byte // core tree stream (the ckpt-*.pbt format)
}

// snapReq is the special mutation producing an LSN-consistent
// checkpoint stream of a primary shard (SnapshotShard). The writer
// goroutine fills the results before signalling done.
type snapReq struct {
	lsn  uint64 // out: the LSN the stream covers
	data []byte // out: core tree stream
}

// isSpecial reports whether the mutation is a replication operation
// that must run alone in the shard writer, outside group commit.
func (m *mutation) isSpecial() bool {
	return m.repl != nil || m.install != nil || m.snap != nil
}

// applySpecial runs one replication mutation in the shard writer.
func (st *Store) applySpecial(sh *shard, m mutation) {
	var err error
	switch {
	case m.snap != nil:
		err = st.snapshotShard(sh, m.snap)
	case m.repl != nil:
		err = st.replicaApply(sh, m.repl)
	case m.install != nil:
		err = st.replicaInstall(sh, m.install)
	}
	if m.done != nil {
		m.done <- err
	}
}

// checkReplEpoch validates a replication message's epoch against the
// store's. Exact match is required: the follower adopts the primary's
// epoch (AdoptEpoch) before any data moves, so a mismatch here is
// always a deposed or not-yet-adopted sender.
func (st *Store) checkReplEpoch(epoch uint64) error {
	if have := st.epoch.Load(); epoch != have {
		return StaleEpochError{Have: have, Got: epoch}
	}
	return nil
}

// replicaApply persists shipped WAL frames verbatim and applies their
// records through the engine, in the shard writer. The frames were
// already framed (length, CRC) by the primary's WAL writer; the
// follower re-verifies every frame and the LSN contiguity before a
// byte lands in its own log, so the two WAL timelines stay
// byte-identical for the same LSN range.
func (st *Store) replicaApply(sh *shard, r *replApply) error {
	if !st.replica.Load() {
		return ErrNotReplica
	}
	if err := st.checkReplEpoch(r.epoch); err != nil {
		return err
	}
	if sh.walErr != nil {
		return sh.walErr
	}
	if r.from != sh.lsn+1 {
		return CursorGapError{Want: sh.lsn + 1}
	}
	ws, nrec, err := decodeReplFrames(r.frames, r.from)
	if err != nil {
		return err
	}
	if nrec == 0 {
		return nil
	}
	sh.wal.addRaw(r.frames, nrec)
	if err := sh.wal.commit(); err != nil {
		// Same fail-stop as a local append: the log tail is no longer
		// trustworthy, so accepting more records would acknowledge a
		// cursor position that cannot be recovered.
		sh.walErr = fmt.Errorf("serve: shard %d replicated WAL append: %w", sh.idx, err)
		sh.setDurErr(err)
		return sh.walErr
	}
	sh.wal.takeSyncNS()
	sh.lsn += nrec
	sh.applied.Store(sh.lsn)
	sh.walBacklog.Add(nrec)
	for _, w := range ws {
		sh.puts.Add(uint64(len(w.Puts)))
		sh.dels.Add(uint64(len(w.Dels)))
	}
	sh.version++
	var ackErr error
	if err := sh.be.ApplyBatch(ws, sh.version, sh.lsn, func(e error) {
		ackErr = e
		sh.published.Add(1)
		sh.lastPub.Store(obs.Nanotime())
	}); err != nil {
		sh.setDurErr(err)
	}
	if sh.wal.records >= uint64(st.cfg.Durable.CheckpointEvery) {
		st.checkpoint(sh)
	}
	return ackErr
}

// decodeReplFrames verifies shipped WAL frames — framing, CRC, and
// LSN contiguity from `from` — and decodes them into engine writes.
func decodeReplFrames(frames []byte, from uint64) ([]backend.Write, uint64, error) {
	var ws []backend.Write
	var n uint64
	for off := 0; off < len(frames); {
		rec, sz, err := decodeWALRecord(frames[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("serve: replicated frames: %w", err)
		}
		if rec.lsn != from+n {
			return nil, 0, fmt.Errorf("serve: replicated frames: LSN %d breaks sequence at %d", rec.lsn, from+n)
		}
		ws = append(ws, backend.Write{Puts: rec.puts, Dels: rec.dels})
		n++
		off += sz
	}
	return ws, n, nil
}

// replicaInstall replaces a follower shard's contents with a shipped
// checkpoint covering snapLSN and resets the shard's WAL timeline to
// continue from there. The replacement runs through the engine's
// normal apply path (delete everything, put the checkpoint, compact),
// so it is engine-agnostic and racefree against concurrent readers;
// then the engine checkpoints at snapLSN and the WAL restarts at
// snapLSN+1. A crash between those two steps recovers the old state
// and simply re-syncs — a follower's durability story is always
// "catch up from the primary again".
func (st *Store) replicaInstall(sh *shard, r *replInstall) error {
	if !st.replica.Load() {
		return ErrNotReplica
	}
	if err := st.checkReplEpoch(r.epoch); err != nil {
		return err
	}
	if r.snapLSN < sh.lsn {
		return nil // already past it; duplicate or reordered install
	}
	// Equality still installs: a seeded primary with no writes yet
	// snapshots at LSN 0, which a fresh follower (also at 0) needs.
	t, err := core.Load(bytes.NewReader(r.data), st.cfg.Tree.Mem, st.cfg.Fill)
	if err != nil {
		return fmt.Errorf("serve: shard %d checkpoint stream: %w", sh.idx, err)
	}
	pairs := t.AppendPairs(make([]core.Pair, 0, t.Len()))

	// Delete-all + put-all + compact, as one publication. The deletes
	// run in their own Write so they cannot shadow the incoming pairs.
	s := sh.be.Snapshot()
	cur := s.AppendPairs(make([]core.Pair, 0, s.Count()))
	s.Release()
	dels := make([]core.Key, len(cur))
	for i, p := range cur {
		dels[i] = p.Key
	}
	sh.version++
	var ackErr error
	if err := sh.be.ApplyBatch([]backend.Write{
		{Dels: dels},
		{Puts: pairs, Compact: true},
	}, sh.version, r.snapLSN, func(e error) {
		ackErr = e
		sh.published.Add(1)
		sh.lastPub.Store(obs.Nanotime())
	}); err != nil {
		sh.setDurErr(err)
	}
	if ackErr != nil {
		return ackErr
	}
	if err := sh.be.Checkpoint(r.snapLSN); err != nil {
		st.cfg.Metrics.Checkpoint(err)
		sh.setDurErr(err)
		return err
	}
	st.cfg.Metrics.Checkpoint(nil)

	// The old WAL timeline (records ≤ the old sh.lsn < snapLSN) is
	// superseded by the new engine checkpoint; recovery would skip its
	// records anyway. Restart the log at snapLSN+1.
	d := st.cfg.Durable
	dir := shardDirName(sh.idx)
	w, err := newWALWriter(d.FS, path.Join(dir, walSegName(r.snapLSN+1)), d.Fsync, d.FsyncInterval, st.cfg.Metrics)
	if err != nil {
		sh.setDurErr(err)
		return err
	}
	if sh.wal != nil {
		if err := sh.wal.close(); err != nil && sh.walErr == nil {
			sh.setDurErr(err)
		}
	}
	sh.wal, sh.walErr = w, nil // a fresh segment heals a fail-stopped log
	sh.lsn = r.snapLSN
	sh.applied.Store(sh.lsn)
	sh.walBacklog.Store(0)
	pruneWAL(d.FS, dir, r.snapLSN, r.snapLSN+1, 0)
	return nil
}

// snapshotShard serializes one shard in the core tree stream (the
// ckpt-*.pbt format), labeled with the shard's exact current LSN. It
// runs in the shard writer so no batch is in flight: the stream
// covers records 1..lsn, nothing more, nothing less. Shard writes
// queue behind the serialization; checkpoint shipping is the slow
// path and followers cache the result.
func (st *Store) snapshotShard(sh *shard, q *snapReq) error {
	s := sh.be.Snapshot()
	pairs := s.AppendPairs(make([]core.Pair, 0, s.Count()))
	s.Release()
	t, err := core.New(st.cfg.Tree)
	if err != nil {
		return err
	}
	if err := t.Bulkload(pairs, st.cfg.Fill); err != nil {
		return err
	}
	var buf bytes.Buffer
	if _, err := t.WriteTo(&buf); err != nil {
		return err
	}
	q.lsn, q.data = sh.lsn, buf.Bytes()
	return nil
}

// ReplicaApply ships WAL frames into a follower shard: the frames are
// verified (framing, CRC, LSN contiguity from `from`), persisted
// verbatim to the follower's own WAL, and applied through the engine
// as one publication. It returns CursorGapError when `from` is not
// exactly the shard's next LSN, StaleEpochError on an epoch mismatch,
// and ErrNotReplica after promotion.
func (st *Store) ReplicaApply(shard int, epoch, from uint64, frames []byte) error {
	if !st.replica.Load() {
		return ErrNotReplica
	}
	sh := st.shards[shard]
	if err := sh.waitReady(); err != nil {
		return err
	}
	done := make(chan error, 1)
	if err := st.enqueue(sh, mutation{repl: &replApply{epoch: epoch, from: from, frames: frames}, done: done}); err != nil {
		return err
	}
	return <-done
}

// ReplicaInstall replaces a follower shard's contents with a shipped
// checkpoint stream covering snapLSN (see SnapshotShard) and restarts
// its WAL timeline at snapLSN+1. Installing a checkpoint the shard
// already covers is a no-op.
func (st *Store) ReplicaInstall(shard int, epoch, snapLSN uint64, data []byte) error {
	if !st.replica.Load() {
		return ErrNotReplica
	}
	sh := st.shards[shard]
	if err := sh.waitReady(); err != nil {
		return err
	}
	done := make(chan error, 1)
	if err := st.enqueue(sh, mutation{install: &replInstall{epoch: epoch, snapLSN: snapLSN, data: data}, done: done}); err != nil {
		return err
	}
	return <-done
}

// SnapshotShard produces an LSN-consistent checkpoint stream of one
// shard in the core tree stream format, for shipping to a follower
// whose cursor fell below the retained WAL.
func (st *Store) SnapshotShard(shard int) (lsn uint64, data []byte, err error) {
	sh := st.shards[shard]
	if err := sh.waitReady(); err != nil {
		return 0, nil, err
	}
	q := &snapReq{}
	done := make(chan error, 1)
	if err := st.enqueue(sh, mutation{snap: q, done: done}); err != nil {
		return 0, nil, err
	}
	if err := <-done; err != nil {
		return 0, nil, err
	}
	return q.lsn, q.data, nil
}

// WALTail reads raw WAL frames for one shard's records with LSN in
// (after, after+n], up to roughly maxBytes (at least one record when
// any is available), straight from the shard's WAL segment files. It
// returns the frames and the record count; an empty result means the
// follower is caught up. When `after` has been pruned past, it
// returns WALRetiredError and the caller falls back to checkpoint
// shipping. Safe for any goroutine: segments are append-only and
// every frame re-verifies before shipping, so a torn tail (a group
// commit racing this read) simply ends the batch early.
func (st *Store) WALTail(shard int, after uint64, maxBytes int) ([]byte, uint64, error) {
	d := st.cfg.Durable
	if d == nil {
		return nil, 0, errors.New("serve: WAL shipping needs a durable store")
	}
	sh := st.shards[shard]
	if err := sh.waitReady(); err != nil {
		return nil, 0, err
	}
	if after == 0 && !sh.lsn0Empty {
		// The timeline starts from a non-empty (or unknown) LSN-0
		// state — a bootstrap seed, or a prior incarnation's
		// checkpoint — which no WAL record covers. A cursor at 0 must
		// take the checkpoint path.
		return nil, 0, WALRetiredError{Floor: 1}
	}
	if after >= sh.applied.Load() {
		return nil, 0, nil
	}
	dir := shardDirName(shard)
	segs, err := listWALSegs(d.FS, dir)
	if err != nil {
		return nil, 0, err
	}
	if len(segs) == 0 || after+1 < segs[0] {
		floor := sh.applied.Load() + 1
		if len(segs) > 0 {
			floor = segs[0]
		}
		return nil, 0, WALRetiredError{Floor: floor}
	}
	// Start at the newest segment whose first record is ≤ after+1 and
	// walk forward; segment starts are the contained records' floor.
	first := 0
	for i, seg := range segs {
		if seg <= after+1 {
			first = i
		}
	}
	var out []byte
	var n uint64
	next := after + 1
	for _, seg := range segs[first:] {
		if seg > next {
			// A gap between retained segments (an interrupted rotation
			// pruned unevenly): nothing past it is contiguous.
			break
		}
		blob, err := readWALSeg(d.FS, path.Join(dir, walSegName(seg)))
		if err != nil {
			return nil, 0, err
		}
		for off := 0; off < len(blob); {
			rec, sz, derr := decodeWALRecord(blob[off:])
			if derr != nil {
				// Torn tail: a group commit is mid-write (or the segment
				// really is torn — recovery's problem, not shipping's).
				return out, n, nil
			}
			if rec.lsn >= next {
				if rec.lsn != next {
					return out, n, nil // stale tail past a rotation
				}
				if len(out) > 0 && len(out)+sz > maxBytes {
					return out, n, nil
				}
				out = append(out, blob[off:off+sz]...)
				n++
				next++
			}
			off += sz
		}
	}
	return out, n, nil
}

// readWALSeg reads one WAL segment file.
func readWALSeg(fsys FS, name string) ([]byte, error) {
	f, err := fsys.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// ReplicaCursor reports one shard's replication cursor: its durably
// committed LSN. Lock-free.
func (st *Store) ReplicaCursor(shard int) uint64 {
	return st.shards[shard].applied.Load()
}

// AppliedLSNs reports every shard's replication cursor. Lock-free.
func (st *Store) AppliedLSNs() []uint64 {
	out := make([]uint64, len(st.shards))
	for i, sh := range st.shards {
		out[i] = sh.applied.Load()
	}
	return out
}

// Epoch reports the store's replication epoch (1 when replication has
// never been configured).
func (st *Store) Epoch() uint64 { return st.epoch.Load() }

// IsReplica reports whether the store is currently a follower.
func (st *Store) IsReplica() bool { return st.replica.Load() }

// Fenced reports whether the store has observed a higher rival epoch
// and therefore refuses every write.
func (st *Store) Fenced() bool { return st.fencedBy.Load() > st.epoch.Load() }

// FencedBy reports the highest rival epoch observed (0 when none).
func (st *Store) FencedBy() uint64 { return st.fencedBy.Load() }

// Fence records a rival epoch. If it exceeds the store's own epoch the
// store is fenced: every subsequent WAL append (and so every write
// acknowledgement) fails with ErrFenced. Fencing is sticky and
// monotone; it is how a deposed primary learns of its successor.
func (st *Store) Fence(epoch uint64) {
	for {
		cur := st.fencedBy.Load()
		if epoch <= cur || st.fencedBy.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// Promote turns a follower into a primary under newEpoch, which must
// exceed the store's current epoch. The new epoch is persisted in the
// MANIFEST before it takes effect, so a crash mid-promotion restarts
// either as the old follower or as the new primary — never as an
// unfenced twin of the old one.
func (st *Store) Promote(newEpoch uint64) error {
	st.manMu.Lock()
	defer st.manMu.Unlock()
	if !st.replica.Load() {
		return ErrNotReplica
	}
	if cur := st.epoch.Load(); newEpoch <= cur {
		return fmt.Errorf("serve: promotion epoch %d must exceed current epoch %d", newEpoch, cur)
	}
	if err := st.persistEpoch(newEpoch); err != nil {
		return err
	}
	st.epoch.Store(newEpoch)
	st.replica.Store(false)
	return nil
}

// AdoptEpoch raises a follower's epoch to match its primary's
// (persisting it first). Adopting the current epoch is a no-op; a
// lower epoch is rejected — the token never moves backwards.
func (st *Store) AdoptEpoch(epoch uint64) error {
	st.manMu.Lock()
	defer st.manMu.Unlock()
	if !st.replica.Load() {
		return ErrNotReplica
	}
	cur := st.epoch.Load()
	if epoch == cur {
		return nil
	}
	if epoch < cur {
		return StaleEpochError{Have: cur, Got: epoch}
	}
	if err := st.persistEpoch(epoch); err != nil {
		return err
	}
	st.epoch.Store(epoch)
	return nil
}

// persistEpoch rewrites the MANIFEST with the new epoch. Caller holds
// manMu.
func (st *Store) persistEpoch(epoch uint64) error {
	if st.cfg.Durable == nil {
		return errors.New("serve: a replication epoch needs a durable store (it is persisted in the MANIFEST)")
	}
	return writeManifest(st.cfg.Durable.FS, manifest{
		Format:  manifestFormat,
		Shards:  st.cfg.Shards,
		Backend: st.cfg.Backend,
		Epoch:   epoch,
	})
}

// SetCommitGate installs (or, with nil, removes) the synchronous-
// replication commit gate: a hook called after every durable batch's
// WAL commit and publication, with the shard index and the batch's
// last LSN, before the batch is acknowledged. A non-nil return fails
// the acknowledgement — the write is in the local WAL and visible,
// but the client is told nothing, the same contract as a crash
// between commit and ack.
func (st *Store) SetCommitGate(gate func(shard int, lsn uint64) error) {
	if gate == nil {
		st.gate.Store(nil)
		return
	}
	st.gate.Store(&gate)
}

package serve

import (
	"errors"
	"math/rand"
	"testing"

	"pbtree/internal/core"
	"pbtree/internal/memsys"
	"pbtree/internal/workload"
)

// openTest builds a small store over SortedPairs(n).
func openTest(t *testing.T, n, shards int) *Store {
	t.Helper()
	st, err := Open(StoreConfig{Shards: shards}, workload.SortedPairs(n))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Close)
	return st
}

func TestStoreGetMGetScan(t *testing.T) {
	const n = 10_000
	st := openTest(t, n, 4)
	if st.Len() != n {
		t.Fatalf("Len = %d, want %d", st.Len(), n)
	}
	r := rand.New(rand.NewSource(1))
	// Point lookups agree with the generator invariant TID = key/8.
	for i := 0; i < 1000; i++ {
		k := workload.ExistingKey(r, n)
		tid, ok := st.Get(k)
		if !ok || uint32(tid) != uint32(k)/8 {
			t.Fatalf("Get(%d) = (%d, %v)", k, tid, ok)
		}
	}
	if _, ok := st.Get(3); ok { // keys are multiples of 8
		t.Fatal("Get(3) found a key that does not exist")
	}
	// MGet agrees with Get, including misses.
	keys := make([]core.Key, 64)
	for i := range keys {
		if i%7 == 0 {
			keys[i] = core.Key(8*n + 8 + 8*i) // beyond the loaded range
		} else {
			keys[i] = workload.ExistingKey(r, n)
		}
	}
	out := make([]Lookup, len(keys))
	st.MGet(keys, out)
	for i, k := range keys {
		tid, ok := st.Get(k)
		if out[i].Found != ok || out[i].TID != tid {
			t.Fatalf("MGet[%d] key %d = %+v, Get = (%d, %v)", i, k, out[i], tid, ok)
		}
	}
	// Scan merges shards back into global key order.
	got := st.Scan(8*100, 8*200, 1000)
	if len(got) != 101 {
		t.Fatalf("Scan returned %d pairs, want 101", len(got))
	}
	for i, p := range got {
		if p.Key != core.Key(8*(100+i)) {
			t.Fatalf("Scan[%d] = key %d, want %d", i, p.Key, 8*(100+i))
		}
	}
	if got := st.Scan(8*100, 8*200, 7); len(got) != 7 {
		t.Fatalf("limited Scan returned %d pairs, want 7", len(got))
	}
}

func TestStoreWrites(t *testing.T) {
	const n = 2000
	st := openTest(t, n, 3)
	// Put a new key, overwrite an old one, delete another.
	if err := st.Put(core.Key(8*n+8), 4242); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(8, 99); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete(16); err != nil {
		t.Fatal(err)
	}
	if tid, ok := st.Get(core.Key(8*n + 8)); !ok || tid != 4242 {
		t.Fatalf("inserted key = (%d, %v)", tid, ok)
	}
	if tid, ok := st.Get(8); !ok || tid != 99 {
		t.Fatalf("overwritten key = (%d, %v)", tid, ok)
	}
	if _, ok := st.Get(16); ok {
		t.Fatal("deleted key still found")
	}
	if st.Len() != n {
		t.Fatalf("Len = %d after +1/-1, want %d", st.Len(), n)
	}
	// Dump returns everything in key order.
	dump := st.Dump()
	if len(dump) != n {
		t.Fatalf("Dump has %d pairs, want %d", len(dump), n)
	}
	for i := 1; i < len(dump); i++ {
		if dump[i-1].Key >= dump[i].Key {
			t.Fatalf("Dump out of order at %d: %d >= %d", i, dump[i-1].Key, dump[i].Key)
		}
	}
	// Batch put lands atomically and is visible after the ack.
	batch := []core.Pair{{Key: 8 * (n + 10), TID: 1}, {Key: 8 * (n + 11), TID: 2}, {Key: 8 * (n + 12), TID: 3}}
	if err := st.PutBatch(batch); err != nil {
		t.Fatal(err)
	}
	for _, p := range batch {
		if tid, ok := st.Get(p.Key); !ok || tid != p.TID {
			t.Fatalf("PutBatch key %d = (%d, %v)", p.Key, tid, ok)
		}
	}
	// Compact publishes a rebuilt snapshot with the same contents.
	before := st.Dump()
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	after := st.Dump()
	if len(before) != len(after) {
		t.Fatalf("Compact changed count %d -> %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("Compact changed pair %d: %+v -> %+v", i, before[i], after[i])
		}
	}
}

func TestStoreStatsAndVersions(t *testing.T) {
	st := openTest(t, 1000, 2)
	s0 := st.Stats()
	if len(s0.Shards) != 2 || s0.Count != 1000 {
		t.Fatalf("initial stats: %+v", s0)
	}
	for _, sh := range s0.Shards {
		if sh.Version != 1 {
			t.Fatalf("initial version %d, want 1", sh.Version)
		}
	}
	k := core.Key(8 * 2000)
	if err := st.Put(k, 1); err != nil {
		t.Fatal(err)
	}
	s1 := st.Stats()
	bumped := 0
	for i := range s1.Shards {
		if s1.Shards[i].Version > s0.Shards[i].Version {
			bumped++
		}
	}
	if bumped != 1 {
		t.Fatalf("one Put bumped %d shard versions, want 1", bumped)
	}
	if s1.Count != 1001 {
		t.Fatalf("count after Put = %d", s1.Count)
	}
}

func TestStoreClosedAndConfig(t *testing.T) {
	st, err := Open(StoreConfig{Shards: 2}, workload.SortedPairs(100))
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	st.Close() // idempotent
	if err := st.Put(8, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put on closed store: %v", err)
	}
	if _, ok := st.Get(8); !ok { // reads stay valid
		t.Fatal("Get failed on closed store")
	}
	// Misconfigurations are rejected.
	if _, err := Open(StoreConfig{Tree: core.Config{Mem: memsys.Default()}}, nil); err == nil {
		t.Fatal("Open accepted the single-threaded simulated hierarchy")
	}
	if _, err := Open(StoreConfig{Shards: -1}, nil); err == nil {
		t.Fatal("Open accepted negative shard count")
	}
	if _, err := Open(StoreConfig{Fill: 1.5}, nil); err == nil {
		t.Fatal("Open accepted fill > 1")
	}
}

func TestStoreBackpressure(t *testing.T) {
	// A tiny queue with a stalled writer must reject, not block.
	st, err := Open(StoreConfig{Shards: 1, QueueLen: 1, MaxBatch: 1}, workload.SortedPairs(10))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Saturate: fire async writes until one rejects. The writer drains
	// continuously, so loop a bounded number of times.
	saw := false
	for i := 0; i < 10_000 && !saw; i++ {
		err := st.enqueue(st.shards[0], mutation{puts: []core.Pair{{Key: 8, TID: 1}}})
		saw = errors.Is(err, ErrOverloaded)
	}
	if !saw {
		t.Fatal("queue of length 1 never reported ErrOverloaded under 10k async writes")
	}
}

func TestMergeRuns(t *testing.T) {
	p := func(ks ...int) []core.Pair {
		out := make([]core.Pair, len(ks))
		for i, k := range ks {
			out[i] = core.Pair{Key: core.Key(k), TID: core.TID(k)}
		}
		return out
	}
	got := mergeRuns([][]core.Pair{p(1, 4, 7), p(2, 5), p(3, 6, 8, 9)}, 100)
	for i, pr := range got {
		if int(pr.Key) != i+1 {
			t.Fatalf("merge[%d] = %d", i, pr.Key)
		}
	}
	if len(got) != 9 {
		t.Fatalf("merge length %d", len(got))
	}
	if got := mergeRuns([][]core.Pair{p(1, 2), p(3)}, 2); len(got) != 2 {
		t.Fatalf("limited merge length %d", len(got))
	}
	if got := mergeRuns(nil, 5); got != nil {
		t.Fatalf("empty merge = %v", got)
	}
}

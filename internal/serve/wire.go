package serve

// The wire protocol: length-prefixed binary frames over TCP. Every
// frame is a uint32 little-endian payload length followed by the
// payload; requests and responses use the same framing. The encoding
// is explicit (no reflection) so the codec is allocation-light and the
// decoder can enforce bounds field by field — a decoder that trusts an
// attacker-chosen count is how servers die (see the fuzz harnesses in
// wire_test.go).
//
// PROTOCOL.md is the normative byte-by-byte specification of both
// protocol versions, with example frames that protocol_test.go checks
// against this codec byte for byte. The short form:
//
// Version 1 request payload:
//
//	op        uint8   (Get=1 MGet=2 Scan=3 Put=4 Del=5 Stats=6 Hello=7
//	                   Replicate=8 ScanOpen=9 ScanNext=10 ScanClose=11)
//	deadline  uint32  per-request deadline in ms, 0 = none
//	...               op-specific fields, below
//
// Version 1 response payload:
//
//	status    uint8   (OK=0 NotFound=1 Retry=2 Err=3 Deadline=4)
//	...               status/op-specific fields, below
//
// Version 2 (negotiated with a HELLO exchange at connect, see
// AppendRequestV2) prefixes both payloads with a uint32 request ID
// chosen by the client; the server may answer IDs in any order, which
// is what makes connections full-duplex pipelines.

import (
	"encoding/binary"
	"fmt"
	"io"

	"pbtree/internal/core"
)

// Op identifies a request operation.
type Op uint8

// The wire operations.
const (
	OpGet   Op = 1
	OpMGet  Op = 2
	OpScan  Op = 3
	OpPut   Op = 4
	OpDel   Op = 5
	OpStats Op = 6
	OpHello Op = 7 // version negotiation; must be the first request on a connection

	// OpReplicate is the replication control class: a follower pulls
	// WAL records (and, when too far behind, checkpoint chunks) from
	// its primary, any node answers role/epoch/LSN status probes, and
	// a promoted follower fences its deposed primary. The sub-command
	// is ReplReq.Kind (PROTOCOL.md §9).
	OpReplicate Op = 8

	// The streaming-scan ops (PROTOCOL.md §10): SCANOPEN registers a
	// cursor over a pinned snapshot, SCANNEXT pulls one bounded chunk
	// of rows (admitting only that chunk's row tokens), SCANCLOSE
	// releases the cursor. Together they replace a monolithic SCAN for
	// OLAP-sized ranges whose full row count would otherwise hold the
	// scan token budget for the duration of the request.
	OpScanOpen  Op = 9
	OpScanNext  Op = 10
	OpScanClose Op = 11
)

// Protocol versions. A connection starts in ProtoV1; a HELLO exchange
// upgrades it to ProtoV2 (request IDs, pipelining) when both sides
// support it. PROTOCOL.md §3 specifies the negotiation.
const (
	ProtoV1 = 1
	ProtoV2 = 2
)

// String names an op for metrics and errors.
func (o Op) String() string {
	switch o {
	case OpGet:
		return "get"
	case OpMGet:
		return "mget"
	case OpScan:
		return "scan"
	case OpPut:
		return "put"
	case OpDel:
		return "del"
	case OpStats:
		return "stats"
	case OpHello:
		return "hello"
	case OpReplicate:
		return "replicate"
	case OpScanOpen:
		return "scanopen"
	case OpScanNext:
		return "scannext"
	case OpScanClose:
		return "scanclose"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// ReplKind selects the REPLICATE sub-command (PROTOCOL.md §9).
type ReplKind uint8

// The REPLICATE sub-commands. Requests and responses use the same
// kind values; a response always mirrors its request's kind, except
// that a FETCH against a retired WAL position is answered ReplSnap
// (the redirect to checkpoint shipping).
const (
	// ReplStatus asks any node for its role, epoch and per-shard
	// applied LSNs — the probe behind bounded-staleness reads and
	// failover tooling.
	ReplStatus ReplKind = 1

	// ReplFetch asks a primary for the WAL records of one shard after
	// a follower-supplied cursor; the follower's durably applied LSN
	// rides along as the acknowledgement for lag tracking and
	// synchronous replication.
	ReplFetch ReplKind = 2

	// ReplSnapFetch streams one chunk of a shard checkpoint — the
	// catch-up path when the follower's cursor predates the primary's
	// retained WAL.
	ReplSnapFetch ReplKind = 3

	// ReplFence tells a node that a higher epoch exists: a deposed
	// primary stops acknowledging writes the moment it sees one.
	ReplFence ReplKind = 4

	// ReplSnap is the response kind carrying checkpoint metadata or a
	// chunk (it answers ReplSnapFetch, and ReplFetch when the cursor
	// is retired).
	ReplSnap ReplKind = 3
)

// String names a replication sub-command for errors and logs.
func (k ReplKind) String() string {
	switch k {
	case ReplStatus:
		return "status"
	case ReplFetch:
		return "fetch"
	case ReplSnapFetch:
		return "snapfetch"
	case ReplFence:
		return "fence"
	}
	return fmt.Sprintf("replkind(%d)", uint8(k))
}

// ReplRole is a node's replication role in a STATUS response.
type ReplRole uint8

// The replication roles.
const (
	RolePrimary ReplRole = 1 // accepts writes, serves FETCH
	RoleReplica ReplRole = 2 // applies shipped records, serves reads
	RoleFenced  ReplRole = 3 // deposed primary: every append is rejected
)

// String names a role for logs and the admin plane.
func (r ReplRole) String() string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleReplica:
		return "replica"
	case RoleFenced:
		return "fenced"
	}
	return fmt.Sprintf("role(%d)", uint8(r))
}

// Status is a response status.
type Status uint8

// The wire statuses.
const (
	StatusOK       Status = 0
	StatusNotFound Status = 1
	StatusRetry    Status = 2 // server overloaded; retry after the hint
	StatusErr      Status = 3
	StatusDeadline Status = 4 // request deadline expired before execution

	// StatusFenced rejects a replication request whose epoch is not
	// the responder's: the payload carries the highest epoch the
	// responder has seen, so a deposed peer learns it is deposed from
	// the rejection itself (PROTOCOL.md §9).
	StatusFenced Status = 5
)

// Wire-format bounds. The codec rejects frames that exceed them so a
// hostile peer cannot make either side allocate unbounded memory.
const (
	MaxFrame      = 16 << 20 // bytes of payload per frame
	MaxMGetKeys   = 1 << 16  // keys per MGET / DEL, pairs per PUT
	MaxScanRows   = 1 << 20  // row limit per SCAN
	MaxScanChunk  = 1 << 16  // rows per SCANNEXT chunk
	MaxReplBytes  = 1 << 20  // WAL-record / checkpoint-chunk bytes per REPLICATE frame
	MaxReplShards = 1 << 16  // per-shard LSNs per STATUS response
	maxErrLen     = 1 << 16  // bytes of error text per response
)

// ReplReq carries the REPLICATE request fields; which are meaningful
// depends on Kind (PROTOCOL.md §9).
type ReplReq struct {
	Kind    ReplKind // sub-command; selects the fields below
	Epoch   uint64   // sender's replication epoch (0 on a STATUS probe = unknown)
	Shard   uint32   // target shard (Fetch, SnapFetch)
	After   uint64   // Fetch: stream records with LSN > After
	Applied uint64   // Fetch: follower's durably applied LSN (the ack)
	SnapLSN uint64   // SnapFetch: checkpoint being fetched (0 = whatever is current)
	Offset  uint64   // SnapFetch: byte offset into the checkpoint stream
	Max     uint32   // Fetch, SnapFetch: response payload byte budget (0 = server default)
}

// ReplResp carries the REPLICATE response fields of a StatusOK answer;
// which are meaningful depends on Kind (PROTOCOL.md §9).
type ReplResp struct {
	Kind       ReplKind // mirrors the request (ReplSnap answers a retired Fetch too)
	Epoch      uint64   // responder's replication epoch
	Role       ReplRole // Status: the responder's role
	ShardLSNs  []uint64 // Status: durably applied LSN per shard, in shard order
	PrimaryLSN uint64   // Fetch: the primary's own last LSN for the shard (lag = PrimaryLSN - cursor)
	Count      uint32   // Fetch: WAL records in Records
	Records    []byte   // Fetch: raw WAL-framed records, LSNs contiguous from After+1
	SnapLSN    uint64   // Snap: the checkpoint's coverage LSN
	SnapSize   uint64   // Snap: total checkpoint stream size in bytes
	Offset     uint64   // Snap: byte offset of Chunk
	Done       bool     // Snap: Chunk is the final one
	Chunk      []byte   // Snap: checkpoint stream bytes at Offset (empty on a Fetch redirect)
}

// Request is one decoded client request.
type Request struct {
	Op         Op          // which operation; selects the fields below
	DeadlineMS uint32      // 0 = no deadline
	Keys       []core.Key  // Get (1 key), MGet, Del
	Pairs      []core.Pair // Put
	Start, End core.Key    // Scan, ScanOpen
	Limit      uint32      // Scan
	Cursor     uint64      // ScanNext, ScanClose: cursor being driven (never 0)
	Max        uint32      // ScanNext: row budget for this chunk, in [1, MaxScanChunk]
	MaxVersion uint8       // Hello: highest protocol version the client speaks (>= 1)
	Repl       *ReplReq    // Replicate
}

// Response is one decoded server response.
type Response struct {
	Status       Status      // outcome; selects the fields below
	RetryAfterMS uint32      // StatusRetry
	Err          string      // StatusErr
	Lookups      []Lookup    // Get, MGet (aligned with request keys)
	Pairs        []core.Pair // Scan
	Stats        []byte      // Stats (JSON)
	Cursor       uint64      // ScanOpen: the cursor the server registered (never 0)
	ScanChunk    bool        // ScanNext: Pairs is one streaming chunk ('N' tag, not 'P')
	ScanDone     bool        // ScanNext: the scan is exhausted; the cursor is already closed
	Version      uint8       // Hello: negotiated protocol version (>= 1)
	Window       uint32      // Hello: per-connection pipeline depth the server executes
	Repl         *ReplResp   // Replicate (StatusOK)
	FencedEpoch  uint64      // StatusFenced: highest epoch the responder has seen
}

// appendU32 appends a little-endian uint32.
func appendU32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

// appendU64 appends a little-endian uint64.
func appendU64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

// AppendRequest appends the encoded payload of r (without framing).
func AppendRequest(dst []byte, r *Request) ([]byte, error) {
	dst = append(dst, byte(r.Op))
	dst = appendU32(dst, r.DeadlineMS)
	switch r.Op {
	case OpGet:
		if len(r.Keys) != 1 {
			return nil, fmt.Errorf("serve: GET wants exactly one key, got %d", len(r.Keys))
		}
		dst = appendU32(dst, uint32(r.Keys[0]))
	case OpMGet, OpDel:
		if len(r.Keys) == 0 || len(r.Keys) > MaxMGetKeys {
			return nil, fmt.Errorf("serve: %s with %d keys outside [1, %d]", r.Op, len(r.Keys), MaxMGetKeys)
		}
		dst = appendU32(dst, uint32(len(r.Keys)))
		for _, k := range r.Keys {
			dst = appendU32(dst, uint32(k))
		}
	case OpScan:
		if r.Limit == 0 || r.Limit > MaxScanRows {
			return nil, fmt.Errorf("serve: SCAN limit %d outside [1, %d]", r.Limit, MaxScanRows)
		}
		dst = appendU32(dst, uint32(r.Start))
		dst = appendU32(dst, uint32(r.End))
		dst = appendU32(dst, r.Limit)
	case OpPut:
		if len(r.Pairs) == 0 || len(r.Pairs) > MaxMGetKeys {
			return nil, fmt.Errorf("serve: PUT with %d pairs outside [1, %d]", len(r.Pairs), MaxMGetKeys)
		}
		dst = appendU32(dst, uint32(len(r.Pairs)))
		for _, p := range r.Pairs {
			dst = appendU32(dst, uint32(p.Key))
			dst = appendU32(dst, uint32(p.TID))
		}
	case OpScanOpen:
		dst = appendU32(dst, uint32(r.Start))
		dst = appendU32(dst, uint32(r.End))
	case OpScanNext:
		if r.Cursor == 0 {
			return nil, fmt.Errorf("serve: SCANNEXT with cursor 0")
		}
		if r.Max == 0 || r.Max > MaxScanChunk {
			return nil, fmt.Errorf("serve: SCANNEXT chunk %d outside [1, %d]", r.Max, MaxScanChunk)
		}
		dst = appendU64(dst, r.Cursor)
		dst = appendU32(dst, r.Max)
	case OpScanClose:
		if r.Cursor == 0 {
			return nil, fmt.Errorf("serve: SCANCLOSE with cursor 0")
		}
		dst = appendU64(dst, r.Cursor)
	case OpStats:
	case OpHello:
		if r.MaxVersion < 1 {
			return nil, fmt.Errorf("serve: HELLO with max version %d < 1", r.MaxVersion)
		}
		dst = append(dst, r.MaxVersion)
	case OpReplicate:
		return appendReplReq(dst, r.Repl)
	default:
		return nil, fmt.Errorf("serve: unknown op %d", r.Op)
	}
	return dst, nil
}

// appendReplReq appends the REPLICATE request body (after op +
// deadline): kind, epoch, shard, then the kind-specific fields.
func appendReplReq(dst []byte, rq *ReplReq) ([]byte, error) {
	if rq == nil {
		return nil, fmt.Errorf("serve: REPLICATE request without a body")
	}
	dst = append(dst, byte(rq.Kind))
	dst = appendU64(dst, rq.Epoch)
	dst = appendU32(dst, rq.Shard)
	switch rq.Kind {
	case ReplStatus, ReplFence:
	case ReplFetch:
		if rq.Max > MaxReplBytes {
			return nil, fmt.Errorf("serve: FETCH byte budget %d exceeds %d", rq.Max, MaxReplBytes)
		}
		dst = appendU64(dst, rq.After)
		dst = appendU64(dst, rq.Applied)
		dst = appendU32(dst, rq.Max)
	case ReplSnapFetch:
		if rq.Max > MaxReplBytes {
			return nil, fmt.Errorf("serve: SNAPFETCH byte budget %d exceeds %d", rq.Max, MaxReplBytes)
		}
		dst = appendU64(dst, rq.SnapLSN)
		dst = appendU64(dst, rq.Offset)
		dst = appendU32(dst, rq.Max)
	default:
		return nil, fmt.Errorf("serve: unknown REPLICATE kind %d", rq.Kind)
	}
	return dst, nil
}

// reader walks an encoded payload with bounds checks.
type reader struct {
	b []byte
}

func (rd *reader) u8() (uint8, error) {
	if len(rd.b) < 1 {
		return 0, io.ErrUnexpectedEOF
	}
	v := rd.b[0]
	rd.b = rd.b[1:]
	return v, nil
}

func (rd *reader) u32() (uint32, error) {
	if len(rd.b) < 4 {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.LittleEndian.Uint32(rd.b)
	rd.b = rd.b[4:]
	return v, nil
}

func (rd *reader) u64() (uint64, error) {
	if len(rd.b) < 8 {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.LittleEndian.Uint64(rd.b)
	rd.b = rd.b[8:]
	return v, nil
}

// bytes reads a u32 length-prefixed byte string bounded by bound,
// copying it out of the frame buffer.
func (rd *reader) bytes(bound uint32) ([]byte, error) {
	n, err := rd.u32()
	if err != nil {
		return nil, err
	}
	if n > bound {
		return nil, fmt.Errorf("serve: byte string of %d exceeds %d", n, bound)
	}
	if int(n) > len(rd.b) {
		return nil, io.ErrUnexpectedEOF
	}
	out := append([]byte(nil), rd.b[:n]...)
	rd.b = rd.b[n:]
	return out, nil
}

// count reads a count field and checks it against a bound AND against
// the bytes actually remaining (per-element size), so a lying count in
// a short frame can never size an allocation. Requests require at
// least one element; responses may carry empty lists (count0).
func (rd *reader) count(bound uint32, elemBytes int) (int, error) {
	n, err := rd.count0(bound, elemBytes)
	if err == nil && n == 0 {
		return 0, fmt.Errorf("serve: count 0 outside [1, %d]", bound)
	}
	return n, err
}

func (rd *reader) count0(bound uint32, elemBytes int) (int, error) {
	n, err := rd.u32()
	if err != nil {
		return 0, err
	}
	if n > bound {
		return 0, fmt.Errorf("serve: count %d exceeds %d", n, bound)
	}
	if int(n)*elemBytes > len(rd.b) {
		return 0, io.ErrUnexpectedEOF
	}
	return int(n), nil
}

func (rd *reader) done() error {
	if len(rd.b) != 0 {
		return fmt.Errorf("serve: %d trailing bytes in frame", len(rd.b))
	}
	return nil
}

// DecodeRequest parses a request payload produced by AppendRequest.
func DecodeRequest(payload []byte) (*Request, error) {
	rd := &reader{b: payload}
	op, err := rd.u8()
	if err != nil {
		return nil, err
	}
	r := &Request{Op: Op(op)}
	if r.DeadlineMS, err = rd.u32(); err != nil {
		return nil, err
	}
	switch r.Op {
	case OpGet:
		k, err := rd.u32()
		if err != nil {
			return nil, err
		}
		r.Keys = []core.Key{core.Key(k)}
	case OpMGet, OpDel:
		n, err := rd.count(MaxMGetKeys, 4)
		if err != nil {
			return nil, err
		}
		r.Keys = make([]core.Key, n)
		for i := range r.Keys {
			k, _ := rd.u32()
			r.Keys[i] = core.Key(k)
		}
	case OpScan:
		var s, e uint32
		if s, err = rd.u32(); err != nil {
			return nil, err
		}
		if e, err = rd.u32(); err != nil {
			return nil, err
		}
		if r.Limit, err = rd.u32(); err != nil {
			return nil, err
		}
		if r.Limit == 0 || r.Limit > MaxScanRows {
			return nil, fmt.Errorf("serve: SCAN limit %d outside [1, %d]", r.Limit, MaxScanRows)
		}
		r.Start, r.End = core.Key(s), core.Key(e)
	case OpPut:
		n, err := rd.count(MaxMGetKeys, 8)
		if err != nil {
			return nil, err
		}
		r.Pairs = make([]core.Pair, n)
		for i := range r.Pairs {
			k, _ := rd.u32()
			t, _ := rd.u32()
			r.Pairs[i] = core.Pair{Key: core.Key(k), TID: core.TID(t)}
		}
	case OpScanOpen:
		var s, e uint32
		if s, err = rd.u32(); err != nil {
			return nil, err
		}
		if e, err = rd.u32(); err != nil {
			return nil, err
		}
		r.Start, r.End = core.Key(s), core.Key(e)
	case OpScanNext:
		if r.Cursor, err = rd.u64(); err != nil {
			return nil, err
		}
		if r.Cursor == 0 {
			return nil, fmt.Errorf("serve: SCANNEXT with cursor 0")
		}
		if r.Max, err = rd.u32(); err != nil {
			return nil, err
		}
		if r.Max == 0 || r.Max > MaxScanChunk {
			return nil, fmt.Errorf("serve: SCANNEXT chunk %d outside [1, %d]", r.Max, MaxScanChunk)
		}
	case OpScanClose:
		if r.Cursor, err = rd.u64(); err != nil {
			return nil, err
		}
		if r.Cursor == 0 {
			return nil, fmt.Errorf("serve: SCANCLOSE with cursor 0")
		}
	case OpStats:
	case OpHello:
		if r.MaxVersion, err = rd.u8(); err != nil {
			return nil, err
		}
		if r.MaxVersion < 1 {
			return nil, fmt.Errorf("serve: HELLO with max version %d < 1", r.MaxVersion)
		}
	case OpReplicate:
		if r.Repl, err = decodeReplReq(rd); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("serve: unknown op %d", op)
	}
	if err := rd.done(); err != nil {
		return nil, err
	}
	return r, nil
}

// decodeReplReq parses the REPLICATE request body.
func decodeReplReq(rd *reader) (*ReplReq, error) {
	k, err := rd.u8()
	if err != nil {
		return nil, err
	}
	rq := &ReplReq{Kind: ReplKind(k)}
	if rq.Epoch, err = rd.u64(); err != nil {
		return nil, err
	}
	if rq.Shard, err = rd.u32(); err != nil {
		return nil, err
	}
	switch rq.Kind {
	case ReplStatus, ReplFence:
	case ReplFetch:
		if rq.After, err = rd.u64(); err != nil {
			return nil, err
		}
		if rq.Applied, err = rd.u64(); err != nil {
			return nil, err
		}
		if rq.Max, err = rd.u32(); err != nil {
			return nil, err
		}
		if rq.Max > MaxReplBytes {
			return nil, fmt.Errorf("serve: FETCH byte budget %d exceeds %d", rq.Max, MaxReplBytes)
		}
	case ReplSnapFetch:
		if rq.SnapLSN, err = rd.u64(); err != nil {
			return nil, err
		}
		if rq.Offset, err = rd.u64(); err != nil {
			return nil, err
		}
		if rq.Max, err = rd.u32(); err != nil {
			return nil, err
		}
		if rq.Max > MaxReplBytes {
			return nil, fmt.Errorf("serve: SNAPFETCH byte budget %d exceeds %d", rq.Max, MaxReplBytes)
		}
	default:
		return nil, fmt.Errorf("serve: unknown REPLICATE kind %d", k)
	}
	return rq, nil
}

// AppendResponse appends the encoded payload of rs (without framing).
func AppendResponse(dst []byte, rs *Response) ([]byte, error) {
	dst = append(dst, byte(rs.Status))
	switch rs.Status {
	case StatusRetry:
		return appendU32(dst, rs.RetryAfterMS), nil
	case StatusErr:
		msg := rs.Err
		if len(msg) > maxErrLen {
			msg = msg[:maxErrLen]
		}
		dst = appendU32(dst, uint32(len(msg)))
		return append(dst, msg...), nil
	case StatusNotFound, StatusDeadline:
		return dst, nil
	case StatusFenced:
		return appendU64(dst, rs.FencedEpoch), nil
	case StatusOK:
	default:
		return nil, fmt.Errorf("serve: unknown status %d", rs.Status)
	}
	// StatusOK: exactly one of the payload kinds, tagged.
	switch {
	case rs.Repl != nil:
		return appendReplResp(dst, rs.Repl)
	case rs.Version != 0:
		dst = append(dst, 'V')
		dst = append(dst, rs.Version)
		dst = appendU32(dst, rs.Window)
	case rs.ScanChunk:
		if len(rs.Pairs) > MaxScanChunk {
			return nil, fmt.Errorf("serve: %d chunk rows exceed %d", len(rs.Pairs), MaxScanChunk)
		}
		dst = append(dst, 'N')
		if rs.ScanDone {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = appendU32(dst, uint32(len(rs.Pairs)))
		for _, p := range rs.Pairs {
			dst = appendU32(dst, uint32(p.Key))
			dst = appendU32(dst, uint32(p.TID))
		}
	case rs.Cursor != 0:
		dst = append(dst, 'C')
		dst = appendU64(dst, rs.Cursor)
	case rs.Lookups != nil:
		if len(rs.Lookups) > MaxMGetKeys {
			return nil, fmt.Errorf("serve: %d lookups exceed %d", len(rs.Lookups), MaxMGetKeys)
		}
		dst = append(dst, 'L')
		dst = appendU32(dst, uint32(len(rs.Lookups)))
		for _, l := range rs.Lookups {
			dst = appendU32(dst, uint32(l.TID))
			if l.Found {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		}
	case rs.Pairs != nil:
		if len(rs.Pairs) > MaxScanRows {
			return nil, fmt.Errorf("serve: %d pairs exceed %d", len(rs.Pairs), MaxScanRows)
		}
		dst = append(dst, 'P')
		dst = appendU32(dst, uint32(len(rs.Pairs)))
		for _, p := range rs.Pairs {
			dst = appendU32(dst, uint32(p.Key))
			dst = appendU32(dst, uint32(p.TID))
		}
	case rs.Stats != nil:
		if len(rs.Stats) > MaxFrame/2 {
			return nil, fmt.Errorf("serve: stats blob of %d bytes exceeds %d", len(rs.Stats), MaxFrame/2)
		}
		dst = append(dst, 'S')
		dst = appendU32(dst, uint32(len(rs.Stats)))
		dst = append(dst, rs.Stats...)
	default:
		dst = append(dst, 'E') // empty OK (PUT/DEL ack)
	}
	return dst, nil
}

// appendReplResp appends the 'R'-tagged REPLICATE response payload.
func appendReplResp(dst []byte, rp *ReplResp) ([]byte, error) {
	dst = append(dst, 'R')
	dst = append(dst, byte(rp.Kind))
	dst = appendU64(dst, rp.Epoch)
	switch rp.Kind {
	case ReplStatus:
		if len(rp.ShardLSNs) > MaxReplShards {
			return nil, fmt.Errorf("serve: %d shard LSNs exceed %d", len(rp.ShardLSNs), MaxReplShards)
		}
		dst = append(dst, byte(rp.Role))
		dst = appendU32(dst, uint32(len(rp.ShardLSNs)))
		for _, lsn := range rp.ShardLSNs {
			dst = appendU64(dst, lsn)
		}
	case ReplFetch:
		if len(rp.Records) > MaxReplBytes {
			return nil, fmt.Errorf("serve: %d record bytes exceed %d", len(rp.Records), MaxReplBytes)
		}
		dst = appendU64(dst, rp.PrimaryLSN)
		dst = appendU32(dst, rp.Count)
		dst = appendU32(dst, uint32(len(rp.Records)))
		dst = append(dst, rp.Records...)
	case ReplSnap:
		if len(rp.Chunk) > MaxReplBytes {
			return nil, fmt.Errorf("serve: %d chunk bytes exceed %d", len(rp.Chunk), MaxReplBytes)
		}
		dst = appendU64(dst, rp.SnapLSN)
		dst = appendU64(dst, rp.SnapSize)
		dst = appendU64(dst, rp.Offset)
		if rp.Done {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = appendU32(dst, uint32(len(rp.Chunk)))
		dst = append(dst, rp.Chunk...)
	case ReplFence:
	default:
		return nil, fmt.Errorf("serve: unknown REPLICATE kind %d", rp.Kind)
	}
	return dst, nil
}

// DecodeResponse parses a response payload produced by AppendResponse.
func DecodeResponse(payload []byte) (*Response, error) {
	rd := &reader{b: payload}
	st, err := rd.u8()
	if err != nil {
		return nil, err
	}
	rs := &Response{Status: Status(st)}
	switch rs.Status {
	case StatusRetry:
		if rs.RetryAfterMS, err = rd.u32(); err != nil {
			return nil, err
		}
		return rs, rd.done()
	case StatusErr:
		n, err := rd.u32()
		if err != nil {
			return nil, err
		}
		if int(n) > len(rd.b) || n > maxErrLen {
			return nil, fmt.Errorf("serve: error text of %d bytes out of bounds", n)
		}
		rs.Err = string(rd.b[:n])
		rd.b = rd.b[n:]
		return rs, rd.done()
	case StatusNotFound, StatusDeadline:
		return rs, rd.done()
	case StatusFenced:
		if rs.FencedEpoch, err = rd.u64(); err != nil {
			return nil, err
		}
		return rs, rd.done()
	case StatusOK:
	default:
		return nil, fmt.Errorf("serve: unknown status %d", st)
	}
	tag, err := rd.u8()
	if err != nil {
		return nil, err
	}
	switch tag {
	case 'V':
		if rs.Version, err = rd.u8(); err != nil {
			return nil, err
		}
		if rs.Version < 1 {
			return nil, fmt.Errorf("serve: HELLO answered version %d < 1", rs.Version)
		}
		if rs.Window, err = rd.u32(); err != nil {
			return nil, err
		}
	case 'L':
		n, err := rd.count0(MaxMGetKeys, 5)
		if err != nil {
			return nil, err
		}
		rs.Lookups = make([]Lookup, n)
		for i := range rs.Lookups {
			t, _ := rd.u32()
			f, err := rd.u8()
			if err != nil {
				return nil, err
			}
			if f > 1 {
				return nil, fmt.Errorf("serve: bad found flag %d", f)
			}
			rs.Lookups[i] = Lookup{TID: core.TID(t), Found: f == 1}
		}
	case 'P':
		n, err := rd.count0(MaxScanRows, 8)
		if err != nil {
			return nil, err
		}
		rs.Pairs = make([]core.Pair, n)
		for i := range rs.Pairs {
			k, _ := rd.u32()
			t, _ := rd.u32()
			rs.Pairs[i] = core.Pair{Key: core.Key(k), TID: core.TID(t)}
		}
	case 'N':
		d, err := rd.u8()
		if err != nil {
			return nil, err
		}
		if d > 1 {
			return nil, fmt.Errorf("serve: bad scan done flag %d", d)
		}
		rs.ScanChunk, rs.ScanDone = true, d == 1
		n, err := rd.count0(MaxScanChunk, 8)
		if err != nil {
			return nil, err
		}
		rs.Pairs = make([]core.Pair, n)
		for i := range rs.Pairs {
			k, _ := rd.u32()
			t, _ := rd.u32()
			rs.Pairs[i] = core.Pair{Key: core.Key(k), TID: core.TID(t)}
		}
	case 'C':
		if rs.Cursor, err = rd.u64(); err != nil {
			return nil, err
		}
		if rs.Cursor == 0 {
			return nil, fmt.Errorf("serve: SCANOPEN answered cursor 0")
		}
	case 'S':
		n, err := rd.u32()
		if err != nil {
			return nil, err
		}
		if int(n) > len(rd.b) {
			return nil, io.ErrUnexpectedEOF
		}
		rs.Stats = append([]byte(nil), rd.b[:n]...)
		rd.b = rd.b[n:]
	case 'R':
		if rs.Repl, err = decodeReplResp(rd); err != nil {
			return nil, err
		}
	case 'E':
	default:
		return nil, fmt.Errorf("serve: unknown OK payload tag %q", tag)
	}
	return rs, rd.done()
}

// decodeReplResp parses the 'R'-tagged REPLICATE response payload.
func decodeReplResp(rd *reader) (*ReplResp, error) {
	k, err := rd.u8()
	if err != nil {
		return nil, err
	}
	rp := &ReplResp{Kind: ReplKind(k)}
	if rp.Epoch, err = rd.u64(); err != nil {
		return nil, err
	}
	switch rp.Kind {
	case ReplStatus:
		role, err := rd.u8()
		if err != nil {
			return nil, err
		}
		if role < uint8(RolePrimary) || role > uint8(RoleFenced) {
			return nil, fmt.Errorf("serve: unknown replication role %d", role)
		}
		rp.Role = ReplRole(role)
		n, err := rd.count0(MaxReplShards, 8)
		if err != nil {
			return nil, err
		}
		rp.ShardLSNs = make([]uint64, n)
		for i := range rp.ShardLSNs {
			rp.ShardLSNs[i], _ = rd.u64()
		}
	case ReplFetch:
		if rp.PrimaryLSN, err = rd.u64(); err != nil {
			return nil, err
		}
		if rp.Count, err = rd.u32(); err != nil {
			return nil, err
		}
		if rp.Records, err = rd.bytes(MaxReplBytes); err != nil {
			return nil, err
		}
	case ReplSnap:
		if rp.SnapLSN, err = rd.u64(); err != nil {
			return nil, err
		}
		if rp.SnapSize, err = rd.u64(); err != nil {
			return nil, err
		}
		if rp.Offset, err = rd.u64(); err != nil {
			return nil, err
		}
		d, err := rd.u8()
		if err != nil {
			return nil, err
		}
		if d > 1 {
			return nil, fmt.Errorf("serve: bad done flag %d", d)
		}
		rp.Done = d == 1
		if rp.Chunk, err = rd.bytes(MaxReplBytes); err != nil {
			return nil, err
		}
	case ReplFence:
	default:
		return nil, fmt.Errorf("serve: unknown REPLICATE kind %d", k)
	}
	return rp, nil
}

// AppendRequestV2 appends the version-2 encoding of r: the uint32
// request ID followed by the version-1 payload. IDs are chosen by the
// client, echoed verbatim by the server, and must be unique among the
// requests outstanding on one connection (PROTOCOL.md §4).
func AppendRequestV2(dst []byte, id uint32, r *Request) ([]byte, error) {
	return AppendRequest(appendU32(dst, id), r)
}

// DecodeRequestV2 parses a version-2 request payload into its ID and
// request. A payload too short to carry the ID is connection-fatal
// (the server cannot even answer with a correlated error); a payload
// with a well-formed ID but a malformed body returns the ID alongside
// the error so the fault can be reported in-band.
func DecodeRequestV2(payload []byte) (uint32, *Request, error) {
	if len(payload) < 4 {
		return 0, nil, io.ErrUnexpectedEOF
	}
	id := binary.LittleEndian.Uint32(payload)
	r, err := DecodeRequest(payload[4:])
	return id, r, err
}

// AppendResponseV2 appends the version-2 encoding of rs: the uint32
// request ID being answered followed by the version-1 payload.
func AppendResponseV2(dst []byte, id uint32, rs *Response) ([]byte, error) {
	return AppendResponse(appendU32(dst, id), rs)
}

// DecodeResponseV2 parses a version-2 response payload into the ID it
// answers and the response.
func DecodeResponseV2(payload []byte) (uint32, *Response, error) {
	if len(payload) < 4 {
		return 0, nil, io.ErrUnexpectedEOF
	}
	id := binary.LittleEndian.Uint32(payload)
	rs, err := DecodeResponse(payload[4:])
	return id, rs, err
}

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("serve: frame of %d bytes exceeds %d", len(payload), MaxFrame)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame, reusing buf when it is
// large enough. It refuses frames larger than MaxFrame.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("serve: frame of %d bytes exceeds %d", n, MaxFrame)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

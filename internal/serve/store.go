package serve

import (
	"errors"
	"fmt"
	"io"
	"path"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pbtree/internal/backend"
	"pbtree/internal/core"
	"pbtree/internal/lsm"
	"pbtree/internal/memsys"
	"pbtree/internal/obs"
)

// ErrOverloaded is returned when a shard's mutation queue is full: the
// caller should back off and retry rather than queue without bound.
var ErrOverloaded = errors.New("serve: shard mutation queue full")

// ErrClosed is returned for operations on a closed store.
var ErrClosed = errors.New("serve: store is closed")

// Storage backend names for StoreConfig.Backend and the server's
// -backend flag.
const (
	// BackendPBTree serves each shard from the paper's
	// prefetch-optimized pB+-Tree behind double-buffered snapshots —
	// the read-optimized engine, and the default.
	BackendPBTree = "pbtree"

	// BackendLSM serves each shard from a log-structured merge engine
	// (memtable + bloom-filtered sorted runs) — the write-optimized
	// engine. See package lsm.
	BackendLSM = "lsm"
)

// StoreConfig configures a sharded store.
type StoreConfig struct {
	// Shards is the number of hash partitions, each an independent
	// storage engine with its own single-writer goroutine. Zero
	// selects GOMAXPROCS.
	Shards int

	// Backend selects the per-shard storage engine, BackendPBTree or
	// BackendLSM. Empty selects BackendPBTree. The choice is part of
	// the on-disk identity of a durable store (recorded in the
	// MANIFEST): a directory written by one engine cannot be reopened
	// with the other.
	Backend string

	// Tree is the per-shard tree configuration (pbtree backend). Mem
	// must be nil (a shared zero-cost native model is created) or a
	// concurrency-safe model (*memsys.Native); Trace must be nil,
	// since tracers are single-threaded. The zero value serves on
	// p8B+-Trees, the paper's sweet spot.
	Tree core.Config

	// LSM is the per-shard engine configuration for BackendLSM. The
	// zero value selects the package lsm defaults.
	LSM lsm.Config

	// Fill is the bulkload/rebuild fill factor in (0, 1]. Zero selects
	// 0.8, leaving slack for inserts.
	Fill float64

	// MaxBatch bounds how many queued mutations one snapshot
	// publication absorbs. Zero selects 256.
	MaxBatch int

	// QueueLen bounds each shard's mutation queue; a full queue makes
	// writes fail fast with ErrOverloaded (backpressure, not
	// buffering). Zero selects 1024.
	QueueLen int

	// Durable, when non-nil, persists every shard with a write-ahead
	// log + engine checkpoints under Durable.Dir and recovers the
	// contents on Open. Recovery runs per shard inside the shard's
	// writer goroutine: shards become readable the moment their own
	// recovery finishes, while the others are still replaying. Open's
	// pairs are only the bootstrap contents of a fresh directory; an
	// existing directory wins.
	Durable *DurableConfig

	// Metrics, when non-nil, receives the durability counters (WAL
	// appends, fsyncs, checkpoints, recovery). Typically shared with
	// ServerConfig.Metrics.
	Metrics *obs.Metrics

	// Replica opens the store as a replication follower: normal writes
	// (Put, Delete, PutBatch, Compact) are rejected with ErrNotPrimary
	// and the shards mutate only through ReplicaApply /
	// ReplicaInstall, until Promote turns the store into a primary.
	// Requires Durable (a follower's own WAL is what makes it
	// promotable).
	Replica bool

	// Epoch is the minimum replication epoch to run at. A fresh
	// durable directory is initialized to it; an existing MANIFEST's
	// epoch is raised to it (never lowered — the fencing token is
	// monotone). Zero selects 1, and is the only valid value for a
	// non-durable store.
	Epoch uint64
}

// withDefaults resolves and validates the configuration.
func (c StoreConfig) withDefaults() (StoreConfig, error) {
	if c.Shards == 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.Shards < 1 {
		return c, fmt.Errorf("serve: shard count %d must be positive", c.Shards)
	}
	switch c.Backend {
	case "":
		c.Backend = BackendPBTree
	case BackendPBTree, BackendLSM:
	default:
		return c, fmt.Errorf("serve: unknown backend %q (want %q or %q)", c.Backend, BackendPBTree, BackendLSM)
	}
	if c.Fill == 0 {
		c.Fill = 0.8
	}
	if c.Fill < 0 || c.Fill > 1 {
		return c, fmt.Errorf("serve: fill factor %v outside (0, 1]", c.Fill)
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 256
	}
	if c.QueueLen == 0 {
		c.QueueLen = 1024
	}
	if c.Tree.Trace != nil {
		return c, fmt.Errorf("serve: tree tracers are single-threaded; serving trees cannot carry one")
	}
	if _, bad := c.Tree.Mem.(*memsys.Hierarchy); bad {
		return c, fmt.Errorf("serve: the simulated hierarchy is single-threaded; serve on a native model")
	}
	if c.Tree.Width == 0 {
		c.Tree.Width = 8
		c.Tree.Prefetch = true
	}
	if memsys.IsNil(c.Tree.Mem) {
		c.Tree.Mem = memsys.DefaultNative()
	}
	l, err := c.LSM.WithDefaults()
	if err != nil {
		return c, err
	}
	c.LSM = l
	if c.Durable != nil {
		d, err := c.Durable.withDefaults()
		if err != nil {
			return c, err
		}
		c.Durable = &d
	}
	if c.Replica && c.Durable == nil {
		return c, errors.New("serve: a replica store must be durable (its WAL is what makes it promotable)")
	}
	if c.Epoch != 0 && c.Durable == nil {
		return c, errors.New("serve: a replication epoch needs a durable store (it is persisted in the MANIFEST)")
	}
	return c, nil
}

// Lookup is the result of one point lookup in a batch.
type Lookup struct {
	TID   core.TID // the key's tuple ID, valid only when Found
	Found bool     // whether the key was present
}

// mutation is one queued write. A mutation's puts and deletes are
// applied atomically: they land in the same published snapshot.
// Exactly one of the replication fields (repl, install, snap) may be
// set instead of puts/dels/compact; such a mutation runs alone in the
// shard writer, outside the group-commit batch (replhooks.go).
type mutation struct {
	puts    []core.Pair
	dels    []core.Key
	compact bool
	done    chan error

	repl    *replApply   // follower: apply shipped WAL frames
	install *replInstall // follower: install a shipped checkpoint
	snap    *snapReq     // primary: produce an LSN-consistent checkpoint stream

	// Lifecycle attribution (DESIGN.md §12): when sp is non-nil the
	// shard writer stamps queue_wait, wal_append, wal_fsync and apply
	// onto it with atomic adds (a multi-shard write is stamped by
	// several writers concurrently). enq is the obs.Nanotime enqueue
	// timestamp. The requester's receive on done orders the stamps
	// before it reads the span.
	sp  *obs.Span
	enq int64
}

// shard is one hash partition: a storage engine publishing immutable
// snapshots, and the single-writer mutation queue feeding it.
type shard struct {
	be backend.Backend

	ops     chan mutation
	drained chan struct{}

	// Readiness: a durable shard publishes its first snapshot only
	// after recovery, inside its writer goroutine. Reads block on
	// ready until then (isReady is the lock-free fast path); readyErr
	// is set before ready closes and makes all writes fail.
	ready    chan struct{}
	isReady  atomic.Bool
	readyErr error

	// Writer-owned state.
	idx       int             // shard index (directory name)
	seed      []core.Pair     // bootstrap contents for a fresh directory
	version   uint64          // last published snapshot version
	wal       *walWriter      // nil when the store is not durable
	lsn       uint64          // last LSN appended to the WAL
	walErr    error           // fail-stop: set on WAL append failure
	ws        []backend.Write // per-batch scratch
	recovered RecoveryStats

	durErr atomic.Pointer[string] // last durability error, for Stats

	// Writer-maintained counters, read via Stats.
	puts, dels, published atomic.Uint64

	// Gauge state for the admin plane's /metrics (WriteMetrics):
	// lastPub is the obs.Nanotime of the last snapshot publication
	// (snapshot age); walBacklog counts WAL records committed since the
	// last engine checkpoint (recovery debt).
	lastPub    atomic.Int64
	walBacklog atomic.Uint64

	// applied is the shard's durably committed LSN, stored after every
	// WAL group commit (and at recovery). It is the lock-free
	// replication cursor: what a follower reports upstream, and what
	// STATUS probes read.
	applied atomic.Uint64

	// lsn0Empty reports that this incarnation's state at LSN 0 was
	// empty, so a follower can reproduce the shard by replaying WAL
	// records 1..n from nothing. False for a shard bootstrapped from
	// seed pairs (the seed lives only in its LSN-0 checkpoint) and,
	// conservatively, for any recovered prior incarnation; WALTail
	// then redirects cursor-0 followers to checkpoint shipping.
	lsn0Empty bool
}

// markReady publishes the recovery outcome and unblocks readers.
func (sh *shard) markReady(err error) {
	sh.readyErr = err
	sh.lastPub.Store(obs.Nanotime())
	sh.isReady.Store(true)
	close(sh.ready)
}

// waitReady blocks until the shard's first snapshot is published and
// returns the recovery error, if any.
func (sh *shard) waitReady() error {
	if !sh.isReady.Load() {
		<-sh.ready
	}
	return sh.readyErr
}

// setDurErr records a durability error for Stats.
func (sh *shard) setDurErr(err error) {
	s := err.Error()
	sh.durErr.Store(&s)
}

// Store is a sharded, snapshot-isolated key→tupleID store. All read
// methods are lock-free and safe for any number of goroutines; writes
// are serialized per shard through its writer goroutine. Each shard
// serves from the storage engine selected by StoreConfig.Backend.
type Store struct {
	cfg    StoreConfig
	shards []*shard

	mu     sync.RWMutex // guards closed against concurrent enqueues
	closed bool

	// Replication identity (replhooks.go). epoch is the fencing token
	// from the MANIFEST; fencedBy records the highest rival epoch seen
	// (the store is fenced while fencedBy > epoch); replica flags
	// follower mode. manMu serializes manifest rewrites (promotion,
	// adoption).
	epoch    atomic.Uint64
	fencedBy atomic.Uint64
	replica  atomic.Bool
	manMu    sync.Mutex

	// gate, when non-nil, is the synchronous-replication commit gate:
	// called after a batch's WAL commit with the shard and its last
	// LSN, before the batch is acknowledged (SetCommitGate).
	gate atomic.Pointer[func(shard int, lsn uint64) error]
}

// Open builds a store from the given pairs (sorted by key, no
// duplicates — the Bulkload contract) and starts the shard writers.
//
// With cfg.Durable set, the pairs only seed a fresh data directory; an
// existing directory is recovered instead (engine artifacts + WAL
// tail), per shard, inside the shard writer goroutines. Open returns
// immediately; reads and writes to a shard block until its recovery
// finishes. WaitReady blocks until every shard is up and reports the
// first recovery failure.
func Open(cfg StoreConfig, pairs []core.Pair) (*Store, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	st := &Store{cfg: cfg, shards: make([]*shard, cfg.Shards)}

	// Partition the (sorted) pairs; each partition stays sorted.
	parts := make([][]core.Pair, cfg.Shards)
	for _, p := range pairs {
		s := st.ShardOf(p.Key)
		parts[s] = append(parts[s], p)
	}
	st.epoch.Store(1)
	st.replica.Store(cfg.Replica)
	if cfg.Durable != nil {
		if err := cfg.Durable.FS.MkdirAll("."); err != nil {
			return nil, err
		}
		epoch, err := loadOrInitManifest(cfg.Durable.FS, cfg.Shards, cfg.Backend, cfg.Epoch)
		if err != nil {
			return nil, err
		}
		st.epoch.Store(epoch)
	}
	for i := range st.shards {
		sh := &shard{
			idx:     i,
			be:      st.newBackend(i),
			ops:     make(chan mutation, cfg.QueueLen),
			drained: make(chan struct{}),
			ready:   make(chan struct{}),
		}
		if cfg.Durable != nil {
			// The writer goroutine recovers and publishes the first
			// snapshot; this shard serves as soon as it is done.
			sh.seed = parts[i]
		} else {
			if err := sh.be.Bootstrap(parts[i]); err != nil {
				return nil, err
			}
			if err := sh.be.Seal(1); err != nil {
				return nil, err
			}
			sh.version = 1
			sh.markReady(nil)
		}
		st.shards[i] = sh
		go st.writer(sh)
	}
	return st, nil
}

// newBackend constructs one shard's storage engine from the resolved
// configuration.
func (st *Store) newBackend(idx int) backend.Backend {
	var fsys FS
	dir := ""
	if st.cfg.Durable != nil {
		fsys = st.cfg.Durable.FS
		dir = shardDirName(idx)
	}
	if st.cfg.Backend == BackendLSM {
		return lsm.New(st.cfg.LSM, fsys, dir)
	}
	return backend.NewPBTree(st.cfg.Tree, st.cfg.Fill, fsys, dir)
}

// WaitReady blocks until every shard has published its first snapshot
// (for a durable store: finished recovering) and returns the first
// shard's recovery error, if any.
func (st *Store) WaitReady() error {
	var first error
	for _, sh := range st.shards {
		if err := sh.waitReady(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Recovery reports the per-shard recovery statistics of a durable
// store, blocking until recovery completes. Nil for a non-durable
// store.
func (st *Store) Recovery() []RecoveryStats {
	if st.cfg.Durable == nil {
		return nil
	}
	out := make([]RecoveryStats, len(st.shards))
	for i, sh := range st.shards {
		sh.waitReady()
		out[i] = sh.recovered
	}
	return out
}

// recoverAndPublish runs one durable shard's recovery-on-open: let the
// engine reload its artifacts, replay the WAL tail through it,
// bootstrap a fresh directory from the seed pairs, fold the recovered
// tail into a fresh engine checkpoint, open a fresh WAL segment,
// publish the first snapshot.
func (st *Store) recoverAndPublish(sh *shard) error {
	start := time.Now()
	d := st.cfg.Durable
	dir := shardDirName(sh.idx)
	if err := d.FS.MkdirAll(dir); err != nil {
		return err
	}
	stats := RecoveryStats{Shard: sh.idx}
	ckptLSN, hadState, err := sh.be.Recover()
	if err != nil {
		return err
	}
	stats.CheckpointLSN, stats.LastLSN = ckptLSN, ckptLSN
	segs, err := listWALSegs(d.FS, dir)
	if err != nil {
		return err
	}
	if !hadState && len(segs) == 0 {
		if err := sh.be.Bootstrap(sh.seed); err != nil {
			return err
		}
		stats.Bootstrapped = true
	}
	sh.lsn0Empty = !hadState && (!stats.Bootstrapped || len(sh.seed) == 0)
	sh.seed = nil
	if err := replayWAL(d.FS, dir, segs, sh.be, &stats); err != nil {
		return err
	}
	if err := sh.be.Seal(stats.LastLSN + 1); err != nil {
		return err
	}
	if stats.Bootstrapped || stats.Replayed > 0 {
		// A fresh shard's seed contents become its first checkpoint,
		// so a crash before the first background checkpoint still
		// recovers them; a replayed tail is folded now, so the
		// segments it came from can be pruned and the next recovery is
		// as short as this one.
		if err := sh.be.Checkpoint(stats.LastLSN); err != nil {
			return err
		}
		st.cfg.Metrics.Checkpoint(nil)
	}
	w, err := newWALWriter(d.FS, path.Join(dir, walSegName(stats.LastLSN+1)), d.Fsync, d.FsyncInterval, st.cfg.Metrics)
	if err != nil {
		return err
	}
	pruneWAL(d.FS, dir, stats.LastLSN, stats.LastLSN+1, d.WALRetain)
	stats.Pairs = sh.be.Stats().Count
	stats.Duration = time.Since(start)
	sh.wal, sh.lsn, sh.version, sh.recovered = w, stats.LastLSN, stats.LastLSN+1, stats
	sh.applied.Store(stats.LastLSN)
	st.cfg.Metrics.Recovery(stats.Duration, stats.Replayed)
	return nil
}

// ShardOf reports which shard owns a key (a splitmix64-style hash of
// the key, so adjacent keys scatter).
func (st *Store) ShardOf(k core.Key) int {
	x := uint64(k)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(len(st.shards)))
}

// Shards reports the number of shards.
func (st *Store) Shards() int { return len(st.shards) }

// writer is the single mutator of one shard: it drains the queue in
// batches and hands each batch to the engine's ApplyBatch, which
// publishes one snapshot per batch and acks as soon as the writes are
// visible to new readers.
//
// For a durable store the writer first runs recovery (so other shards
// serve while this one replays), then prepends a WAL group commit to
// every batch, and asks the engine to checkpoint + rotates the log
// when the segment accumulates CheckpointEvery records. If recovery
// fails the shard fail-stops: it publishes an empty snapshot so
// readers never block forever, and acknowledges every write with the
// recovery error.
func (st *Store) writer(sh *shard) {
	defer close(sh.drained)
	if st.cfg.Durable != nil {
		err := st.recoverAndPublish(sh)
		if err != nil {
			sh.setDurErr(err)
			fb := st.newBackend(sh.idx)
			if berr := fb.Bootstrap(nil); berr == nil {
				if serr := fb.Seal(1); serr == nil {
					sh.be, sh.version = fb, 1
				}
			}
			err = fmt.Errorf("serve: shard %d recovery: %w", sh.idx, err)
		}
		sh.markReady(err)
		if err != nil {
			for m := range sh.ops {
				ackAll([]mutation{m}, err)
			}
			return
		}
	}
	batch := make([]mutation, 0, st.cfg.MaxBatch)
	for m := range sh.ops {
		// Replication mutations run alone, outside the group-commit
		// batch: their LSN/epoch validation and engine swaps don't
		// compose with client batches.
		if m.isSpecial() {
			st.applySpecial(sh, m)
			continue
		}
		batch = append(batch[:0], m)
		var special *mutation
	drain:
		for len(batch) < st.cfg.MaxBatch {
			select {
			case m2, ok := <-sh.ops:
				if !ok {
					break drain
				}
				if m2.isSpecial() {
					special = &m2
					break drain // apply the drained batch first, in order
				}
				batch = append(batch, m2)
			default:
				break drain
			}
		}
		st.applyBatch(sh, batch)
		if special != nil {
			st.applySpecial(sh, *special)
		}
	}
	if sh.wal != nil {
		// Graceful-drain flush: every acknowledged write is on disk
		// before Close returns.
		if err := sh.wal.close(); err != nil {
			sh.setDurErr(err)
		}
	}
	if err := sh.be.Close(); err != nil {
		sh.setDurErr(err)
	}
}

// ackAll delivers one result to every waiter of a batch.
func ackAll(batch []mutation, err error) {
	for _, m := range batch {
		if m.done != nil {
			m.done <- err
		}
	}
}

// applyBatch applies one batch of mutations as one engine publication.
// In durable mode the batch is group-committed to the WAL first — one
// record per mutation (mutations are the atomic unit), one write and
// at most one fsync for the whole batch — and nothing is applied or
// acknowledged unless the commit succeeds. A WAL failure fail-stops
// the shard's write path: the log tail is no longer trustworthy, so
// accepting more writes would acknowledge data that cannot be
// recovered. An engine housekeeping failure (flush, compaction) is
// recorded like a checkpoint failure: the batch itself is already
// applied and acknowledged.
func (st *Store) applyBatch(sh *shard, batch []mutation) {
	// Lifecycle attribution: stamp queue wait at pickup and remember
	// whether anything in the batch is traced at all, so the untraced
	// path takes a single boolean test per stage site.
	traced := false
	now := obs.Nanotime()
	for _, m := range batch {
		if m.sp != nil {
			traced = true
			m.sp.Add(obs.StageQueueWait, now-m.enq)
		}
	}
	if sh.walErr != nil {
		ackAll(batch, sh.walErr)
		return
	}
	// The fencing check on every append: a primary that has seen a
	// higher epoch (a promoted follower exists) must not extend its WAL
	// timeline — acknowledging the write would split the brain.
	if st.Fenced() {
		ackAll(batch, ErrFenced)
		return
	}
	if sh.wal != nil {
		walStart := now
		for _, m := range batch {
			sh.lsn++
			// Compact-only mutations log an empty record: every
			// acknowledged mutation owns an LSN, which keeps published
			// versions monotonic across restarts.
			sh.wal.add(sh.lsn, m.puts, m.dels)
		}
		if err := sh.wal.commit(); err != nil {
			sh.walErr = fmt.Errorf("serve: shard %d WAL append: %w", sh.idx, err)
			sh.setDurErr(err)
			ackAll(batch, sh.walErr)
			return
		}
		sh.applied.Store(sh.lsn)
		sh.walBacklog.Add(uint64(len(batch)))
		if traced {
			// Every member waited for the whole group commit, so each
			// span gets the full append and fsync costs — that is the
			// latency the request actually experienced.
			syncNS := sh.wal.takeSyncNS()
			appendNS := obs.Nanotime() - walStart - syncNS
			for _, m := range batch {
				if m.sp != nil {
					m.sp.Add(obs.StageWALAppend, appendNS)
					m.sp.Add(obs.StageWALFsync, syncNS)
				}
			}
		} else {
			sh.wal.takeSyncNS()
		}
	}
	sh.ws = sh.ws[:0]
	for _, m := range batch {
		sh.ws = append(sh.ws, backend.Write{Puts: m.puts, Dels: m.dels, Compact: m.compact})
	}
	sh.version++
	lsn := sh.lsn
	if sh.wal == nil {
		lsn = sh.version // non-durable: versions double as artifact labels
	}
	applyStart := obs.Nanotime()
	err := sh.be.ApplyBatch(sh.ws, sh.version, lsn, func(ackErr error) {
		sh.published.Add(1)
		sh.lastPub.Store(obs.Nanotime())
		if traced {
			d := obs.Nanotime() - applyStart
			for _, m := range batch {
				if m.sp != nil {
					m.sp.Add(obs.StageApply, d)
				}
			}
		}
		// Synchronous replication: hold the acknowledgement until a
		// follower has durably applied through this batch's LSN. The
		// write is already in the local WAL and published either way —
		// a gate failure means "not acked", the same contract as a
		// crash between commit and ack.
		if ackErr == nil && sh.wal != nil {
			if gp := st.gate.Load(); gp != nil {
				ackErr = (*gp)(sh.idx, lsn)
			}
		}
		ackAll(batch, ackErr)
	})
	if err != nil {
		sh.setDurErr(err)
	}
	if sh.wal != nil && sh.wal.records >= uint64(st.cfg.Durable.CheckpointEvery) {
		st.checkpoint(sh)
	}
}

// checkpoint asks the engine to make everything through the current
// LSN durable, rotates the WAL to a fresh segment, and prunes
// superseded segments. Failures leave the current segment in place —
// the shard keeps serving and retries once the next batch lands.
func (st *Store) checkpoint(sh *shard) {
	d := st.cfg.Durable
	dir := shardDirName(sh.idx)
	if err := sh.be.Checkpoint(sh.lsn); err != nil {
		st.cfg.Metrics.Checkpoint(err)
		sh.setDurErr(err)
		return
	}
	w, err := newWALWriter(d.FS, path.Join(dir, walSegName(sh.lsn+1)), d.Fsync, d.FsyncInterval, st.cfg.Metrics)
	if err != nil {
		// The old segment keeps growing; the new engine checkpoint
		// already shortens the next recovery.
		st.cfg.Metrics.Checkpoint(err)
		sh.setDurErr(err)
		return
	}
	if err := sh.wal.close(); err != nil {
		sh.setDurErr(err)
	}
	sh.wal = w
	sh.walBacklog.Store(0)
	pruneWAL(d.FS, dir, sh.lsn, sh.lsn+1, d.WALRetain)
	st.cfg.Metrics.Checkpoint(nil)
}

// enqueue submits a mutation to a shard with backpressure, stamping
// the enqueue time of traced mutations.
func (st *Store) enqueue(sh *shard, m mutation) error {
	if m.sp != nil {
		m.enq = obs.Nanotime()
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	if st.closed {
		return ErrClosed
	}
	select {
	case sh.ops <- m:
		return nil
	default:
		return ErrOverloaded
	}
}

// Put inserts or overwrites one pair. It returns once the write is
// published (visible to every subsequent read), or ErrOverloaded if
// the shard's queue is full.
func (st *Store) Put(k core.Key, tid core.TID) error {
	return st.put(k, tid, nil)
}

// writable rejects client mutations on a store that must not extend
// its own WAL timeline: a replica (writes belong on the primary) or a
// fenced ex-primary. The same fence is re-checked inside applyBatch —
// this is only the fast fail.
func (st *Store) writable() error {
	if st.replica.Load() {
		return ErrNotPrimary
	}
	if st.Fenced() {
		return ErrFenced
	}
	return nil
}

// put is Put with an optional lifecycle span for the shard writer to
// stamp.
func (st *Store) put(k core.Key, tid core.TID, sp *obs.Span) error {
	if err := st.writable(); err != nil {
		return err
	}
	sh := st.shards[st.ShardOf(k)]
	done := make(chan error, 1)
	if err := st.enqueue(sh, mutation{puts: []core.Pair{{Key: k, TID: tid}}, done: done, sp: sp}); err != nil {
		return err
	}
	sh.puts.Add(1)
	return <-done
}

// Delete removes one key (a no-op if absent), with Put's semantics.
func (st *Store) Delete(k core.Key) error {
	return st.delete(k, nil)
}

// delete is Delete with an optional lifecycle span for the shard
// writer to stamp.
func (st *Store) delete(k core.Key, sp *obs.Span) error {
	if err := st.writable(); err != nil {
		return err
	}
	sh := st.shards[st.ShardOf(k)]
	done := make(chan error, 1)
	if err := st.enqueue(sh, mutation{dels: []core.Key{k}, done: done, sp: sp}); err != nil {
		return err
	}
	sh.dels.Add(1)
	return <-done
}

// PutBatch applies all pairs as one atomic unit per shard: pairs that
// land in the same shard appear in the same published snapshot, so a
// same-shard MGet sees either none or all of them.
func (st *Store) PutBatch(pairs []core.Pair) error {
	return st.putBatch(pairs, nil)
}

// putBatch is PutBatch with an optional lifecycle span. A multi-shard
// batch is stamped by several shard writers concurrently (Span.Add is
// atomic); the final receive on every done channel orders the stamps
// before the caller reads the span.
func (st *Store) putBatch(pairs []core.Pair, sp *obs.Span) error {
	if err := st.writable(); err != nil {
		return err
	}
	parts := make(map[int][]core.Pair, len(st.shards))
	for _, p := range pairs {
		s := st.ShardOf(p.Key)
		parts[s] = append(parts[s], p)
	}
	dones := make([]chan error, 0, len(parts))
	for s, ps := range parts {
		sh := st.shards[s]
		done := make(chan error, 1)
		if err := st.enqueue(sh, mutation{puts: ps, done: done, sp: sp}); err != nil {
			// Abandon the rest: callers treat ErrOverloaded as retry.
			for _, d := range dones {
				<-d
			}
			return err
		}
		sh.puts.Add(uint64(len(ps)))
		dones = append(dones, done)
	}
	var first error
	for _, d := range dones {
		if err := <-d; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Compact asks every shard to restore its engine's read-side layout —
// a pB+-Tree rebuild at the configured fill factor, or an LSM fold of
// all runs into one. It returns once every shard has published the
// compacted snapshot.
func (st *Store) Compact() error {
	if err := st.writable(); err != nil {
		return err
	}
	dones := make([]chan error, 0, len(st.shards))
	for _, sh := range st.shards {
		done := make(chan error, 1)
		if err := st.enqueue(sh, mutation{compact: true, done: done}); err != nil {
			for _, d := range dones {
				<-d
			}
			return err
		}
		dones = append(dones, done)
	}
	var first error
	for _, d := range dones {
		if err := <-d; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Get looks up one key against the owning shard's current snapshot.
// On a durable store it blocks until the shard has recovered.
func (st *Store) Get(k core.Key) (core.TID, bool) {
	sh := st.shards[st.ShardOf(k)]
	sh.waitReady()
	s := sh.be.Snapshot()
	tid, ok := s.Get(k)
	s.Release()
	return tid, ok
}

// MGet looks up a batch of keys: the keys are grouped by shard and
// each group runs as one batched lookup against a single snapshot of
// its shard (snapshot-consistent per shard; on the pbtree backend the
// group is a software-pipelined group search). Results line up with
// keys; out must be at least len(keys) long.
func (st *Store) MGet(keys []core.Key, out []Lookup) {
	if len(out) < len(keys) {
		panic("serve: MGet result slice shorter than keys")
	}
	if len(keys) == 0 {
		return
	}
	// Group key indexes by shard. The common case (batch smaller than
	// shard count) stays allocation-light.
	groups := make(map[int][]int, len(st.shards))
	for i, k := range keys {
		s := st.ShardOf(k)
		groups[s] = append(groups[s], i)
	}
	var gkeys []core.Key
	var gtids []core.TID
	var gfound []bool
	for sidx, idxs := range groups {
		sh := st.shards[sidx]
		sh.waitReady()
		s := sh.be.Snapshot()
		if len(idxs) == 1 {
			i := idxs[0]
			tid, ok := s.Get(keys[i])
			out[i] = Lookup{TID: tid, Found: ok}
		} else {
			gkeys = gkeys[:0]
			for _, i := range idxs {
				gkeys = append(gkeys, keys[i])
			}
			if cap(gtids) < len(idxs) {
				gtids = make([]core.TID, len(idxs))
				gfound = make([]bool, len(idxs))
			}
			gtids, gfound = gtids[:len(idxs)], gfound[:len(idxs)]
			s.GetBatch(gkeys, gtids, gfound)
			for j, i := range idxs {
				out[i] = Lookup{TID: gtids[j], Found: gfound[j]}
			}
		}
		s.Release()
	}
}

// Scan returns up to limit pairs with keys in [start, end], in key
// order. Each shard is scanned against one snapshot and the per-shard
// runs are merged; the result is per-shard snapshot-consistent.
func (st *Store) Scan(start, end core.Key, limit int) []core.Pair {
	if limit <= 0 {
		return nil
	}
	runs := make([][]core.Pair, 0, len(st.shards))
	for _, sh := range st.shards {
		sh.waitReady()
		s := sh.be.Snapshot()
		run := s.Scan(start, end, limit)
		s.Release()
		if len(run) > 0 {
			runs = append(runs, run)
		}
	}
	return mergeRuns(runs, limit)
}

// mergeRuns k-way merges sorted per-shard runs, keeping the first
// limit pairs. Shard counts are small, so a linear heap-free merge is
// simplest and fast enough.
func mergeRuns(runs [][]core.Pair, limit int) []core.Pair {
	switch len(runs) {
	case 0:
		return nil
	case 1:
		if len(runs[0]) > limit {
			return runs[0][:limit]
		}
		return runs[0]
	}
	out := make([]core.Pair, 0, limit)
	pos := make([]int, len(runs))
	for len(out) < limit {
		best := -1
		for i, r := range runs {
			if pos[i] >= len(r) {
				continue
			}
			if best == -1 || r[pos[i]].Key < runs[best][pos[best]].Key {
				best = i
			}
		}
		if best == -1 {
			break
		}
		out = append(out, runs[best][pos[best]])
		pos[best]++
	}
	return out
}

// ShardStats is a point-in-time view of one shard.
type ShardStats struct {
	Backend    string `json:"backend"`               // storage engine name
	Version    uint64 `json:"version"`               // snapshot version last published
	Count      int    `json:"count"`                 // keys in the published snapshot
	QueueDepth int    `json:"queue_depth"`           // mutations waiting for the shard writer
	Puts       uint64 `json:"puts"`                  // puts applied since start
	Deletes    uint64 `json:"deletes"`               // deletes applied since start
	Published  uint64 `json:"published"`             // snapshot publications since start
	Height     int    `json:"height"`                // tree height of the published snapshot (pbtree)
	Runs       int    `json:"runs,omitempty"`        // immutable sorted runs (lsm)
	MemKeys    int    `json:"mem_keys,omitempty"`    // memtable entries, tombstones included (lsm)
	DurableErr string `json:"durable_err,omitempty"` // last WAL/checkpoint/recovery error
}

// StoreStats aggregates the shard views.
type StoreStats struct {
	Shards []ShardStats `json:"shards"` // one entry per shard, in shard order
	Count  int          `json:"count"`  // total keys across shards
}

// Stats snapshots every shard's version, size and queue depth,
// blocking until recovering shards come up.
func (st *Store) Stats() StoreStats {
	out := StoreStats{Shards: make([]ShardStats, len(st.shards))}
	for i, sh := range st.shards {
		sh.waitReady()
		bs := sh.be.Stats()
		out.Shards[i] = ShardStats{
			Backend:    bs.Backend,
			Version:    bs.Version,
			Count:      bs.Count,
			QueueDepth: len(sh.ops),
			Puts:       sh.puts.Load(),
			Deletes:    sh.dels.Load(),
			Published:  sh.published.Load(),
			Height:     bs.Height,
			Runs:       bs.Runs,
			MemKeys:    bs.MemKeys,
		}
		if e := sh.durErr.Load(); e != nil {
			out.Shards[i].DurableErr = *e
		}
		out.Count += bs.Count
	}
	return out
}

// Ready reports, without blocking, whether every shard has published
// its first snapshot (for a durable store: finished recovering). The
// admin plane's /healthz uses it to answer 503 during recovery.
func (st *Store) Ready() bool {
	for _, sh := range st.shards {
		if !sh.isReady.Load() {
			return false
		}
	}
	return true
}

// WriteMetrics writes the per-shard gauges in the Prometheus text
// exposition format: readiness, mutation-queue depth, snapshot age,
// WAL backlog since the last checkpoint, key count and (lsm) run
// count. It never blocks on a recovering shard — engine statistics
// are skipped until the shard is up, so /metrics stays responsive
// during recovery.
func (st *Store) WriteMetrics(w io.Writer) error {
	type gauge struct {
		name, help string
		value      func(sh *shard, ready bool) (float64, bool)
	}
	now := obs.Nanotime()
	gauges := []gauge{
		{"pbtree_shard_ready", "Whether the shard has published its first snapshot (0 during recovery).", func(sh *shard, ready bool) (float64, bool) {
			if ready {
				return 1, true
			}
			return 0, true
		}},
		{"pbtree_shard_queue_depth", "Mutations waiting in the shard's queue.", func(sh *shard, ready bool) (float64, bool) {
			return float64(len(sh.ops)), true
		}},
		{"pbtree_shard_snapshot_age_seconds", "Seconds since the shard last published a snapshot.", func(sh *shard, ready bool) (float64, bool) {
			if !ready {
				return 0, false
			}
			return float64(now-sh.lastPub.Load()) / 1e9, true
		}},
		{"pbtree_shard_wal_backlog_records", "WAL records committed since the shard's last checkpoint.", func(sh *shard, ready bool) (float64, bool) {
			return float64(sh.walBacklog.Load()), true
		}},
		{"pbtree_shard_keys", "Keys in the shard's published snapshot.", func(sh *shard, ready bool) (float64, bool) {
			if !ready {
				return 0, false
			}
			return float64(sh.be.Stats().Count), true
		}},
	}
	if st.cfg.Backend == BackendLSM {
		gauges = append(gauges, gauge{"pbtree_shard_runs", "Immutable sorted runs in the shard's LSM engine.", func(sh *shard, ready bool) (float64, bool) {
			if !ready {
				return 0, false
			}
			return float64(sh.be.Stats().Runs), true
		}})
	}
	for _, g := range gauges {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", g.name, g.help, g.name); err != nil {
			return err
		}
		for i, sh := range st.shards {
			v, ok := g.value(sh, sh.isReady.Load())
			if !ok {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s{shard=\"%d\"} %g\n", g.name, i, v); err != nil {
				return err
			}
		}
	}
	return nil
}

// Len reports the total number of pairs across all shards.
func (st *Store) Len() int {
	n := 0
	for _, sh := range st.shards {
		sh.waitReady()
		s := sh.be.Snapshot()
		n += s.Count()
		s.Release()
	}
	return n
}

// Dump appends every pair of the store in key order — a consistent
// per-shard dump, merged. Intended for tests and offline persistence.
func (st *Store) Dump() []core.Pair {
	runs := make([][]core.Pair, 0, len(st.shards))
	total := 0
	for _, sh := range st.shards {
		sh.waitReady()
		s := sh.be.Snapshot()
		run := s.AppendPairs(make([]core.Pair, 0, s.Count()))
		s.Release()
		total += len(run)
		runs = append(runs, run)
	}
	return mergeRuns(runs, total)
}

// Close drains every shard's queue (pending writes are applied and
// acked) and stops the writers. Reads remain valid on the final
// snapshots; writes fail with ErrClosed.
func (st *Store) Close() {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	st.closed = true
	for _, sh := range st.shards {
		close(sh.ops)
	}
	st.mu.Unlock()
	for _, sh := range st.shards {
		<-sh.drained
	}
}

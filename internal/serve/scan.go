package serve

// Streaming-scan cursors (PROTOCOL.md §10, DESIGN.md §15). A
// StoreCursor pins one refcounted snapshot per shard at open and
// serves the merged key range in bounded chunks, so a scan of any
// size holds admission tokens only while a chunk executes. The pinned
// snapshots are exactly the isolation a monolithic SCAN gets — each
// shard's view is frozen at open — paid for with snapshot lifetime
// instead of row tokens.

import (
	"fmt"
	"math"
	"sync"

	"pbtree/internal/backend"
	"pbtree/internal/core"
)

// cursorRefill is how many rows a shard run is refilled with at a
// time. Larger than the common chunk size so most SCANNEXTs are
// served from buffered rows without touching the backend.
const cursorRefill = 1024

// cursorRun is one shard's slice of the merged stream: a buffered run
// plus the key to resume the shard's backend scan from.
type cursorRun struct {
	snap backend.Snapshot
	buf  []core.Pair // undelivered rows, sorted
	pos  int         // next undelivered row in buf
	next core.Key    // resume key for the next backend refill
	done bool        // the shard has no rows left in [next, end]
}

// StoreCursor is a server-side streaming scan over [start, end]. It
// is created by Store.OpenCursor, driven by Next, and must be closed
// exactly once (Close is idempotent). A cursor is safe for concurrent
// use: SCANNEXTs racing on one cursor serialize on its mutex and each
// receives a disjoint chunk.
type StoreCursor struct {
	mu   sync.Mutex
	end  core.Key
	runs []cursorRun
	open bool
}

// OpenCursor pins a snapshot of every shard and returns a cursor over
// [start, end]. On a durable store it blocks until all shards have
// recovered; a recovery error fails the open with nothing pinned.
func (st *Store) OpenCursor(start, end core.Key) (*StoreCursor, error) {
	for _, sh := range st.shards {
		if err := sh.waitReady(); err != nil {
			return nil, fmt.Errorf("serve: shard %d unavailable: %w", sh.idx, err)
		}
	}
	c := &StoreCursor{end: end, runs: make([]cursorRun, len(st.shards)), open: true}
	for i, sh := range st.shards {
		c.runs[i] = cursorRun{snap: sh.be.Snapshot(), next: start}
	}
	return c, nil
}

// refill loads the next batch of rows for run i. Keys are unique per
// shard, so resuming from lastKey+1 never duplicates or skips a row.
func (c *StoreCursor) refill(i int) {
	r := &c.runs[i]
	if r.done || r.pos < len(r.buf) {
		return
	}
	want := max(cursorRefill, 1)
	r.buf = r.snap.Scan(r.next, c.end, want)
	r.pos = 0
	if len(r.buf) < want {
		// The backend returned everything left in [next, end].
		r.done = true
		return
	}
	last := r.buf[len(r.buf)-1].Key
	if last >= c.end || last == math.MaxUint32 {
		r.done = true
		return
	}
	r.next = last + 1
}

// Next returns up to max rows in key order, and whether the scan is
// exhausted. After done is reported the cursor holds no buffered rows
// but still pins its snapshots until Close.
func (c *StoreCursor) Next(maxRows int) (rows []core.Pair, done bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.open || maxRows <= 0 {
		return nil, true
	}
	rows = make([]core.Pair, 0, min(maxRows, cursorRefill))
	for len(rows) < maxRows {
		best := -1
		for i := range c.runs {
			c.refill(i)
			r := &c.runs[i]
			if r.pos >= len(r.buf) {
				continue
			}
			if best == -1 || r.buf[r.pos].Key < c.runs[best].buf[c.runs[best].pos].Key {
				best = i
			}
		}
		if best == -1 {
			return rows, true
		}
		rows = append(rows, c.runs[best].buf[c.runs[best].pos])
		c.runs[best].pos++
	}
	// The chunk filled; the scan is done only if nothing is left.
	for i := range c.runs {
		c.refill(i)
		if c.runs[i].pos < len(c.runs[i].buf) {
			return rows, false
		}
	}
	return rows, true
}

// Close releases every pinned snapshot. Safe to call more than once;
// only the first call releases.
func (c *StoreCursor) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.open {
		return
	}
	c.open = false
	for i := range c.runs {
		c.runs[i].snap.Release()
		c.runs[i].buf, c.runs[i].done = nil, true
	}
}

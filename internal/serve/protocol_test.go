package serve

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"pbtree/internal/core"
)

// TestProtocolSpecFrames is the conformance test binding PROTOCOL.md
// to the codec: every fenced `frame` block in the spec is parsed into
// bytes and compared byte-for-byte against the same message built by
// this package, and every message below must appear in the spec. If
// either side changes without the other, this test fails — the spec
// cannot drift from the implementation silently.
func TestProtocolSpecFrames(t *testing.T) {
	spec := parseSpecFrames(t)

	frame := func(payload []byte, err error) []byte {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return append(appendU32(nil, uint32(len(payload))), payload...)
	}
	req := func(r *Request) []byte {
		return frame(AppendRequest(nil, r))
	}
	resp := func(rs *Response) []byte {
		return frame(AppendResponse(nil, rs))
	}

	want := map[string][]byte{
		"v1-get-request": req(&Request{Op: OpGet, Keys: []core.Key{8}}),
		"v1-get-ok-response": resp(&Response{
			Status:  StatusOK,
			Lookups: []Lookup{{TID: 1, Found: true}},
		}),
		"v1-notfound-response": resp(&Response{Status: StatusNotFound}),
		"v1-mget-request": req(&Request{
			Op: OpMGet, DeadlineMS: 250, Keys: []core.Key{8, 24},
		}),
		"v1-scan-request": req(&Request{
			Op: OpScan, Start: 16, End: 80, Limit: 100,
		}),
		"v1-scan-ok-response": resp(&Response{
			Status: StatusOK,
			Pairs:  []core.Pair{{Key: 16, TID: 2}, {Key: 24, TID: 3}},
		}),
		"v1-put-request": req(&Request{
			Op: OpPut, Pairs: []core.Pair{{Key: 8, TID: 1}},
		}),
		"v1-empty-ok-response": resp(&Response{Status: StatusOK}),
		"v1-retry-response":    resp(&Response{Status: StatusRetry, RetryAfterMS: 20}),
		"v1-err-response":      resp(&Response{Status: StatusErr, Err: "bad frame"}),
		"hello-request":        req(&Request{Op: OpHello, MaxVersion: 2}),
		"hello-ok-response": resp(&Response{
			Status: StatusOK, Version: 2, Window: 32,
		}),
		"v2-get-request": frame(AppendRequestV2(nil, 7,
			&Request{Op: OpGet, Keys: []core.Key{8}})),
		"v2-get-ok-response": frame(AppendResponseV2(nil, 7, &Response{
			Status:  StatusOK,
			Lookups: []Lookup{{TID: 1, Found: true}},
		})),
		"v2-deadline-response": frame(AppendResponseV2(nil, 9,
			&Response{Status: StatusDeadline})),
		"v2-repl-status-request": frame(AppendRequestV2(nil, 11, &Request{
			Op: OpReplicate, Repl: &ReplReq{Kind: ReplStatus},
		})),
		"v2-repl-status-ok-response": frame(AppendResponseV2(nil, 11, &Response{
			Status: StatusOK,
			Repl: &ReplResp{
				Kind: ReplStatus, Epoch: 3, Role: RoleReplica,
				ShardLSNs: []uint64{42, 7},
			},
		})),
		"v2-repl-fetch-request": frame(AppendRequestV2(nil, 12, &Request{
			Op: OpReplicate, Repl: &ReplReq{
				Kind: ReplFetch, Epoch: 3, Shard: 1,
				After: 42, Applied: 42, Max: 1048576,
			},
		})),
		"v2-repl-fetch-ok-response": frame(AppendResponseV2(nil, 12, &Response{
			Status: StatusOK,
			Repl: &ReplResp{
				Kind: ReplFetch, Epoch: 3, PrimaryLSN: 44, Count: 2,
				Records: []byte{0xde, 0xad, 0xbe, 0xef},
			},
		})),
		"v2-repl-snapfetch-request": frame(AppendRequestV2(nil, 13, &Request{
			Op: OpReplicate, Repl: &ReplReq{
				Kind: ReplSnapFetch, Epoch: 3, Shard: 1,
				SnapLSN: 40, Offset: 0, Max: 1048576,
			},
		})),
		"v2-repl-snap-ok-response": frame(AppendResponseV2(nil, 13, &Response{
			Status: StatusOK,
			Repl: &ReplResp{
				Kind: ReplSnap, Epoch: 3, SnapLSN: 40, SnapSize: 4,
				Offset: 0, Done: true, Chunk: []byte{0xca, 0xfe, 0xf0, 0x0d},
			},
		})),
		"v2-repl-fence-request": frame(AppendRequestV2(nil, 14, &Request{
			Op: OpReplicate, Repl: &ReplReq{Kind: ReplFence, Epoch: 4},
		})),
		"v2-repl-fence-ok-response": frame(AppendResponseV2(nil, 14, &Response{
			Status: StatusOK,
			Repl:   &ReplResp{Kind: ReplFence, Epoch: 4},
		})),
		"v2-repl-fenced-response": frame(AppendResponseV2(nil, 15, &Response{
			Status: StatusFenced, FencedEpoch: 4,
		})),
		"v2-scanopen-request": frame(AppendRequestV2(nil, 21, &Request{
			Op: OpScanOpen, Start: 16, End: 4096,
		})),
		"v2-scanopen-ok-response": frame(AppendResponseV2(nil, 21, &Response{
			Status: StatusOK, Cursor: 1,
		})),
		"v2-scannext-request": frame(AppendRequestV2(nil, 22, &Request{
			Op: OpScanNext, Cursor: 1, Max: 2,
		})),
		"v2-scannext-ok-response": frame(AppendResponseV2(nil, 22, &Response{
			Status: StatusOK, ScanChunk: true,
			Pairs: []core.Pair{{Key: 16, TID: 2}, {Key: 24, TID: 3}},
		})),
		"v2-scannext-done-response": frame(AppendResponseV2(nil, 23, &Response{
			Status: StatusOK, ScanChunk: true, ScanDone: true,
			Pairs: []core.Pair{{Key: 32, TID: 4}},
		})),
		"v2-scanclose-request": frame(AppendRequestV2(nil, 24, &Request{
			Op: OpScanClose, Cursor: 1,
		})),
		"v2-scanclose-ok-response": frame(AppendResponseV2(nil, 24,
			&Response{Status: StatusOK})),
	}

	for name, wantBytes := range want {
		got, ok := spec[name]
		if !ok {
			t.Errorf("PROTOCOL.md is missing example frame %q", name)
			continue
		}
		if !bytes.Equal(got, wantBytes) {
			t.Errorf("frame %q: spec and codec disagree\n spec:  %s\n codec: %s",
				name, hex.EncodeToString(got), hex.EncodeToString(wantBytes))
		}
	}
	for name := range spec {
		if _, ok := want[name]; !ok {
			t.Errorf("PROTOCOL.md frame %q has no conformance check; add it to this test", name)
		}
	}

	// Every spec frame must also be acceptable to the decoder: the
	// payload round-trips through Decode{Request,Response}[V2].
	for name, f := range spec {
		payload := f[4:]
		var err error
		switch {
		case strings.HasSuffix(name, "-request") && strings.HasPrefix(name, "v2-"):
			_, _, err = DecodeRequestV2(payload)
		case strings.HasSuffix(name, "-request"):
			_, err = DecodeRequest(payload)
		case strings.HasPrefix(name, "v2-"):
			_, _, err = DecodeResponseV2(payload)
		default:
			_, err = DecodeResponse(payload)
		}
		if err != nil {
			t.Errorf("spec frame %q does not decode: %v", name, err)
		}
	}
}

// TestProtocolSpecLimits pins the size-limit table in PROTOCOL.md §7
// to the codec constants.
func TestProtocolSpecLimits(t *testing.T) {
	doc, err := os.ReadFile("../../PROTOCOL.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		name  string
		value int
	}{
		{"MaxFrame", MaxFrame},
		{"MaxMGetKeys", MaxMGetKeys},
		{"MaxScanRows", MaxScanRows},
		{"MaxScanChunk", MaxScanChunk},
		{"MaxReplBytes", MaxReplBytes},
		{"MaxReplShards", MaxReplShards},
		{"max error text", maxErrLen},
	} {
		row := fmt.Sprintf("%s` | %d |", c.name, c.value)
		if c.name == "max error text" {
			row = fmt.Sprintf("%s | %d |", c.name, c.value)
		}
		if !strings.Contains(string(doc), row) {
			t.Errorf("PROTOCOL.md §7 does not state %s = %d", c.name, c.value)
		}
	}
}

// parseSpecFrames extracts the fenced ```frame blocks from PROTOCOL.md.
// Each block is "name: <frame-name>" followed by lines of hex byte
// pairs; everything after '|' on a line is commentary.
func parseSpecFrames(t *testing.T) map[string][]byte {
	t.Helper()
	doc, err := os.ReadFile("../../PROTOCOL.md")
	if err != nil {
		t.Fatal(err)
	}
	frames := make(map[string][]byte)
	lines := strings.Split(string(doc), "\n")
	for i := 0; i < len(lines); i++ {
		if strings.TrimSpace(lines[i]) != "```frame" {
			continue
		}
		i++
		if i >= len(lines) || !strings.HasPrefix(lines[i], "name: ") {
			t.Fatalf("PROTOCOL.md line %d: frame block must open with \"name: ...\"", i+1)
		}
		name := strings.TrimSpace(strings.TrimPrefix(lines[i], "name: "))
		if _, dup := frames[name]; dup {
			t.Fatalf("PROTOCOL.md: duplicate frame name %q", name)
		}
		var buf []byte
		for i++; i < len(lines) && strings.TrimSpace(lines[i]) != "```"; i++ {
			hexPart := lines[i]
			if cut := strings.IndexByte(hexPart, '|'); cut >= 0 {
				hexPart = hexPart[:cut]
			}
			for _, tok := range strings.Fields(hexPart) {
				b, err := strconv.ParseUint(tok, 16, 8)
				if err != nil {
					t.Fatalf("PROTOCOL.md frame %q: bad hex byte %q: %v", name, tok, err)
				}
				buf = append(buf, byte(b))
			}
		}
		if len(buf) < 4 {
			t.Fatalf("PROTOCOL.md frame %q: too short to carry a length prefix", name)
		}
		frames[name] = buf
	}
	if len(frames) == 0 {
		t.Fatal("PROTOCOL.md contains no ```frame blocks")
	}
	return frames
}

package serve

// Tests for the streaming-scan ops and the pool data plane: end-to-end
// cursor correctness, snapshot isolation under interleaved writes on
// one pipelined connection (run with -race), idle-cursor reclamation,
// and the per-chunk admission contract — a stream of 100k+ rows
// completes under a scan budget far smaller than the stream, which a
// monolithic SCAN of the same size cannot.

import (
	"errors"
	"sync"
	"testing"
	"time"

	"pbtree/internal/core"
	"pbtree/internal/obs"
)

// collectStream pulls a whole stream through the raw cursor ops.
func collectStream(t *testing.T, cl *Client, start, end core.Key, chunk int) []core.Pair {
	t.Helper()
	var got []core.Pair
	if err := cl.StreamScan(start, end, chunk, func(rows []core.Pair) bool {
		got = append(got, rows...)
		return true
	}); err != nil {
		t.Fatalf("StreamScan: %v", err)
	}
	return got
}

func TestStreamScanEndToEnd(t *testing.T) {
	const n = 5000
	srv, addr := startServer(t, n, ServerConfig{})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Timeout = 5 * time.Second

	// The stream must equal the monolithic scan, chunk size be damned.
	want, err := cl.Scan(0, core.Key(8*n), n)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 7, 256, n + 1} {
		got := collectStream(t, cl, 0, core.Key(8*n), chunk)
		if len(got) != len(want) {
			t.Fatalf("chunk %d: stream returned %d rows, scan %d", chunk, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("chunk %d: row %d = %v, want %v", chunk, i, got[i], want[i])
			}
		}
	}

	// Exhaustion closes the cursor server-side: the next SCANNEXT and
	// an explicit SCANCLOSE both answer cursor-gone.
	cur, err := cl.ScanOpen(0, core.Key(8*n))
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, done, err := cl.ScanNext(cur, 1024)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	if _, _, err := cl.ScanNext(cur, 16); !errors.Is(err, ErrCursorGone) {
		t.Fatalf("SCANNEXT after exhaustion: %v, want ErrCursorGone", err)
	}
	if err := cl.ScanClose(cur); !errors.Is(err, ErrCursorGone) {
		t.Fatalf("SCANCLOSE after exhaustion: %v, want ErrCursorGone", err)
	}
	if open := srv.cursorStats().Open; open != 0 {
		t.Fatalf("cursors open after exhaustion = %d, want 0", open)
	}

	// SCANNEXT against a never-opened cursor answers cursor-gone, not
	// an error.
	if _, _, err := cl.ScanNext(12345, 16); !errors.Is(err, ErrCursorGone) {
		t.Fatalf("SCANNEXT on bogus cursor: %v, want ErrCursorGone", err)
	}

	// An explicit close releases the cursor exactly once.
	cur, err = cl.ScanOpen(0, core.Key(8*n))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.ScanClose(cur); err != nil {
		t.Fatal(err)
	}
	if err := cl.ScanClose(cur); !errors.Is(err, ErrCursorGone) {
		t.Fatalf("double SCANCLOSE: %v, want ErrCursorGone", err)
	}
}

// TestStreamScanSnapshotIsolation pins the cursor's claim: rows come
// from the snapshots pinned at SCANOPEN, whatever lands afterwards.
func TestStreamScanSnapshotIsolation(t *testing.T) {
	const n = 2000
	_, addr := startServer(t, n, ServerConfig{})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Timeout = 5 * time.Second

	cur, err := cl.ScanOpen(0, core.Key(16*n))
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite every key and insert new ones between existing keys
	// after the cursor pinned its snapshots.
	const sentinel = 1 << 20 // far above any TID SortedPairs hands out
	for k := core.Key(8); k <= core.Key(8*n); k += 8 {
		if err := cl.Put(core.Pair{Key: k, TID: sentinel}, core.Pair{Key: k + 1, TID: sentinel + 1}); err != nil {
			t.Fatal(err)
		}
	}
	var got []core.Pair
	for {
		rows, done, err := cl.ScanNext(cur, 512)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rows...)
		if done {
			break
		}
	}
	if len(got) != n {
		t.Fatalf("stream saw %d rows, want the %d pinned at open", len(got), n)
	}
	for i, p := range got {
		if p.TID >= sentinel {
			t.Fatalf("row %d = %v leaked a post-open write into the pinned snapshot", i, p)
		}
	}
}

// TestStreamScanInterleaved drives a streaming scan and pipelined
// GET/PUT traffic concurrently over ONE connection — the cursor must
// survive interleaving with other in-flight requests (run with -race).
func TestStreamScanInterleaved(t *testing.T) {
	const n = 20_000
	_, addr := startServer(t, n, ServerConfig{Window: 16})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Timeout = 10 * time.Second
	if cl.Version() < ProtoV2 {
		t.Fatal("wanted a pipelined connection")
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			k := core.Key(8 * (w + 1))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := cl.Get(k); err != nil {
					t.Errorf("interleaved GET: %v", err)
					return
				}
				if err := cl.Put(core.Pair{Key: k, TID: core.TID(w)}); err != nil {
					var retry *RetryError
					if errors.As(err, &retry) {
						time.Sleep(retry.After)
						continue
					}
					t.Errorf("interleaved PUT: %v", err)
					return
				}
			}
		}(w)
	}

	// Two streams share the connection with the point traffic.
	for i := 0; i < 2; i++ {
		rows := collectStream(t, cl, 0, core.Key(8*n), 128)
		if len(rows) < n {
			t.Errorf("stream %d returned %d rows, want >= %d", i, len(rows), n)
		}
		last := core.Key(0)
		for _, p := range rows {
			if p.Key < last {
				t.Fatalf("stream %d out of order: %d after %d", i, p.Key, last)
			}
			last = p.Key
		}
	}
	close(stop)
	wg.Wait()
}

// TestCursorTimeout pins idle reclamation: an abandoned cursor's
// snapshots are released by the reaper and its ID answers cursor-gone.
func TestCursorTimeout(t *testing.T) {
	const n = 1000
	srv, addr := startServer(t, n, ServerConfig{CursorTimeout: 50 * time.Millisecond})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Timeout = 5 * time.Second

	cur, err := cl.ScanOpen(0, core.Key(8*n))
	if err != nil {
		t.Fatal(err)
	}
	if open := srv.cursorStats().Open; open != 1 {
		t.Fatalf("cursors open = %d, want 1", open)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.cursorStats().Open != 0 {
		if time.Now().After(deadline) {
			t.Fatal("reaper never reclaimed the idle cursor")
		}
		time.Sleep(10 * time.Millisecond)
	}
	cs := srv.cursorStats()
	if cs.Timeouts == 0 {
		t.Fatalf("cursor stats = %+v, want a recorded timeout", cs)
	}
	if _, _, err := cl.ScanNext(cur, 16); !errors.Is(err, ErrCursorGone) {
		t.Fatalf("SCANNEXT on reaped cursor: %v, want ErrCursorGone", err)
	}

	// A cursor that keeps pulling chunks stays alive across many
	// timeout periods: lastUsed refreshes per SCANNEXT.
	cur, err = cl.ScanOpen(0, core.Key(8*n))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		time.Sleep(20 * time.Millisecond)
		if _, _, err := cl.ScanNext(cur, 1); err != nil {
			t.Fatalf("chunk %d on a live cursor: %v", i, err)
		}
	}
	if err := cl.ScanClose(cur); err != nil {
		t.Fatal(err)
	}
}

// TestConnCloseReleasesCursors pins connection-teardown reclamation.
func TestConnCloseReleasesCursors(t *testing.T) {
	const n = 1000
	srv, addr := startServer(t, n, ServerConfig{})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	cl.Timeout = 5 * time.Second
	for i := 0; i < 3; i++ {
		if _, err := cl.ScanOpen(0, core.Key(8*n)); err != nil {
			t.Fatal(err)
		}
	}
	if open := srv.cursorStats().Open; open != 3 {
		t.Fatalf("cursors open = %d, want 3", open)
	}
	cl.Close()
	deadline := time.Now().Add(5 * time.Second)
	for srv.cursorStats().Open != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("connection close left %d cursors open", srv.cursorStats().Open)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStreamScanTokenOccupancy is the admission contract's proof: with
// a scan budget of 512 row tokens, a monolithic SCAN of 120k rows is
// rejected outright (it would hold 120k tokens), while a streaming
// scan of the same 120k rows completes in 256-row chunks — it never
// holds more than one chunk's tokens at a time.
func TestStreamScanTokenOccupancy(t *testing.T) {
	const n = 120_000
	metrics := obs.NewMetrics()
	srv, addr := startServer(t, n, ServerConfig{
		Metrics:   metrics,
		Admission: AdmissionConfig{ScanRowTokens: 512},
	})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Timeout = 30 * time.Second

	if _, err := cl.Scan(0, core.Key(8*n), n); err == nil {
		t.Fatal("monolithic SCAN of 120k rows fit a 512-token budget")
	} else if !errors.As(err, new(*RetryError)) {
		t.Fatalf("monolithic SCAN: %v, want RetryError", err)
	}

	total := 0
	if err := cl.StreamScan(0, core.Key(8*n), 256, func(rows []core.Pair) bool {
		total += len(rows)
		// The scan budget can never hold more than this chunk's tokens
		// (no other scan traffic exists in this test).
		if inUse := metrics.Admission(obs.AdmScan).InUse; inUse > 256 {
			t.Errorf("scan tokens in use = %d mid-stream, want <= 256", inUse)
			return false
		}
		return true
	}); err != nil {
		t.Fatalf("StreamScan: %v", err)
	}
	if total != n {
		t.Fatalf("stream returned %d rows, want %d", total, n)
	}
	if open := srv.cursorStats().Open; open != 0 {
		t.Fatalf("cursors open after stream = %d, want 0", open)
	}
}

// TestDataPlaneGoroutine runs the end-to-end ops on the legacy
// goroutine plane, keeping the -data-plane=goroutine path honest.
func TestDataPlaneGoroutine(t *testing.T) {
	const n = 3000
	srv, addr := startServer(t, n, ServerConfig{DataPlane: DataPlaneGoroutine, Window: 8})
	if srv.pool != nil {
		t.Fatal("goroutine plane built a worker pool")
	}
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Timeout = 5 * time.Second
	if tid, ok, err := cl.Get(8); err != nil || !ok || tid != 1 {
		t.Fatalf("Get(8) = (%d, %v, %v)", tid, ok, err)
	}
	if err := cl.Put(core.Pair{Key: 3, TID: 7}); err != nil {
		t.Fatal(err)
	}
	rows := collectStream(t, cl, 0, core.Key(8*n), 100)
	if len(rows) != n+1 {
		t.Fatalf("stream on goroutine plane returned %d rows, want %d", len(rows), n+1)
	}
}

// TestPoolPlaneStats pins the STATS surface of the pool plane: the
// data_plane/pool_size fields and the cursor table are reported.
func TestPoolPlaneStats(t *testing.T) {
	const n = 100
	srv, addr := startServer(t, n, ServerConfig{PoolSize: 7})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Timeout = 5 * time.Second
	if _, _, err := cl.Get(8); err != nil {
		t.Fatal(err)
	}
	ss := srv.Stats()
	if ss.DataPlane != DataPlanePool || ss.PoolSize != 7 {
		t.Fatalf("stats data plane = %q/%d, want %q/7", ss.DataPlane, ss.PoolSize, DataPlanePool)
	}
	if ss.Cursors.MaxConn != maxConnCursors {
		t.Fatalf("stats cursor cap = %d, want %d", ss.Cursors.MaxConn, maxConnCursors)
	}
}

// TestConnCursorCap pins the per-connection cursor bound: SCANOPEN
// past the cap answers StatusRetry, and closing one cursor frees a
// slot.
func TestConnCursorCap(t *testing.T) {
	const n = 500
	_, addr := startServer(t, n, ServerConfig{})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Timeout = 5 * time.Second
	ids := make([]uint64, 0, maxConnCursors)
	for i := 0; i < maxConnCursors; i++ {
		id, err := cl.ScanOpen(0, core.Key(8*n))
		if err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	if _, err := cl.ScanOpen(0, core.Key(8*n)); !errors.As(err, new(*RetryError)) {
		t.Fatalf("open past cap: %v, want RetryError", err)
	}
	if err := cl.ScanClose(ids[0]); err != nil {
		t.Fatal(err)
	}
	id, err := cl.ScanOpen(0, core.Key(8*n))
	if err != nil {
		t.Fatalf("open after freeing a slot: %v", err)
	}
	if err := cl.ScanClose(id); err != nil {
		t.Fatal(err)
	}
}

// Package serve is the serving layer of the repository: it turns the
// frozen-tree read safety of internal/core and the zero-cost native
// memory model of internal/memsys into a component that can sustain
// heavy concurrent traffic.
//
// The architecture (DESIGN.md §8–§10):
//
//   - Store hash-partitions keys across N independent pB+-Trees. Each
//     shard has exactly one writer goroutine; reads never take a lock.
//     Writers apply mutations to a private spare tree and publish it
//     with an atomic.Pointer swap, so every read runs against an
//     immutable snapshot (copy-on-write publication, single-writer /
//     many-reader).
//   - Batcher collects concurrent point lookups into per-shard groups
//     and executes them with core.Tree.SearchBatch, the group-
//     pipelined search whose node fetches overlap in memory — the
//     serving-layer generalization of the paper's whole-node prefetch
//     (measured in the simulated `mget` experiment of internal/exp).
//   - DurableStore layers per-shard write-ahead logs and checkpoints
//     (wal.go, durable.go) under the Store so a crash loses nothing
//     that was acknowledged.
//   - Server is a TCP front end speaking the length-prefixed binary
//     protocol specified in PROTOCOL.md (GET / MGET / SCAN / PUT /
//     DEL / STATS / HELLO). A HELLO exchange upgrades a connection to
//     protocol version 2, under which the connection is a full-duplex
//     pipeline: every frame carries a request ID, the server reads
//     ahead and executes up to ServerConfig.Window requests of one
//     connection concurrently, and responses are written in
//     completion order, not arrival order. Version-1 clients never
//     send HELLO and keep the original one-request-at-a-time loop.
//   - Admission control is per op class rather than a flat in-flight
//     cap: reads (GET/MGET), writes (PUT/DEL) and scans draw from
//     separate token budgets, with SCAN charged by its requested row
//     limit. Overload therefore rejects expensive work first, and the
//     StatusRetry hint tells the client which class is saturated
//     (AdmissionConfig; occupancy is exported via obs.Metrics).
//   - Client mirrors the server: Dial negotiates version 2 and
//     multiplexes concurrent calls over one connection (Client.Go is
//     the async form); DialV1 pins the legacy protocol.
//   - Loadgen drives configurable read/write/scan mixes with uniform,
//     Zipfian or hot-set key skew (internal/workload) across
//     Conns × Window concurrent streams and reports throughput and
//     latency percentiles.
package serve

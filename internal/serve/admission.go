package serve

import (
	"sync/atomic"
	"time"

	"pbtree/internal/obs"
)

// AdmissionConfig sets the per-op-class token budgets of a Server.
// Admission replaces the old flat in-flight gate: each request class
// draws tokens from its own budget while executing, so a burst of
// expensive SCANs can exhaust only the scan budget — cheap GETs keep
// being admitted — and the retry-after hint sent on rejection reflects
// the class that is actually saturated (DESIGN.md §10, PROTOCOL.md §6).
type AdmissionConfig struct {
	// ReadTokens bounds concurrently executing GET/MGET requests; each
	// holds one token. Zero selects 4x the store's shard count or 2x
	// the server's pipeline window, whichever is larger — a default
	// sized only to the shard count would reject moderate pipelined
	// load on small machines.
	ReadTokens int

	// WriteTokens bounds concurrently executing PUT/DEL requests; each
	// holds one token. Zero selects 2x the store's shard count or the
	// pipeline window, whichever is larger.
	WriteTokens int

	// ScanRowTokens bounds the total rows of concurrently executing
	// scan work: a monolithic SCAN holds Limit tokens while it runs,
	// and a streaming SCANNEXT holds its chunk's Max tokens only while
	// that chunk executes — between chunks a cursor holds none. Zero
	// selects 64k rows.
	ScanRowTokens int

	// RetryAfterRead/Write/Scan are the backoff hints sent with
	// StatusRetry when the matching budget is exhausted. Zero selects
	// the server's base RetryAfter for reads and writes and 4x the base
	// for scans (an exhausted scan budget drains slower).
	RetryAfterRead, RetryAfterWrite, RetryAfterScan time.Duration
}

// withDefaults resolves zero values against the store shape, the
// server's pipeline window, and its base retry hint.
func (c AdmissionConfig) withDefaults(shards, window int, baseRetry time.Duration) AdmissionConfig {
	if c.ReadTokens <= 0 {
		c.ReadTokens = max(4*shards, 2*window)
	}
	if c.WriteTokens <= 0 {
		c.WriteTokens = max(2*shards, window)
	}
	if c.ScanRowTokens <= 0 {
		c.ScanRowTokens = 64 << 10
	}
	if c.RetryAfterRead <= 0 {
		c.RetryAfterRead = baseRetry
	}
	if c.RetryAfterWrite <= 0 {
		c.RetryAfterWrite = baseRetry
	}
	if c.RetryAfterScan <= 0 {
		c.RetryAfterScan = 4 * baseRetry
	}
	return c
}

// opClass maps a wire op onto its admission class; control-plane ops
// (STATS, HELLO, SCANCLOSE) return false and bypass admission
// entirely. SCANCLOSE is deliberately unmetered: releasing resources
// must never be turned away by an exhausted budget, or an overloaded
// server could wedge itself holding cursors it refuses to let go.
func opClass(op Op) (obs.AdmissionClass, bool) {
	switch op {
	case OpGet, OpMGet:
		return obs.AdmRead, true
	case OpPut, OpDel:
		return obs.AdmWrite, true
	case OpScan, OpScanOpen, OpScanNext:
		return obs.AdmScan, true
	}
	return 0, false
}

// tokenBudget is one class's lock-free token pool.
type tokenBudget struct {
	capacity int64
	used     atomic.Int64
	rejects  atomic.Uint64
}

// tryAcquire takes n tokens if they fit the budget.
func (b *tokenBudget) tryAcquire(n int64) bool {
	for {
		u := b.used.Load()
		if u+n > b.capacity {
			return false
		}
		if b.used.CompareAndSwap(u, u+n) {
			return true
		}
	}
}

// release returns n tokens.
func (b *tokenBudget) release(n int64) { b.used.Add(-n) }

// admission is the server's per-class admission controller.
type admission struct {
	budgets    [obs.NumAdmissionClasses]tokenBudget
	retryAfter [obs.NumAdmissionClasses]time.Duration
	metrics    *obs.Metrics
}

// newAdmission builds the controller from a resolved config.
func newAdmission(cfg AdmissionConfig, metrics *obs.Metrics) *admission {
	a := &admission{metrics: metrics}
	a.budgets[obs.AdmRead].capacity = int64(cfg.ReadTokens)
	a.budgets[obs.AdmWrite].capacity = int64(cfg.WriteTokens)
	a.budgets[obs.AdmScan].capacity = int64(cfg.ScanRowTokens)
	a.retryAfter[obs.AdmRead] = cfg.RetryAfterRead
	a.retryAfter[obs.AdmWrite] = cfg.RetryAfterWrite
	a.retryAfter[obs.AdmScan] = cfg.RetryAfterScan
	for _, c := range []obs.AdmissionClass{obs.AdmRead, obs.AdmWrite, obs.AdmScan} {
		metrics.AdmissionCapacity(c, a.budgets[c].capacity)
	}
	return a
}

// cost is the token price of a request: one per cheap op, the
// requested row limit per monolithic SCAN, and one chunk's row budget
// per SCANNEXT. The streaming ops are what make big scans cheap to
// admit: a cursor holds zero row tokens between chunks, so a 1M-row
// stream never occupies more of the scan budget than its chunk size
// (PROTOCOL.md §10.4). Tokens are released when the response is
// ready, whatever the op actually returned.
func cost(req *Request) int64 {
	switch req.Op {
	case OpScan:
		return int64(req.Limit)
	case OpScanNext:
		return int64(req.Max)
	}
	return 1
}

// admit takes the request's tokens or reports the saturated class's
// retry hint. The returned release func is non-nil iff ok; ops outside
// every class (STATS, HELLO) admit for free.
func (a *admission) admit(req *Request) (release func(), retryAfter time.Duration, ok bool) {
	class, metered := opClass(req.Op)
	if !metered {
		return func() {}, 0, true
	}
	n := cost(req)
	b := &a.budgets[class]
	if !b.tryAcquire(n) {
		b.rejects.Add(1)
		a.metrics.AdmissionReject(class)
		return nil, a.retryAfter[class], false
	}
	a.metrics.AdmissionAcquire(class, n)
	return func() {
		b.release(n)
		a.metrics.AdmissionRelease(class, n)
	}, 0, true
}

// BudgetStats is the STATS view of one admission class.
type BudgetStats struct {
	Capacity int64  `json:"capacity"` // total tokens in the class budget
	InUse    int64  `json:"in_use"`   // tokens held by executing requests
	Rejected uint64 `json:"rejected"` // requests turned away since start
}

// stats snapshots every class for the STATS payload.
func (a *admission) stats() map[string]BudgetStats {
	out := make(map[string]BudgetStats, int(obs.NumAdmissionClasses))
	for _, c := range []obs.AdmissionClass{obs.AdmRead, obs.AdmWrite, obs.AdmScan} {
		out[c.String()] = BudgetStats{
			Capacity: a.budgets[c].capacity,
			InUse:    a.budgets[c].used.Load(),
			Rejected: a.budgets[c].rejects.Load(),
		}
	}
	return out
}

package serve

import (
	"bytes"
	"errors"
	"testing"

	"pbtree/internal/core"
)

func TestWALRecordRoundTrip(t *testing.T) {
	cases := []walRecord{
		{lsn: 1},
		{lsn: 2, puts: []core.Pair{{Key: 8, TID: 1}}},
		{lsn: 3, dels: []core.Key{16}},
		{lsn: 1 << 40, puts: []core.Pair{{Key: 8, TID: 1}, {Key: 24, TID: 3}}, dels: []core.Key{8, 32}},
	}
	var stream []byte
	for _, rec := range cases {
		stream = appendWALRecord(stream, rec.lsn, rec.puts, rec.dels)
	}
	off := 0
	for i, want := range cases {
		rec, n, err := decodeWALRecord(stream[off:])
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.lsn != want.lsn || len(rec.puts) != len(want.puts) || len(rec.dels) != len(want.dels) {
			t.Fatalf("record %d: got %+v, want %+v", i, rec, want)
		}
		for j := range want.puts {
			if rec.puts[j] != want.puts[j] {
				t.Fatalf("record %d put %d: got %+v, want %+v", i, j, rec.puts[j], want.puts[j])
			}
		}
		for j := range want.dels {
			if rec.dels[j] != want.dels[j] {
				t.Fatalf("record %d del %d: got %d, want %d", i, j, rec.dels[j], want.dels[j])
			}
		}
		off += n
	}
	if off != len(stream) {
		t.Fatalf("consumed %d of %d stream bytes", off, len(stream))
	}
}

func TestWALRecordTornAndCorrupt(t *testing.T) {
	valid := appendWALRecord(nil, 5, []core.Pair{{Key: 8, TID: 1}, {Key: 16, TID: 2}}, []core.Key{24})
	// Every strict prefix is torn, never data.
	for n := 0; n < len(valid); n++ {
		if _, consumed, err := decodeWALRecord(valid[:n]); !errors.Is(err, errWALTorn) || consumed != 0 {
			t.Fatalf("prefix %d: consumed=%d err=%v, want torn", n, consumed, err)
		}
	}
	// Any single flipped bit breaks the frame or the CRC (CRC32C
	// detects all single-bit errors).
	for i := range valid {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0x40
		if _, _, err := decodeWALRecord(mut); err == nil {
			t.Fatalf("bit flip at byte %d still decoded", i)
		}
	}
	// A lying length never allocates or reads past the buffer.
	lie := append([]byte(nil), valid...)
	binaryPatchU32(lie, 0xfffffff0)
	if _, _, err := decodeWALRecord(lie); !errors.Is(err, errWALTorn) {
		t.Fatalf("lying length: err=%v, want torn", err)
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncEvery, FsyncNever} {
		got, err := ParseFsyncPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseFsyncPolicy accepted garbage")
	}
}

// FuzzWALRecord asserts the WAL decoder's safety contract on arbitrary
// bytes: it never panics, never consumes bytes on error (so recovery
// can never replay data past a torn or corrupt record), and every
// successful decode is canonical — re-encoding reproduces exactly the
// consumed bytes. The committed corpus seeds a valid record, a
// lying-length frame and a bad-CRC frame.
func FuzzWALRecord(f *testing.F) {
	valid := appendWALRecord(nil, 7, []core.Pair{{Key: 8, TID: 1}}, []core.Key{16})
	f.Add(append([]byte(nil), valid...))
	lie := append([]byte(nil), valid...)
	binaryPatchU32(lie, 0xfffffff0) // lying length
	f.Add(lie)
	bad := append([]byte(nil), valid...)
	bad[len(bad)-1] ^= 0xff // bad CRC
	f.Add(bad)

	f.Fuzz(func(t *testing.T, b []byte) {
		rec, n, err := decodeWALRecord(b)
		if err != nil {
			if n != 0 {
				t.Fatalf("error %v consumed %d bytes", err, n)
			}
			if rec.puts != nil || rec.dels != nil {
				t.Fatalf("error %v returned data", err)
			}
			return
		}
		if n < walHeaderSize || n > len(b) {
			t.Fatalf("consumed %d of %d", n, len(b))
		}
		re := appendWALRecord(nil, rec.lsn, rec.puts, rec.dels)
		if !bytes.Equal(re, b[:n]) {
			t.Fatalf("decode not canonical: %x -> %x", b[:n], re)
		}
	})
}

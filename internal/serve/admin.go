package serve

// The admin HTTP plane (DESIGN.md §12). The serving protocol is a
// custom binary framing with no HTTP listener, so since the wire
// split the Prometheus/expvar/pprof surfaces had nothing to mount on.
// NewAdminMux restores them on a separate address (pbtree-server
// -admin): operational endpoints only, never the data path.

import (
	"encoding/json"
	"expvar"
	"io"
	"net/http"
	"net/http/pprof"

	"pbtree/internal/obs"
)

// NewAdminMux builds the admin-plane HTTP handler:
//
//	/metrics     Prometheus text exposition — op/stage/admission/
//	             durability families from the shared obs.Metrics plus
//	             the store's per-shard gauges
//	/healthz     200 once every shard has published its first snapshot,
//	             503 while any shard is still recovering
//	/statsz      the STATS payload as JSON (same shape as the wire op)
//	/debug/vars  expvar (includes the registry from
//	             obs.Metrics.PublishExpvar)
//	/debug/pprof the standard runtime profiles
//
// srv may be nil (store-only deployments lose /statsz, answered 404).
// extra writers are appended to the /metrics exposition — the
// replication node contributes its lag gauges this way. The handler
// is safe to serve concurrently with the data path: every endpoint
// reads lock-free snapshots and none blocks on a recovering shard.
func NewAdminMux(srv *Server, st *Store, extra ...func(io.Writer) error) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var m *obs.Metrics
		if srv != nil {
			m = srv.cfg.Metrics
		} else if st != nil {
			m = st.cfg.Metrics
		}
		if m != nil {
			if err := m.WritePrometheus(w); err != nil {
				return
			}
		}
		if st != nil {
			_ = st.WriteMetrics(w)
		}
		for _, f := range extra {
			if f != nil {
				_ = f(w)
			}
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if st != nil && !st.Ready() {
			http.Error(w, "recovering", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
		if srv == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(srv.Stats())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

package serve

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// TestExportedSymbolsDocumented fails when an exported symbol in the
// serving layer, the storage-engine packages or the replication
// subsystem lacks a doc comment. The serving layer is the repository's
// public face — PROTOCOL.md specifies the wire and the godoc specifies
// the Go API — the Backend contract (internal/backend, internal/lsm,
// internal/storage) is what a new engine implements against, and the
// repl godoc states the failover invariants operators rely on.
// `make docs-check` gates on all of them. The memory-model and index
// packages joined the gate with the hardware-prefetch work: their
// exported surface (prefetch stubs, native counters, the Config knobs)
// is what benchmark authors program against.
func TestExportedSymbolsDocumented(t *testing.T) {
	for dir, pkgName := range map[string]string{
		".":           "serve",
		"backendtest": "backendtest",
		"../backend":  "backend",
		"../lsm":      "lsm",
		"../storage":  "storage",
		"../repl":     "repl",
		"../memsys":   "memsys",
		"../core":     "core",
	} {
		checkPackageDocs(t, dir, pkgName)
	}
}

// checkPackageDocs parses one package directory and reports every
// exported symbol without a doc comment.
func checkPackageDocs(t *testing.T, dir, pkgName string) {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs[pkgName]
	if !ok {
		t.Fatalf("package %s not found in %s, got %v", pkgName, dir, pkgs)
	}

	undocumented := func(doc *ast.CommentGroup) bool {
		return doc == nil || strings.TrimSpace(doc.Text()) == ""
	}
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		t.Errorf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name)
	}

	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if d.Recv != nil && !exportedRecv(d.Recv) {
					continue // method on an unexported type
				}
				if undocumented(d.Doc) {
					kind := "function"
					if d.Recv != nil {
						kind = "method"
					}
					report(d.Pos(), kind, d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && undocumented(d.Doc) && undocumented(s.Doc) {
							report(s.Pos(), "type", s.Name.Name)
						}
						// Exported struct fields carry API contract
						// too; each needs a doc or line comment.
						if st, ok := s.Type.(*ast.StructType); ok && s.Name.IsExported() {
							for _, f := range st.Fields.List {
								for _, n := range f.Names {
									if n.IsExported() && undocumented(f.Doc) && undocumented(f.Comment) {
										report(n.Pos(), "field", s.Name.Name+"."+n.Name)
									}
								}
							}
						}
					case *ast.ValueSpec:
						// A const/var block doc covers its members.
						if undocumented(d.Doc) && undocumented(s.Doc) && undocumented(s.Comment) {
							for _, n := range s.Names {
								if n.IsExported() {
									report(n.Pos(), "const/var", n.Name)
								}
							}
						}
					}
				}
			}
		}
	}
}

// exportedRecv reports whether a method receiver names an exported
// type.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) != 1 {
		return false
	}
	typ := recv.List[0].Type
	for {
		switch x := typ.(type) {
		case *ast.StarExpr:
			typ = x.X
		case *ast.IndexExpr: // generic receiver
			typ = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}

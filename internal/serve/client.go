package serve

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pbtree/internal/core"
)

// RetryError reports a StatusRetry rejection; the caller should back
// off for After and retry.
type RetryError struct {
	After time.Duration // the server's class-specific backoff hint
}

// Error describes the rejection with its backoff hint.
func (e *RetryError) Error() string {
	return fmt.Sprintf("serve: server overloaded, retry after %v", e.After)
}

// DeadlineError reports that the request's deadline expired — on the
// server before execution, or on the client waiting for the response.
type DeadlineError struct{}

// Error names the expired deadline.
func (*DeadlineError) Error() string { return "serve: request deadline expired" }

// ErrClientClosed reports a call on a closed or failed client.
var ErrClientClosed = errors.New("serve: client closed")

// Call is one in-flight asynchronous request issued with Client.Go.
// When the call completes, Resp/Err are set and the call is delivered
// on Done.
type Call struct {
	Req  *Request   // the request as sent
	Resp *Response  // the decoded response (nil on transport error)
	Err  error      // transport or decode error
	Done chan *Call // receives the call itself on completion

	id uint32 // wire request ID (version 2)
}

// finish delivers the call; a full Done channel drops the notification
// (as in net/rpc, the caller is expected to size it).
func (c *Call) finish() {
	select {
	case c.Done <- c:
	default:
	}
}

// Client is a wire-protocol client over one TCP connection. Dial
// negotiates protocol version 2 when the server supports it, which
// makes the connection a full-duplex pipeline: any number of
// goroutines may issue calls concurrently (Go, or the synchronous
// wrappers), the client tags each with a request ID, and a reader
// goroutine matches responses — which the server may send in any order
// — back to their callers. Against a version-1 server the same API
// works but calls serialize on the connection, one round trip at a
// time.
type Client struct {
	// Timeout, when nonzero, bounds each call: it is sent as the
	// request deadline and bounds the local wait for the response.
	Timeout time.Duration

	version int    // negotiated protocol version
	window  uint32 // server's per-connection pipeline depth (v2)

	conn net.Conn
	br   *bufio.Reader

	// v1 state: one round trip at a time under mu.
	mu  sync.Mutex
	out []byte
	in  []byte
	bw  *bufio.Writer

	// v2 state: concurrent senders under sendMu, reader goroutine
	// completing pending calls.
	sendMu  sync.Mutex
	nextID  atomic.Uint32
	pending sync.Map // uint32 -> *Call
	failed  atomic.Pointer[error]
	closed  atomic.Bool
}

// Dial connects to a server and negotiates the highest protocol
// version both sides speak (PROTOCOL.md §3): it sends a HELLO and
// upgrades to the pipelined version 2 on an acknowledging server. A
// pre-v2 server answers the unknown HELLO op with StatusErr, which
// Dial treats as a version-1 connection — so a new client works
// against an old server.
func Dial(addr string) (*Client, error) {
	return dial(addr, ProtoV2)
}

// DialV1 connects without negotiating: the connection speaks protocol
// version 1 (one request, one response, in order), byte-compatible
// with pre-pipelining servers and useful for compatibility tests.
func DialV1(addr string) (*Client, error) {
	return dial(addr, ProtoV1)
}

func dial(addr string, maxVersion uint8) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		version: ProtoV1,
		conn:    conn,
		br:      bufio.NewReader(conn),
		bw:      bufio.NewWriter(conn),
	}
	if maxVersion >= ProtoV2 {
		if err := c.negotiate(maxVersion); err != nil {
			conn.Close()
			return nil, err
		}
	}
	if c.version >= ProtoV2 {
		go c.readLoop()
	}
	return c, nil
}

// negotiate runs the HELLO exchange on a fresh connection, bounded by
// a fixed handshake deadline so a dead server cannot hang Dial.
func (c *Client) negotiate(maxVersion uint8) error {
	c.conn.SetDeadline(time.Now().Add(10 * time.Second))
	defer c.conn.SetDeadline(time.Time{})
	rs, err := c.roundTrip(&Request{Op: OpHello, MaxVersion: maxVersion})
	if err != nil {
		return err
	}
	switch rs.Status {
	case StatusOK:
		if rs.Version >= ProtoV2 {
			c.version = int(rs.Version)
			c.window = rs.Window
		}
		return nil
	case StatusErr:
		// A pre-v2 server rejects the unknown op but keeps the
		// connection; fall back to version 1.
		return nil
	default:
		return fmt.Errorf("serve: HELLO answered with status %d", rs.Status)
	}
}

// Version reports the negotiated protocol version.
func (c *Client) Version() int { return c.version }

// Window reports the server's per-connection pipeline depth (0 on a
// version-1 connection).
func (c *Client) Window() uint32 { return c.window }

// Close closes the connection; in-flight calls fail with
// ErrClientClosed.
func (c *Client) Close() error {
	c.closed.Store(true)
	return c.conn.Close()
}

// roundTrip sends one request and decodes the response frame
// (version-1 framing, serialized on the connection).
func (c *Client) roundTrip(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.Timeout > 0 {
		req.DeadlineMS = uint32(c.Timeout / time.Millisecond)
		if err := c.conn.SetDeadline(time.Now().Add(c.Timeout)); err != nil {
			return nil, err
		}
	}
	payload, err := AppendRequest(c.out[:0], req)
	if err != nil {
		return nil, err
	}
	c.out = payload
	if err := WriteFrame(c.bw, payload); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	frame, err := ReadFrame(c.br, c.in)
	if err != nil {
		return nil, err
	}
	c.in = frame
	return DecodeResponse(frame)
}

// Go issues req asynchronously and returns its Call; the call is
// delivered on done (a fresh one-buffered channel when nil) once the
// response arrives or the transport fails. On a version-1 connection
// the call still completes asynchronously but serializes with every
// other call on the connection.
func (c *Client) Go(req *Request, done chan *Call) *Call {
	if done == nil {
		done = make(chan *Call, 1)
	}
	call := &Call{Req: req, Done: done}
	if c.version < ProtoV2 {
		go func() {
			call.Resp, call.Err = c.roundTrip(req)
			call.finish()
		}()
		return call
	}
	if err := c.broken(); err != nil {
		call.Err = err
		call.finish()
		return call
	}
	if c.Timeout > 0 {
		req.DeadlineMS = uint32(c.Timeout / time.Millisecond)
	}
	id := c.nextID.Add(1)
	call.id = id
	c.pending.Store(id, call)
	c.sendMu.Lock()
	payload, err := AppendRequestV2(c.out[:0], id, req)
	if err == nil {
		c.out = payload
		if c.Timeout > 0 {
			c.conn.SetWriteDeadline(time.Now().Add(c.Timeout))
		}
		if err = WriteFrame(c.bw, payload); err == nil {
			err = c.bw.Flush()
		}
	}
	c.sendMu.Unlock()
	if err != nil {
		if _, loaded := c.pending.LoadAndDelete(id); loaded {
			call.Err = err
			call.finish()
		}
	}
	return call
}

// broken reports the sticky transport error, if any.
func (c *Client) broken() error {
	if c.closed.Load() {
		return ErrClientClosed
	}
	if p := c.failed.Load(); p != nil {
		return *p
	}
	return nil
}

// readLoop is the version-2 response dispatcher: it matches response
// IDs to pending calls for as long as the connection lives, then fails
// whatever is left.
func (c *Client) readLoop() {
	var buf []byte
	var err error
	for {
		var frame []byte
		frame, err = ReadFrame(c.br, buf)
		if err != nil {
			break
		}
		buf = frame
		id, rs, derr := DecodeResponseV2(frame)
		if derr != nil {
			err = derr
			break
		}
		if v, ok := c.pending.LoadAndDelete(id); ok {
			call := v.(*Call)
			call.Resp = rs
			call.finish()
		}
		// An unknown ID is a response to an abandoned (timed-out)
		// call: drop it.
	}
	if c.closed.Load() {
		err = ErrClientClosed
	}
	c.failed.Store(&err)
	c.conn.Close()
	c.pending.Range(func(k, v any) bool {
		if _, ok := c.pending.LoadAndDelete(k); ok {
			call := v.(*Call)
			call.Err = err
			call.finish()
		}
		return true
	})
}

// call runs one request synchronously over whichever protocol version
// the connection negotiated.
func (c *Client) call(req *Request) (*Response, error) {
	if c.version < ProtoV2 {
		return c.roundTrip(req)
	}
	call := c.Go(req, nil)
	if c.Timeout <= 0 {
		<-call.Done
		return call.Resp, call.Err
	}
	// Grace on top of the wire deadline: the server's own deadline
	// answer normally arrives first; the timer only fires when the
	// response went missing entirely.
	timer := time.NewTimer(c.Timeout + 250*time.Millisecond)
	defer timer.Stop()
	select {
	case <-call.Done:
		return call.Resp, call.Err
	case <-timer.C:
		// Abandon: the reader drops the late response by its ID.
		c.pending.Delete(call.id)
		return nil, &DeadlineError{}
	}
}

// statusErr maps non-OK statuses onto errors; StatusNotFound is left
// to the caller (it is a result, not a failure).
func statusErr(rs *Response) error {
	switch rs.Status {
	case StatusOK, StatusNotFound:
		return nil
	case StatusRetry:
		return &RetryError{After: time.Duration(rs.RetryAfterMS) * time.Millisecond}
	case StatusDeadline:
		return &DeadlineError{}
	default:
		return fmt.Errorf("serve: server error: %s", rs.Err)
	}
}

// Get looks up one key.
func (c *Client) Get(k core.Key) (core.TID, bool, error) {
	rs, err := c.call(&Request{Op: OpGet, Keys: []core.Key{k}})
	if err != nil {
		return 0, false, err
	}
	if err := statusErr(rs); err != nil {
		return 0, false, err
	}
	if rs.Status == StatusNotFound {
		return 0, false, nil
	}
	if len(rs.Lookups) != 1 {
		return 0, false, fmt.Errorf("serve: GET returned %d lookups", len(rs.Lookups))
	}
	return rs.Lookups[0].TID, true, nil
}

// MGet looks up a batch of keys; the result aligns with keys.
func (c *Client) MGet(keys []core.Key) ([]Lookup, error) {
	rs, err := c.call(&Request{Op: OpMGet, Keys: keys})
	if err != nil {
		return nil, err
	}
	if err := statusErr(rs); err != nil {
		return nil, err
	}
	if len(rs.Lookups) != len(keys) {
		return nil, fmt.Errorf("serve: MGET returned %d lookups for %d keys", len(rs.Lookups), len(keys))
	}
	return rs.Lookups, nil
}

// Scan returns up to limit pairs with keys in [start, end].
func (c *Client) Scan(start, end core.Key, limit int) ([]core.Pair, error) {
	rs, err := c.call(&Request{Op: OpScan, Start: start, End: end, Limit: uint32(limit)})
	if err != nil {
		return nil, err
	}
	if err := statusErr(rs); err != nil {
		return nil, err
	}
	return rs.Pairs, nil
}

// Put upserts the pairs (one atomic unit per shard).
func (c *Client) Put(pairs ...core.Pair) error {
	rs, err := c.call(&Request{Op: OpPut, Pairs: pairs})
	if err != nil {
		return err
	}
	return statusErr(rs)
}

// Del deletes the keys.
func (c *Client) Del(keys ...core.Key) error {
	rs, err := c.call(&Request{Op: OpDel, Keys: keys})
	if err != nil {
		return err
	}
	return statusErr(rs)
}

// Do performs one raw request/response exchange — the escape hatch
// for op classes without a dedicated helper (the replication loops
// drive REPLICATE through it). The response is returned as decoded,
// whatever its status; only transport failures error.
func (c *Client) Do(req *Request) (*Response, error) {
	return c.call(req)
}

// Stats fetches the server's JSON stats blob.
func (c *Client) Stats() ([]byte, error) {
	rs, err := c.call(&Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	if err := statusErr(rs); err != nil {
		return nil, err
	}
	return rs.Stats, nil
}

// ScanOpen registers a streaming-scan cursor over [start, end] on the
// server and returns its ID (PROTOCOL.md §10). The cursor pins a
// snapshot of every shard until ScanClose, exhaustion, connection
// close, or the server's idle timeout.
func (c *Client) ScanOpen(start, end core.Key) (uint64, error) {
	rs, err := c.call(&Request{Op: OpScanOpen, Start: start, End: end})
	if err != nil {
		return 0, err
	}
	if err := statusErr(rs); err != nil {
		return 0, err
	}
	if rs.Cursor == 0 {
		return 0, fmt.Errorf("serve: SCANOPEN answered no cursor")
	}
	return rs.Cursor, nil
}

// ScanNext pulls the next chunk of up to maxRows rows from a cursor.
// done reports that the scan is exhausted, in which case the server
// has already closed the cursor. A cursor the server no longer knows
// (closed, exhausted, or reaped idle) errors with ErrCursorGone.
func (c *Client) ScanNext(cursor uint64, maxRows int) (rows []core.Pair, done bool, err error) {
	rs, err := c.call(&Request{Op: OpScanNext, Cursor: cursor, Max: uint32(maxRows)})
	if err != nil {
		return nil, false, err
	}
	if rs.Status == StatusNotFound {
		return nil, false, ErrCursorGone
	}
	if err := statusErr(rs); err != nil {
		return nil, false, err
	}
	if !rs.ScanChunk {
		return nil, false, fmt.Errorf("serve: SCANNEXT answered a non-chunk payload")
	}
	return rs.Pairs, rs.ScanDone, nil
}

// ScanClose releases a cursor. Closing a cursor the server no longer
// knows errors with ErrCursorGone — harmless after an exhausted scan,
// meaningful after an idle timeout.
func (c *Client) ScanClose(cursor uint64) error {
	rs, err := c.call(&Request{Op: OpScanClose, Cursor: cursor})
	if err != nil {
		return err
	}
	if rs.Status == StatusNotFound {
		return ErrCursorGone
	}
	return statusErr(rs)
}

// ErrCursorGone reports a streaming-scan op against a cursor the
// server no longer holds: never opened, already closed, exhausted, or
// reclaimed by the idle reaper.
var ErrCursorGone = errors.New("serve: scan cursor gone")

// StreamScan runs a whole streaming scan: it opens a cursor over
// [start, end], pulls chunks of chunkRows, calls yield for each, and
// closes the cursor (also on error or when yield returns false). It
// retries chunk-level StatusRetry rejections after the server's hint,
// so a stream survives transient scan-budget exhaustion.
func (c *Client) StreamScan(start, end core.Key, chunkRows int, yield func(rows []core.Pair) bool) error {
	cur, err := c.ScanOpen(start, end)
	if err != nil {
		return err
	}
	closed := false
	defer func() {
		if !closed {
			c.ScanClose(cur)
		}
	}()
	for {
		rows, done, err := c.ScanNext(cur, chunkRows)
		var retry *RetryError
		if errors.As(err, &retry) {
			time.Sleep(retry.After)
			continue
		}
		if err != nil {
			return err
		}
		if len(rows) > 0 && !yield(rows) {
			return c.closeOnce(cur, &closed)
		}
		if done {
			closed = true
			return nil
		}
	}
}

// closeOnce closes cur and marks it closed, tolerating a cursor the
// server already reclaimed.
func (c *Client) closeOnce(cur uint64, closed *bool) error {
	*closed = true
	if err := c.ScanClose(cur); err != nil && !errors.Is(err, ErrCursorGone) {
		return err
	}
	return nil
}

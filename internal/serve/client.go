package serve

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"pbtree/internal/core"
)

// RetryError reports a StatusRetry rejection; the caller should back
// off for After and retry.
type RetryError struct {
	After time.Duration
}

func (e *RetryError) Error() string {
	return fmt.Sprintf("serve: server overloaded, retry after %v", e.After)
}

// DeadlineError reports that the request's deadline expired on the
// server before execution.
type DeadlineError struct{}

func (*DeadlineError) Error() string { return "serve: request deadline expired on server" }

// Client is a synchronous wire-protocol client over one TCP
// connection. Methods are safe for concurrent use but serialize on the
// connection; open one Client per concurrent request stream (as the
// load generator does).
type Client struct {
	// Timeout, when nonzero, bounds each round trip: it is sent as the
	// request deadline and applied to the socket I/O.
	Timeout time.Duration

	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	out  []byte
	in   []byte
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// roundTrip sends one request and decodes the response frame.
func (c *Client) roundTrip(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.Timeout > 0 {
		req.DeadlineMS = uint32(c.Timeout / time.Millisecond)
		if err := c.conn.SetDeadline(time.Now().Add(c.Timeout)); err != nil {
			return nil, err
		}
	}
	payload, err := AppendRequest(c.out[:0], req)
	if err != nil {
		return nil, err
	}
	c.out = payload
	if err := WriteFrame(c.bw, payload); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	frame, err := ReadFrame(c.br, c.in)
	if err != nil {
		return nil, err
	}
	c.in = frame
	return DecodeResponse(frame)
}

// statusErr maps non-OK statuses onto errors; StatusNotFound is left
// to the caller (it is a result, not a failure).
func statusErr(rs *Response) error {
	switch rs.Status {
	case StatusOK, StatusNotFound:
		return nil
	case StatusRetry:
		return &RetryError{After: time.Duration(rs.RetryAfterMS) * time.Millisecond}
	case StatusDeadline:
		return &DeadlineError{}
	default:
		return fmt.Errorf("serve: server error: %s", rs.Err)
	}
}

// Get looks up one key.
func (c *Client) Get(k core.Key) (core.TID, bool, error) {
	rs, err := c.roundTrip(&Request{Op: OpGet, Keys: []core.Key{k}})
	if err != nil {
		return 0, false, err
	}
	if err := statusErr(rs); err != nil {
		return 0, false, err
	}
	if rs.Status == StatusNotFound {
		return 0, false, nil
	}
	if len(rs.Lookups) != 1 {
		return 0, false, fmt.Errorf("serve: GET returned %d lookups", len(rs.Lookups))
	}
	return rs.Lookups[0].TID, true, nil
}

// MGet looks up a batch of keys; the result aligns with keys.
func (c *Client) MGet(keys []core.Key) ([]Lookup, error) {
	rs, err := c.roundTrip(&Request{Op: OpMGet, Keys: keys})
	if err != nil {
		return nil, err
	}
	if err := statusErr(rs); err != nil {
		return nil, err
	}
	if len(rs.Lookups) != len(keys) {
		return nil, fmt.Errorf("serve: MGET returned %d lookups for %d keys", len(rs.Lookups), len(keys))
	}
	return rs.Lookups, nil
}

// Scan returns up to limit pairs with keys in [start, end].
func (c *Client) Scan(start, end core.Key, limit int) ([]core.Pair, error) {
	rs, err := c.roundTrip(&Request{Op: OpScan, Start: start, End: end, Limit: uint32(limit)})
	if err != nil {
		return nil, err
	}
	if err := statusErr(rs); err != nil {
		return nil, err
	}
	return rs.Pairs, nil
}

// Put upserts the pairs (one atomic unit per shard).
func (c *Client) Put(pairs ...core.Pair) error {
	rs, err := c.roundTrip(&Request{Op: OpPut, Pairs: pairs})
	if err != nil {
		return err
	}
	return statusErr(rs)
}

// Del deletes the keys.
func (c *Client) Del(keys ...core.Key) error {
	rs, err := c.roundTrip(&Request{Op: OpDel, Keys: keys})
	if err != nil {
		return err
	}
	return statusErr(rs)
}

// Stats fetches the server's JSON stats blob.
func (c *Client) Stats() ([]byte, error) {
	rs, err := c.roundTrip(&Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	if err := statusErr(rs); err != nil {
		return nil, err
	}
	return rs.Stats, nil
}

package serve

import (
	"encoding/json"
	"testing"
	"time"
)

// TestLoadgenConfigRoundTrip pins the reproducibility contract of the
// loadgen JSON report: the embedded config — after defaulting, which is
// what a run actually uses — must survive a JSON round trip unchanged,
// so a run can be replayed exactly from its report alone. This is what
// broke when Duration/Timeout were json:"-" and the skew parameters
// were omitempty.
func TestLoadgenConfigRoundTrip(t *testing.T) {
	cfg := LoadgenConfig{
		Addr:     "127.0.0.1:7070",
		Conns:    3,
		Duration: 1500 * time.Millisecond,
		PutPct:   7,
		Skew:     "hotset",
		Seed:     42,
		Timeout:  250 * time.Millisecond,
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	rep := LoadgenReport{Config: cfg, Ops: 1}
	blob, err := json.Marshal(&rep)
	if err != nil {
		t.Fatal(err)
	}
	var back LoadgenReport
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Config != cfg {
		t.Fatalf("config did not round-trip through the report:\n got %+v\nwant %+v", back.Config, cfg)
	}
	// The fields a replay needs must be present by name, not defaulted
	// back in on decode.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(blob, &raw); err != nil {
		t.Fatal(err)
	}
	var rawCfg map[string]json.RawMessage
	if err := json.Unmarshal(raw["config"], &rawCfg); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		"addr", "conns", "duration_ns", "get_pct", "mget_pct", "scan_pct",
		"put_pct", "del_pct", "batch", "scan_limit", "keys", "skew",
		"zipf_s", "hot_frac", "hot_prob", "seed", "timeout_ns",
	} {
		if _, ok := rawCfg[field]; !ok {
			t.Errorf("report config is missing %q", field)
		}
	}
	// A defaulted config never marshals zero values for the knobs that
	// alter the workload, so absence of a field is always a bug.
	if string(rawCfg["seed"]) != "42" {
		t.Errorf("seed echoed as %s, want 42", rawCfg["seed"])
	}
	if string(rawCfg["duration_ns"]) != "1500000000" {
		t.Errorf("duration echoed as %s, want 1500000000", rawCfg["duration_ns"])
	}
}

package serve

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestLoadgenConfigRoundTrip pins the reproducibility contract of the
// loadgen JSON report: the embedded config — after defaulting, which is
// what a run actually uses — must survive a JSON round trip unchanged,
// so a run can be replayed exactly from its report alone. This is what
// broke when Duration/Timeout were json:"-" and the skew parameters
// were omitempty.
func TestLoadgenConfigRoundTrip(t *testing.T) {
	cfg := LoadgenConfig{
		Addr:     "127.0.0.1:7070",
		Conns:    3,
		Window:   8,
		Duration: 1500 * time.Millisecond,
		PutPct:   7,
		Skew:     "hotset",
		Seed:     42,
		Timeout:  250 * time.Millisecond,
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	rep := LoadgenReport{Config: cfg, Ops: 1}
	blob, err := json.Marshal(&rep)
	if err != nil {
		t.Fatal(err)
	}
	var back LoadgenReport
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Config, cfg) {
		t.Fatalf("config did not round-trip through the report:\n got %+v\nwant %+v", back.Config, cfg)
	}
	// The fields a replay needs must be present by name, not defaulted
	// back in on decode.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(blob, &raw); err != nil {
		t.Fatal(err)
	}
	var rawCfg map[string]json.RawMessage
	if err := json.Unmarshal(raw["config"], &rawCfg); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		"addr", "conns", "window", "duration_ns", "get_pct", "mget_pct",
		"scan_pct", "put_pct", "del_pct", "batch", "scan_limit", "keys",
		"skew", "zipf_s", "hot_frac", "hot_prob", "seed", "timeout_ns",
	} {
		if _, ok := rawCfg[field]; !ok {
			t.Errorf("report config is missing %q", field)
		}
	}
	// The window must be echoed even at its default of 1 — conns alone
	// does not determine concurrency any more.
	if string(rawCfg["window"]) != "8" {
		t.Errorf("window echoed as %s, want 8", rawCfg["window"])
	}
	// A defaulted config never marshals zero values for the knobs that
	// alter the workload, so absence of a field is always a bug.
	if string(rawCfg["seed"]) != "42" {
		t.Errorf("seed echoed as %s, want 42", rawCfg["seed"])
	}
	if string(rawCfg["duration_ns"]) != "1500000000" {
		t.Errorf("duration echoed as %s, want 1500000000", rawCfg["duration_ns"])
	}
}

// TestLoadgenReportRoundTrip pins the report fields that un-conflate
// connection count from concurrency: window, concurrency, and the
// per-class reject split must survive a JSON round trip by name.
func TestLoadgenReportRoundTrip(t *testing.T) {
	rep := LoadgenReport{
		Config:      LoadgenConfig{Conns: 4, Window: 16},
		Concurrency: 64,
		Ops:         10,
		Rejected:    5,
		RejectedByClass: map[string]uint64{
			"read": 1, "write": 1, "scan": 3,
		},
		ServerStages: map[string]map[string]StageDelta{
			"insert": {"wal_fsync": {Count: 7, MeanUS: 250, TotalMS: 1.75, Share: 0.6}},
		},
		ServerStageTotals: map[string]StageDelta{
			"insert": {Count: 7, MeanUS: 400, TotalMS: 2.8},
		},
	}
	blob, err := json.Marshal(&rep)
	if err != nil {
		t.Fatal(err)
	}
	var back LoadgenReport
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Concurrency != 64 || back.Config.Window != 16 {
		t.Fatalf("concurrency/window did not round-trip: %+v", back)
	}
	if back.RejectedByClass["scan"] != 3 || back.RejectedByClass["read"] != 1 {
		t.Fatalf("per-class rejects did not round-trip: %+v", back.RejectedByClass)
	}
	if d := back.ServerStages["insert"]["wal_fsync"]; d.Count != 7 || d.Share != 0.6 {
		t.Fatalf("stage attribution did not round-trip: %+v", d)
	}
	if back.ServerStageTotals["insert"].MeanUS != 400 {
		t.Fatalf("stage totals did not round-trip: %+v", back.ServerStageTotals)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(blob, &raw); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"concurrency", "rejected_by_class", "server_stages", "server_stage_totals"} {
		if _, ok := raw[field]; !ok {
			t.Errorf("report is missing %q", field)
		}
	}

	// The no-omitempty guarantee (PR 4) extends to the stage tables:
	// a report from an untraced server still names them, as empty
	// objects rather than null, so report schemas never vary by server
	// configuration.
	empty, err := json.Marshal(&LoadgenReport{
		ServerStages:      map[string]map[string]StageDelta{},
		ServerStageTotals: map[string]StageDelta{},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"server_stages": {}`, `"server_stage_totals": {}`} {
		if !strings.Contains(string(mustIndent(t, empty)), want) {
			t.Errorf("empty report missing %s", want)
		}
	}
}

// mustIndent pretty-prints JSON for substring assertions.
func mustIndent(t *testing.T, blob []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Indent(&buf, blob, "", "  "); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLoadgenScenarios pins the named-preset behavior: each scenario
// resolves to a valid config with its defining mix, the preset
// overrides explicit mix fields, the scenario name is echoed in the
// report config, and unknown names are a setup error.
func TestLoadgenScenarios(t *testing.T) {
	for _, name := range ScenarioNames() {
		cfg, err := LoadgenConfig{Scenario: name, GetPct: 33}.withDefaults()
		if err != nil {
			t.Fatalf("scenario %s: %v", name, err)
		}
		if cfg.Scenario != name {
			t.Errorf("scenario %s: name not echoed in resolved config", name)
		}
		if sum := cfg.GetPct + cfg.MGetPct + cfg.ScanPct + cfg.StreamPct + cfg.PutPct + cfg.DelPct; sum != 100 {
			t.Errorf("scenario %s: mix sums to %d", name, sum)
		}
		blob, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var back LoadgenConfig
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(back, cfg) {
			t.Errorf("scenario %s: config did not round-trip:\n got %+v\nwant %+v", name, back, cfg)
		}
	}
	if cfg, _ := (LoadgenConfig{Scenario: "write-burst", GetPct: 90}).withDefaults(); cfg.PutPct != 100 || cfg.GetPct != 0 {
		t.Errorf("write-burst did not override the explicit mix: %+v", cfg)
	}
	if cfg, _ := (LoadgenConfig{Scenario: "hot-key-storm"}).withDefaults(); cfg.Skew != "hotset" || cfg.HotFrac != 0.001 || cfg.HotProb != 0.99 {
		t.Errorf("hot-key-storm skew not applied: %+v", cfg)
	}
	if cfg, _ := (LoadgenConfig{Scenario: "olap-scan"}).withDefaults(); cfg.ScanLimit != 500 {
		t.Errorf("olap-scan scan limit not applied: %+v", cfg)
	}
	if _, err := (LoadgenConfig{Scenario: "no-such-load"}).withDefaults(); err == nil {
		t.Error("unknown scenario accepted")
	}
}

// TestLoadgenReplicaSetReadOnly pins the replica fan-out contract: a
// run spreading connections across replicas must use a read-only mix
// (a replica rejects writes), and a read-only one resolves fine.
func TestLoadgenReplicaSetReadOnly(t *testing.T) {
	reps := []string{"127.0.0.1:1", "127.0.0.1:2"}
	if _, err := (LoadgenConfig{Replicas: reps, GetPct: 90, PutPct: 10}).withDefaults(); err == nil {
		t.Error("replica-set run with writes accepted")
	}
	cfg, err := (LoadgenConfig{Replicas: reps, GetPct: 100}).withDefaults()
	if err != nil {
		t.Fatalf("read-only replica-set run rejected: %v", err)
	}
	if !reflect.DeepEqual(cfg.Replicas, reps) {
		t.Errorf("replicas not preserved: %v", cfg.Replicas)
	}
}

// TestOpReportPercentiles pins the new tail percentiles: they must
// survive a JSON round trip by name so BENCH_matrix.json keeps p90
// and p999 per op class.
func TestOpReportPercentiles(t *testing.T) {
	rep := LoadgenReport{PerOp: map[string]OpReport{
		"search": {Count: 9, P50US: 1, P90US: 2, P99US: 3, P999US: 4},
	}}
	blob, err := json.Marshal(&rep)
	if err != nil {
		t.Fatal(err)
	}
	var back LoadgenReport
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if got := back.PerOp["search"]; got != rep.PerOp["search"] {
		t.Fatalf("per-op report did not round-trip: %+v", got)
	}
	var raw map[string]json.RawMessage
	json.Unmarshal(blob, &raw)
	var perOp map[string]map[string]json.RawMessage
	if err := json.Unmarshal(raw["per_op"], &perOp); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"p50_us", "p90_us", "p99_us", "p999_us"} {
		if _, ok := perOp["search"][field]; !ok {
			t.Errorf("per-op report is missing %q", field)
		}
	}
}

// TestLoadgenWindowed runs a real windowed loadgen against a server
// and checks the report reflects the configured concurrency.
func TestLoadgenWindowed(t *testing.T) {
	_, addr := startServer(t, 10_000, ServerConfig{})
	rep, err := RunLoadgen(LoadgenConfig{
		Addr:     addr,
		Conns:    2,
		Window:   8,
		Duration: 200 * time.Millisecond,
		Keys:     10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops == 0 || rep.Errors != 0 {
		t.Fatalf("windowed run: %d ops, %d errors", rep.Ops, rep.Errors)
	}
	if rep.Concurrency != 16 || rep.Config.Window != 8 {
		t.Fatalf("report concurrency = %d (window %d), want 16 (8)", rep.Concurrency, rep.Config.Window)
	}
	if rep.RejectedByClass == nil {
		t.Fatal("rejected_by_class missing from report")
	}
	// A negative window is a setup error.
	if _, err := RunLoadgen(LoadgenConfig{Addr: addr, Window: -1, Duration: time.Millisecond}); err == nil {
		t.Fatal("negative window accepted")
	}
}

package serve

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"pbtree/internal/core"
)

// roundTripReq encodes and re-decodes a request.
func roundTripReq(t *testing.T, r *Request) *Request {
	t.Helper()
	payload, err := AppendRequest(nil, r)
	if err != nil {
		t.Fatalf("encode %+v: %v", r, err)
	}
	got, err := DecodeRequest(payload)
	if err != nil {
		t.Fatalf("decode %+v: %v", r, err)
	}
	return got
}

func TestWireRequestRoundTrip(t *testing.T) {
	reqs := []*Request{
		{Op: OpGet, Keys: []core.Key{42}, DeadlineMS: 250},
		{Op: OpMGet, Keys: []core.Key{1, 2, 3, 0xffffffff}},
		{Op: OpDel, Keys: []core.Key{8}},
		{Op: OpScan, Start: 10, End: 900, Limit: 55},
		{Op: OpPut, Pairs: []core.Pair{{Key: 1, TID: 2}, {Key: 3, TID: 4}}},
		{Op: OpStats},
	}
	for _, r := range reqs {
		if got := roundTripReq(t, r); !reflect.DeepEqual(got, r) {
			t.Fatalf("round trip changed %+v to %+v", r, got)
		}
	}
	// Encoder bounds.
	if _, err := AppendRequest(nil, &Request{Op: OpGet}); err == nil {
		t.Fatal("GET with no key encoded")
	}
	if _, err := AppendRequest(nil, &Request{Op: OpScan, Limit: MaxScanRows + 1}); err == nil {
		t.Fatal("oversized SCAN limit encoded")
	}
	if _, err := AppendRequest(nil, &Request{Op: Op(200)}); err == nil {
		t.Fatal("unknown op encoded")
	}
	// Decoder bounds: truncation and trailing garbage are errors.
	full, _ := AppendRequest(nil, &Request{Op: OpMGet, Keys: []core.Key{1, 2, 3}})
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeRequest(full[:cut]); err == nil {
			t.Fatalf("truncated request at %d decoded", cut)
		}
	}
	if _, err := DecodeRequest(append(full, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestWireResponseRoundTrip(t *testing.T) {
	resps := []*Response{
		{Status: StatusOK, Lookups: []Lookup{{TID: 9, Found: true}, {Found: false}}},
		{Status: StatusOK, Pairs: []core.Pair{{Key: 5, TID: 6}}},
		{Status: StatusOK, Stats: []byte(`{"x":1}`)},
		{Status: StatusOK},
		{Status: StatusNotFound},
		{Status: StatusRetry, RetryAfterMS: 7},
		{Status: StatusErr, Err: "boom"},
		{Status: StatusDeadline},
	}
	for _, rs := range resps {
		payload, err := AppendResponse(nil, rs)
		if err != nil {
			t.Fatalf("encode %+v: %v", rs, err)
		}
		got, err := DecodeResponse(payload)
		if err != nil {
			t.Fatalf("decode %+v: %v", rs, err)
		}
		if !reflect.DeepEqual(got, rs) {
			t.Fatalf("round trip changed %+v to %+v", rs, got)
		}
		for cut := 0; cut < len(payload); cut++ {
			if _, err := DecodeResponse(payload[:cut]); err == nil && cut > 0 {
				t.Fatalf("truncated response %+v at %d decoded", rs, cut)
			}
		}
	}
	if _, err := DecodeResponse(nil); err == nil {
		t.Fatal("empty response decoded")
	}
}

func TestWireFrames(t *testing.T) {
	var b bytes.Buffer
	if err := WriteFrame(&b, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&b, nil); err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(b.Bytes())
	f1, err := ReadFrame(r, nil)
	if err != nil || string(f1) != "hello" {
		t.Fatalf("frame 1 = %q, %v", f1, err)
	}
	f2, err := ReadFrame(r, f1)
	if err != nil || len(f2) != 0 {
		t.Fatalf("frame 2 = %q, %v", f2, err)
	}
	if _, err := ReadFrame(r, nil); err != io.EOF {
		t.Fatalf("EOF frame: %v", err)
	}
	// A length prefix beyond MaxFrame is rejected before allocating.
	huge := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := ReadFrame(bytes.NewReader(huge), nil); err == nil {
		t.Fatal("oversized frame length accepted")
	}
}

// FuzzWireRequest: any byte string either fails to decode or decodes
// to a request that re-encodes and re-decodes identically. Decoding
// must never panic or allocate past the wire bounds.
func FuzzWireRequest(f *testing.F) {
	seed := func(r *Request) {
		payload, err := AppendRequest(nil, r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
	}
	seed(&Request{Op: OpGet, Keys: []core.Key{1}})
	seed(&Request{Op: OpMGet, Keys: []core.Key{1, 2, 3}})
	seed(&Request{Op: OpScan, Start: 1, End: 2, Limit: 3})
	seed(&Request{Op: OpPut, Pairs: []core.Pair{{Key: 1, TID: 2}}})
	seed(&Request{Op: OpDel, Keys: []core.Key{4}})
	seed(&Request{Op: OpStats})
	f.Add([]byte{})
	f.Add([]byte{2, 0, 0, 0, 0, 255, 255, 255, 255}) // MGET, lying count
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(data)
		if err != nil {
			return
		}
		re, err := AppendRequest(nil, req)
		if err != nil {
			t.Fatalf("decoded request %+v does not re-encode: %v", req, err)
		}
		again, err := DecodeRequest(re)
		if err != nil {
			t.Fatalf("re-encoded request does not decode: %v", err)
		}
		if !reflect.DeepEqual(req, again) {
			t.Fatalf("unstable round trip: %+v vs %+v", req, again)
		}
	})
}

// FuzzWireResponse: same contract for the response codec.
func FuzzWireResponse(f *testing.F) {
	seed := func(rs *Response) {
		payload, err := AppendResponse(nil, rs)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
	}
	seed(&Response{Status: StatusOK, Lookups: []Lookup{{TID: 1, Found: true}}})
	seed(&Response{Status: StatusOK, Pairs: []core.Pair{{Key: 1, TID: 2}}})
	seed(&Response{Status: StatusOK, Stats: []byte("{}")})
	seed(&Response{Status: StatusOK})
	seed(&Response{Status: StatusRetry, RetryAfterMS: 5})
	seed(&Response{Status: StatusErr, Err: "x"})
	f.Add([]byte{0, 'S', 255, 255, 255, 255}) // stats tag, lying length
	f.Fuzz(func(t *testing.T, data []byte) {
		rs, err := DecodeResponse(data)
		if err != nil {
			return
		}
		re, err := AppendResponse(nil, rs)
		if err != nil {
			t.Fatalf("decoded response %+v does not re-encode: %v", rs, err)
		}
		again, err := DecodeResponse(re)
		if err != nil {
			t.Fatalf("re-encoded response does not decode: %v", err)
		}
		if !reflect.DeepEqual(rs, again) {
			t.Fatalf("unstable round trip: %+v vs %+v", rs, again)
		}
	})
}

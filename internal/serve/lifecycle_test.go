package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pbtree/internal/core"
	"pbtree/internal/obs"
)

// startTracedServer boots a server with lifecycle tracing on and
// returns it plus its shared metrics registry.
func startTracedServer(t *testing.T, n int, lc LifecycleConfig) (*Server, string, *obs.Metrics) {
	t.Helper()
	lc.Enabled = true
	metrics := obs.NewMetrics()
	srv, addr := startServer(t, n, ServerConfig{Metrics: metrics, Lifecycle: lc})
	return srv, addr, metrics
}

// driveMix runs every op class against addr so all stage families have
// samples.
func driveMix(t *testing.T, addr string) {
	t.Helper()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Timeout = 5 * time.Second
	for i := 0; i < 20; i++ {
		if _, _, err := cl.Get(8); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.MGet([]core.Key{8, 16, 24}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Scan(8, 800, 50); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := cl.Put(core.Pair{Key: core.Key(7 + 8*i), TID: core.TID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Del(7); err != nil {
		t.Fatal(err)
	}
}

func TestLifecycleStageHistograms(t *testing.T) {
	_, addr, metrics := startTracedServer(t, 5000, LifecycleConfig{})
	driveMix(t, addr)

	// Reads attribute exec (or batch_wait) time; writes must carry the
	// writer-stamped durability-path stages even without a WAL
	// (queue_wait and apply always, wal_* only when durable).
	if s := metrics.StageTotalSnapshot(core.OpSearch); s.Count < 20 {
		t.Fatalf("search totals = %d, want >= 20", s.Count)
	}
	exec := metrics.StageSnapshot(core.OpSearch, obs.StageExec).Count +
		metrics.StageSnapshot(core.OpSearch, obs.StageBatchWait).Count
	if exec == 0 {
		t.Fatal("no exec/batch_wait samples for search")
	}
	for _, st := range []obs.Stage{obs.StageQueueWait, obs.StageApply} {
		if s := metrics.StageSnapshot(core.OpInsert, st); s.Count == 0 {
			t.Fatalf("no %v samples for insert", st)
		}
	}
	if s := metrics.StageSnapshot(core.OpInsert, obs.StageWALFsync); s.Count != 0 {
		t.Fatalf("wal_fsync observed on a non-durable store: %+v", s)
	}
	// Every request marks decode and write.
	for _, op := range []core.OpKind{core.OpSearch, core.OpInsert, core.OpDelete, core.OpScan} {
		tot := metrics.StageTotalSnapshot(op)
		if tot.Count == 0 {
			t.Fatalf("no totals for %v", op)
		}
		if s := metrics.StageSnapshot(op, obs.StageWrite); s.Count != tot.Count {
			t.Fatalf("%v: write count %d != total count %d", op, s.Count, tot.Count)
		}
	}
}

func TestLifecyclePipelinedAndStats(t *testing.T) {
	srv, addr, metrics := startTracedServer(t, 5000, LifecycleConfig{})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Timeout = 5 * time.Second
	if cl.Version() != ProtoV2 {
		t.Fatalf("client on protocol %d, want 2", cl.Version())
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				cl.Get(8)
			}
		}()
	}
	wg.Wait()

	// The pipelined path stamps resp_queue and write on the writer
	// goroutine.
	if s := metrics.StageSnapshot(core.OpSearch, obs.StageRespQueue); s.Count < 100 {
		t.Fatalf("resp_queue = %d, want >= 100", s.Count)
	}

	// STATS carries the attribution tables, both over the wire and via
	// the exported accessor.
	stats := srv.Stats()
	if stats.Stages == nil || stats.StageTotals == nil {
		t.Fatal("stage maps must never be nil")
	}
	if _, ok := stats.Stages["search"]["write"]; !ok {
		t.Fatalf("search/write missing from STATS stages: %+v", stats.Stages)
	}
	if stats.StageTotals["search"].Count < 100 {
		t.Fatalf("search total count = %d", stats.StageTotals["search"].Count)
	}
	blob, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var wire ServerStats
	if err := json.Unmarshal(blob, &wire); err != nil {
		t.Fatal(err)
	}
	if wire.Stages["search"]["decode"].Count == 0 {
		t.Fatalf("wire STATS missing stage attribution: %s", blob)
	}
}

func TestLifecycleSlowLog(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewTextHandler(&lockedWriter{w: &buf, mu: &mu}, nil))
	// A 1ns threshold makes every request slow; the limiter must then
	// cap the lines at roughly SlowPerSec.
	_, addr, _ := startTracedServer(t, 5000, LifecycleConfig{
		SlowThreshold: time.Nanosecond,
		SlowPerSec:    3,
		Log:           logger,
	})
	driveMix(t, addr)

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "slow request") {
		t.Fatalf("no slow-request lines in %q", out)
	}
	if !strings.Contains(out, "total_us=") || !strings.Contains(out, "op=") {
		t.Fatalf("slow line missing fields: %q", out)
	}
	// All of driveMix's requests beat the 1ns threshold inside one
	// rate-limiter window, so at most SlowPerSec lines may appear.
	if n := strings.Count(out, "slow request"); n > 3 {
		t.Fatalf("%d slow lines, want <= 3 (rate limit)", n)
	}
}

// lockedWriter serializes concurrent slog writes from handler
// goroutines.
type lockedWriter struct {
	w  *bytes.Buffer
	mu *sync.Mutex
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

func TestLifecycleChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	srv, addr, _ := startTracedServer(t, 5000, LifecycleConfig{
		Trace: &lockedWriter{w: &buf, mu: &mu},
	})
	driveMix(t, addr)
	if err := srv.Shutdown(2 * time.Second); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	raw := buf.Bytes()
	mu.Unlock()
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v\n%s", err, raw)
	}
	if len(events) == 0 {
		t.Fatal("empty trace")
	}
	names := map[string]bool{}
	for _, ev := range events {
		if ev["ph"] != "X" {
			t.Fatalf("unexpected phase %v", ev["ph"])
		}
		names[ev["name"].(string)] = true
	}
	for _, want := range []string{"search", "decode", "write"} {
		if !names[want] {
			t.Fatalf("trace missing %q slices (have %v)", want, names)
		}
	}
}

// TestAdminEndpoints is the regression test for the orphaned
// PublishExpvar surface: with the admin mux mounted, /metrics,
// /healthz, /statsz and /debug/vars must all answer, and /metrics
// must include the per-stage and per-shard families.
func TestAdminEndpoints(t *testing.T) {
	srv, addr, metrics := startTracedServer(t, 5000, LifecycleConfig{})
	driveMix(t, addr)
	metrics.PublishExpvar("pbtree_admin_test")

	ts := httptest.NewServer(NewAdminMux(srv, srv.st))
	defer ts.Close()
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"pbtree_op_latency_seconds",
		`pbtree_stage_latency_seconds_count{op="search",stage="exec"}`,
		"pbtree_request_latency_seconds",
		`pbtree_shard_queue_depth{shard="0"}`,
		`pbtree_shard_ready{shard="0"} 1`,
		"pbtree_shard_snapshot_age_seconds",
		"pbtree_shard_wal_backlog_records",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	code, body = get("/statsz")
	if code != http.StatusOK {
		t.Fatalf("/statsz = %d", code)
	}
	var ss ServerStats
	if err := json.Unmarshal([]byte(body), &ss); err != nil {
		t.Fatalf("/statsz not ServerStats JSON: %v", err)
	}
	if len(ss.Stages) == 0 {
		t.Fatal("/statsz has no stage attribution")
	}
	if code, body := get("/debug/vars"); code != http.StatusOK || !strings.Contains(body, "pbtree_admin_test") {
		t.Fatalf("/debug/vars = %d, expvar registry missing", code)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

// TestLifecycleDisabledIsInert pins the off switch: with the zero
// LifecycleConfig nothing is observed and STATS returns empty (but
// non-nil) maps.
func TestLifecycleDisabledIsInert(t *testing.T) {
	metrics := obs.NewMetrics()
	srv, addr := startServer(t, 1000, ServerConfig{Metrics: metrics})
	driveMix(t, addr)
	for _, op := range []core.OpKind{core.OpSearch, core.OpInsert} {
		if s := metrics.StageTotalSnapshot(op); s.Count != 0 {
			t.Fatalf("stages observed while disabled: %v %+v", op, s)
		}
	}
	stats := srv.Stats()
	if stats.Stages == nil || stats.StageTotals == nil {
		t.Fatal("stage maps must be non-nil even when disabled")
	}
	if len(stats.Stages) != 0 {
		t.Fatalf("unexpected stage data: %+v", stats.Stages)
	}
}

package serve

import (
	"errors"
	"strings"
	"testing"

	"pbtree/internal/core"
	"pbtree/internal/obs"
)

// openDurable opens a 1-shard durable store on fs, failing the test on
// any open or recovery error.
func openDurable(t *testing.T, fs *MemFS, seed []core.Pair, every int) *Store {
	t.Helper()
	st, err := Open(StoreConfig{
		Shards:  1,
		Durable: &DurableConfig{FS: fs, CheckpointEvery: every},
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WaitReady(); err != nil {
		t.Fatal(err)
	}
	return st
}

func pairsEqual(a, b []core.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDurableReopenRoundTrip(t *testing.T) {
	fs := NewMemFS()
	metrics := obs.NewMetrics()
	st, err := Open(StoreConfig{
		Shards:  2,
		Metrics: metrics,
		Durable: &DurableConfig{FS: fs},
	}, []core.Pair{{Key: 8, TID: 1}, {Key: 16, TID: 2}, {Key: 24, TID: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WaitReady(); err != nil {
		t.Fatal(err)
	}
	for _, rs := range st.Recovery() {
		if !rs.Bootstrapped {
			t.Fatalf("fresh dir: shard %d not bootstrapped: %+v", rs.Shard, rs)
		}
	}
	if err := st.Put(32, 4); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(16, 20); err != nil { // overwrite
		t.Fatal(err)
	}
	if err := st.Delete(8); err != nil {
		t.Fatal(err)
	}
	want := st.Dump()
	preVer := st.Stats()
	st.Close()

	// Reopen with a different seed: the directory must win.
	st2, err := Open(StoreConfig{
		Shards:  2,
		Metrics: metrics,
		Durable: &DurableConfig{FS: fs},
	}, []core.Pair{{Key: 999992, TID: 7}})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if err := st2.WaitReady(); err != nil {
		t.Fatal(err)
	}
	replayed := uint64(0)
	for _, rs := range st2.Recovery() {
		if rs.Bootstrapped {
			t.Fatalf("existing dir: shard %d bootstrapped (seed overwrote recovery): %+v", rs.Shard, rs)
		}
		replayed += rs.Replayed
	}
	if replayed != 3 {
		t.Fatalf("replayed %d records, want 3 (put, overwrite, delete)", replayed)
	}
	if got := st2.Dump(); !pairsEqual(got, want) {
		t.Fatalf("reopen contents = %v, want %v", got, want)
	}
	if tid, ok := st2.Get(16); !ok || tid != 20 {
		t.Fatalf("Get(16) = %d, %v after reopen", tid, ok)
	}
	if _, ok := st2.Get(8); ok {
		t.Fatal("deleted key 8 resurrected by reopen")
	}
	// Published versions never move backwards across a restart.
	for i, s := range st2.Stats().Shards {
		if s.Version < preVer.Shards[i].Version {
			t.Fatalf("shard %d version %d < pre-close %d", i, s.Version, preVer.Shards[i].Version)
		}
	}
	d := metrics.Durability()
	if d.Recoveries != 4 || d.ReplayedRecords != 3 || d.WALAppends == 0 || d.Fsyncs == 0 || d.Checkpoints == 0 {
		t.Fatalf("durability counters off: %+v", d)
	}
}

func TestDurableCheckpointRotationAndPrune(t *testing.T) {
	fs := NewMemFS()
	st := openDurable(t, fs, nil, 4)
	for i := 1; i <= 20; i++ {
		if err := st.Put(core.Key(8*i), core.TID(i)); err != nil {
			t.Fatal(err)
		}
	}
	want := st.Dump()
	st.Close()

	// 20 synchronous puts with CheckpointEvery=4 yield 5 rotations; the
	// pruner must leave exactly the newest checkpoint and the current
	// (empty) segment.
	names, err := fs.ReadDir("shard-0000")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != ckptName(20) || names[1] != walSegName(21) {
		t.Fatalf("after rotation, shard dir = %v, want [%s %s]", names, ckptName(20), walSegName(21))
	}

	st2 := openDurable(t, fs, nil, 4)
	defer st2.Close()
	rs := st2.Recovery()[0]
	if rs.CheckpointLSN != 20 || rs.Replayed != 0 || rs.Pairs != 20 {
		t.Fatalf("recovery from checkpoint: %+v", rs)
	}
	if got := st2.Dump(); !pairsEqual(got, want) {
		t.Fatalf("contents after rotation reopen = %v, want %v", got, want)
	}
}

func TestDurableWALFaultFailStop(t *testing.T) {
	fs := NewMemFS()
	st := openDurable(t, fs, nil, 1<<20)
	for i := 1; i <= 5; i++ {
		if err := st.Put(core.Key(8*i), core.TID(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Arm a short write: the next WAL append tears mid-record.
	fs.SetWriteBudget(7, true)
	if err := st.Put(48, 6); err == nil {
		t.Fatal("put with torn WAL write succeeded")
	}
	// Fail-stop: the shard accepts no further writes...
	if err := st.Put(56, 7); err == nil {
		t.Fatal("put after WAL failure succeeded")
	}
	// ...but keeps serving reads from the last good snapshot.
	if tid, ok := st.Get(40); !ok || tid != 5 {
		t.Fatalf("Get(40) after fail-stop = %d, %v", tid, ok)
	}
	if e := st.Stats().Shards[0].DurableErr; !strings.Contains(e, "injected") {
		t.Fatalf("Stats.DurableErr = %q, want injected failure", e)
	}
	st.Close()

	// Recovery truncates the torn record and keeps every acked write.
	fs.SetWriteBudget(-1, false)
	st2 := openDurable(t, fs, nil, 1<<20)
	defer st2.Close()
	rs := st2.Recovery()[0]
	if rs.TornBytes == 0 {
		t.Fatalf("recovery saw no torn tail: %+v", rs)
	}
	for i := 1; i <= 5; i++ {
		if tid, ok := st2.Get(core.Key(8 * i)); !ok || tid != core.TID(i) {
			t.Fatalf("acked key %d lost after torn-tail recovery", 8*i)
		}
	}
	if _, ok := st2.Get(48); ok {
		t.Fatal("unacked torn write surfaced after recovery")
	}
}

func TestDurableManifestShardMismatch(t *testing.T) {
	fs := NewMemFS()
	st := openDurable(t, fs, nil, 0)
	st.Close()
	_, err := Open(StoreConfig{Shards: 3, Durable: &DurableConfig{FS: fs}}, nil)
	if err == nil || !strings.Contains(err.Error(), "shards") {
		t.Fatalf("reopen with different shard count: err = %v", err)
	}
}

func TestDurableOSFS(t *testing.T) {
	dir := t.TempDir()
	cfg := StoreConfig{Shards: 2, Durable: &DurableConfig{Dir: dir}}
	st, err := Open(cfg, []core.Pair{{Key: 8, TID: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WaitReady(); err != nil {
		t.Fatal(err)
	}
	for i := 2; i <= 40; i++ {
		if err := st.Put(core.Key(8*i), core.TID(i)); err != nil {
			t.Fatal(err)
		}
	}
	want := st.Dump()
	st.Close()

	st2, err := Open(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if err := st2.WaitReady(); err != nil {
		t.Fatal(err)
	}
	if got := st2.Dump(); !pairsEqual(got, want) {
		t.Fatalf("OS round trip: got %d pairs, want %d", len(got), len(want))
	}
}

func TestMemFSCrashSemantics(t *testing.T) {
	fs := NewMemFS()
	f, err := fs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("sync"))
	f.Sync()
	f.Write([]byte("ed"))
	f.Close()
	if err := fs.Rename("a", "b"); err != nil {
		t.Fatal(err)
	}

	end := fs.CrashPoints()
	// Write-through disk at the end: everything survives, under the
	// final name.
	all := fs.CrashAt(end, false)
	if b, err := all.ReadFile("b"); err != nil || string(b) != "synced" {
		t.Fatalf("full replay: %q, %v", b, err)
	}
	// Volatile cache lost: only the synced prefix survives.
	lost := fs.CrashAt(end, true)
	if b, err := lost.ReadFile("b"); err != nil || string(b) != "sync" {
		t.Fatalf("lose-unsynced replay: %q, %v", b, err)
	}
	// Before the rename's crash point the file still has its old name.
	pre := fs.CrashAt(end-1, false)
	if _, err := pre.ReadFile("b"); err == nil {
		t.Fatal("rename visible before its crash point")
	}
	if b, err := pre.ReadFile("a"); err != nil || string(b) != "synced" {
		t.Fatalf("pre-rename replay: %q, %v", b, err)
	}
	// Mid-write crash keeps a byte prefix (point 3 = the create op
	// plus two bytes of the first write).
	mid := fs.CrashAt(3, false)
	if b, err := mid.ReadFile("a"); err != nil || string(b) != "sy" {
		t.Fatalf("mid-write replay: %q, %v", b, err)
	}
}

func TestMemFSWriteBudget(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("x")
	fs.SetWriteBudget(3, true)
	n, err := f.Write([]byte("hello"))
	if n != 3 || !errors.Is(err, ErrInjected) {
		t.Fatalf("short write: n=%d err=%v", n, err)
	}
	if _, err := f.Write([]byte("more")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write after failure: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync after failure: %v", err)
	}
	if _, err := fs.Create("y"); !errors.Is(err, ErrInjected) {
		t.Fatalf("create after failure: %v", err)
	}
	if b, _ := fs.ReadFile("x"); string(b) != "hel" {
		t.Fatalf("torn sector contents %q", b)
	}
}

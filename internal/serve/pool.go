package serve

// The pool data plane (DESIGN.md §15). Instead of spawning a
// goroutine per in-flight request — conns x Window goroutines, most
// of them parked on admission under load — every pipelined connection
// submits its decoded requests to one server-wide bounded worker
// pool. Execution concurrency is then a constant the operator sizes
// (ServerConfig.PoolSize), per-connection fairness still comes from
// the Window slots, and the pool queue is the explicit backpressure
// point: when every worker is busy and the queue is full, read loops
// block in submit and stop decoding ahead.

import (
	"sync"
	"time"

	"pbtree/internal/obs"
)

// poolTask is one decoded request on its way through the worker pool,
// carrying everything a worker needs to execute it and deliver the
// completion to the owning connection's writer.
type poolTask struct {
	s       *Server
	id      uint32       // v2 request ID
	req     *Request     // decoded request
	arrived time.Time    // frame arrival, for deadline checks
	sp      *obs.Span    // lifecycle span (nil when tracing is off)
	cs      *connCursors // owning connection's cursor set
	out     chan<- completed
	slot    chan struct{} // owning connection's read-ahead slot to release
}

// workerPool is the shared bounded executor of the pool data plane.
type workerPool struct {
	tasks   chan poolTask
	wg      sync.WaitGroup
	metrics *obs.Metrics
}

// newWorkerPool starts size workers over a queue of 2 x size tasks —
// deep enough to keep workers fed across completions, shallow enough
// that backpressure reaches the read loops quickly.
func newWorkerPool(size int, metrics *obs.Metrics) *workerPool {
	p := &workerPool{
		tasks:   make(chan poolTask, 2*size),
		metrics: metrics,
	}
	p.wg.Add(size)
	for i := 0; i < size; i++ {
		go p.worker()
	}
	return p
}

// submit queues one task, blocking while the queue is full — that
// block is the backpressure that stops a connection's read loop from
// decoding further ahead.
func (p *workerPool) submit(t poolTask) {
	p.metrics.PoolEnqueue()
	p.tasks <- t
}

// worker executes tasks until the pool closes. The completion send
// can always make progress: the connection's writer drains its
// channel until closed even after a write error, and the read loop
// reclaims every slot before closing it.
func (p *workerPool) worker() {
	defer p.wg.Done()
	for t := range p.tasks {
		p.metrics.PoolStart()
		t.out <- completed{t.id, t.s.handle(t.req, t.arrived, t.sp, t.cs), t.sp}
		<-t.slot
		p.metrics.PoolDone()
	}
}

// close stops the workers after all queued tasks finish. The server
// calls it only once every connection has drained, so no submit can
// race the close.
func (p *workerPool) close() {
	close(p.tasks)
	p.wg.Wait()
}

package serve

import (
	"time"

	"pbtree/internal/core"
)

// Batcher turns independent concurrent point lookups into per-shard
// group searches. Individual Get calls rendezvous with a per-shard
// gatherer goroutine; the gatherer collects up to MaxGroup requests
// (waiting at most Linger for stragglers after the first arrives) and
// executes them as one core.Tree.SearchBatch against a single
// snapshot. Under concurrency this amortizes snapshot acquisition and
// — on the simulated model (see the `mget` experiment) — overlaps the
// node fetches of all grouped searches, the serving-layer payoff of
// the paper's pipelined prefetch. Under low concurrency the Linger
// bound keeps added latency small.
type Batcher struct {
	st   *Store
	cfg  BatcherConfig
	reqs []chan batchGet // one rendezvous channel per shard
	stop chan struct{}
}

// BatcherConfig tunes the gatherers.
type BatcherConfig struct {
	// MaxGroup bounds how many lookups execute as one group search.
	// Zero selects 16, past the knee of the group-search win.
	MaxGroup int

	// Linger is how long a gatherer waits for more requests after the
	// first of a group arrives. Zero selects 50µs. Longer linger makes
	// bigger groups and higher per-request latency.
	Linger time.Duration
}

// batchGet is one lookup waiting to join a group.
type batchGet struct {
	key   core.Key
	reply chan Lookup
}

// NewBatcher starts one gatherer per store shard.
func NewBatcher(st *Store, cfg BatcherConfig) *Batcher {
	if cfg.MaxGroup <= 0 {
		cfg.MaxGroup = 16
	}
	if cfg.Linger <= 0 {
		cfg.Linger = 50 * time.Microsecond
	}
	b := &Batcher{
		st:   st,
		cfg:  cfg,
		reqs: make([]chan batchGet, st.Shards()),
		stop: make(chan struct{}),
	}
	for i := range b.reqs {
		// Unbuffered: a send succeeds only while the gatherer is live,
		// so no request can strand in a queue across Close.
		b.reqs[i] = make(chan batchGet)
		go b.gather(st.shards[i], b.reqs[i])
	}
	return b
}

// Get looks up one key, joining whatever group is forming for the
// key's shard. After Close it degrades to a direct store lookup.
func (b *Batcher) Get(k core.Key) Lookup {
	reply := make(chan Lookup, 1)
	select {
	case b.reqs[b.st.ShardOf(k)] <- batchGet{key: k, reply: reply}:
		return <-reply
	case <-b.stop:
		tid, ok := b.st.Get(k)
		return Lookup{TID: tid, Found: ok}
	}
}

// Close stops the gatherers. In-flight Gets complete; later Gets fall
// back to direct lookups.
func (b *Batcher) Close() { close(b.stop) }

// gather is the per-shard collect-and-execute loop.
func (b *Batcher) gather(sh *shard, reqs chan batchGet) {
	keys := make([]core.Key, 0, b.cfg.MaxGroup)
	replies := make([]chan Lookup, 0, b.cfg.MaxGroup)
	tids := make([]core.TID, b.cfg.MaxGroup)
	found := make([]bool, b.cfg.MaxGroup)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		// Wait for the first request of a group.
		var first batchGet
		select {
		case first = <-reqs:
		case <-b.stop:
			return
		}
		keys = append(keys[:0], first.key)
		replies = append(replies[:0], first.reply)

		// Collect stragglers until the group fills or the linger ends.
		timer.Reset(b.cfg.Linger)
	collect:
		for len(keys) < b.cfg.MaxGroup {
			select {
			case r := <-reqs:
				keys = append(keys, r.key)
				replies = append(replies, r.reply)
			case <-timer.C:
				break collect
			case <-b.stop:
				break collect
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}

		// One snapshot, one group search, all replies.
		sh.waitReady()
		s := sh.be.Snapshot()
		if len(keys) == 1 {
			tid, ok := s.Get(keys[0])
			tids[0], found[0] = tid, ok
		} else {
			s.GetBatch(keys, tids[:len(keys)], found[:len(keys)])
		}
		s.Release()
		for i, ch := range replies {
			ch <- Lookup{TID: tids[i], Found: found[i]}
		}
	}
}

package serve

// Durability: per-shard WAL + checkpoints over the core snapshot
// format (DESIGN.md §9).
//
// Directory layout under the data dir:
//
//	MANIFEST                    store-level metadata (format, shards)
//	shard-0042/
//	    ckpt-<lsn16x>.pbt       core.WriteTo snapshot of LSNs ≤ lsn
//	    wal-<lsn16x>.log        records starting at that LSN
//	    *.tmp                   in-flight checkpoint, ignored on open
//
// Invariants:
//
//   - Shard LSNs are contiguous from 1; every acknowledged mutation
//     owns exactly one LSN.
//   - A checkpoint named for LSN L contains exactly the effects of
//     records 1..L. It is written to a .tmp file, synced, then
//     renamed — so a readable ckpt-*.pbt is always complete.
//   - WAL segments older than the newest durable checkpoint are
//     deleted only after the rename; recovery therefore always finds
//     checkpoint ∪ WAL covering every durable LSN.
//   - Recovery loads the newest loadable checkpoint, replays WAL
//     records L+1.. in LSN order, stops at the first torn/corrupt
//     record or LSN gap, and truncates that tail.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"path"
	"sort"
	"strings"
	"time"

	"pbtree/internal/core"
	"pbtree/internal/memsys"
)

// DurableConfig enables WAL + checkpoint persistence for a Store.
type DurableConfig struct {
	// Dir is the data directory. With the default OS filesystem it is
	// the on-disk root; with a custom FS it may be empty (paths are
	// already FS-relative).
	Dir string

	// FS overrides the filesystem (fault injection, tests). Nil
	// selects the OS filesystem rooted at Dir.
	FS FS

	// Fsync selects the WAL sync policy. The zero value is
	// FsyncAlways: acknowledged writes survive any crash.
	Fsync FsyncPolicy

	// FsyncInterval is the sync period for FsyncEvery. Zero selects
	// 10ms.
	FsyncInterval time.Duration

	// CheckpointEvery is how many WAL records a shard accumulates
	// before it writes a checkpoint and rotates its segment. Zero
	// selects 4096.
	CheckpointEvery int
}

// withDefaults resolves and validates the configuration.
func (c DurableConfig) withDefaults() (DurableConfig, error) {
	if c.FS == nil {
		if c.Dir == "" {
			return c, errors.New("serve: durable store needs a data directory (or an explicit FS)")
		}
		c.FS = OSFS{Root: c.Dir}
	}
	if c.FsyncInterval == 0 {
		c.FsyncInterval = 10 * time.Millisecond
	}
	if c.FsyncInterval < 0 {
		return c, fmt.Errorf("serve: negative fsync interval %v", c.FsyncInterval)
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 4096
	}
	if c.CheckpointEvery < 1 {
		return c, fmt.Errorf("serve: checkpoint-every %d must be positive", c.CheckpointEvery)
	}
	if c.Fsync > FsyncNever {
		return c, fmt.Errorf("serve: unknown fsync policy %d", c.Fsync)
	}
	return c, nil
}

// RecoveryStats describes one shard's recovery-on-open.
type RecoveryStats struct {
	Shard         int           `json:"shard"`            // shard index
	CheckpointLSN uint64        `json:"checkpoint_lsn"`   // 0 = none found
	LastLSN       uint64        `json:"last_lsn"`         // after replay
	Replayed      uint64        `json:"replayed_records"` // WAL records applied
	TornBytes     int64         `json:"torn_bytes"`       // truncated WAL tail
	Pairs         int           `json:"pairs"`            // keys live after recovery
	Duration      time.Duration `json:"duration_ns"`      // wall time of the recovery
	Bootstrapped  bool          `json:"bootstrapped"`     // fresh dir seeded from Open's pairs
}

// manifest is the store-level metadata file, written once at
// initialization. Shard count is part of the on-disk identity: the
// hash partitioning depends on it.
type manifest struct {
	Format int `json:"format"`
	Shards int `json:"shards"`
}

const (
	manifestName   = "MANIFEST"
	manifestFormat = 1
)

func shardDirName(i int) string    { return fmt.Sprintf("shard-%04d", i) }
func ckptName(lsn uint64) string   { return fmt.Sprintf("ckpt-%016x.pbt", lsn) }
func walSegName(lsn uint64) string { return fmt.Sprintf("wal-%016x.log", lsn) }
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	var v uint64
	if _, err := fmt.Sscanf(mid, "%016x", &v); err != nil || len(mid) != 16 {
		return 0, false
	}
	return v, true
}

// loadOrInitManifest validates an existing manifest or writes a fresh
// one via the tmp+rename protocol.
func loadOrInitManifest(fsys FS, shards int) error {
	if f, err := fsys.Open(manifestName); err == nil {
		blob, rerr := io.ReadAll(io.LimitReader(f, 1<<16))
		f.Close()
		if rerr != nil {
			return fmt.Errorf("serve: reading manifest: %w", rerr)
		}
		var m manifest
		if err := json.Unmarshal(blob, &m); err != nil {
			return fmt.Errorf("serve: corrupt manifest: %w", err)
		}
		if m.Format != manifestFormat {
			return fmt.Errorf("serve: manifest format %d, this binary speaks %d", m.Format, manifestFormat)
		}
		if m.Shards != shards {
			return fmt.Errorf("serve: store was created with %d shards, reopened with %d (shard count is part of the on-disk layout)", m.Shards, shards)
		}
		return nil
	}
	blob, err := json.Marshal(manifest{Format: manifestFormat, Shards: shards})
	if err != nil {
		return err
	}
	f, err := fsys.Create(manifestName + ".tmp")
	if err != nil {
		return err
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename(manifestName+".tmp", manifestName)
}

// shardFiles is the classified directory listing of one shard.
type shardFiles struct {
	ckpts []uint64 // checkpoint LSNs, descending
	wals  []uint64 // segment start LSNs, ascending
}

// listShard classifies a shard directory, removing leftover .tmp files
// from an interrupted checkpoint.
func listShard(fsys FS, dir string) (shardFiles, error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return shardFiles{}, err
	}
	var sf shardFiles
	for _, n := range names {
		if strings.HasSuffix(n, ".tmp") {
			_ = fsys.Remove(path.Join(dir, n))
			continue
		}
		if lsn, ok := parseSeq(n, "ckpt-", ".pbt"); ok {
			sf.ckpts = append(sf.ckpts, lsn)
		} else if lsn, ok := parseSeq(n, "wal-", ".log"); ok {
			sf.wals = append(sf.wals, lsn)
		}
	}
	sort.Slice(sf.ckpts, func(i, j int) bool { return sf.ckpts[i] > sf.ckpts[j] })
	sort.Slice(sf.wals, func(i, j int) bool { return sf.wals[i] < sf.wals[j] })
	return sf, nil
}

// recoverShard rebuilds one shard's contents from its directory:
// newest loadable checkpoint, then the WAL tail. It returns the
// recovered pairs (sorted, the Bulkload contract), whether the
// directory held any prior state (if not, the caller bootstraps from
// its seed pairs), and stats. The shard directory is created if
// missing.
func recoverShard(fsys FS, shard int, fill float64) (pairs []core.Pair, hadState bool, stats RecoveryStats, err error) {
	start := time.Now()
	stats = RecoveryStats{Shard: shard}
	dir := shardDirName(shard)
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, false, stats, err
	}
	sf, err := listShard(fsys, dir)
	if err != nil {
		return nil, false, stats, err
	}
	hadState = len(sf.ckpts) > 0 || len(sf.wals) > 0

	// Newest checkpoint that actually loads wins; older ones are the
	// fallback if its bytes were damaged at rest.
	var base *core.Tree
	for _, lsn := range sf.ckpts {
		f, err := fsys.Open(path.Join(dir, ckptName(lsn)))
		if err != nil {
			continue
		}
		t, lerr := core.Load(f, memsys.DefaultNative(), fill)
		f.Close()
		if lerr == nil {
			base = t
			stats.CheckpointLSN = lsn
			break
		}
	}
	stats.LastLSN = stats.CheckpointLSN

	// Replay the WAL tail in LSN order onto a mutable tree.
	var tree *core.Tree
	if base != nil {
		tree = base
	}
	apply := func(rec walRecord) error {
		if tree == nil {
			// Scratch container for replay without a checkpoint; only
			// its contents survive (the caller re-bulkloads with the
			// store's own tree configuration).
			t, err := core.New(core.Config{Width: 8, Prefetch: true, Mem: memsys.DefaultNative()})
			if err != nil {
				return err
			}
			if err := t.Bulkload(nil, fill); err != nil {
				return err
			}
			tree = t
		}
		for _, p := range rec.puts {
			tree.Insert(p.Key, p.TID)
		}
		for _, k := range rec.dels {
			tree.Delete(k)
		}
		return nil
	}
	for _, seg := range sf.wals {
		segName := path.Join(dir, walSegName(seg))
		f, err := fsys.Open(segName)
		if err != nil {
			continue
		}
		blob, rerr := io.ReadAll(f)
		f.Close()
		if rerr != nil {
			return nil, hadState, stats, fmt.Errorf("serve: reading %s: %w", segName, rerr)
		}
		off := 0
		stop := false
		for off < len(blob) {
			rec, n, derr := decodeWALRecord(blob[off:])
			if derr != nil {
				// Torn tail: truncate it so the next open starts clean.
				stats.TornBytes += int64(len(blob) - off)
				_ = fsys.Truncate(segName, int64(off))
				stop = true
				break
			}
			if rec.lsn <= stats.LastLSN {
				off += n // already covered by the checkpoint
				continue
			}
			if rec.lsn != stats.LastLSN+1 {
				// LSN gap: a stale segment surviving an interrupted
				// rotation. Nothing after it is replayable.
				stats.TornBytes += int64(len(blob) - off)
				_ = fsys.Truncate(segName, int64(off))
				stop = true
				break
			}
			if err := apply(rec); err != nil {
				return nil, hadState, stats, err
			}
			stats.LastLSN = rec.lsn
			stats.Replayed++
			off += n
		}
		if stop {
			break
		}
	}

	if tree != nil {
		pairs = tree.AppendPairs(make([]core.Pair, 0, tree.Len()))
	}
	stats.Pairs = len(pairs)
	stats.Duration = time.Since(start)
	return pairs, hadState, stats, nil
}

// writeCheckpoint serializes a tree as the checkpoint for lsn using
// the tmp+rename protocol: a readable ckpt-*.pbt is always complete.
func writeCheckpoint(fsys FS, dir string, tree *core.Tree, lsn uint64) error {
	final := path.Join(dir, ckptName(lsn))
	tmp := final + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := tree.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename(tmp, final)
}

// pruneShard removes checkpoints older than keepCkpt and WAL segments
// whose records are all covered by it. Best-effort: leftover files are
// harmless (recovery skips them) and reclaimed next time.
func pruneShard(fsys FS, dir string, keepCkpt uint64, keepSeg uint64) {
	sf, err := listShard(fsys, dir)
	if err != nil {
		return
	}
	for _, lsn := range sf.ckpts {
		if lsn < keepCkpt {
			_ = fsys.Remove(path.Join(dir, ckptName(lsn)))
		}
	}
	for _, seg := range sf.wals {
		if seg <= keepCkpt && seg != keepSeg {
			_ = fsys.Remove(path.Join(dir, walSegName(seg)))
		}
	}
}

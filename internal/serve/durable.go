package serve

// Durability: per-shard WAL (owned here) + engine checkpoints (owned
// by the storage engine — full-tree snapshots for pbtree, sorted runs
// for lsm). See DESIGN.md §9 and §11.
//
// Directory layout under the data dir:
//
//	MANIFEST                    store-level metadata (format, shards, backend)
//	shard-0042/
//	    wal-<lsn16x>.log        records starting at that LSN
//	    ckpt-<lsn16x>.pbt       pbtree: core.WriteTo snapshot of LSNs ≤ lsn
//	    run-<lsn16x>-<gen>.lrun lsm: sorted run (see package lsm)
//	    *.tmp                   in-flight artifact, removed on open
//
// Invariants:
//
//   - Shard LSNs are contiguous from 1; every acknowledged mutation
//     owns exactly one LSN.
//   - An engine artifact set covering LSN L contains exactly the
//     effects of records 1..L. Artifacts are written to a .tmp file,
//     synced, then renamed — so a readable artifact is always
//     complete.
//   - WAL segments older than the newest durable engine checkpoint
//     are deleted only after the engine reports it durable; recovery
//     therefore always finds artifacts ∪ WAL covering every durable
//     LSN.
//   - Recovery lets the engine reload its artifacts, then replays WAL
//     records L+1.. in LSN order, stops at the first torn/corrupt
//     record or LSN gap, and truncates that tail.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"path"
	"sort"
	"strings"
	"time"

	"pbtree/internal/backend"
)

// DurableConfig enables WAL + engine checkpoint persistence for a
// Store.
type DurableConfig struct {
	// Dir is the data directory. With the default OS filesystem it is
	// the on-disk root; with a custom FS it may be empty (paths are
	// already FS-relative).
	Dir string

	// FS overrides the filesystem (fault injection, tests). Nil
	// selects the OS filesystem rooted at Dir.
	FS FS

	// Fsync selects the WAL sync policy. The zero value is
	// FsyncAlways: acknowledged writes survive any crash.
	Fsync FsyncPolicy

	// FsyncInterval is the sync period for FsyncEvery. Zero selects
	// 10ms.
	FsyncInterval time.Duration

	// CheckpointEvery is how many WAL records a shard accumulates
	// before it asks its engine to checkpoint and rotates its segment.
	// Zero selects 4096.
	CheckpointEvery int

	// WALRetain keeps that many superseded WAL segments per shard
	// after a checkpoint instead of deleting them all. Retained
	// segments let a lagging replication follower catch up from the
	// log instead of falling back to checkpoint shipping; recovery
	// skips their already-covered records. Zero retains none (the
	// pre-replication behavior).
	WALRetain int
}

// withDefaults resolves and validates the configuration.
func (c DurableConfig) withDefaults() (DurableConfig, error) {
	if c.FS == nil {
		if c.Dir == "" {
			return c, errors.New("serve: durable store needs a data directory (or an explicit FS)")
		}
		c.FS = OSFS{Root: c.Dir}
	}
	if c.FsyncInterval == 0 {
		c.FsyncInterval = 10 * time.Millisecond
	}
	if c.FsyncInterval < 0 {
		return c, fmt.Errorf("serve: negative fsync interval %v", c.FsyncInterval)
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 4096
	}
	if c.CheckpointEvery < 1 {
		return c, fmt.Errorf("serve: checkpoint-every %d must be positive", c.CheckpointEvery)
	}
	if c.WALRetain < 0 {
		return c, fmt.Errorf("serve: wal-retain %d must not be negative", c.WALRetain)
	}
	if c.Fsync > FsyncNever {
		return c, fmt.Errorf("serve: unknown fsync policy %d", c.Fsync)
	}
	return c, nil
}

// RecoveryStats describes one shard's recovery-on-open.
type RecoveryStats struct {
	Shard         int           `json:"shard"`            // shard index
	CheckpointLSN uint64        `json:"checkpoint_lsn"`   // engine artifact coverage; 0 = none found
	LastLSN       uint64        `json:"last_lsn"`         // after replay
	Replayed      uint64        `json:"replayed_records"` // WAL records applied
	TornBytes     int64         `json:"torn_bytes"`       // truncated WAL tail
	Pairs         int           `json:"pairs"`            // keys live after recovery
	Duration      time.Duration `json:"duration_ns"`      // wall time of the recovery
	Bootstrapped  bool          `json:"bootstrapped"`     // fresh dir seeded from Open's pairs
}

// manifest is the store-level metadata file. Shard count and backend
// are part of the on-disk identity: the hash partitioning depends on
// the former, the artifact format on the latter. Epoch is the
// replication fencing token: it only ever grows (promotion,
// adoption), and it is persisted before the new epoch takes effect so
// a deposed primary can never restart believing it is current.
type manifest struct {
	Format  int    `json:"format"`
	Shards  int    `json:"shards"`
	Backend string `json:"backend,omitempty"`
	Epoch   uint64 `json:"epoch,omitempty"`
}

const (
	manifestName   = "MANIFEST"
	manifestFormat = 1
)

func shardDirName(i int) string    { return fmt.Sprintf("shard-%04d", i) }
func ckptName(lsn uint64) string   { return backend.CheckpointName(lsn) }
func walSegName(lsn uint64) string { return fmt.Sprintf("wal-%016x.log", lsn) }

// loadOrInitManifest validates an existing manifest (raising its epoch
// to at least epoch when needed) or writes a fresh one via the
// tmp+rename protocol. bk is the configured backend name; manifests
// from before the backend field default to pbtree, manifests from
// before the epoch field to epoch 1. It returns the effective epoch.
func loadOrInitManifest(fsys FS, shards int, bk string, epoch uint64) (uint64, error) {
	if epoch == 0 {
		epoch = 1
	}
	if f, err := fsys.Open(manifestName); err == nil {
		blob, rerr := io.ReadAll(io.LimitReader(f, 1<<16))
		f.Close()
		if rerr != nil {
			return 0, fmt.Errorf("serve: reading manifest: %w", rerr)
		}
		var m manifest
		if err := json.Unmarshal(blob, &m); err != nil {
			return 0, fmt.Errorf("serve: corrupt manifest: %w", err)
		}
		if m.Format != manifestFormat {
			return 0, fmt.Errorf("serve: manifest format %d, this binary speaks %d", m.Format, manifestFormat)
		}
		if m.Shards != shards {
			return 0, fmt.Errorf("serve: store was created with %d shards, reopened with %d (shard count is part of the on-disk layout)", m.Shards, shards)
		}
		mb := m.Backend
		if mb == "" {
			mb = BackendPBTree
		}
		if mb != bk {
			return 0, fmt.Errorf("serve: store was created with backend %q, reopened with %q (the artifact formats are incompatible)", mb, bk)
		}
		if m.Epoch == 0 {
			m.Epoch = 1
		}
		if epoch > m.Epoch {
			m.Epoch = epoch
			if err := writeManifest(fsys, m); err != nil {
				return 0, err
			}
		}
		return m.Epoch, nil
	}
	m := manifest{Format: manifestFormat, Shards: shards, Backend: bk, Epoch: epoch}
	if err := writeManifest(fsys, m); err != nil {
		return 0, err
	}
	return m.Epoch, nil
}

// writeManifest persists m via the tmp+fsync+rename protocol, so a
// crash mid-write leaves either the old manifest or the new one,
// never a torn file.
func writeManifest(fsys FS, m manifest) error {
	blob, err := json.Marshal(m)
	if err != nil {
		return err
	}
	f, err := fsys.Create(manifestName + ".tmp")
	if err != nil {
		return err
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename(manifestName+".tmp", manifestName)
}

// listWALSegs returns a shard directory's WAL segment start LSNs,
// ascending. Non-WAL names (engine artifacts) are left to the engine.
func listWALSegs(fsys FS, dir string) ([]uint64, error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []uint64
	for _, n := range names {
		if strings.HasSuffix(n, ".tmp") {
			_ = fsys.Remove(path.Join(dir, n))
			continue
		}
		if lsn, ok := backend.ParseSeq(n, "wal-", ".log"); ok {
			segs = append(segs, lsn)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// replayWAL replays a shard's WAL tail through the engine's Replay
// hook, in LSN order, skipping records the engine's artifacts already
// cover (LSN ≤ stats.LastLSN on entry). It stops at the first
// torn/corrupt record or LSN gap — a stale segment surviving an
// interrupted rotation — and truncates that tail so the next open
// starts clean. stats is updated in place.
func replayWAL(fsys FS, dir string, segs []uint64, be backend.Backend, stats *RecoveryStats) error {
	for _, seg := range segs {
		segName := path.Join(dir, walSegName(seg))
		f, err := fsys.Open(segName)
		if err != nil {
			continue
		}
		blob, rerr := io.ReadAll(f)
		f.Close()
		if rerr != nil {
			return fmt.Errorf("serve: reading %s: %w", segName, rerr)
		}
		off := 0
		for off < len(blob) {
			rec, n, derr := decodeWALRecord(blob[off:])
			if derr != nil {
				// Torn tail: truncate it so the next open starts clean.
				stats.TornBytes += int64(len(blob) - off)
				_ = fsys.Truncate(segName, int64(off))
				return nil
			}
			if rec.lsn <= stats.LastLSN {
				off += n // already covered by the engine's artifacts
				continue
			}
			if rec.lsn != stats.LastLSN+1 {
				// LSN gap: nothing after it is replayable.
				stats.TornBytes += int64(len(blob) - off)
				_ = fsys.Truncate(segName, int64(off))
				return nil
			}
			if err := be.Replay(backend.Write{Puts: rec.puts, Dels: rec.dels}); err != nil {
				return err
			}
			stats.LastLSN = rec.lsn
			stats.Replayed++
			off += n
		}
	}
	return nil
}

// pruneWAL removes WAL segments whose records are all covered by the
// engine checkpoint at keepCkpt, sparing the active segment keepSeg
// and, for replication catch-up, the newest retain superseded
// segments. Best-effort: leftover files are harmless (recovery skips
// their already-covered records) and reclaimed next time.
func pruneWAL(fsys FS, dir string, keepCkpt uint64, keepSeg uint64, retain int) {
	segs, err := listWALSegs(fsys, dir)
	if err != nil {
		return
	}
	var stale []uint64
	for _, seg := range segs {
		if seg <= keepCkpt && seg != keepSeg {
			stale = append(stale, seg)
		}
	}
	if retain > len(stale) {
		retain = len(stale)
	}
	for _, seg := range stale[:len(stale)-retain] {
		_ = fsys.Remove(path.Join(dir, walSegName(seg)))
	}
}

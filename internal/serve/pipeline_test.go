package serve

import (
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"pbtree/internal/core"
	"pbtree/internal/obs"
)

func TestHelloNegotiation(t *testing.T) {
	_, addr := startServer(t, 100, ServerConfig{Window: 7})

	// Dial negotiates up to v2 and learns the server window.
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Version() != ProtoV2 || cl.Window() != 7 {
		t.Fatalf("negotiated (v%d, window %d), want (v2, 7)", cl.Version(), cl.Window())
	}
	if tid, ok, err := cl.Get(8); err != nil || !ok || tid != 1 {
		t.Fatalf("v2 Get(8) = (%d, %v, %v)", tid, ok, err)
	}

	// DialV1 skips the handshake and stays on v1.
	v1, err := DialV1(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Close()
	if v1.Version() != ProtoV1 {
		t.Fatalf("DialV1 negotiated v%d", v1.Version())
	}
	if tid, ok, err := v1.Get(8); err != nil || !ok || tid != 1 {
		t.Fatalf("v1 Get(8) = (%d, %v, %v)", tid, ok, err)
	}

	// A HELLO after traffic already flowed on a v1 connection is
	// answered with version 1: no mid-stream renegotiation.
	rs, err := v1.roundTrip(&Request{Op: OpHello, MaxVersion: ProtoV2})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Status != StatusOK || rs.Version != ProtoV1 {
		t.Fatalf("late HELLO answered %+v, want OK v1", rs)
	}
}

// TestV1ClientAgainstV2Server pins backward compatibility: a client
// that never heard of HELLO or request IDs runs the full op suite
// against a pipelining server.
func TestV1ClientAgainstV2Server(t *testing.T) {
	const n = 1000
	_, addr := startServer(t, n, ServerConfig{})
	cl, err := DialV1(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Timeout = 5 * time.Second

	if tid, ok, err := cl.Get(16); err != nil || !ok || tid != 2 {
		t.Fatalf("Get(16) = (%d, %v, %v)", tid, ok, err)
	}
	if ls, err := cl.MGet([]core.Key{8, 3}); err != nil || !ls[0].Found || ls[1].Found {
		t.Fatalf("MGet = %+v, %v", ls, err)
	}
	if err := cl.Put(core.Pair{Key: 8 * (n + 1), TID: 9}); err != nil {
		t.Fatal(err)
	}
	if tid, ok, _ := cl.Get(8 * (n + 1)); !ok || tid != 9 {
		t.Fatalf("read-your-write = (%d, %v)", tid, ok)
	}
	if err := cl.Del(8 * (n + 1)); err != nil {
		t.Fatal(err)
	}
	if pairs, err := cl.Scan(8, 80, 100); err != nil || len(pairs) != 10 {
		t.Fatalf("Scan = %d pairs, %v", len(pairs), err)
	}
	if _, err := cl.Stats(); err != nil {
		t.Fatal(err)
	}
}

// TestPipelinedOutOfOrder drives one connection with many concurrent
// callers (this is the -race coverage of out-of-order response
// writing): every GET must come back with its own key's TID, so any
// ID mismatch in the concurrent read-ahead / out-of-order write path
// is a correctness failure, not just a race report.
func TestPipelinedOutOfOrder(t *testing.T) {
	const n = 5000
	_, addr := startServer(t, n, ServerConfig{Window: 16})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Timeout = 10 * time.Second
	if cl.Version() != ProtoV2 {
		t.Fatalf("negotiated v%d", cl.Version())
	}

	var wg sync.WaitGroup
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func(seed uint32) {
			defer wg.Done()
			x := seed
			for i := 0; i < 400; i++ {
				x = x*1664525 + 1013904223
				switch x % 8 {
				case 0: // interleave slow scans with the cheap gets
					start := core.Key(8 * (1 + x%n))
					if _, err := cl.Scan(start, start+8000, 1000); err != nil {
						if !errors.As(err, new(*RetryError)) {
							t.Errorf("Scan: %v", err)
							return
						}
					}
				case 1:
					k := core.Key(8 * (1 + x%n))
					if err := cl.Put(core.Pair{Key: k, TID: core.TID(k / 8)}); err != nil {
						if !errors.As(err, new(*RetryError)) {
							t.Errorf("Put: %v", err)
							return
						}
					}
				default:
					k := core.Key(8 * (1 + x%n))
					tid, ok, err := cl.Get(k)
					if err != nil {
						if !errors.As(err, new(*RetryError)) {
							t.Errorf("Get(%d): %v", k, err)
							return
						}
						continue
					}
					if !ok || uint32(tid) != uint32(k)/8 {
						t.Errorf("Get(%d) = (%d, %v): response matched to wrong request", k, tid, ok)
						return
					}
				}
			}
		}(uint32(w + 1))
	}
	wg.Wait()
}

// TestClientGo exercises the async API directly: a burst of calls
// issued without waiting, then harvested; IDs must route every
// response to its own call.
func TestClientGo(t *testing.T) {
	const n = 2000
	_, addr := startServer(t, n, ServerConfig{})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	calls := make([]*Call, 64)
	for i := range calls {
		k := core.Key(8 * (i + 1))
		calls[i] = cl.Go(&Request{Op: OpGet, Keys: []core.Key{k}}, nil)
	}
	for i, call := range calls {
		<-call.Done
		if call.Err != nil {
			t.Fatalf("call %d: %v", i, call.Err)
		}
		want := core.TID(i + 1)
		if call.Resp.Status != StatusOK || len(call.Resp.Lookups) != 1 || call.Resp.Lookups[0].TID != want {
			t.Fatalf("call %d answered %+v, want TID %d", i, call.Resp, want)
		}
	}

	// After Close, new calls fail fast with ErrClientClosed.
	cl.Close()
	call := cl.Go(&Request{Op: OpGet, Keys: []core.Key{8}}, nil)
	<-call.Done
	if call.Err == nil {
		t.Fatal("Go on a closed client succeeded")
	}
}

func TestAdmissionBudgets(t *testing.T) {
	metrics := obs.NewMetrics()
	_, addr := startServer(t, 1000, ServerConfig{
		RetryAfter: 5 * time.Millisecond,
		Admission:  AdmissionConfig{ScanRowTokens: 50},
		Metrics:    metrics,
	})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// A SCAN wanting more rows than the whole scan budget can never
	// be admitted; the hint is the scan class's (4x base = 20ms).
	_, err = cl.Scan(8, MaxFrame, 100)
	var re *RetryError
	if !errors.As(err, &re) {
		t.Fatalf("oversized scan returned %v, want RetryError", err)
	}
	if re.After != 20*time.Millisecond {
		t.Fatalf("scan retry hint = %v, want 20ms (class-specific)", re.After)
	}

	// The read and write budgets are untouched: cheap ops still flow.
	if _, ok, err := cl.Get(8); err != nil || !ok {
		t.Fatalf("Get during scan saturation: (%v, %v)", ok, err)
	}
	if err := cl.Put(core.Pair{Key: 8, TID: 1}); err != nil {
		t.Fatal(err)
	}

	// A scan inside the budget is admitted and releases its tokens.
	for i := 0; i < 3; i++ {
		if _, err := cl.Scan(8, 400, 40); err != nil {
			t.Fatalf("in-budget scan %d: %v", i, err)
		}
	}

	// The rejection is attributed to the scan class in metrics and in
	// the server's own STATS budgets.
	if s := metrics.Admission(obs.AdmScan); s.Rejects == 0 || s.Capacity != 50 {
		t.Fatalf("scan admission snapshot %+v", s)
	}
	if s := metrics.Admission(obs.AdmRead); s.Rejects != 0 {
		t.Fatalf("read class charged a scan rejection: %+v", s)
	}
	var ss ServerStats
	if err := getStats(cl, &ss); err != nil {
		t.Fatal(err)
	}
	if ss.Budgets["scan"].Rejected == 0 || ss.Budgets["scan"].Capacity != 50 {
		t.Fatalf("STATS budgets = %+v", ss.Budgets)
	}
	if ss.Budgets["read"].Capacity == 0 || ss.Budgets["write"].Capacity == 0 {
		t.Fatalf("defaulted budgets missing: %+v", ss.Budgets)
	}
}

// getStats fetches and decodes the server stats blob.
func getStats(cl *Client, into *ServerStats) error {
	blob, err := cl.Stats()
	if err != nil {
		return err
	}
	return json.Unmarshal(blob, into)
}

// TestAdmissionTokensDrain pins that tokens release after execution:
// the same in-budget request admits repeatedly, and occupancy returns
// to zero when idle.
func TestAdmissionTokensDrain(t *testing.T) {
	metrics := obs.NewMetrics()
	_, addr := startServer(t, 1000, ServerConfig{Metrics: metrics})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 20; i++ {
		if _, _, err := cl.Get(8); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Scan(8, 800, 50); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range []obs.AdmissionClass{obs.AdmRead, obs.AdmScan} {
		if s := metrics.Admission(c); s.InUse != 0 {
			t.Fatalf("%v tokens leaked: %+v", c, s)
		}
	}
}

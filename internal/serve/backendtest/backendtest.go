// Package backendtest is the conformance suite every storage backend
// must pass. It drives a serve.Store configured for the backend under
// test through the three properties the serving layer relies on but
// cannot itself guarantee:
//
//   - Atomicity: a multi-key batch becomes visible in one step — no
//     reader ever observes part of a batch.
//   - Snapshot consistency: a scan taken while a writer overwrites
//     every key sees exactly one write generation, never a mix, even
//     while the backend flushes and compacts underneath it.
//   - Crash recovery: after a power cut at any byte-granular disk
//     prefix, reopening recovers exactly the contents after some
//     number j of acknowledged mutations, with j covering every
//     mutation acked before the cut (FsyncAlways) and the published
//     version equal to j+1.
//
// A new backend passes by adding one line to conformance_test.go; the
// suite is intentionally backend-agnostic and only speaks the public
// Store API.
package backendtest

import (
	"sort"
	"sync"
	"testing"

	"pbtree/internal/core"
	"pbtree/internal/lsm"
	"pbtree/internal/serve"
	"pbtree/internal/storage"
)

// tinyLSM forces run churn at test scale so the conformance workload
// exercises flush, compaction and multi-run reads, not just the
// memtable. Ignored by backends that don't read it.
var tinyLSM = lsm.Config{FlushKeys: 4, MaxRuns: 2}

// Run executes the full conformance suite against the named backend.
func Run(t *testing.T, backendName string) {
	t.Run("Atomicity", func(t *testing.T) { testAtomicity(t, backendName) })
	t.Run("SnapshotConsistency", func(t *testing.T) { testSnapshotConsistency(t, backendName) })
	t.Run("ExactCount", func(t *testing.T) { testExactCount(t, backendName) })
	t.Run("CrashRecovery", func(t *testing.T) { testCrashRecovery(t, backendName) })
}

func openStore(t *testing.T, backendName string, durable *serve.DurableConfig) *serve.Store {
	t.Helper()
	st, err := serve.Open(serve.StoreConfig{
		Shards:  1, // batch atomicity is a per-shard property
		Backend: backendName,
		LSM:     tinyLSM,
		Durable: durable,
	}, nil)
	if err != nil {
		t.Fatalf("open %s store: %v", backendName, err)
	}
	if err := st.WaitReady(); err != nil {
		t.Fatalf("%s store not ready: %v", backendName, err)
	}
	return st
}

// testAtomicity hammers one shard with multi-key batches that share a
// TID per generation while readers group-get the batch keys; any read
// returning two different TIDs caught a half-applied batch.
func testAtomicity(t *testing.T, backendName string) {
	st := openStore(t, backendName, nil)
	defer st.Close()
	keys := []core.Key{8, 16, 24, 32, 40}
	batch := make([]core.Pair, len(keys))
	put := func(gen core.TID) {
		for i, k := range keys {
			batch[i] = core.Pair{Key: k, TID: gen}
		}
		if err := st.PutBatch(batch); err != nil {
			t.Errorf("PutBatch gen %d: %v", gen, err)
		}
	}
	put(1)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]serve.Lookup, len(keys))
			for {
				select {
				case <-done:
					return
				default:
				}
				st.MGet(keys, out)
				gen := out[0].TID
				for i, l := range out {
					if !l.Found || l.TID != gen {
						t.Errorf("torn batch: key %d has TID %d, key %d has %d",
							keys[0], gen, keys[i], l.TID)
						return
					}
				}
			}
		}()
	}
	for gen := core.TID(2); gen <= 400; gen++ {
		put(gen)
	}
	close(done)
	wg.Wait()
}

// testSnapshotConsistency checks that full scans are stable while a
// writer overwrites every key: a scan must see all N keys carrying a
// single generation even as the backend flushes and compacts.
func testSnapshotConsistency(t *testing.T, backendName string) {
	st := openStore(t, backendName, nil)
	defer st.Close()
	const n = 64
	pairs := make([]core.Pair, n)
	put := func(gen core.TID) {
		for i := range pairs {
			pairs[i] = core.Pair{Key: core.Key((i + 1) * 8), TID: gen}
		}
		if err := st.PutBatch(pairs); err != nil {
			t.Errorf("PutBatch gen %d: %v", gen, err)
		}
	}
	put(1)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			got := st.Scan(0, core.Key(n+1)*8, n+1)
			if len(got) != n {
				t.Errorf("scan saw %d keys, want %d", len(got), n)
				return
			}
			gen := got[0].TID
			for _, p := range got {
				if p.TID != gen {
					t.Errorf("mixed-generation scan: saw TID %d and %d", gen, p.TID)
					return
				}
			}
		}
	}()
	for gen := core.TID(2); gen <= 200; gen++ {
		put(gen)
	}
	close(done)
	wg.Wait()
}

// testExactCount drives a workload heavy in overwrites, deletes of
// absent keys, double deletes and tombstone resurrections — the cases
// that historically drifted the LSM engine's count estimate — and
// demands the reported key count equal the model's at every step,
// across flushes, compactions, and an explicit Compact.
func testExactCount(t *testing.T, backendName string) {
	st := openStore(t, backendName, nil)
	defer st.Close()
	model := map[core.Key]core.TID{}
	check := func(when string) {
		t.Helper()
		if got := st.Len(); got != len(model) {
			t.Fatalf("%s: Len() = %d, want %d", when, got, len(model))
		}
		if got := st.Stats().Count; got != len(model) {
			t.Fatalf("%s: Stats().Count = %d, want %d", when, got, len(model))
		}
	}
	put := func(k core.Key, tid core.TID) {
		if err := st.Put(k, tid); err != nil {
			t.Fatal(err)
		}
		model[k] = tid
	}
	del := func(k core.Key) {
		if err := st.Delete(k); err != nil {
			t.Fatal(err)
		}
		delete(model, k)
	}
	for i := 0; i < 40; i++ {
		put(core.Key(8*(i+1)), core.TID(i+1))
	}
	check("after inserts")
	for i := 0; i < 40; i += 2 {
		put(core.Key(8*(i+1)), core.TID(1000+i)) // run-resident overwrites
	}
	check("after overwrites")
	for i := 0; i < 40; i += 4 {
		del(core.Key(8 * (i + 1)))
	}
	del(core.Key(9999)) // absent key
	check("after deletes")
	for i := 0; i < 40; i += 4 {
		del(core.Key(8 * (i + 1))) // double deletes
	}
	check("after double deletes")
	for i := 0; i < 40; i += 8 {
		put(core.Key(8*(i+1)), core.TID(2000+i)) // resurrect tombstones
	}
	check("after resurrections")
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	check("after compact")
}

// testCrashRecovery is the acked-prefix property at byte granularity:
// run a scripted put/overwrite/delete workload on a journaling MemFS,
// then for sampled disk prefixes reopen the store and demand the
// recovered contents equal the state after some acked prefix j, with
// j covering every ack that fired before the cut.
func testCrashRecovery(t *testing.T, backendName string) {
	fs := storage.NewMemFS()
	durable := func() *serve.DurableConfig {
		return &serve.DurableConfig{FS: fs, Fsync: serve.FsyncAlways, CheckpointEvery: 4}
	}
	st := openStore(t, backendName, durable())

	// Scripted history: hist[j] = sorted contents after j acked
	// mutations; ackPoints[j-1] = journal position when ack j fired.
	model := map[core.Key]core.TID{}
	var hist [][]core.Pair
	var ackPoints []int64
	snap := func() []core.Pair {
		ps := make([]core.Pair, 0, len(model))
		for k, tid := range model {
			ps = append(ps, core.Pair{Key: k, TID: tid})
		}
		sort.Slice(ps, func(i, j int) bool { return ps[i].Key < ps[j].Key })
		return ps
	}
	hist = append(hist, snap())
	step := func(err error, apply func()) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		apply()
		hist = append(hist, snap())
		ackPoints = append(ackPoints, fs.CrashPoints())
	}
	const hot = core.Key(8)
	for i := 0; i < 20; i++ {
		switch i % 4 {
		case 0: // multi-key batch
			b := []core.Pair{
				{Key: core.Key(100 + i*8), TID: core.TID(i + 1)},
				{Key: core.Key(104 + i*8), TID: core.TID(i + 2)},
			}
			step(st.PutBatch(b), func() {
				for _, p := range b {
					model[p.Key] = p.TID
				}
			})
		case 1: // hot-key overwrite
			step(st.Put(hot, core.TID(1000+i)), func() { model[hot] = core.TID(1000 + i) })
		case 2: // delete the smallest non-hot key
			var k core.Key
			for k2 := range model {
				if k2 != hot && (k == 0 || k2 < k) {
					k = k2
				}
			}
			step(st.Delete(k), func() { delete(model, k) })
		default: // fresh insert
			k := core.Key(10000 + i*8)
			step(st.Put(k, core.TID(i)), func() { model[k] = core.TID(i) })
		}
	}
	st.Close()
	end := fs.CrashPoints()

	// Sample: every ack boundary and its predecessor (where
	// durability is decided) plus a stride over the rest.
	pts := map[int64]bool{0: true, end: true}
	for _, a := range ackPoints {
		pts[a-1] = true
		pts[a] = true
	}
	for p := int64(0); p <= end; p += 1 + end/200 {
		pts[p] = true
	}
	for p := range pts {
		if p < 0 || p > end {
			continue
		}
		crashed := fs.CrashAt(p, true) // the volatile disk cache dies too
		st2, err := serve.Open(serve.StoreConfig{
			Shards:  1,
			Backend: backendName,
			LSM:     tinyLSM,
			Durable: &serve.DurableConfig{FS: crashed, Fsync: serve.FsyncAlways, CheckpointEvery: 4},
		}, nil)
		if err != nil {
			t.Fatalf("crash point %d: reopen: %v", p, err)
		}
		if err := st2.WaitReady(); err != nil {
			t.Fatalf("crash point %d: recovery: %v", p, err)
		}
		got := st2.Dump()
		j := -1
		for cand := len(hist) - 1; cand >= 0; cand-- {
			if pairListsEqual(hist[cand], got) {
				j = cand
				break
			}
		}
		if j < 0 {
			t.Fatalf("crash point %d: recovered contents %v match no acked prefix", p, got)
		}
		acked := 0
		for _, a := range ackPoints {
			if a <= p {
				acked++
			}
		}
		if j < acked {
			t.Fatalf("crash point %d: recovered state %d but %d mutations were acked before the cut", p, j, acked)
		}
		if v := st2.Stats().Shards[0].Version; v != uint64(j)+1 {
			t.Fatalf("crash point %d: version %d after recovering state %d (want %d)", p, v, j, j+1)
		}
		st2.Close()
	}
}

func pairListsEqual(a, b []core.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package backendtest

import (
	"testing"

	"pbtree/internal/serve"
)

// Every registered backend runs the same conformance suite; a new
// backend earns its place by adding a line here.

func TestConformancePBTree(t *testing.T) { Run(t, serve.BackendPBTree) }

func TestConformanceLSM(t *testing.T) { Run(t, serve.BackendLSM) }

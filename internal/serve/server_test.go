package serve

import (
	"encoding/json"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"pbtree/internal/core"
	"pbtree/internal/obs"
	"pbtree/internal/workload"
)

// startServer boots a store and server on a free port.
func startServer(t *testing.T, n int, cfg ServerConfig) (*Server, string) {
	t.Helper()
	st, err := Open(StoreConfig{Shards: 2}, workload.SortedPairs(n))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Addr = "127.0.0.1:0"
	srv := NewServer(st, cfg)
	if err := srv.Start(); err != nil {
		st.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Shutdown(2 * time.Second)
		st.Close()
	})
	return srv, srv.Addr().String()
}

func TestServerEndToEnd(t *testing.T) {
	const n = 5000
	metrics := obs.NewMetrics()
	_, addr := startServer(t, n, ServerConfig{Metrics: metrics})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Timeout = 5 * time.Second

	// GET hit and miss.
	if tid, ok, err := cl.Get(8); err != nil || !ok || tid != 1 {
		t.Fatalf("Get(8) = (%d, %v, %v)", tid, ok, err)
	}
	if _, ok, err := cl.Get(3); err != nil || ok {
		t.Fatalf("Get(3) = (%v, %v)", ok, err)
	}
	// MGET aligns with keys.
	keys := []core.Key{8, 3, 80, 800}
	ls, err := cl.MGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	want := []Lookup{{TID: 1, Found: true}, {Found: false}, {TID: 10, Found: true}, {TID: 100, Found: true}}
	for i := range want {
		if ls[i] != want[i] {
			t.Fatalf("MGet[%d] = %+v, want %+v", i, ls[i], want[i])
		}
	}
	// PUT then GET reads the write; DEL removes it.
	if err := cl.Put(core.Pair{Key: 8 * (n + 1), TID: 7}); err != nil {
		t.Fatal(err)
	}
	if tid, ok, _ := cl.Get(8 * (n + 1)); !ok || tid != 7 {
		t.Fatalf("read-your-write = (%d, %v)", tid, ok)
	}
	if err := cl.Del(8 * (n + 1)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := cl.Get(8 * (n + 1)); ok {
		t.Fatal("deleted key still served")
	}
	// SCAN returns the range in order; empty ranges are fine.
	pairs, err := cl.Scan(16, 80, 100)
	if err != nil || len(pairs) != 9 {
		t.Fatalf("Scan = %d pairs, %v", len(pairs), err)
	}
	if empty, err := cl.Scan(1, 3, 10); err != nil || len(empty) != 0 {
		t.Fatalf("empty Scan = %d pairs, %v", len(empty), err)
	}
	// STATS is JSON and counts the traffic above.
	blob, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var ss ServerStats
	if err := json.Unmarshal(blob, &ss); err != nil {
		t.Fatalf("stats not JSON: %v\n%s", err, blob)
	}
	if ss.Ops["get"] < 4 || ss.Ops["mget"] != 1 || ss.Ops["scan"] != 2 || ss.Store.Count != n {
		t.Fatalf("stats miscounted: %+v", ss)
	}
	// Metrics observed the wall-clock ops.
	if got := metrics.Snapshot(core.OpSearch).Count; got < 5 {
		t.Fatalf("metrics saw %d searches", got)
	}
	if got := metrics.Snapshot(core.OpScan).Count; got != 2 {
		t.Fatalf("metrics saw %d scans", got)
	}
}

func TestServerBatchedGets(t *testing.T) {
	const n = 5000
	srv, addr := startServer(t, n, ServerConfig{Batch: true, Batcher: BatcherConfig{MaxGroup: 8, Linger: 200 * time.Microsecond}})
	// Concurrent clients: their GETs should merge into group searches.
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(seed uint32) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			x := seed
			for i := 0; i < 300; i++ {
				x = x*1664525 + 1013904223
				k := core.Key(8 * (1 + x%n))
				tid, ok, err := cl.Get(k)
				if err != nil || !ok || uint32(tid) != uint32(k)/8 {
					t.Errorf("Get(%d) = (%d, %v, %v)", k, tid, ok, err)
					return
				}
			}
		}(uint32(c + 1))
	}
	wg.Wait()
	if srv.batcher == nil {
		t.Fatal("Batch: true did not enable the batcher")
	}
}

func TestServerRejectsAndBadFrames(t *testing.T) {
	_, addr := startServer(t, 100, ServerConfig{})
	// A malformed frame gets StatusErr, and the connection survives.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, []byte{0xEE}); err != nil {
		t.Fatal(err)
	}
	frame, err := ReadFrame(conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := DecodeResponse(frame)
	if err != nil || rs.Status != StatusErr {
		t.Fatalf("bad frame answer: %+v, %v", rs, err)
	}
	// The same connection still serves valid requests.
	payload, _ := AppendRequest(nil, &Request{Op: OpGet, Keys: []core.Key{8}})
	if err := WriteFrame(conn, payload); err != nil {
		t.Fatal(err)
	}
	if frame, err = ReadFrame(conn, frame); err != nil {
		t.Fatal(err)
	}
	if rs, _ = DecodeResponse(frame); rs.Status != StatusOK {
		t.Fatalf("valid request after bad frame: %+v", rs)
	}
	// An already-expired deadline is rejected with StatusDeadline.
	// DeadlineMS is relative to server arrival, so simulate by the
	// smallest nonzero deadline plus a request the server must decode
	// after the deadline passed — use 1ms and a stalled frame write.
	req := &Request{Op: OpGet, Keys: []core.Key{8}, DeadlineMS: 1}
	payload, _ = AppendRequest(nil, req)
	var hdr [4]byte
	hdr[0] = byte(len(payload))
	if _, err := conn.Write(hdr[:]); err != nil { // length first...
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // ...body later: arrival stamps at frame completion
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}
	if frame, err = ReadFrame(conn, frame); err != nil {
		t.Fatal(err)
	}
	rs, _ = DecodeResponse(frame)
	// Arrival is stamped after the full frame is read, so this may
	// still be OK on a fast path; accept either, but never an error.
	if rs.Status != StatusOK && rs.Status != StatusDeadline {
		t.Fatalf("slow-deadline answer: %+v", rs)
	}
}

func TestServerGracefulShutdown(t *testing.T) {
	srv, addr := startServer(t, 1000, ServerConfig{})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, _, err := cl.Get(8); err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(2 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Connections are closed and new dials fail.
	if _, _, err := cl.Get(8); err == nil {
		t.Fatal("request succeeded after shutdown")
	}
	if c, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
		c.Close()
		t.Fatal("dial succeeded after shutdown")
	}
	// Shutdown is idempotent.
	if err := srv.Shutdown(time.Second); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

func TestLoadgenAgainstServer(t *testing.T) {
	_, addr := startServer(t, 10_000, ServerConfig{Batch: true})
	rep, err := RunLoadgen(LoadgenConfig{
		Addr:     addr,
		Conns:    4,
		Duration: 300 * time.Millisecond,
		Keys:     10_000,
		Skew:     "zipf",
		Batch:    8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops == 0 {
		t.Fatalf("loadgen did zero ops: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("loadgen saw %d hard errors", rep.Errors)
	}
	if rep.PerOp["search"].Count == 0 {
		t.Fatalf("no search latencies recorded: %+v", rep.PerOp)
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("report not JSON-marshalable: %v", err)
	}
	// Without lifecycle tracing the attribution tables are empty but
	// present (never nil).
	if rep.ServerStages == nil || rep.ServerStageTotals == nil {
		t.Fatal("stage tables must be non-nil")
	}
	// Bad skew is a setup error.
	if _, err := RunLoadgen(LoadgenConfig{Addr: addr, Skew: "nope", Duration: time.Millisecond}); err == nil {
		t.Fatal("unknown skew accepted")
	}
}

// TestLoadgenStageAttribution runs loadgen against a lifecycle-traced
// server and checks the report's STATS-delta attribution: the named
// stages must cover at least 90% of each op's server-side time (the
// acceptance bar for the instrumentation being complete).
func TestLoadgenStageAttribution(t *testing.T) {
	metrics := obs.NewMetrics()
	_, addr := startServer(t, 10_000, ServerConfig{
		Batch:     true,
		Metrics:   metrics,
		Lifecycle: LifecycleConfig{Enabled: true},
	})
	rep, err := RunLoadgen(LoadgenConfig{
		Addr:     addr,
		Conns:    2,
		Window:   4,
		Duration: 300 * time.Millisecond,
		Keys:     10_000,
		PutPct:   20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops == 0 || rep.Errors != 0 {
		t.Fatalf("bad run: %+v", rep)
	}
	if len(rep.ServerStages) == 0 || len(rep.ServerStageTotals) == 0 {
		t.Fatalf("no stage attribution: %+v", rep.ServerStages)
	}
	for op, tot := range rep.ServerStageTotals {
		if tot.Count == 0 {
			continue
		}
		var named float64
		for st, d := range rep.ServerStages[op] {
			if st == "read" || st == "other" {
				continue
			}
			named += d.TotalMS
		}
		if named < 0.90*(tot.TotalMS-rep.ServerStages[op]["other"].TotalMS) {
			t.Errorf("%s: named stages cover %.1fms of %.1fms total", op, named, tot.TotalMS)
		}
		if other := rep.ServerStages[op]["other"]; other.TotalMS > 0.10*tot.TotalMS {
			t.Errorf("%s: unattributed remainder is %.0f%% of the total (want < 10%%)",
				op, 100*other.TotalMS/tot.TotalMS)
		}
	}
}

func TestWriteOverloadMapsToRetry(t *testing.T) {
	// Direct unit check of the error mapping (driving a real server
	// into sustained overload is too timing-dependent for CI).
	s := &Server{cfg: ServerConfig{RetryAfter: 7 * time.Millisecond}}
	rs := s.writeResult(ErrOverloaded)
	if rs == nil || rs.Status != StatusRetry || rs.RetryAfterMS != 7 {
		t.Fatalf("overload mapped to %+v", rs)
	}
	if rs := s.writeResult(nil); rs != nil {
		t.Fatalf("nil error mapped to %+v", rs)
	}
	if rs := s.writeResult(errors.New("x")); rs == nil || rs.Status != StatusErr {
		t.Fatalf("generic error mapped to %+v", rs)
	}
}

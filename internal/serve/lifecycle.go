package serve

// Request-lifecycle tracing for the serving pipeline (DESIGN.md §12).
//
// When ServerConfig.Lifecycle.Enabled is set, every request carries a
// pooled obs.Span that is stamped at the fixed pipeline stages (frame
// read, decode, admission, batcher wait, shard-queue wait, WAL
// append, WAL fsync, backend apply, read execution, response-writer
// queue, connection write). The deltas feed three sinks:
//
//   - per-stage × per-op-class histograms in the shared obs.Metrics
//     (Prometheus via the admin endpoint, expvar, and the STATS
//     payload) — always on while lifecycle tracing is enabled;
//   - a sampled slow-request log: requests whose server-side total
//     crosses SlowThreshold are logged through log/slog with the full
//     stage breakdown, rate-limited to SlowPerSec lines per second;
//   - an optional Chrome trace (obs.TraceWriter): each request
//     renders as back-to-back stage slices on its connection's
//     timeline, loadable at ui.perfetto.dev.
//
// The hot path allocates nothing (spans are pooled) and a stage stamp
// is one monotonic clock read plus one atomic add; with Enabled false
// the serving path takes a single nil check per stage site.

import (
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"pbtree/internal/core"
	"pbtree/internal/obs"
)

// LifecycleConfig configures request-lifecycle tracing
// (ServerConfig.Lifecycle). The zero value disables it entirely.
type LifecycleConfig struct {
	// Enabled turns on per-stage span stamping and the stage
	// histograms. Everything below is inert without it.
	Enabled bool

	// SlowThreshold, when positive, enables the slow-request log:
	// requests whose server-side total (decode through connection
	// write) meets the threshold are logged with their full stage
	// breakdown.
	SlowThreshold time.Duration

	// SlowPerSec bounds the slow-request log rate in lines per
	// second. Zero selects 10.
	SlowPerSec int

	// Log receives slow-request records. Nil selects slog.Default().
	Log *slog.Logger

	// Trace, when non-nil, receives a Chrome trace-event stream of
	// every traced request (one slice per stage, one timeline per
	// connection). The stream is terminated when the server shuts
	// down; the caller owns and closes the underlying writer.
	Trace io.Writer

	// TraceEvents bounds the number of trace events emitted, so an
	// unattended server cannot grow the trace without bound. Zero
	// selects 100_000.
	TraceEvents int
}

// withDefaults resolves the zero values.
func (c LifecycleConfig) withDefaults() LifecycleConfig {
	if c.SlowPerSec <= 0 {
		c.SlowPerSec = 10
	}
	if c.TraceEvents <= 0 {
		c.TraceEvents = 100_000
	}
	if c.Log == nil {
		c.Log = slog.Default()
	}
	return c
}

// lifecycle is the server's span clock: it owns the span pool, the
// slow-request logger and the optional Chrome trace. A nil *lifecycle
// means tracing is disabled; every serving-path call site guards with
// one nil check.
type lifecycle struct {
	metrics *obs.Metrics
	cfg     LifecycleConfig
	slowNS  int64
	conns   atomic.Uint64
	pool    sync.Pool

	// Slow-log rate limiting: a one-second window with an atomic
	// line counter.
	slowWindow atomic.Int64 // window start, obs.Nanotime
	slowCount  atomic.Int64 // lines logged in the window

	// Chrome trace state, guarded by traceMu (trace emission is the
	// sampled slow path).
	traceMu   sync.Mutex
	trace     *obs.TraceWriter
	traceLeft int
	traceBase int64
}

// newLifecycle builds the span clock, or returns nil when disabled.
func newLifecycle(cfg LifecycleConfig, m *obs.Metrics) *lifecycle {
	if !cfg.Enabled {
		return nil
	}
	cfg = cfg.withDefaults()
	lc := &lifecycle{
		metrics: m,
		cfg:     cfg,
		slowNS:  int64(cfg.SlowThreshold),
	}
	lc.pool.New = func() any { return new(obs.Span) }
	if cfg.Trace != nil {
		lc.trace = obs.NewTraceWriter(cfg.Trace)
		lc.traceLeft = cfg.TraceEvents
		lc.traceBase = obs.Nanotime()
	}
	return lc
}

// nextConn hands out connection sequence numbers (trace timeline IDs).
func (lc *lifecycle) nextConn() uint64 { return lc.conns.Add(1) }

// span takes a reset span from the pool and starts its clock.
func (lc *lifecycle) span(conn uint64) *obs.Span {
	sp := lc.pool.Get().(*obs.Span)
	sp.Begin(obs.Nanotime())
	sp.Conn = conn
	return sp
}

// drop returns an unobserved span to the pool (control-plane ops,
// connection upgrades, dead connections). Nil-receiver and nil-span
// safe, so call sites need no guards.
func (lc *lifecycle) drop(sp *obs.Span) {
	if lc == nil || sp == nil {
		return
	}
	lc.pool.Put(sp)
}

// finish finalizes a span, feeds the histograms, and runs the sampled
// sinks (slow log, Chrome trace). Spans whose Op is still OpNone
// (STATS, HELLO, rejected or expired requests) are dropped unobserved
// so completed-request attribution stays clean.
func (lc *lifecycle) finish(sp *obs.Span) {
	if lc == nil || sp == nil {
		return
	}
	if sp.Op == core.OpNone {
		lc.pool.Put(sp)
		return
	}
	total := sp.Finalize()
	lc.metrics.ObserveSpan(sp, total)
	if lc.slowNS > 0 && total >= lc.slowNS && lc.allowSlow() {
		lc.logSlow(sp, total)
	}
	if lc.trace != nil {
		lc.emitTrace(sp, total)
	}
	lc.pool.Put(sp)
}

// allowSlow is the slow-log rate limiter: at most SlowPerSec lines
// per one-second window, decided lock-free.
func (lc *lifecycle) allowSlow() bool {
	now := obs.Nanotime()
	win := lc.slowWindow.Load()
	if now-win >= int64(time.Second) {
		// Roll the window; the winner of the CAS resets the counter.
		if lc.slowWindow.CompareAndSwap(win, now) {
			lc.slowCount.Store(0)
		}
	}
	return lc.slowCount.Add(1) <= int64(lc.cfg.SlowPerSec)
}

// logSlow emits one structured slow-request record with the stage
// breakdown in microseconds.
func (lc *lifecycle) logSlow(sp *obs.Span, total int64) {
	attrs := make([]any, 0, 2*int(obs.NumStages)+8)
	attrs = append(attrs,
		slog.String("op", sp.Op.String()),
		slog.Uint64("conn", sp.Conn),
		slog.Uint64("req", uint64(sp.Req)),
		slog.Int64("total_us", total/1e3),
	)
	for st := obs.Stage(0); st < obs.NumStages; st++ {
		if ns := sp.StageNS(st); ns > 0 {
			attrs = append(attrs, slog.Int64(st.String()+"_us", ns/1e3))
		}
	}
	lc.cfg.Log.Warn("slow request", attrs...)
}

// emitTrace renders one request as Chrome trace slices: an enclosing
// op slice plus one slice per nonzero stage, laid back-to-back from
// the span's start on the connection's timeline. Stage placement is
// by pipeline order, not measured start offsets — durations are
// exact, positions are the canonical order.
func (lc *lifecycle) emitTrace(sp *obs.Span, total int64) {
	lc.traceMu.Lock()
	defer lc.traceMu.Unlock()
	if lc.traceLeft <= 0 {
		return
	}
	tid := int(sp.Conn)
	ts := uint64(sp.StartNS()-lc.traceBase) / 1e3
	args := map[string]any{"req": sp.Req}
	lc.trace.Slice(sp.Op.String(), 1, tid, ts, uint64(total)/1e3, args)
	lc.traceLeft--
	cursor := ts
	for st := obs.StageDecode; st < obs.NumStages && lc.traceLeft > 0; st++ {
		ns := sp.StageNS(st)
		if ns <= 0 {
			continue
		}
		durUS := uint64(ns) / 1e3
		lc.trace.Slice(st.String(), 1, tid, cursor, durUS, nil)
		cursor += durUS
		lc.traceLeft--
	}
}

// closeTrace terminates the Chrome trace stream (called once, at
// server shutdown). The underlying writer stays open for the caller.
func (lc *lifecycle) closeTrace() error {
	if lc == nil || lc.trace == nil {
		return nil
	}
	lc.traceMu.Lock()
	defer lc.traceMu.Unlock()
	return lc.trace.Close()
}

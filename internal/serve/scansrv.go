package serve

// Server-side streaming-scan cursor management (PROTOCOL.md §10).
// Cursors are connection-scoped: a cursor ID is meaningful only on
// the connection that opened it, so one client cannot drive (or
// close) another's scan. Every connection's cursor set registers with
// the server so an idle-cursor reaper can reclaim the snapshots of
// scans whose client walked away without SCANCLOSE.

import (
	"sync"
	"sync/atomic"
	"time"

	"pbtree/internal/core"
	"pbtree/internal/obs"
)

// maxConnCursors bounds the streaming-scan cursors one connection may
// hold open; SCANOPEN past the cap is answered StatusRetry with the
// scan class's hint. The bound keeps a single misbehaving client from
// pinning an unbounded number of snapshots.
const maxConnCursors = 64

// serverCursor is one registered streaming scan.
type serverCursor struct {
	sc       *StoreCursor
	lastUsed atomic.Int64 // obs.Nanotime of the last SCANOPEN/SCANNEXT
}

// connCursors is one connection's cursor table. IDs are per
// connection, monotonically increasing from 1 (0 is never a valid
// cursor on the wire).
type connCursors struct {
	mu     sync.Mutex
	m      map[uint64]*serverCursor
	nextID uint64
}

// registerCursors creates a connection's cursor set and registers it
// with the reaper.
func (s *Server) registerCursors() *connCursors {
	cs := &connCursors{m: make(map[uint64]*serverCursor)}
	s.curMu.Lock()
	s.curSets[cs] = struct{}{}
	s.curMu.Unlock()
	return cs
}

// releaseCursors unregisters a closing connection's cursor set and
// releases every snapshot it still pins.
func (s *Server) releaseCursors(cs *connCursors) {
	s.curMu.Lock()
	delete(s.curSets, cs)
	s.curMu.Unlock()
	cs.mu.Lock()
	cursors := make([]*serverCursor, 0, len(cs.m))
	for id, c := range cs.m {
		cursors = append(cursors, c)
		delete(cs.m, id)
	}
	cs.mu.Unlock()
	for _, c := range cursors {
		c.sc.Close()
		s.cursorsOpen.Add(-1)
		s.cfg.Metrics.CursorClosed()
	}
}

// open registers a new cursor and returns its ID, or 0 when the
// connection is at its cursor cap.
func (cs *connCursors) open(c *serverCursor) uint64 {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if len(cs.m) >= maxConnCursors {
		return 0
	}
	cs.nextID++
	cs.m[cs.nextID] = c
	return cs.nextID
}

// get looks a cursor up without removing it.
func (cs *connCursors) get(id uint64) *serverCursor {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.m[id]
}

// take removes and returns a cursor, or nil if the ID is unknown.
func (cs *connCursors) take(id uint64) *serverCursor {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	c := cs.m[id]
	delete(cs.m, id)
	return c
}

// reapCursors is the idle-cursor reaper: it periodically walks every
// connection's cursor set and closes cursors that have not been
// touched for CursorTimeout, releasing the snapshots they pin. A
// reaped ID answers later SCANNEXT/SCANCLOSE with StatusNotFound.
func (s *Server) reapCursors() {
	defer s.wg.Done()
	period := s.cfg.CursorTimeout / 4
	period = max(period, 10*time.Millisecond)
	period = min(period, time.Second)
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.reaperStop:
			return
		case <-t.C:
		}
		cutoff := obs.Nanotime() - s.cfg.CursorTimeout.Nanoseconds()
		s.curMu.Lock()
		sets := make([]*connCursors, 0, len(s.curSets))
		for cs := range s.curSets {
			sets = append(sets, cs)
		}
		s.curMu.Unlock()
		for _, cs := range sets {
			cs.mu.Lock()
			var idle []*serverCursor
			for id, c := range cs.m {
				if c.lastUsed.Load() < cutoff {
					idle = append(idle, c)
					delete(cs.m, id)
				}
			}
			cs.mu.Unlock()
			for _, c := range idle {
				c.sc.Close()
				s.cursorsOpen.Add(-1)
				s.cursorTimeouts.Add(1)
				s.cfg.Metrics.CursorTimedOut()
				s.cfg.Metrics.CursorClosed()
			}
		}
	}
}

// CursorStats is the STATS view of streaming-scan cursor occupancy.
type CursorStats struct {
	Open     int64  `json:"open"`     // cursors currently open
	Opened   uint64 `json:"opened"`   // cursors ever opened
	Timeouts uint64 `json:"timeouts"` // cursors reclaimed by the idle reaper
	MaxConn  int    `json:"max_conn"` // per-connection cursor cap
	IdleMS   int64  `json:"idle_ms"`  // reaper timeout (0 = reaper disabled)
}

// cursorStats snapshots the cursor counters for STATS.
func (s *Server) cursorStats() CursorStats {
	idle := int64(0)
	if s.cfg.CursorTimeout > 0 {
		idle = s.cfg.CursorTimeout.Milliseconds()
	}
	return CursorStats{
		Open:     s.cursorsOpen.Load(),
		Opened:   s.cursorsOpened.Load(),
		Timeouts: s.cursorTimeouts.Load(),
		MaxConn:  maxConnCursors,
		IdleMS:   idle,
	}
}

// executeScan runs one admitted streaming-scan op against the
// connection's cursor set.
func (s *Server) executeScan(req *Request, cs *connCursors) *Response {
	if cs == nil {
		return &Response{Status: StatusErr, Err: "serve: streaming scan without a connection"}
	}
	switch req.Op {
	case OpScanOpen:
		sc, err := s.st.OpenCursor(req.Start, req.End)
		if err != nil {
			return &Response{Status: StatusErr, Err: err.Error()}
		}
		c := &serverCursor{sc: sc}
		c.lastUsed.Store(obs.Nanotime())
		id := cs.open(c)
		if id == 0 {
			sc.Close()
			s.rejected.Add(1)
			retry := s.cfg.Admission.RetryAfterScan
			return &Response{Status: StatusRetry, RetryAfterMS: uint32(retry / time.Millisecond)}
		}
		s.cursorsOpen.Add(1)
		s.cursorsOpened.Add(1)
		s.cfg.Metrics.CursorOpened()
		return &Response{Status: StatusOK, Cursor: id}
	case OpScanNext:
		c := cs.get(req.Cursor)
		if c == nil {
			return &Response{Status: StatusNotFound}
		}
		c.lastUsed.Store(obs.Nanotime())
		rows, done := c.sc.Next(int(req.Max))
		if rows == nil {
			rows = []core.Pair{}
		}
		if done {
			// Exhausted: the cursor closes server-side so a well-behaved
			// client never needs a SCANCLOSE round trip.
			if cs.take(req.Cursor) != nil {
				c.sc.Close()
				s.cursorsOpen.Add(-1)
				s.cfg.Metrics.CursorClosed()
			}
		}
		return &Response{Status: StatusOK, ScanChunk: true, ScanDone: done, Pairs: rows}
	case OpScanClose:
		c := cs.take(req.Cursor)
		if c == nil {
			return &Response{Status: StatusNotFound}
		}
		c.sc.Close()
		s.cursorsOpen.Add(-1)
		s.cfg.Metrics.CursorClosed()
		return &Response{Status: StatusOK}
	}
	return &Response{Status: StatusErr, Err: "serve: not a streaming-scan op"}
}

package serve

import (
	"sync"
	"testing"

	"pbtree/internal/core"
)

// TestRecoveryConcurrentWithOtherShards exercises the lazy per-shard
// recovery path under the race detector: shard 0 carries a long WAL
// tail (CheckpointEvery is set high, so reopening replays every
// record), while reads and writes land on the other shards the moment
// Open returns — they must proceed while shard 0 is still replaying,
// and reads of shard 0 must block on its readiness gate instead of
// racing its writer goroutine.
func TestRecoveryConcurrentWithOtherShards(t *testing.T) {
	const shards = 4
	fs := NewMemFS()
	cfg := StoreConfig{
		Shards:  shards,
		Durable: &DurableConfig{FS: fs, Fsync: FsyncNever, CheckpointEvery: 1 << 20},
	}
	st, err := Open(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WaitReady(); err != nil {
		t.Fatal(err)
	}
	// Skew the WAL: thousands of records on shard 0, a handful on the
	// rest, so shard 0's recovery is the slow one.
	skip := map[core.Key]bool{}
	heavy := shardKeys(st, 0, 4000, skip)
	light := [shards][]core.Key{}
	for s := 1; s < shards; s++ {
		light[s] = shardKeys(st, s, 64, skip)
	}
	for i := 0; i < len(heavy); i += 4 {
		batch := make([]core.Pair, 0, 4)
		for _, k := range heavy[i : i+4] {
			batch = append(batch, core.Pair{Key: k, TID: core.TID(k / 8)})
		}
		if err := st.PutBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	for s := 1; s < shards; s++ {
		for _, k := range light[s][:32] {
			if err := st.Put(k, core.TID(k/8)); err != nil {
				t.Fatal(err)
			}
		}
	}
	st.Close()

	// Reopen and immediately hammer the store from many goroutines
	// while shard 0 replays its 1000-record tail.
	st2, err := Open(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := 1 + w%(shards-1)
			for _, k := range light[s][:32] { // reads on recovered shards
				if tid, ok := st2.Get(k); !ok || tid != core.TID(k/8) {
					t.Errorf("shard %d key %d = %d, %v during recovery", s, k, tid, ok)
				}
			}
			for _, k := range light[s][32:48] { // writes during recovery
				if err := st2.Put(k, core.TID(k/8)); err != nil {
					t.Errorf("put on shard %d during recovery: %v", s, err)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() { // reads of the recovering shard block on its gate
		defer wg.Done()
		for _, k := range heavy[:64] {
			if tid, ok := st2.Get(k); !ok || tid != core.TID(k/8) {
				t.Errorf("heavy key %d = %d, %v after recovery gate", k, tid, ok)
			}
		}
	}()
	wg.Add(1)
	go func() { // batched lookups spanning all shards
		defer wg.Done()
		keys := append(append([]core.Key{}, heavy[:8]...), light[1][:8]...)
		out := make([]Lookup, len(keys))
		st2.MGet(keys, out)
		for i, l := range out {
			if !l.Found || l.TID != core.TID(keys[i]/8) {
				t.Errorf("MGet %d = %+v during recovery", keys[i], l)
			}
		}
	}()
	if err := st2.WaitReady(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if rs := st2.Recovery()[0]; rs.Replayed != 1000 {
		t.Fatalf("shard 0 replayed %d records, want 1000", rs.Replayed)
	}
	st2.Close()
}

package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pbtree/internal/core"
	"pbtree/internal/obs"
)

// ServerConfig configures the TCP front end.
type ServerConfig struct {
	// Addr is the listen address, e.g. "127.0.0.1:7070". ":0" picks a
	// free port (see Server.Addr).
	Addr string

	// MaxInflight is the legacy flat in-flight bound; it now seeds
	// Admission.ReadTokens when that is zero. Prefer Admission.
	MaxInflight int

	// Admission sets the per-op-class token budgets; a request whose
	// class budget is exhausted is rejected with StatusRetry and the
	// class's retry-after hint instead of queueing without bound.
	Admission AdmissionConfig

	// RetryAfter is the base backoff hint the class-specific hints in
	// Admission default from. Zero selects 5ms.
	RetryAfter time.Duration

	// Window is how many requests one protocol-v2 connection may have
	// executing concurrently: the server reads ahead up to this many
	// frames and writes responses as they complete, in any order. Zero
	// selects 32. Version-1 connections always run one at a time.
	Window int

	// Batch enables the cross-request Batcher for GET requests, so
	// concurrent point lookups from different connections merge into
	// group searches.
	Batch bool

	// Batcher tunes the gatherers when Batch is set.
	Batcher BatcherConfig

	// Metrics, when non-nil, records per-operation wall-clock
	// latencies (GET/MGET as OpSearch, SCAN as OpScan, PUT as
	// OpInsert, DEL as OpDelete) and admission budget occupancy.
	Metrics *obs.Metrics
}

// Server serves a Store over TCP with the wire protocol of wire.go
// (normative spec: PROTOCOL.md).
type Server struct {
	st  *Store
	cfg ServerConfig

	ln      net.Listener
	batcher *Batcher
	adm     *admission

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	wg      sync.WaitGroup
	started time.Time

	// Serving counters, exposed via STATS.
	ops      [8]atomic.Uint64 // indexed by Op
	rejected atomic.Uint64
	expired  atomic.Uint64
	badReqs  atomic.Uint64
	pipeline atomic.Uint64 // connections upgraded to protocol v2
}

// ServerStats is the JSON payload of a STATS response.
type ServerStats struct {
	UptimeMS  int64                  `json:"uptime_ms"`       // ms since the server started
	Ops       map[string]uint64      `json:"ops"`             // completed requests per op name
	Rejected  uint64                 `json:"rejected"`        // admission rejections (all classes)
	Expired   uint64                 `json:"expired"`         // requests whose deadline passed before execution
	BadReqs   uint64                 `json:"bad_requests"`    // malformed frames answered StatusErr
	Conns     int                    `json:"conns"`           // currently open connections
	Pipelined uint64                 `json:"pipelined_conns"` // connections ever upgraded to protocol v2
	Window    int                    `json:"window"`          // per-connection pipeline depth
	Budgets   map[string]BudgetStats `json:"budgets"`         // admission occupancy per class
	Store     StoreStats             `json:"store"`           // per-shard store counters
	BatchGets bool                   `json:"batch_gets"`      // whether GETs ride the Batcher
}

// NewServer wraps a store; call Start to begin listening.
func NewServer(st *Store, cfg ServerConfig) *Server {
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 5 * time.Millisecond
	}
	if cfg.Window <= 0 {
		cfg.Window = 32
	}
	if cfg.Admission.ReadTokens <= 0 && cfg.MaxInflight > 0 {
		cfg.Admission.ReadTokens = cfg.MaxInflight
	}
	cfg.Admission = cfg.Admission.withDefaults(st.Shards(), cfg.Window, cfg.RetryAfter)
	s := &Server{
		st:    st,
		cfg:   cfg,
		adm:   newAdmission(cfg.Admission, cfg.Metrics),
		conns: make(map[net.Conn]struct{}),
	}
	return s
}

// Start binds the listener and launches the accept loop.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.started = time.Now()
	if s.cfg.Batch {
		s.batcher = NewBatcher(s.st, s.cfg.Batcher)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr reports the bound listen address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// acceptLoop accepts connections until the listener closes.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(c)
	}
}

// Shutdown drains gracefully: stop accepting, let in-flight requests
// finish, then close connections. If the drain exceeds timeout,
// connections are closed forcibly.
func (s *Server) Shutdown(timeout time.Duration) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	// Expire every connection's pending read: idle request loops exit
	// immediately, while requests already executing are unaffected —
	// they finish, write their response, and exit on the next read.
	now := time.Now()
	for c := range s.conns {
		c.SetReadDeadline(now)
	}
	s.mu.Unlock()
	err := s.ln.Close()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(timeout):
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		err = errors.Join(err, fmt.Errorf("serve: shutdown forced after %v", timeout))
	}
	if s.batcher != nil {
		s.batcher.Close()
	}
	return err
}

// serveConn runs the request loop of one connection. It starts in
// protocol v1 (one request, one response, in order); a HELLO as the
// first request negotiating version >= 2 hands the connection to
// servePipelined (PROTOCOL.md §3).
func (s *Server) serveConn(c net.Conn) {
	defer s.wg.Done()
	defer func() {
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()
	var in, out []byte
	first := true
	for {
		frame, err := ReadFrame(c, in)
		if err != nil {
			return // EOF, peer reset, or shutdown read deadline
		}
		in = frame
		arrived := time.Now()
		req, err := DecodeRequest(frame)
		var resp *Response
		switch {
		case err != nil:
			s.badReqs.Add(1)
			resp = &Response{Status: StatusErr, Err: err.Error()}
		case req.Op == OpHello:
			s.ops[OpHello].Add(1)
			if first && req.MaxVersion >= ProtoV2 {
				// Upgrade: ack version 2, then switch framing.
				ack := &Response{Status: StatusOK, Version: ProtoV2, Window: uint32(s.cfg.Window)}
				payload, _ := AppendResponse(out[:0], ack)
				if err := WriteFrame(c, payload); err != nil {
					return
				}
				s.pipeline.Add(1)
				s.servePipelined(c)
				return
			}
			// A v1-only peer, or a HELLO after traffic already flowed:
			// stay on (or renegotiate down to) version 1.
			resp = &Response{Status: StatusOK, Version: ProtoV1, Window: 1}
		default:
			resp = s.handle(req, arrived)
		}
		first = false
		payload, err := AppendResponse(out[:0], resp)
		if err != nil { // response exceeded wire bounds; report instead
			payload, _ = AppendResponse(out[:0], &Response{Status: StatusErr, Err: err.Error()})
		}
		out = payload
		if err := WriteFrame(c, payload); err != nil {
			return
		}
	}
}

// servePipelined runs the protocol-v2 loop: read ahead up to Window
// frames, execute them concurrently, and write responses in completion
// order — a slow SCAN no longer blocks the GETs queued behind it. A
// dedicated writer goroutine serializes the response frames; workers
// hand it (id, response) pairs over a channel.
func (s *Server) servePipelined(c net.Conn) {
	type completed struct {
		id   uint32
		resp *Response
	}
	out := make(chan completed, s.cfg.Window)
	writerDone := make(chan struct{})
	bw := bufio.NewWriter(c)
	go func() {
		defer close(writerDone)
		var buf []byte
		for d := range out {
			payload, err := AppendResponseV2(buf[:0], d.id, d.resp)
			if err != nil { // response exceeded wire bounds; report instead
				payload, _ = AppendResponseV2(buf[:0], d.id, &Response{Status: StatusErr, Err: err.Error()})
			}
			buf = payload
			if err := WriteFrame(bw, payload); err != nil {
				// The connection is gone; drain so workers never block.
				for range out {
				}
				return
			}
			// Flush only when no completion is waiting: consecutive
			// responses coalesce into one syscall under load.
			if len(out) == 0 {
				if err := bw.Flush(); err != nil {
					for range out {
					}
					return
				}
			}
		}
		bw.Flush()
	}()

	slots := make(chan struct{}, s.cfg.Window)
	var workers sync.WaitGroup
	var in []byte
	for {
		frame, err := ReadFrame(c, in)
		if err != nil {
			break // EOF, peer reset, or shutdown read deadline
		}
		in = frame
		arrived := time.Now()
		if len(frame) < 4 {
			break // no ID to answer with: connection-fatal (PROTOCOL.md §5)
		}
		id, req, err := DecodeRequestV2(frame)
		if err != nil {
			s.badReqs.Add(1)
			out <- completed{id, &Response{Status: StatusErr, Err: err.Error()}}
			continue
		}
		if req.Op == OpHello { // renegotiation is not allowed mid-stream
			s.ops[OpHello].Add(1)
			out <- completed{id, &Response{Status: StatusOK, Version: ProtoV2, Window: uint32(s.cfg.Window)}}
			continue
		}
		// The slot bounds read-ahead: at most Window requests of this
		// connection execute at once (decode already copied the frame,
		// so the read buffer is free to reuse).
		slots <- struct{}{}
		workers.Add(1)
		go func(id uint32, req *Request, arrived time.Time) {
			defer workers.Done()
			out <- completed{id, s.handle(req, arrived)}
			<-slots
		}(id, req, arrived)
	}
	workers.Wait()
	close(out)
	<-writerDone
}

// handle admits and executes one decoded request.
func (s *Server) handle(req *Request, arrived time.Time) *Response {
	// Admission: take the class's tokens or reject with its retry hint.
	release, retryAfter, ok := s.adm.admit(req)
	if !ok {
		s.rejected.Add(1)
		return &Response{Status: StatusRetry, RetryAfterMS: uint32(retryAfter / time.Millisecond)}
	}
	defer release()
	// Deadline: don't burn work on an answer the client has abandoned.
	if req.DeadlineMS != 0 && time.Since(arrived) > time.Duration(req.DeadlineMS)*time.Millisecond {
		s.expired.Add(1)
		return &Response{Status: StatusDeadline}
	}
	s.ops[req.Op].Add(1)
	if s.cfg.Metrics != nil {
		defer s.cfg.Metrics.Time(metricOpOf(req.Op))()
	}
	return s.execute(req)
}

// metricOpOf maps wire ops onto the index-operation metrics.
func metricOpOf(op Op) core.OpKind {
	switch op {
	case OpScan:
		return core.OpScan
	case OpPut:
		return core.OpInsert
	case OpDel:
		return core.OpDelete
	default:
		return core.OpSearch
	}
}

// execute runs a decoded, admitted request against the store.
func (s *Server) execute(req *Request) *Response {
	switch req.Op {
	case OpGet:
		var l Lookup
		if s.batcher != nil {
			l = s.batcher.Get(req.Keys[0])
		} else {
			tid, ok := s.st.Get(req.Keys[0])
			l = Lookup{TID: tid, Found: ok}
		}
		if !l.Found {
			return &Response{Status: StatusNotFound}
		}
		return &Response{Status: StatusOK, Lookups: []Lookup{l}}
	case OpMGet:
		out := make([]Lookup, len(req.Keys))
		s.st.MGet(req.Keys, out)
		return &Response{Status: StatusOK, Lookups: out}
	case OpScan:
		pairs := s.st.Scan(req.Start, req.End, int(req.Limit))
		if pairs == nil {
			pairs = []core.Pair{}
		}
		return &Response{Status: StatusOK, Pairs: pairs}
	case OpPut:
		if err := s.writeResult(s.st.PutBatch(req.Pairs)); err != nil {
			return err
		}
		return &Response{Status: StatusOK}
	case OpDel:
		var first error
		for _, k := range req.Keys {
			if err := s.st.Delete(k); err != nil && first == nil {
				first = err
			}
		}
		if err := s.writeResult(first); err != nil {
			return err
		}
		return &Response{Status: StatusOK}
	case OpStats:
		blob, err := json.Marshal(s.statsLocked())
		if err != nil {
			return &Response{Status: StatusErr, Err: err.Error()}
		}
		return &Response{Status: StatusOK, Stats: blob}
	}
	return &Response{Status: StatusErr, Err: fmt.Sprintf("serve: unhandled op %s", req.Op)}
}

// writeResult maps store write errors onto wire statuses: overload
// becomes a retryable rejection with the write class's hint,
// everything else an error.
func (s *Server) writeResult(err error) *Response {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrOverloaded):
		s.rejected.Add(1)
		retry := s.cfg.Admission.RetryAfterWrite
		if retry <= 0 {
			retry = s.cfg.RetryAfter
		}
		return &Response{Status: StatusRetry, RetryAfterMS: uint32(retry / time.Millisecond)}
	default:
		return &Response{Status: StatusErr, Err: err.Error()}
	}
}

// statsLocked assembles the STATS payload.
func (s *Server) statsLocked() ServerStats {
	s.mu.Lock()
	nconns := len(s.conns)
	s.mu.Unlock()
	ops := make(map[string]uint64, 7)
	for op := OpGet; op <= OpHello; op++ {
		if n := s.ops[op].Load(); n > 0 {
			ops[op.String()] = n
		}
	}
	return ServerStats{
		UptimeMS:  time.Since(s.started).Milliseconds(),
		Ops:       ops,
		Rejected:  s.rejected.Load(),
		Expired:   s.expired.Load(),
		BadReqs:   s.badReqs.Load(),
		Conns:     nconns,
		Pipelined: s.pipeline.Load(),
		Window:    s.cfg.Window,
		Budgets:   s.adm.stats(),
		Store:     s.st.Stats(),
		BatchGets: s.batcher != nil,
	}
}

package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pbtree/internal/core"
	"pbtree/internal/obs"
)

// ServerConfig configures the TCP front end.
type ServerConfig struct {
	// Addr is the listen address, e.g. "127.0.0.1:7070". ":0" picks a
	// free port (see Server.Addr).
	Addr string

	// MaxInflight is the legacy flat in-flight bound; it now seeds
	// Admission.ReadTokens when that is zero. Prefer Admission.
	MaxInflight int

	// Admission sets the per-op-class token budgets; a request whose
	// class budget is exhausted is rejected with StatusRetry and the
	// class's retry-after hint instead of queueing without bound.
	Admission AdmissionConfig

	// RetryAfter is the base backoff hint the class-specific hints in
	// Admission default from. Zero selects 5ms.
	RetryAfter time.Duration

	// Window is how many requests one protocol-v2 connection may have
	// executing concurrently: the server reads ahead up to this many
	// frames and writes responses as they complete, in any order. Zero
	// selects 32. Version-1 connections always run one at a time.
	Window int

	// DataPlane selects the execution model for pipelined connections:
	// DataPlanePool (the default) executes requests on a shared bounded
	// worker pool sized by PoolSize, so execution concurrency is a
	// server-wide constant instead of conns x Window goroutines;
	// DataPlaneGoroutine is the legacy model that spawns one goroutine
	// per in-flight request. Both planes share the wire protocol,
	// admission, and writer coalescing (DESIGN.md §15).
	DataPlane string

	// PoolSize is the worker count of the pool data plane. Zero selects
	// max(16, 4 x GOMAXPROCS). Ignored by the goroutine plane.
	PoolSize int

	// CursorTimeout reclaims streaming-scan cursors (PROTOCOL.md §10)
	// that have not seen a SCANNEXT/SCANCLOSE for this long: the
	// snapshots they pin are released and later requests against the
	// cursor answer StatusNotFound. Zero selects 30s; negative disables
	// the reaper (cursors then live until closed or their connection
	// ends).
	CursorTimeout time.Duration

	// Batch enables the cross-request Batcher for GET requests, so
	// concurrent point lookups from different connections merge into
	// group searches.
	Batch bool

	// Batcher tunes the gatherers when Batch is set.
	Batcher BatcherConfig

	// Metrics, when non-nil, records per-operation wall-clock
	// latencies (GET/MGET as OpSearch, SCAN as OpScan, PUT as
	// OpInsert, DEL as OpDelete) and admission budget occupancy.
	Metrics *obs.Metrics

	// Lifecycle configures request-lifecycle stage tracing: per-stage
	// latency histograms (recorded into Metrics), the sampled
	// slow-request log, and the optional Chrome trace export. The
	// zero value disables all three (lifecycle.go, DESIGN.md §12).
	Lifecycle LifecycleConfig

	// Repl, when non-nil, handles REPLICATE requests (the replication
	// subsystem's wire entry point — internal/repl wires its Node
	// here). Nil answers REPLICATE with StatusErr.
	Repl ReplHandler
}

// ReplHandler answers one decoded REPLICATE exchange. REPLICATE
// requests bypass admission (replication must make progress exactly
// when the data plane is saturated) and the op-latency metrics (the
// follower's poll cadence would pollute the client histograms); they
// still count in the STATS op table.
type ReplHandler interface {
	// HandleReplicate executes one replication request and returns the
	// full wire response (so fencing can answer StatusFenced with the
	// rival epoch).
	HandleReplicate(r *ReplReq) *Response
}

// Server serves a Store over TCP with the wire protocol of wire.go
// (normative spec: PROTOCOL.md).
type Server struct {
	st  *Store
	cfg ServerConfig

	ln      net.Listener
	batcher *Batcher
	adm     *admission
	lc      *lifecycle  // nil when lifecycle tracing is disabled
	pool    *workerPool // nil when DataPlane is DataPlaneGoroutine

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	// Streaming-scan cursor bookkeeping: every connection's cursor set
	// registers here so the reaper can walk them (scansrv.go).
	curMu          sync.Mutex
	curSets        map[*connCursors]struct{}
	reaperStop     chan struct{}
	cursorsOpen    atomic.Int64
	cursorsOpened  atomic.Uint64
	cursorTimeouts atomic.Uint64

	wg      sync.WaitGroup
	started time.Time

	// Serving counters, exposed via STATS.
	ops      [numOps]atomic.Uint64 // indexed by Op
	rejected atomic.Uint64
	expired  atomic.Uint64
	badReqs  atomic.Uint64
	pipeline atomic.Uint64 // connections upgraded to protocol v2
}

// numOps sizes the per-op counter table (ops 1..OpScanClose).
const numOps = int(OpScanClose) + 1

// The data-plane models of ServerConfig.DataPlane.
const (
	// DataPlanePool executes pipelined requests on a shared bounded
	// worker pool (pool.go).
	DataPlanePool = "pool"

	// DataPlaneGoroutine spawns one goroutine per in-flight request —
	// the pre-pool model, kept for head-to-head benchmarks.
	DataPlaneGoroutine = "goroutine"
)

// ServerStats is the JSON payload of a STATS response.
type ServerStats struct {
	UptimeMS  int64                  `json:"uptime_ms"`       // ms since the server started
	Ops       map[string]uint64      `json:"ops"`             // completed requests per op name
	Rejected  uint64                 `json:"rejected"`        // admission rejections (all classes)
	Expired   uint64                 `json:"expired"`         // requests whose deadline passed before execution
	BadReqs   uint64                 `json:"bad_requests"`    // malformed frames answered StatusErr
	Conns     int                    `json:"conns"`           // currently open connections
	Pipelined uint64                 `json:"pipelined_conns"` // connections ever upgraded to protocol v2
	Window    int                    `json:"window"`          // per-connection pipeline depth
	DataPlane string                 `json:"data_plane"`      // execution model: "pool" or "goroutine"
	PoolSize  int                    `json:"pool_size"`       // pool workers (0 on the goroutine plane)
	Cursors   CursorStats            `json:"cursors"`         // streaming-scan cursor occupancy
	Budgets   map[string]BudgetStats `json:"budgets"`         // admission occupancy per class
	Store     StoreStats             `json:"store"`           // per-shard store counters
	BatchGets bool                   `json:"batch_gets"`      // whether GETs ride the Batcher

	// Stages and StageTotals carry the request-lifecycle attribution
	// when lifecycle tracing is enabled (empty maps otherwise, never
	// null — loadgen round-trips the payload). Stages is keyed by op
	// class then stage name.
	Stages map[string]map[string]StageStats `json:"server_stages"`

	// StageTotals holds each op class's end-to-end server-side latency
	// (request decoded through response written).
	StageTotals map[string]StageStats `json:"server_stage_totals"`
}

// StageStats summarizes one lifecycle histogram for the STATS payload.
type StageStats struct {
	Count uint64 `json:"count"`  // samples observed
	SumNS int64  `json:"sum_ns"` // accumulated nanoseconds across samples
	P50NS int64  `json:"p50_ns"` // median latency (bucket upper bound)
	P99NS int64  `json:"p99_ns"` // p99 latency (bucket upper bound)
}

// NewServer wraps a store; call Start to begin listening.
func NewServer(st *Store, cfg ServerConfig) *Server {
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 5 * time.Millisecond
	}
	if cfg.Window <= 0 {
		cfg.Window = 32
	}
	if cfg.Admission.ReadTokens <= 0 && cfg.MaxInflight > 0 {
		cfg.Admission.ReadTokens = cfg.MaxInflight
	}
	switch cfg.DataPlane {
	case "":
		cfg.DataPlane = DataPlanePool
	case DataPlanePool, DataPlaneGoroutine:
	default:
		panic(fmt.Sprintf("serve: unknown data plane %q", cfg.DataPlane))
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = max(16, 4*runtime.GOMAXPROCS(0))
	}
	if cfg.CursorTimeout == 0 {
		cfg.CursorTimeout = 30 * time.Second
	}
	cfg.Admission = cfg.Admission.withDefaults(st.Shards(), cfg.Window, cfg.RetryAfter)
	s := &Server{
		st:      st,
		cfg:     cfg,
		adm:     newAdmission(cfg.Admission, cfg.Metrics),
		lc:      newLifecycle(cfg.Lifecycle, cfg.Metrics),
		conns:   make(map[net.Conn]struct{}),
		curSets: make(map[*connCursors]struct{}),
	}
	return s
}

// Start binds the listener and launches the accept loop.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.started = time.Now()
	if s.cfg.Batch {
		s.batcher = NewBatcher(s.st, s.cfg.Batcher)
	}
	if s.cfg.DataPlane == DataPlanePool {
		s.pool = newWorkerPool(s.cfg.PoolSize, s.cfg.Metrics)
	}
	if s.cfg.CursorTimeout > 0 {
		s.reaperStop = make(chan struct{})
		s.wg.Add(1)
		go s.reapCursors()
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr reports the bound listen address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// acceptLoop accepts connections until the listener closes.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(c)
	}
}

// Shutdown drains gracefully: stop accepting, let in-flight requests
// finish, then close connections. If the drain exceeds timeout,
// connections are closed forcibly.
func (s *Server) Shutdown(timeout time.Duration) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	// Expire every connection's pending read: idle request loops exit
	// immediately, while requests already executing are unaffected —
	// they finish, write their response, and exit on the next read.
	now := time.Now()
	for c := range s.conns {
		c.SetReadDeadline(now)
	}
	s.mu.Unlock()
	if s.reaperStop != nil {
		close(s.reaperStop)
	}
	err := s.ln.Close()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(timeout):
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		err = errors.Join(err, fmt.Errorf("serve: shutdown forced after %v", timeout))
	}
	if s.pool != nil {
		s.pool.close()
	}
	if s.batcher != nil {
		s.batcher.Close()
	}
	err = errors.Join(err, s.lc.closeTrace())
	return err
}

// serveConn runs the request loop of one connection. It starts in
// protocol v1 (one request, one response, in order); a HELLO as the
// first request negotiating version >= 2 hands the connection to
// servePipelined (PROTOCOL.md §3).
func (s *Server) serveConn(c net.Conn) {
	defer s.wg.Done()
	defer func() {
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()
	cs := s.registerCursors()
	defer s.releaseCursors(cs)
	var in, out []byte
	var connID uint64
	if s.lc != nil {
		connID = s.lc.nextConn()
	}
	first := true
	for {
		var readStart int64
		if s.lc != nil {
			readStart = obs.Nanotime()
		}
		frame, err := ReadFrame(c, in)
		if err != nil {
			return // EOF, peer reset, or shutdown read deadline
		}
		in = frame
		arrived := time.Now()
		var sp *obs.Span
		if s.lc != nil {
			sp = s.lc.span(connID)
			// Frame-read time includes client think time and is kept
			// out of the server-side total (stage.go).
			sp.Add(obs.StageRead, sp.StartNS()-readStart)
		}
		req, err := DecodeRequest(frame)
		if sp != nil {
			sp.Mark(obs.StageDecode)
		}
		var resp *Response
		switch {
		case err != nil:
			s.badReqs.Add(1)
			resp = &Response{Status: StatusErr, Err: err.Error()}
		case req.Op == OpHello:
			s.ops[OpHello].Add(1)
			if first && req.MaxVersion >= ProtoV2 {
				// Upgrade: ack version 2, then switch framing.
				s.lc.drop(sp)
				ack := &Response{Status: StatusOK, Version: ProtoV2, Window: uint32(s.cfg.Window)}
				payload, _ := AppendResponse(out[:0], ack)
				if err := WriteFrame(c, payload); err != nil {
					return
				}
				s.pipeline.Add(1)
				s.servePipelined(c, connID, cs)
				return
			}
			// A v1-only peer, or a HELLO after traffic already flowed:
			// stay on (or renegotiate down to) version 1.
			resp = &Response{Status: StatusOK, Version: ProtoV1, Window: 1}
		default:
			resp = s.handle(req, arrived, sp, cs)
		}
		first = false
		payload, err := AppendResponse(out[:0], resp)
		if err != nil { // response exceeded wire bounds; report instead
			payload, _ = AppendResponse(out[:0], &Response{Status: StatusErr, Err: err.Error()})
		}
		out = payload
		if err := WriteFrame(c, payload); err != nil {
			s.lc.drop(sp)
			return
		}
		if sp != nil {
			sp.Mark(obs.StageWrite)
			s.lc.finish(sp)
		}
	}
}

// completed is one finished request on its way to a connection's
// writer goroutine: the response, the v2 request ID it answers, and
// the request's lifecycle span.
type completed struct {
	id   uint32
	resp *Response
	sp   *obs.Span
}

// connWriter serializes one connection's response frames. Responses
// buffer through bw and flush only when no further completion is
// waiting, so consecutive responses coalesce into one write syscall
// under load (the flush cost lands on the request that triggered it).
// On a write error it drains out until closed so producers never
// block against a dead connection.
func (s *Server) connWriter(c net.Conn, out <-chan completed, writerDone chan<- struct{}) {
	defer close(writerDone)
	bw := bufio.NewWriter(c)
	var buf []byte
	for d := range out {
		if d.sp != nil {
			d.sp.Mark(obs.StageRespQueue)
		}
		payload, err := AppendResponseV2(buf[:0], d.id, d.resp)
		if err != nil { // response exceeded wire bounds; report instead
			payload, _ = AppendResponseV2(buf[:0], d.id, &Response{Status: StatusErr, Err: err.Error()})
		}
		buf = payload
		if err := WriteFrame(bw, payload); err != nil {
			s.lc.drop(d.sp)
			for d := range out {
				s.lc.drop(d.sp)
			}
			return
		}
		if len(out) == 0 {
			if err := bw.Flush(); err != nil {
				s.lc.drop(d.sp)
				for d := range out {
					s.lc.drop(d.sp)
				}
				return
			}
		}
		if d.sp != nil {
			d.sp.Mark(obs.StageWrite)
			s.lc.finish(d.sp)
		}
	}
	bw.Flush()
}

// servePipelined runs the protocol-v2 loop: read ahead up to Window
// frames, execute them concurrently, and write responses in completion
// order — a slow SCAN no longer blocks the GETs queued behind it. A
// dedicated writer goroutine serializes the response frames
// (connWriter); execution runs on the shared worker pool or, on the
// goroutine plane, one goroutine per in-flight request (DESIGN.md §15).
func (s *Server) servePipelined(c net.Conn, connID uint64, cs *connCursors) {
	out := make(chan completed, s.cfg.Window)
	writerDone := make(chan struct{})
	go s.connWriter(c, out, writerDone)

	// slots bounds this connection's read-ahead: at most Window
	// requests in flight at once, whichever plane executes them.
	slots := make(chan struct{}, s.cfg.Window)
	var in []byte
	for {
		var readStart int64
		if s.lc != nil {
			readStart = obs.Nanotime()
		}
		frame, err := ReadFrame(c, in)
		if err != nil {
			break // EOF, peer reset, or shutdown read deadline
		}
		in = frame
		arrived := time.Now()
		if len(frame) < 4 {
			break // no ID to answer with: connection-fatal (PROTOCOL.md §5)
		}
		id, req, err := DecodeRequestV2(frame)
		if err != nil {
			s.badReqs.Add(1)
			out <- completed{id, &Response{Status: StatusErr, Err: err.Error()}, nil}
			continue
		}
		if req.Op == OpHello { // renegotiation is not allowed mid-stream
			s.ops[OpHello].Add(1)
			out <- completed{id, &Response{Status: StatusOK, Version: ProtoV2, Window: uint32(s.cfg.Window)}, nil}
			continue
		}
		var sp *obs.Span
		if s.lc != nil {
			sp = s.lc.span(connID)
			sp.Req = id
			sp.Add(obs.StageRead, sp.StartNS()-readStart)
			sp.Mark(obs.StageDecode)
		}
		// Decode already copied the frame, so the read buffer is free
		// to reuse; the slot wait (and, on the pool plane, the queue
		// wait for a worker) is attributed to the admission stage by
		// handle's first Mark.
		slots <- struct{}{}
		if s.pool != nil {
			s.pool.submit(poolTask{s: s, id: id, req: req, arrived: arrived, sp: sp, cs: cs, out: out, slot: slots})
		} else {
			go func(id uint32, req *Request, arrived time.Time, sp *obs.Span) {
				out <- completed{id, s.handle(req, arrived, sp, cs), sp}
				<-slots
			}(id, req, arrived, sp)
		}
	}
	// Reclaim every slot: this blocks until all in-flight requests of
	// this connection have completed and released theirs, whichever
	// plane ran them — only then is out safe to close.
	for i := 0; i < s.cfg.Window; i++ {
		slots <- struct{}{}
	}
	close(out)
	<-writerDone
}

// handle admits and executes one decoded request. sp may be nil
// (lifecycle tracing off); rejected and expired requests leave the
// span's Op at OpNone so it is dropped unobserved. cs is the owning
// connection's streaming-scan cursor set.
func (s *Server) handle(req *Request, arrived time.Time, sp *obs.Span, cs *connCursors) *Response {
	// Admission: take the class's tokens or reject with its retry hint.
	release, retryAfter, ok := s.adm.admit(req)
	if sp != nil {
		sp.Mark(obs.StageAdmission)
	}
	if !ok {
		s.rejected.Add(1)
		return &Response{Status: StatusRetry, RetryAfterMS: uint32(retryAfter / time.Millisecond)}
	}
	defer release()
	// Deadline: don't burn work on an answer the client has abandoned.
	if req.DeadlineMS != 0 && time.Since(arrived) > time.Duration(req.DeadlineMS)*time.Millisecond {
		s.expired.Add(1)
		return &Response{Status: StatusDeadline}
	}
	s.ops[req.Op].Add(1)
	if s.cfg.Metrics != nil && req.Op != OpReplicate {
		defer s.cfg.Metrics.Time(metricOpOf(req.Op))()
	}
	if sp != nil && req.Op != OpStats && req.Op != OpReplicate {
		sp.Op = metricOpOf(req.Op)
	}
	return s.execute(req, sp, cs)
}

// metricOpOf maps wire ops onto the index-operation metrics. The
// streaming-scan ops record as OpScan: each SCANNEXT is one scan-class
// unit of work in the histograms.
func metricOpOf(op Op) core.OpKind {
	switch op {
	case OpScan, OpScanOpen, OpScanNext, OpScanClose:
		return core.OpScan
	case OpPut:
		return core.OpInsert
	case OpDel:
		return core.OpDelete
	default:
		return core.OpSearch
	}
}

// execute runs a decoded, admitted request against the store. Read
// ops mark StageBatchWait/StageExec themselves; write ops are stamped
// by the shard writers (queue_wait, wal_append, wal_fsync, apply) via
// the span handed into the store, so execute only advances the clock
// past the blocking call with Touch.
func (s *Server) execute(req *Request, sp *obs.Span, cs *connCursors) *Response {
	switch req.Op {
	case OpGet:
		var l Lookup
		if s.batcher != nil {
			l = s.batcher.Get(req.Keys[0])
			if sp != nil {
				sp.Mark(obs.StageBatchWait)
			}
		} else {
			tid, ok := s.st.Get(req.Keys[0])
			l = Lookup{TID: tid, Found: ok}
			if sp != nil {
				sp.Mark(obs.StageExec)
			}
		}
		if !l.Found {
			return &Response{Status: StatusNotFound}
		}
		return &Response{Status: StatusOK, Lookups: []Lookup{l}}
	case OpMGet:
		out := make([]Lookup, len(req.Keys))
		s.st.MGet(req.Keys, out)
		if sp != nil {
			sp.Mark(obs.StageExec)
		}
		return &Response{Status: StatusOK, Lookups: out}
	case OpScan:
		pairs := s.st.Scan(req.Start, req.End, int(req.Limit))
		if pairs == nil {
			pairs = []core.Pair{}
		}
		if sp != nil {
			sp.Mark(obs.StageExec)
		}
		return &Response{Status: StatusOK, Pairs: pairs}
	case OpScanOpen, OpScanNext, OpScanClose:
		resp := s.executeScan(req, cs)
		if sp != nil {
			sp.Mark(obs.StageExec)
		}
		return resp
	case OpPut:
		var callStart, stamped0 int64
		if sp != nil {
			callStart, stamped0 = obs.Nanotime(), sp.StoreStagesNS()
		}
		err := s.st.putBatch(req.Pairs, sp)
		if sp != nil {
			// The shard writers stamped queue/WAL/apply via Add; fold
			// the unstamped residual of the blocking call (partition
			// setup, ack wakeup latency) into apply and advance the
			// clock past it.
			residual := obs.Nanotime() - callStart - (sp.StoreStagesNS() - stamped0)
			sp.Add(obs.StageApply, residual)
			sp.Touch()
		}
		if errResp := s.writeResult(err); errResp != nil {
			if sp != nil {
				sp.Op = core.OpNone // rejected/failed: drop unobserved
			}
			return errResp
		}
		return &Response{Status: StatusOK}
	case OpDel:
		var callStart, stamped0 int64
		if sp != nil {
			callStart, stamped0 = obs.Nanotime(), sp.StoreStagesNS()
		}
		var first error
		for _, k := range req.Keys {
			if err := s.st.delete(k, sp); err != nil && first == nil {
				first = err
			}
		}
		if sp != nil {
			residual := obs.Nanotime() - callStart - (sp.StoreStagesNS() - stamped0)
			sp.Add(obs.StageApply, residual)
			sp.Touch()
		}
		if errResp := s.writeResult(first); errResp != nil {
			if sp != nil {
				sp.Op = core.OpNone
			}
			return errResp
		}
		return &Response{Status: StatusOK}
	case OpStats:
		blob, err := json.Marshal(s.statsLocked())
		if err != nil {
			return &Response{Status: StatusErr, Err: err.Error()}
		}
		return &Response{Status: StatusOK, Stats: blob}
	case OpReplicate:
		if s.cfg.Repl == nil {
			return &Response{Status: StatusErr, Err: "serve: replication not configured"}
		}
		if req.Repl == nil {
			return &Response{Status: StatusErr, Err: "serve: REPLICATE without payload"}
		}
		return s.cfg.Repl.HandleReplicate(req.Repl)
	}
	return &Response{Status: StatusErr, Err: fmt.Sprintf("serve: unhandled op %s", req.Op)}
}

// writeResult maps store write errors onto wire statuses: overload
// becomes a retryable rejection with the write class's hint,
// everything else an error.
func (s *Server) writeResult(err error) *Response {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrOverloaded):
		s.rejected.Add(1)
		retry := s.cfg.Admission.RetryAfterWrite
		if retry <= 0 {
			retry = s.cfg.RetryAfter
		}
		return &Response{Status: StatusRetry, RetryAfterMS: uint32(retry / time.Millisecond)}
	default:
		return &Response{Status: StatusErr, Err: err.Error()}
	}
}

// Stats assembles the same payload a STATS request returns — the
// admin plane's /statsz endpoint and in-process monitors use it
// without a wire round trip.
func (s *Server) Stats() ServerStats { return s.statsLocked() }

// statsLocked assembles the STATS payload.
func (s *Server) statsLocked() ServerStats {
	s.mu.Lock()
	nconns := len(s.conns)
	s.mu.Unlock()
	ops := make(map[string]uint64, numOps)
	for op := OpGet; op <= OpScanClose; op++ {
		if n := s.ops[op].Load(); n > 0 {
			ops[op.String()] = n
		}
	}
	poolSize := 0
	if s.cfg.DataPlane == DataPlanePool {
		poolSize = s.cfg.PoolSize
	}
	return ServerStats{
		UptimeMS:    time.Since(s.started).Milliseconds(),
		Ops:         ops,
		Rejected:    s.rejected.Load(),
		Expired:     s.expired.Load(),
		BadReqs:     s.badReqs.Load(),
		Conns:       nconns,
		Pipelined:   s.pipeline.Load(),
		Window:      s.cfg.Window,
		DataPlane:   s.cfg.DataPlane,
		PoolSize:    poolSize,
		Cursors:     s.cursorStats(),
		Budgets:     s.adm.stats(),
		Store:       s.st.Stats(),
		BatchGets:   s.batcher != nil,
		Stages:      s.stageStats(),
		StageTotals: s.stageTotalStats(),
	}
}

// stageStatsOf condenses one lifecycle histogram snapshot.
func stageStatsOf(h obs.HistogramSnapshot) StageStats {
	return StageStats{
		Count: h.Count,
		SumNS: int64(h.SumNS),
		P50NS: int64(h.Quantile(0.50)),
		P99NS: int64(h.Quantile(0.99)),
	}
}

// stageStats collects the per-stage attribution tables for STATS.
// Always non-nil: the loadgen report round-trips the payload and the
// reproducibility guarantee forbids fields that vanish when empty.
func (s *Server) stageStats() map[string]map[string]StageStats {
	out := make(map[string]map[string]StageStats)
	if s.cfg.Metrics == nil {
		return out
	}
	for _, op := range []core.OpKind{core.OpSearch, core.OpInsert, core.OpDelete, core.OpScan} {
		var table map[string]StageStats
		for _, st := range obs.Stages() {
			snap := s.cfg.Metrics.StageSnapshot(op, st)
			if snap.Count == 0 {
				continue
			}
			if table == nil {
				table = make(map[string]StageStats)
			}
			table[st.String()] = stageStatsOf(snap)
		}
		if table != nil {
			out[op.String()] = table
		}
	}
	return out
}

// stageTotalStats collects each op class's end-to-end server-side
// latency histogram for STATS. Always non-nil.
func (s *Server) stageTotalStats() map[string]StageStats {
	out := make(map[string]StageStats)
	if s.cfg.Metrics == nil {
		return out
	}
	for _, op := range []core.OpKind{core.OpSearch, core.OpInsert, core.OpDelete, core.OpScan} {
		if snap := s.cfg.Metrics.StageTotalSnapshot(op); snap.Count > 0 {
			out[op.String()] = stageStatsOf(snap)
		}
	}
	return out
}

package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pbtree/internal/core"
	"pbtree/internal/obs"
)

// ServerConfig configures the TCP front end.
type ServerConfig struct {
	// Addr is the listen address, e.g. "127.0.0.1:7070". ":0" picks a
	// free port (see Server.Addr).
	Addr string

	// MaxInflight bounds concurrently executing requests across all
	// connections; excess requests are rejected with StatusRetry and
	// the RetryAfter hint instead of queueing without bound. Zero
	// selects 4x the store's shard count.
	MaxInflight int

	// RetryAfter is the backoff hint sent with StatusRetry. Zero
	// selects 5ms.
	RetryAfter time.Duration

	// Batch enables the cross-request Batcher for GET requests, so
	// concurrent point lookups from different connections merge into
	// group searches.
	Batch bool

	// Batcher tunes the gatherers when Batch is set.
	Batcher BatcherConfig

	// Metrics, when non-nil, records per-operation wall-clock
	// latencies (GET/MGET as OpSearch, SCAN as OpScan, PUT as
	// OpInsert, DEL as OpDelete).
	Metrics *obs.Metrics
}

// Server serves a Store over TCP with the wire protocol of wire.go.
type Server struct {
	st  *Store
	cfg ServerConfig

	ln      net.Listener
	batcher *Batcher
	sem     chan struct{} // in-flight budget

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	wg      sync.WaitGroup
	started time.Time

	// Serving counters, exposed via STATS.
	ops      [7]atomic.Uint64 // indexed by Op
	rejected atomic.Uint64
	expired  atomic.Uint64
	badReqs  atomic.Uint64
}

// ServerStats is the JSON payload of a STATS response.
type ServerStats struct {
	UptimeMS  int64             `json:"uptime_ms"`
	Ops       map[string]uint64 `json:"ops"`
	Rejected  uint64            `json:"rejected"`
	Expired   uint64            `json:"expired"`
	BadReqs   uint64            `json:"bad_requests"`
	Conns     int               `json:"conns"`
	Inflight  int               `json:"inflight"`
	MaxInflt  int               `json:"max_inflight"`
	Store     StoreStats        `json:"store"`
	BatchGets bool              `json:"batch_gets"`
}

// NewServer wraps a store; call Start to begin listening.
func NewServer(st *Store, cfg ServerConfig) *Server {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 4 * st.Shards()
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 5 * time.Millisecond
	}
	s := &Server{
		st:    st,
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.MaxInflight),
		conns: make(map[net.Conn]struct{}),
	}
	return s
}

// Start binds the listener and launches the accept loop.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.started = time.Now()
	if s.cfg.Batch {
		s.batcher = NewBatcher(s.st, s.cfg.Batcher)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr reports the bound listen address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// acceptLoop accepts connections until the listener closes.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(c)
	}
}

// Shutdown drains gracefully: stop accepting, let in-flight requests
// finish, then close connections. If the drain exceeds timeout,
// connections are closed forcibly.
func (s *Server) Shutdown(timeout time.Duration) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	// Expire every connection's pending read: idle request loops exit
	// immediately, while requests already executing are unaffected —
	// they finish, write their response, and exit on the next read.
	now := time.Now()
	for c := range s.conns {
		c.SetReadDeadline(now)
	}
	s.mu.Unlock()
	err := s.ln.Close()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(timeout):
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		err = errors.Join(err, fmt.Errorf("serve: shutdown forced after %v", timeout))
	}
	if s.batcher != nil {
		s.batcher.Close()
	}
	return err
}

// serveConn runs the request loop of one connection.
func (s *Server) serveConn(c net.Conn) {
	defer s.wg.Done()
	defer func() {
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()
	var in, out []byte
	for {
		frame, err := ReadFrame(c, in)
		if err != nil {
			return // EOF, peer reset, or shutdown read deadline
		}
		in = frame
		arrived := time.Now()
		resp := s.handle(frame, arrived)
		payload, err := AppendResponse(out[:0], resp)
		if err != nil { // response exceeded wire bounds; report instead
			payload, _ = AppendResponse(out[:0], &Response{Status: StatusErr, Err: err.Error()})
		}
		out = payload
		if err := WriteFrame(c, payload); err != nil {
			return
		}
	}
}

// handle decodes and executes one request frame.
func (s *Server) handle(frame []byte, arrived time.Time) *Response {
	req, err := DecodeRequest(frame)
	if err != nil {
		s.badReqs.Add(1)
		return &Response{Status: StatusErr, Err: err.Error()}
	}
	// Admission: take an in-flight slot or reject with a retry hint.
	select {
	case s.sem <- struct{}{}:
	default:
		s.rejected.Add(1)
		return &Response{Status: StatusRetry, RetryAfterMS: uint32(s.cfg.RetryAfter / time.Millisecond)}
	}
	defer func() { <-s.sem }()
	// Deadline: if admission waited past the request's budget, don't
	// burn work on an answer the client has abandoned.
	if req.DeadlineMS != 0 && time.Since(arrived) > time.Duration(req.DeadlineMS)*time.Millisecond {
		s.expired.Add(1)
		return &Response{Status: StatusDeadline}
	}
	s.ops[req.Op].Add(1)
	if s.cfg.Metrics != nil {
		defer s.cfg.Metrics.Time(metricOpOf(req.Op))()
	}
	return s.execute(req)
}

// metricOpOf maps wire ops onto the index-operation metrics.
func metricOpOf(op Op) core.OpKind {
	switch op {
	case OpScan:
		return core.OpScan
	case OpPut:
		return core.OpInsert
	case OpDel:
		return core.OpDelete
	default:
		return core.OpSearch
	}
}

// execute runs a decoded, admitted request against the store.
func (s *Server) execute(req *Request) *Response {
	switch req.Op {
	case OpGet:
		var l Lookup
		if s.batcher != nil {
			l = s.batcher.Get(req.Keys[0])
		} else {
			tid, ok := s.st.Get(req.Keys[0])
			l = Lookup{TID: tid, Found: ok}
		}
		if !l.Found {
			return &Response{Status: StatusNotFound}
		}
		return &Response{Status: StatusOK, Lookups: []Lookup{l}}
	case OpMGet:
		out := make([]Lookup, len(req.Keys))
		s.st.MGet(req.Keys, out)
		return &Response{Status: StatusOK, Lookups: out}
	case OpScan:
		pairs := s.st.Scan(req.Start, req.End, int(req.Limit))
		if pairs == nil {
			pairs = []core.Pair{}
		}
		return &Response{Status: StatusOK, Pairs: pairs}
	case OpPut:
		if err := s.writeResult(s.st.PutBatch(req.Pairs)); err != nil {
			return err
		}
		return &Response{Status: StatusOK}
	case OpDel:
		var first error
		for _, k := range req.Keys {
			if err := s.st.Delete(k); err != nil && first == nil {
				first = err
			}
		}
		if err := s.writeResult(first); err != nil {
			return err
		}
		return &Response{Status: StatusOK}
	case OpStats:
		blob, err := json.Marshal(s.statsLocked())
		if err != nil {
			return &Response{Status: StatusErr, Err: err.Error()}
		}
		return &Response{Status: StatusOK, Stats: blob}
	}
	return &Response{Status: StatusErr, Err: fmt.Sprintf("serve: unhandled op %s", req.Op)}
}

// writeResult maps store write errors onto wire statuses: overload
// becomes a retryable rejection, everything else an error.
func (s *Server) writeResult(err error) *Response {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrOverloaded):
		s.rejected.Add(1)
		return &Response{Status: StatusRetry, RetryAfterMS: uint32(s.cfg.RetryAfter / time.Millisecond)}
	default:
		return &Response{Status: StatusErr, Err: err.Error()}
	}
}

// statsLocked assembles the STATS payload.
func (s *Server) statsLocked() ServerStats {
	s.mu.Lock()
	nconns := len(s.conns)
	s.mu.Unlock()
	ops := make(map[string]uint64, 6)
	for op := OpGet; op <= OpStats; op++ {
		if n := s.ops[op].Load(); n > 0 {
			ops[op.String()] = n
		}
	}
	return ServerStats{
		UptimeMS:  time.Since(s.started).Milliseconds(),
		Ops:       ops,
		Rejected:  s.rejected.Load(),
		Expired:   s.expired.Load(),
		BadReqs:   s.badReqs.Load(),
		Conns:     nconns,
		Inflight:  len(s.sem),
		MaxInflt:  cap(s.sem),
		Store:     s.st.Stats(),
		BatchGets: s.batcher != nil,
	}
}

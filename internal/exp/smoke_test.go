package exp

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// tinyOptions shrinks everything so the whole suite runs in seconds.
func tinyOptions() Options { return Options{Scale: 0.002, Seed: 1} }

// TestAllExperimentsRun smoke-tests every registered experiment at a
// tiny scale: they must run, produce non-empty tables with consistent
// row widths, and print.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(tinyOptions())
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tb := range tables {
				if tb.ID == "" || tb.Title == "" || len(tb.Columns) == 0 {
					t.Fatalf("malformed table %+v", tb)
				}
				if len(tb.Rows) == 0 {
					t.Fatalf("%s: no rows", tb.ID)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Columns) {
						t.Fatalf("%s: row width %d, want %d", tb.ID, len(row), len(tb.Columns))
					}
				}
				var buf bytes.Buffer
				tb.Fprint(&buf)
				if !strings.Contains(buf.String(), tb.ID) {
					t.Fatalf("%s: print missing id", tb.ID)
				}
			}
		})
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("fig99", tinyOptions()); err == nil {
		t.Fatal("unknown id accepted")
	}
	if _, err := Run("fig2", tinyOptions()); err != nil {
		t.Fatal(err)
	}
}

// TestFigure2ExactCycles pins the paper's 600/900/480 numbers, which
// are scale-independent.
func TestFigure2ExactCycles(t *testing.T) {
	tables := Figure2(tinyOptions())
	want := []string{"600", "900", "480"}
	for i, row := range tables[0].Rows {
		if row[1] != want[i] {
			t.Errorf("row %d: got %s cycles, want %s", i, row[1], want[i])
		}
	}
}

// TestTable3HeightsDecrease verifies wider nodes yield shorter trees
// in every column of Table 3.
func TestTable3HeightsDecrease(t *testing.T) {
	tb := Table3(Options{Scale: 0.01, Seed: 1})[0]
	byName := map[string][]string{}
	for _, row := range tb.Rows {
		byName[row[0]] = row[1:]
	}
	bp := byName["B+tree"]
	p8 := byName["p8B+tree"]
	for i := range bp {
		b, _ := strconv.Atoi(bp[i])
		p, _ := strconv.Atoi(p8[i])
		if p > b {
			t.Errorf("size col %d: p8 height %d > B+ height %d", i, p, b)
		}
	}
}

// TestFigure10Ladder asserts the headline ordering at a small scale:
// for the longest scan row, B+ > p8 > p8e and p8e ~ p8i.
func TestFigure10Ladder(t *testing.T) {
	tables := Figure10(Options{Scale: 0.01, Seed: 1})
	a := tables[0]
	last := a.Rows[len(a.Rows)-1]
	var vals []float64
	for _, cell := range last[1:] {
		var v float64
		if _, err := fmt.Sscan(cell, &v); err != nil {
			t.Fatal(err)
		}
		vals = append(vals, v)
	}
	bplus, p8, p8e, p8i := vals[0], vals[1], vals[2], vals[3]
	if !(bplus > p8 && p8 > p8e) {
		t.Errorf("ladder broken: B+=%v p8=%v p8e=%v", bplus, p8, p8e)
	}
	if r := p8e / p8i; r < 0.8 || r > 1.25 {
		t.Errorf("p8e/p8i = %.2f, want near 1", r)
	}
	if spd := bplus / p8e; spd < 3 {
		t.Errorf("p8e long-scan speedup %.1f too small", spd)
	}
}

// TestExtAblationWins asserts the paper design beats each ablation in
// its column.
func TestExtAblationWins(t *testing.T) {
	tb := ExtAblation(Options{Scale: 0.01, Seed: 1})[0]
	parse := func(s string) float64 {
		var v float64
		if _, err := fmt.Sscan(s, &v); err != nil {
			t.Fatal(err)
		}
		return v
	}
	baseScan := parse(tb.Rows[0][1])
	baseIns := parse(tb.Rows[0][2])
	if noBuf := parse(tb.Rows[1][1]); noBuf <= baseScan {
		t.Errorf("buffer prefetch should help scans: %v vs %v", noBuf, baseScan)
	}
	if packed := parse(tb.Rows[2][2]); packed <= baseIns {
		t.Errorf("even interleaving should help inserts: %v vs %v", packed, baseIns)
	}
}

package exp

import (
	"bytes"
	"reflect"
	"testing"
)

// TestJSONRoundTrip runs a real experiment and pushes its tables
// through the pbench -json encoding and back.
func TestJSONRoundTrip(t *testing.T) {
	tables, err := Run("fig2", tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	rs := RunSet{
		Scale: 0.002, Seed: 1,
		Results: []Result{
			{ID: "fig2", WallSeconds: 0.25, Tables: tables},
			{ID: "fig99", Err: `unknown experiment "fig99"`},
		},
	}

	var buf bytes.Buffer
	if err := rs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, rs) {
		t.Errorf("round trip diverged:\n got %+v\nwant %+v", got, rs)
	}
}

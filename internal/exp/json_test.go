package exp

import (
	"bytes"
	"reflect"
	"testing"
)

// TestJSONRoundTrip runs a real experiment and pushes its tables
// through the pbench -json encoding and back.
func TestJSONRoundTrip(t *testing.T) {
	tables, err := Run("fig2", tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	rs := RunSet{
		Scale: 0.002, Seed: 1,
		Results: []Result{
			{ID: "fig2", WallSeconds: 0.25, Tables: tables},
			{ID: "fig99", Err: `unknown experiment "fig99"`},
		},
	}

	var buf bytes.Buffer
	if err := rs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, rs) {
		t.Errorf("round trip diverged:\n got %+v\nwant %+v", got, rs)
	}
}

// TestJSONNativeRoundTrip checks both halves of the pbench -native
// contract: a RunSet without a native report encodes byte-identically
// to the pre-native format (so pinned goldens cannot shift), and one
// with a report survives the encode/decode round trip.
func TestJSONNativeRoundTrip(t *testing.T) {
	rs := RunSet{Scale: 0.01, Seed: 7}

	var without bytes.Buffer
	if err := rs.WriteJSON(&without); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(without.Bytes(), []byte("native")) {
		t.Errorf("nil native report leaked into JSON:\n%s", without.Bytes())
	}

	rs.Native = &NativeReport{
		GOARCH: "amd64", GOOS: "linux", HardwareStub: true,
		Keys: 1000, Ops: 200, Width: 8,
		Variants: []NativeVariant{
			{Name: "base", NsPerOp: 120.5, PrefetchesPerOp: 3.25},
			{Name: "hw-prefetch", HardwarePrefetch: true, NsPerOp: 101.25,
				PrefetchesPerOp: 3.25, DeltaVsBasePct: -16},
		},
	}
	var buf bytes.Buffer
	if err := rs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, rs) {
		t.Errorf("native round trip diverged:\n got %+v\nwant %+v", got, rs)
	}
}

// TestRunNativeSmall runs the native benchmark at a tiny scale and
// sanity-checks the report: four variants, positive timings, and
// prefetches issued only by the prefetching tree configurations.
func TestRunNativeSmall(t *testing.T) {
	rep, err := RunNative(Options{Scale: 0.001, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Variants) != 4 {
		t.Fatalf("got %d variants, want 4", len(rep.Variants))
	}
	if rep.Variants[0].Name != "base" || rep.Variants[0].DeltaVsBasePct != 0 {
		t.Errorf("baseline variant malformed: %+v", rep.Variants[0])
	}
	for _, v := range rep.Variants {
		if v.NsPerOp <= 0 {
			t.Errorf("%s: ns/op = %v, want > 0", v.Name, v.NsPerOp)
		}
		// Width 8 with Prefetch on always charges prefetch slots; the
		// counted model records them in software and hardware mode alike.
		if v.PrefetchesPerOp <= 0 {
			t.Errorf("%s: prefetches/op = %v, want > 0", v.Name, v.PrefetchesPerOp)
		}
	}
}

package exp

import (
	"encoding/json"
	"io"
)

// Result is the machine-readable outcome of one experiment run.
// Exactly one of Tables and Err is meaningful: a failed experiment
// carries its panic message in Err and no tables.
type Result struct {
	ID          string  `json:"id"`
	WallSeconds float64 `json:"wall_seconds"`
	Tables      []Table `json:"tables,omitempty"`
	Err         string  `json:"error,omitempty"`
}

// RunSet is the top-level JSON document pbench -json emits: the
// options the experiments ran under plus one Result per requested id,
// in request order.
type RunSet struct {
	Scale   float64  `json:"scale"`
	Seed    int64    `json:"seed"`
	Results []Result `json:"results"`
	// Native carries the optional wall-clock report of pbench -native.
	// It is omitted when nil so documents without one — including the
	// pinned goldens — are byte-identical to the pre-native format.
	Native *NativeReport `json:"native,omitempty"`
}

// WriteJSON writes the run set as indented JSON.
func (rs RunSet) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rs)
}

// ReadJSON parses a document written by WriteJSON.
func ReadJSON(r io.Reader) (RunSet, error) {
	var rs RunSet
	err := json.NewDecoder(r).Decode(&rs)
	return rs, err
}

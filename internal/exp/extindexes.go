package exp

import (
	"pbtree/internal/core"
	"pbtree/internal/csstree"
	"pbtree/internal/memsys"
	"pbtree/internal/ttree"
	"pbtree/internal/workload"
)

// ExtIndexes compares the generations of main-memory index structures
// the paper situates itself among (sections 1.2 and 5): the T-Tree
// (Lehman-Carey 1986), the read-only CSS-Tree and the CSB+-Tree
// (Rao-Ross), the B+-Tree, and the prefetching trees. On a modern
// memory system the T-Tree loses badly — one miss per binary level —
// and each cache-conscious step flattens the tree further.
func ExtIndexes(o Options) []Table {
	n := o.keys(3_000_000)
	ops := o.ops(100_000)
	pairs := workload.SortedPairs(n)

	build := []func() index{
		func() index {
			t := ttree.MustNew(ttree.Config{Width: 1, Mem: memsys.Default()})
			for _, k := range workload.DeleteKeys(o.rng(81), n, n) { // all keys, shuffled
				t.Insert(k, core.TID(k))
			}
			return t
		},
		func() index {
			t := csstree.MustNew(csstree.Config{Width: 1, Mem: memsys.Default()})
			if err := t.Bulkload(pairs); err != nil {
				panic(err)
			}
			return t
		},
		func() index { return vBPlus.build(o, memsys.DefaultConfig(), pairs, 1.0) },
		func() index { return vCSB.build(o, memsys.DefaultConfig(), pairs, 1.0) },
		func() index { return vP8.build(o, memsys.DefaultConfig(), pairs, 1.0) },
		func() index { return vP8CSB.build(o, memsys.DefaultConfig(), pairs, 1.0) },
	}

	t := Table{ID: "extindexes",
		Title:   "index-structure generations: searches on 3M keys (scaled)",
		Columns: []string{"index", "levels", "warm (M)", "cold (M)", "cold vs B+"}}

	r := o.rng(82)
	keys := workload.SearchKeys(r, n, ops)
	wk := workload.SearchKeys(r, n, ops/10+1)

	type row struct {
		name       string
		levels     int
		warm, cold uint64
	}
	var rows []row
	var baseCold uint64
	for _, mk := range build {
		idx := mk()
		idx.Mem().ResetStats()
		warmup(idx, wk)
		warm := searchCycles(idx, keys, false)

		idx = mk()
		idx.Mem().ResetStats()
		cold := searchCycles(idx, keys, true)
		if idx.Name() == "B+" {
			baseCold = cold
		}
		rows = append(rows, row{idx.Name(), idx.Height(), warm, cold})
	}
	for _, rw := range rows {
		t.AddRow(rw.name, count(rw.levels), cycles(rw.warm), cycles(rw.cold),
			ratio(100*rw.cold, baseCold)+"%")
	}
	t.Notes = append(t.Notes,
		"section 5: T-Trees lost their crown to B+-Trees as miss latency grew; prefetching flattens further")
	return []Table{t}
}

package exp

import (
	"bytes"
	"os"
	"testing"
)

// goldenFastSubset is the set of experiments cheap enough to regenerate
// on every test run (~2s total at scale 0.1). The remaining ids are
// covered by the full regeneration (make results / PBTREE_GOLDEN_ALL).
var goldenFastSubset = []string{
	"fig1", "fig2", "fig3", "tab3", "fig13", "fig17",
	"extdisk", "extablation", "attr", "mget",
}

// TestGoldenFiguresScale01 regenerates a subset of the paper figures
// and requires their rendered tables to appear byte-identically, in
// registry order, in the committed results_scale0.1.txt. The simulator
// is deterministic for a given seed, so any diff is a behavior change
// in the simulated memory hierarchy or the index structures — exactly
// what must not happen as a side effect of serving-layer work. Set
// PBTREE_GOLDEN_ALL=1 to check every experiment against the whole file
// (~90s).
func TestGoldenFiguresScale01(t *testing.T) {
	golden, err := os.ReadFile("../../results_scale0.1.txt")
	if err != nil {
		t.Fatal(err)
	}
	ids := goldenFastSubset
	all := os.Getenv("PBTREE_GOLDEN_ALL") != ""
	if all {
		ids = nil
		for _, e := range Experiments() {
			ids = append(ids, e.ID)
		}
	}
	opts := DefaultOptions() // scale 0.1, seed 1: what generated the file
	var full bytes.Buffer
	pos := 0
	for _, id := range ids {
		tables, err := Run(id, opts)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		var buf bytes.Buffer
		for _, tb := range tables {
			tb.Fprint(&buf)
		}
		full.Write(buf.Bytes())
		idx := bytes.Index(golden[pos:], buf.Bytes())
		if idx < 0 {
			t.Errorf("%s: regenerated tables do not appear (in order) in results_scale0.1.txt;\nregenerated:\n%s", id, truncateFor(t, buf.Bytes()))
			continue
		}
		pos += idx + buf.Len()
	}
	if all && !t.Failed() && full.Len() != len(golden) {
		t.Errorf("full regeneration is %d bytes, golden file is %d", full.Len(), len(golden))
	}
}

// TestGoldenUnaffectedByHardwarePrefetch pins the PR-9 separation: the
// hardware prefetch stubs are compiled into this test binary, and this
// test actively exercises them (a native run with HardwarePrefetch
// trees issuing real PREFETCHT0/PRFM where the build has a stub) in
// between two regenerations of a simulated figure. Both regenerations
// must be byte-identical to each other and to the committed golden —
// real prefetch instructions are invisible to the simulated hierarchy.
func TestGoldenUnaffectedByHardwarePrefetch(t *testing.T) {
	golden, err := os.ReadFile("../../results_scale0.1.txt")
	if err != nil {
		t.Fatal(err)
	}
	render := func() []byte {
		tables, err := Run("fig2", DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, tb := range tables {
			tb.Fprint(&buf)
		}
		return buf.Bytes()
	}

	before := render()
	if _, err := RunNative(Options{Scale: 0.001, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	after := render()

	if !bytes.Equal(before, after) {
		t.Errorf("fig2 output changed across a hardware-prefetch native run")
	}
	if !bytes.Contains(golden, before) {
		t.Errorf("fig2 output not byte-identical to results_scale0.1.txt;\nregenerated:\n%s", truncateFor(t, before))
	}
}

// truncateFor bounds a failure dump to something readable.
func truncateFor(t *testing.T, b []byte) []byte {
	t.Helper()
	if len(b) > 2048 {
		return append(append([]byte(nil), b[:2048]...), []byte("... (truncated)")...)
	}
	return b
}

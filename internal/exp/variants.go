package exp

import (
	"fmt"

	"pbtree/internal/core"
	"pbtree/internal/csbtree"
	"pbtree/internal/memsys"
)

// index is the operation surface shared by core.Tree and csbtree.Tree
// that the search experiments need.
type index interface {
	Name() string
	Mem() memsys.Model
	Height() int
	Search(core.Key) (core.TID, bool)
	SpaceUsed() uint64
}

// variant names one tree configuration of the paper and knows how to
// build it, bulkloaded, on a fresh hierarchy.
type variant struct {
	name  string
	build func(o Options, mcfg memsys.Config, pairs []core.Pair, fill float64) index
}

// coreVariant builds a pB+-Tree variant.
func coreVariant(name string, cfg core.Config) variant {
	return variant{name: name, build: func(o Options, mcfg memsys.Config, pairs []core.Pair, fill float64) index {
		c := cfg
		c.Mem = o.hier(mcfg)
		c.Trace = o.Trace
		t := core.MustNew(c)
		if err := t.Bulkload(pairs, fill); err != nil {
			panic(fmt.Sprintf("bulkload %s: %v", name, err))
		}
		t.Mem().ResetStats()
		return t
	}}
}

// csbVariant builds a CSB+-Tree variant.
func csbVariant(name string, cfg csbtree.Config) variant {
	return variant{name: name, build: func(o Options, mcfg memsys.Config, pairs []core.Pair, fill float64) index {
		c := cfg
		c.Mem = o.hier(mcfg)
		t := csbtree.MustNew(c)
		if err := t.Bulkload(pairs, fill); err != nil {
			panic(fmt.Sprintf("bulkload %s: %v", name, err))
		}
		t.Mem().ResetStats()
		return t
	}}
}

// The paper's tree lineup.
var (
	vBPlus = coreVariant("B+tree", core.Config{Width: 1})
	vCSB   = csbVariant("CSB+", csbtree.Config{Width: 1})
	vP2    = coreVariant("p2B+tree", core.Config{Width: 2, Prefetch: true})
	vP4    = coreVariant("p4B+tree", core.Config{Width: 4, Prefetch: true})
	vP8    = coreVariant("p8B+tree", core.Config{Width: 8, Prefetch: true})
	vP16   = coreVariant("p16B+tree", core.Config{Width: 16, Prefetch: true})
	vP8CSB = csbVariant("p8CSB+", csbtree.Config{Width: 8, Prefetch: true})
	vP8E   = coreVariant("p8eB+tree", core.Config{Width: 8, Prefetch: true, JumpArray: core.JumpExternal})
	vP8I   = coreVariant("p8iB+tree", core.Config{Width: 8, Prefetch: true, JumpArray: core.JumpInternal})
	vWide8 = coreVariant("w8-noprefetch", core.Config{Width: 8})
)

// searchLineup is the Figure 7/8 variant set.
var searchLineup = []variant{vBPlus, vCSB, vP2, vP4, vP8, vP16, vP8CSB}

// scanLineup is the Figure 10/11/15 variant set (core trees only,
// since CSB+ implements no scans).
var scanLineup = []variant{vBPlus, vP8, vP8E, vP8I}

// pWidth builds a p^wB+-Tree variant for the sensitivity sweeps.
func pWidth(w int) variant {
	return coreVariant(fmt.Sprintf("p%dB+tree", w), core.Config{Width: w, Prefetch: true})
}

// scanTree builds a *core.Tree directly (the scan experiments need the
// Scanner API, which the index interface does not carry).
func scanTree(o Options, cfg core.Config, mcfg memsys.Config, pairs []core.Pair, fill float64) *core.Tree {
	cfg.Mem = o.hier(mcfg)
	cfg.Trace = o.Trace
	t := core.MustNew(cfg)
	if err := t.Bulkload(pairs, fill); err != nil {
		panic(err)
	}
	t.Mem().ResetStats()
	return t
}

// scanConfigs are the core.Config values behind scanLineup, used where
// the concrete tree type is required.
var scanConfigs = map[string]core.Config{
	"B+tree":    {Width: 1},
	"p8B+tree":  {Width: 8, Prefetch: true},
	"p8eB+tree": {Width: 8, Prefetch: true, JumpArray: core.JumpExternal},
	"p8iB+tree": {Width: 8, Prefetch: true, JumpArray: core.JumpInternal},
}

// scanOrder fixes the presentation order of scanConfigs.
var scanOrder = []string{"B+tree", "p8B+tree", "p8eB+tree", "p8iB+tree"}

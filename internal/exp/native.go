package exp

// Native wall-clock measurement: unlike every other experiment in this
// package, RunNative times real hardware, not the simulated hierarchy.
// It runs the serving layer's point-lookup shape (bulkloaded tree,
// uniform random probes) on the zero-cost native model across the four
// combinations of hardware prefetch x branchless intra-node search,
// reporting ns/op and — from a separate counted pass — the prefetch
// instructions issued per lookup.
//
// Numbers are machine-dependent by design; pbench attaches them to the
// RunSet under a separate "native" key so the simulated experiment
// output (and the goldens pinned on it) is byte-identical whether or
// not a native report rides along.

import (
	"fmt"
	"runtime"
	"time"

	"pbtree/internal/core"
	"pbtree/internal/memsys"
	"pbtree/internal/workload"
)

// NativeVariant is one measured configuration of the native benchmark.
type NativeVariant struct {
	Name             string  `json:"name"`
	HardwarePrefetch bool    `json:"hardware_prefetch"`
	Branchless       bool    `json:"branchless"`
	NsPerOp          float64 `json:"ns_per_op"`
	// PrefetchesPerOp counts prefetch instruction slots per lookup
	// (measured on a counted model over the same workload; in hardware
	// mode each is a real PREFETCHT0/PRFM, otherwise a no-op).
	PrefetchesPerOp float64 `json:"prefetches_per_op"`
	// DeltaVsBasePct is the ns/op change relative to the first
	// (baseline) variant: negative means faster.
	DeltaVsBasePct float64 `json:"delta_vs_base_pct"`
}

// NativeReport is the wall-clock section pbench -native attaches to a
// RunSet. All fields describe the machine the benchmark actually ran
// on; HardwareStub records whether this build issues real prefetch
// instructions (false on ports without an assembly stub, where the
// hardware-prefetch variants measure pure call overhead).
type NativeReport struct {
	GOARCH       string          `json:"goarch"`
	GOOS         string          `json:"goos"`
	HardwareStub bool            `json:"hardware_stub"`
	Keys         int             `json:"keys"`
	Ops          int             `json:"ops"`
	Width        int             `json:"width"`
	Variants     []NativeVariant `json:"variants"`
}

// nativeCombos are the four measured configurations, baseline first.
var nativeCombos = []struct {
	name           string
	hw, branchless bool
}{
	{"base", false, false},
	{"hw-prefetch", true, false},
	{"branchless", false, true},
	{"hw-prefetch+branchless", true, true},
}

// RunNative measures wall-clock point-lookup latency at the given
// scale (1.0 = the paper's 10M-key tree, 100K probes x 20 rounds).
func RunNative(o Options) (NativeReport, error) {
	rep := NativeReport{
		GOARCH:       runtime.GOARCH,
		GOOS:         runtime.GOOS,
		HardwareStub: memsys.HaveHardwarePrefetch,
		Keys:         o.keys(10_000_000),
		Ops:          o.ops(2_000_000),
		Width:        8,
	}
	pairs := workload.SortedPairs(rep.Keys)
	probes := workload.SearchKeys(o.rng(61), rep.Keys, rep.Ops)

	for _, combo := range nativeCombos {
		cfg := core.Config{
			Width:            rep.Width,
			Prefetch:         true,
			HardwarePrefetch: combo.hw,
			BranchlessSearch: combo.branchless,
		}

		// Timed pass on an uncounted model: charges are pure no-ops (or
		// real prefetch instructions), so the loop runs at hardware speed.
		nsPerOp, err := timeNativeLookups(cfg, memsys.NewNative(memsys.DefaultConfig()), pairs, probes)
		if err != nil {
			return rep, fmt.Errorf("exp: native variant %s: %w", combo.name, err)
		}

		// Counted pass on a fresh model: same tree shape and workload,
		// so the per-op prefetch count is exact, not an estimate.
		counted := memsys.NewNativeCounted(memsys.DefaultConfig())
		if _, err := timeNativeLookups(cfg, counted, pairs, probes); err != nil {
			return rep, fmt.Errorf("exp: native variant %s (counted): %w", combo.name, err)
		}

		v := NativeVariant{
			Name:             combo.name,
			HardwarePrefetch: combo.hw,
			Branchless:       combo.branchless,
			NsPerOp:          nsPerOp,
			PrefetchesPerOp:  float64(counted.NativeStats().Prefetches) / float64(len(probes)),
		}
		if base := rep.Variants; len(base) > 0 && base[0].NsPerOp > 0 {
			v.DeltaVsBasePct = 100 * (nsPerOp - base[0].NsPerOp) / base[0].NsPerOp
		}
		rep.Variants = append(rep.Variants, v)
	}
	return rep, nil
}

// timeNativeLookups bulkloads a tree for cfg on mem, warms it with one
// pass over the probes, then times a second full pass.
func timeNativeLookups(cfg core.Config, mem *memsys.Native, pairs []core.Pair, probes []core.Key) (float64, error) {
	cfg.Mem = mem
	t, err := core.New(cfg)
	if err != nil {
		return 0, err
	}
	if err := t.Bulkload(pairs, 1.0); err != nil {
		return 0, err
	}
	var hits int
	for _, k := range probes { // warmup: page in the tree, settle branch predictors
		if _, ok := t.Search(k); ok {
			hits++
		}
	}
	mem.ResetStats() // counters cover exactly the timed pass (drop bulkload + warmup)
	start := time.Now()
	for _, k := range probes {
		if _, ok := t.Search(k); ok {
			hits++
		}
	}
	elapsed := time.Since(start)
	if hits == 0 {
		return 0, fmt.Errorf("no probe hit the tree (workload bug)")
	}
	return float64(elapsed.Nanoseconds()) / float64(len(probes)), nil
}

// Table formats the report as a text table in the style of the
// simulated experiments.
func (r NativeReport) Table() Table {
	tb := Table{
		ID:      "native",
		Title:   "wall-clock point lookups, hardware prefetch x branchless search",
		Columns: []string{"variant", "ns/op", "prefetches/op", "delta vs base"},
		Notes: []string{
			fmt.Sprintf("%s/%s, hardware prefetch stub compiled: %v", r.GOOS, r.GOARCH, r.HardwareStub),
			fmt.Sprintf("%d keys, %d lookups per variant, width %d", r.Keys, r.Ops, r.Width),
		},
	}
	for i, v := range r.Variants {
		delta := "-"
		if i > 0 {
			delta = fmt.Sprintf("%+.1f%%", v.DeltaVsBasePct)
		}
		tb.AddRow(v.Name, fmt.Sprintf("%.1f", v.NsPerOp),
			fmt.Sprintf("%.1f", v.PrefetchesPerOp), delta)
	}
	return tb
}

package exp

import (
	"bytes"
	"testing"

	"pbtree/internal/obs"
)

// renderAll runs the experiment and renders its tables to text — byte
// equality of this output means cycle-count equality of every cell.
func renderAll(t *testing.T, id string, o Options) []byte {
	t.Helper()
	tables, err := Run(id, o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for i := range tables {
		tables[i].Fprint(&buf)
	}
	return buf.Bytes()
}

// TestProbeDoesNotPerturbFigure7 is the observability guarantee of the
// whole probe/tracer design: a fig7-style run produces byte-identical
// tables with and without a collector attached, while the collector
// sees the full event stream.
func TestProbeDoesNotPerturbFigure7(t *testing.T) {
	o := tinyOptions()
	baseline := renderAll(t, "fig7", o)

	col := obs.NewCollector()
	o.Probe = col
	o.Trace = col
	observed := renderAll(t, "fig7", o)

	if !bytes.Equal(baseline, observed) {
		t.Errorf("probe perturbed the simulation:\n--- without probe ---\n%s\n--- with probe ---\n%s",
			baseline, observed)
	}
	if col.Events() == 0 {
		t.Error("collector attached but saw no events")
	}
	if col.TotalStall() == 0 {
		t.Error("collector attached but attributed no stall cycles")
	}
}

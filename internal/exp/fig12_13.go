package exp

import (
	"fmt"

	"pbtree/internal/core"
	"pbtree/internal/memsys"
	"pbtree/internal/workload"
)

// updateLineup is the Figure 12/13 variant set.
var updateLineup = []string{"B+tree", "p8B+tree", "p8eB+tree", "p8iB+tree"}

// Figure12 reproduces Figure 12: 100K random insertions or deletions
// on a 3M-key tree at bulkload factors 60..100%, warm and cold cache.
func Figure12(o Options) []Table {
	n := o.keys(3_000_000)
	ops := o.ops(100_000)
	pairs := workload.SortedPairs(n)
	cols := []string{"fill"}
	cols = append(cols, updateLineup...)

	mk := func(id, title string) Table {
		return Table{ID: id, Title: title, Columns: cols}
	}
	tables := []Table{
		mk("fig12a", fmt.Sprintf("%d insertions (warm, M cycles)", ops)),
		mk("fig12b", fmt.Sprintf("%d insertions (cold, M cycles)", ops)),
		mk("fig12c", fmt.Sprintf("%d deletions (warm, M cycles)", ops)),
		mk("fig12d", fmt.Sprintf("%d deletions (cold, M cycles)", ops)),
	}

	for _, fill := range paperFills {
		rows := [4][]string{}
		for i := range rows {
			rows[i] = []string{fmt.Sprintf("%.0f%%", fill*100)}
		}
		for _, name := range updateLineup {
			ikeys := workload.InsertKeys(o.rng(int64(fill*100)), n, ops)
			dkeys := workload.DeleteKeys(o.rng(int64(fill*100)+1), n, ops)
			for mode := 0; mode < 2; mode++ {
				cold := mode == 1
				t := scanTree(o, scanConfigs[name], memsys.DefaultConfig(), pairs, fill)
				rows[mode] = append(rows[mode], cycles(insertCycles(t, ikeys, cold)))
				t = scanTree(o, scanConfigs[name], memsys.DefaultConfig(), pairs, fill)
				rows[2+mode] = append(rows[2+mode], cycles(deleteCycles(t, dkeys, cold)))
			}
		}
		for i := range tables {
			tables[i].AddRow(rows[i]...)
		}
	}
	return tables
}

// Figure13 reproduces Figure 13: (a) the number of insertions causing
// node splits at bulkload factors 60..90%, and (b) the split breakdown
// (no split / one split / more splits) on 100%-full trees.
func Figure13(o Options) []Table {
	n := o.keys(3_000_000)
	ops := o.ops(100_000)
	pairs := workload.SortedPairs(n)

	cols := []string{"fill"}
	cols = append(cols, updateLineup...)
	a := Table{ID: "fig13a",
		Title:   fmt.Sprintf("insertions (of %d) causing node splits", ops),
		Columns: cols}
	for _, fill := range []float64{0.6, 0.7, 0.8, 0.9} {
		row := []string{fmt.Sprintf("%.0f%%", fill*100)}
		for _, name := range updateLineup {
			t := scanTree(o, scanConfigs[name], memsys.DefaultConfig(), pairs, fill)
			t.ResetUpdateStats()
			insertCycles(t, workload.InsertKeys(o.rng(int64(fill*100)), n, ops), false)
			row = append(row, count(int(t.UpdateStats().InsertsWithSplit)))
		}
		a.AddRow(row...)
	}

	b := Table{ID: "fig13b",
		Title:   fmt.Sprintf("split breakdown of %d insertions into 100%%-full trees", ops),
		Columns: []string{"tree", "no split", "one split (leaf only)", "more splits"}}
	for _, name := range updateLineup {
		t := scanTree(o, scanConfigs[name], memsys.DefaultConfig(), pairs, 1.0)
		t.ResetUpdateStats()
		insertCycles(t, workload.InsertKeys(o.rng(99), n, ops), false)
		st := t.UpdateStats()
		none := st.Inserts - st.InsertsWithSplit
		one := st.InsertsWithSplit - st.InsertsWithNLSplit
		b.AddRow(name, count(int(none)), count(int(one)), count(int(st.InsertsWithNLSplit)))
	}
	b.Notes = append(b.Notes,
		"paper: over 40% of B+ insertions cause a non-leaf split at 100% full; far fewer with wide nodes")
	return []Table{a, b}
}

// buildUpdateTree builds one of the update-lineup trees (exported for
// benchmarks).
func buildUpdateTree(o Options, name string, pairs []core.Pair, fill float64) *core.Tree {
	return scanTree(o, scanConfigs[name], memsys.DefaultConfig(), pairs, fill)
}

package exp

import (
	"fmt"

	"pbtree/internal/core"
	"pbtree/internal/memsys"
	"pbtree/internal/workload"
)

// bandwidths are the normalized-bandwidth values of Figure 16(a,b).
var bandwidths = []int{5, 10, 15, 20, 25, 30}

// Figure16 reproduces the sensitivity analysis: (a,b) search time of
// p^wB+-Trees normalized to the B+-Tree while the memory system's
// normalized bandwidth B varies, and (c,d) scan time while the
// prefetching distance k and the chunk size c vary.
func Figure16(o Options) []Table {
	n := o.keys(3_000_000)
	ops := o.ops(100_000)
	pairs := workload.SortedPairs(n)
	widths := []variant{pWidth(2), pWidth(4), pWidth(8), pWidth(16), pWidth(19)}

	cols := []string{"B"}
	for _, v := range widths {
		cols = append(cols, v.name)
	}
	warm := Table{ID: "fig16a", Title: "search vs memory bandwidth, normalized to B+ = 100 (warm)", Columns: cols}
	cold := Table{ID: "fig16b", Title: "search vs memory bandwidth, normalized to B+ = 100 (cold)", Columns: cols}
	for _, b := range bandwidths {
		mcfg := memsys.DefaultConfig().WithBandwidth(b)
		r := o.rng(int64(b))
		keys := workload.SearchKeys(r, n, ops)
		wk := workload.SearchKeys(r, n, ops/10+1)

		base := vBPlus.build(o, mcfg, pairs, 1.0)
		warmup(base, wk)
		baseWarm := searchCycles(base, keys, false)
		base = vBPlus.build(o, mcfg, pairs, 1.0)
		baseCold := searchCycles(base, keys, true)

		wRow := []string{count(b)}
		cRow := []string{count(b)}
		for _, v := range widths {
			ix := v.build(o, mcfg, pairs, 1.0)
			warmup(ix, wk)
			wRow = append(wRow, ratio(100*searchCycles(ix, keys, false), baseWarm))
			ix = v.build(o, mcfg, pairs, 1.0)
			cRow = append(cRow, ratio(100*searchCycles(ix, keys, true), baseCold))
		}
		warm.AddRow(wRow...)
		cold.AddRow(cRow...)
	}
	cold.Notes = append(cold.Notes,
		"paper: larger B favours wider nodes; p8 best at low B, p16/p19 best at B >= 15")

	c := scanParamSweep(o, "fig16c", "scan vs prefetching distance k (p8e, cycles per request)",
		"k", []int{2, 3, 4, 8, 16, 32},
		func(k int) core.Config {
			return core.Config{Width: 8, Prefetch: true, JumpArray: core.JumpExternal, PrefetchDist: k}
		})
	d := scanParamSweep(o, "fig16d", "scan vs chunk size c (p8e, cycles per request)",
		"c", []int{2, 4, 8, 16, 32},
		func(cl int) core.Config {
			return core.Config{Width: 8, Prefetch: true, JumpArray: core.JumpExternal, ChunkLines: cl}
		})
	return []Table{warm, cold, c, d}
}

// scanParamSweep measures Figure 10(a)-style scans for each value of a
// p8e parameter.
func scanParamSweep(o Options, id, title, param string, values []int, mkCfg func(int) core.Config) Table {
	n := o.keys(3_000_000)
	pairs := workload.SortedPairs(n)
	cols := []string{"tupleIDs"}
	for _, v := range values {
		cols = append(cols, fmt.Sprintf("%s=%d", param, v))
	}
	t := Table{ID: id, Title: title, Columns: cols}
	for _, m := range scanLengths {
		want := m
		if want > n/2 {
			want = n / 2
		}
		row := []string{count(want)}
		for _, v := range values {
			tr := scanTree(o, mkCfg(v), memsys.DefaultConfig(), pairs, 1.0)
			starts := workload.ScanStarts(o.rng(int64(m+v)), n, want, o.starts())
			row = append(row, fmt.Sprint(scanOnceCycles(tr, starts, want)))
		}
		t.AddRow(row...)
	}
	return t
}

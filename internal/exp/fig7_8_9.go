package exp

import (
	"fmt"

	"pbtree/internal/memsys"
	"pbtree/internal/workload"
)

// paperSizes are the leaf-entry counts of Figures 7 and 9.
var paperSizes = []int{10_000, 30_000, 100_000, 300_000, 1_000_000, 3_000_000, 10_000_000}

// paperFills are the bulkload factors of Figures 8 and 10-12.
var paperFills = []float64{0.6, 0.7, 0.8, 0.9, 1.0}

// searchSweep measures warm and cold search time for each variant over
// each tree size at the given fill, returning one table per cache
// mode.
func searchSweep(o Options, idPrefix, title string, vs []variant, sizes []int, fill float64) []Table {
	ops := o.ops(100_000)
	cols := []string{"keys"}
	for _, v := range vs {
		cols = append(cols, v.name)
	}
	warm := Table{ID: idPrefix + "a", Title: title + " (warm cache, M cycles)", Columns: cols}
	cold := Table{ID: idPrefix + "b", Title: title + " (cold cache, M cycles)", Columns: cols}
	for _, n := range sizes {
		wRow := []string{count(n)}
		cRow := []string{count(n)}
		pairs := workload.SortedPairs(n)
		for _, v := range vs {
			r := o.rng(int64(n))
			keys := workload.SearchKeys(r, n, ops)

			ix := v.build(o, memsys.DefaultConfig(), pairs, fill)
			warmup(ix, workload.SearchKeys(r, n, ops/10+1))
			wRow = append(wRow, cycles(searchCycles(ix, keys, false)))

			ix = v.build(o, memsys.DefaultConfig(), pairs, fill)
			cRow = append(cRow, cycles(searchCycles(ix, keys, true)))
		}
		warm.AddRow(wRow...)
		cold.AddRow(cRow...)
	}
	return []Table{warm, cold}
}

// Figure7 reproduces Figure 7: 100K random searches after bulkloading
// 10K..10M keys, warm and cold cache, for the full search lineup.
func Figure7(o Options) []Table {
	sizes := make([]int, len(paperSizes))
	for i, s := range paperSizes {
		sizes[i] = o.keys(s)
	}
	return searchSweep(o, "fig7", "100K searches after bulkload (scaled)", searchLineup, sizes, 1.0)
}

// Table3 reproduces Table 3: the number of levels in each tree of
// Figure 7.
func Table3(o Options) []Table {
	cols := []string{"tree"}
	sizes := make([]int, len(paperSizes))
	for i, s := range paperSizes {
		sizes[i] = o.keys(s)
		cols = append(cols, count(sizes[i]))
	}
	t := Table{ID: "tab3", Title: "number of levels in the trees of Figure 7", Columns: cols}
	for _, v := range searchLineup {
		row := []string{v.name}
		for _, n := range sizes {
			ix := v.build(o, memsys.DefaultConfig(), workload.SortedPairs(n), 1.0)
			row = append(row, count(ix.Height()))
		}
		t.AddRow(row...)
	}
	return []Table{t}
}

// Figure8 reproduces Figure 8: 100K searches after bulkloading 3M keys
// at bulkload factors 60%..100%.
func Figure8(o Options) []Table {
	n := o.keys(3_000_000)
	ops := o.ops(100_000)
	cols := []string{"fill"}
	for _, v := range searchLineup {
		cols = append(cols, v.name)
	}
	warm := Table{ID: "fig8a", Title: "searches vs bulkload factor, 3M keys (warm, M cycles)", Columns: cols}
	cold := Table{ID: "fig8b", Title: "searches vs bulkload factor, 3M keys (cold, M cycles)", Columns: cols}
	pairs := workload.SortedPairs(n)
	for _, fill := range paperFills {
		wRow := []string{fmt.Sprintf("%.0f%%", fill*100)}
		cRow := []string{fmt.Sprintf("%.0f%%", fill*100)}
		for _, v := range searchLineup {
			r := o.rng(int64(fill * 1000))
			keys := workload.SearchKeys(r, n, ops)

			ix := v.build(o, memsys.DefaultConfig(), pairs, fill)
			warmup(ix, workload.SearchKeys(r, n, ops/10+1))
			wRow = append(wRow, cycles(searchCycles(ix, keys, false)))

			ix = v.build(o, memsys.DefaultConfig(), pairs, fill)
			cRow = append(cRow, cycles(searchCycles(ix, keys, true)))
		}
		warm.AddRow(wRow...)
		cold.AddRow(cRow...)
	}
	return []Table{warm, cold}
}

// Figure9 reproduces Figure 9: search performance of the p8B+-Tree
// with and without range-scan prefetching structures (p8e, p8i).
func Figure9(o Options) []Table {
	sizes := make([]int, len(paperSizes))
	for i, s := range paperSizes {
		sizes[i] = o.keys(s)
	}
	return searchSweep(o, "fig9",
		"searches on p8 trees with scan-prefetch structures (scaled)",
		[]variant{vP8, vP8E, vP8I}, sizes, 1.0)
}

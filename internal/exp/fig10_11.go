package exp

import (
	"fmt"

	"pbtree/internal/memsys"
	"pbtree/internal/workload"
)

// scanLengths are the per-request tupleID counts of Figure 10(a).
var scanLengths = []int{10, 100, 1_000, 10_000, 100_000, 1_000_000}

// Figure10 reproduces Figure 10: (a) range scans of 10..1M tupleIDs on
// a 3M-key tree, and (b) 1000-tupleID scans at bulkload factors
// 60..100%. Caches are cleared between scan requests.
func Figure10(o Options) []Table {
	n := o.keys(3_000_000)
	cols := []string{"tupleIDs"}
	cols = append(cols, scanOrder...)
	a := Table{ID: "fig10a", Title: "range scans of m tupleIDs, 3M keys (cycles per request)", Columns: cols}
	pairs := workload.SortedPairs(n)
	for _, m := range scanLengths {
		want := m
		if want > n/2 {
			want = n / 2 // keep the request inside the scaled tree
		}
		row := []string{count(want)}
		for _, name := range scanOrder {
			t := scanTree(o, scanConfigs[name], memsys.DefaultConfig(), pairs, 1.0)
			starts := workload.ScanStarts(o.rng(int64(m)), n, want, o.starts())
			row = append(row, fmt.Sprint(scanOnceCycles(t, starts, want)))
		}
		a.AddRow(row...)
	}
	a.Notes = append(a.Notes,
		"paper: 6.5-8.7x speedup for p8e/p8i at 1K-1M tupleIDs; near parity at 10")

	colsB := []string{"fill"}
	colsB = append(colsB, scanOrder...)
	b := Table{ID: "fig10b", Title: "1000-tupleID scans vs bulkload factor (cycles per request)", Columns: colsB}
	const want = 1000
	for _, fill := range paperFills {
		row := []string{fmt.Sprintf("%.0f%%", fill*100)}
		for _, name := range scanOrder {
			t := scanTree(o, scanConfigs[name], memsys.DefaultConfig(), pairs, fill)
			starts := workload.ScanStarts(o.rng(int64(fill*100)), n, want, o.starts())
			row = append(row, fmt.Sprint(scanOnceCycles(t, starts, want)))
		}
		b.AddRow(row...)
	}
	return []Table{a, b}
}

// Figure11 reproduces Figure 11: large segmented range scans — a
// search for the starting key followed by 1000 scan calls of 1000
// pairs each (1M pairs total), at bulkload factors 60..100%.
func Figure11(o Options) []Table {
	n := o.keys(3_000_000)
	segSize := 1000
	calls := o.ops(1000)
	if calls*segSize > n/2 {
		calls = n / 2 / segSize
		if calls < 1 {
			calls = 1
		}
	}
	cols := []string{"fill"}
	cols = append(cols, scanOrder...)
	t := Table{ID: "fig11",
		Title:   fmt.Sprintf("segmented scans: %d calls x %d pairs (cycles per scan)", calls, segSize),
		Columns: cols}
	pairs := workload.SortedPairs(n)
	for _, fill := range paperFills {
		row := []string{fmt.Sprintf("%.0f%%", fill*100)}
		for _, name := range scanOrder {
			tr := scanTree(o, scanConfigs[name], memsys.DefaultConfig(), pairs, fill)
			starts := workload.ScanStarts(o.rng(int64(fill*10)), n, calls*segSize, o.starts())
			row = append(row, fmt.Sprint(segmentedScanCycles(tr, starts, calls, segSize)))
		}
		t.AddRow(row...)
	}
	return []Table{t}
}

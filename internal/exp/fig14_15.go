package exp

import (
	"fmt"

	"pbtree/internal/memsys"
	"pbtree/internal/workload"
)

// matureOpCounts are the x-axis of Figure 14 (cumulative operation
// counts).
var matureOpCounts = []int{40_000, 80_000, 120_000, 160_000, 200_000}

// Figure14 reproduces Figure 14: up to 200K random searches,
// insertions or deletions on mature trees (bulkload 10% of the keys,
// insert the rest; section 4.5), warm and cold cache. As in the paper
// the curves are cumulative: each point extends the previous one on
// the same tree.
func Figure14(o Options) []Table {
	total := o.keys(4_000_000)
	cols := []string{"operations"}
	cols = append(cols, updateLineup...)
	mk := func(id, title string) Table {
		return Table{ID: id, Title: title + " on mature trees (M cycles, cumulative)", Columns: cols}
	}
	tables := []Table{
		mk("fig14a", "searches (warm)"),
		mk("fig14b", "insertions (warm)"),
		mk("fig14c", "deletions (warm)"),
		mk("fig14d", "searches (cold)"),
		mk("fig14e", "insertions (cold)"),
		mk("fig14f", "deletions (cold)"),
	}
	maxOps := o.ops(matureOpCounts[len(matureOpCounts)-1])

	// cells[tableIdx][point] accumulates per-variant columns.
	cells := make([][][]string, 6)
	for i := range cells {
		cells[i] = make([][]string, len(matureOpCounts))
	}

	for _, name := range updateLineup {
		for mode := 0; mode < 2; mode++ {
			cold := mode == 1
			// One tree per operation type, measured cumulatively.
			searchT := matureTree(o, scanConfigs[name], memsys.DefaultConfig(), o.rng(14), total)
			insertT := matureTree(o, scanConfigs[name], memsys.DefaultConfig(), o.rng(14), total)
			deleteT := matureTree(o, scanConfigs[name], memsys.DefaultConfig(), o.rng(14), total)
			skeys := workload.SearchKeys(o.rng(41), total, maxOps)
			ikeys := workload.InsertKeys(o.rng(42), total, maxOps)
			dkeys := workload.DeleteKeys(o.rng(43), total, maxOps)
			if !cold {
				warmup(searchT, workload.SearchKeys(o.rng(44), total, maxOps/10+1))
			}
			var sSum, iSum, dSum uint64
			prev := 0
			for pt, rawOps := range matureOpCounts {
				ops := o.ops(rawOps)
				if ops > maxOps {
					ops = maxOps
				}
				if ops > prev {
					sSum += searchCycles(searchT, skeys[prev:ops], cold)
					iSum += insertCycles(insertT, ikeys[prev:ops], cold)
					dSum += deleteCycles(deleteT, dkeys[prev:ops], cold)
					prev = ops
				}
				cells[3*mode][pt] = append(cells[3*mode][pt], cycles(sSum))
				cells[3*mode+1][pt] = append(cells[3*mode+1][pt], cycles(iSum))
				cells[3*mode+2][pt] = append(cells[3*mode+2][pt], cycles(dSum))
			}
		}
	}

	for ti := range tables {
		for pt, rawOps := range matureOpCounts {
			row := append([]string{count(o.ops(rawOps))}, cells[ti][pt]...)
			tables[ti].AddRow(row...)
		}
	}
	return tables
}

// Figure15 reproduces Figure 15: range scans on mature trees — (a)
// scans of 10..1M tupleIDs per request and (b) large segmented scans
// (1000 calls x 1000 pairs).
func Figure15(o Options) []Table {
	total := o.keys(4_000_000)
	cols := []string{"tupleIDs"}
	cols = append(cols, scanOrder...)
	a := Table{ID: "fig15a", Title: "scans of m tupleIDs on mature trees (cycles per request)", Columns: cols}
	rows := make(map[int][]string)
	wants := make([]int, 0, len(scanLengths))
	for _, m := range scanLengths {
		want := m
		if want > total/2 {
			want = total / 2
		}
		if _, dup := rows[want]; dup {
			continue // scaled lengths can collide
		}
		wants = append(wants, want)
		rows[want] = []string{count(want)}
	}
	for _, name := range scanOrder {
		// One mature tree per variant, reused across scan lengths.
		t := matureTree(o, scanConfigs[name], memsys.DefaultConfig(), o.rng(15), total)
		for _, want := range wants {
			starts := workload.ScanStarts(o.rng(int64(want)+3), total, want, o.starts())
			rows[want] = append(rows[want], fmt.Sprint(scanOnceCycles(t, starts, want)))
		}
	}
	for _, want := range wants {
		a.AddRow(rows[want]...)
	}

	segSize := 1000
	calls := o.ops(1000)
	if calls*segSize > total/2 {
		calls = total / 2 / segSize
		if calls < 1 {
			calls = 1
		}
	}
	b := Table{ID: "fig15b",
		Title:   fmt.Sprintf("segmented scans on mature trees: %d calls x %d pairs (cycles)", calls, segSize),
		Columns: []string{"tree", "cycles per scan"}}
	for _, name := range scanOrder {
		t := matureTree(o, scanConfigs[name], memsys.DefaultConfig(), o.rng(16), total)
		starts := workload.ScanStarts(o.rng(7), total, calls*segSize, o.starts())
		b.AddRow(name, fmt.Sprint(segmentedScanCycles(t, starts, calls, segSize)))
	}
	b.Notes = append(b.Notes, "paper (fig 15b): B+ 3537, p8 825, p8e 479, p8i 452 M cycles")
	return []Table{a, b}
}

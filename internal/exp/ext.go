package exp

import (
	"fmt"

	"pbtree/internal/core"
	"pbtree/internal/csbtree"
	"pbtree/internal/memsys"
	"pbtree/internal/workload"
)

// This file holds experiments beyond the paper's figures: the
// disk-resident application sketched in sections 5-6, and ablations of
// the design choices DESIGN.md calls out.

// ExtDisk applies the pB+-Tree techniques to a disk-resident index
// (nodes are multiples of 4 KB pages, misses cost disk latency; see
// memsys.DiskConfig). The paper predicts the scan prefetching carries
// over directly and wider-than-page nodes still help searches because
// the disk, too, overlaps transfers.
func ExtDisk(o Options) []Table {
	n := o.keys(10_000_000)
	searches := o.ops(10_000)
	scans := workload.Scaled(20, o.Scale, 3)
	scanLen := o.ops(1_000_000)
	pairs := workload.SortedPairs(n)

	configs := []struct {
		name string
		cfg  core.Config
	}{
		{"B+ (1 page)", core.Config{Width: 1}},
		{"p4B+ (4 pages)", core.Config{Width: 4, Prefetch: true}},
		{"p4eB+ (4 pages + JPA)", core.Config{Width: 4, Prefetch: true, JumpArray: core.JumpExternal}},
	}

	t := Table{ID: "extdisk",
		Title:   fmt.Sprintf("disk-resident index: %d searches / %d scans of %d (M cycles)", searches, scans, scanLen),
		Columns: []string{"tree", "levels", "search (M)", "scan (M)", "search spd", "scan spd"}}
	var baseSearch, baseScan uint64
	for _, c := range configs {
		tr := scanTree(o, c.cfg, memsys.DiskConfig(), pairs, 1.0)
		r := o.rng(51)
		keys := workload.SearchKeys(r, n, searches)
		sCycles := searchCycles(tr, keys, true)

		tr = scanTree(o, c.cfg, memsys.DiskConfig(), pairs, 1.0)
		starts := workload.ScanStarts(o.rng(52), n, scanLen, scans)
		scCycles := scanOnceCycles(tr, starts, scanLen)

		if baseSearch == 0 {
			baseSearch, baseScan = sCycles, scCycles
		}
		t.AddRow(c.name, count(tr.Height()), cycles(sCycles), cycles(scCycles),
			ratio(baseSearch, sCycles)+"x", ratio(baseScan, scCycles)+"x")
	}
	t.Notes = append(t.Notes,
		"section 5: the same techniques hide disk latency; scans gain the most")
	return []Table{t}
}

// ExtCSB reproduces the comparison section 4.5 cites from Rao and
// Ross: insertion on mature trees is slower on CSB+-Trees than on
// B+-Trees (node splits reallocate whole node groups), while
// pB+-Trees are faster than both. The paper quoted the ~25% figure;
// with CSB+ updates implemented here it can be measured.
func ExtCSB(o Options) []Table {
	total := o.keys(4_000_000)
	ops := o.ops(100_000)

	t := Table{ID: "extcsb",
		Title:   fmt.Sprintf("%d insertions into mature trees (M cycles)", ops),
		Columns: []string{"tree", "warm (M)", "cold (M)", "cold vs B+"}}

	bulk, ins := workload.MatureKeys(o.rng(71), total)
	ikeys := workload.InsertKeys(o.rng(72), total, ops)

	type tree interface {
		Insert(core.Key, core.TID) bool
		Mem() memsys.Model
	}
	builders := []struct {
		name string
		make func() tree
	}{
		{"B+tree", func() tree {
			tr := core.MustNew(core.Config{Width: 1, Mem: memsys.Default()})
			if err := tr.Bulkload(bulk, 1.0); err != nil {
				panic(err)
			}
			return tr
		}},
		{"CSB+", func() tree {
			tr := csbtree.MustNew(csbtree.Config{Width: 1, Mem: memsys.Default()})
			if err := tr.Bulkload(bulk, 1.0); err != nil {
				panic(err)
			}
			return tr
		}},
		{"p8B+tree", func() tree {
			tr := core.MustNew(core.Config{Width: 8, Prefetch: true, Mem: memsys.Default()})
			if err := tr.Bulkload(bulk, 1.0); err != nil {
				panic(err)
			}
			return tr
		}},
	}

	var baseCold uint64
	for _, b := range builders {
		run := func(cold bool) uint64 {
			tr := b.make()
			for _, k := range ins {
				tr.Insert(k, core.TID(k))
			}
			mem := tr.Mem()
			start := mem.Now()
			for _, k := range ikeys {
				if cold {
					mem.FlushCaches()
				}
				tr.Insert(k, 1)
			}
			return mem.Now() - start
		}
		warm := run(false)
		cold := run(true)
		if baseCold == 0 {
			baseCold = cold
		}
		t.AddRow(b.name, cycles(warm), cycles(cold), ratio(100*cold, baseCold)+"%")
	}
	t.Notes = append(t.Notes,
		"Rao-Ross (quoted in 4.5): CSB+ insertion up to ~25% worse than B+; pB+ faster than both")
	return []Table{t}
}

// ExtAblation measures the contribution of three pB+-Tree design
// choices by switching each off:
//
//   - prefetching the return buffer during scans (footnote 5);
//   - evenly interleaving empty slots in jump-pointer chunks (3.2);
//   - treating leaf back-pointers as repair-on-use hints rather than
//     eagerly maintained exact pointers (3.2).
func ExtAblation(o Options) []Table {
	n := o.keys(3_000_000)
	pairs := workload.SortedPairs(n)
	scanLen := o.ops(100_000)
	inserts := o.ops(100_000)

	base := core.Config{Width: 8, Prefetch: true, JumpArray: core.JumpExternal}

	scanCost := func(cfg core.Config) uint64 {
		tr := scanTree(o, cfg, memsys.DefaultConfig(), pairs, 1.0)
		starts := workload.ScanStarts(o.rng(61), n, scanLen, o.starts())
		return scanOnceCycles(tr, starts, scanLen)
	}
	insertCost := func(cfg core.Config) uint64 {
		tr := scanTree(o, cfg, memsys.DefaultConfig(), pairs, 1.0)
		return insertCycles(tr, workload.InsertKeys(o.rng(62), n, inserts), false)
	}

	t := Table{ID: "extablation",
		Title:   "ablations of pB+-Tree design choices (p8e, 3M keys)",
		Columns: []string{"configuration", "scan (cycles/req)", "insert (M cycles)"}}

	noBuf := base
	noBuf.Ablation.NoBufferPrefetch = true
	packed := base
	packed.Ablation.PackChunks = true
	exact := base
	exact.Ablation.ExactHints = true

	t.AddRow("paper design", fmt.Sprint(scanCost(base)), cycles(insertCost(base)))
	t.AddRow("no return-buffer prefetch", fmt.Sprint(scanCost(noBuf)), cycles(insertCost(noBuf)))
	t.AddRow("packed chunks (no interleaving)", fmt.Sprint(scanCost(packed)), cycles(insertCost(packed)))
	t.AddRow("exact hints (eager updates)", fmt.Sprint(scanCost(exact)), cycles(insertCost(exact)))
	t.Notes = append(t.Notes,
		"each row disables one design choice; the paper design should win its column")
	return []Table{t}
}

package exp

import (
	"fmt"
	"math/rand"

	"pbtree/internal/core"
	"pbtree/internal/memsys"
	"pbtree/internal/workload"
)

// Options controls experiment sizing and observability.
type Options struct {
	// Scale multiplies the paper's key and operation counts. 1.0 is
	// paper scale; the CLI default is 0.1.
	Scale float64
	// Seed drives all workload generation.
	Seed int64
	// Probe, when non-nil, is attached to every hierarchy an
	// experiment builds (memory-event stream). Observation only:
	// simulated cycle counts are identical with or without it.
	Probe memsys.Probe
	// Trace, when non-nil, is attached to every core tree an
	// experiment builds (operation-context stream). CSB+-Trees carry
	// no tracer; their traffic reaches Probe without node context.
	Trace core.Tracer
}

// DefaultOptions returns the CLI defaults.
func DefaultOptions() Options { return Options{Scale: 0.1, Seed: 1} }

// hier builds a hierarchy with the experiment-wide probe attached.
func (o Options) hier(mcfg memsys.Config) *memsys.Hierarchy {
	h := memsys.New(mcfg)
	h.SetProbe(o.Probe)
	return h
}

func (o Options) rng(offset int64) *rand.Rand {
	return rand.New(rand.NewSource(o.Seed + offset))
}

// keys scales a paper-sized key count (minimum 1000 so trees keep
// multiple levels).
func (o Options) keys(n int) int { return workload.Scaled(n, o.Scale, 1000) }

// ops scales a paper-sized operation count.
func (o Options) ops(n int) int { return workload.Scaled(n, o.Scale, 200) }

// starts scales the paper's 100 random scan starting keys.
func (o Options) starts() int { return workload.Scaled(100, o.Scale, 10) }

// searchCycles runs the given searches and returns simulated cycles.
// cold clears the caches before every search (the paper's cold-cache
// protocol).
func searchCycles(ix index, keys []core.Key, cold bool) uint64 {
	mem := ix.Mem()
	start := mem.Now()
	for _, k := range keys {
		if cold {
			mem.FlushCaches()
		}
		if _, ok := ix.Search(k); !ok {
			panic(fmt.Sprintf("%s: search lost key %d", ix.Name(), k))
		}
	}
	return mem.Now() - start
}

// warmup performs a round of searches without measuring, settling the
// cache contents for warm-cache runs.
func warmup(ix index, keys []core.Key) {
	for _, k := range keys {
		ix.Search(k)
	}
}

// insertCycles runs the insertions and returns simulated cycles.
func insertCycles(t *core.Tree, keys []core.Key, cold bool) uint64 {
	mem := t.Mem()
	start := mem.Now()
	for _, k := range keys {
		if cold {
			mem.FlushCaches()
		}
		t.Insert(k, core.TID(k))
	}
	return mem.Now() - start
}

// deleteCycles runs the deletions and returns simulated cycles.
func deleteCycles(t *core.Tree, keys []core.Key, cold bool) uint64 {
	mem := t.Mem()
	start := mem.Now()
	for _, k := range keys {
		if cold {
			mem.FlushCaches()
		}
		t.Delete(k)
	}
	return mem.Now() - start
}

// scanOnceCycles measures a single scan request of want tupleIDs
// starting at each start key, clearing the caches between requests as
// the paper does, and returns the average cycles per request.
func scanOnceCycles(t *core.Tree, starts []core.Key, want int) uint64 {
	mem := t.Mem()
	var total uint64
	buf := make([]core.TID, want)
	for _, s := range starts {
		mem.FlushCaches()
		before := mem.Now()
		sc := t.NewScan(s, core.MaxKey)
		if got := sc.Next(buf); got != want {
			panic(fmt.Sprintf("%s: scan returned %d of %d", t.Name(), got, want))
		}
		total += mem.Now() - before
	}
	return total / uint64(len(starts))
}

// segmentedScanCycles measures a segmented scan: one search plus calls
// segments of segSize pairs each, returning average cycles per full
// segmented scan.
func segmentedScanCycles(t *core.Tree, starts []core.Key, calls, segSize int) uint64 {
	mem := t.Mem()
	var total uint64
	buf := make([]core.TID, segSize)
	for _, s := range starts {
		mem.FlushCaches()
		before := mem.Now()
		sc := t.NewScan(s, core.MaxKey)
		for c := 0; c < calls; c++ {
			if got := sc.Next(buf); got != segSize {
				panic(fmt.Sprintf("%s: segment returned %d of %d", t.Name(), got, segSize))
			}
		}
		total += mem.Now() - before
	}
	return total / uint64(len(starts))
}

// breakdown captures a busy/stall split over an operation run.
func breakdown(mem memsys.Model, run func()) memsys.Stats {
	before := mem.Stats()
	run()
	return mem.Stats().Sub(before)
}

// matureTree builds a mature core tree per section 4.5: bulkload 10%
// of the keys, insert the rest. Stats are reset afterwards.
func matureTree(o Options, cfg core.Config, mcfg memsys.Config, r *rand.Rand, total int) *core.Tree {
	bulk, inserts := workload.MatureKeys(r, total)
	cfg.Mem = o.hier(mcfg)
	cfg.Trace = o.Trace
	t := core.MustNew(cfg)
	if err := t.Bulkload(bulk, 1.0); err != nil {
		panic(err)
	}
	for _, k := range inserts {
		t.Insert(k, core.TID(k))
	}
	t.Mem().ResetStats()
	t.ResetUpdateStats()
	return t
}

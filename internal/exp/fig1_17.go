package exp

import (
	"pbtree/internal/core"
	"pbtree/internal/memsys"
	"pbtree/internal/workload"
)

// searchBreakdown measures the busy/stall split of warm random
// searches on a freshly bulkloaded tree.
func searchBreakdown(o Options, v variant, n, ops int) memsys.Stats {
	pairs := workload.SortedPairs(n)
	ix := v.build(o, memsys.DefaultConfig(), pairs, 1.0)
	r := o.rng(17)
	warmup(ix, workload.SearchKeys(r, n, ops/10+1))
	keys := workload.SearchKeys(r, n, ops)
	return breakdown(ix.Mem(), func() { searchCycles(ix, keys, false) })
}

// scanBreakdown measures the busy/stall split of cold range scans of
// `want` tupleIDs on a freshly bulkloaded tree.
func scanBreakdown(o Options, cfg core.Config, n, want, starts int) memsys.Stats {
	pairs := workload.SortedPairs(n)
	t := scanTree(o, cfg, memsys.DefaultConfig(), pairs, 1.0)
	r := o.rng(18)
	sk := workload.ScanStarts(r, n, want, starts)
	return breakdown(t.Mem(), func() { scanOnceCycles(t, sk, want) })
}

// breakdownRow appends one bar of a Figure 1/17-style table: absolute
// busy/stall cycles plus the execution time normalized to the
// baseline.
func breakdownRow(t *Table, name string, s memsys.Stats, base uint64) {
	t.AddRow(name, cycles(s.Busy), cycles(s.Stall), percent(s.Stall, s.Total()),
		cycles(s.Total()), ratio(100*s.Total(), base))
}

var breakdownCols = []string{"tree", "busy (M)", "dcache stall (M)", "stall frac", "total (M)", "normalized (%/100)"}

// Figure1 reproduces Figure 1: the execution-time breakdown of B+ and
// CSB+ searches and of B+ range scans, showing that both access
// patterns are dominated by data cache stalls.
func Figure1(o Options) []Table {
	nSearch := o.keys(10_000_000)
	searches := o.ops(100_000)
	search := Table{ID: "fig1-search", Title: "breakdown, 100K warm searches on a 10M-key tree (scaled)",
		Columns: breakdownCols}
	sb := searchBreakdown(o, vBPlus, nSearch, searches)
	base := sb.Total()
	breakdownRow(&search, "B+tree", sb, base)
	breakdownRow(&search, "CSB+", searchBreakdown(o, vCSB, nSearch, searches), base)

	nScan := o.keys(10_000_000)
	want := o.ops(1_000_000)
	scan := Table{ID: "fig1-scan", Title: "breakdown, range scans of 1M tupleIDs (scaled)",
		Columns: breakdownCols}
	cb := scanBreakdown(o, scanConfigs["B+tree"], nScan, want, o.starts())
	breakdownRow(&scan, "B+tree", cb, cb.Total())
	scan.Notes = append(scan.Notes,
		"paper: search loses 65% and scan 84% of execution time to dcache stalls")
	return []Table{search, scan}
}

// Figure17 reproduces Figure 17: the cache-performance breakdown of
// the pB+-Tree variants for index search (a) and range scan (b).
func Figure17(o Options) []Table {
	nSearch := o.keys(10_000_000)
	searches := o.ops(100_000)
	a := Table{ID: "fig17a", Title: "breakdown, search (10M keys, 100K warm searches, scaled)",
		Columns: breakdownCols}
	var base uint64
	for _, v := range []variant{vBPlus, vCSB, vP8, vP8CSB} {
		s := searchBreakdown(o, v, nSearch, searches)
		if base == 0 {
			base = s.Total()
		}
		breakdownRow(&a, v.name, s, base)
	}

	nScan := o.keys(3_000_000)
	want := o.ops(1_000_000)
	b := Table{ID: "fig17b", Title: "breakdown, range scan of 1M tupleIDs (3M keys, scaled)",
		Columns: breakdownCols}
	base = 0
	for _, name := range scanOrder {
		s := scanBreakdown(o, scanConfigs[name], nScan, want, o.starts())
		if base == 0 {
			base = s.Total()
		}
		breakdownRow(&b, name, s, base)
	}
	b.Notes = append(b.Notes,
		"paper: p8e/p8i eliminate ~97% of the scan dcache stall time (8x speedup)")
	return []Table{a, b}
}

package exp

import (
	"testing"
)

// TestMGetGroupBeatsSequential is the headline claim of the serving
// layer's batch executor: executing M lookups as one group-pipelined
// search must expose fewer stall cycles than the same M lookups run
// back-to-back, at every swept batch size.
func TestMGetGroupBeatsSequential(t *testing.T) {
	o := Options{Scale: 0.02, Seed: 1}
	n := o.keys(1_000_000)
	for _, m := range []int{4, 16} {
		seq, grp := mgetMeasure(o, n, 400/m, m, nil)
		if grp.Stall >= seq.Stall {
			t.Fatalf("M=%d: group stall %d not below sequential stall %d", m, grp.Stall, seq.Stall)
		}
		if grp.Total() >= seq.Total() {
			t.Fatalf("M=%d: group total %d not below sequential total %d", m, grp.Total(), seq.Total())
		}
	}
}

// TestMGetExperimentRuns exercises the registered experiment end to
// end, including the attribution table.
func TestMGetExperimentRuns(t *testing.T) {
	tables, err := Run("mget", Options{Scale: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("mget produced %d tables, want 2", len(tables))
	}
	if tables[0].ID != "mget" || len(tables[0].Rows) != 5 {
		t.Fatalf("sweep table: id=%q rows=%d", tables[0].ID, len(tables[0].Rows))
	}
	if tables[1].ID != "mget-attr" || len(tables[1].Rows) == 0 {
		t.Fatalf("attribution table: id=%q rows=%d", tables[1].ID, len(tables[1].Rows))
	}
}

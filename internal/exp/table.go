// Package exp reproduces every table and figure of the paper's
// evaluation (section 4). Each FigureN/TableN function runs the
// corresponding experiment on the simulated memory hierarchy and
// returns text tables with the same rows/series the paper plots.
//
// All experiments accept a scale factor: 1.0 reproduces paper-sized
// workloads (up to 10M keys and 100K operations), smaller values
// shrink both the trees and the operation counts proportionally so the
// whole suite runs in seconds. Shapes (who wins, by what factor, where
// crossovers fall) are stable across scales; absolute cycle counts are
// not comparable to the paper's hardware.
package exp

import (
	"fmt"
	"io"
	"strings"
)

// Table is one reproduced table or figure panel, formatted as text.
type Table struct {
	ID      string     `json:"id"` // e.g. "fig7a"
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint writes the table in aligned plain text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(cell)
			}
			if i == 0 {
				b.WriteString(cell + strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad) + cell)
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	printRow(t.Columns)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// cycles formats a cycle count in millions with three decimals, the
// paper's usual unit ("M cycles").
func cycles(c uint64) string {
	return fmt.Sprintf("%.3f", float64(c)/1e6)
}

// ratio formats a speedup/normalized value.
func ratio(num, den uint64) string {
	if den == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(num)/float64(den))
}

// percent formats part/whole as a percentage.
func percent(part, whole uint64) string {
	if whole == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(whole))
}

// count formats an integer cell.
func count(n int) string { return fmt.Sprintf("%d", n) }

package exp

import (
	"fmt"

	"pbtree/internal/memsys"
)

// Figure2 reproduces the cache-behaviour illustration of Figure 2:
// the cost of a root-to-leaf traversal for (a) four one-line nodes,
// (b) three two-line nodes without prefetching, and (c) three two-line
// nodes with the lines of each node prefetched in parallel. The paper
// quotes 600, 900 and 480 cycles on the ES40 model.
func Figure2(o Options) []Table {
	cfg := memsys.DefaultConfig()
	cfg.PrefetchIssue = 0 // the figure abstracts away issue cost

	run := func(nodes, lines int, prefetch bool) uint64 {
		h := o.hier(cfg)
		for n := 0; n < nodes; n++ {
			base := uint64(n) * 4096
			if prefetch {
				for l := 0; l < lines; l++ {
					h.Prefetch(base + uint64(64*l))
				}
			}
			for l := 0; l < lines; l++ {
				h.Access(base + uint64(64*l))
			}
		}
		return h.Now()
	}

	t := Table{ID: "fig2", Title: "cache behaviour of B+-Tree searches (cycles)",
		Columns: []string{"scenario", "cycles", "paper"}}
	t.AddRow("(a) 4 levels, 1-line nodes", fmt.Sprint(run(4, 1, false)), "600")
	t.AddRow("(b) 3 levels, 2-line nodes, no prefetch", fmt.Sprint(run(3, 2, false)), "900")
	t.AddRow("(c) 3 levels, 2-line nodes, prefetched", fmt.Sprint(run(3, 2, true)), "480")
	return []Table{t}
}

// Figure3 reproduces the range-scan illustration of Figure 3: the cost
// of visiting four leaves' worth of data as (a) four serial one-line
// leaves, (b) two two-line leaves with within-node prefetching, and
// (c) fully pipelined prefetching across leaves.
func Figure3(o Options) []Table {
	cfg := memsys.DefaultConfig()
	cfg.PrefetchIssue = 0

	// (a) four dependent leaf misses.
	a := o.hier(cfg)
	for n := uint64(0); n < 4; n++ {
		a.Access(n * 4096)
	}

	// (b) two 2-line leaves, each prefetched on arrival.
	b := o.hier(cfg)
	for n := uint64(0); n < 2; n++ {
		base := n * 4096
		b.Prefetch(base)
		b.Prefetch(base + 64)
		b.Access(base)
		b.Access(base + 64)
	}

	// (c) all four lines prefetched ahead (jump-pointer style).
	c := o.hier(cfg)
	for n := uint64(0); n < 4; n++ {
		c.Prefetch(n * 4096)
	}
	for n := uint64(0); n < 4; n++ {
		c.Access(n * 4096)
	}

	t := Table{ID: "fig3", Title: "cache behaviour of index range scans (cycles)",
		Columns: []string{"scenario", "cycles", "paper"}}
	t.AddRow("(a) 4 one-line leaves, serial", fmt.Sprint(a.Now()), "600")
	t.AddRow("(b) 2 two-line leaves, node prefetch", fmt.Sprint(b.Now()), "320")
	t.AddRow("(c) prefetching ahead across leaves", fmt.Sprint(c.Now()), "180")
	return []Table{t}
}

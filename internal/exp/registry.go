package exp

import (
	"fmt"
	"sort"
)

// Experiment is a runnable reproduction of one paper table or figure.
type Experiment struct {
	ID    string
	Brief string
	Run   func(Options) []Table
}

// registry maps experiment ids to runners, in paper order.
var registry = []Experiment{
	{"fig1", "execution-time breakdown of B+/CSB+ search and B+ scan", Figure1},
	{"fig2", "timing of serial vs prefetched node fetches (600/900/480 cycles)", Figure2},
	{"fig3", "timing of serial vs prefetched leaf scans", Figure3},
	{"fig7", "searches vs tree size, warm and cold, all variants", Figure7},
	{"tab3", "number of levels in the trees of Figure 7", Table3},
	{"fig8", "searches vs bulkload factor", Figure8},
	{"fig9", "search cost of scan-prefetch structures (p8/p8e/p8i)", Figure9},
	{"fig10", "range scans vs length and bulkload factor", Figure10},
	{"fig11", "large segmented range scans", Figure11},
	{"fig12", "insertions and deletions vs bulkload factor", Figure12},
	{"fig13", "node-split analysis of insertions", Figure13},
	{"fig14", "operations on mature trees", Figure14},
	{"fig15", "range scans on mature trees", Figure15},
	{"fig16", "sensitivity to bandwidth B, prefetch distance k, chunk size c", Figure16},
	{"fig17", "cache-performance breakdown of pB+-Tree variants", Figure17},
	{"extdisk", "extension: disk-resident pB+-Trees (section 5)", ExtDisk},
	{"extablation", "extension: ablations of the design choices", ExtAblation},
	{"extcsb", "extension: CSB+ insertion cost on mature trees (section 4.5)", ExtCSB},
	{"extindexes", "extension: T-Tree/CSS/CSB+/B+/pB+ generations compared", ExtIndexes},
	{"attr", "observability: per-level, per-node-kind miss and stall attribution", Attribution},
	{"mget", "serving: sequential vs group-pipelined batched lookups", MGet},
}

// Experiments returns the registry in paper order.
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// IDs returns the sorted experiment identifiers.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for _, e := range registry {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the experiment with the given id.
func Run(id string, o Options) ([]Table, error) {
	for _, e := range registry {
		if e.ID == id {
			return e.Run(o), nil
		}
	}
	return nil, fmt.Errorf("exp: unknown experiment %q (known: %v)", id, IDs())
}

package exp

import (
	"fmt"

	"pbtree/internal/core"
	"pbtree/internal/memsys"
	"pbtree/internal/obs"
	"pbtree/internal/workload"
)

// Attribution is the observability experiment: it runs a warm search,
// range-scan, insert and delete workload on a B+-Tree and a p8eB+-Tree
// with an obs.Collector attached and reports where the memory traffic
// and stall cycles land — per operation, per tree level, per node kind.
// It is the per-level answer to the paper's Figure 1/17 whole-run
// breakdowns: the aggregate figures say HOW MUCH time is stall, this
// table says WHERE.
func Attribution(o Options) []Table {
	var tables []Table
	for _, name := range []string{"B+tree", "p8eB+tree"} {
		tables = append(tables, attributionFor(o, name))
	}
	return tables
}

func attributionFor(o Options, name string) Table {
	col := obs.NewCollector()
	// Compose with any caller-supplied probe/tracer (e.g. pbench
	// -trace) instead of replacing it.
	o.Probe = memsys.Probes{o.Probe, col}
	o.Trace = core.Tracers{o.Trace, col}

	n := o.keys(1_000_000)
	ops := o.ops(20_000)
	pairs := workload.SortedPairs(n)
	t := scanTree(o, scanConfigs[name], memsys.DefaultConfig(), pairs, 0.8)
	col.Reset() // bulkload traffic is not the story here

	r := o.rng(42)
	warmup(t, workload.SearchKeys(r, n, ops))
	searchCycles(t, workload.SearchKeys(r, n, ops), false)
	scanLen := o.ops(1_000)
	scanOnceCycles(t, workload.ScanStarts(r, n, scanLen, o.starts()), scanLen)
	insertCycles(t, workload.InsertKeys(r, n, ops/4), false)
	deleteCycles(t, workload.DeleteKeys(r, n, ops/4), false)

	stats := t.Mem().Stats()
	tb := Table{
		ID:      "attr-" + name,
		Title:   fmt.Sprintf("%s: stall attribution by op, level, node kind (%d keys)", name, n),
		Columns: []string{"op", "level", "kind", "l1", "l2", "mem", "pf-hit", "stall(M)", "stall%"},
	}
	for _, row := range col.Rows() {
		tb.AddRow(
			row.Op.String(),
			obs.LevelLabel(row.Level),
			row.Kind.String(),
			count(int(row.L1Hits)),
			count(int(row.L2Hits)),
			count(int(row.MemMisses)),
			count(int(row.PFHits)),
			cycles(row.StallCycles),
			percent(row.StallCycles, stats.Stall),
		)
	}
	tb.Notes = append(tb.Notes,
		fmt.Sprintf("levels count from the root; level %d is the leaf level; '-' is outside the tree (jump-pointer chunks, scan buffers)", t.Height()-1),
		fmt.Sprintf("attributed stall %s M of %s M total", cycles(col.TotalStall()), cycles(stats.Stall)),
	)
	return tb
}

package exp

import (
	"fmt"

	"pbtree/internal/core"
	"pbtree/internal/memsys"
	"pbtree/internal/obs"
	"pbtree/internal/workload"
)

// MGet is the serving-layer experiment behind internal/serve's batch
// executor: M independent point lookups executed (a) back-to-back with
// Tree.Search and (b) as one group-pipelined Tree.SearchBatch, which
// advances all M searches level by level and prefetches the whole
// level's nodes before binary-searching any of them. Sequential
// searches expose one full miss chain per lookup; the group overlaps
// the chains the same way the paper's wider nodes overlap the lines of
// one node — prefetching turns M dependent latencies into one latency
// plus M-1 pipelined transfers per level. The table sweeps the batch
// size M; the attribution table locates the surviving stall.
func MGet(o Options) []Table {
	n := o.keys(1_000_000)
	total := o.ops(40_000) // lookups per mode, shared across batch sizes

	t := Table{
		ID:    "mget",
		Title: fmt.Sprintf("batched lookups on a p8B+tree: %d sequential vs group-pipelined searches (%d keys)", total, n),
		Columns: []string{"batch M", "seq cyc/key", "grp cyc/key", "seq stall/key", "grp stall/key",
			"stall saved", "pf issued(grp)"},
	}
	for _, m := range []int{2, 4, 8, 16, 32} {
		seq, grp := mgetMeasure(o, n, total/m, m, nil)
		lookups := uint64((total / m) * m)
		t.AddRow(
			count(m),
			fmt.Sprint(seq.Total()/lookups),
			fmt.Sprint(grp.Total()/lookups),
			fmt.Sprint(seq.Stall/lookups),
			fmt.Sprint(grp.Stall/lookups),
			percent(seq.Stall-grp.Stall, seq.Stall),
			fmt.Sprint(grp.Prefetch/lookups),
		)
	}
	t.Notes = append(t.Notes,
		"both modes run the same keys on identical warm trees; stall saved = 1 - grp/seq exposed stall",
		"the serving layer executes MGET and batched GETs this way (internal/serve, Store.MGet)",
	)

	return []Table{t, mgetAttribution(o, n)}
}

// mgetMeasure runs the same lookup stream through both execution modes
// on identical, identically warmed trees and returns the measured
// stats deltas (sequential, group). col, when non-nil, observes the
// group run's measured phase.
func mgetMeasure(o Options, n, batches, m int, col *obs.Collector) (seq, grp memsys.Stats) {
	pairs := workload.SortedPairs(n)
	keys := workload.SearchKeys(o.rng(int64(100+m)), n, batches*m)
	warm := workload.SearchKeys(o.rng(7), n, o.ops(2_000))

	build := func(collect bool) *core.Tree {
		cfg := core.Config{Width: 8, Prefetch: true}
		h := memsys.New(memsys.DefaultConfig())
		if collect && col != nil {
			h.SetProbe(memsys.Probes{o.Probe, col})
			cfg.Trace = core.Tracers{o.Trace, col}
		} else {
			h.SetProbe(o.Probe)
			cfg.Trace = o.Trace
		}
		cfg.Mem = h
		t := core.MustNew(cfg)
		if err := t.Bulkload(pairs, 0.8); err != nil {
			panic(err)
		}
		for _, k := range warm {
			t.Search(k)
		}
		return t
	}

	st := build(false)
	before := st.Mem().Stats()
	for b := 0; b < batches; b++ {
		for _, k := range keys[b*m : (b+1)*m] {
			if _, ok := st.Search(k); !ok {
				panic(fmt.Sprintf("mget: sequential search lost key %d", k))
			}
		}
	}
	seq = st.Mem().Stats().Sub(before)

	gt := build(true)
	if col != nil {
		col.Reset() // warmup traffic is not the story
	}
	tids := make([]core.TID, m)
	found := make([]bool, m)
	before = gt.Mem().Stats()
	for b := 0; b < batches; b++ {
		gt.SearchBatch(keys[b*m:(b+1)*m], tids, found)
		for i, ok := range found {
			if !ok {
				panic(fmt.Sprintf("mget: group search lost key %d", keys[b*m+i]))
			}
		}
	}
	grp = gt.Mem().Stats().Sub(before)
	return seq, grp
}

// mgetAttribution reruns the M=16 group sweep with a collector
// attached and reports where the remaining stall lives: with the whole
// level prefetched back-to-back, the exposed stall should concentrate
// on the first nodes of each level rather than spreading evenly.
func mgetAttribution(o Options, n int) Table {
	col := obs.NewCollector()
	const m = 16
	_, grp := mgetMeasure(o, n, o.ops(40_000)/m, m, col)

	tb := Table{
		ID:      "mget-attr",
		Title:   fmt.Sprintf("group-pipelined search (M=%d): stall attribution by level and node kind", m),
		Columns: []string{"op", "level", "kind", "l1", "l2", "mem", "pf-hit", "stall(M)", "stall%"},
	}
	for _, row := range col.Rows() {
		tb.AddRow(
			row.Op.String(),
			obs.LevelLabel(row.Level),
			row.Kind.String(),
			count(int(row.L1Hits)),
			count(int(row.L2Hits)),
			count(int(row.MemMisses)),
			count(int(row.PFHits)),
			cycles(row.StallCycles),
			percent(row.StallCycles, grp.Stall),
		)
	}
	tb.Notes = append(tb.Notes,
		fmt.Sprintf("attributed stall %s M of %s M measured", cycles(col.TotalStall()), cycles(grp.Stall)),
	)
	return tb
}

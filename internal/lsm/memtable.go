package lsm

// The memtable is a persistent (path-copying) treap: inserts allocate
// O(log n) fresh nodes and never mutate reachable ones, so a published
// view can keep reading an old root while the shard writer grows a new
// one — the same snapshot isolation the pB+-Tree engine gets from
// double buffering, without a second copy of the data. Priorities are
// a splitmix64 mix of the key, so the shape is deterministic (useful
// for tests) yet behaves like a random treap even on sequential keys.
// Deletes are in-band tombstones: they must shadow older runs until
// compaction proves there is nothing left to shadow.

import "pbtree/internal/core"

// memEntry is one memtable record: a live pair or a tombstone.
type memEntry struct {
	key core.Key
	tid core.TID
	del bool
}

// memNode is one immutable treap node.
type memNode struct {
	key         core.Key
	tid         core.TID
	del         bool
	prio        uint64
	left, right *memNode
}

// memPrio derives a node's heap priority from its key.
func memPrio(k core.Key) uint64 {
	x := uint64(k) ^ 0x6a09e667f3bcc909
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// memInsert returns the root of a treap equal to n plus the entry,
// sharing all untouched nodes with n, and whether the key was absent
// from n (an overwrite reports false). A tombstone is inserted the
// same way, with del set.
func memInsert(n *memNode, k core.Key, tid core.TID, del bool) (*memNode, bool) {
	if n == nil {
		return &memNode{key: k, tid: tid, del: del, prio: memPrio(k)}, true
	}
	nn := *n
	switch {
	case k == n.key:
		nn.tid, nn.del = tid, del
		return &nn, false
	case k < n.key:
		child, added := memInsert(n.left, k, tid, del)
		if child.prio > nn.prio {
			// Rotate right: both nn and child are fresh copies, so the
			// pointer surgery never touches a shared node.
			nn.left = child.right
			child.right = &nn
			return child, added
		}
		nn.left = child
		return &nn, added
	default:
		child, added := memInsert(n.right, k, tid, del)
		if child.prio > nn.prio {
			// Rotate left; same ownership argument as above.
			nn.right = child.left
			child.left = &nn
			return child, added
		}
		nn.right = child
		return &nn, added
	}
}

// memGet looks a key up, reporting its entry and whether it is present
// (tombstones are present — the caller must check del).
func memGet(n *memNode, k core.Key) (memEntry, bool) {
	for n != nil {
		switch {
		case k == n.key:
			return memEntry{key: n.key, tid: n.tid, del: n.del}, true
		case k < n.key:
			n = n.left
		default:
			n = n.right
		}
	}
	return memEntry{}, false
}

// memAppendRange appends the entries with keys in [start, end] to dst
// in key order, tombstones included.
func memAppendRange(n *memNode, start, end core.Key, dst []memEntry) []memEntry {
	if n == nil {
		return dst
	}
	if n.key > start {
		dst = memAppendRange(n.left, start, end, dst)
	}
	if n.key >= start && n.key <= end {
		dst = append(dst, memEntry{key: n.key, tid: n.tid, del: n.del})
	}
	if n.key < end {
		dst = memAppendRange(n.right, start, end, dst)
	}
	return dst
}

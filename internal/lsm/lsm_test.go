package lsm

import (
	"path"
	"strings"
	"testing"

	"pbtree/internal/backend"
	"pbtree/internal/core"
	"pbtree/internal/storage"
)

func TestMemtablePersistence(t *testing.T) {
	var root *memNode
	for k := core.Key(0); k < 100; k++ {
		root, _ = memInsert(root, k*3, core.TID(k), false)
	}
	before := memAppendRange(root, 0, ^core.Key(0), nil)
	// Overwrites, a tombstone and a fresh key against a new root must
	// leave the old root's view untouched.
	next, added := memInsert(root, 30, 999, false)
	if added {
		t.Fatalf("overwrite of key 30 reported added")
	}
	next, _ = memInsert(next, 60, 0, true)
	next, added = memInsert(next, 1, 42, false)
	if !added {
		t.Fatalf("fresh key 1 not reported added")
	}
	after := memAppendRange(root, 0, ^core.Key(0), nil)
	if len(after) != len(before) {
		t.Fatalf("old root changed size: %d -> %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("old root entry %d changed: %+v -> %+v", i, before[i], after[i])
		}
	}
	if e, ok := memGet(next, 30); !ok || e.tid != 999 || e.del {
		t.Fatalf("overwrite lost: %+v %v", e, ok)
	}
	if e, ok := memGet(next, 60); !ok || !e.del {
		t.Fatalf("tombstone lost: %+v %v", e, ok)
	}
	got := memAppendRange(next, 0, ^core.Key(0), nil)
	for i := 1; i < len(got); i++ {
		if got[i].key <= got[i-1].key {
			t.Fatalf("range append out of order at %d", i)
		}
	}
	if len(got) != 101 {
		t.Fatalf("new root has %d entries, want 101", len(got))
	}
	ranged := memAppendRange(next, 30, 90, nil)
	for _, e := range ranged {
		if e.key < 30 || e.key > 90 {
			t.Fatalf("range [30,90] returned key %d", e.key)
		}
	}
}

func testEntries(n int) []memEntry {
	out := make([]memEntry, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, memEntry{key: core.Key(i*7 + 1), tid: core.TID(i + 100), del: i%5 == 0})
	}
	return out
}

func TestRunRoundTrip(t *testing.T) {
	ents := testEntries(137)
	r := newRun(ents, 3, 40, 2)
	blob := encodeRun(r)
	got, err := decodeRun(blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.minLSN != 3 || got.maxLSN != 40 || got.gen != 2 || got.len() != len(ents) {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i, e := range ents {
		if got.keys[i] != e.key || got.tids[i] != e.tid || got.tomb(i) != e.del {
			t.Fatalf("entry %d mismatch", i)
		}
		ge, ok := got.get(e.key)
		if !ok || ge.tid != e.tid || ge.del != e.del {
			t.Fatalf("get(%d) = %+v %v", e.key, ge, ok)
		}
	}
	if _, ok := got.get(2); ok {
		t.Fatalf("absent key found")
	}
	// Empty runs must round-trip too (checkpoint markers).
	er := newRun(nil, 5, 9, 0)
	if got, err := decodeRun(encodeRun(er)); err != nil || got.len() != 0 || got.minLSN != 5 || got.maxLSN != 9 {
		t.Fatalf("empty run round trip: %+v %v", got, err)
	}
}

func TestRunDecodeRejects(t *testing.T) {
	valid := encodeRun(newRun(testEntries(10), 1, 12, 0))
	corrupt := func(name string, mutate func([]byte) []byte) {
		blob := mutate(append([]byte(nil), valid...))
		if _, err := decodeRun(blob); err == nil {
			t.Errorf("%s: decode accepted corrupt run", name)
		}
	}
	corrupt("truncated", func(b []byte) []byte { return b[:len(b)-5] })
	corrupt("empty", func(b []byte) []byte { return nil })
	corrupt("bad magic", func(b []byte) []byte { b[0] = 'X'; return b })
	corrupt("lying count", func(b []byte) []byte { b[4] = 0xff; return b })
	corrupt("huge count", func(b []byte) []byte { b[7] = 0xff; return b })
	corrupt("bad crc", func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b })
	corrupt("flipped payload byte", func(b []byte) []byte { b[40] ^= 0x01; return b })
	corrupt("trailing garbage", func(b []byte) []byte { return append(b, 0) })
}

// ackOK wraps ApplyBatch for tests that expect clean applies.
func apply(t *testing.T, b *LSM, version, lsn uint64, ws ...backend.Write) {
	t.Helper()
	acked := false
	if err := b.ApplyBatch(ws, version, lsn, func(err error) {
		acked = true
		if err != nil {
			t.Fatalf("ack error: %v", err)
		}
	}); err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}
	if !acked {
		t.Fatalf("ApplyBatch returned without acking")
	}
}

func pairs(ks ...int) []core.Pair {
	out := make([]core.Pair, 0, len(ks))
	for _, k := range ks {
		out = append(out, core.Pair{Key: core.Key(k), TID: core.TID(k + 1)})
	}
	return out
}

func keysOf(ks ...int) []core.Key {
	out := make([]core.Key, 0, len(ks))
	for _, k := range ks {
		out = append(out, core.Key(k))
	}
	return out
}

func TestLSMReadPath(t *testing.T) {
	cfg, err := Config{FlushKeys: 8, MaxRuns: 3}.WithDefaults()
	if err != nil {
		t.Fatal(err)
	}
	b := New(cfg, nil, "")
	if err := b.Bootstrap(pairs(10, 20, 30, 40, 50)); err != nil {
		t.Fatal(err)
	}
	if err := b.Seal(1); err != nil {
		t.Fatal(err)
	}
	v := uint64(1)
	step := func(ws ...backend.Write) {
		v++
		apply(t, b, v, v, ws...)
	}
	// Overwrite, fresh insert, delete — across enough batches to force
	// flushes and compactions (FlushKeys 8, MaxRuns 3).
	step(backend.Write{Puts: pairs(20)})      // overwrite 20
	step(backend.Write{Puts: pairs(60, 70)})  // fresh
	step(backend.Write{Dels: []core.Key{30}}) // tombstone
	for i := 0; i < 10; i++ {                 // force flush + compaction churn
		step(backend.Write{Puts: pairs(100 + i)})
	}
	s := b.Snapshot()
	defer s.Release()
	if tid, ok := s.Get(20); !ok || tid != 21 {
		t.Fatalf("Get(20) = %d %v", tid, ok)
	}
	if _, ok := s.Get(30); ok {
		t.Fatalf("deleted key 30 still found")
	}
	if tid, ok := s.Get(104); !ok || tid != 105 {
		t.Fatalf("Get(104) = %d %v", tid, ok)
	}
	if _, ok := s.Get(31); ok {
		t.Fatalf("absent key found")
	}
	want := []int{10, 20, 40, 50, 60, 70, 100, 101, 102, 103, 104, 105, 106, 107, 108, 109}
	all := s.AppendPairs(nil)
	if len(all) != len(want) {
		t.Fatalf("AppendPairs = %d pairs, want %d: %v", len(all), len(want), all)
	}
	for i, k := range want {
		if all[i].Key != core.Key(k) || all[i].TID != core.TID(k+1) {
			t.Fatalf("AppendPairs[%d] = %+v, want key %d", i, all[i], k)
		}
	}
	scan := s.Scan(40, 101, 3)
	if len(scan) != 3 || scan[0].Key != 40 || scan[1].Key != 50 || scan[2].Key != 60 {
		t.Fatalf("Scan(40,101,3) = %v", scan)
	}
	keys := []core.Key{10, 30, 107}
	tids := make([]core.TID, 3)
	found := make([]bool, 3)
	s.GetBatch(keys, tids, found)
	if !found[0] || found[1] || !found[2] || tids[0] != 11 || tids[2] != 108 {
		t.Fatalf("GetBatch = %v %v", tids, found)
	}
}

func TestLSMCountStaysExact(t *testing.T) {
	cfg, _ := Config{FlushKeys: 4, MaxRuns: 4}.WithDefaults()
	b := New(cfg, nil, "")
	b.Bootstrap(pairs(1, 2, 3))
	b.Seal(1)
	// Overwrites of run-resident keys must not inflate the count, and
	// deletes of run-resident (or absent) keys must not deflate it.
	apply(t, b, 2, 2, backend.Write{Puts: pairs(1, 2, 3)})
	apply(t, b, 3, 3, backend.Write{Puts: pairs(4)})
	if got := b.Snapshot().Count(); got != 4 {
		t.Fatalf("count after run-resident overwrites = %d, want 4", got)
	}
	apply(t, b, 4, 4, backend.Write{Dels: keysOf(2, 99)})
	if got := b.Snapshot().Count(); got != 3 {
		t.Fatalf("count after delete (one live, one absent) = %d, want 3", got)
	}
	apply(t, b, 5, 5, backend.Write{Dels: keysOf(2)}) // double delete
	if got := b.Snapshot().Count(); got != 3 {
		t.Fatalf("count after double delete = %d, want 3", got)
	}
	apply(t, b, 6, 6, backend.Write{Puts: pairs(2)}) // resurrect
	if got := b.Snapshot().Count(); got != 4 {
		t.Fatalf("count after resurrecting a tombstone = %d, want 4", got)
	}
	// Compact folds to one bottom run without disturbing the count.
	apply(t, b, 7, 7, backend.Write{Compact: true})
	s := b.Snapshot()
	if got := s.Count(); got != 4 {
		t.Fatalf("post-compact count %d, want 4", got)
	}
	if got := len(s.AppendPairs(nil)); got != 4 {
		t.Fatalf("post-compact pairs %d, want 4", got)
	}
	if st := b.Stats(); st.Runs != 1 || st.MemKeys != 0 {
		t.Fatalf("post-compact stats %+v, want single run, empty memtable", st)
	}
}

// reopen cycles a durable engine: Recover + Replay(nothing) + Seal.
func reopen(t *testing.T, cfg Config, fs storage.FS, dir string) (*LSM, uint64, bool) {
	t.Helper()
	b := New(cfg, fs, dir)
	last, had, err := b.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if err := b.Seal(last + 1); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	return b, last, had
}

func TestLSMDurableRecovery(t *testing.T) {
	fs := storage.NewMemFS()
	if err := fs.MkdirAll("shard"); err != nil {
		t.Fatal(err)
	}
	cfg, _ := Config{FlushKeys: 4, MaxRuns: 3}.WithDefaults()
	b := New(cfg, fs, "shard")
	if last, had, err := b.Recover(); err != nil || had || last != 0 {
		t.Fatalf("fresh Recover = %d %v %v", last, had, err)
	}
	b.Bootstrap(pairs(10, 20, 30))
	b.Seal(1)
	if err := b.Checkpoint(0); err != nil { // bootstrap run [0,0]
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ { // LSNs 1..9, several flushes
		apply(t, b, uint64(i+2), uint64(i+1), backend.Write{Puts: pairs(100 + i)})
	}
	apply(t, b, 11, 10, backend.Write{Dels: []core.Key{20}}) // LSN 10
	if err := b.Checkpoint(10); err != nil {
		t.Fatal(err)
	}
	want := b.Snapshot().AppendPairs(nil)

	b2, last, had := reopen(t, cfg, fs, "shard")
	if !had || last != 10 {
		t.Fatalf("Recover = %d %v, want 10 true", last, had)
	}
	got := b2.Snapshot().AppendPairs(nil)
	if len(got) != len(want) {
		t.Fatalf("recovered %d pairs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recovered pair %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if _, ok := b2.Snapshot().Get(20); ok {
		t.Fatalf("deleted key 20 resurrected by recovery")
	}
	if got := b2.Snapshot().Count(); got != len(want) {
		t.Fatalf("recovered count %d, want exact %d", got, len(want))
	}
}

func TestLSMRecoverySupersededRuns(t *testing.T) {
	fs := storage.NewMemFS()
	fs.MkdirAll("shard")
	cfg, _ := Config{FlushKeys: 2, MaxRuns: 2}.WithDefaults()
	b := New(cfg, fs, "shard")
	b.Bootstrap(pairs(1, 2))
	b.Seal(1)
	b.Checkpoint(0)
	for i := 0; i < 6; i++ {
		apply(t, b, uint64(i+2), uint64(i+1), backend.Write{Puts: pairs(10 + i)})
	}
	b.Checkpoint(6)
	// Simulate a crash between a compaction's rename and its input
	// deletes: re-write every live run under a stale view by copying
	// the current files, then add a full fold that supersedes them all.
	apply(t, b, 8, 7, backend.Write{Compact: true}) // fold writes run [0,7] then deletes inputs
	names, _ := fs.ReadDir("shard")
	liveRuns := 0
	for _, n := range names {
		if strings.HasSuffix(n, ".lrun") {
			liveRuns++
		}
	}
	if liveRuns != 1 {
		t.Fatalf("after fold: %d run files, want 1", liveRuns)
	}
	// Plant a stale (superseded) run alongside: a subset interval.
	stale := encodeRun(newRun(testEntries(3), 1, 3, 0))
	f, _ := fs.Create(path.Join("shard", runName(3, 0)))
	f.Write(stale)
	f.Sync()
	f.Close()

	b2, last, _ := reopen(t, cfg, fs, "shard")
	if last != 7 {
		t.Fatalf("Recover = %d, want 7", last)
	}
	if st := b2.Stats(); st.Runs != 1 {
		t.Fatalf("superseded run survived: %+v", st)
	}
	names, _ = fs.ReadDir("shard")
	for _, n := range names {
		if n == runName(3, 0) {
			t.Fatalf("superseded run file not deleted")
		}
	}
}

func TestLSMRecoveryRejectsCorruptRun(t *testing.T) {
	fs := storage.NewMemFS()
	fs.MkdirAll("shard")
	cfg, _ := Config{}.WithDefaults()
	b := New(cfg, fs, "shard")
	b.Bootstrap(pairs(1, 2, 3))
	b.Seal(1)
	if err := b.Checkpoint(0); err != nil {
		t.Fatal(err)
	}
	names, _ := fs.ReadDir("shard")
	var target string
	for _, n := range names {
		if strings.HasSuffix(n, ".lrun") {
			target = path.Join("shard", n)
		}
	}
	blob, err := fs.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0xff
	f, _ := fs.Create(target)
	f.Write(blob)
	f.Sync()
	f.Close()
	nb := New(cfg, fs, "shard")
	if _, _, err := nb.Recover(); err == nil {
		t.Fatalf("Recover accepted a corrupt run")
	}
}

func TestLSMRecoveryRejectsChainGap(t *testing.T) {
	fs := storage.NewMemFS()
	fs.MkdirAll("shard")
	cfg, _ := Config{FlushKeys: 2, MaxRuns: 100}.WithDefaults() // no compaction
	b := New(cfg, fs, "shard")
	b.Bootstrap(pairs(1))
	b.Seal(1)
	b.Checkpoint(0)
	for i := 0; i < 6; i++ {
		apply(t, b, uint64(i+2), uint64(i+1), backend.Write{Puts: pairs(10 + i)})
	}
	b.Checkpoint(6)
	// Delete a middle run: the chain [0,0],[1,..],..,[..,6] breaks.
	names, _ := fs.ReadDir("shard")
	removed := false
	for _, n := range names {
		if max, _, ok := parseRunName(n); ok && max > 0 && max < 6 {
			fs.Remove(path.Join("shard", n))
			removed = true
			break
		}
	}
	if !removed {
		t.Fatalf("no middle run to remove; files: %v", names)
	}
	nb := New(cfg, fs, "shard")
	if _, _, err := nb.Recover(); err == nil {
		t.Fatalf("Recover accepted a broken run chain")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := (Config{FlushKeys: -1}).WithDefaults(); err == nil {
		t.Errorf("negative FlushKeys accepted")
	}
	if _, err := (Config{MaxRuns: 1}).WithDefaults(); err == nil {
		t.Errorf("MaxRuns 1 accepted")
	}
	c, err := Config{}.WithDefaults()
	if err != nil || c.FlushKeys != 4096 || c.MaxRuns != 8 {
		t.Errorf("defaults = %+v, %v", c, err)
	}
}

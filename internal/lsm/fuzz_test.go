package lsm

import (
	"bytes"
	"testing"
)

// FuzzLSMRun asserts the run decoder's safety contract on arbitrary
// bytes: it never panics, rejects anything that is not a complete
// well-formed run, and accepts only canonical encodings (a successful
// decode re-encodes to the identical bytes). The committed corpus
// seeds a valid run plus the interesting rejects: a lying entry
// count, a corrupted CRC and a truncated tail.
func FuzzLSMRun(f *testing.F) {
	valid := encodeRun(newRun(testEntries(10), 1, 12, 0))
	f.Add(append([]byte(nil), valid...))
	lie := append([]byte(nil), valid...)
	lie[4] = 0xf0 // inflate the entry count past the payload
	f.Add(lie)
	bad := append([]byte(nil), valid...)
	bad[len(bad)-1] ^= 0xff // break the CRC
	f.Add(bad)
	f.Add(append([]byte(nil), valid[:len(valid)-7]...)) // truncated tail
	f.Add(encodeRun(newRun(nil, 0, 0, 3)))              // empty bootstrap-style run

	f.Fuzz(func(t *testing.T, blob []byte) {
		r, err := decodeRun(blob)
		if err != nil {
			if r != nil {
				t.Fatalf("decode returned a run alongside error %v", err)
			}
			return
		}
		if r.len() < 0 || r.minLSN > r.maxLSN {
			t.Fatalf("decoded run violates invariants: %+v", r)
		}
		for i := 1; i < r.len(); i++ {
			if r.keys[i] <= r.keys[i-1] {
				t.Fatalf("decoded keys not strictly ascending at %d", i)
			}
		}
		if re := encodeRun(r); !bytes.Equal(re, blob) {
			t.Fatalf("accepted non-canonical encoding: %d in, %d out", len(blob), len(re))
		}
	})
}

// Package lsm is the write-optimized storage engine behind the
// serving layer's Backend interface: a log-structured merge design
// with an in-memory memtable (persistent treap), immutable sorted runs
// with per-run bloom filters, and size-tiered compaction. A put is an
// O(log memtable) treap insert — no B+-Tree node shifting, no
// second-tree replay — which is why it wins write-heavy workloads; a
// get pays one memtable probe plus a bloom-filtered binary search per
// run, which is why the pB+-Tree engine keeps winning read-heavy ones.
//
// LSN bookkeeping: every run carries the inclusive interval
// [minLSN, maxLSN] of WAL records whose effects it holds; minLSN == 0
// additionally means the run carries the shard's bootstrap contents.
// Live runs always chain — each run's minLSN is its older neighbor's
// maxLSN + 1, down to a bottom run with minLSN 0 — and the memtable
// covers everything newer than the newest run. Compaction merges a
// newest-first prefix of the chain (so outputs stay contiguous) and
// may drop tombstones only when the output's minLSN is 0: only then is
// there provably nothing older left to shadow. Recovery reloads the
// runs, deletes any run contained in a wider (or same-range,
// higher-generation) one — the leftovers of a crash between a
// compaction's rename and its input deletes — and re-checks the chain.
// The WAL tail past the newest run replays into the memtable, exactly
// as it does onto the pB+-Tree engine's checkpoint.
package lsm

import (
	"fmt"
	"io"
	"path"
	"sort"
	"sync/atomic"

	"pbtree/internal/backend"
	"pbtree/internal/core"
	"pbtree/internal/storage"
)

// Config tunes the LSM engine. The zero value selects the defaults.
type Config struct {
	// FlushKeys is the memtable entry count (tombstones included) that
	// triggers a flush into a new sorted run. Zero selects 4096.
	FlushKeys int

	// MaxRuns is the run count above which a flush triggers
	// compaction. Zero selects 8; the floor is 2.
	MaxRuns int
}

// WithDefaults resolves and validates the configuration.
func (c Config) WithDefaults() (Config, error) {
	if c.FlushKeys == 0 {
		c.FlushKeys = 4096
	}
	if c.FlushKeys < 1 {
		return c, fmt.Errorf("lsm: flush threshold %d must be positive", c.FlushKeys)
	}
	if c.MaxRuns == 0 {
		c.MaxRuns = 8
	}
	if c.MaxRuns < 2 {
		return c, fmt.Errorf("lsm: max runs %d below the floor of 2", c.MaxRuns)
	}
	return c, nil
}

// lsmView is one published read view: a memtable root plus the run
// list, all immutable. Unlike the pB+-Tree engine there is no
// refcount — old views are simply garbage-collected, since nothing is
// ever recycled in place.
type lsmView struct {
	mem     *memNode
	runs    []*run // newest first
	version uint64
	count   int
	memKeys int
}

// Get implements backend.Snapshot: memtable first (newest), then runs
// newest to oldest; the first hit — live or tombstone — wins.
func (v *lsmView) Get(k core.Key) (core.TID, bool) {
	if e, ok := memGet(v.mem, k); ok {
		return e.tid, !e.del
	}
	for _, r := range v.runs {
		if e, ok := r.get(k); ok {
			return e.tid, !e.del
		}
	}
	return 0, false
}

// GetBatch implements backend.Snapshot. The LSM read path has no
// software-pipelined batch variant; each key is an independent probe.
func (v *lsmView) GetBatch(keys []core.Key, tids []core.TID, found []bool) {
	for i, k := range keys {
		tids[i], found[i] = v.Get(k)
	}
}

// noKey is the merge sentinel: above any real (32-bit) key.
const noKey = uint64(1) << 40

// appendMerged appends the live pairs with keys in [start, end] to
// dst, in key order, newest source winning per key, stopping at limit
// pairs appended (limit < 0 = unlimited).
func (v *lsmView) appendMerged(start, end core.Key, limit int, dst []core.Pair) []core.Pair {
	if start > end || limit == 0 {
		return dst
	}
	mem := memAppendRange(v.mem, start, end, nil)
	mi := 0
	pos := make([]int, len(v.runs))
	his := make([]int, len(v.runs))
	for i, r := range v.runs {
		pos[i], his[i] = r.rangeOf(start, end)
	}
	taken := 0
	for limit < 0 || taken < limit {
		best := noKey
		if mi < len(mem) {
			best = uint64(mem[mi].key)
		}
		for i, r := range v.runs {
			if pos[i] < his[i] && uint64(r.keys[pos[i]]) < best {
				best = uint64(r.keys[pos[i]])
			}
		}
		if best == noKey {
			break
		}
		k := core.Key(best)
		var e memEntry
		have := false
		if mi < len(mem) && mem[mi].key == k {
			e, have = mem[mi], true
			mi++
		}
		for i, r := range v.runs {
			if pos[i] < his[i] && r.keys[pos[i]] == k {
				if !have {
					e, have = memEntry{key: k, tid: r.tids[pos[i]], del: r.tomb(pos[i])}, true
				}
				pos[i]++
			}
		}
		if !e.del {
			dst = append(dst, core.Pair{Key: e.key, TID: e.tid})
			taken++
		}
	}
	return dst
}

// Scan implements backend.Snapshot: a k-way merge across the memtable
// range and every run's range, newest wins, tombstones shadow.
func (v *lsmView) Scan(start, end core.Key, limit int) []core.Pair {
	if limit <= 0 {
		return nil
	}
	capHint := limit
	if capHint > 1024 {
		capHint = 1024
	}
	return v.appendMerged(start, end, limit, make([]core.Pair, 0, capHint))
}

// AppendPairs implements backend.Snapshot: the full-range merge.
func (v *lsmView) AppendPairs(dst []core.Pair) []core.Pair {
	return v.appendMerged(0, ^core.Key(0), -1, dst)
}

// Version implements backend.Snapshot.
func (v *lsmView) Version() uint64 { return v.version }

// Count implements backend.Snapshot. The count is exact: Seal
// computes it with a full merge, and every put/delete afterwards
// resolves the key's prior liveness against the memtable and the
// bloom-filtered runs before adjusting it.
func (v *lsmView) Count() int { return v.count }

// Release implements backend.Snapshot; views are garbage-collected,
// so there is nothing to unpin.
func (v *lsmView) Release() {}

// LSM implements backend.Backend. Construct with New; all writer-side
// state is owned by the shard's writer goroutine per the Backend
// contract.
type LSM struct {
	cfg Config
	fs  storage.FS // nil = non-durable
	dir string

	snap atomic.Pointer[lsmView]

	// Writer-owned state.
	mem     *memNode
	memKeys int
	memFrom uint64 // first LSN the memtable covers (newest run's maxLSN + 1)
	runs    []*run // newest first
	count   int    // exact live-key count (see lsmView.Count)
	gen     uint32 // highest generation in use
	version uint64 // last published version
	boot    []core.Pair
	bootSet bool
}

// New builds an LSM engine. cfg must already be resolved with
// WithDefaults; fs is nil for a non-durable engine, otherwise dir is
// the shard directory the engine keeps its runs in (shared with the
// store's WAL segments — the engine ignores file names it does not
// own).
func New(cfg Config, fs storage.FS, dir string) *LSM {
	return &LSM{cfg: cfg, fs: fs, dir: dir, memFrom: 1}
}

// publish installs a fresh view. Housekeeping (flush, compaction)
// republishes under the same version: the contents are equivalent,
// only the layout changed.
func (b *LSM) publish(version uint64) {
	b.version = version
	b.snap.Store(&lsmView{mem: b.mem, runs: b.runs, version: version, count: b.count, memKeys: b.memKeys})
}

// Recover implements backend.Backend: reload the run files, drop the
// superseded ones, verify the chain.
func (b *LSM) Recover() (uint64, bool, error) {
	if b.fs == nil {
		return 0, false, nil
	}
	names, err := b.fs.ReadDir(b.dir)
	if err != nil {
		return 0, false, err
	}
	backend.RemoveTemp(b.fs, b.dir, names)
	var loaded []*run
	for _, n := range names {
		if _, _, ok := parseRunName(n); !ok {
			continue
		}
		f, err := b.fs.Open(path.Join(b.dir, n))
		if err != nil {
			return 0, true, fmt.Errorf("lsm: opening run %s: %w", n, err)
		}
		blob, rerr := io.ReadAll(f)
		f.Close()
		if rerr != nil {
			return 0, true, fmt.Errorf("lsm: reading run %s: %w", n, rerr)
		}
		r, derr := decodeRun(blob)
		if derr != nil {
			// Unlike pB+-Tree checkpoints, runs are not redundant with
			// each other: a run that fails verification is lost data,
			// so recovery fail-stops rather than silently serving a
			// hole.
			return 0, true, fmt.Errorf("lsm: run %s: %w", n, derr)
		}
		r.name = n
		loaded = append(loaded, r)
	}
	if len(loaded) == 0 {
		return 0, false, nil
	}
	// Drop runs a compaction output supersedes (crash between its
	// rename and the input deletes leaves both on disk).
	live := loaded[:0]
	for _, a := range loaded {
		dead := false
		for _, c := range loaded {
			if supersedes(c, a) {
				dead = true
				break
			}
		}
		if dead {
			_ = b.fs.Remove(path.Join(b.dir, a.name))
			continue
		}
		live = append(live, a)
	}
	sort.Slice(live, func(i, j int) bool { return live[i].maxLSN > live[j].maxLSN })
	for i, r := range live {
		if r.gen > b.gen {
			b.gen = r.gen
		}
		if i+1 < len(live) && r.minLSN != live[i+1].maxLSN+1 {
			return 0, true, fmt.Errorf("lsm: run chain broken: [%d,%d] does not follow [%d,%d]",
				r.minLSN, r.maxLSN, live[i+1].minLSN, live[i+1].maxLSN)
		}
	}
	if live[len(live)-1].minLSN != 0 {
		return 0, true, fmt.Errorf("lsm: run chain has no bottom run (oldest starts at %d)", live[len(live)-1].minLSN)
	}
	b.runs = live
	b.memFrom = live[0].maxLSN + 1
	return live[0].maxLSN, true, nil
}

// supersedes reports whether c makes a obsolete: c covers at least a's
// LSN interval and is either strictly wider or a newer generation of
// the same interval.
func supersedes(c, a *run) bool {
	if c == a || c.minLSN > a.minLSN || c.maxLSN < a.maxLSN {
		return false
	}
	if c.minLSN == a.minLSN && c.maxLSN == a.maxLSN {
		return c.gen > a.gen
	}
	return true
}

// Bootstrap implements backend.Backend.
func (b *LSM) Bootstrap(seed []core.Pair) error {
	b.boot, b.bootSet = seed, true
	return nil
}

// Replay implements backend.Backend: WAL records replay straight into
// the memtable; the first post-recovery Checkpoint folds them into a
// run.
func (b *LSM) Replay(w backend.Write) error {
	b.applyWrite(w)
	return nil
}

// Seal implements backend.Backend. A bootstrapped engine turns the
// seed into the bottom run [0, 0]; a recovered one computes the exact
// live count across runs + replayed memtable.
func (b *LSM) Seal(version uint64) error {
	if b.bootSet {
		entries := make([]memEntry, 0, len(b.boot))
		for _, p := range b.boot {
			entries = append(entries, memEntry{key: p.Key, tid: p.TID})
		}
		b.runs = []*run{newRun(entries, 0, 0, 0)}
		b.count = len(entries)
		b.memFrom = 1
		b.boot, b.bootSet = nil, false
	} else {
		probe := &lsmView{mem: b.mem, runs: b.runs}
		b.count = len(probe.appendMerged(0, ^core.Key(0), -1, nil))
	}
	b.publish(version)
	return nil
}

// put applies one insert/overwrite, keeping the live count exact: a
// key absent from the memtable resolves its prior liveness against
// the runs (bloom filters keep the usual miss cheap).
func (b *LSM) put(k core.Key, tid core.TID) {
	e, inMem := memGet(b.mem, k)
	live := inMem && !e.del
	if !inMem {
		live = b.runLive(k)
		b.memKeys++
	}
	b.mem, _ = memInsert(b.mem, k, tid, false)
	if !live {
		b.count++
	}
}

// del applies one delete as a tombstone, with put's exact count
// bookkeeping.
func (b *LSM) del(k core.Key) {
	e, inMem := memGet(b.mem, k)
	live := inMem && !e.del
	if !inMem {
		live = b.runLive(k)
		b.memKeys++
	}
	b.mem, _ = memInsert(b.mem, k, 0, true)
	if live {
		b.count--
	}
}

// runLive reports whether k resolves to a live pair in the runs
// (newest hit wins, tombstones shadow) — the read path's shadowing
// order below the memtable.
func (b *LSM) runLive(k core.Key) bool {
	for _, r := range b.runs {
		if e, ok := r.get(k); ok {
			return !e.del
		}
	}
	return false
}

// applyWrite applies one Write's puts and deletes to the memtable.
func (b *LSM) applyWrite(w backend.Write) {
	for _, p := range w.Puts {
		b.put(p.Key, p.TID)
	}
	for _, k := range w.Dels {
		b.del(k)
	}
}

// ApplyBatch implements backend.Backend: apply to the memtable,
// publish, ack, then do size-triggered housekeeping (flush and
// compaction) after the ack so write latency never includes run I/O.
// A Compact write folds everything into a single bottom run instead.
func (b *LSM) ApplyBatch(ws []backend.Write, version, lsn uint64, ack func(error)) error {
	compact := false
	for _, w := range ws {
		b.applyWrite(w)
		compact = compact || w.Compact
	}
	b.publish(version)
	ack(nil)
	if compact {
		return b.foldAll(lsn)
	}
	if b.memKeys >= b.cfg.FlushKeys {
		if err := b.flush(lsn); err != nil {
			return err
		}
		for len(b.runs) > b.cfg.MaxRuns {
			if err := b.compactOnce(b.pickCompaction()); err != nil {
				return err
			}
		}
	}
	return nil
}

// flush folds the memtable into a new newest run covering
// [b.memFrom, upto] and republishes. On a durable engine the run file
// is written (tmp+fsync+rename) before the memtable is dropped, so a
// flush failure leaves the memtable intact for a retry.
func (b *LSM) flush(upto uint64) error {
	if upto < b.memFrom && b.memKeys == 0 {
		return nil // nothing newer than the runs already cover
	}
	entries := memAppendRange(b.mem, 0, ^core.Key(0), make([]memEntry, 0, b.memKeys))
	r := newRun(entries, b.memFrom, upto, 0)
	if b.fs != nil {
		if err := b.writeRun(r); err != nil {
			return fmt.Errorf("lsm: flush: %w", err)
		}
	}
	b.runs = append([]*run{r}, b.runs...)
	b.mem, b.memKeys, b.memFrom = nil, 0, upto+1
	b.publish(b.version)
	return nil
}

// pickCompaction sizes the size-tiered merge: starting from the newest
// run, absorb the next-older run while it is at most twice the bytes
// already absorbed — so small fresh runs coalesce without repeatedly
// rewriting a large bottom run — with a floor of two runs so the count
// always shrinks.
func (b *LSM) pickCompaction() int {
	take, sum := 1, b.runs[0].len()
	for take < len(b.runs) && b.runs[take].len() <= 2*sum {
		sum += b.runs[take].len()
		take++
	}
	if take < 2 {
		take = 2
	}
	return take
}

// compactOnce merges the newest take runs into one. Tombstones are
// dropped only when the output reaches the bottom (minLSN 0); the
// merged file lands before the inputs are deleted, so a crash anywhere
// leaves a recoverable superset.
func (b *LSM) compactOnce(take int) error {
	if take > len(b.runs) {
		take = len(b.runs)
	}
	if take < 2 {
		return nil
	}
	ins := b.runs[:take]
	minLSN := ins[take-1].minLSN
	merged := mergeRunEntries(ins, minLSN == 0)
	b.gen++
	out := newRun(merged, minLSN, ins[0].maxLSN, b.gen)
	if b.fs != nil {
		if err := b.writeRun(out); err != nil {
			return fmt.Errorf("lsm: compaction: %w", err)
		}
		for _, r := range ins {
			if r.name != "" {
				_ = b.fs.Remove(path.Join(b.dir, r.name))
			}
		}
	}
	b.runs = append([]*run{out}, b.runs[take:]...)
	b.publish(b.version)
	return nil
}

// foldAll is the explicit Compact request: flush whatever the memtable
// holds, then merge every run into a single bottom run, restoring the
// flattest read-side layout.
func (b *LSM) foldAll(upto uint64) error {
	if err := b.flush(upto); err != nil {
		return err
	}
	return b.compactOnce(len(b.runs))
}

// mergeRunEntries k-way merges runs (newest first, newest wins per
// key) into one sorted entry slice.
func mergeRunEntries(rs []*run, dropTombs bool) []memEntry {
	total := 0
	for _, r := range rs {
		total += r.len()
	}
	out := make([]memEntry, 0, total)
	pos := make([]int, len(rs))
	for {
		best := noKey
		for i, r := range rs {
			if pos[i] < r.len() && uint64(r.keys[pos[i]]) < best {
				best = uint64(r.keys[pos[i]])
			}
		}
		if best == noKey {
			return out
		}
		k := core.Key(best)
		var e memEntry
		have := false
		for i, r := range rs {
			if pos[i] < r.len() && r.keys[pos[i]] == k {
				if !have {
					e, have = memEntry{key: k, tid: r.tids[pos[i]], del: r.tomb(pos[i])}, true
				}
				pos[i]++
			}
		}
		if !e.del || !dropTombs {
			out = append(out, e)
		}
	}
}

// writeRun persists a run via the tmp+fsync+rename protocol and stamps
// its file name.
func (b *LSM) writeRun(r *run) error {
	name := runName(r.maxLSN, r.gen)
	final := path.Join(b.dir, name)
	tmp := final + ".tmp"
	f, err := b.fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(encodeRun(r)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := b.fs.Rename(tmp, final); err != nil {
		return err
	}
	r.name = name
	return nil
}

// Snapshot implements backend.Backend.
func (b *LSM) Snapshot() backend.Snapshot { return b.snap.Load() }

// Checkpoint implements backend.Backend: persist any not-yet-durable
// run (the bootstrap seal's bottom run), then flush the memtable so
// the runs cover everything through lsn and the store can rotate the
// WAL.
func (b *LSM) Checkpoint(lsn uint64) error {
	if b.fs == nil {
		return nil
	}
	for i := len(b.runs) - 1; i >= 0; i-- {
		if b.runs[i].name == "" {
			if err := b.writeRun(b.runs[i]); err != nil {
				return fmt.Errorf("lsm: checkpoint: %w", err)
			}
		}
	}
	if lsn >= b.memFrom || b.memKeys > 0 {
		return b.flush(lsn)
	}
	return nil
}

// Stats implements backend.Backend.
func (b *LSM) Stats() backend.Stats {
	v := b.snap.Load()
	return backend.Stats{
		Backend: "lsm",
		Version: v.version,
		Count:   v.count,
		Runs:    len(v.runs),
		MemKeys: v.memKeys,
	}
}

// Close implements backend.Backend; views are garbage-collected and
// every durable artifact is already on disk.
func (b *LSM) Close() error { return nil }

package lsm

// Sorted-run files, the LSM engine's durable artifact (they play the
// role checkpoints play for the pB+-Tree engine). A run holds the
// effects of a contiguous LSN interval [minLSN, maxLSN] as a sorted,
// duplicate-free entry array plus a bloom filter; minLSN == 0 means
// the run also carries the shard's bootstrap contents ("covers the
// bottom"), which is the only condition under which compaction may
// drop tombstones.
//
// File layout (little-endian), named run-<maxlsn16x>-<gen8x>.lrun:
//
//	magic   "PLR1"
//	u32     count            entries
//	u32     bloomLen         bloom filter bytes
//	u32     gen              compaction generation (name uniqueness)
//	u64     minLSN
//	u64     maxLSN
//	bloom   [bloomLen]byte
//	keys    [count]u32       strictly ascending
//	tids    [count]u32
//	tombs   [(count+7)/8]byte  bit i set = entry i is a tombstone
//	u32     CRC32C           over everything above
//
// Like WAL records, runs are written once and verified on read: the
// decoder trusts nothing — magic, bounded lengths before any
// allocation, exact size, CRC, key order — so at-rest damage surfaces
// as a recovery error instead of silent data loss. FuzzLSMRun drives
// this decoder.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"pbtree/internal/core"
)

// errBadRun is wrapped by every decoder rejection.
var errBadRun = errors.New("lsm: corrupt run file")

var runMagic = [4]byte{'P', 'L', 'R', '1'}

const (
	runHeaderLen = 32
	// maxRunEntries bounds count before the decoder allocates: 1<<28
	// entries is 2 GiB of keys+tids, far beyond a plausible shard.
	maxRunEntries = 1 << 28
	// maxRunBloom bounds bloomLen the same way.
	maxRunBloom = 1 << 26
)

var runCRC = crc32.MakeTable(crc32.Castagnoli)

// run is one immutable sorted run, fully resident in memory. name is
// the file it was loaded from or flushed to ("" while the engine is
// non-durable or the run has not been through a Checkpoint yet).
type run struct {
	keys   []core.Key
	tids   []core.TID
	tombs  []byte
	bloom  []byte
	minLSN uint64
	maxLSN uint64
	gen    uint32
	name   string
}

// runName is the file name of a run (maxLSN + generation — the pair is
// unique because compaction outputs always carry a generation above
// every input's).
func runName(maxLSN uint64, gen uint32) string {
	return fmt.Sprintf("run-%016x-%08x.lrun", maxLSN, gen)
}

// parseRunName extracts maxLSN and generation from a run file name.
func parseRunName(name string) (maxLSN uint64, gen uint32, ok bool) {
	if len(name) != len("run-")+16+1+8+len(".lrun") {
		return 0, 0, false
	}
	if _, err := fmt.Sscanf(name, "run-%016x-%08x.lrun", &maxLSN, &gen); err != nil {
		return 0, 0, false
	}
	return maxLSN, gen, true
}

// len reports the number of entries, tombstones included.
func (r *run) len() int { return len(r.keys) }

// tomb reports whether entry i is a tombstone.
func (r *run) tomb(i int) bool { return r.tombs[i>>3]&(1<<(i&7)) != 0 }

// live reports the number of non-tombstone entries.
func (r *run) live() int {
	n := 0
	for i := range r.keys {
		if !r.tomb(i) {
			n++
		}
	}
	return n
}

// get looks a key up: bloom filter first (rejecting most absent keys
// without touching the arrays), then binary search.
func (r *run) get(k core.Key) (memEntry, bool) {
	if !bloomTest(r.bloom, k) {
		return memEntry{}, false
	}
	i := sort.Search(len(r.keys), func(i int) bool { return r.keys[i] >= k })
	if i == len(r.keys) || r.keys[i] != k {
		return memEntry{}, false
	}
	return memEntry{key: k, tid: r.tids[i], del: r.tomb(i)}, true
}

// rangeOf returns the index interval [lo, hi) of keys in [start, end].
func (r *run) rangeOf(start, end core.Key) (int, int) {
	lo := sort.Search(len(r.keys), func(i int) bool { return r.keys[i] >= start })
	hi := sort.Search(len(r.keys), func(i int) bool { return r.keys[i] > end })
	return lo, hi
}

// bloomBytes sizes a filter at ~10 bits per key (about 1% false
// positives with 4 probes), rounded up to whole 64-bit words so the
// byte length is always a multiple of 8 — an invariant the decoder
// checks. Minimum one word, so empty runs stay valid.
func bloomBytes(count int) int {
	words := (count*10 + 63) / 64
	if words < 1 {
		words = 1
	}
	return words * 8
}

// bloomHash derives the two independent hashes of the double-hashing
// scheme from a key.
func bloomHash(k core.Key) (uint64, uint64) {
	x := uint64(k) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x, x>>32 | x<<32 | 1
}

// bloomAdd sets the key's 4 probe bits.
func bloomAdd(filter []byte, k core.Key) {
	h1, h2 := bloomHash(k)
	bits := uint64(len(filter)) * 8
	for i := uint64(0); i < 4; i++ {
		b := (h1 + i*h2) % bits
		filter[b>>3] |= 1 << (b & 7)
	}
}

// bloomTest reports whether the key may be present.
func bloomTest(filter []byte, k core.Key) bool {
	h1, h2 := bloomHash(k)
	bits := uint64(len(filter)) * 8
	for i := uint64(0); i < 4; i++ {
		b := (h1 + i*h2) % bits
		if filter[b>>3]&(1<<(b&7)) == 0 {
			return false
		}
	}
	return true
}

// newRun builds an in-memory run from sorted, duplicate-free entries,
// computing its bloom filter.
func newRun(entries []memEntry, minLSN, maxLSN uint64, gen uint32) *run {
	r := &run{
		keys:   make([]core.Key, len(entries)),
		tids:   make([]core.TID, len(entries)),
		tombs:  make([]byte, (len(entries)+7)/8),
		bloom:  make([]byte, bloomBytes(len(entries))),
		minLSN: minLSN,
		maxLSN: maxLSN,
		gen:    gen,
	}
	for i, e := range entries {
		r.keys[i] = e.key
		r.tids[i] = e.tid
		if e.del {
			r.tombs[i>>3] |= 1 << (i & 7)
		}
		bloomAdd(r.bloom, e.key)
	}
	return r
}

// encodeRun serializes a run in the file layout above.
func encodeRun(r *run) []byte {
	n := len(r.keys)
	size := runHeaderLen + len(r.bloom) + 8*n + len(r.tombs) + 4
	blob := make([]byte, 0, size)
	blob = append(blob, runMagic[:]...)
	blob = binary.LittleEndian.AppendUint32(blob, uint32(n))
	blob = binary.LittleEndian.AppendUint32(blob, uint32(len(r.bloom)))
	blob = binary.LittleEndian.AppendUint32(blob, r.gen)
	blob = binary.LittleEndian.AppendUint64(blob, r.minLSN)
	blob = binary.LittleEndian.AppendUint64(blob, r.maxLSN)
	blob = append(blob, r.bloom...)
	for _, k := range r.keys {
		blob = binary.LittleEndian.AppendUint32(blob, uint32(k))
	}
	for _, t := range r.tids {
		blob = binary.LittleEndian.AppendUint32(blob, uint32(t))
	}
	blob = append(blob, r.tombs...)
	return binary.LittleEndian.AppendUint32(blob, crc32.Checksum(blob, runCRC))
}

// decodeRun parses and verifies one run file. Every rejection wraps
// errBadRun; a nil error guarantees the run's invariants (sizes
// consistent, checksum valid, keys strictly ascending, minLSN ≤
// maxLSN) hold.
func decodeRun(blob []byte) (*run, error) {
	if len(blob) < runHeaderLen+4 {
		return nil, fmt.Errorf("%w: %d bytes, want at least %d", errBadRun, len(blob), runHeaderLen+4)
	}
	if [4]byte(blob[:4]) != runMagic {
		return nil, fmt.Errorf("%w: bad magic %q", errBadRun, blob[:4])
	}
	count := binary.LittleEndian.Uint32(blob[4:])
	bloomLen := binary.LittleEndian.Uint32(blob[8:])
	gen := binary.LittleEndian.Uint32(blob[12:])
	minLSN := binary.LittleEndian.Uint64(blob[16:])
	maxLSN := binary.LittleEndian.Uint64(blob[24:])
	if count > maxRunEntries {
		return nil, fmt.Errorf("%w: count %d exceeds limit", errBadRun, count)
	}
	if bloomLen > maxRunBloom || bloomLen%8 != 0 || bloomLen == 0 {
		return nil, fmt.Errorf("%w: bloom length %d", errBadRun, bloomLen)
	}
	if minLSN > maxLSN {
		return nil, fmt.Errorf("%w: LSN range [%d, %d] inverted", errBadRun, minLSN, maxLSN)
	}
	n := int(count)
	want := runHeaderLen + int(bloomLen) + 8*n + (n+7)/8 + 4
	if len(blob) != want {
		return nil, fmt.Errorf("%w: %d bytes, layout says %d", errBadRun, len(blob), want)
	}
	body, sum := blob[:len(blob)-4], binary.LittleEndian.Uint32(blob[len(blob)-4:])
	if crc32.Checksum(body, runCRC) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", errBadRun)
	}
	r := &run{
		keys:   make([]core.Key, n),
		tids:   make([]core.TID, n),
		tombs:  make([]byte, (n+7)/8),
		bloom:  make([]byte, bloomLen),
		minLSN: minLSN,
		maxLSN: maxLSN,
		gen:    gen,
	}
	off := runHeaderLen
	copy(r.bloom, blob[off:off+int(bloomLen)])
	off += int(bloomLen)
	for i := 0; i < n; i++ {
		r.keys[i] = core.Key(binary.LittleEndian.Uint32(blob[off+4*i:]))
	}
	off += 4 * n
	for i := 0; i < n; i++ {
		r.tids[i] = core.TID(binary.LittleEndian.Uint32(blob[off+4*i:]))
	}
	off += 4 * n
	copy(r.tombs, blob[off:off+(n+7)/8])
	for i := 1; i < n; i++ {
		if r.keys[i] <= r.keys[i-1] {
			return nil, fmt.Errorf("%w: keys out of order at %d", errBadRun, i)
		}
	}
	return r, nil
}

package csstree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"pbtree/internal/core"
	"pbtree/internal/memsys"
)

func pairs(n int) []core.Pair {
	ps := make([]core.Pair, n)
	for i := range ps {
		ps[i] = core.Pair{Key: core.Key(8 * (i + 1)), TID: core.TID(i + 1)}
	}
	return ps
}

func TestBulkloadSearch(t *testing.T) {
	for _, cfg := range []Config{{Width: 1}, {Width: 8, Prefetch: true}} {
		tr := MustNew(cfg)
		ps := pairs(50000)
		if err := tr.Bulkload(ps); err != nil {
			t.Fatal(err)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		for _, p := range ps {
			tid, ok := tr.Search(p.Key)
			if !ok || tid != p.TID {
				t.Fatalf("%s: Search(%d)=%d,%v", tr.Name(), p.Key, tid, ok)
			}
		}
		for _, k := range []core.Key{0, 5, 11, 8*50000 + 4} {
			if _, ok := tr.Search(k); ok {
				t.Fatalf("%s: phantom %d", tr.Name(), k)
			}
		}
	}
}

func TestSmallAndEmpty(t *testing.T) {
	tr := MustNew(Config{})
	if err := tr.Bulkload(nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := tr.Search(1); ok {
		t.Fatal("found key in empty tree")
	}
	if tr.Height() != 1 || tr.Len() != 0 {
		t.Fatalf("empty shape: h=%d len=%d", tr.Height(), tr.Len())
	}
	for n := 1; n <= 40; n++ {
		tr := MustNew(Config{})
		ps := pairs(n)
		if err := tr.Bulkload(ps); err != nil {
			t.Fatal(err)
		}
		for _, p := range ps {
			if tid, ok := tr.Search(p.Key); !ok || tid != p.TID {
				t.Fatalf("n=%d: Search(%d) failed", n, p.Key)
			}
		}
	}
}

func TestBulkloadErrors(t *testing.T) {
	tr := MustNew(Config{})
	if err := tr.Bulkload([]core.Pair{{Key: 2}, {Key: 1}}); err == nil {
		t.Error("unsorted accepted")
	}
	if err := tr.Bulkload([]core.Pair{{Key: 1}, {Key: core.MaxKey}}); err == nil {
		t.Error("sentinel key accepted")
	}
	if _, err := New(Config{Width: -1}); err == nil {
		t.Error("negative width accepted")
	}
}

// TestFanoutBeatsPointerTrees pins the structural claim of 1.2: a CSS
// node has 16 keys per line (vs 14+1 pointer for CSB+ and 7+8 for B+),
// so CSS trees are the shallowest.
func TestFanoutBeatsPointerTrees(t *testing.T) {
	tr := MustNew(Config{Width: 1})
	if tr.keysPerNode != 16 || tr.fanout != 17 {
		t.Fatalf("keys/node=%d fanout=%d, want 16/17", tr.keysPerNode, tr.fanout)
	}
	ps := pairs(1_000_000)
	if err := tr.Bulkload(ps); err != nil {
		t.Fatal(err)
	}
	bp := core.MustNew(core.Config{Width: 1, Mem: memsys.Default()})
	if err := bp.Bulkload(ps, 1.0); err != nil {
		t.Fatal(err)
	}
	if tr.Height() >= bp.Height() {
		t.Errorf("CSS height %d not below B+ height %d", tr.Height(), bp.Height())
	}
}

// TestColdSearchOrdering: CSS < B+ on cold searches (it was designed
// for exactly that).
func TestColdSearchOrdering(t *testing.T) {
	ps := pairs(200000)
	css := MustNew(Config{Width: 1})
	if err := css.Bulkload(ps); err != nil {
		t.Fatal(err)
	}
	bp := core.MustNew(core.Config{Width: 1, Mem: memsys.Default()})
	if err := bp.Bulkload(ps, 1.0); err != nil {
		t.Fatal(err)
	}
	probe := func(search func(core.Key) (core.TID, bool), mem memsys.Model) uint64 {
		r := rand.New(rand.NewSource(1))
		start := mem.Now()
		for i := 0; i < 2000; i++ {
			mem.FlushCaches()
			if _, ok := search(core.Key(8 * (r.Intn(len(ps)) + 1))); !ok {
				t.Fatal("lost key")
			}
		}
		return mem.Now() - start
	}
	cssT := probe(css.Search, css.Mem())
	bpT := probe(bp.Search, bp.Mem())
	if cssT >= bpT {
		t.Errorf("CSS cold search (%d) should beat B+ (%d)", cssT, bpT)
	}
}

// TestQuickSearchAgainstModel over arbitrary key sets and probes.
func TestQuickSearchAgainstModel(t *testing.T) {
	f := func(raw []uint16, probes []uint16) bool {
		set := map[core.Key]core.TID{}
		for _, v := range raw {
			set[core.Key(v)+1] = core.TID(v)
		}
		ps := make([]core.Pair, 0, len(set))
		for k, tid := range set {
			ps = append(ps, core.Pair{Key: k, TID: tid})
		}
		sort.Slice(ps, func(i, j int) bool { return ps[i].Key < ps[j].Key })
		tr := MustNew(Config{Width: 2, Prefetch: true})
		if tr.Bulkload(ps) != nil {
			return false
		}
		for _, p := range probes {
			k := core.Key(p) + 1
			tid, ok := tr.Search(k)
			wtid, wok := set[k]
			if ok != wok || (ok && tid != wtid) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Package csstree implements Cache-Sensitive Search Trees (Rao and
// Ross, VLDB 1999), the read-only predecessor of CSB+-Trees described
// in section 1.2 of the paper: by laying every directory node out
// contiguously and computing child positions arithmetically, ALL child
// pointers are eliminated, so a 64-byte node holds 16 keys (fanout
// 17) — at the price of supporting no incremental updates.
//
// The tree is a directory over a sorted <key, tupleID> array: each
// directory level is one contiguous run of full nodes; the leaf level
// is the data array itself (stored column-wise: keys, then tupleIDs).
package csstree

import (
	"fmt"

	"pbtree/internal/core"
	"pbtree/internal/memsys"
)

// Config describes a CSS-Tree.
type Config struct {
	// Width is the node width in cache lines (1 is the classic tree).
	Width int

	// Prefetch enables whole-node prefetching (a pCSS-Tree, by
	// analogy with the paper's pCSB+).
	Prefetch bool

	// Mem is the memory model (simulated or native); nil selects
	// memsys.Default().
	Mem memsys.Model

	// Cost is the instruction cost model; zero selects the default.
	Cost core.CostModel
}

// level is one directory level: a contiguous array of keys, logically
// split into nodes of keysPerNode keys.
type level struct {
	addr uint64
	keys []core.Key
}

// Tree is a read-only CSS-Tree. Build it with Bulkload; Search is the
// only query operation (range scans would simply scan the sorted
// array).
type Tree struct {
	cfg   Config
	mem   memsys.Model
	space *memsys.AddressSpace
	cost  core.CostModel

	keysPerNode int // keys per directory node
	fanout      int // keysPerNode + 1
	nodeSize    int

	levels   []level // root first
	keysAddr uint64  // leaf key column
	tidsAddr uint64
	keys     []core.Key
	tids     []core.TID
}

// New creates an empty CSS-Tree.
func New(cfg Config) (*Tree, error) {
	if cfg.Width == 0 {
		cfg.Width = 1
	}
	if cfg.Width < 0 {
		return nil, fmt.Errorf("csstree: width %d must be positive", cfg.Width)
	}
	if memsys.IsNil(cfg.Mem) {
		cfg.Mem = memsys.Default()
	}
	if cfg.Cost == (core.CostModel{}) {
		cfg.Cost = core.DefaultCostModel()
	}
	line := cfg.Mem.Config().LineSize
	size := cfg.Width * line
	return &Tree{
		cfg:         cfg,
		mem:         cfg.Mem,
		space:       memsys.NewAddressSpace(line),
		cost:        cfg.Cost,
		keysPerNode: size / 4,
		fanout:      size/4 + 1,
		nodeSize:    size,
	}, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Tree {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Name returns "CSS" or "p<w>CSS".
func (t *Tree) Name() string {
	if !t.cfg.Prefetch && t.cfg.Width == 1 {
		return "CSS"
	}
	return fmt.Sprintf("p%dCSS", t.cfg.Width)
}

// Mem returns the memory model the tree charges to.
func (t *Tree) Mem() memsys.Model { return t.mem }

// Len reports the number of pairs.
func (t *Tree) Len() int { return len(t.keys) }

// Height reports the number of levels including the leaf array.
func (t *Tree) Height() int {
	if len(t.keys) == 0 {
		return 1
	}
	return len(t.levels) + 1
}

// SpaceUsed reports simulated bytes (directory + data columns).
func (t *Tree) SpaceUsed() uint64 { return t.space.Used() }

// Bulkload builds the tree over the given sorted, duplicate-free
// pairs. CSS-Trees are always built 100% full.
func (t *Tree) Bulkload(pairs []core.Pair) error {
	for i := 1; i < len(pairs); i++ {
		if pairs[i].Key <= pairs[i-1].Key {
			return fmt.Errorf("csstree: input not sorted/unique at %d", i)
		}
	}
	if n := len(pairs); n > 0 && pairs[n-1].Key == core.MaxKey {
		return fmt.Errorf("csstree: MaxKey is reserved as the directory sentinel")
	}
	t.levels = nil
	t.keys = make([]core.Key, len(pairs))
	t.tids = make([]core.TID, len(pairs))
	for i, p := range pairs {
		t.keys[i] = p.Key
		t.tids[i] = p.TID
	}
	if len(pairs) == 0 {
		return nil
	}
	t.keysAddr = t.space.Alloc(4 * len(pairs))
	t.tidsAddr = t.space.Alloc(4 * len(pairs))
	t.mem.AccessRange(t.keysAddr, 4*len(pairs))
	t.mem.AccessRange(t.tidsAddr, 4*len(pairs))
	t.mem.Compute(t.cost.Move * uint64(2*len(pairs)))

	// Build directory levels bottom-up: each directory node holds the
	// minimum key of each child group except the first (a separator
	// per child after the first), with fanout = keysPerNode+1.
	// mins[i] is the minimum key of child i on the level below.
	mins := make([]core.Key, 0, (len(pairs)+t.keysPerNode)/t.keysPerNode)
	for i := 0; i < len(pairs); i += t.keysPerNode {
		mins = append(mins, pairs[i].Key)
	}
	// The leaf level is grouped in runs of keysPerNode pairs; each
	// directory level then groups fanout children per node.
	for len(mins) > 1 {
		nNodes := (len(mins) + t.fanout - 1) / t.fanout
		lv := level{keys: make([]core.Key, 0, nNodes*t.keysPerNode)}
		next := make([]core.Key, 0, nNodes)
		for start := 0; start < len(mins); start += t.fanout {
			end := start + t.fanout
			if end > len(mins) {
				end = len(mins)
			}
			next = append(next, mins[start])
			for i := start + 1; i < end; i++ {
				lv.keys = append(lv.keys, mins[i])
			}
			// Pad the node to full width with +inf sentinels so child
			// arithmetic stays uniform.
			for i := end - start - 1; i < t.keysPerNode; i++ {
				lv.keys = append(lv.keys, core.MaxKey)
			}
		}
		lv.addr = t.space.Alloc(4 * len(lv.keys))
		t.mem.AccessRange(lv.addr, 4*len(lv.keys))
		t.mem.Compute(t.cost.Move * uint64(len(lv.keys)))
		t.levels = append([]level{lv}, t.levels...)
		mins = next
	}
	return nil
}

// Search looks up key. Each directory level costs one binary search in
// a contiguous node whose position was computed, not loaded — no child
// pointer is ever read.
func (t *Tree) Search(key core.Key) (core.TID, bool) {
	t.mem.Compute(t.cost.Op)
	if len(t.keys) == 0 {
		return 0, false
	}
	nodeIdx := 0
	for _, lv := range t.levels {
		base := nodeIdx * t.keysPerNode
		if t.cfg.Prefetch {
			t.mem.PrefetchRange(lv.addr+uint64(4*base), t.nodeSize)
		}
		t.mem.Compute(t.cost.Visit)
		ub := t.searchRun(lv.addr, lv.keys, base, base+t.keysPerNode, key)
		nodeIdx = nodeIdx*t.fanout + (ub - base)
	}
	// nodeIdx now names a run of keysPerNode leaf pairs.
	lo := nodeIdx * t.keysPerNode
	if lo >= len(t.keys) {
		return 0, false
	}
	hi := lo + t.keysPerNode
	if hi > len(t.keys) {
		hi = len(t.keys)
	}
	if t.cfg.Prefetch {
		t.mem.PrefetchRange(t.keysAddr+uint64(4*lo), t.nodeSize)
	}
	t.mem.Compute(t.cost.Visit)
	ub := t.searchRun(t.keysAddr, t.keys, lo, hi, key)
	if ub > lo && t.keys[ub-1] == key {
		// In the original CSS-Tree the record id is computed from the
		// position in the sorted column (decision-support setting), so
		// no further memory access is charged here.
		return t.tids[ub-1], true
	}
	return 0, false
}

// searchRun binary-searches keys[lo:hi] (simulated at addr), returning
// the upper bound position.
func (t *Tree) searchRun(addr uint64, keys []core.Key, lo, hi int, key core.Key) int {
	for lo < hi {
		mid := (lo + hi) / 2
		t.mem.Access(addr + uint64(4*mid))
		t.mem.Compute(t.cost.Compare)
		switch k := keys[mid]; {
		case k == key:
			return mid + 1
		case k < key:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return lo
}

// CheckInvariants verifies the directory routes every key to its run.
func (t *Tree) CheckInvariants() error {
	for i := 1; i < len(t.keys); i++ {
		if t.keys[i-1] >= t.keys[i] {
			return fmt.Errorf("data not sorted at %d", i)
		}
	}
	for li, lv := range t.levels {
		if len(lv.keys)%t.keysPerNode != 0 {
			return fmt.Errorf("level %d not node-aligned", li)
		}
	}
	return nil
}

package query

import (
	"math/rand"
	"testing"

	"pbtree/internal/core"
	"pbtree/internal/heap"
	"pbtree/internal/memsys"
)

// fixture builds a p8e index and a heap table sharing one hierarchy
// and address space, with n rows keyed 8, 16, ...
func fixture(t testing.TB, n int) (*core.Tree, *heap.Table) {
	t.Helper()
	mem := memsys.Default()
	space := memsys.NewAddressSpace(mem.Config().LineSize)
	tab := heap.MustNew(mem, space, 64)
	pairs := make([]core.Pair, n)
	for i := range pairs {
		k := core.Key(8 * (i + 1))
		pairs[i] = core.Pair{Key: k, TID: tab.Append(k)}
	}
	tr := core.MustNew(core.Config{
		Width: 8, Prefetch: true, JumpArray: core.JumpExternal,
		Mem: mem, Space: space,
	})
	if err := tr.Bulkload(pairs, 1.0); err != nil {
		t.Fatal(err)
	}
	mem.ResetStats()
	return tr, tab
}

func TestSelectTIDsMatchesRange(t *testing.T) {
	tr, _ := fixture(t, 20000)
	var got []core.TID
	n := SelectTIDs(tr, 8*100, 8*250, Options{}, func(b []core.TID) {
		got = append(got, b...)
	})
	if n != 151 || len(got) != 151 {
		t.Fatalf("selected %d (emitted %d), want 151", n, len(got))
	}
	for i, tid := range got {
		if tid != core.TID(100+i) { // heap TIDs are ordinal positions
			t.Fatalf("tid %d = %d", i, tid)
		}
	}
}

func TestSelectTIDsAdaptive(t *testing.T) {
	tr, _ := fixture(t, 50000)
	mem := tr.Mem()

	short := func(opt Options) uint64 {
		mem.FlushCaches()
		before := mem.Now()
		if n := SelectTIDs(tr, 8*1000, 8*1009, opt, nil); n != 10 {
			t.Fatalf("selected %d, want 10", n)
		}
		return mem.Now() - before
	}
	adaptive := short(Options{})
	forced := short(Options{NoEstimate: true})
	// The adaptive path pays two estimation searches but skips the
	// prefetch startup; it must not be wildly worse, and the plain
	// scan portion must be cheaper. Just require sanity here:
	if adaptive > 3*forced {
		t.Errorf("adaptive short scan (%d) unreasonably above forced (%d)", adaptive, forced)
	}

	// Long ranges must use the prefetching scanner: compare against a
	// scan forced through the plain scanner.
	mem.FlushCaches()
	before := mem.Now()
	SelectTIDs(tr, 8, 8*40000, Options{}, nil)
	long := mem.Now() - before

	mem.FlushCaches()
	before = mem.Now()
	sc := tr.NewScanNoPrefetch(8, 8*40000)
	buf := make([]core.TID, 4096)
	for sc.Next(buf) > 0 {
	}
	plainLong := mem.Now() - before
	if long >= plainLong {
		t.Errorf("adaptive long scan (%d) not faster than plain (%d)", long, plainLong)
	}
}

func TestSelectTuples(t *testing.T) {
	tr, tab := fixture(t, 20000)
	var keys []core.Key
	n := SelectTuples(tr, tab, 8*500, 8*999, Options{}, func(k core.Key) {
		keys = append(keys, k)
	})
	if n != 500 || len(keys) != 500 {
		t.Fatalf("selected %d tuples", n)
	}
	for i, k := range keys {
		if k != core.Key(8*(500+i)) {
			t.Fatalf("tuple %d: key %d", i, k)
		}
	}
}

// TestSelectTuplesPrefetchPays verifies the section 5 claim: fetching
// tuples with batch prefetching beats fetching them one miss at a
// time.
func TestSelectTuplesPrefetchPays(t *testing.T) {
	tr, tab := fixture(t, 50000)
	mem := tr.Mem()

	mem.FlushCaches()
	before := mem.Now()
	SelectTuples(tr, tab, 8, 8*20000, Options{}, nil)
	prefetched := mem.Now() - before

	// Serial variant: read each tuple as its tid is seen.
	mem.FlushCaches()
	before = mem.Now()
	SelectTIDs(tr, 8, 8*20000, Options{}, func(b []core.TID) {
		for _, tid := range b {
			tab.Read(tid)
		}
	})
	serial := mem.Now() - before
	if prefetched >= serial {
		t.Errorf("prefetched tuple fetch (%d) not faster than serial (%d)", prefetched, serial)
	}
}

func TestIndexJoin(t *testing.T) {
	tr, tab := fixture(t, 10000)
	r := rand.New(rand.NewSource(1))
	outer := make([]core.Key, 2000)
	wantMatches := 0
	for i := range outer {
		if r.Intn(2) == 0 {
			outer[i] = core.Key(8 * (r.Intn(10000) + 1)) // hit
			wantMatches++
		} else {
			outer[i] = core.Key(8*(r.Intn(10000)+1) + 3) // miss
		}
	}
	pairs := 0
	if got := IndexJoin(outer, tr, func(core.Key, core.TID) { pairs++ }); got != wantMatches {
		t.Fatalf("matches = %d, want %d", got, wantMatches)
	}
	if pairs != wantMatches {
		t.Fatalf("emitted %d", pairs)
	}
	got := IndexJoinTuples(outer, tr, tab, 64, nil)
	if got != wantMatches {
		t.Fatalf("tuple join matches = %d, want %d", got, wantMatches)
	}
}

func TestIndexJoinTuplesEmitsKeys(t *testing.T) {
	tr, tab := fixture(t, 1000)
	outer := []core.Key{8, 16, 24, 25}
	var keys []core.Key
	n := IndexJoinTuples(outer, tr, tab, 2, func(k core.Key) { keys = append(keys, k) })
	if n != 3 || len(keys) != 3 {
		t.Fatalf("matches %d, emitted %d", n, len(keys))
	}
	for i, want := range []core.Key{8, 16, 24} {
		if keys[i] != want {
			t.Fatalf("key %d = %d", i, keys[i])
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.PrefetchThreshold != 100 || o.BufferSize != 4096 {
		t.Fatalf("defaults: %+v", o)
	}
	o = Options{PrefetchThreshold: 5, BufferSize: 7}.withDefaults()
	if o.PrefetchThreshold != 5 || o.BufferSize != 7 {
		t.Fatalf("overrides lost: %+v", o)
	}
}

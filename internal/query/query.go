// Package query provides the minimal query-operator layer the paper's
// workloads come from: adaptive range selection (section 4.3), range
// selection returning tuples via tuple prefetching (section 5), and
// nested-loop index join probes.
package query

import (
	"pbtree/internal/core"
	"pbtree/internal/heap"
)

// Options controls range selections.
type Options struct {
	// PrefetchThreshold is the estimated range size below which the
	// plain (non-prefetching) scanner is used. Section 4.3 observes
	// prefetching only pays off above roughly 100 tupleIDs. Zero
	// selects 100.
	PrefetchThreshold int

	// BufferSize is the return-buffer size in tupleIDs (one scan call
	// per buffer). Zero selects 4096.
	BufferSize int

	// NoEstimate skips the range estimation (two extra boundary
	// searches) and always uses the prefetching scanner.
	NoEstimate bool
}

func (o Options) withDefaults() Options {
	if o.PrefetchThreshold == 0 {
		o.PrefetchThreshold = 100
	}
	if o.BufferSize <= 0 {
		o.BufferSize = 4096
	}
	return o
}

// SelectTIDs runs a range selection over [start, end] and calls emit
// for every filled return buffer. It returns the number of tupleIDs
// selected. The scanner is chosen adaptively: if the estimated range
// is below the prefetch threshold, the plain scanner is used, skipping
// the prefetch startup cost.
func SelectTIDs(t *core.Tree, start, end core.Key, opt Options, emit func([]core.TID)) int {
	opt = opt.withDefaults()
	sc := chooseScanner(t, start, end, opt)
	buf := make([]core.TID, opt.BufferSize)
	total := 0
	for {
		n := sc.Next(buf)
		if n == 0 {
			return total
		}
		if emit != nil {
			emit(buf[:n])
		}
		total += n
	}
}

// chooseScanner applies the section 4.3 heuristic.
func chooseScanner(t *core.Tree, start, end core.Key, opt Options) *core.Scanner {
	if !opt.NoEstimate && t.Config().JumpArray != core.JumpNone {
		if t.EstimateRange(start, end) < opt.PrefetchThreshold {
			return t.NewScanNoPrefetch(start, end)
		}
	}
	return t.NewScan(start, end)
}

// SelectTuples runs a range selection that returns tuples: tupleIDs
// are scanned from the index, and each buffer of tuples is prefetched
// before being read, so the tuple fetches overlap like the leaf
// fetches do (section 5).
//
// emit is called with the key field of every selected tuple, in order.
// It returns the number of tuples selected.
func SelectTuples(t *core.Tree, tab *heap.Table, start, end core.Key, opt Options, emit func(core.Key)) int {
	opt = opt.withDefaults()
	sc := chooseScanner(t, start, end, opt)
	buf := make([]core.TID, opt.BufferSize)
	total := 0
	for {
		n := sc.Next(buf)
		if n == 0 {
			return total
		}
		// Prefetch the whole batch of tuples, then read them: the
		// reads find every line in flight or resident.
		for _, tid := range buf[:n] {
			tab.Prefetch(tid)
		}
		for _, tid := range buf[:n] {
			k := tab.Read(tid)
			if emit != nil {
				emit(k)
			}
		}
		total += n
	}
}

// IndexJoin probes the inner index once per outer key (a nested-loop
// index join) and calls emit for every match. It returns the match
// count.
func IndexJoin(outer []core.Key, inner *core.Tree, emit func(core.Key, core.TID)) int {
	matches := 0
	for _, k := range outer {
		if tid, ok := inner.Search(k); ok {
			matches++
			if emit != nil {
				emit(k, tid)
			}
		}
	}
	return matches
}

// IndexJoinTuples is IndexJoin followed by a prefetched tuple fetch
// per probe batch: outer keys are probed in batches of batchSize, the
// matched tuples prefetched together, then read.
func IndexJoinTuples(outer []core.Key, inner *core.Tree, tab *heap.Table, batchSize int, emit func(core.Key)) int {
	if batchSize <= 0 {
		batchSize = 64
	}
	tids := make([]core.TID, 0, batchSize)
	matches := 0
	flush := func() {
		for _, tid := range tids {
			tab.Prefetch(tid)
		}
		for _, tid := range tids {
			k := tab.Read(tid)
			if emit != nil {
				emit(k)
			}
		}
		tids = tids[:0]
	}
	for _, k := range outer {
		if tid, ok := inner.Search(k); ok {
			matches++
			tids = append(tids, tid)
			if len(tids) == batchSize {
				flush()
			}
		}
	}
	flush()
	return matches
}

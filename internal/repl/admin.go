// The replication admin surface: a JSON status document (/replz), the
// promotion endpoint (/promote) and Prometheus lag gauges, mounted on
// the same operational HTTP plane as serve.NewAdminMux (DESIGN.md
// §12). Promotion over HTTP is what the failover runbook drives:
//
//	curl -X POST http://<admin>/promote
package repl

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"pbtree/internal/obs"
)

// ShardStatus is one shard's replication position in a Status.
type ShardStatus struct {
	// Applied is the shard's durably applied LSN (its cursor).
	Applied uint64 `json:"applied_lsn"`

	// PrimaryLSN is the primary's last LSN at the most recent FETCH
	// (follower only).
	PrimaryLSN uint64 `json:"primary_lsn,omitempty"`

	// Acked is the highest LSN any follower reported applied (primary
	// only).
	Acked uint64 `json:"acked_lsn,omitempty"`

	// Lag is the shard's replication lag in WAL records: records not
	// yet applied here (follower) or not yet acknowledged by any
	// follower (primary).
	Lag uint64 `json:"lag_records"`
}

// Status is the /replz JSON document.
type Status struct {
	Role     string                  `json:"role"`                // "primary", "replica" or "fenced"
	Epoch    uint64                  `json:"epoch"`               // the store's replication epoch
	FencedBy uint64                  `json:"fenced_by,omitempty"` // highest rival epoch observed
	Primary  string                  `json:"primary,omitempty"`   // the primary followed (follower only)
	Sync     bool                    `json:"sync"`                // synchronous replication enabled
	Shards   []ShardStatus           `json:"shards"`              // per-shard positions
	Counters obs.ReplicationSnapshot `json:"counters"`            // lifetime replication counters
}

// Status reports the node's replication state: role, epoch, per-shard
// cursors and lag, and the replication counters.
func (n *Node) Status() Status {
	s := Status{
		Role:     n.Role().String(),
		Epoch:    n.st.Epoch(),
		FencedBy: n.st.FencedBy(),
		Primary:  n.cfg.Primary,
		Sync:     n.cfg.Sync,
		Counters: n.cfg.Metrics.Replication(),
	}
	applied := n.st.AppliedLSNs()
	s.Shards = make([]ShardStatus, len(applied))
	follower := n.st.IsReplica()
	n.gateMu.Lock()
	acked := append([]uint64(nil), n.acked...)
	n.gateMu.Unlock()
	for i, a := range applied {
		sh := ShardStatus{Applied: a}
		if follower {
			sh.PrimaryLSN = n.primaryLSNs[i].Load()
			if sh.PrimaryLSN > a {
				sh.Lag = sh.PrimaryLSN - a
			}
		} else {
			sh.Acked = acked[i]
			if a > sh.Acked {
				sh.Lag = a - sh.Acked
			}
		}
		s.Shards[i] = sh
	}
	return s
}

// Lag reports every shard's replication lag in WAL records (see
// ShardStatus.Lag).
func (n *Node) Lag() []uint64 {
	st := n.Status()
	out := make([]uint64, len(st.Shards))
	for i, sh := range st.Shards {
		out[i] = sh.Lag
	}
	return out
}

// WriteMetrics writes the node's replication gauges in Prometheus
// text format — role, epoch and per-shard lag — complementing the
// counters obs.Metrics.WritePrometheus already exports.
func (n *Node) WriteMetrics(w io.Writer) error {
	s := n.Status()
	if _, err := fmt.Fprintf(w,
		"# HELP pbtree_repl_epoch Replication epoch (monotone fencing token).\n# TYPE pbtree_repl_epoch gauge\npbtree_repl_epoch %d\n",
		s.Epoch); err != nil {
		return err
	}
	role := 0
	switch s.Role {
	case "primary":
		role = 1
	case "replica":
		role = 2
	case "fenced":
		role = 3
	}
	if _, err := fmt.Fprintf(w,
		"# HELP pbtree_repl_role Replication role (1=primary, 2=replica, 3=fenced).\n# TYPE pbtree_repl_role gauge\npbtree_repl_role %d\n",
		role); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"# HELP pbtree_repl_lag_records Replication lag per shard in WAL records.\n# TYPE pbtree_repl_lag_records gauge\n"); err != nil {
		return err
	}
	for i, sh := range s.Shards {
		if _, err := fmt.Fprintf(w, "pbtree_repl_lag_records{shard=\"%d\"} %d\n", i, sh.Lag); err != nil {
			return err
		}
	}
	return nil
}

// Mount registers the replication endpoints on an admin mux:
//
//	/replz    GET: the Status JSON document
//	/promote  POST: promote this follower to primary; the optional
//	          ?epoch=N picks the new epoch (default: current+1)
func (n *Node) Mount(mux *http.ServeMux) {
	mux.HandleFunc("/replz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(n.Status())
	})
	mux.HandleFunc("/promote", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var epoch uint64
		if s := r.URL.Query().Get("epoch"); s != "" {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, "bad epoch: "+err.Error(), http.StatusBadRequest)
				return
			}
			epoch = v
		}
		if err := n.Promote(epoch); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(n.Status())
	})
}

package repl

// The deterministic replication harness (ISSUE satellite 3): primary
// and follower stores over storage.MemFS, wired through an in-process
// Transport with a storage.FaultPlan injecting dropped and delayed
// shipping. No goroutine sleeps stand in for correctness — every test
// converges on observable state (cursors, dumps, WAL bytes).

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"pbtree/internal/core"
	"pbtree/internal/lsm"
	"pbtree/internal/obs"
	"pbtree/internal/serve"
	"pbtree/internal/storage"
)

var testBackends = []string{serve.BackendPBTree, serve.BackendLSM}

// tinyLSM forces flush/compaction activity with a handful of keys so
// the LSM follower exercises its full apply path.
var tinyLSM = lsm.Config{FlushKeys: 4, MaxRuns: 2}

// testNode bundles one replication participant: its MemFS, store and
// node.
type testNode struct {
	fs   *storage.MemFS
	st   *serve.Store
	node *Node
}

func (tn *testNode) close() {
	if tn.node != nil {
		tn.node.Close()
	}
	if tn.st != nil {
		tn.st.Close()
	}
}

// storeCfg is the shared store shape: two shards so per-shard loops
// and cursors are exercised, a small checkpoint interval with no WAL
// retention so cursor-0 followers hit the checkpoint-shipping path.
func storeCfg(backendName string, fs *storage.MemFS, replica bool) serve.StoreConfig {
	return serve.StoreConfig{
		Shards:  2,
		Backend: backendName,
		LSM:     tinyLSM,
		Replica: replica,
		Durable: &serve.DurableConfig{
			FS:              fs,
			Fsync:           serve.FsyncAlways,
			CheckpointEvery: 8,
			WALRetain:       4,
		},
	}
}

func openStore(t *testing.T, backendName string, fs *storage.MemFS, replica bool, seed []core.Pair) *serve.Store {
	t.Helper()
	st, err := serve.Open(storeCfg(backendName, fs, replica), seed)
	if err != nil {
		t.Fatalf("open %s store (replica=%v): %v", backendName, replica, err)
	}
	if err := st.WaitReady(); err != nil {
		st.Close()
		t.Fatalf("%s store not ready: %v", backendName, err)
	}
	return st
}

// localTransport drives a handler function directly — the in-process
// stand-in for a protocol-v2 connection — applying a FaultPlan to
// every exchange.
type localTransport struct {
	h    func(*serve.ReplReq) *serve.Response
	plan *storage.FaultPlan
}

func (t *localTransport) Do(req *serve.Request) (*serve.Response, error) {
	if req.Op != serve.OpReplicate || req.Repl == nil {
		return nil, errors.New("localTransport: not a REPLICATE request")
	}
	if t.plan != nil {
		drop, delay := t.plan.Next()
		if delay > 0 {
			time.Sleep(delay)
		}
		if drop {
			return nil, storage.ErrDropped
		}
	}
	return t.h(req.Repl), nil
}

func (t *localTransport) Close() error { return nil }

// dialTo builds a Config.Dial returning a localTransport into the
// given handler under the given plan (plan may be nil).
func dialTo(h func(*serve.ReplReq) *serve.Response, plan *storage.FaultPlan) func(string) (Transport, error) {
	return func(string) (Transport, error) {
		return &localTransport{h: h, plan: plan}, nil
	}
}

// newPrimary opens a primary store (optionally seeded) and its node.
func newPrimary(t *testing.T, backendName string, seed []core.Pair, sync bool, syncTimeout time.Duration) *testNode {
	t.Helper()
	fs := storage.NewMemFS()
	st := openStore(t, backendName, fs, false, seed)
	node, err := New(Config{Store: st, Sync: sync, SyncTimeout: syncTimeout, Logf: t.Logf})
	if err != nil {
		st.Close()
		t.Fatalf("primary node: %v", err)
	}
	if err := node.Start(); err != nil {
		t.Fatalf("primary start: %v", err)
	}
	return &testNode{fs: fs, st: st, node: node}
}

// newFollower opens a follower store over fs and a node pulling from
// the primary node's handler through plan. Poll is aggressive so the
// tests converge fast.
func newFollower(t *testing.T, backendName string, fs *storage.MemFS, primary *testNode, plan *storage.FaultPlan) *testNode {
	t.Helper()
	st := openStore(t, backendName, fs, true, nil)
	node, err := New(Config{
		Store:   st,
		Primary: "primary:test",
		Poll:    time.Millisecond,
		Metrics: obs.NewMetrics(),
		Logf:    t.Logf,
		Dial:    dialTo(primary.node.HandleReplicate, plan),
	})
	if err != nil {
		st.Close()
		t.Fatalf("follower node: %v", err)
	}
	if err := node.Start(); err != nil {
		t.Fatalf("follower start: %v", err)
	}
	return &testNode{fs: fs, st: st, node: node}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// caughtUp reports whether the follower's cursors match the primary's.
func caughtUp(p, f *serve.Store) bool {
	pl, fl := p.AppliedLSNs(), f.AppliedLSNs()
	for i := range pl {
		if fl[i] != pl[i] {
			return false
		}
	}
	return true
}

func sameDump(t *testing.T, p, f *serve.Store) {
	t.Helper()
	want, got := p.Dump(), f.Dump()
	if len(want) != len(got) {
		t.Fatalf("follower has %d pairs, primary %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("pair %d: follower %+v, primary %+v", i, got[i], want[i])
		}
	}
}

// seedPairs is a deterministic bootstrap set whose keys spread over
// both shards.
func seedPairs(n int) []core.Pair {
	ps := make([]core.Pair, n)
	for i := range ps {
		ps[i] = core.Pair{Key: core.Key(10 * (i + 1)), TID: core.TID(i + 1)}
	}
	return ps
}

// TestReplicationCatchUp covers the full follower lifecycle on both
// backends: install the seeded primary's LSN-0 checkpoint (the seed
// never appears in the WAL), then stream live writes, then converge.
func TestReplicationCatchUp(t *testing.T) {
	for _, backendName := range testBackends {
		t.Run(backendName, func(t *testing.T) {
			p := newPrimary(t, backendName, seedPairs(64), false, 0)
			defer p.close()

			f := newFollower(t, backendName, storage.NewMemFS(), p, nil)
			defer f.close()

			// Phase 1: the bootstrap seed arrives via checkpoint
			// shipping (cursor 0 with a non-empty LSN-0 state). Both
			// sides sit at LSN 0 here, so convergence is a content
			// property, not a cursor one.
			waitFor(t, 5*time.Second, "seed catch-up", func() bool {
				return f.st.Len() == p.st.Len() && caughtUp(p.st, f.st)
			})
			sameDump(t, p.st, f.st)
			if got := f.node.cfg.Metrics.Replication().SnapshotsInstalled; got == 0 {
				t.Fatalf("seed must arrive via checkpoint install; installed=%d", got)
			}

			// Phase 2: live writes stream through the WAL path,
			// including deletes and overwrites.
			for i := 0; i < 200; i++ {
				k := core.Key(10*(i%64) + 1)
				if err := p.st.Put(k, core.TID(1000+i)); err != nil {
					t.Fatalf("put %d: %v", i, err)
				}
				if i%7 == 0 {
					if err := p.st.Delete(k); err != nil {
						t.Fatalf("delete %d: %v", i, err)
					}
				}
			}
			waitFor(t, 5*time.Second, "live catch-up", func() bool { return caughtUp(p.st, f.st) })
			sameDump(t, p.st, f.st)

			// The bulk round may converge entirely via checkpoint
			// resync when the follower falls past WAL retention on a
			// loaded machine. A converged follower fetching one fresh
			// record must use the WAL path, so trickle writes one at
			// a time to pin the record-shipping assertion.
			for i := 0; i < 5; i++ {
				if err := p.st.Put(core.Key(7), core.TID(2000+i)); err != nil {
					t.Fatalf("trickle put %d: %v", i, err)
				}
				waitFor(t, 5*time.Second, "trickle catch-up", func() bool { return caughtUp(p.st, f.st) })
			}
			sameDump(t, p.st, f.st)
			if got := f.node.cfg.Metrics.Replication().AppliedRecords; got == 0 {
				t.Fatalf("live writes must arrive via WAL shipping; applied=%d", got)
			}

			// The roles and lag read correctly on both sides.
			if r := p.node.Role(); r != serve.RolePrimary {
				t.Fatalf("primary role = %v", r)
			}
			if r := f.node.Role(); r != serve.RoleReplica {
				t.Fatalf("follower role = %v", r)
			}
			for i, lag := range f.node.Lag() {
				if lag != 0 {
					t.Fatalf("shard %d lag %d after catch-up", i, lag)
				}
			}
		})
	}
}

// TestReplicationUnderFaults runs continuous writes while the fault
// plan drops every 3rd exchange and delays every 2nd — the follower
// must still converge, and the plan must have actually fired.
func TestReplicationUnderFaults(t *testing.T) {
	plan := &storage.FaultPlan{DropEvery: 3, DelayEvery: 2, Delay: time.Millisecond}
	p := newPrimary(t, serve.BackendPBTree, nil, false, 0)
	defer p.close()
	f := newFollower(t, serve.BackendPBTree, storage.NewMemFS(), p, plan)
	defer f.close()

	for i := 0; i < 300; i++ {
		if err := p.st.Put(core.Key(i+1), core.TID(i+1)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	waitFor(t, 15*time.Second, "convergence under faults", func() bool { return caughtUp(p.st, f.st) })
	sameDump(t, p.st, f.st)

	// A second round after convergence streams through the WAL-fetch
	// path (the first may have been covered by checkpoint shipping in
	// a handful of exchanges).
	for i := 300; i < 400; i++ {
		if err := p.st.Put(core.Key(i+1), core.TID(i+1)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	waitFor(t, 15*time.Second, "re-convergence under faults", func() bool { return caughtUp(p.st, f.st) })
	sameDump(t, p.st, f.st)
	if plan.Steps() < 10 {
		t.Fatalf("fault plan saw only %d exchanges; the faults never fired", plan.Steps())
	}
}

// TestFollowerRestartMidStream crashes the follower partway through
// catch-up (losing its unsynced writes) and restarts it over the
// crashed filesystem: the new incarnation must resume from its durable
// cursor and converge.
func TestFollowerRestartMidStream(t *testing.T) {
	p := newPrimary(t, serve.BackendPBTree, nil, false, 0)
	defer p.close()

	fs := storage.NewMemFS()
	f := newFollower(t, serve.BackendPBTree, fs, p, nil)

	for i := 0; i < 150; i++ {
		if err := p.st.Put(core.Key(i+1), core.TID(i+1)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	// Let the follower apply at least a few records, then cut the
	// power mid-stream.
	waitFor(t, 5*time.Second, "partial apply", func() bool {
		for _, lsn := range f.st.AppliedLSNs() {
			if lsn > 0 {
				return true
			}
		}
		return false
	})
	f.close()
	crashed := fs.CrashAt(fs.CrashPoints(), true)

	// More writes land while the follower is down.
	for i := 150; i < 200; i++ {
		if err := p.st.Put(core.Key(i+1), core.TID(i+1)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}

	f2 := newFollower(t, serve.BackendPBTree, crashed, p, nil)
	defer f2.close()
	for _, lsn := range f2.st.AppliedLSNs() {
		if lsn > 200 {
			t.Fatalf("recovered cursor %d beyond what the primary ever shipped", lsn)
		}
	}
	waitFor(t, 10*time.Second, "post-restart convergence", func() bool { return caughtUp(p.st, f2.st) })
	sameDump(t, p.st, f2.st)
}

// primaryWALBytes snapshots every WAL byte of every shard directory —
// the byte-granular fencing witness.
func primaryWALBytes(t *testing.T, fs *storage.MemFS) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	var walk func(dir string)
	walk = func(dir string) {
		names, err := fs.ReadDir(dir)
		if err != nil {
			return // not a directory at this level
		}
		for _, name := range names {
			p := name
			if dir != "" {
				p = dir + "/" + name
			}
			rd, err := fs.Open(p)
			if err != nil {
				walk(p)
				continue
			}
			data, rerr := io.ReadAll(rd)
			rd.Close()
			if rerr != nil {
				t.Fatalf("read %s: %v", p, rerr)
			}
			out[p] = data
		}
	}
	walk("")
	return out
}

// TestFencedPrimaryRejectsByteGranular promotes the follower and then
// verifies — byte by byte over the deposed primary's filesystem — that
// no post-fence write extends its WAL timeline.
func TestFencedPrimaryRejectsByteGranular(t *testing.T) {
	p := newPrimary(t, serve.BackendPBTree, nil, false, 0)
	defer p.close()
	f := newFollower(t, serve.BackendPBTree, storage.NewMemFS(), p, nil)
	defer f.close()

	for i := 0; i < 50; i++ {
		if err := p.st.Put(core.Key(i+1), core.TID(i+1)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	waitFor(t, 5*time.Second, "pre-failover catch-up", func() bool { return caughtUp(p.st, f.st) })

	// A follower is not promotable into accepting writes before
	// Promote — client writes still bounce.
	if err := f.st.Put(1, 1); !errors.Is(err, serve.ErrNotPrimary) {
		t.Fatalf("pre-promotion follower write: err=%v, want ErrNotPrimary", err)
	}

	if err := f.node.Promote(0); err != nil {
		t.Fatalf("promote: %v", err)
	}
	if got := f.st.Epoch(); got != 2 {
		t.Fatalf("post-promotion epoch = %d, want 2", got)
	}
	// The promotion fences the old primary through the transport
	// (fenceOldPrimary); wait for the FENCE to land.
	waitFor(t, 5*time.Second, "old primary fenced", func() bool { return p.st.Fenced() })

	before := primaryWALBytes(t, p.fs)
	if len(before) == 0 {
		t.Fatal("no primary files captured; the witness is vacuous")
	}

	// Every write class on the deposed primary must be rejected...
	if err := p.st.Put(999, 999); !errors.Is(err, serve.ErrFenced) {
		t.Fatalf("fenced Put: err=%v, want ErrFenced", err)
	}
	if err := p.st.Delete(1); !errors.Is(err, serve.ErrFenced) {
		t.Fatalf("fenced Delete: err=%v, want ErrFenced", err)
	}
	if err := p.st.PutBatch([]core.Pair{{Key: 998, TID: 998}}); !errors.Is(err, serve.ErrFenced) {
		t.Fatalf("fenced PutBatch: err=%v, want ErrFenced", err)
	}
	if err := p.st.Compact(); !errors.Is(err, serve.ErrFenced) {
		t.Fatalf("fenced Compact: err=%v, want ErrFenced", err)
	}

	// ...and must have left no trace: the filesystem is byte-identical.
	after := primaryWALBytes(t, p.fs)
	if len(after) != len(before) {
		t.Fatalf("file count changed across fenced writes: %d -> %d", len(before), len(after))
	}
	for name, b := range before {
		a, ok := after[name]
		if !ok {
			t.Fatalf("file %s vanished across fenced writes", name)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("file %s changed across fenced writes (%d -> %d bytes)", name, len(b), len(a))
		}
	}

	// A stale-epoch FETCH against the new primary answers StatusFenced
	// carrying the winning epoch.
	resp := f.node.HandleReplicate(&serve.ReplReq{Kind: serve.ReplFetch, Epoch: 1, Shard: 0})
	if resp.Status != serve.StatusFenced {
		t.Fatalf("stale-epoch FETCH status = %d, want StatusFenced", resp.Status)
	}
	if resp.FencedEpoch != 2 {
		t.Fatalf("StatusFenced epoch = %d, want 2", resp.FencedEpoch)
	}

	// The new primary serves writes.
	if err := f.st.Put(777, 777); err != nil {
		t.Fatalf("new primary write: %v", err)
	}
}

// TestSyncPromotionNeverDualAcks is the -race failover exercise: a
// synchronous primary under write load, a follower promoted
// mid-traffic, and the invariant that no write is acknowledged by both
// eras — every key acked by either side must be readable on the new
// primary, except those acked by the old primary strictly before the
// promotion epoch existed (which the sync gate guarantees were
// follower-applied, hence also readable).
func TestSyncPromotionNeverDualAcks(t *testing.T) {
	p := newPrimary(t, serve.BackendPBTree, nil, true, 500*time.Millisecond)
	defer p.close()
	f := newFollower(t, serve.BackendPBTree, storage.NewMemFS(), p, nil)
	defer f.close()

	var mu sync.Mutex
	ackedOld := map[core.Key]bool{} // acked by the old primary
	lateAck := map[core.Key]bool{}  // acked by the old primary after promotion

	var promoted sync.WaitGroup
	promoted.Add(1)
	var promoteAt = 100
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			k := core.Key(i + 1)
			err := p.st.Put(k, core.TID(i+1))
			if i == promoteAt {
				promoted.Done() // writer reached the promotion point
			}
			if err != nil {
				continue // timed out or fenced: unacknowledged, no claim
			}
			mu.Lock()
			ackedOld[k] = true
			if f.st.Epoch() > p.st.Epoch() || !f.st.IsReplica() {
				lateAck[k] = true
			}
			mu.Unlock()
		}
	}()

	promoted.Wait()
	if err := f.node.Promote(0); err != nil {
		t.Fatalf("promote: %v", err)
	}
	wg.Wait()

	// The old primary must stop acking once fenced; any ack that
	// raced the promotion window must still be follower-covered. The
	// strong invariant: every acked key is readable on the new
	// primary.
	mu.Lock()
	defer mu.Unlock()
	if len(lateAck) > 0 {
		// An ack strictly after promotion would be a dual ack iff the
		// follower doesn't hold it; check below catches it.
		t.Logf("%d acks raced the promotion window", len(lateAck))
	}
	missing := 0
	for k := range ackedOld {
		if _, ok := f.st.Get(k); !ok {
			missing++
			t.Errorf("key %d acked by old primary but missing on new primary (dual ack)", k)
		}
	}
	if missing == 0 {
		t.Logf("%d acked keys all present on the new primary", len(ackedOld))
	}

	// Post-promotion, a fresh write on the old primary must never ack:
	// the follower stopped pulling, so in sync mode the gate times out
	// (or fencing rejects outright once the FENCE lands).
	if err := p.st.Put(100000, 1); err == nil {
		t.Fatal("old primary acknowledged a write after the follower was promoted")
	}
}

// TestOverTheWire runs the whole stack over real TCP: two serve.Server
// instances with REPLICATE wired, the default dialed transport, a
// ReplicaSet reading from the replica, and the admin endpoints.
func TestOverTheWire(t *testing.T) {
	// Primary server.
	pfs := storage.NewMemFS()
	pst := openStore(t, serve.BackendPBTree, pfs, false, seedPairs(32))
	defer pst.Close()
	pnode, err := New(Config{Store: pst, Metrics: obs.NewMetrics(), Logf: t.Logf})
	if err != nil {
		t.Fatalf("primary node: %v", err)
	}
	if err := pnode.Start(); err != nil {
		t.Fatalf("primary start: %v", err)
	}
	defer pnode.Close()
	psrv := serve.NewServer(pst, serve.ServerConfig{Addr: "127.0.0.1:0", Repl: pnode})
	if err := psrv.Start(); err != nil {
		t.Fatalf("primary server: %v", err)
	}
	defer psrv.Shutdown(time.Second)
	paddr := psrv.Addr().String()

	// Follower server, dialing the primary over TCP (the default
	// transport — this exercises the REPLICATE codec end to end).
	ffs := storage.NewMemFS()
	fst := openStore(t, serve.BackendPBTree, ffs, true, nil)
	defer fst.Close()
	fnode, err := New(Config{Store: fst, Primary: paddr, Poll: time.Millisecond, Metrics: obs.NewMetrics(), Logf: t.Logf})
	if err != nil {
		t.Fatalf("follower node: %v", err)
	}
	if err := fnode.Start(); err != nil {
		t.Fatalf("follower start: %v", err)
	}
	defer fnode.Close()
	fsrv := serve.NewServer(fst, serve.ServerConfig{Addr: "127.0.0.1:0", Repl: fnode})
	if err := fsrv.Start(); err != nil {
		t.Fatalf("follower server: %v", err)
	}
	defer fsrv.Shutdown(time.Second)
	faddr := fsrv.Addr().String()

	waitFor(t, 10*time.Second, "wire catch-up", func() bool { return caughtUp(pst, fst) })

	// ReplicaSet: reads land (round-robining through the replica),
	// writes go to the primary and replicate.
	rs, err := DialReplicaSet(ReplicaSetConfig{
		Primary:       paddr,
		Replicas:      []string{faddr},
		ProbeInterval: 5 * time.Millisecond,
		Timeout:       2 * time.Second,
	})
	if err != nil {
		t.Fatalf("DialReplicaSet: %v", err)
	}
	defer rs.Close()
	waitFor(t, 5*time.Second, "replica admitted", func() bool { return rs.Healthy() == 1 })

	if err := rs.Put(core.Pair{Key: 5, TID: 55}); err != nil {
		t.Fatalf("replica-set put: %v", err)
	}
	waitFor(t, 5*time.Second, "write replicated", func() bool {
		tid, ok := fst.Get(5)
		return ok && tid == 55
	})
	tid, ok, err := rs.Get(5)
	if err != nil || !ok || tid != 55 {
		t.Fatalf("replica-set get: tid=%d ok=%v err=%v", tid, ok, err)
	}
	if ps, err := rs.Scan(0, core.Key(1<<31), 1000); err != nil || len(ps) == 0 {
		t.Fatalf("replica-set scan: %d pairs, err=%v", len(ps), err)
	}
	ls, err := rs.MGet([]core.Key{5, 999999})
	if err != nil || !ls[0].Found || ls[1].Found {
		t.Fatalf("replica-set mget: %+v err=%v", ls, err)
	}

	// Admin plane on the follower: /replz reflects the replica role,
	// POST /promote fails over, and the lag gauges render.
	mux := serve.NewAdminMux(fsrv, fst, fnode.WriteMetrics)
	fnode.Mount(mux)
	admin := httptest.NewServer(mux)
	defer admin.Close()

	var status Status
	getJSON := func(path string) {
		t.Helper()
		resp, err := http.Get(admin.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
	}
	getJSON("/replz")
	if status.Role != "replica" || status.Epoch != 1 {
		t.Fatalf("/replz: role=%q epoch=%d, want replica/1", status.Role, status.Epoch)
	}

	var metrics bytes.Buffer
	resp, err := http.Get(admin.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	io.Copy(&metrics, resp.Body)
	resp.Body.Close()
	for _, want := range []string{"pbtree_repl_epoch", "pbtree_repl_role", "pbtree_repl_lag_records"} {
		if !bytes.Contains(metrics.Bytes(), []byte(want)) {
			t.Fatalf("/metrics missing %s:\n%s", want, metrics.String())
		}
	}

	preq, err := http.Post(admin.URL+"/promote?epoch=7", "", nil)
	if err != nil {
		t.Fatalf("POST /promote: %v", err)
	}
	defer preq.Body.Close()
	if preq.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(preq.Body)
		t.Fatalf("POST /promote: %s: %s", preq.Status, body)
	}
	if err := json.NewDecoder(preq.Body).Decode(&status); err != nil {
		t.Fatalf("POST /promote: decode: %v", err)
	}
	if status.Role != "primary" || status.Epoch != 7 {
		t.Fatalf("post-promotion /replz: role=%q epoch=%d, want primary/7", status.Role, status.Epoch)
	}

	// The deposed primary learns its fencing over the wire.
	waitFor(t, 5*time.Second, "old primary fenced over the wire", func() bool { return pst.Fenced() })
	if err := pst.Put(12345, 1); !errors.Is(err, serve.ErrFenced) {
		t.Fatalf("fenced old primary accepted a write over the wire path: %v", err)
	}

	// The promoted store serves writes directly.
	if err := fst.Put(4242, 42); err != nil {
		t.Fatalf("promoted store write: %v", err)
	}
}

// TestStatusJSONShape pins the /replz document's field names — they
// are operator-facing API.
func TestStatusJSONShape(t *testing.T) {
	p := newPrimary(t, serve.BackendPBTree, seedPairs(4), false, 0)
	defer p.close()
	b, err := json.Marshal(p.node.Status())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"role", "epoch", "sync", "shards", "counters"} {
		if _, ok := m[k]; !ok {
			t.Fatalf("Status JSON missing %q: %s", k, b)
		}
	}
	if m["role"] != "primary" {
		t.Fatalf("role = %v", m["role"])
	}
}
